package subcache

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"subcache/internal/trace"
)

func gzipTestRefs(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		k := Read
		switch i % 3 {
		case 1:
			k = Write
		case 2:
			k = IFetch
		}
		out[i] = Ref{Addr: Address(0x1000 + 2*i), Kind: k, Size: 2}
	}
	return out
}

// TestGzipRoundTrip: both formats survive a gzip-wrapped write/read
// cycle, which exercises the footer WriteTraceFile must emit by closing
// the compressor before the file.
func TestGzipRoundTrip(t *testing.T) {
	refs := gzipTestRefs(200)
	for _, name := range []string{"trace.din.gz", "trace.strc.gz"} {
		path := filepath.Join(t.TempDir(), name)
		n, err := WriteTraceFile(path, NewSliceSource(refs), FormatAuto)
		if err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		if n != len(refs) {
			t.Fatalf("%s: wrote %d refs, want %d", name, n, len(refs))
		}
		tf, err := OpenTraceFile(path, FormatAuto)
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		var got []Ref
		for {
			r, err := tf.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: read: %v", name, err)
			}
			got = append(got, r)
		}
		if err := tf.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		if !reflect.DeepEqual(got, refs) {
			t.Errorf("%s: round trip changed the trace (%d vs %d refs)", name, len(got), len(refs))
		}
	}
}

// TestWriteTraceFileRemovesPartialOutput: a source failure mid-write
// must leave no file behind -- a truncated gzip stream without its
// footer would otherwise sit on disk looking like a trace until a later
// read fails on it.
func TestWriteTraceFileRemovesPartialOutput(t *testing.T) {
	boom := errors.New("synthetic trace failure")
	for _, name := range []string{"partial.din.gz", "partial.strc.gz", "partial.din", "partial.strc"} {
		path := filepath.Join(t.TempDir(), name)
		i := 0
		src := failingSource(func() (Ref, error) {
			if i == 50 {
				return Ref{}, boom
			}
			i++
			return Ref{Addr: Address(2 * i), Kind: Read, Size: 2}, nil
		})
		n, err := WriteTraceFile(path, src, FormatAuto)
		if !errors.Is(err, boom) {
			t.Fatalf("%s: err = %v, want the source failure", name, err)
		}
		if n != 50 {
			t.Errorf("%s: reported %d written refs, want 50", name, n)
		}
		if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
			t.Errorf("%s: partial file left behind (stat err %v)", name, statErr)
		}
	}
}

// failingSource adapts a function to Source for fault injection.
type failingSource func() (Ref, error)

func (f failingSource) Next() (Ref, error) { return f() }

// drainTraceChunks reads a trace file the way the sweep executors do --
// through trace.ReadChunk -- returning the refs recovered and the
// terminal error.
func drainTraceChunks(tf *TraceFile) ([]Ref, error) {
	var out []Ref
	buf := make([]Ref, 64)
	for {
		n, err := trace.ReadChunk(tf, buf)
		out = append(out, buf[:n]...)
		if err != nil {
			return out, err
		}
	}
}

// TestGzipTruncatedChunked: a gzip trace cut off mid-stream (as a
// killed writer would leave, losing the footer and the tail of the
// compressed data) must fail under chunked reads with a hard error,
// never a clean EOF, and the error must latch so no later chunk
// silently resumes.
func TestGzipTruncatedChunked(t *testing.T) {
	refs := gzipTestRefs(500)
	for _, name := range []string{"trace.din.gz", "trace.strc.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if _, err := WriteTraceFile(path, NewSliceSource(refs), FormatAuto); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}

		tf, err := OpenTraceFile(path, FormatAuto)
		if err != nil {
			// The header itself may be unreadable for tiny files; an
			// attributed open error is an acceptable surface too.
			t.Fatalf("%s: open after truncation: %v (want a read-time error instead)", name, err)
		}
		got, rerr := drainTraceChunks(tf)
		if rerr == nil || rerr == io.EOF {
			t.Fatalf("%s: truncated gzip read ended with %v, want a hard error", name, rerr)
		}
		if len(got) >= len(refs) {
			t.Errorf("%s: recovered %d refs from a truncated file of %d", name, len(got), len(refs))
		}
		if _, again := tf.Next(); again == nil || again == io.EOF {
			t.Errorf("%s: reader resumed after the error (got %v)", name, again)
		}
		tf.Close()
	}
}

// TestGzipMidStreamCorruptionChunked: flipping a byte inside the
// compressed payload must surface as a hard error under chunked reads
// for both formats -- either a gzip integrity failure or, if the
// corruption decompresses, a latched record-level parse error.
func TestGzipMidStreamCorruptionChunked(t *testing.T) {
	refs := gzipTestRefs(500)
	for _, name := range []string{"trace.din.gz", "trace.strc.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if _, err := WriteTraceFile(path, NewSliceSource(refs), FormatAuto); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		tf, err := OpenTraceFile(path, FormatAuto)
		if err != nil {
			continue // corruption caught at open: also acceptable
		}
		_, rerr := drainTraceChunks(tf)
		if rerr == nil || rerr == io.EOF {
			t.Fatalf("%s: corrupt gzip payload read cleanly to EOF", name)
		}
		if _, again := tf.Next(); again == nil || again == io.EOF {
			t.Errorf("%s: reader resumed after the error (got %v)", name, again)
		}
		tf.Close()
	}
}
