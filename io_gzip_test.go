package subcache

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func gzipTestRefs(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		k := Read
		switch i % 3 {
		case 1:
			k = Write
		case 2:
			k = IFetch
		}
		out[i] = Ref{Addr: Address(0x1000 + 2*i), Kind: k, Size: 2}
	}
	return out
}

// TestGzipRoundTrip: both formats survive a gzip-wrapped write/read
// cycle, which exercises the footer WriteTraceFile must emit by closing
// the compressor before the file.
func TestGzipRoundTrip(t *testing.T) {
	refs := gzipTestRefs(200)
	for _, name := range []string{"trace.din.gz", "trace.strc.gz"} {
		path := filepath.Join(t.TempDir(), name)
		n, err := WriteTraceFile(path, NewSliceSource(refs), FormatAuto)
		if err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		if n != len(refs) {
			t.Fatalf("%s: wrote %d refs, want %d", name, n, len(refs))
		}
		tf, err := OpenTraceFile(path, FormatAuto)
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		var got []Ref
		for {
			r, err := tf.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: read: %v", name, err)
			}
			got = append(got, r)
		}
		if err := tf.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		if !reflect.DeepEqual(got, refs) {
			t.Errorf("%s: round trip changed the trace (%d vs %d refs)", name, len(got), len(refs))
		}
	}
}

// TestWriteTraceFileRemovesPartialOutput: a source failure mid-write
// must leave no file behind -- a truncated gzip stream without its
// footer would otherwise sit on disk looking like a trace until a later
// read fails on it.
func TestWriteTraceFileRemovesPartialOutput(t *testing.T) {
	boom := errors.New("synthetic trace failure")
	for _, name := range []string{"partial.din.gz", "partial.strc.gz", "partial.din", "partial.strc"} {
		path := filepath.Join(t.TempDir(), name)
		i := 0
		src := failingSource(func() (Ref, error) {
			if i == 50 {
				return Ref{}, boom
			}
			i++
			return Ref{Addr: Address(2 * i), Kind: Read, Size: 2}, nil
		})
		n, err := WriteTraceFile(path, src, FormatAuto)
		if !errors.Is(err, boom) {
			t.Fatalf("%s: err = %v, want the source failure", name, err)
		}
		if n != 50 {
			t.Errorf("%s: reported %d written refs, want 50", name, n)
		}
		if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
			t.Errorf("%s: partial file left behind (stat err %v)", name, statErr)
		}
	}
}

// failingSource adapts a function to Source for fault injection.
type failingSource func() (Ref, error)

func (f failingSource) Next() (Ref, error) { return f() }
