package subcache

import (
	"fmt"

	"subcache/internal/busim"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

// Shared-bus multiprocessor simulation, the system the paper's §1
// motivates: several cached processors arbitrating for one memory bus.
// Two models are provided: the quick analytic estimate (SharedBus-style
// sizing used by examples/multibus via MaxBusProcessors) and the exact
// discrete-event simulation exposed here.
type (
	// BusProcessor is one node: a cache configuration plus the word
	// accesses driving it.
	BusProcessor = busim.Processor
	// BusConfig sets hit cost, bus cycles per word, and the transaction
	// cost model.
	BusConfig = busim.Config
	// BusResult reports per-processor and system outcomes.
	BusResult = busim.Result
	// BusProcessorResult is one node's outcome.
	BusProcessorResult = busim.ProcessorResult
)

// SimulateSharedBus runs the discrete-event shared-bus system to
// completion: FIFO bus arbitration, processors stalled during their
// miss transfers.
func SimulateSharedBus(cfg BusConfig, procs []BusProcessor) (*BusResult, error) {
	return busim.Run(cfg, procs)
}

// BusProcessorFromWorkload builds a node from a named synthetic
// workload: n references generated, split to the cache's word size.
func BusProcessorFromWorkload(name string, cacheCfg Config, n int) (BusProcessor, error) {
	prof, ok := synth.ProfileByName(name)
	if !ok {
		return BusProcessor{}, fmt.Errorf("subcache: unknown workload %q", name)
	}
	g, err := synth.NewGenerator(prof, n)
	if err != nil {
		return BusProcessor{}, err
	}
	words, err := trace.SplitAll(g, cacheCfg.WordSize)
	if err != nil {
		return BusProcessor{}, err
	}
	return BusProcessor{Name: name, Config: cacheCfg, Accesses: words}, nil
}
