package subcache

import (
	"reflect"
	"strings"
	"testing"
)

// TestSimulateWorkloadMany: the facade's single-pass path must match
// per-configuration SimulateWorkload calls bit for bit, across family
// members, a second family, and a fallback configuration.
func TestSimulateWorkloadMany(t *testing.T) {
	cfgs := []Config{
		{NetSize: 1024, BlockSize: 16, SubBlockSize: 2, Assoc: 4, WordSize: 2},
		{NetSize: 1024, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2},
		{NetSize: 1024, BlockSize: 16, SubBlockSize: 4, Assoc: 4, WordSize: 2,
			Fetch: LoadForward},
		{NetSize: 256, BlockSize: 8, SubBlockSize: 8, Assoc: 2, WordSize: 2,
			Fetch: WholeBlock},
		{NetSize: 1024, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2,
			PrefetchOBL: true}, // not multipass-safe: reference fallback
	}
	const refs = 8000
	many, err := SimulateWorkloadMany("ED", cfgs, refs)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != len(cfgs) {
		t.Fatalf("got %d runs for %d configs", len(many), len(cfgs))
	}
	for i, cfg := range cfgs {
		one, err := SimulateWorkload("ED", cfg, refs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(many[i], one) {
			t.Errorf("cfgs[%d]: single-pass run differs\n got:  %v\n want: %v", i, many[i], one)
		}
	}
}

func TestSimulateWorkloadManyErrors(t *testing.T) {
	good := Config{NetSize: 256, BlockSize: 8, SubBlockSize: 2, Assoc: 2, WordSize: 2}
	if _, err := SimulateWorkloadMany("ED", nil, 1000); err == nil {
		t.Error("accepted empty config list")
	}
	if _, err := SimulateWorkloadMany("NOSUCH", []Config{good}, 1000); err == nil {
		t.Error("accepted unknown workload")
	}
	mixed := []Config{good,
		{NetSize: 256, BlockSize: 8, SubBlockSize: 4, Assoc: 2, WordSize: 4}}
	if _, err := SimulateWorkloadMany("ED", mixed, 1000); err == nil ||
		!strings.Contains(err.Error(), "WordSize") {
		t.Errorf("mixed word sizes: err = %v", err)
	}
	bad := []Config{{NetSize: 256, BlockSize: 8, SubBlockSize: 3, Assoc: 2, WordSize: 2}}
	if _, err := SimulateWorkloadMany("ED", bad, 1000); err == nil {
		t.Error("accepted invalid geometry")
	}
}

func TestParseEngineFacade(t *testing.T) {
	for want, name := range map[Engine]string{
		ReferenceEngine: "reference",
		MultiPassEngine: "multipass",
	} {
		got, err := ParseEngine(name)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Error("ParseEngine accepted junk")
	}
}
