package subcache

// Shape-regression tests: reduced-length sweeps compared against the
// paper's published Table 7 values (internal/paperdata).  These guard
// the reproduction quality reported in EXPERIMENTS.md -- a change to the
// generator or the simulator that wrecks ordering agreement fails here,
// not silently in the next full run.

import (
	"math"
	"testing"

	"subcache/internal/paperdata"
	"subcache/internal/sweep"
	"subcache/internal/synth"
)

// shapeRefs keeps the test affordable; the full 1M-reference agreement
// is recorded by cmd/experiments.
const shapeRefs = 100000

func sweepArch(t *testing.T, arch synth.Arch) *sweep.Result {
	t.Helper()
	res, err := sweep.Run(sweep.Request{
		Arch:   arch,
		Points: sweep.Grid([]int{64, 256, 1024}, arch.WordSize()),
		Refs:   shapeRefs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShapeOrderingAgreement: within each architecture, the simulation
// must rank at least 80% of paper anchor pairs in the paper's order
// (the full run achieves ~93%).
func TestShapeOrderingAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid sweep")
	}
	for _, arch := range synth.AllArchs() {
		res := sweepArch(t, arch)
		type pair struct{ paper, got float64 }
		var series []pair
		for k, cell := range paperdata.Table7[arch] {
			pt := sweep.Point{Net: k.Net, Block: k.Block, Sub: k.Sub}
			s, ok := res.Summaries[pt]
			if !ok {
				continue
			}
			series = append(series, pair{cell.Miss, s.Miss})
		}
		if len(series) < 10 {
			t.Fatalf("%v: only %d anchors matched", arch, len(series))
		}
		concordant, total := 0, 0
		for i := 0; i < len(series); i++ {
			for j := i + 1; j < len(series); j++ {
				if series[i].paper == series[j].paper {
					continue
				}
				total++
				if (series[i].paper < series[j].paper) == (series[i].got < series[j].got) {
					concordant++
				}
			}
		}
		agreement := float64(concordant) / float64(total)
		if agreement < 0.80 {
			t.Errorf("%v: ordering agreement %.1f%% below 80%% (%d/%d)",
				arch, 100*agreement, concordant, total)
		}
	}
}

// TestShapeMagnitudes: the geometric-mean measured/paper miss ratio per
// architecture must stay within a factor of two (the full run sits at
// 0.97-1.17).
func TestShapeMagnitudes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid sweep")
	}
	for _, arch := range synth.AllArchs() {
		res := sweepArch(t, arch)
		var logSum float64
		n := 0
		for k, cell := range paperdata.Table7[arch] {
			pt := sweep.Point{Net: k.Net, Block: k.Block, Sub: k.Sub}
			s, ok := res.Summaries[pt]
			if !ok || s.Miss == 0 {
				continue
			}
			logSum += math.Log(s.Miss / cell.Miss)
			n++
		}
		if n == 0 {
			t.Fatalf("%v: no anchors", arch)
		}
		geo := math.Exp(logSum / float64(n))
		if geo < 0.5 || geo > 2.0 {
			t.Errorf("%v: geometric mean measured/paper = %.2f outside [0.5, 2.0]", arch, geo)
		}
	}
}

// TestShapeArchOrderingAtSharedAnchors: at every configuration all four
// architectures share, miss ratios must be ordered
// Z8000 <= PDP-11 <= VAX-11 <= S/370 within tolerance.
func TestShapeArchOrderingAtSharedAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid sweep")
	}
	results := map[synth.Arch]*sweep.Result{}
	for _, arch := range synth.AllArchs() {
		results[arch] = sweepArch(t, arch)
	}
	shared := []sweep.Point{
		{Net: 64, Block: 8, Sub: 8},
		{Net: 256, Block: 8, Sub: 8},
		{Net: 256, Block: 16, Sub: 8},
		{Net: 1024, Block: 8, Sub: 8},
		{Net: 1024, Block: 16, Sub: 8},
		{Net: 1024, Block: 32, Sub: 32},
	}
	const slack = 1.05 // allow 5% noise at reduced trace length
	for _, pt := range shared {
		z := results[synth.Z8000].Summaries[pt].Miss
		p := results[synth.PDP11].Summaries[pt].Miss
		v := results[synth.VAX11].Summaries[pt].Miss
		s := results[synth.S370].Summaries[pt].Miss
		if z > p*slack || p > v*slack || v > s*slack {
			t.Errorf("%v: architecture ordering broken: Z=%.4f P=%.4f V=%.4f S=%.4f",
				pt, z, p, v, s)
		}
	}
}

// TestShapeSubBlockMonotonicity: along every constant-block line of the
// PDP-11 grid, shrinking the sub-block must raise miss and lower
// traffic -- the paper's central tradeoff, across the whole grid.
func TestShapeSubBlockMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid sweep")
	}
	res := sweepArch(t, synth.PDP11)
	pts := res.Points()
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		if a.Net != b.Net || a.Block != b.Block {
			continue
		}
		// Points() orders sub descending within a block line.
		sa, sb := res.Summaries[a], res.Summaries[b]
		if sb.Miss < sa.Miss {
			t.Errorf("%v -> %v: miss fell (%.4f -> %.4f) when sub-block shrank",
				a, b, sa.Miss, sb.Miss)
		}
		if sb.Traffic > sa.Traffic {
			t.Errorf("%v -> %v: traffic rose (%.4f -> %.4f) when sub-block shrank",
				a, b, sa.Traffic, sb.Traffic)
		}
	}
}

// TestShapeTable8LoadForward: the load-forward structure at the Z80,000
// point, against paperdata.Table8's relationships.
func TestShapeTable8LoadForward(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	pts := []sweep.Point{
		{Net: 256, Block: 16, Sub: 16},
		{Net: 256, Block: 16, Sub: 2, Fetch: LoadForward},
		{Net: 256, Block: 16, Sub: 2},
	}
	res, err := sweep.Run(sweep.Request{
		Arch: synth.Z8000, Points: pts, Refs: shapeRefs,
		Workloads: []string{"CCP", "C1", "C2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wb, lf, sb := res.Summaries[pts[0]], res.Summaries[pts[1]], res.Summaries[pts[2]]
	// Same relationships as the paper's Table 8 rows.
	if !(lf.Traffic > sb.Traffic && lf.Traffic < wb.Traffic) {
		t.Errorf("LF traffic %.4f not in (%.4f, %.4f)", lf.Traffic, sb.Traffic, wb.Traffic)
	}
	if !(lf.Miss >= wb.Miss && lf.Miss < sb.Miss/2) {
		t.Errorf("LF miss %.4f not in [%.4f, %.4f/2)", lf.Miss, wb.Miss, sb.Miss)
	}
}
