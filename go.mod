module subcache

go 1.22
