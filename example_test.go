package subcache_test

import (
	"fmt"

	"subcache"
)

// ExampleSimulateWorkload runs the paper's headline 1024-byte cache on
// the PDP-11 text-editor workload.  Results are deterministic: the
// synthetic workloads are seeded.
func ExampleSimulateWorkload() {
	cfg := subcache.Config{
		NetSize:      1024,
		BlockSize:    16,
		SubBlockSize: 8,
		Assoc:        4,
		WordSize:     2,
	}
	run, err := subcache.SimulateWorkload("ED", cfg, 100000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("gross size: %.0f bytes\n", cfg.GrossSize())
	fmt.Printf("miss ratio in (0, 0.2): %v\n", run.Miss > 0 && run.Miss < 0.2)
	fmt.Printf("traffic = miss x 4 words: %v\n", run.Traffic == run.Miss*4)
	// Output:
	// gross size: 1264 bytes
	// miss ratio in (0, 0.2): true
	// traffic = miss x 4 words: true
}

// ExampleSimulator_Access drives a cache by hand with individual
// references.
func ExampleSimulator_Access() {
	sim, err := subcache.New(subcache.Config{
		NetSize: 64, BlockSize: 16, SubBlockSize: 4, Assoc: 2, WordSize: 2,
	})
	if err != nil {
		panic(err)
	}
	sim.Access(subcache.Ref{Addr: 0x100, Kind: subcache.Read, Size: 2}) // miss
	sim.Access(subcache.Ref{Addr: 0x102, Kind: subcache.Read, Size: 2}) // hit: same sub-block
	sim.Access(subcache.Ref{Addr: 0x104, Kind: subcache.Read, Size: 2}) // sub-block miss
	sim.Finish()
	st := sim.Stats()
	fmt.Printf("accesses=%d misses=%d (block=%d sub-block=%d)\n",
		st.Accesses, st.Misses, st.BlockMisses, st.SubBlockMisses)
	// Output:
	// accesses=3 misses=2 (block=1 sub-block=1)
}

// ExampleConfig_GrossSize reproduces gross-size cells of the paper's
// Table 7.
func ExampleConfig_GrossSize() {
	for _, c := range []subcache.Config{
		{NetSize: 64, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2},
		{NetSize: 256, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2},
		{NetSize: 1024, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2},
	} {
		fmt.Printf("%dB net -> %.0f gross\n", c.NetSize, c.GrossSize())
	}
	// Output:
	// 64B net -> 79 gross
	// 256B net -> 316 gross
	// 1024B net -> 1264 gross
}

// ExampleNibbleModel shows the paper's nibble-mode cost arithmetic.
func ExampleNibbleModel() {
	m := subcache.NibbleModel()
	fmt.Printf("cost of 4 sequential words: %.2f\n", m.Cost(4))
	fmt.Printf("scale factor vs linear: %.2f\n", m.Cost(4)/4)
	// Output:
	// cost of 4 sequential words: 2.00
	// scale factor vs linear: 0.50
}
