package subcache

import (
	"fmt"
	"sort"

	"subcache/internal/stackdist"
	"subcache/internal/trace"
)

// Characteristics summarises a workload the way the paper characterises
// its traces (§3.3, §4.2.5): reference mix, footprint, the sequential
// bias of the instruction stream, and the LRU working-set curve
// computed in a single Mattson stack-distance pass (the paper's
// citation [16] for efficient LRU simulation).
type Characteristics struct {
	// WordSize is the data-path width the analysis used.
	WordSize int
	// WordAccesses is the total number of word accesses after
	// data-path splitting; IFetches/Reads/Writes partition it.
	WordAccesses uint64
	IFetches     uint64
	Reads        uint64
	Writes       uint64
	// FootprintBytes is the number of distinct bytes touched.
	FootprintBytes uint64
	// MeanRunWords is the mean length (in words) of forward-sequential
	// instruction-fetch runs, the forward bias load-forward exploits.
	MeanRunWords float64
	// BlockSize is the granularity of the working-set curve.
	BlockSize int
	// MissRatioAt maps cache capacity in bytes to the miss ratio of a
	// fully-associative LRU cache of that capacity (reads + ifetches).
	MissRatioAt map[int]float64
	// WorkingSet50/90 are the smallest capacities in bytes reaching 50%
	// and 90% hit ratios (0 if unreachable due to cold misses).
	WorkingSet50 int
	WorkingSet90 int
}

// Capacities returns the sorted capacities of the working-set curve.
func (c Characteristics) Capacities() []int {
	out := make([]int, 0, len(c.MissRatioAt))
	for k := range c.MissRatioAt {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// String renders a one-line summary.
func (c Characteristics) String() string {
	return fmt.Sprintf("accesses=%d footprint=%dB meanRun=%.1fw ws90=%dB",
		c.WordAccesses, c.FootprintBytes, c.MeanRunWords, c.WorkingSet90)
}

// AnalyzeOptions tunes Characterize.  The zero value is usable.
type AnalyzeOptions struct {
	// WordSize overrides the data-path width (default: the workload
	// architecture's width for CharacterizeWorkload, else 2).
	WordSize int
	// BlockSize sets the working-set-curve granularity (default 8).
	BlockSize int
	// Capacities lists the byte capacities to evaluate (default
	// 32..8192 in powers of two).
	Capacities []int
}

func (o *AnalyzeOptions) fill(defaultWord int) {
	if o.WordSize == 0 {
		o.WordSize = defaultWord
	}
	if o.BlockSize == 0 {
		o.BlockSize = 8
	}
	if len(o.Capacities) == 0 {
		for c := 32; c <= 8192; c *= 2 {
			o.Capacities = append(o.Capacities, c)
		}
	}
}

// CharacterizeWorkload analyses n references of a named synthetic
// workload.
func CharacterizeWorkload(name string, n int, opts AnalyzeOptions) (Characteristics, error) {
	prof, ok := WorkloadByName(name)
	if !ok {
		return Characteristics{}, fmt.Errorf("subcache: unknown workload %q", name)
	}
	refs, err := GenerateWorkload(name, n)
	if err != nil {
		return Characteristics{}, err
	}
	opts.fill(prof.Arch.WordSize())
	return Characterize(NewSliceSource(refs), opts)
}

// Characterize analyses an arbitrary reference stream.  Options default
// to a 2-byte word and an 8-byte-block working-set curve over 32B-8KB.
func Characterize(src Source, opts AnalyzeOptions) (Characteristics, error) {
	opts.fill(2)
	refs, err := trace.Collect(src, 0)
	if err != nil {
		return Characteristics{}, err
	}
	st, err := trace.Measure(trace.NewSliceSource(refs), opts.WordSize)
	if err != nil {
		return Characteristics{}, err
	}
	_, meanRun, err := trace.RunLengths(trace.NewSliceSource(refs), opts.WordSize)
	if err != nil {
		return Characteristics{}, err
	}
	prof, err := stackdist.New(opts.BlockSize, 1, false)
	if err != nil {
		return Characteristics{}, err
	}
	if err := prof.Run(trace.NewSplitter(trace.NewSliceSource(refs), opts.WordSize)); err != nil {
		return Characteristics{}, err
	}

	ch := Characteristics{
		WordSize:       opts.WordSize,
		WordAccesses:   st.Total,
		IFetches:       st.ByKind[trace.IFetch],
		Reads:          st.ByKind[trace.Read],
		Writes:         st.ByKind[trace.Write],
		FootprintBytes: st.FootprintLen,
		MeanRunWords:   meanRun,
		BlockSize:      opts.BlockSize,
		MissRatioAt:    make(map[int]float64, len(opts.Capacities)),
	}
	for _, capBytes := range opts.Capacities {
		ch.MissRatioAt[capBytes] = prof.MissRatio(capBytes / opts.BlockSize)
	}
	if blocks := prof.Percentile(0.5); blocks > 0 {
		ch.WorkingSet50 = blocks * opts.BlockSize
	}
	if blocks := prof.Percentile(0.9); blocks > 0 {
		ch.WorkingSet90 = blocks * opts.BlockSize
	}
	return ch, nil
}
