// Workingset: why the four architectures behave so differently (§4.2.5).
//
// "The Z8000 traces are all Unix utilities ... mostly small, compact
// pieces of code.  The PDP-11 programs are also relatively small ...
// The VAX programs are a mixture of small and large, and the System/370
// programs are large, using hundreds of kilobytes of storage."
//
// This example characterises one workload per architecture with a
// single Mattson stack-distance pass: footprint, sequential bias, and
// the cache capacity needed for a 90% hit ratio.  The working-set
// ordering explains the miss-ratio ordering of every table in the
// paper.
package main

import (
	"fmt"
	"log"

	"subcache"
)

func main() {
	workloads := []struct {
		name string
		arch subcache.Arch
	}{
		{"GREP", subcache.Z8000},
		{"ED", subcache.PDP11},
		{"SPICE", subcache.VAX11},
		{"PGO2", subcache.S370},
	}
	fmt.Printf("%-10s %-8s %-12s %-10s %-10s %s\n",
		"arch", "trace", "footprint", "mean run", "ws(90%)", "miss@1KB")
	for _, w := range workloads {
		ch, err := subcache.CharacterizeWorkload(w.name, 1000000, subcache.AnalyzeOptions{})
		if err != nil {
			log.Fatal(err)
		}
		ws := "n/a"
		if ch.WorkingSet90 > 0 {
			ws = fmt.Sprintf("%dB", ch.WorkingSet90)
		}
		fmt.Printf("%-10s %-8s %-12s %-10s %-10s %.4f\n",
			w.arch, w.name,
			fmt.Sprintf("%dKB", ch.FootprintBytes>>10),
			fmt.Sprintf("%.1f words", ch.MeanRunWords),
			ws, ch.MissRatioAt[1024])
	}
	fmt.Println("\nThe paper's ordering Z8000 < PDP-11 < VAX-11 < System/370 falls")
	fmt.Println("directly out of the working-set sizes: a 1 KB on-chip cache holds")
	fmt.Println("a Unix utility's hot loop but only a sliver of a PL/I compile.")
}
