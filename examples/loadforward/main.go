// Loadforward: the Zilog Z80,000 on-chip cache design point (§4.4).
//
// The Z80,000 used a 256-byte cache with 16 blocks of 16 bytes,
// two-byte sub-blocks and load-forward: on a miss, fetch the target
// sub-block and everything after it in the block.  This example
// compares that design with whole-block fill and plain sub-block fill
// on the Z8000 compiler traces the paper used (CCP, C1, C2), and shows
// the redundant-load overhead the paper measured to be negligible.
package main

import (
	"fmt"
	"log"

	"subcache"
)

func main() {
	const refs = 1000000
	type design struct {
		name string
		cfg  subcache.Config
	}
	base := subcache.Config{
		NetSize: 256, BlockSize: 16, Assoc: 4, WordSize: 2, WarmStart: true,
	}
	wb := base
	wb.SubBlockSize = 16 // whole 16-byte blocks
	sb := base
	sb.SubBlockSize = 2 // 2-byte sub-blocks, demand only
	lf := sb
	lf.Fetch = subcache.LoadForward // the Z80,000 scheme
	lfOpt := sb
	lfOpt.Fetch = subcache.LoadForwardOptimized

	designs := []design{
		{"whole-block fill (16,16)", wb},
		{"sub-block only   (16,2)", sb},
		{"Z80,000 load-fwd (16,2,LF)", lf},
		{"optimized LF     (16,2)", lfOpt},
	}
	fmt.Println("Z8000 compiler traces CCP/C1/C2, 256-byte cache, warm start")
	fmt.Printf("%-28s %-6s %-8s %-8s %-10s %s\n",
		"design", "gross", "miss", "traffic", "redundant", "t_eff (t_mem/t_cache=10)")
	for _, d := range designs {
		var miss, traffic, red, fills float64
		for _, name := range []string{"CCP", "C1", "C2"} {
			run, err := subcache.SimulateWorkload(name, d.cfg, refs)
			if err != nil {
				log.Fatal(err)
			}
			miss += run.Miss / 3
			traffic += run.Traffic / 3
			red += float64(run.RedundantLoads)
			fills += float64(run.SubBlockFills)
		}
		redFrac := 0.0
		if fills > 0 {
			redFrac = red / fills
		}
		teff := subcache.EffectiveAccessTime(1, 10, miss)
		fmt.Printf("%-28s %-6.0f %-8.4f %-8.4f %-10.4f %.2f\n",
			d.name, d.cfg.GrossSize(), miss, traffic, redFrac, teff)
	}
	fmt.Println("\nPaper: switching the Z80,000 geometry from whole-block fill to")
	fmt.Println("2-byte sub-blocks with load-forward cut traffic ~20% for ~7% more")
	fmt.Println("misses, and few loads were redundant, so the optimized scheme was")
	fmt.Println("judged not worth its complexity.")
}
