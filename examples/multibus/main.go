// Multibus: why traffic ratio matters (§1).
//
// "In microprocessor systems, relative to mini and mainframe computers,
// bus traffic can seriously limit system performance.  This problem is
// particularly acute if the bus is to be shared among two or more
// microprocessors."
//
// This example sizes a shared-bus multiprocessor: given a bus that a
// single cacheless processor would load to a target fraction, it
// computes how many processors fit once each has an on-chip cache, for
// several cache organisations -- including one whose traffic ratio
// exceeds 1.0, which makes the system *worse* than uncached.
package main

import (
	"fmt"
	"log"

	"subcache"
)

func main() {
	const (
		refs      = 1000000
		baseLot   = 0.30 // bus fraction one uncached processor uses
		targetUse = 0.70 // acceptable total bus utilisation
	)
	type choice struct {
		name string
		cfg  subcache.Config
	}
	choices := []choice{
		{"no cache", subcache.Config{}},
		{"64B cache, 16,16 (big blocks)", subcache.Config{
			NetSize: 64, BlockSize: 16, SubBlockSize: 16, Assoc: 4, WordSize: 2}},
		{"64B cache, 4,2 (minimum cache)", subcache.Config{
			NetSize: 64, BlockSize: 4, SubBlockSize: 2, Assoc: 4, WordSize: 2}},
		{"512B cache, 4,4", subcache.Config{
			NetSize: 512, BlockSize: 4, SubBlockSize: 4, Assoc: 4, WordSize: 2}},
		{"1024B cache, 16,8", subcache.Config{
			NetSize: 1024, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2}},
		{"1024B cache, 16,2", subcache.Config{
			NetSize: 1024, BlockSize: 16, SubBlockSize: 2, Assoc: 4, WordSize: 2}},
	}
	fmt.Println("Shared-bus multiprocessor sizing, PDP-11 suite")
	fmt.Printf("one uncached processor loads the bus to %.0f%%; target %.0f%% total\n\n",
		100*baseLot, 100*targetUse)
	fmt.Printf("%-32s %-8s %-9s %s\n", "per-processor cache", "miss", "traffic", "processors")
	for _, c := range choices {
		traffic := 1.0
		miss := 1.0
		if c.cfg.NetSize != 0 {
			_, s, err := subcache.SimulateSuite(subcache.PDP11, c.cfg, refs)
			if err != nil {
				log.Fatal(err)
			}
			traffic, miss = s.Traffic, s.Miss
		}
		procs := int(targetUse / (baseLot * traffic))
		warn := ""
		if traffic > 1 {
			warn = "  <- worse than no cache!"
		}
		fmt.Printf("%-32s %-8.4f %-9.4f %d%s\n", c.name, miss, traffic, procs, warn)
	}
	fmt.Println("\nPaper: a 64-byte 4,2 'minimum cache' already cuts bus traffic by")
	fmt.Println("one-third, and small caches with large blocks can *increase* it.")
}
