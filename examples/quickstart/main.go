// Quickstart: simulate the paper's headline configuration -- a
// 1024-byte, 4-way set-associative cache with 8-byte blocks -- on one
// workload from each architecture and print the miss and traffic ratios
// (compare the paper's abstract: PDP-11 .039/.156, Z8000 .015/.060,
// VAX-11 .080/.160, System/370 .244/.489).
package main

import (
	"fmt"
	"log"

	"subcache"
)

func main() {
	workloads := map[string]subcache.Arch{
		"ED":    subcache.PDP11,
		"CCP":   subcache.Z8000,
		"SPICE": subcache.VAX11,
		"FGO1":  subcache.S370,
	}
	// Present in a fixed order.
	for _, name := range []string{"ED", "CCP", "SPICE", "FGO1"} {
		arch := workloads[name]
		cfg := subcache.Config{
			NetSize:      1024,
			BlockSize:    8,
			SubBlockSize: 8,
			Assoc:        4,
			WordSize:     arch.WordSize(),
			WarmStart:    arch.WarmStart(),
		}
		run, err := subcache.SimulateWorkload(name, cfg, 1000000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-8s miss=%.3f traffic=%.3f (gross cache %v bytes)\n",
			arch, name, run.Miss, run.Traffic, cfg.GrossSize())
	}
}
