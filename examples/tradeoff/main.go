// Tradeoff: the paper's key flexibility argument (§4.2.1, Figure 2).
//
// A cache with variable sub-block size can run at different operating
// points: with a fixed 1024-byte net size and 32-byte blocks, sweeping
// the sub-block size from 32 bytes down to 2 trades miss ratio against
// traffic ratio.  A system with spare bus bandwidth picks large
// sub-blocks for low latency; a bus-limited multiprocessor picks small
// ones for low traffic.  This example reproduces the paper's b32 curve
// and shows what each operating point means for a shared bus.
package main

import (
	"fmt"
	"log"

	"subcache"
)

func main() {
	const refs = 1000000
	fmt.Println("PDP-11 suite, 1024-byte cache, 32-byte blocks, 4-way LRU")
	fmt.Println("sub-block  miss    traffic  nibble   bus processors(*)")
	for _, sub := range []int{32, 16, 8, 4, 2} {
		cfg := subcache.Config{
			NetSize:      1024,
			BlockSize:    32,
			SubBlockSize: sub,
			Assoc:        4,
			WordSize:     2,
		}
		var totalMiss, totalTraffic, totalNibble float64
		workloads := subcache.Workloads(subcache.PDP11)
		for _, w := range workloads {
			run, err := subcache.SimulateWorkload(w.Name, cfg, refs)
			if err != nil {
				log.Fatal(err)
			}
			totalMiss += run.Miss
			totalTraffic += run.Traffic
			totalNibble += run.Scaled
		}
		n := float64(len(workloads))
		miss, traffic, nibble := totalMiss/n, totalTraffic/n, totalNibble/n

		// How many processors can share one bus at 70% utilisation if
		// each would saturate 30% of it without a cache?  (The paper's
		// multiprocessor motivation: processor count scales as
		// 1/traffic-ratio.)
		procs := int(0.7 / (0.3 * traffic))
		fmt.Printf("%8dB  %.4f  %.4f   %.4f   %d\n", sub, miss, traffic, nibble, procs)
	}
	fmt.Println("\n(*) processors sharable on one bus at 70% utilisation, if one")
	fmt.Println("    uncached processor would load the bus to 30%.")
	fmt.Println("\nPaper: at 32-byte sub-blocks miss/traffic = 0.033/0.533; at 2-byte")
	fmt.Println("sub-blocks the miss ratio rises ~6x while traffic falls ~3x.")
}
