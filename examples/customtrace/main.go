// Customtrace: using subcache with your own traces.
//
// This example writes a small Dinero-style text trace to a temporary
// directory (as any external tracer might), reads it back, runs it
// through a cache, and characterises it -- the full file-driven
// workflow.  Swap the generated file for a real trace of yours:
//
//	2 <hexaddr> <size>   instruction fetch
//	0 <hexaddr> <size>   data read
//	1 <hexaddr> <size>   data write
//
// Gzip-compressed traces (*.din.gz, *.strc.gz) work transparently.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"subcache"
)

func main() {
	dir, err := os.MkdirTemp("", "subcache-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "mytrace.din.gz")

	// Stand-in for an external tracer: a synthetic workload written to
	// disk in the text format.
	refs, err := subcache.GenerateWorkload("QSORT", 200000)
	if err != nil {
		log.Fatal(err)
	}
	n, err := subcache.WriteTraceFile(path, subcache.NewSliceSource(refs), subcache.FormatAuto)
	if err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("wrote %d references to %s (%d KB gzipped)\n\n", n, filepath.Base(path), info.Size()>>10)

	// Characterise the trace before choosing a cache.
	tf, err := subcache.OpenTraceFile(path, subcache.FormatAuto)
	if err != nil {
		log.Fatal(err)
	}
	ch, err := subcache.Characterize(tf, subcache.AnalyzeOptions{WordSize: 4})
	tf.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("footprint %d KB, mean sequential run %.1f words, 90%%-hit working set %d bytes\n\n",
		ch.FootprintBytes>>10, ch.MeanRunWords, ch.WorkingSet90)

	// Run the trace through two candidate organisations.
	for _, cfg := range []subcache.Config{
		{NetSize: 256, BlockSize: 16, SubBlockSize: 4, Assoc: 4, WordSize: 4},
		{NetSize: 1024, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 4},
	} {
		tf, err := subcache.OpenTraceFile(path, subcache.FormatAuto)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := subcache.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.Run(tf); err != nil {
			log.Fatal(err)
		}
		tf.Close()
		fmt.Printf("%-22v miss=%.4f traffic=%.4f nibble=%.4f (gross %v bytes)\n",
			cfg, sim.MissRatio(), sim.TrafficRatio(),
			sim.ScaledTrafficRatio(subcache.NibbleModel()), cfg.GrossSize())
	}
}
