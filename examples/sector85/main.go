// Sector85: the IBM System/360 Model 85 story (§4.1, Table 6).
//
// The 360/85 -- the first machine with a cache -- used sector placement:
// 16 fully-associative 1024-byte sectors, 64-byte sub-blocks, chosen to
// keep the associative tag search down to 16 entries.  By 1984 cheap
// set-associative search had made that organisation obsolete: a 4-way
// set-associative cache with 64-byte blocks has a third of the misses.
// This example replays that comparison on the System/370 suite and
// measures how much of each sector is ever used.
package main

import (
	"fmt"
	"log"

	"subcache"
)

func main() {
	const refs = 1000000
	type org struct {
		name string
		cfg  subcache.Config
	}
	orgs := []org{
		{"360/85 sector (16x1024B, 64B sub)", subcache.Config{
			NetSize: 16384, BlockSize: 1024, SubBlockSize: 64,
			Assoc: 16, WordSize: 4, // 1 set: fully associative
		}},
		{"4-way set assoc, 64B blocks", subcache.Config{
			NetSize: 16384, BlockSize: 64, SubBlockSize: 64,
			Assoc: 4, WordSize: 4,
		}},
		{"8-way set assoc, 64B blocks", subcache.Config{
			NetSize: 16384, BlockSize: 64, SubBlockSize: 64,
			Assoc: 8, WordSize: 4,
		}},
		{"16-way set assoc, 64B blocks", subcache.Config{
			NetSize: 16384, BlockSize: 64, SubBlockSize: 64,
			Assoc: 16, WordSize: 4,
		}},
	}
	fmt.Println("System/370 suite, 16 KB caches, LRU")
	var sectorMiss float64
	for i, o := range orgs {
		_, s, err := subcache.SimulateSuite(subcache.S370, o.cfg, refs)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			sectorMiss = s.Miss
			fmt.Printf("%-36s miss=%.4f  (%.0f%% of each sector never touched)\n",
				o.name, s.Miss, 100*(1-s.Utilization))
			continue
		}
		fmt.Printf("%-36s miss=%.4f  (%.2fx better than the sector cache)\n",
			o.name, s.Miss, sectorMiss/s.Miss)
	}
	fmt.Println("\nPaper (Table 6): the 360/85 organisation misses 3x more than 4-way")
	fmt.Println("set-associative, and 72% of sector sub-blocks are never referenced")
	fmt.Println("while resident -- sectors are far too large at 1024 bytes.")
}
