// Package addr provides address arithmetic shared by the trace,
// synthesis and cache packages.
//
// The paper (Hill & Smith, ISCA 1984) studies 16-bit (PDP-11, Z8000) and
// 32-bit (VAX-11, System/370) architectures but computes gross cache
// sizes assuming a 32-bit address space throughout.  We use a 64-bit
// address type so that callers never worry about overflow; individual
// workloads constrain themselves to their architecture's address-space
// size.
package addr

import "fmt"

// Addr is a byte address in the simulated machine's address space.
type Addr uint64

// String formats the address in hexadecimal, the conventional notation
// for trace files and diagnostics.
func (a Addr) String() string { return fmt.Sprintf("%#x", uint64(a)) }

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// Log2 returns the base-2 logarithm of v.  v must be a positive power of
// two; Log2 panics otherwise, because every caller in this module passes
// a validated cache geometry parameter and a silent wrong answer would
// corrupt set indexing.
func Log2(v uint64) uint {
	if !IsPow2(v) {
		panic(fmt.Sprintf("addr.Log2: %d is not a power of two", v))
	}
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// AlignDown rounds a down to the nearest multiple of size.  size must be
// a power of two.
func AlignDown(a Addr, size uint64) Addr {
	return a &^ Addr(size-1)
}

// AlignUp rounds a up to the nearest multiple of size.  size must be a
// power of two.
func AlignUp(a Addr, size uint64) Addr {
	return (a + Addr(size-1)) &^ Addr(size-1)
}

// IsAligned reports whether a is a multiple of size (a power of two).
func IsAligned(a Addr, size uint64) bool {
	return a&Addr(size-1) == 0
}

// Offset returns the byte offset of a within its enclosing aligned
// region of the given power-of-two size.
func Offset(a Addr, size uint64) uint64 {
	return uint64(a) & (size - 1)
}

// Mask returns an address mask that keeps the low bits(n) of an address,
// i.e. (1<<n)-1.
func Mask(n uint) Addr { return Addr(1)<<n - 1 }
