package addr

import (
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	cases := []struct {
		v    uint64
		want bool
	}{
		{0, false}, {1, true}, {2, true}, {3, false}, {4, true},
		{5, false}, {6, false}, {7, false}, {8, true}, {1024, true},
		{1023, false}, {1 << 31, true}, {1 << 63, true}, {1<<63 + 1, false},
	}
	for _, c := range cases {
		if got := IsPow2(c.v); got != c.want {
			t.Errorf("IsPow2(%d) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestLog2(t *testing.T) {
	for n := uint(0); n < 64; n++ {
		if got := Log2(1 << n); got != n {
			t.Errorf("Log2(1<<%d) = %d, want %d", n, got, n)
		}
	}
}

func TestLog2PanicsOnNonPow2(t *testing.T) {
	for _, v := range []uint64{0, 3, 6, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Log2(%d) did not panic", v)
				}
			}()
			Log2(v)
		}()
	}
}

func TestAlignDown(t *testing.T) {
	cases := []struct {
		a    Addr
		size uint64
		want Addr
	}{
		{0, 8, 0}, {1, 8, 0}, {7, 8, 0}, {8, 8, 8}, {9, 8, 8},
		{0x1234, 16, 0x1230}, {0xffff, 2, 0xfffe}, {100, 1, 100},
	}
	for _, c := range cases {
		if got := AlignDown(c.a, c.size); got != c.want {
			t.Errorf("AlignDown(%v, %d) = %v, want %v", c.a, c.size, got, c.want)
		}
	}
}

func TestAlignUp(t *testing.T) {
	cases := []struct {
		a    Addr
		size uint64
		want Addr
	}{
		{0, 8, 0}, {1, 8, 8}, {7, 8, 8}, {8, 8, 8}, {9, 8, 16},
		{0x1231, 16, 0x1240}, {100, 1, 100},
	}
	for _, c := range cases {
		if got := AlignUp(c.a, c.size); got != c.want {
			t.Errorf("AlignUp(%v, %d) = %v, want %v", c.a, c.size, got, c.want)
		}
	}
}

func TestOffset(t *testing.T) {
	if got := Offset(0x1234, 16); got != 4 {
		t.Errorf("Offset(0x1234, 16) = %d, want 4", got)
	}
	if got := Offset(0x1230, 16); got != 0 {
		t.Errorf("Offset(0x1230, 16) = %d, want 0", got)
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 {
		t.Errorf("Mask(0) = %v, want 0", Mask(0))
	}
	if Mask(4) != 0xf {
		t.Errorf("Mask(4) = %v, want 0xf", Mask(4))
	}
	if Mask(32) != 0xffffffff {
		t.Errorf("Mask(32) = %v, want 0xffffffff", Mask(32))
	}
}

// Property: AlignDown(a) <= a < AlignDown(a)+size, and the result is
// aligned.
func TestAlignDownProperties(t *testing.T) {
	f := func(a uint32, shift uint8) bool {
		size := uint64(1) << (shift % 12)
		d := AlignDown(Addr(a), size)
		return uint64(d) <= uint64(a) &&
			uint64(a) < uint64(d)+size &&
			IsAligned(d, size)
	}
	if err := quick.Check(f, quickCfg(100)); err != nil {
		t.Error(err)
	}
}

// Property: AlignUp(a) >= a, is aligned, and is less than a+size.
func TestAlignUpProperties(t *testing.T) {
	f := func(a uint32, shift uint8) bool {
		size := uint64(1) << (shift % 12)
		u := AlignUp(Addr(a), size)
		return uint64(u) >= uint64(a) &&
			uint64(u) < uint64(a)+size &&
			IsAligned(u, size)
	}
	if err := quick.Check(f, quickCfg(100)); err != nil {
		t.Error(err)
	}
}

// Property: Offset(a, size) == a - AlignDown(a, size).
func TestOffsetProperty(t *testing.T) {
	f := func(a uint32, shift uint8) bool {
		size := uint64(1) << (shift % 12)
		return Offset(Addr(a), size) == uint64(Addr(a)-AlignDown(Addr(a), size))
	}
	if err := quick.Check(f, quickCfg(100)); err != nil {
		t.Error(err)
	}
}

func TestAddrString(t *testing.T) {
	if got := Addr(0x1a2b).String(); got != "0x1a2b" {
		t.Errorf("String = %q", got)
	}
	if got := Addr(0).String(); got != "0x0" {
		t.Errorf("String(0) = %q", got)
	}
}

func TestIsAligned(t *testing.T) {
	if !IsAligned(0x100, 16) || IsAligned(0x101, 16) {
		t.Error("IsAligned wrong")
	}
}
