// Package kernelbench times the three sweep engines' access kernels on
// two extreme reference streams, shared by cmd/benchsweep (which
// records the figures in BENCH_sweep.json) and cmd/benchcheck (which
// gates them against the committed BENCH_baseline.json).
//
//   - hit: a steady-state resident block is referenced word by word --
//     after the first touch every access is a full hit, the same-block
//     memoization's best case.
//   - miss: successive references cycle through more set-mates than the
//     set holds, so once warm every access is a block miss with an
//     eviction -- victim search, retirement and refill on every call.
//
// The geometry is one Table 7 family (1024-byte net, 32-byte block,
// 4-way, LRU, demand fetch, write-allocate) with the block's full
// sub-block ladder as lanes for the single-pass engines, so the figures
// are comparable across engines: reference simulates one configuration
// per call where multipass/stackdist carry four lanes per call.
package kernelbench

import (
	"fmt"
	"time"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/multipass"
	"subcache/internal/stackdist"
	"subcache/internal/sweep"
	"subcache/internal/trace"
)

// Geometry returns the benchmark family: every sub-block size of a
// 32-byte block on a 1024-byte, 4-way, demand-fetch cache.
func Geometry() []cache.Config {
	base := cache.Config{
		NetSize:      1024,
		BlockSize:    32,
		SubBlockSize: 32,
		Assoc:        4,
		WordSize:     2,
		Replacement:  cache.LRU,
		Fetch:        cache.DemandSubBlock,
		Write:        cache.WriteAllocate,
	}
	var cfgs []cache.Config
	for sub := 32; sub >= 2; sub /= 2 {
		c := base
		c.SubBlockSize = sub
		cfgs = append(cfgs, c)
	}
	return cfgs
}

// Streams builds the hit and miss reference chunks for the given
// geometry.
func Streams(cfg cache.Config) (hit, miss []trace.Ref) {
	const n = 8192
	hit = make([]trace.Ref, n)
	miss = make([]trace.Ref, n)
	words := cfg.BlockSize / cfg.WordSize
	for i := 0; i < n; i++ {
		hit[i] = trace.Ref{
			Addr: addr.Addr((i % words) * cfg.WordSize),
			Kind: trace.IFetch,
		}
	}
	// One more distinct block than the set holds, all mapping to set 0:
	// the LRU victim is always the next block referenced, so every
	// access misses.
	setStride := uint64(cfg.NumSets() * cfg.BlockSize)
	conflict := cfg.Assoc + 1
	for i := 0; i < n; i++ {
		miss[i] = trace.Ref{
			Addr: addr.Addr(uint64(i%conflict) * setStride),
			Kind: trace.IFetch,
		}
	}
	return hit, miss
}

// batcher is the common surface of the three engine kernels.
type batcher interface {
	AccessBatch([]trace.Ref)
}

// Time replays the chunk through the kernel until enough work has
// accumulated for a stable figure, returning ns per access.  A warm-up
// pass fills the cache first so the hit stream measures hits, not cold
// misses.
func Time(k batcher, chunk []trace.Ref) float64 {
	k.AccessBatch(chunk)
	const reps = 64
	start := time.Now()
	for r := 0; r < reps; r++ {
		k.AccessBatch(chunk)
	}
	return time.Since(start).Seconds() * 1e9 / float64(reps*len(chunk))
}

// Bench measures hit and miss ns for the named engine.
func Bench(eng sweep.Engine) (hitNs, missNs float64, err error) {
	cfgs := Geometry()
	hit, miss := Streams(cfgs[0])
	mk := func() (batcher, error) {
		switch eng {
		case sweep.Reference:
			return cache.New(cfgs[0])
		case sweep.MultiPass:
			return multipass.New(cfgs)
		case sweep.StackDist:
			return stackdist.NewEngine(cfgs, 1, 0)
		}
		return nil, fmt.Errorf("kernel bench: unknown engine %v", eng)
	}
	kh, err := mk()
	if err != nil {
		return 0, 0, err
	}
	km, err := mk()
	if err != nil {
		return 0, 0, err
	}
	return Time(kh, hit), Time(km, miss), nil
}

// Calibrate times a fixed dependent-multiply chain and returns its ns
// per iteration -- a pure core-frequency probe, untouched by cache or
// branch behaviour.  Shared-machine CI clocks swing by 2x between runs;
// dividing a fresh calibration by the baseline's gives the scale factor
// that separates a genuine kernel regression from the machine simply
// running slower today (see cmd/benchcheck).
func Calibrate() float64 {
	const iters = 50_000_000
	s := uint64(1)
	start := time.Now()
	for i := 0; i < iters; i++ {
		s = s*6364136223846793005 + 1442695040888963407
	}
	ns := time.Since(start).Seconds() * 1e9 / iters
	if s == 0 { // keep the chain observable
		return 0
	}
	return ns
}
