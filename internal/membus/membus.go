// Package membus models the cost of moving words across the
// processor-memory bus, the basis of the paper's traffic ratio and
// scaled (nibble-mode) traffic ratio.
//
// The paper (§4.3) observes that with page-mode or nibble-mode DRAMs, or
// with a transactional multiprocessor bus, the cost of fetching w
// sequential words has the form a + b*w rather than being proportional
// to w; using Bursky's timings (160 ns first word, 55 ns subsequent,
// approximated as 3:1) it adopts cost(w) = 1 + (w-1)/3 with the single
// word as the unit.  Multiplying the standard traffic ratio by
// cost(w)/w produces the scaled traffic ratio.
package membus

import (
	"fmt"

	"subcache/internal/cache"
)

// CostModel prices a contiguous transfer of w >= 1 sequential words, in
// units of one isolated single-word transfer.
type CostModel interface {
	// Cost returns the price of one transaction of w sequential words.
	Cost(w int) float64
	// Name identifies the model in reports.
	Name() string
}

// Linear is the conventional bus: cost(w) = w.  Under Linear the scaled
// traffic ratio equals the standard traffic ratio.
type Linear struct{}

// Cost implements CostModel.
func (Linear) Cost(w int) float64 { return float64(w) }

// Name implements CostModel.
func (Linear) Name() string { return "linear" }

// Nibble is the paper's nibble/page-mode memory: the first word costs 1,
// each subsequent word costs Ratio (the paper uses 1/3, from 160 ns vs
// 55 ns access times).
type Nibble struct {
	// Ratio is the relative cost of a subsequent word.  The zero value
	// is replaced by the paper's 1/3.
	Ratio float64
}

// PaperNibble is the paper's cost model: 1 + (w-1)/3.
var PaperNibble = Nibble{Ratio: 1.0 / 3.0}

// NibbleFromTimings derives the model from device timings: the access
// time of the first word and of each subsequent (page/nibble-mode)
// word.  Bursky's parts (160 ns / 55 ns) give the ratio the paper
// approximates as 1/3.
func NibbleFromTimings(firstNs, subsequentNs float64) (Nibble, error) {
	if firstNs <= 0 || subsequentNs <= 0 {
		return Nibble{}, fmt.Errorf("membus: timings must be positive, got %g/%g", firstNs, subsequentNs)
	}
	if subsequentNs > firstNs {
		return Nibble{}, fmt.Errorf("membus: subsequent-word time %g exceeds first-word time %g", subsequentNs, firstNs)
	}
	return Nibble{Ratio: subsequentNs / firstNs}, nil
}

// Cost implements CostModel.
func (n Nibble) Cost(w int) float64 {
	r := n.Ratio
	if r == 0 {
		r = 1.0 / 3.0
	}
	if w <= 0 {
		return 0
	}
	return 1 + r*float64(w-1)
}

// Name implements CostModel.
func (n Nibble) Name() string { return "nibble" }

// Transactional is a shared bus with fixed per-transaction overhead:
// cost(w) = Overhead + PerWord*w, the general a + b*w form of §4.3.
type Transactional struct {
	Overhead float64 // a: arbitration/address cost per transaction
	PerWord  float64 // b: cost per word moved
}

// Cost implements CostModel.
func (t Transactional) Cost(w int) float64 {
	if w <= 0 {
		return 0
	}
	return t.Overhead + t.PerWord*float64(w)
}

// Name implements CostModel.
func (t Transactional) Name() string {
	return fmt.Sprintf("transactional(a=%g,b=%g)", t.Overhead, t.PerWord)
}

// ScaledTraffic returns the scaled traffic ratio of a finished run under
// the given cost model: the total cost of the run's bus transactions
// divided by the cost of the no-cache baseline (one single-word
// transaction per counted access).
//
// For a demand-fetch cache whose transactions are all w words this
// reduces to the paper's formula traffic * cost(w)/w.
func ScaledTraffic(st *cache.Stats, m CostModel) float64 {
	if st.Accesses == 0 {
		return 0
	}
	// The dense histogram iterates in ascending width order by
	// construction, matching the sorted-map summation the function
	// historically used, so the float result is bit-identical from run
	// to run (and release to release).
	var total float64
	for w, n := range st.TxHist {
		if n != 0 {
			total += m.Cost(w) * float64(n)
		}
	}
	base := m.Cost(1) * float64(st.Accesses)
	if base == 0 {
		return 0
	}
	return total / base
}

// ScaleFactor returns cost(w)/w, the multiplier the paper applies to the
// standard traffic ratio for a cache with a fixed w-word transfer size.
func ScaleFactor(m CostModel, w int) float64 {
	if w <= 0 {
		return 0
	}
	return m.Cost(w) / float64(w)
}
