package membus

import (
	"math"
	"testing"
	"testing/quick"

	"subcache/internal/cache"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestLinearCost(t *testing.T) {
	m := Linear{}
	for w := 1; w <= 32; w *= 2 {
		if got := m.Cost(w); got != float64(w) {
			t.Errorf("Linear.Cost(%d) = %g", w, got)
		}
	}
}

func TestNibbleCostPaperValues(t *testing.T) {
	// The paper: cost(w) = 1 + (w-1)/3.
	m := PaperNibble
	cases := []struct {
		w    int
		want float64
	}{
		{1, 1}, {2, 1 + 1.0/3}, {4, 2}, {8, 1 + 7.0/3}, {16, 6},
	}
	for _, c := range cases {
		if got := m.Cost(c.w); !close(got, c.want) {
			t.Errorf("Nibble.Cost(%d) = %g, want %g", c.w, got, c.want)
		}
	}
}

func TestNibbleZeroRatioDefaults(t *testing.T) {
	if got := (Nibble{}).Cost(4); !close(got, 2) {
		t.Errorf("Nibble{}.Cost(4) = %g, want 2", got)
	}
}

func TestNibbleNonPositiveWords(t *testing.T) {
	if got := PaperNibble.Cost(0); got != 0 {
		t.Errorf("Cost(0) = %g", got)
	}
}

func TestTransactionalCost(t *testing.T) {
	m := Transactional{Overhead: 2, PerWord: 0.5}
	if got := m.Cost(4); !close(got, 4) {
		t.Errorf("Transactional.Cost(4) = %g, want 4", got)
	}
	if got := m.Cost(0); got != 0 {
		t.Errorf("Transactional.Cost(0) = %g, want 0", got)
	}
}

// TestScaleFactorTable7 verifies the multipliers implied by Table 7's
// nibble columns (word = one data-path word).
func TestScaleFactorTable7(t *testing.T) {
	cases := []struct {
		w    int
		want float64
	}{
		{1, 1},         // x,2 rows: nibble == standard on a 2-byte path
		{2, 2.0 / 3},   // e.g. PDP-11 16,4: 1.114 -> 0.743
		{4, 0.5},       // e.g. PDP-11 8,8: 0.672 -> 0.336
		{8, 10.0 / 24}, // e.g. PDP-11 32,16: 1.528 -> 0.637
		{16, 6.0 / 16}, // e.g. PDP-11 32,32: 2.336 -> 0.876
	}
	for _, c := range cases {
		if got := ScaleFactor(PaperNibble, c.w); !close(got, c.want) {
			t.Errorf("ScaleFactor(nibble, %d) = %g, want %g", c.w, got, c.want)
		}
	}
	// Spot-check the actual Table 7 arithmetic.
	if got := 1.528 * ScaleFactor(PaperNibble, 8); math.Abs(got-0.637) > 0.001 {
		t.Errorf("32,16 scaled = %g, want 0.637", got)
	}
	if got := 2.336 * ScaleFactor(PaperNibble, 16); math.Abs(got-0.876) > 0.001 {
		t.Errorf("32,32 scaled = %g, want 0.876", got)
	}
}

func TestScaledTrafficUniformTransactions(t *testing.T) {
	// 100 accesses, 10 transactions of 4 words: standard traffic 0.4,
	// nibble scaled 0.4 * 0.5 = 0.2.
	st := &cache.Stats{
		Accesses:     100,
		WordsFetched: 40,
		TxHist:       cache.TxHistFromMap(map[int]uint64{4: 10}),
	}
	if got := ScaledTraffic(st, Linear{}); !close(got, 0.4) {
		t.Errorf("linear scaled = %g, want 0.4", got)
	}
	if got := ScaledTraffic(st, PaperNibble); !close(got, 0.2) {
		t.Errorf("nibble scaled = %g, want 0.2", got)
	}
}

func TestScaledTrafficMixedTransactions(t *testing.T) {
	// Mixed transaction lengths (as load-forward produces): sum costs.
	st := &cache.Stats{
		Accesses: 10,
		TxHist:   cache.TxHistFromMap(map[int]uint64{1: 2, 4: 1}),
	}
	want := (2*1 + 1*2.0) / 10 // nibble: cost(1)=1, cost(4)=2
	if got := ScaledTraffic(st, PaperNibble); !close(got, want) {
		t.Errorf("mixed scaled = %g, want %g", got, want)
	}
}

func TestScaledTrafficEmpty(t *testing.T) {
	if got := ScaledTraffic(&cache.Stats{}, PaperNibble); got != 0 {
		t.Errorf("empty scaled = %g", got)
	}
}

// Property: linear scaled traffic equals the plain traffic ratio for any
// histogram.
func TestPropertyLinearEqualsStandard(t *testing.T) {
	f := func(counts [6]uint8, accesses uint16) bool {
		if accesses == 0 {
			return true
		}
		hist := map[int]uint64{}
		var words uint64
		for i, n := range counts {
			w := 1 << i
			hist[w] = uint64(n)
			words += uint64(w) * uint64(n)
		}
		st := &cache.Stats{Accesses: uint64(accesses), TxHist: cache.TxHistFromMap(hist)}
		st.WordsFetched = words
		return close(ScaledTraffic(st, Linear{}), st.TrafficRatio())
	}
	if err := quick.Check(f, quickCfg(100)); err != nil {
		t.Error(err)
	}
}

// Property: nibble cost never exceeds linear cost, and batching always
// helps (cost(w) <= w, cost strictly sub-additive for w > 1).
func TestPropertyNibbleCheaper(t *testing.T) {
	for w := 1; w <= 64; w++ {
		n, l := PaperNibble.Cost(w), Linear{}.Cost(w)
		if n > l+1e-12 {
			t.Errorf("nibble cost(%d)=%g exceeds linear %g", w, n, l)
		}
		if w > 1 && !(n < l) {
			t.Errorf("nibble cost(%d)=%g not strictly below linear", w, n)
		}
	}
}

func TestSharedBusDemand(t *testing.T) {
	bus := SharedBus{WordsPerSecond: 1e6, Model: Linear{}}
	// One processor, 1e6 accesses/s, traffic ratio 0.5: demand 0.5.
	if got := bus.Demand(1, 1e6, 0.5, 1); !close(got, 0.5) {
		t.Errorf("Demand = %g, want 0.5", got)
	}
	// Two processors double it.
	if got := bus.Demand(2, 1e6, 0.5, 1); !close(got, 1.0) {
		t.Errorf("Demand(2) = %g, want 1.0", got)
	}
}

func TestSharedBusNibbleBatching(t *testing.T) {
	lin := SharedBus{WordsPerSecond: 1e6, Model: Linear{}}
	nib := SharedBus{WordsPerSecond: 1e6, Model: PaperNibble}
	// Same traffic ratio moved in 4-word transactions costs less on a
	// nibble bus.
	if nib.Demand(1, 1e6, 0.5, 4) >= lin.Demand(1, 1e6, 0.5, 4) {
		t.Error("nibble bus should lower demand for batched transfers")
	}
}

func TestMaxProcessors(t *testing.T) {
	bus := SharedBus{WordsPerSecond: 1e6, Model: Linear{}}
	// Demand per processor = 0.1; at 70% target, 7 processors fit.
	if got := bus.MaxProcessors(1e6, 0.1, 1, 0.7); got != 7 {
		t.Errorf("MaxProcessors = %d, want 7", got)
	}
	// A cache that halves traffic doubles the processor count: the
	// paper's multiprocessor argument.
	if got := bus.MaxProcessors(1e6, 0.05, 1, 0.7); got != 14 {
		t.Errorf("MaxProcessors = %d, want 14", got)
	}
	if got := bus.MaxProcessors(0, 0.5, 1, 0.7); got != 0 {
		t.Errorf("MaxProcessors with zero rate = %d", got)
	}
}

func TestNames(t *testing.T) {
	if (Linear{}).Name() != "linear" || PaperNibble.Name() != "nibble" {
		t.Error("model names wrong")
	}
	tr := Transactional{Overhead: 1, PerWord: 2}
	if tr.Name() == "" {
		t.Error("transactional name empty")
	}
	bus := SharedBus{WordsPerSecond: 1, Model: Linear{}}
	if bus.String() == "" {
		t.Error("bus string empty")
	}
}

func TestNibbleFromTimings(t *testing.T) {
	// Bursky's parts: 160 ns first word, 55 ns subsequent.
	m, err := NibbleFromTimings(160, 55)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Ratio-55.0/160.0) > 1e-12 {
		t.Errorf("ratio = %g", m.Ratio)
	}
	// cost(4) with the exact ratio vs the paper's 1/3 approximation.
	if got, approx := m.Cost(4), PaperNibble.Cost(4); math.Abs(got-approx) > 0.1 {
		t.Errorf("timing-derived cost %g too far from paper approximation %g", got, approx)
	}
	if _, err := NibbleFromTimings(0, 55); err == nil {
		t.Error("accepted zero first-word time")
	}
	if _, err := NibbleFromTimings(55, 160); err == nil {
		t.Error("accepted subsequent slower than first")
	}
}
