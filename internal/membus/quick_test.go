package membus

import (
	"math/rand"
	"testing/quick"
)

// quickCfg builds a testing/quick configuration with an explicitly
// seeded generator, so property tests draw the same inputs every run
// instead of seeding from the clock.
func quickCfg(max int) *quick.Config {
	return &quick.Config{MaxCount: max, Rand: rand.New(rand.NewSource(1984))}
}
