// Verified on-disk result store: the durable half of the service's
// result cache.
//
// Each entry (<dir>/cache/<fp>.json) is a JSON envelope -- schema
// version, owning fingerprint, write timestamp, SHA-256 of the payload,
// payload -- written atomically via telemetry.WriteFileAtomic (fsync'd
// temp + rename), so readers never observe a torn write and a crash
// never leaves a partial entry.  A read re-verifies everything: an
// entry that fails to parse, carries the wrong version or fingerprint,
// or whose payload checksum mismatches is quarantined into
// <dir>/cache/corrupt/ (never served, never silently deleted -- the
// evidence is kept for inspection) and the request is transparently
// re-simulated.
//
// The store is bounded two ways: entries older than the TTL are
// reclaimed (along with their checkpoint journals -- a stale result's
// resume insurance is stale too), and when the total payload size
// exceeds the cap, least-recently-used entries are evicted -- their
// checkpoint journals are kept, so an evicted fingerprint re-simulates
// cheaply by journal resume.  Access order survives restarts via
// best-effort mtime updates on hits.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"subcache/internal/telemetry"
)

// storeVersion is the cache-entry envelope schema version; entries with
// a different version fail verification and are quarantined.
const storeVersion = 1

// storeEnvelope is the on-disk form of one cache entry.
type storeEnvelope struct {
	V           int             `json:"v"`
	FP          string          `json:"fp"`
	WrittenUnix int64           `json:"written_unix_ms"`
	Sum         string          `json:"sum"`
	Payload     json.RawMessage `json:"payload"`
}

// storeStatus classifies one store lookup.
type storeStatus int

const (
	// storeMiss: no entry (never written, or evicted earlier).
	storeMiss storeStatus = iota
	// storeHit: a verified, fresh entry.
	storeHit
	// storeExpired: the entry outlived the TTL and was reclaimed.
	storeExpired
	// storeCorrupt: the entry failed verification and was quarantined.
	storeCorrupt
)

// storeInfo is one entry's in-memory index state.
type storeInfo struct {
	size    int64
	written time.Time
	lastUse time.Time
}

// diskStore indexes and bounds the on-disk result cache.  All methods
// are safe for concurrent use; file I/O happens under the store mutex,
// which is fine at request granularity.
type diskStore struct {
	dir      string // the cache directory
	ttl      time.Duration
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*storeInfo
	total   int64
}

// openStore indexes every result entry already on disk.  Sizes and
// times come from file metadata; full verification happens on access.
func openStore(dir string, ttl time.Duration, maxBytes int64) (*diskStore, error) {
	st := &diskStore{dir: dir, ttl: ttl, maxBytes: maxBytes, entries: make(map[string]*storeInfo)}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: cache: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || filepath.Ext(name) != ".json" {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue
		}
		fp := strings.TrimSuffix(name, ".json")
		st.entries[fp] = &storeInfo{size: fi.Size(), written: fi.ModTime(), lastUse: fi.ModTime()}
		st.total += fi.Size()
	}
	return st, nil
}

func (st *diskStore) path(fp string) string { return filepath.Join(st.dir, fp+".json") }

// payloadSum is the entry checksum: hex SHA-256 over the payload bytes.
func payloadSum(payload []byte) string {
	h := sha256.Sum256(payload)
	return hex.EncodeToString(h[:])
}

// touch reports whether a fresh entry exists for fp, bumping its access
// time; expired reports that the entry existed but outlived the TTL and
// was reclaimed just now (the caller owns the bookkeeping: counters,
// journal record, checkpoint removal).
func (st *diskStore) touch(fp string) (ok, expired bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, found := st.entries[fp]
	if !found {
		return false, false
	}
	if st.expiredLocked(e, time.Now()) {
		st.dropLocked(fp, e)
		return false, true
	}
	e.lastUse = time.Now()
	return true, false
}

// get loads and fully verifies one entry.
func (st *diskStore) get(fp string) ([]byte, storeStatus) {
	st.mu.Lock()
	defer st.mu.Unlock()
	path := st.path(fp)
	b, err := os.ReadFile(path)
	if err != nil {
		if e, ok := st.entries[fp]; ok {
			st.dropIndexLocked(fp, e)
		}
		return nil, storeMiss
	}
	var env storeEnvelope
	if uerr := json.Unmarshal(b, &env); uerr != nil ||
		env.V != storeVersion || env.FP != fp ||
		env.Sum == "" || env.Sum != payloadSum(env.Payload) {
		st.quarantineLocked(fp, path)
		return nil, storeCorrupt
	}
	written := time.UnixMilli(env.WrittenUnix)
	e, ok := st.entries[fp]
	if !ok {
		// Written behind our back (another process sharing the dir);
		// index it so eviction sees it.
		e = &storeInfo{size: int64(len(b))}
		st.entries[fp] = e
		st.total += e.size
	}
	e.written = written
	if st.expiredLocked(e, time.Now()) {
		st.dropLocked(fp, e)
		return nil, storeExpired
	}
	e.lastUse = time.Now()
	// Persist the access order across restarts; best effort.
	now := time.Now()
	os.Chtimes(path, now, now)
	return env.Payload, storeHit
}

// put atomically writes one verified entry, then applies the TTL and
// size-cap policies.  expired lists entries reclaimed by TTL (their
// checkpoint journals should go too); evicted lists entries removed by
// the LRU size cap (their checkpoint journals stay, as cheap-resume
// insurance).  The entry just written is never evicted by its own put.
func (st *diskStore) put(fp string, payload []byte) (expired, evicted []string, err error) {
	env := storeEnvelope{
		V: storeVersion, FP: fp,
		WrittenUnix: time.Now().UnixMilli(),
		Sum:         payloadSum(payload),
		Payload:     payload,
	}
	b, err := json.Marshal(env)
	if err != nil {
		return nil, nil, fmt.Errorf("service: cache %s: %w", fp, err)
	}
	if err := telemetry.WriteFileAtomic(st.path(fp), b, 0o644); err != nil {
		return nil, nil, fmt.Errorf("service: cache %s: %w", fp, err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now()
	if e, ok := st.entries[fp]; ok {
		st.total += int64(len(b)) - e.size
		e.size = int64(len(b))
		e.written, e.lastUse = now, now
	} else {
		st.entries[fp] = &storeInfo{size: int64(len(b)), written: now, lastUse: now}
		st.total += int64(len(b))
	}
	// TTL reclamation first (it frees space the LRU pass then may not
	// need), oldest first for determinism.
	for _, cand := range st.sortedLocked(func(a, b *storeInfo) bool { return a.written.Before(b.written) }) {
		e := st.entries[cand]
		if cand == fp || !st.expiredLocked(e, now) {
			continue
		}
		st.dropLocked(cand, e)
		expired = append(expired, cand)
	}
	// LRU size cap.
	if st.maxBytes > 0 {
		for _, cand := range st.sortedLocked(func(a, b *storeInfo) bool { return a.lastUse.Before(b.lastUse) }) {
			if st.total <= st.maxBytes {
				break
			}
			if cand == fp {
				continue
			}
			e, ok := st.entries[cand]
			if !ok {
				continue
			}
			st.dropLocked(cand, e)
			evicted = append(evicted, cand)
		}
	}
	return expired, evicted, nil
}

// sortedLocked returns the index's fingerprints ordered by less over
// their infos (ties broken by fingerprint for determinism).
func (st *diskStore) sortedLocked(less func(a, b *storeInfo) bool) []string {
	fps := make([]string, 0, len(st.entries))
	for fp := range st.entries {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool {
		a, b := st.entries[fps[i]], st.entries[fps[j]]
		if less(a, b) != less(b, a) {
			return less(a, b)
		}
		return fps[i] < fps[j]
	})
	return fps
}

// expiredLocked applies the TTL policy.
func (st *diskStore) expiredLocked(e *storeInfo, now time.Time) bool {
	return st.ttl > 0 && now.Sub(e.written) > st.ttl
}

// dropLocked removes an entry's file and index state.
func (st *diskStore) dropLocked(fp string, e *storeInfo) {
	os.Remove(st.path(fp))
	st.dropIndexLocked(fp, e)
}

func (st *diskStore) dropIndexLocked(fp string, e *storeInfo) {
	st.total -= e.size
	delete(st.entries, fp)
}

// quarantineLocked moves a failed entry into corrupt/ under a unique
// name, keeping the evidence out of the serving path.
func (st *diskStore) quarantineLocked(fp, path string) {
	qdir := filepath.Join(st.dir, "corrupt")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		os.Remove(path)
	} else {
		dst := filepath.Join(qdir, fp+".json")
		for i := 1; ; i++ {
			if _, err := os.Lstat(dst); os.IsNotExist(err) {
				break
			}
			dst = filepath.Join(qdir, fmt.Sprintf("%s.json.%d", fp, i))
		}
		if os.Rename(path, dst) != nil {
			os.Remove(path)
		}
	}
	if e, ok := st.entries[fp]; ok {
		st.dropIndexLocked(fp, e)
	}
}

// stats returns the index's entry count and payload byte total.
func (st *diskStore) stats() (entries int, bytes int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries), st.total
}
