// Package service is the long-running sweep daemon behind cmd/sweepd:
// an HTTP/JSON front end that schedules sweep requests on a bounded
// worker pool and serves results from a fingerprint-keyed cache.
//
// The unit of identity is the checkpoint request fingerprint
// (sweep.RequestFingerprint): two requests that would simulate the
// same thing -- whatever their engine or shard strategy -- share one
// simulation, one result-cache entry, and one checkpoint journal.
// Concurrent identical requests are deduplicated singleflight-style
// (they join the in-flight job and all observe its one result), and a
// completed fingerprint is never re-simulated: results are cached in
// memory and on disk (<dir>/cache/<fp>.json, written atomically).
//
// Admission control bounds the damage any client can do: a full queue
// or an over-quota tenant is refused with 429 before any work is
// spent, and a draining server refuses with 503.  Graceful drain
// (Shutdown) stops admission, cancels still-queued jobs (nothing
// simulated, nothing lost), gives in-flight sweeps a grace period to
// finish, and past it cancels them at a chunk boundary -- their
// checkpoint journals retain every completed workload, so a
// resubmission after restart resumes bit-identically instead of
// starting over.
//
// Every job writes the PR 5 telemetry event stream to its own JSONL
// file (<dir>/jobs/<fp>/events.jsonl), flushed on each heartbeat so
// GET /v1/sweeps/{id}/events can tail a live run; the stream ends with
// the terminal run-end event (interrupted=true when drain cancelled
// it).  Service-level counters (requests admitted/rejected/deduped,
// cache hits, queue depth) ride the same telemetry vocabulary; see
// docs/SERVICE.md and docs/OBSERVABILITY.md.
package service

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"subcache/internal/sweep"
	"subcache/internal/telemetry"
)

// Options configures a Server.  The zero value of each field selects
// the documented default.
type Options struct {
	// Dir is the service's data directory: cache/ holds result and
	// checkpoint files, jobs/ the per-job event streams.
	Dir string
	// Workers bounds concurrent sweep executions (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds admitted-but-not-running jobs; a submit beyond
	// it is refused with 429 (default 64).
	QueueDepth int
	// TenantQuota bounds one tenant's live (queued + running) jobs;
	// beyond it the tenant's submits are refused with 429 (default 8).
	TenantQuota int
	// MaxRefs bounds the per-workload trace length a request may ask
	// for (default 2,000,000).
	MaxRefs int
	// Heartbeat is the per-job event heartbeat (and event-stream flush)
	// interval (default 500ms).
	Heartbeat time.Duration
	// JobHook, if non-nil, runs at the start of every job execution,
	// before the sweep; tests use it to hold jobs in the running state.
	// nil in production.
	JobHook func(ctx context.Context, fp string)
}

// jobStatus is a job's lifecycle state.
type jobStatus string

const (
	// StatusQueued: admitted, waiting for a worker.
	StatusQueued jobStatus = "queued"
	// StatusRunning: a worker is simulating it.
	StatusRunning jobStatus = "running"
	// StatusDone: completed; its result is cached and served.
	StatusDone jobStatus = "done"
	// StatusFailed: the sweep returned an error; resubmitting retries.
	StatusFailed jobStatus = "failed"
	// StatusCanceled: cut short by drain before or during simulation;
	// completed workloads remain in the checkpoint journal and a
	// resubmission resumes from them.
	StatusCanceled jobStatus = "canceled"
)

// job is one admitted sweep: identity, request, lifecycle and result.
// Status fields are guarded by the server mutex; done closes when the
// job reaches a terminal state.
type job struct {
	fp     string
	tenant string
	req    sweep.Request

	status  jobStatus
	errText string
	result  []byte // encoded Result, set iff status == StatusDone
	done    chan struct{}
	cancel  context.CancelFunc // set while running
}

// Server schedules, deduplicates, caches and serves sweeps.  Create
// with New, serve with ServeHTTP, stop with Shutdown.
type Server struct {
	opts Options
	rec  *telemetry.Run // service-level counters (no sink)

	mu       sync.Mutex
	jobs     map[string]*job // fingerprint -> latest job
	tenants  map[string]int  // tenant -> live jobs
	memCache map[string][]byte
	queued   int
	draining bool

	queue      chan *job
	wg         sync.WaitGroup
	runCtx     context.Context // cancelled to abort in-flight sweeps
	cancelRuns context.CancelFunc

	muxOnce sync.Once
	mux     *http.ServeMux
}

// New creates the data directories and starts the worker pool.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.TenantQuota <= 0 {
		opts.TenantQuota = 8
	}
	if opts.MaxRefs <= 0 {
		opts.MaxRefs = 2_000_000
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 500 * time.Millisecond
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("service: Options.Dir is required")
	}
	for _, d := range []string{opts.Dir, filepath.Join(opts.Dir, "cache"), filepath.Join(opts.Dir, "jobs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		rec:        telemetry.NewRun(telemetry.Options{}),
		jobs:       make(map[string]*job),
		tenants:    make(map[string]int),
		memCache:   make(map[string][]byte),
		queue:      make(chan *job, opts.QueueDepth),
		runCtx:     ctx,
		cancelRuns: cancel,
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Stats returns the service's counter snapshot.
func (s *Server) Stats() *telemetry.Snapshot { return s.rec.Snapshot() }

// submitOutcome is one admission decision, for the HTTP layer to
// render.
type submitOutcome struct {
	job     *job
	status  jobStatus
	result  []byte // non-nil on a cache hit
	cached  bool
	deduped bool
}

// submit applies cache lookup, singleflight dedup and admission
// control to one resolved request.  It returns an outcome, or an
// admission error (errRejected / errDraining).
func (s *Server) submit(req sweep.Request, fp, tenant string) (submitOutcome, error) {
	if tenant == "" {
		tenant = defaultTenant
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Result cache, memory then disk: a completed fingerprint is never
	// simulated again.
	if b := s.cachedLocked(fp); b != nil {
		s.rec.Add(telemetry.CacheHits, 1)
		return submitOutcome{status: StatusDone, result: b, cached: true}, nil
	}
	// Singleflight: join an identical in-flight job instead of queuing
	// a second simulation.
	if j, ok := s.jobs[fp]; ok && (j.status == StatusQueued || j.status == StatusRunning) {
		s.rec.Add(telemetry.RequestsDeduped, 1)
		return submitOutcome{job: j, status: j.status, deduped: true}, nil
	}
	// Admission control.
	if s.draining {
		s.rec.Add(telemetry.RequestsRejected, 1)
		return submitOutcome{}, errDraining
	}
	if s.queued >= s.opts.QueueDepth {
		s.rec.Add(telemetry.RequestsRejected, 1)
		return submitOutcome{}, fmt.Errorf("%w: queue full (%d queued)", errRejected, s.queued)
	}
	if s.tenants[tenant] >= s.opts.TenantQuota {
		s.rec.Add(telemetry.RequestsRejected, 1)
		return submitOutcome{}, fmt.Errorf("%w: tenant %q over quota (%d live jobs)", errRejected, tenant, s.tenants[tenant])
	}

	j := &job{fp: fp, tenant: tenant, req: req, status: StatusQueued, done: make(chan struct{})}
	s.jobs[fp] = j
	s.tenants[tenant]++
	s.queued++
	s.rec.SetGauge(telemetry.QueueDepth, int64(s.queued))
	s.rec.Add(telemetry.RequestsAdmitted, 1)
	s.queue <- j // buffered to QueueDepth; the bound above keeps this non-blocking
	return submitOutcome{job: j, status: StatusQueued}, nil
}

// cachedLocked returns the encoded result for fp from the memory
// cache, falling back to (and refilling from) the on-disk cache.
// Caller holds mu.
func (s *Server) cachedLocked(fp string) []byte {
	if b, ok := s.memCache[fp]; ok {
		return b
	}
	b, err := os.ReadFile(s.cachePath(fp))
	if err != nil {
		return nil
	}
	s.memCache[fp] = b
	return b
}

func (s *Server) cachePath(fp string) string {
	return filepath.Join(s.opts.Dir, "cache", fp+".json")
}

func (s *Server) checkpointPath(fp string) string {
	return filepath.Join(s.opts.Dir, "cache", fp+".ckpt.jsonl")
}

func (s *Server) eventsPath(fp string) string {
	return filepath.Join(s.opts.Dir, "jobs", fp, "events.jsonl")
}

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		s.queued--
		s.rec.SetGauge(telemetry.QueueDepth, int64(s.queued))
		if s.draining {
			// Drained before starting: nothing was simulated, nothing
			// is lost; the client resubmits after restart.
			s.finishLocked(j, StatusCanceled, nil, "server draining")
			s.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(s.runCtx)
		j.status = StatusRunning
		j.cancel = cancel
		s.mu.Unlock()

		status, result, errText := s.runJob(ctx, j)
		cancel()

		s.mu.Lock()
		s.finishLocked(j, status, result, errText)
		s.mu.Unlock()
	}
}

// finishLocked moves a job to a terminal state and releases its quota.
// Caller holds mu.
func (s *Server) finishLocked(j *job, status jobStatus, result []byte, errText string) {
	j.status = status
	j.errText = errText
	j.result = result
	if status == StatusDone {
		s.memCache[j.fp] = result
	}
	if s.tenants[j.tenant]--; s.tenants[j.tenant] <= 0 {
		delete(s.tenants, j.tenant)
	}
	close(j.done)
}

// runJob executes one sweep with its own telemetry stream and
// checkpoint journal.
func (s *Server) runJob(ctx context.Context, j *job) (jobStatus, []byte, string) {
	sink, err := telemetry.CreateJSONLSink(s.eventsPath(j.fp))
	if err != nil {
		return StatusFailed, nil, err.Error()
	}
	rec := telemetry.NewRun(telemetry.Options{
		Sink:      sink,
		Heartbeat: s.opts.Heartbeat,
		// Flush on every beat so tailing the stream mid-run works.
		OnHeartbeat: func(*telemetry.Snapshot) { sink.Flush() },
	})
	if s.opts.JobHook != nil {
		s.opts.JobHook(ctx, j.fp)
	}
	req := j.req
	req.Recorder = rec
	req.Checkpoint = s.checkpointPath(j.fp)
	res, runErr := sweep.RunContext(ctx, req)
	interrupted := ctx.Err() != nil
	if cerr := rec.CloseInterrupted(interrupted); cerr != nil && runErr == nil {
		runErr = cerr
	}
	switch {
	case interrupted:
		// Drain cancelled the sweep at a chunk boundary.  Every
		// workload that completed is in the checkpoint journal (each
		// record fsynced whole), so a resubmission resumes exactly.
		return StatusCanceled, nil, "interrupted by drain; completed workloads checkpointed"
	case runErr != nil:
		return StatusFailed, nil, runErr.Error()
	}
	b, err := encodeResult(buildResult(j.fp, j.req, res))
	if err != nil {
		return StatusFailed, nil, err.Error()
	}
	if err := telemetry.WriteFileAtomic(s.cachePath(j.fp), b, 0o644); err != nil {
		return StatusFailed, nil, err.Error()
	}
	return StatusDone, b, ""
}

// BeginDrain stops admission (new submits get 503) without touching
// running work; Shutdown calls it first.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
}

// Shutdown drains the pool: stop admitting, let queued jobs cancel
// cleanly (workers mark them canceled without simulating), and wait
// for in-flight sweeps.  If ctx expires first, in-flight sweeps are
// cancelled at their next chunk boundary -- their checkpoint journals
// keep every completed workload -- and Shutdown waits for the workers
// to exit.  Safe to call once; returns ctx's error if the grace
// period expired.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelRuns()
		<-done
	}
	s.cancelRuns()
	s.rec.Close()
	return err
}
