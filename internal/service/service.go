// Package service is the long-running sweep daemon behind cmd/sweepd:
// an HTTP/JSON front end that schedules sweep requests on a bounded
// worker pool and serves results from a fingerprint-keyed cache.
//
// The unit of identity is the checkpoint request fingerprint
// (sweep.RequestFingerprint): two requests that would simulate the
// same thing -- whatever their engine or shard strategy -- share one
// simulation, one result-cache entry, and one checkpoint journal.
// Concurrent identical requests are deduplicated singleflight-style
// (they join the in-flight job and all observe its one result), and a
// completed fingerprint is never re-simulated: results are cached in
// memory and in the verified on-disk store (<dir>/cache/<fp>.json,
// written atomically, checksummed on read, TTL- and size-bounded; see
// store.go).
//
// The job table itself is durable: every state transition is one
// fsynced record in the <dir>/jobs.jsonl write-ahead journal (see
// journal.go), so a crash -- SIGKILL included -- loses nothing that was
// admitted.  On startup the journal replays: jobs that never reached a
// terminal state are re-admitted onto the queue and resume
// bit-identically from their per-fingerprint checkpoint journals, while
// /readyz reports "recovering" until they have all reached terminal
// states again.  Graceful drain is different from a crash on purpose: a
// drain-canceled job gets a terminal canceled record -- the client was
// told -- so replay does not resurrect it.
//
// Admission control bounds the damage any client can do: a full queue
// or an over-quota tenant is refused with 429 before any work is
// spent, and a draining server refuses with 503.  Graceful drain
// (Shutdown) stops admission, cancels still-queued jobs (nothing
// simulated, nothing lost), gives in-flight sweeps a grace period to
// finish, and past it cancels them at a chunk boundary -- their
// checkpoint journals retain every completed workload, so a
// resubmission after restart resumes bit-identically instead of
// starting over.
//
// Execution is hardened per job: a request-supplied deadline
// (timeout_sec) bounds a sweep via its context, and transient failures
// (sweep.Transient: trace-source I/O, never panics or cancellations)
// are retried with exponential backoff plus jitter -- each retry
// resumes from the job's checkpoint journal, so completed workloads
// are never paid for twice.
//
// Every job writes the PR 5 telemetry event stream to its own JSONL
// file (<dir>/jobs/<fp>/events.jsonl), flushed on each heartbeat so
// GET /v1/sweeps/{id}/events can tail a live run; the stream ends with
// the terminal run-end event (interrupted=true when drain cancelled
// it).  Service-level counters (requests admitted/rejected/deduped,
// cache hits/evictions/quarantines, retries, recoveries, journal
// records, queue depth) ride the same telemetry vocabulary; see
// docs/SERVICE.md and docs/OBSERVABILITY.md.
package service

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"subcache/internal/sweep"
	"subcache/internal/telemetry"
)

// Options configures a Server.  The zero value of each field selects
// the documented default.
type Options struct {
	// Dir is the service's data directory: cache/ holds result and
	// checkpoint files, jobs/ the per-job event streams, jobs.jsonl the
	// job-table write-ahead journal.
	Dir string
	// Workers bounds concurrent sweep executions (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds admitted-but-not-running jobs; a submit beyond
	// it is refused with 429 (default 64).  Jobs recovered from the
	// journal at startup ride above the bound: recovery never refuses
	// what was already admitted.
	QueueDepth int
	// TenantQuota bounds one tenant's live (queued + running) jobs;
	// beyond it the tenant's submits are refused with 429 (default 8).
	TenantQuota int
	// MaxRefs bounds the per-workload trace length a request may ask
	// for (default 2,000,000).
	MaxRefs int
	// Heartbeat is the per-job event heartbeat (and event-stream flush)
	// interval (default 500ms).
	Heartbeat time.Duration
	// CacheTTL bounds the age of on-disk result-cache entries; older
	// ones are evicted -- checkpoint journal included -- and the next
	// request re-simulates (default 7 days; negative disables).
	CacheTTL time.Duration
	// CacheMaxBytes caps the on-disk result cache; past it the
	// least-recently-used entries are evicted, keeping their checkpoint
	// journals so re-simulation resumes cheaply (default 256 MiB;
	// negative disables).
	CacheMaxBytes int64
	// MaxRetries bounds sweep re-executions after a transient failure
	// (sweep.Transient); each retry resumes from the job's checkpoint
	// journal (default 2; negative disables retries).
	MaxRetries int
	// RetryBackoff is the base delay before retry attempt n, doubled
	// per attempt with jitter (default 250ms).
	RetryBackoff time.Duration
	// JobHook, if non-nil, runs at the start of every job execution,
	// before the sweep; tests use it to hold jobs in the running state.
	// nil in production.
	JobHook func(ctx context.Context, fp string)
	// SweepHook, if non-nil, runs before every sweep execution attempt
	// (including retries) and may mutate the request; tests use it to
	// inject per-attempt faults.  nil in production.
	SweepHook func(req *sweep.Request, fp string, attempt int)
}

// jobStatus is a job's lifecycle state.
type jobStatus string

const (
	// StatusQueued: admitted, waiting for a worker.
	StatusQueued jobStatus = "queued"
	// StatusRunning: a worker is simulating it.
	StatusRunning jobStatus = "running"
	// StatusDone: completed; its result is cached and served.
	StatusDone jobStatus = "done"
	// StatusFailed: the sweep returned an error (or hit its deadline);
	// resubmitting retries.
	StatusFailed jobStatus = "failed"
	// StatusCanceled: cut short by drain before or during simulation;
	// completed workloads remain in the checkpoint journal and a
	// resubmission resumes from them.
	StatusCanceled jobStatus = "canceled"
)

// journalKindFor maps a terminal job status to its journal transition.
func journalKindFor(status jobStatus) string {
	switch status {
	case StatusDone:
		return KindCompleted
	case StatusCanceled:
		return KindCanceled
	default:
		return KindFailed
	}
}

// job is one admitted sweep: identity, request, lifecycle and result.
// Status fields are guarded by the server mutex; done closes when the
// job reaches a terminal state.
type job struct {
	fp      string
	tenant  string
	req     sweep.Request
	timeout time.Duration // per-job deadline (0 = none)
	// recovered marks a job re-admitted from the journal at startup;
	// /readyz reports recovering until all such jobs are terminal.
	recovered bool

	// Per-job telemetry, created at admission so the event stream and
	// the job/queue spans cover the whole lifecycle, queue wait
	// included.  admittedAt anchors the queue-wait and end-to-end
	// latency histograms; span/qspan are the "job" and "queue" spans.
	admittedAt time.Time
	rec        *telemetry.Run
	sink       *telemetry.JSONLSink
	span       *telemetry.ActiveSpan
	qspan      *telemetry.ActiveSpan

	status  jobStatus
	errText string
	result  []byte // encoded Result, set iff status == StatusDone
	done    chan struct{}
	cancel  context.CancelFunc // set while running
}

// closeRecorder ends any spans still open and finalises the job's
// event stream (terminal run-end, sink close).  Idempotent, like
// everything it calls; safe on a job whose recorder never existed.
func (j *job) closeRecorder(interrupted bool) error {
	if j.rec == nil {
		return nil
	}
	j.qspan.End()
	j.span.End()
	return j.rec.CloseInterrupted(interrupted)
}

// Server schedules, deduplicates, caches and serves sweeps.  Create
// with New, serve with ServeHTTP, stop with Shutdown.
type Server struct {
	opts    Options
	rec     *telemetry.Run // service-level counters (no sink)
	journal *jobJournal
	store   *diskStore

	mu         sync.Mutex
	jobs       map[string]*job // fingerprint -> latest job
	tenants    map[string]int  // tenant -> live jobs
	memCache   map[string][]byte
	queued     int
	recovering int // recovered jobs not yet terminal
	draining   bool

	queue      chan *job
	wg         sync.WaitGroup
	runCtx     context.Context // cancelled to abort in-flight sweeps
	cancelRuns context.CancelFunc

	muxOnce sync.Once
	mux     *http.ServeMux
}

// New creates the data directories, replays the job journal
// (re-admitting every job that never reached a terminal state), opens
// the verified result store, and starts the worker pool.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.TenantQuota <= 0 {
		opts.TenantQuota = 8
	}
	if opts.MaxRefs <= 0 {
		opts.MaxRefs = 2_000_000
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 500 * time.Millisecond
	}
	switch {
	case opts.CacheTTL == 0:
		opts.CacheTTL = 7 * 24 * time.Hour
	case opts.CacheTTL < 0:
		opts.CacheTTL = 0 // disabled
	}
	switch {
	case opts.CacheMaxBytes == 0:
		opts.CacheMaxBytes = 256 << 20
	case opts.CacheMaxBytes < 0:
		opts.CacheMaxBytes = 0 // disabled
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	} else if opts.MaxRetries == 0 {
		opts.MaxRetries = 2
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 250 * time.Millisecond
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("service: Options.Dir is required")
	}
	for _, d := range []string{opts.Dir, filepath.Join(opts.Dir, "cache"), filepath.Join(opts.Dir, "jobs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	rec := telemetry.NewRun(telemetry.Options{})
	journal, recovered, err := openJobJournal(filepath.Join(opts.Dir, "jobs.jsonl"), rec)
	if err != nil {
		return nil, err
	}
	store, err := openStore(filepath.Join(opts.Dir, "cache"), opts.CacheTTL, opts.CacheMaxBytes)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		rec:      rec,
		journal:  journal,
		store:    store,
		jobs:     make(map[string]*job),
		tenants:  make(map[string]int),
		memCache: make(map[string][]byte),
		// Recovered jobs ride above QueueDepth so re-admission can
		// never block or refuse what a previous process accepted.
		queue:      make(chan *job, opts.QueueDepth+len(recovered)),
		runCtx:     ctx,
		cancelRuns: cancel,
	}
	for _, st := range recovered {
		req, fp, rerr := s.resolve(st.req)
		if rerr != nil {
			// The request no longer resolves (e.g. limits tightened);
			// terminalise it so replay stops resurrecting it.
			journal.append(JournalRecord{Kind: KindFailed, FP: st.fp, Error: "recovery: " + rerr.Error()})
			continue
		}
		tenant := st.tenant
		if tenant == "" {
			tenant = defaultTenant
		}
		j := &job{
			fp: fp, tenant: tenant, req: req,
			timeout:   timeoutOf(st.req),
			recovered: true,
			status:    StatusQueued,
			done:      make(chan struct{}),
		}
		if rerr := s.openJobRecorder(j); rerr != nil {
			// The event stream cannot be (re)created; terminalise rather
			// than abort startup over an observability file.
			journal.append(JournalRecord{Kind: KindFailed, FP: st.fp, Error: "recovery: " + rerr.Error()})
			continue
		}
		s.jobs[fp] = j
		s.tenants[tenant]++
		s.queued++
		s.recovering++
		rec.Add(telemetry.JobsRecovered, 1)
		s.queue <- j
	}
	rec.SetGauge(telemetry.QueueDepth, int64(s.queued))
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Stats returns the service's counter snapshot.
func (s *Server) Stats() *telemetry.Snapshot { return s.rec.Snapshot() }

// openJobRecorder creates a job's event stream and recorder at
// admission time, so the stream covers the whole lifecycle: the "job"
// span opens immediately and the "queue" span inside it measures the
// wait until a worker dequeues the job.  The sink truncates any
// previous stream for the fingerprint (a recovered job's torn one
// included).  The job fingerprint is the trace id on every span.
func (s *Server) openJobRecorder(j *job) error {
	sink, err := telemetry.CreateJSONLSink(s.eventsPath(j.fp))
	if err != nil {
		return err
	}
	j.sink = sink
	j.rec = telemetry.NewRun(telemetry.Options{
		Sink:      sink,
		Heartbeat: s.opts.Heartbeat,
		TraceID:   j.fp,
		// Flush on every beat so tailing the stream mid-run works.
		OnHeartbeat: func(*telemetry.Snapshot) { sink.Flush() },
	})
	j.admittedAt = time.Now()
	detail := ""
	if j.recovered {
		detail = "recovered"
	}
	j.span = telemetry.StartSpan(j.rec, telemetry.Span{Name: "job", Detail: detail})
	j.qspan = telemetry.StartSpan(j.rec, telemetry.Span{Name: "queue", Parent: j.span.ID()})
	sink.Flush()
	return nil
}

// Recovering returns the number of journal-recovered jobs that have not
// yet reached a terminal state; /readyz reports 503 until it is zero.
func (s *Server) Recovering() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovering
}

// submitOutcome is one admission decision, for the HTTP layer to
// render.
type submitOutcome struct {
	job     *job
	status  jobStatus
	result  []byte // non-nil on a cache hit
	cached  bool
	deduped bool
}

// submit applies cache lookup, singleflight dedup and admission
// control to one resolved request.  It returns an outcome, or an
// admission error (errRejected / errDraining).  An admitted job is
// journaled -- record fsynced, wire request embedded -- before submit
// returns, so from the client's 202 onward a crash cannot lose it.
func (s *Server) submit(req sweep.Request, wire *SweepRequest, fp, tenant string) (submitOutcome, error) {
	if tenant == "" {
		tenant = defaultTenant
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Result cache, memory then verified disk store: a completed
	// fingerprint is never simulated again.
	if b := s.cachedLocked(fp); b != nil {
		s.rec.Add(telemetry.CacheHits, 1)
		return submitOutcome{status: StatusDone, result: b, cached: true}, nil
	}
	// Singleflight: join an identical in-flight job instead of queuing
	// a second simulation.  Recovery rides this same path: a client
	// polling a crash-recovered id joins the re-admitted job.
	if j, ok := s.jobs[fp]; ok && (j.status == StatusQueued || j.status == StatusRunning) {
		s.rec.Add(telemetry.RequestsDeduped, 1)
		return submitOutcome{job: j, status: j.status, deduped: true}, nil
	}
	// Admission control.
	if s.draining {
		s.rec.Add(telemetry.RequestsRejected, 1)
		return submitOutcome{}, errDraining
	}
	if s.queued >= s.opts.QueueDepth {
		s.rec.Add(telemetry.RequestsRejected, 1)
		return submitOutcome{}, fmt.Errorf("%w: queue full (%d queued)", errRejected, s.queued)
	}
	if s.tenants[tenant] >= s.opts.TenantQuota {
		s.rec.Add(telemetry.RequestsRejected, 1)
		return submitOutcome{}, fmt.Errorf("%w: tenant %q over quota (%d live jobs)", errRejected, tenant, s.tenants[tenant])
	}

	// The event stream opens before the admission is journaled, so a
	// journaled job always has a stream; if the stream cannot be
	// created the submit fails before any durable state exists.
	j := &job{
		fp: fp, tenant: tenant, req: req,
		timeout: timeoutOf(wire),
		status:  StatusQueued,
		done:    make(chan struct{}),
	}
	if err := s.openJobRecorder(j); err != nil {
		return submitOutcome{}, err
	}
	// Journal the admission before exposing it; if the record cannot be
	// made durable the job is not admitted at all (the client sees 500
	// and retries), preserving "journaled iff admitted".
	if err := s.journal.append(JournalRecord{Kind: KindAdmitted, FP: fp, Tenant: tenant, Req: wire}); err != nil {
		j.closeRecorder(true)
		return submitOutcome{}, err
	}
	s.jobs[fp] = j
	s.tenants[tenant]++
	s.queued++
	s.rec.SetGauge(telemetry.QueueDepth, int64(s.queued))
	s.rec.Add(telemetry.RequestsAdmitted, 1)
	s.queue <- j // buffered to QueueDepth; the bound above keeps this non-blocking
	return submitOutcome{job: j, status: StatusQueued}, nil
}

// cachedLocked returns the encoded result for fp from the memory
// cache, falling back to (and refilling from) the verified disk store.
// TTL expiry and verification failures surface here: an expired entry
// is evicted (journal record, counter, checkpoint reclaimed) and a
// corrupt one quarantined and counted; both read as a miss, so the
// caller transparently re-simulates.  Caller holds mu.
func (s *Server) cachedLocked(fp string) []byte {
	if b, ok := s.memCache[fp]; ok {
		if fresh, expired := s.store.touch(fp); fresh {
			return b
		} else if expired {
			s.noteEvictionsLocked([]string{fp}, true)
		}
		// Evicted or expired on disk: the memory copy dies with it.
		delete(s.memCache, fp)
		return nil
	}
	t0 := time.Now()
	payload, status := s.store.get(fp)
	// Disk-read latency only; memory-cache hits return above unobserved.
	s.rec.ObserveDur(telemetry.HistCacheRead, time.Since(t0))
	switch status {
	case storeHit:
		s.memCache[fp] = payload
		return payload
	case storeExpired:
		s.noteEvictionsLocked([]string{fp}, true)
	case storeCorrupt:
		s.rec.Add(telemetry.CacheCorruptQuarantined, 1)
	}
	return nil
}

// noteEvictionsLocked records store evictions: counter, a journal
// evicted record per fingerprint, the memory copy dropped, and -- for
// TTL reclamation -- the checkpoint journal removed too (a stale
// result's resume insurance is equally stale).  Caller holds mu.
func (s *Server) noteEvictionsLocked(fps []string, reclaimCheckpoint bool) {
	for _, fp := range fps {
		s.rec.Add(telemetry.CacheEvictions, 1)
		delete(s.memCache, fp)
		s.journal.append(JournalRecord{Kind: KindEvicted, FP: fp})
		if reclaimCheckpoint {
			os.Remove(s.checkpointPath(fp))
		}
	}
}

func (s *Server) cachePath(fp string) string {
	return filepath.Join(s.opts.Dir, "cache", fp+".json")
}

func (s *Server) checkpointPath(fp string) string {
	return filepath.Join(s.opts.Dir, "cache", fp+".ckpt.jsonl")
}

func (s *Server) eventsPath(fp string) string {
	return filepath.Join(s.opts.Dir, "jobs", fp, "events.jsonl")
}

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		s.queued--
		s.rec.SetGauge(telemetry.QueueDepth, int64(s.queued))
		if s.draining {
			// Drained before starting: nothing was simulated, nothing
			// is lost; the client resubmits after restart.  The event
			// stream is finalised (spans closed, run-end interrupted)
			// outside the lock -- it is file I/O -- before the terminal
			// state is published.
			s.mu.Unlock()
			j.closeRecorder(true)
			s.mu.Lock()
			s.finishLocked(j, StatusCanceled, nil, "server draining")
			s.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(s.runCtx)
		j.status = StatusRunning
		j.cancel = cancel
		// Best effort: if this record is lost, replay re-runs from the
		// admitted record and the checkpoint journal still dedups work.
		s.journal.append(JournalRecord{Kind: KindStarted, FP: j.fp})
		s.mu.Unlock()

		status, result, errText := s.runJob(ctx, j)
		cancel()

		s.mu.Lock()
		s.finishLocked(j, status, result, errText)
		s.mu.Unlock()
	}
}

// finishLocked moves a job to a terminal state, journals the
// transition, and releases its quota.  Caller holds mu.
func (s *Server) finishLocked(j *job, status jobStatus, result []byte, errText string) {
	j.status = status
	j.errText = errText
	j.result = result
	if status == StatusDone {
		s.memCache[j.fp] = result
	}
	if !j.admittedAt.IsZero() {
		s.rec.ObserveDur(telemetry.HistJobLatency, time.Since(j.admittedAt))
	}
	// Best effort: a lost terminal record means replay re-admits the
	// job, and the result cache / checkpoint journal absorb the rerun.
	s.journal.append(JournalRecord{Kind: journalKindFor(status), FP: j.fp, Error: errText})
	if j.recovered {
		s.recovering--
	}
	if s.tenants[j.tenant]--; s.tenants[j.tenant] <= 0 {
		delete(s.tenants, j.tenant)
	}
	close(j.done)
}

// retryDelay is the backoff before retry attempt (attempt+1): base
// doubled per attempt (capped at 64x), with uniform jitter in
// [delay/2, delay] so synchronized failures do not retry in lockstep.
func retryDelay(base time.Duration, attempt int) time.Duration {
	if attempt > 6 {
		attempt = 6
	}
	d := base << uint(attempt)
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(half+1))
}

// runJob executes one sweep on the job's admission-time telemetry
// stream and checkpoint journal, applying the per-job deadline and the
// transient retry policy.  Queue wait, per-attempt execution, retry
// backoff and the cache write are observed on both the job's recorder
// (so they land in its event stream and RUN-style snapshot) and the
// server recorder (so /metrics aggregates across jobs).
func (s *Server) runJob(ctx context.Context, j *job) (jobStatus, []byte, string) {
	wait := time.Since(j.admittedAt)
	j.qspan.End()
	s.rec.ObserveDur(telemetry.HistQueueWait, wait)
	j.rec.ObserveDur(telemetry.HistQueueWait, wait)
	// The job deadline nests inside the drain context, so "drained" and
	// "timed out" stay distinguishable below.
	jctx := ctx
	if j.timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, j.timeout)
		defer cancel()
	}
	if s.opts.JobHook != nil {
		s.opts.JobHook(jctx, j.fp)
	}
	req := j.req
	req.Recorder = j.rec
	req.Checkpoint = s.checkpointPath(j.fp)

	var res *sweep.Result
	var runErr error
	for attempt := 0; ; attempt++ {
		if s.opts.SweepHook != nil {
			s.opts.SweepHook(&req, j.fp, attempt)
		}
		asp := telemetry.StartSpan(j.rec, telemetry.Span{
			Name:   "attempt",
			Parent: j.span.ID(),
			Detail: strconv.Itoa(attempt),
		})
		t0 := time.Now()
		res, runErr = sweep.RunContext(telemetry.ContextWithSpan(jctx, asp.ID()), req)
		exec := time.Since(t0)
		s.rec.ObserveDur(telemetry.HistExecution, exec)
		j.rec.ObserveDur(telemetry.HistExecution, exec)
		if runErr != nil {
			asp.EndErr(runErr.Error())
		} else {
			asp.End()
		}
		if runErr == nil || jctx.Err() != nil ||
			attempt >= s.opts.MaxRetries || !sweep.Transient(runErr) {
			break
		}
		// Transient (trace-source I/O) and attempts remain: back off and
		// re-run.  The checkpoint journal carries every workload that
		// completed before the failure, so the retry resumes, not
		// restarts.
		s.rec.Add(telemetry.JobRetries, 1)
		t0 = time.Now()
		select {
		case <-time.After(retryDelay(s.opts.RetryBackoff, attempt)):
		case <-jctx.Done():
		}
		backoff := time.Since(t0)
		s.rec.ObserveDur(telemetry.HistRetryBackoff, backoff)
		j.rec.ObserveDur(telemetry.HistRetryBackoff, backoff)
	}

	drained := ctx.Err() != nil
	timedOut := !drained && jctx.Err() != nil
	status, result, errText := func() (jobStatus, []byte, string) {
		switch {
		case drained:
			// Drain cancelled the sweep at a chunk boundary.  Every
			// workload that completed is in the checkpoint journal (each
			// record fsynced whole), so a resubmission resumes exactly.
			return StatusCanceled, nil, "interrupted by drain; completed workloads checkpointed"
		case timedOut:
			return StatusFailed, nil, fmt.Sprintf("deadline exceeded (timeout %s); completed workloads checkpointed", j.timeout)
		case runErr != nil:
			return StatusFailed, nil, runErr.Error()
		}
		b, err := encodeResult(buildResult(j.fp, j.req, res))
		if err != nil {
			return StatusFailed, nil, err.Error()
		}
		csp := telemetry.StartSpan(j.rec, telemetry.Span{Name: "cache-write", Parent: j.span.ID()})
		t0 := time.Now()
		expired, evicted, err := s.store.put(j.fp, b)
		wdur := time.Since(t0)
		s.rec.ObserveDur(telemetry.HistCacheWrite, wdur)
		j.rec.ObserveDur(telemetry.HistCacheWrite, wdur)
		if err != nil {
			csp.EndErr(err.Error())
			return StatusFailed, nil, err.Error()
		}
		csp.End()
		if len(expired) > 0 || len(evicted) > 0 {
			s.mu.Lock()
			s.noteEvictionsLocked(expired, true)
			s.noteEvictionsLocked(evicted, false)
			s.mu.Unlock()
		}
		return StatusDone, b, ""
	}()
	if errText != "" {
		j.span.EndErr(errText)
	} else {
		j.span.End()
	}
	if cerr := j.closeRecorder(drained || timedOut); cerr != nil && status == StatusDone {
		// A torn event stream on a completed job: the result is good,
		// but the observable record is not -- surface it.
		return StatusFailed, nil, cerr.Error()
	}
	return status, result, errText
}

// BeginDrain stops admission (new submits get 503) without touching
// running work; Shutdown calls it first.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
}

// Shutdown drains the pool: stop admitting, let queued jobs cancel
// cleanly (workers mark them canceled without simulating), and wait
// for in-flight sweeps.  If ctx expires first, in-flight sweeps are
// cancelled at their next chunk boundary -- their checkpoint journals
// keep every completed workload -- and Shutdown waits for the workers
// to exit.  Every job the workers terminalise on the way down gets its
// journal record, so a drained server's journal replays to nothing.
// Safe to call once; returns ctx's error if the grace period expired.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelRuns()
		<-done
	}
	s.cancelRuns()
	s.rec.Close()
	s.journal.Close()
	return err
}
