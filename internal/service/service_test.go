// Service-level tests: the scheduling, dedup, caching, admission and
// drain contracts of the sweep daemon, exercised through the real HTTP
// front end (httptest) so every assertion covers the same path a
// client sees.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"subcache/internal/telemetry"
)

// newTestServer builds a Server over a temp dir plus an httptest front
// end, and registers an orderly shutdown.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 20 * time.Millisecond
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// smallRequest is quick to simulate: one net size, short traces.
func smallRequest(refs int) SweepRequest {
	return SweepRequest{Arch: "PDP-11", Nets: []int{64}, Refs: refs}
}

// post submits a request and decodes the response envelope.
func post(t *testing.T, ts *httptest.Server, req SweepRequest, wait bool) (int, SubmitResponse) {
	t.Helper()
	url := ts.URL + "/v1/sweeps"
	if wait {
		url += "?wait=1"
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// TestServiceEndToEnd drives one sweep through submit, result, status,
// cache hit and event stream.
func TestServiceEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	req := smallRequest(5000)

	code, resp := post(t, ts, req, true)
	if code != http.StatusOK {
		t.Fatalf("submit: code %d (%s %s), want 200", code, resp.Status, resp.Error)
	}
	if resp.Cached || resp.Deduped {
		t.Fatalf("first submit reported cached=%v deduped=%v", resp.Cached, resp.Deduped)
	}
	var res Result
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.Fingerprint != resp.ID {
		t.Fatalf("result fingerprint %q != job id %q", res.Fingerprint, resp.ID)
	}
	if len(res.Points) == 0 || len(res.Points[0].Runs) == 0 {
		t.Fatalf("empty result: %+v", res)
	}

	// The identical request is a cache hit: no second simulation.
	code, hit := post(t, ts, req, false)
	if code != http.StatusOK || !hit.Cached {
		t.Fatalf("duplicate submit: code %d cached=%v, want 200/true", code, hit.Cached)
	}
	if !bytes.Equal(hit.Result, resp.Result) {
		t.Fatal("cached result differs from the simulated one")
	}

	// Status endpoint agrees.
	st, err := http.Get(ts.URL + "/v1/sweeps/" + resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if st.StatusCode != http.StatusOK {
		t.Fatalf("status: code %d, want 200", st.StatusCode)
	}

	// The job's event stream is a valid versioned stream ending on the
	// terminal run-end event (ValidateStream rejects anything after it).
	f, err := os.Open(s.eventsPath(resp.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stats, err := telemetry.ValidateStream(f)
	if err != nil {
		t.Fatalf("event stream invalid: %v", err)
	}
	for _, want := range []string{telemetry.EventRunStart, telemetry.EventPointDone, telemetry.EventRunEnd} {
		if stats.ByType[want] == 0 {
			t.Errorf("event stream missing %q events: %v", want, stats.ByType)
		}
	}
	if stats.ByType[telemetry.EventRunEnd] != 1 {
		t.Errorf("stream has %d run-end events, want 1", stats.ByType[telemetry.EventRunEnd])
	}

	snap := s.Stats()
	if got := snap.Counter(telemetry.RequestsAdmitted); got != 1 {
		t.Errorf("requests_admitted = %d, want 1", got)
	}
	if got := snap.Counter(telemetry.CacheHits); got != 1 {
		t.Errorf("cache_hits = %d, want 1", got)
	}

	// Unknown ids are 404.
	nf, err := http.Get(ts.URL + "/v1/sweeps/no-such-sweep")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: code %d, want 404", nf.StatusCode)
	}
}

// TestSubmitValidation rejects malformed requests with 400 before any
// work is admitted.
func TestSubmitValidation(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	bad := []SweepRequest{
		{Arch: "PDP-12", Nets: []int{64}, Refs: 1000},                              // unknown arch
		{Arch: "PDP-11", Nets: []int{64}, Refs: 0},                                 // refs out of range
		{Arch: "PDP-11", Nets: nil, Refs: 1000},                                    // no nets
		{Arch: "PDP-11", Nets: []int{96}, Refs: 1000},                              // not a power of two
		{Arch: "PDP-11", Nets: []int{64}, Refs: 1000, Engine: "warp"},              // unknown engine
		{Arch: "PDP-11", Nets: []int{64}, Refs: 1000, Workloads: []string{"nope"}}, // unknown workload
	}
	for i, req := range bad {
		if code, resp := post(t, ts, req, false); code != http.StatusBadRequest {
			t.Errorf("bad request %d: code %d (%s), want 400", i, code, resp.Error)
		}
	}
	if got := s.Stats().Counter(telemetry.RequestsAdmitted); got != 0 {
		t.Errorf("requests_admitted = %d after only invalid submits, want 0", got)
	}
}

// blockingHook returns a JobHook that parks every job until release is
// closed (or the job's context is cancelled), plus a channel that
// receives each job's fingerprint as it starts running.
func blockingHook() (hook func(context.Context, string), started chan string, release chan struct{}) {
	started = make(chan string, 64)
	release = make(chan struct{})
	hook = func(ctx context.Context, fp string) {
		started <- fp
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	return hook, started, release
}

// TestAdmissionControlQueueFull proves the queue-depth bound: with one
// worker parked and the one queue slot taken, the next submit is
// refused with 429 and counted as rejected.
func TestAdmissionControlQueueFull(t *testing.T) {
	hook, started, release := blockingHook()
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, JobHook: hook})
	defer close(release)

	// Job A starts running (leaving the queue), job B fills the queue.
	if code, _ := post(t, ts, smallRequest(1000), false); code != http.StatusAccepted {
		t.Fatalf("job A: code %d, want 202", code)
	}
	<-started
	if code, _ := post(t, ts, smallRequest(1001), false); code != http.StatusAccepted {
		t.Fatalf("job B: code %d, want 202", code)
	}
	// Queue full: job C is refused before any work.
	code, resp := post(t, ts, smallRequest(1002), false)
	if code != http.StatusTooManyRequests {
		t.Fatalf("job C: code %d (%s), want 429", code, resp.Error)
	}
	if got := s.Stats().Counter(telemetry.RequestsRejected); got != 1 {
		t.Errorf("requests_rejected = %d, want 1", got)
	}
}

// TestTenantQuota proves per-tenant isolation: an over-quota tenant is
// refused while another tenant is still admitted.
func TestTenantQuota(t *testing.T) {
	hook, started, release := blockingHook()
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8, TenantQuota: 1, JobHook: hook})
	defer close(release)

	a := smallRequest(1000)
	a.Tenant = "alice"
	if code, _ := post(t, ts, a, false); code != http.StatusAccepted {
		t.Fatalf("alice #1: code %d, want 202", code)
	}
	<-started

	b := smallRequest(1001)
	b.Tenant = "alice"
	if code, resp := post(t, ts, b, false); code != http.StatusTooManyRequests {
		t.Fatalf("alice #2: code %d (%s), want 429 (quota)", code, resp.Error)
	}
	c := smallRequest(1002)
	c.Tenant = "bob"
	if code, _ := post(t, ts, c, false); code != http.StatusAccepted {
		t.Fatalf("bob: code %d, want 202 (quota is per tenant)", code)
	}
}

// TestSingleflightDedup proves concurrent identical requests simulate
// exactly once: N clients submit the same request while the first is
// parked, all N block on wait, and all N observe one identical result.
func TestSingleflightDedup(t *testing.T) {
	hook, started, release := blockingHook()
	s, ts := newTestServer(t, Options{Workers: 2, JobHook: hook})

	const n = 8
	req := smallRequest(4000)
	results := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, resp := post(t, ts, req, true)
			if code != http.StatusOK {
				t.Errorf("client %d: code %d (%s %s)", i, code, resp.Status, resp.Error)
				return
			}
			results[i] = resp.Result
		}(i)
	}

	// Hold the one simulation until every client has been admitted or
	// deduplicated, so dedup is exercised, not racing completion.
	<-started
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := s.Stats()
		if snap.Counter(telemetry.RequestsAdmitted)+snap.Counter(telemetry.RequestsDeduped) >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clients never all arrived: %+v", s.Stats().Counters)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	wg.Wait()

	snap := s.Stats()
	if got := snap.Counter(telemetry.RequestsAdmitted); got != 1 {
		t.Errorf("requests_admitted = %d, want 1 (single simulation)", got)
	}
	if got := snap.Counter(telemetry.RequestsDeduped); got != n-1 {
		t.Errorf("requests_deduped = %d, want %d", got, n-1)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("client %d result differs from client 0", i)
		}
	}
}

// TestDrainResume proves the drain contract end to end: a sweep
// cancelled mid-run by Shutdown keeps its completed workloads in the
// checkpoint journal, and resubmitting to a fresh server over the same
// data dir resumes from the journal and reproduces a never-interrupted
// run's measurements exactly.
func TestDrainResume(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{Dir: dir, Workers: 1})
	// Big enough that the journal gains entries while the sweep is
	// still running: ~6 workloads, each a visible fraction of a second.
	req := smallRequest(400000)

	code, resp := post(t, ts, req, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d, want 202", code)
	}
	fp := resp.ID

	// Wait for the first fsynced journal record, then drain with an
	// already-expired grace so the sweep is cancelled mid-run.
	ckpt := s.checkpointPath(fp)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(ckpt); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint journal never gained a record")
		}
		time.Sleep(2 * time.Millisecond)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(expired); err == nil {
		t.Fatal("Shutdown with an expired context reported a full drain")
	}

	st, err := http.Get(ts.URL + "/v1/sweeps/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	var stResp SubmitResponse
	json.NewDecoder(st.Body).Decode(&stResp)
	st.Body.Close()
	if st.StatusCode != http.StatusConflict || stResp.Status != string(StatusCanceled) {
		t.Fatalf("drained job: code %d status %q, want 409/canceled", st.StatusCode, stResp.Status)
	}

	// A fresh server over the same dir resumes from the journal.
	_, ts2 := newTestServer(t, Options{Dir: dir, Workers: 1})
	code, resumed := post(t, ts2, req, true)
	if code != http.StatusOK {
		t.Fatalf("resubmit: code %d (%s %s), want 200", code, resumed.Status, resumed.Error)
	}
	var resumedRes Result
	if err := json.Unmarshal(resumed.Result, &resumedRes); err != nil {
		t.Fatal(err)
	}
	if resumedRes.Resumed == 0 {
		t.Fatal("resumed run restored 0 workloads from the checkpoint journal")
	}

	// Bit-identity: the resumed measurements match a clean, never
	// interrupted run of the same request on a separate server.
	_, ts3 := newTestServer(t, Options{Workers: 1})
	code, clean := post(t, ts3, req, true)
	if code != http.StatusOK {
		t.Fatalf("clean run: code %d, want 200", code)
	}
	var cleanRes Result
	if err := json.Unmarshal(clean.Result, &cleanRes); err != nil {
		t.Fatal(err)
	}
	if cleanRes.Resumed != 0 {
		t.Fatalf("clean run resumed %d workloads, want 0", cleanRes.Resumed)
	}
	if !reflect.DeepEqual(resumedRes.Points, cleanRes.Points) {
		t.Fatal("resumed results differ from an uninterrupted run")
	}
}

// TestDrainCancelsQueuedJobs proves queued-but-unstarted jobs are
// cancelled on drain without simulating anything.
func TestDrainCancelsQueuedJobs(t *testing.T) {
	hook, started, release := blockingHook()
	releaseOnce := sync.OnceFunc(func() { close(release) })
	defer releaseOnce()
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, JobHook: hook})

	if code, _ := post(t, ts, smallRequest(1000), false); code != http.StatusAccepted {
		t.Fatal("job A not admitted")
	}
	<-started
	_, queued := post(t, ts, smallRequest(1001), false)

	s.BeginDrain()
	// Draining refuses new work with 503.
	if code, _ := post(t, ts, smallRequest(1002), false); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: code %d, want 503", code)
	}
	// The parked job's context lets it finish; the queued one must be
	// cancelled without running its hook.
	releaseOnce()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := http.Get(ts.URL + "/v1/sweeps/" + queued.ID)
		if err != nil {
			t.Fatal(err)
		}
		var resp SubmitResponse
		json.NewDecoder(st.Body).Decode(&resp)
		st.Body.Close()
		if resp.Status == string(StatusCanceled) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued job status %q, want canceled", resp.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case fp := <-started:
		if fp == queued.ID {
			t.Fatal("queued job started simulating during drain")
		}
	default:
	}
}

// TestWorkloadSubsetDistinctFingerprint: restricting the suite changes
// the cache identity, so a subset result is never served for the full
// suite (or vice versa).
func TestWorkloadSubsetDistinctFingerprint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	full := smallRequest(2000)
	sub := smallRequest(2000)
	sub.Workloads = []string{"OPSYS", "ED"}

	code, fullResp := post(t, ts, full, true)
	if code != http.StatusOK {
		t.Fatalf("full suite: code %d", code)
	}
	code, subResp := post(t, ts, sub, true)
	if code != http.StatusOK {
		t.Fatalf("subset: code %d (%s)", code, subResp.Error)
	}
	if subResp.ID == fullResp.ID {
		t.Fatal("subset request shares the full suite's cache identity")
	}
	if subResp.Cached {
		t.Fatal("subset request was served from the full suite's cache")
	}
}

// TestPoolNoGoroutineLeak proves the worker pool and per-job telemetry
// runs (heartbeat tickers included) all exit across many start/cancel
// cycles -- the service-side half of the torn-shutdown regression.
func TestPoolNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		s, err := New(Options{Dir: t.TempDir(), Workers: 4, Heartbeat: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		// A couple of real jobs, then an immediate hard drain.
		for k := 0; k < 2; k++ {
			wire := &SweepRequest{Arch: "PDP-11", Nets: []int{64}, Refs: 50000 + i + k}
			req, fp, err := s.resolve(wire)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.submit(req, wire, fmt.Sprint(fp, "-", i, "-", k), "t"); err != nil {
				t.Fatal(err)
			}
		}
		expired, cancel := context.WithCancel(context.Background())
		cancel()
		s.Shutdown(expired)
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
