// Observability contracts of the HTTP front end: the /metrics
// Prometheus exposition and the per-job span stream.
package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"subcache/internal/telemetry"
)

// TestServiceMetricsEndpoint scrapes /metrics after a real sweep and
// holds it to the strict exposition grammar, with the service-level
// latency histograms present and coherent.
func TestServiceMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	if code, resp := post(t, ts, smallRequest(4000), true); code != http.StatusOK {
		t.Fatalf("submit: code %d (%s)", code, resp.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Fatalf("/metrics content type %q, want %q", ct, telemetry.PromContentType)
	}
	st, err := telemetry.ValidatePromText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics fails strict validation: %v\n%s", err, body)
	}
	if st.Samples == 0 {
		t.Fatal("/metrics served an empty exposition")
	}
	for _, want := range []string{
		"sweepd_build_info{",
		"# TYPE sweepd_job_queue_wait_seconds histogram",
		"sweepd_job_queue_wait_seconds_bucket",
		"# TYPE sweepd_job_execution_seconds histogram",
		"sweepd_requests_admitted_total 1",
		"sweepd_workers 2",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServiceStatsCarriesVersionAndHists: /v1/stats reports the build
// version and the histogram snapshots the load harness consumes.
func TestServiceStatsCarriesVersionAndHists(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if code, resp := post(t, ts, smallRequest(4000), true); code != http.StatusOK {
		t.Fatalf("submit: code %d (%s)", code, resp.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Version   string              `json:"version"`
		Telemetry *telemetry.Snapshot `json:"telemetry"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Version == "" {
		t.Error("/v1/stats missing version")
	}
	if stats.Telemetry == nil {
		t.Fatal("/v1/stats missing telemetry snapshot")
	}
	for _, h := range []telemetry.Hist{telemetry.HistQueueWait, telemetry.HistExecution, telemetry.HistJobLatency} {
		hs := stats.Telemetry.Hist(h)
		if hs == nil || hs.Count == 0 {
			t.Errorf("histogram %s absent or empty after a completed job", h)
		}
	}
}

// TestServiceJobStreamHasSpans: a completed job's event stream carries
// the span lifecycle and passes full stream validation (nesting,
// point-done reconciliation) -- the same check eventcheck -spans runs.
func TestServiceJobStreamHasSpans(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	code, sub := post(t, ts, smallRequest(4000), true)
	if code != http.StatusOK {
		t.Fatalf("submit: code %d (%s)", code, sub.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	st, err := telemetry.ValidateStream(strings.NewReader(string(stream)))
	if err != nil {
		t.Fatalf("job stream invalid: %v", err)
	}
	if st.ByType[telemetry.EventSpanStart] == 0 ||
		st.ByType[telemetry.EventSpanStart] != st.ByType[telemetry.EventSpanEnd] {
		t.Fatalf("span events unbalanced: start=%d end=%d",
			st.ByType[telemetry.EventSpanStart], st.ByType[telemetry.EventSpanEnd])
	}
	// The job lifecycle spans must be present and trace-stamped.
	for _, name := range []string{`"name":"job"`, `"name":"queue"`, `"name":"attempt"`, `"name":"cache-write"`, `"trace":"` + sub.ID + `"`} {
		if !strings.Contains(string(stream), name) {
			t.Errorf("job stream missing %s", name)
		}
	}
}
