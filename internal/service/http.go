// HTTP front end of the sweep service.
//
//	POST /v1/sweeps            submit a sweep (SweepRequest JSON);
//	                           ?wait=1 blocks until it finishes
//	GET  /v1/sweeps/{id}       status / result; ?wait=1 blocks
//	GET  /v1/sweeps/{id}/events  the job's JSONL telemetry stream
//	GET  /v1/stats             service counters (telemetry snapshot)
//	GET  /metrics              Prometheus text exposition (0.0.4)
//	GET  /healthz              liveness (the process is up)
//	GET  /readyz               readiness: 503 while draining or while
//	                           journal-recovered jobs are still being
//	                           re-run, 200 otherwise
//
// Status codes: 200 done (result or cache hit), 202 accepted
// (queued/running/deduped), 400 invalid request, 404 unknown id, 409
// failed/canceled job, 429 admission refused (queue full or tenant
// over quota), 503 draining.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"

	"subcache/internal/telemetry"
)

// errRejected marks an admission-control refusal (429); errDraining a
// draining server (503).
var (
	errRejected = errors.New("admission refused")
	errDraining = errors.New("server draining")
)

// SubmitResponse is the POST /v1/sweeps reply envelope.
type SubmitResponse struct {
	// ID addresses the job (GET /v1/sweeps/{id}); it IS the request's
	// result fingerprint, which is what makes dedup and caching
	// client-visible.
	ID     string `json:"id"`
	Status string `json:"status"`
	// Cached marks a result served from the fingerprint cache with no
	// simulation; Deduped marks a join onto an identical in-flight job.
	Cached  bool   `json:"cached,omitempty"`
	Deduped bool   `json:"deduped,omitempty"`
	Events  string `json:"events,omitempty"`
	Error   string `json:"error,omitempty"`
	// Result is inlined when Status is "done".
	Result json.RawMessage `json:"result,omitempty"`
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.muxOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
		mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
		mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
		mux.HandleFunc("GET /v1/stats", s.handleStats)
		mux.HandleFunc("GET /metrics", s.handleMetrics)
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("GET /readyz", s.handleReady)
		s.mux = mux
	})
	s.mux.ServeHTTP(w, r)
}

// handleSubmit decodes, resolves and submits one sweep request.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var wire SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		writeJSON(w, http.StatusBadRequest, SubmitResponse{Status: "invalid", Error: err.Error()})
		return
	}
	req, fp, err := s.resolve(&wire)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, SubmitResponse{Status: "invalid", Error: err.Error()})
		return
	}
	out, err := s.submit(req, &wire, fp, wire.Tenant)
	switch {
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, SubmitResponse{ID: fp, Status: "rejected", Error: err.Error()})
		return
	case errors.Is(err, errRejected):
		writeJSON(w, http.StatusTooManyRequests, SubmitResponse{ID: fp, Status: "rejected", Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, SubmitResponse{ID: fp, Status: "error", Error: err.Error()})
		return
	}
	resp := SubmitResponse{
		ID:      fp,
		Status:  string(out.status),
		Cached:  out.cached,
		Deduped: out.deduped,
		Events:  "/v1/sweeps/" + fp + "/events",
		Result:  out.result,
	}
	if out.cached {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		s.respondWhenDone(w, r, out.job)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// handleStatus reports one job (or cached result) by fingerprint id.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var cached []byte
	if !ok {
		cached = s.cachedLocked(id)
	}
	s.mu.Unlock()
	if !ok {
		if cached != nil {
			writeJSON(w, http.StatusOK, SubmitResponse{ID: id, Status: string(StatusDone), Cached: true, Result: cached})
			return
		}
		writeJSON(w, http.StatusNotFound, SubmitResponse{ID: id, Status: "unknown", Error: "no such sweep"})
		return
	}
	if r.URL.Query().Get("wait") != "" {
		s.respondWhenDone(w, r, j)
		return
	}
	s.writeJobStatus(w, j)
}

// respondWhenDone blocks until the job reaches a terminal state (or
// the client goes away), then writes its status.
func (s *Server) respondWhenDone(w http.ResponseWriter, r *http.Request, j *job) {
	select {
	case <-j.done:
		s.writeJobStatus(w, j)
	case <-r.Context().Done():
		// Client gone; nothing to write.
	}
}

// writeJobStatus renders a job's current state.
func (s *Server) writeJobStatus(w http.ResponseWriter, j *job) {
	s.mu.Lock()
	resp := SubmitResponse{
		ID:     j.fp,
		Status: string(j.status),
		Events: "/v1/sweeps/" + j.fp + "/events",
		Error:  j.errText,
		Result: j.result,
	}
	s.mu.Unlock()
	code := http.StatusAccepted
	switch jobStatus(resp.Status) {
	case StatusDone:
		code = http.StatusOK
	case StatusFailed, StatusCanceled:
		code = http.StatusConflict
	}
	writeJSON(w, code, resp)
}

// handleEvents serves a job's JSONL telemetry stream as written so
// far (heartbeats flush it, so a live job's stream is current to the
// last beat).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, known := s.jobs[id]
	s.mu.Unlock()
	path := s.eventsPath(id)
	if !known {
		// A restarted server still serves streams left on disk.
		if _, err := os.Stat(path); err != nil {
			writeJSON(w, http.StatusNotFound, SubmitResponse{ID: id, Status: "unknown", Error: "no such sweep"})
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	http.ServeFile(w, r, path)
}

// handleReady distinguishes readiness from liveness: a draining server
// is going away and a recovering one is still re-running journaled
// jobs, so both answer 503 and a load balancer routes elsewhere;
// /healthz stays 200 throughout, because the process is healthy.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining, recovering := s.draining, s.recovering
	s.mu.Unlock()
	switch {
	case draining:
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case recovering > 0:
		http.Error(w, fmt.Sprintf("recovering: %d jobs replaying", recovering), http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}

// handleStats serves the service counter snapshot.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining, queued, recovering := s.draining, s.queued, s.recovering
	s.mu.Unlock()
	entries, bytes := s.store.stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"version":    telemetry.Version,
		"draining":   draining,
		"ready":      !draining && recovering == 0,
		"recovering": recovering,
		"queued":     queued,
		"workers":    s.opts.Workers,
		"cache": map[string]any{
			"entries":     entries,
			"bytes":       bytes,
			"max_bytes":   s.opts.CacheMaxBytes,
			"ttl_seconds": s.opts.CacheTTL.Seconds(),
		},
		"telemetry": s.Stats(),
	})
}

// handleMetrics serves the counter snapshot in Prometheus text
// exposition format (version 0.0.4): counters, gauges, per-stage and
// service-level latency histograms, and a sweepd_build_info series
// carrying the link-time version stamp.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining, queued, recovering := s.draining, s.queued, s.recovering
	s.mu.Unlock()
	entries, bytes := s.store.stats()
	snap := s.rec.Snapshot()
	drainVal := 0.0
	if draining {
		drainVal = 1
	}
	extra := map[string]float64{
		"cache_entries":   float64(entries),
		"cache_bytes":     float64(bytes),
		"queued_jobs":     float64(queued),
		"recovering_jobs": float64(recovering),
		"draining":        drainVal,
		"workers":         float64(s.opts.Workers),
	}
	build := map[string]string{
		"version":    telemetry.Version,
		"go_version": runtime.Version(),
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
	}
	w.Header().Set("Content-Type", telemetry.PromContentType)
	telemetry.WritePromText(w, "sweepd", snap, extra, build)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
