// Wire vocabulary of the sweep service: the JSON request a client
// POSTs, its validation limits, and the JSON result a finished sweep
// serves.  The request deliberately mirrors the benchsweep/experiments
// flag vocabulary (arch, nets, refs, workloads, engine, shards) so a
// CLI invocation translates 1:1 into a service call, and the result is
// a flattened, self-describing rendering of sweep.Result.
package service

import (
	"encoding/json"
	"fmt"
	"time"

	"subcache/internal/sweep"
	"subcache/internal/synth"
)

// SweepRequest is the POST /v1/sweeps body.
type SweepRequest struct {
	// Arch names the workload suite ("PDP-11", "Z8000", "VAX-11",
	// "System/370").
	Arch string `json:"arch"`
	// Nets lists the net (total cache) sizes in bytes; the request
	// sweeps the full Table 1 grid over them (sweep.Grid).
	Nets []int `json:"nets"`
	// Refs is the trace length per workload.
	Refs int `json:"refs"`
	// Workloads optionally restricts the suite (empty = all).
	Workloads []string `json:"workloads,omitempty"`
	// Engine selects the simulation strategy ("multipass" default,
	// "stackdist", "reference").  Results are bit-identical across
	// engines, so it does not contribute to the fingerprint.
	Engine string `json:"engine,omitempty"`
	// Shards is the intra-workload shard count (0 = auto); like
	// Engine, execution-only.
	Shards int `json:"shards,omitempty"`
	// Tenant attributes the request for quota accounting; empty maps
	// to "default".
	Tenant string `json:"tenant,omitempty"`
	// TimeoutSec bounds the job's execution wall-clock (0 = no
	// deadline).  Execution-only, like Engine: it does not contribute
	// to the fingerprint, so identical sweeps with different deadlines
	// still dedup and share one result.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// timeoutOf converts the wire deadline into a duration (0 = none).
func timeoutOf(wire *SweepRequest) time.Duration {
	if wire == nil || wire.TimeoutSec <= 0 {
		return 0
	}
	return time.Duration(wire.TimeoutSec * float64(time.Second))
}

// Validation limits; Options can tighten MaxRefs.
const (
	maxNets       = 16
	maxNetSize    = 1 << 24
	maxTimeoutSec = 86_400
	defaultTenant = "default"
)

// resolve validates the wire request and converts it into an
// executable sweep.Request plus its result fingerprint.
func (s *Server) resolve(wire *SweepRequest) (sweep.Request, string, error) {
	arch, err := synth.ParseArch(wire.Arch)
	if err != nil {
		return sweep.Request{}, "", err
	}
	if wire.Refs <= 0 || wire.Refs > s.opts.MaxRefs {
		return sweep.Request{}, "", fmt.Errorf("refs %d out of range [1, %d]", wire.Refs, s.opts.MaxRefs)
	}
	if wire.TimeoutSec < 0 || wire.TimeoutSec > maxTimeoutSec {
		return sweep.Request{}, "", fmt.Errorf("timeout_sec %g out of range [0, %d]", wire.TimeoutSec, maxTimeoutSec)
	}
	if len(wire.Nets) == 0 || len(wire.Nets) > maxNets {
		return sweep.Request{}, "", fmt.Errorf("want 1-%d net sizes, got %d", maxNets, len(wire.Nets))
	}
	for _, n := range wire.Nets {
		if n < 2 || n > maxNetSize || n&(n-1) != 0 {
			return sweep.Request{}, "", fmt.Errorf("net size %d not a power of two in [2, %d]", n, maxNetSize)
		}
	}
	points := sweep.Grid(wire.Nets, arch.WordSize())
	if len(points) == 0 {
		return sweep.Request{}, "", fmt.Errorf("net sizes %v produce an empty grid", wire.Nets)
	}
	engine := sweep.MultiPass
	if wire.Engine != "" {
		if engine, err = sweep.ParseEngine(wire.Engine); err != nil {
			return sweep.Request{}, "", err
		}
	}
	if len(wire.Workloads) > 0 {
		known := make(map[string]bool)
		for _, p := range synth.Workloads(arch) {
			known[p.Name] = true
		}
		for _, w := range wire.Workloads {
			if !known[w] {
				return sweep.Request{}, "", fmt.Errorf("workload %q not in the %s suite", w, arch)
			}
		}
	}
	req := sweep.Request{
		Arch:      arch,
		Points:    points,
		Refs:      wire.Refs,
		Workloads: wire.Workloads,
		Engine:    engine,
		Shards:    wire.Shards,
	}
	fp, err := sweep.RequestFingerprint(req)
	if err != nil {
		return sweep.Request{}, "", err
	}
	// The sweep fingerprint covers arch/word/refs/points but not the
	// workload subset (a partial-suite journal may seed a full-suite
	// resume).  The service's unit of caching is the whole request, so
	// a restricted suite gets its own cache identity.
	if len(wire.Workloads) > 0 {
		fp = fmt.Sprintf("%s-w%d", fp, hashStrings(wire.Workloads))
	}
	return req, fp, nil
}

// hashStrings folds a name list into a short stable id (FNV-1a).
func hashStrings(ss []string) uint32 {
	h := uint32(2166136261)
	for _, s := range ss {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint32(s[i])) * 16777619
		}
		h = (h ^ 0x1f) * 16777619
	}
	return h
}

// RunResult is one workload's measured outcome at one grid point.
type RunResult struct {
	Workload string  `json:"workload"`
	Miss     float64 `json:"miss"`
	Traffic  float64 `json:"traffic"`
	Scaled   float64 `json:"scaled"`
	Accesses uint64  `json:"accesses"`
	Misses   uint64  `json:"misses"`
}

// PointResult is one grid point: the unweighted cross-workload summary
// plus every per-workload run, in catalog order.
type PointResult struct {
	Point   string      `json:"point"`
	N       int         `json:"n"`
	Miss    float64     `json:"miss"`
	Traffic float64     `json:"traffic"`
	Scaled  float64     `json:"scaled"`
	Runs    []RunResult `json:"runs"`
}

// Result is the JSON body a completed sweep serves (and the on-disk
// cache entry's payload).
type Result struct {
	Fingerprint string        `json:"fingerprint"`
	Arch        string        `json:"arch"`
	Refs        int           `json:"refs"`
	TracePasses int           `json:"trace_passes"`
	Resumed     int           `json:"resumed_workloads"`
	Points      []PointResult `json:"points"`
}

// buildResult flattens a sweep.Result into the wire form, points in
// canonical Table 7 order.
func buildResult(fp string, req sweep.Request, res *sweep.Result) *Result {
	out := &Result{
		Fingerprint: fp,
		Arch:        req.Arch.String(),
		Refs:        req.Refs,
		TracePasses: res.TracePasses,
		Resumed:     res.Resumed,
	}
	for _, p := range res.Points() {
		sum := res.Summaries[p]
		pr := PointResult{
			Point:   p.String(),
			N:       sum.N,
			Miss:    sum.Miss,
			Traffic: sum.Traffic,
			Scaled:  sum.Scaled,
		}
		for _, run := range res.Runs[p] {
			pr.Runs = append(pr.Runs, RunResult{
				Workload: run.Trace,
				Miss:     run.Miss,
				Traffic:  run.Traffic,
				Scaled:   run.Scaled,
				Accesses: run.Accesses,
				Misses:   run.Misses,
			})
		}
		out.Points = append(out.Points, pr)
	}
	return out
}

// encodeResult marshals a Result for the cache and the wire.
func encodeResult(r *Result) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("service: encoding result: %w", err)
	}
	return b, nil
}
