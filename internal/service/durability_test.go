// Durability tests: crash recovery through the job journal, the
// verified result store's corruption quarantine and eviction policies,
// per-job deadlines, transient retries, and readiness.  The
// process-level SIGKILL campaign lives in internal/faultinject; these
// tests cover the same contracts in-process, where each mechanism can
// be exercised and asserted in isolation.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"subcache/internal/faultinject"
	"subcache/internal/sweep"
	"subcache/internal/telemetry"
)

// shutdownNow drains a server immediately (expired grace) so a test
// can restart over the same data dir.
func shutdownNow(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

// getReady fetches /readyz and returns the status code and body.
func getReady(t *testing.T, ts *httptest.Server) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

// resultOf decodes a response's Result payload.
func resultOf(t *testing.T, raw json.RawMessage) Result {
	t.Helper()
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	return res
}

// TestCrashRecoveryReplay is the in-process half of the kill-restart
// proof: a journal holding an admitted-but-never-finished job (exactly
// what a SIGKILL leaves behind) makes the next server re-admit it, run
// it to completion, and report "recovering" on /readyz until it is
// done.
func TestCrashRecoveryReplay(t *testing.T) {
	dir := t.TempDir()
	wire := smallRequest(3000)

	// Resolve the fingerprint the service will assign.
	s0, ts0 := newTestServer(t, Options{Workers: 1})
	_, fp, err := s0.resolve(&wire)
	if err != nil {
		t.Fatal(err)
	}
	shutdownNow(t, s0, ts0)

	// Forge the crash: an admitted record with no terminal transition,
	// as submit would have journaled it just before the power went out.
	appendAll(t, filepath.Join(dir, "jobs.jsonl"),
		JournalRecord{Kind: KindAdmitted, FP: fp, Tenant: "crashed", Req: &wire},
		JournalRecord{Kind: KindStarted, FP: fp},
	)

	hook, started, release := blockingHook()
	s, ts := newTestServer(t, Options{Dir: dir, Workers: 1, JobHook: hook})

	// The job is re-admitted and starts running; until it finishes the
	// server is alive (healthz) but not ready (readyz).
	if got := <-started; got != fp {
		t.Fatalf("recovered job fp %s, want %s", got, fp)
	}
	if n := s.Recovering(); n != 1 {
		t.Fatalf("Recovering() = %d, want 1", n)
	}
	if code, body := getReady(t, ts); code != http.StatusServiceUnavailable || !strings.Contains(body, "recovering") {
		t.Fatalf("/readyz during recovery: %d %q, want 503 recovering", code, body)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during recovery: %d, want 200 (liveness is not readiness)", hresp.StatusCode)
	}

	// A client polling the crashed id lands on the re-admitted job via
	// the ordinary singleflight path.
	st, err := http.Get(ts.URL + "/v1/sweeps/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	var stResp SubmitResponse
	json.NewDecoder(st.Body).Decode(&stResp)
	st.Body.Close()
	if st.StatusCode != http.StatusAccepted || stResp.Status != string(StatusRunning) {
		t.Fatalf("polling recovered id: %d %q, want 202 running", st.StatusCode, stResp.Status)
	}

	close(release)
	code, resp := post(t, ts, wire, true)
	if code != http.StatusOK {
		t.Fatalf("joining recovered job: code %d (%s %s)", code, resp.Status, resp.Error)
	}
	if n := s.Recovering(); n != 0 {
		t.Fatalf("Recovering() = %d after completion, want 0", n)
	}
	if code, _ := getReady(t, ts); code != http.StatusOK {
		t.Fatalf("/readyz after recovery: %d, want 200", code)
	}
	if got := s.Stats().Counter(telemetry.JobsRecovered); got != 1 {
		t.Errorf("jobs_recovered = %d, want 1", got)
	}

	// Recovered-and-completed results match a clean run bit for bit.
	_, ts2 := newTestServer(t, Options{Workers: 1})
	code, clean := post(t, ts2, wire, true)
	if code != http.StatusOK {
		t.Fatal("clean run failed")
	}
	if !reflect.DeepEqual(resultOf(t, resp.Result).Points, resultOf(t, clean.Result).Points) {
		t.Fatal("recovered result differs from an uninterrupted run")
	}
}

// TestDrainThenRestart extends the drain contract across a restart: a
// gracefully drained job was journaled canceled -- the client was told
// -- so the next server over the same dir must NOT resurrect it, must
// be ready immediately, and must resume the job's checkpoint only when
// a client actually resubmits.
func TestDrainThenRestart(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{Dir: dir, Workers: 1})
	req := smallRequest(400000)

	code, resp := post(t, ts, req, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	fp := resp.ID
	ckpt := s.checkpointPath(fp)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(ckpt); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint journal never gained a record")
		}
		time.Sleep(2 * time.Millisecond)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(expired)
	ts.Close()

	s2, ts2 := newTestServer(t, Options{Dir: dir, Workers: 1})
	// Canceled is terminal: no resurrection, no recovery window.
	if n := s2.Recovering(); n != 0 {
		t.Fatalf("Recovering() = %d after graceful drain, want 0 (canceled is terminal)", n)
	}
	if code, _ := getReady(t, ts2); code != http.StatusOK {
		t.Fatalf("/readyz after drained restart: %d, want 200", code)
	}
	if got := s2.Stats().Counter(telemetry.JobsRecovered); got != 0 {
		t.Errorf("jobs_recovered = %d after graceful drain, want 0", got)
	}

	// The checkpoint still pays off -- but only when asked.
	code, resumed := post(t, ts2, req, true)
	if code != http.StatusOK {
		t.Fatalf("resubmit: code %d (%s)", code, resumed.Error)
	}
	if res := resultOf(t, resumed.Result); res.Resumed == 0 {
		t.Fatal("resubmission after drained restart resumed 0 workloads")
	}
}

// TestCacheCorruptionQuarantine proves a damaged cache entry is never
// served: whatever the damage -- a flipped bit, a torn write, a
// fingerprint swap -- the entry is quarantined into cache/corrupt/,
// counted, and the request transparently re-simulated to the same
// measurements.
func TestCacheCorruptionQuarantine(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func(t *testing.T, data []byte, fp string) []byte
	}{
		{"bit flip", func(_ *testing.T, data []byte, _ string) []byte {
			return faultinject.FlipByte(data, len(data)-10)
		}},
		{"torn write", func(_ *testing.T, data []byte, _ string) []byte {
			return faultinject.TruncateTail(data, 7)
		}},
		{"fingerprint mismatch", func(t *testing.T, data []byte, _ string) []byte {
			// A checksum-valid envelope under the wrong fingerprint: the
			// payload sum alone would pass; the fp binding must not.
			var env struct {
				V       int             `json:"v"`
				FP      string          `json:"fp"`
				Written int64           `json:"written_unix_ms"`
				Sum     string          `json:"sum"`
				Payload json.RawMessage `json:"payload"`
			}
			if err := json.Unmarshal(data, &env); err != nil {
				t.Fatal(err)
			}
			env.FP = "somebody-else"
			b, err := json.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
	}
	for i, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			req := smallRequest(3000 + i)
			s, ts := newTestServer(t, Options{Dir: dir, Workers: 1})
			code, first := post(t, ts, req, true)
			if code != http.StatusOK {
				t.Fatalf("seed run: code %d", code)
			}
			fp := first.ID
			shutdownNow(t, s, ts)

			path := s.cachePath(fp)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(t, data, fp), 0o644); err != nil {
				t.Fatal(err)
			}

			s2, ts2 := newTestServer(t, Options{Dir: dir, Workers: 1})
			code, resp := post(t, ts2, req, true)
			if code != http.StatusOK {
				t.Fatalf("resubmit over corrupt cache: code %d (%s)", code, resp.Error)
			}
			if resp.Cached {
				t.Fatal("corrupt cache entry was served")
			}
			if !reflect.DeepEqual(resultOf(t, resp.Result).Points, resultOf(t, first.Result).Points) {
				t.Fatal("re-simulated result differs from the original")
			}
			if got := s2.Stats().Counter(telemetry.CacheCorruptQuarantined); got != 1 {
				t.Errorf("cache_corrupt_quarantined = %d, want 1", got)
			}
			des, err := os.ReadDir(filepath.Join(dir, "cache", "corrupt"))
			if err != nil || len(des) != 1 {
				t.Fatalf("quarantine dir: %v entries, err %v; want exactly 1 entry", len(des), err)
			}
			// The rewritten entry is healthy: the next submit is a hit.
			if code, again := post(t, ts2, req, false); code != http.StatusOK || !again.Cached {
				t.Fatalf("post-quarantine resubmit: code %d cached=%v, want 200 cache hit", code, again.Cached)
			}
		})
	}
}

// TestCacheTTLEviction proves expiry end to end: a result older than
// the TTL is evicted (checkpoint included), counted, journaled, and
// re-simulated identically on the next request.
func TestCacheTTLEviction(t *testing.T) {
	dir := t.TempDir()
	ttl := 200 * time.Millisecond
	s, ts := newTestServer(t, Options{Dir: dir, Workers: 1, CacheTTL: ttl})
	req := smallRequest(2500)

	code, first := post(t, ts, req, true)
	if code != http.StatusOK {
		t.Fatalf("seed run: code %d", code)
	}
	fp := first.ID
	if code, hit := post(t, ts, req, false); code != http.StatusOK || !hit.Cached {
		t.Fatalf("fresh entry: code %d cached=%v, want cache hit", code, hit.Cached)
	}

	time.Sleep(ttl + 250*time.Millisecond)
	code, resp := post(t, ts, req, true)
	if code != http.StatusOK {
		t.Fatalf("post-TTL submit: code %d (%s)", code, resp.Error)
	}
	if resp.Cached {
		t.Fatal("expired cache entry was served")
	}
	if !reflect.DeepEqual(resultOf(t, resp.Result).Points, resultOf(t, first.Result).Points) {
		t.Fatal("re-simulated result differs from the original")
	}
	if got := s.Stats().Counter(telemetry.CacheEvictions); got == 0 {
		t.Error("cache_evictions = 0 after TTL expiry")
	}
	// TTL reclamation takes the checkpoint journal with it, so the
	// post-TTL run re-simulated from scratch.
	if res := resultOf(t, resp.Result); res.Resumed != 0 {
		t.Errorf("post-TTL run resumed %d workloads, want 0 (checkpoint reclaimed)", res.Resumed)
	}
	// The eviction is journaled.
	if !journalHasKind(t, filepath.Join(dir, "jobs.jsonl"), KindEvicted, fp) {
		t.Error("no evicted journal record for the expired fingerprint")
	}
}

// TestCacheSizeCapLRU proves the size cap: with a cap too small for
// two entries, completing a second sweep evicts the least-recently-used
// first one -- but keeps its checkpoint journal, so re-requesting it
// resumes instead of re-simulating.
func TestCacheSizeCapLRU(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, CacheMaxBytes: 1})
	reqA, reqB := smallRequest(2600), smallRequest(2601)

	code, firstA := post(t, ts, reqA, true)
	if code != http.StatusOK {
		t.Fatalf("A: code %d", code)
	}
	if code, _ := post(t, ts, reqB, true); code != http.StatusOK {
		t.Fatalf("B: code %d", code)
	}
	if got := s.Stats().Counter(telemetry.CacheEvictions); got != 1 {
		t.Fatalf("cache_evictions = %d after second entry, want 1", got)
	}
	if entries, _ := s.store.stats(); entries != 1 {
		t.Fatalf("store holds %d entries over a 1-byte cap, want 1", entries)
	}

	// A's result is gone but its checkpoint survived: the re-request
	// resumes every workload and reproduces the measurements.
	code, again := post(t, ts, reqA, true)
	if code != http.StatusOK {
		t.Fatalf("A again: code %d", code)
	}
	if again.Cached {
		t.Fatal("evicted entry was served as a cache hit")
	}
	res := resultOf(t, again.Result)
	if res.Resumed == 0 {
		t.Error("size-cap eviction lost the checkpoint journal: resumed 0 workloads")
	}
	if !reflect.DeepEqual(res.Points, resultOf(t, firstA.Result).Points) {
		t.Fatal("resumed result differs from the original")
	}
}

// TestJobTimeout proves the per-request deadline: a sweep that cannot
// finish inside timeout_sec fails with a deadline error (not a drain
// cancellation), leaving its checkpoint for a later retry.
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := smallRequest(1_500_000)
	req.TimeoutSec = 0.05

	code, resp := post(t, ts, req, true)
	if code != http.StatusConflict {
		t.Fatalf("timed-out job: code %d (%s %s), want 409", code, resp.Status, resp.Error)
	}
	if resp.Status != string(StatusFailed) {
		t.Fatalf("timed-out job status %q, want failed", resp.Status)
	}
	if !strings.Contains(resp.Error, "deadline exceeded") {
		t.Fatalf("timed-out job error %q does not name the deadline", resp.Error)
	}

	// Validation bounds the field itself.
	bad := smallRequest(1000)
	bad.TimeoutSec = -1
	if code, _ := post(t, ts, bad, false); code != http.StatusBadRequest {
		t.Fatalf("negative timeout_sec: code %d, want 400", code)
	}
}

// TestTransientRetry proves the retry policy end to end: a trace-source
// failure on the first attempt is retried with backoff and succeeds
// (resuming checkpointed workloads), while a panic is never retried.
func TestTransientRetry(t *testing.T) {
	t.Run("transient io retries", func(t *testing.T) {
		var attempts atomic.Int32
		s, ts := newTestServer(t, Options{
			Workers: 1, MaxRetries: 2, RetryBackoff: time.Millisecond,
			SweepHook: func(req *sweep.Request, fp string, attempt int) {
				attempts.Add(1)
				if attempt == 0 {
					req.Hooks = faultinject.SourceHooks("OPSYS", faultinject.ShortRead, 500)
				} else {
					req.Hooks = nil
				}
			},
		})
		req := smallRequest(3000)
		code, resp := post(t, ts, req, true)
		if code != http.StatusOK {
			t.Fatalf("retried job: code %d (%s %s), want 200", code, resp.Status, resp.Error)
		}
		if got := attempts.Load(); got != 2 {
			t.Errorf("sweep attempts = %d, want 2 (fail, retry, done)", got)
		}
		if got := s.Stats().Counter(telemetry.JobRetries); got != 1 {
			t.Errorf("job_retries = %d, want 1", got)
		}
		// The retried result matches a clean, never-faulted run.
		_, ts2 := newTestServer(t, Options{Workers: 1})
		code, clean := post(t, ts2, req, true)
		if code != http.StatusOK {
			t.Fatal("clean run failed")
		}
		if !reflect.DeepEqual(resultOf(t, resp.Result).Points, resultOf(t, clean.Result).Points) {
			t.Fatal("retried result differs from a clean run")
		}
	})

	t.Run("panic does not retry", func(t *testing.T) {
		var attempts atomic.Int32
		s, ts := newTestServer(t, Options{
			Workers: 1, MaxRetries: 2, RetryBackoff: time.Millisecond,
			SweepHook: func(req *sweep.Request, fp string, attempt int) {
				attempts.Add(1)
				req.Hooks = faultinject.SourceHooks("OPSYS", faultinject.SourcePanic, 500)
			},
		})
		code, resp := post(t, ts, smallRequest(3100), true)
		if code != http.StatusConflict || resp.Status != string(StatusFailed) {
			t.Fatalf("panicked job: code %d status %q, want 409 failed", code, resp.Status)
		}
		if got := attempts.Load(); got != 1 {
			t.Errorf("sweep attempts = %d, want 1 (panics are not transient)", got)
		}
		if got := s.Stats().Counter(telemetry.JobRetries); got != 0 {
			t.Errorf("job_retries = %d, want 0", got)
		}
	})
}

// TestReadyzDraining: a draining server stays live but reports not
// ready, so a balancer stops routing to it before the listener closes.
func TestReadyzDraining(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	if code, _ := getReady(t, ts); code != http.StatusOK {
		t.Fatalf("/readyz on an idle server: %d, want 200", code)
	}
	s.BeginDrain()
	code, body := getReady(t, ts)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz while draining: %d %q, want 503 draining", code, body)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: %d, want 200", hresp.StatusCode)
	}
}

// journalHasKind reports whether the journal at path holds a record of
// the given kind for the given fingerprint.
func journalHasKind(t *testing.T, path, kind, fp string) bool {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range bytes.Split(b, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		if rec.Kind == kind && rec.FP == fp {
			return true
		}
	}
	return false
}
