// Job journal: crash-safe persistence of the service's job table.
//
// Every job state transition -- admitted, started, completed, failed,
// canceled, evicted -- is one appended JSON line in <dir>/jobs.jsonl,
// following the internal/sweep checkpoint record conventions: a schema
// version, a per-record SHA-256 checksum over the serialised payload,
// one fsynced append per record, and torn-tail tolerance on load (a
// record killed mid-write fails its checksum and is skipped, never
// half-trusted).  The admitted record carries the full wire request, so
// startup replay can reconstruct and re-admit every job that never
// reached a terminal state: the crash-recovery half of the service's
// "every admitted job reaches a terminal state exactly once" contract.
// Because the job id is the request fingerprint, a client polling a
// recovered id lands on the re-admitted job via the ordinary
// singleflight path, and the re-run resumes bit-identically from the
// job's per-fingerprint checkpoint journal.
//
// On open the journal is compacted: terminal jobs need no records (the
// verified result cache serves them), so the rewritten file holds one
// admitted record per non-terminal job, written atomically
// (telemetry.WriteFileAtomic) before appends resume.  That bounds the
// file across restarts without ever losing a live job.
package service

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"subcache/internal/telemetry"
)

// JournalVersion is the job-journal record schema version, bumped when
// a field changes meaning; records with a different version are skipped
// on load and rejected by ValidateJournal.
const JournalVersion = 1

// Job-journal transition kinds.  ValidateJournal rejects anything else.
const (
	// KindAdmitted: the job passed admission control onto the queue;
	// the record carries the wire request for crash replay.
	KindAdmitted = "admitted"
	// KindStarted: a worker began simulating the job.
	KindStarted = "started"
	// KindCompleted: the job finished; its result is in the cache.
	KindCompleted = "completed"
	// KindFailed: the sweep returned a non-retryable (or
	// retry-exhausted) error, or hit its deadline.
	KindFailed = "failed"
	// KindCanceled: drain cut the job short before or during
	// simulation; the client was told, so replay does not re-admit it.
	KindCanceled = "canceled"
	// KindEvicted: the job's cached result was removed by TTL or
	// size-cap eviction; the job stays terminal, a resubmission
	// re-simulates (resuming from its checkpoint journal if present).
	KindEvicted = "evicted"
)

// journalKinds is the closed transition vocabulary.
var journalKinds = map[string]bool{
	KindAdmitted:  true,
	KindStarted:   true,
	KindCompleted: true,
	KindFailed:    true,
	KindCanceled:  true,
	KindEvicted:   true,
}

// JournalRecord is one job state transition.  Sum is the hex SHA-256 of
// the record serialised with Sum empty, exactly the internal/sweep
// checkpoint convention; load and ValidateJournal reject records whose
// recomputed sum differs.
type JournalRecord struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
	FP   string `json:"fp"`
	// Tenant and Req ride the admitted record so replay can re-admit
	// with the original quota attribution and request.
	Tenant string        `json:"tenant,omitempty"`
	Req    *SweepRequest `json:"req,omitempty"`
	// Error carries the failure or cancellation text on terminal
	// records.
	Error string `json:"error,omitempty"`
	// UnixMS is the transition's wall-clock time.
	UnixMS int64  `json:"unix_ms"`
	Sum    string `json:"sum,omitempty"`
}

// sum computes the record's checksum over its payload (Sum cleared).
func (r JournalRecord) sum() (string, error) {
	r.Sum = ""
	b, err := json.Marshal(r)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:]), nil
}

// verify recomputes the checksum and checks the record's schema.
func (r *JournalRecord) verify() error {
	if r.V != JournalVersion {
		return fmt.Errorf("version %d, want %d", r.V, JournalVersion)
	}
	if !journalKinds[r.Kind] {
		return fmt.Errorf("unknown transition kind %q", r.Kind)
	}
	if r.FP == "" {
		return fmt.Errorf("%s record missing fp", r.Kind)
	}
	if r.Kind == KindAdmitted && r.Req == nil {
		return fmt.Errorf("admitted record for %s missing request", r.FP)
	}
	if r.Sum == "" {
		return fmt.Errorf("record missing sum")
	}
	want, err := r.sum()
	if err != nil {
		return err
	}
	if want != r.Sum {
		return fmt.Errorf("checksum mismatch (have %s, want %s)", r.Sum, want)
	}
	return nil
}

// jobState is one fingerprint's replayed journal state: its last
// transition plus the admission context needed to re-admit it.
type jobState struct {
	fp     string
	kind   string
	tenant string
	req    *SweepRequest
}

// terminal reports whether the state needs no recovery.
func (s jobState) terminal() bool {
	return s.kind != KindAdmitted && s.kind != KindStarted
}

// jobJournal is the open job-table write-ahead journal.  Safe for
// concurrent Append calls; the service appends under its own mutex
// anyway, so transitions land in the order the job table changed.
type jobJournal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	rec  telemetry.Recorder
	// Skipped counts lines rejected on load: torn tails, corruption,
	// foreign versions.  Informational.
	Skipped int
}

// openJobJournal loads, compacts and reopens the journal at path.  It
// returns the journal plus every non-terminal job in admission order,
// ready for re-admission.  The compacted file -- one fresh admitted
// record per recovered job -- is written atomically before appends
// resume, so a crash during open leaves either the old journal or the
// compacted one, never a torn mix.
func openJobJournal(path string, rec telemetry.Recorder) (*jobJournal, []jobState, error) {
	j := &jobJournal{path: path, rec: telemetry.OrNop(rec)}
	states := make(map[string]jobState)
	var order []string // first-admission order of live fingerprints
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<16), 1<<26)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var r JournalRecord
			if err := json.Unmarshal(line, &r); err != nil || r.verify() != nil {
				j.Skipped++
				continue
			}
			prev, seen := states[r.FP]
			next := jobState{fp: r.FP, kind: r.Kind, tenant: r.Tenant, req: r.Req}
			if r.Kind != KindAdmitted && seen {
				// Non-admission transitions keep the admission context.
				next.tenant, next.req = prev.tenant, prev.req
			}
			states[r.FP] = next
			if !seen {
				order = append(order, r.FP)
			}
		}
		if err := sc.Err(); err != nil {
			// An unreadable tail invalidates nothing already verified.
			j.Skipped++
		}
		f.Close()
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("service: job journal: %w", err)
	}

	var recovered []jobState
	var compacted bytes.Buffer
	for _, fp := range order {
		st := states[fp]
		if st.terminal() || st.req == nil {
			continue
		}
		r := JournalRecord{
			V: JournalVersion, Kind: KindAdmitted, FP: fp,
			Tenant: st.tenant, Req: st.req, UnixMS: time.Now().UnixMilli(),
		}
		sum, err := r.sum()
		if err != nil {
			return nil, nil, fmt.Errorf("service: job journal: %w", err)
		}
		r.Sum = sum
		b, err := json.Marshal(r)
		if err != nil {
			return nil, nil, fmt.Errorf("service: job journal: %w", err)
		}
		compacted.Write(append(b, '\n'))
		recovered = append(recovered, st)
	}
	if err := telemetry.WriteFileAtomic(path, compacted.Bytes(), 0o644); err != nil {
		return nil, nil, fmt.Errorf("service: job journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: job journal: %w", err)
	}
	j.f = f
	return j, recovered, nil
}

// append writes one fsynced transition record: fully journaled, or (on
// a crash mid-write) fully rejected by the checksum on the next load.
func (j *jobJournal) append(r JournalRecord) error {
	r.V = JournalVersion
	r.UnixMS = time.Now().UnixMilli()
	sum, err := r.sum()
	if err != nil {
		return fmt.Errorf("service: job journal: %w", err)
	}
	r.Sum = sum
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("service: job journal: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("service: job journal %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: job journal %s: %w", j.path, err)
	}
	j.rec.Add(telemetry.JobJournalRecords, 1)
	return nil
}

// Close releases the journal file.
func (j *jobJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// JournalStats summarises a validated job journal.
type JournalStats struct {
	// Records counts valid records; ByKind breaks them down.
	Records int
	ByKind  map[string]int
}

// ValidateJournal strictly validates a job-journal stream, the
// consumer-side schema contract cmd/eventcheck enforces in CI: every
// line must be a version-JournalVersion record with a known transition
// kind, a verifying SHA-256 checksum, and the kind's required fields.
// Unlike the loader -- which tolerates torn tails because a crashed
// writer is its normal input -- validation rejects them: a compacted or
// cleanly shut down journal has no excuse for an invalid line.
func ValidateJournal(r io.Reader) (JournalStats, error) {
	st := JournalStats{ByKind: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return st, fmt.Errorf("line %d: %w", line, err)
		}
		if err := rec.verify(); err != nil {
			return st, fmt.Errorf("line %d: %w", line, err)
		}
		st.Records++
		st.ByKind[rec.Kind]++
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("line %d: %w", line, err)
	}
	return st, nil
}
