// Unit tests for the job journal: record integrity, replay semantics,
// compaction, and -- the crash case that matters -- torn-tail recovery
// at every byte boundary of the final record.
package service

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// journalWire is a minimal valid wire request for admitted records.
func journalWire(refs int) *SweepRequest {
	return &SweepRequest{Arch: "PDP-11", Nets: []int{64}, Refs: refs}
}

// appendAll opens the journal at path and appends the given records.
func appendAll(t *testing.T, path string, recs ...JournalRecord) {
	t.Helper()
	j, _, err := openJobJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// recoveredFPs opens the journal and returns the recovered
// fingerprints in admission order, plus the skipped-line count.
func recoveredFPs(t *testing.T, path string) ([]string, int) {
	t.Helper()
	j, recovered, err := openJobJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	fps := make([]string, 0, len(recovered))
	for _, st := range recovered {
		fps = append(fps, st.fp)
	}
	return fps, j.Skipped
}

// TestJournalReplaySemantics pins last-record-wins replay: only jobs
// whose final transition is admitted or started are recovered, in
// first-admission order, and compaction rewrites exactly them.
func TestJournalReplaySemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	appendAll(t, path,
		JournalRecord{Kind: KindAdmitted, FP: "a", Tenant: "t1", Req: journalWire(1000)},
		JournalRecord{Kind: KindAdmitted, FP: "b", Req: journalWire(1001)},
		JournalRecord{Kind: KindStarted, FP: "a"},
		JournalRecord{Kind: KindAdmitted, FP: "c", Req: journalWire(1002)},
		JournalRecord{Kind: KindCompleted, FP: "b"},
		JournalRecord{Kind: KindAdmitted, FP: "d", Req: journalWire(1003)},
		JournalRecord{Kind: KindCanceled, FP: "d", Error: "drained"},
		JournalRecord{Kind: KindEvicted, FP: "b"},
	)
	fps, skipped := recoveredFPs(t, path)
	if want := []string{"a", "c"}; !equalStrings(fps, want) {
		t.Fatalf("recovered %v, want %v (a started, c admitted; b completed, d canceled)", fps, want)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d lines in a clean journal", skipped)
	}

	// The compacted file holds exactly one admitted record per live job
	// and validates strictly.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stats, err := ValidateJournal(f)
	if err != nil {
		t.Fatalf("compacted journal invalid: %v", err)
	}
	if stats.Records != 2 || stats.ByKind[KindAdmitted] != 2 {
		t.Fatalf("compacted journal: %d records %v, want 2 admitted", stats.Records, stats.ByKind)
	}
}

// TestJournalTornTailRecovery truncates the journal at every byte
// boundary of its final record and asserts replay stays clean: the torn
// record is skipped (never half-trusted) and everything before it
// replays exactly.  The final record is a completion, so whether it
// survives is visible in the recovered set.
func TestJournalTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.jsonl")
	appendAll(t, path,
		JournalRecord{Kind: KindAdmitted, FP: "a", Req: journalWire(1000)},
		JournalRecord{Kind: KindAdmitted, FP: "b", Req: journalWire(1001)},
		JournalRecord{Kind: KindStarted, FP: "b"},
		JournalRecord{Kind: KindCompleted, FP: "b"},
	)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.TrimRight(full, "\n")
	start := bytes.LastIndexByte(body, '\n') + 1 // final record's first byte

	for cut := start; cut <= len(full); cut++ {
		tpath := filepath.Join(dir, "torn.jsonl")
		if err := os.WriteFile(tpath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		fps, skipped := recoveredFPs(t, tpath)
		complete := cut == len(full) || (cut == len(full)-1 && full[len(full)-1] == '\n')
		if complete {
			// The completion record survived: only a recovers.
			if want := []string{"a"}; !equalStrings(fps, want) {
				t.Fatalf("cut %d/%d: recovered %v, want %v", cut, len(full), fps, want)
			}
		} else {
			// The completion is torn: it must be skipped whole, leaving
			// b's last intact record (started) to drive recovery.
			if want := []string{"a", "b"}; !equalStrings(fps, want) {
				t.Fatalf("cut %d/%d: recovered %v, want %v", cut, len(full), fps, want)
			}
			if cut > start && skipped != 1 {
				t.Fatalf("cut %d/%d: skipped %d, want 1 (the torn record)", cut, len(full), skipped)
			}
		}
	}
}

// TestJournalAppendAfterCompaction proves the reopened journal appends
// after the compacted prefix rather than clobbering it.
func TestJournalAppendAfterCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	appendAll(t, path, JournalRecord{Kind: KindAdmitted, FP: "a", Req: journalWire(1000)})

	j, recovered, err := openJobJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].fp != "a" {
		t.Fatalf("recovered %+v, want [a]", recovered)
	}
	if err := j.append(JournalRecord{Kind: KindCompleted, FP: "a"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	fps, _ := recoveredFPs(t, path)
	if len(fps) != 0 {
		t.Fatalf("recovered %v after completion, want none", fps)
	}
}

// TestValidateJournalRejects pins the strict consumer-side contract:
// unknown kinds, foreign versions, bad checksums and torn tails all
// fail validation even though the tolerant loader would skip them.
func TestValidateJournalRejects(t *testing.T) {
	good := JournalRecord{V: JournalVersion, Kind: KindAdmitted, FP: "a", Req: journalWire(1000), UnixMS: 1}
	sum, err := good.sum()
	if err != nil {
		t.Fatal(err)
	}
	good.Sum = sum
	goodLine, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(*JournalRecord)) string {
		r := good
		f(&r)
		s, err := r.sum()
		if err != nil {
			t.Fatal(err)
		}
		r.Sum = s
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	cases := []struct {
		name string
		line string
		want string
	}{
		{"unknown kind", mutate(func(r *JournalRecord) { r.Kind = "exploded" }), "unknown transition kind"},
		{"foreign version", mutate(func(r *JournalRecord) { r.V = JournalVersion + 1 }), "version"},
		{"missing fp", mutate(func(r *JournalRecord) { r.FP = "" }), "missing fp"},
		{"admitted without request", mutate(func(r *JournalRecord) { r.Req = nil }), "missing request"},
		{"bad checksum", strings.Replace(string(goodLine), `"fp":"a"`, `"fp":"z"`, 1), "checksum mismatch"},
		{"torn tail", string(goodLine[:len(goodLine)-3]), "unexpected end"},
	}
	for _, tc := range cases {
		in := string(goodLine) + "\n" + tc.line + "\n"
		if _, err := ValidateJournal(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated, want error", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) && tc.want != "unexpected end" {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if st, err := ValidateJournal(strings.NewReader(string(goodLine) + "\n")); err != nil || st.Records != 1 {
		t.Fatalf("good line: %v records=%d, want valid single record", err, st.Records)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
