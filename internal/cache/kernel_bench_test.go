package cache

// Microbenchmarks and allocation regressions for the hot access kernel.
// These pin down the per-reference cost of the three paths every sweep
// spends its time in -- steady-state hits, conflict misses, and
// load-forward fills -- and assert that none of them allocates.

import (
	"math/rand"
	"testing"

	"subcache/internal/trace"
)

func benchCache(b *testing.B, mutate ...func(*Config)) *Cache {
	b.Helper()
	cfg := Config{NetSize: 1024, BlockSize: 32, SubBlockSize: 4, Assoc: 4, WordSize: 2}
	for _, m := range mutate {
		m(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkAccessHit: steady-state read hits on a resident word, the
// dominant path of any realistic sweep.
func BenchmarkAccessHit(b *testing.B) {
	c := benchCache(b)
	ref := trace.Ref{Addr: 0x100, Kind: trace.Read, Size: 2}
	c.Access(ref) // warm the block
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(ref)
	}
}

// BenchmarkAccessMiss: alternating conflict blocks in a direct-mapped
// cache, so every access is a block miss with an eviction.
func BenchmarkAccessMiss(b *testing.B) {
	c := benchCache(b, func(cfg *Config) { cfg.Assoc = 1 })
	refs := [2]trace.Ref{
		{Addr: 0x0000, Kind: trace.Read, Size: 2},
		{Addr: 0x1000, Kind: trace.Read, Size: 2}, // same set, different tag
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(refs[i&1])
	}
}

// BenchmarkFillLoadForward: block misses under load-forward with many
// sub-blocks per block, exercising the fill loop and the transaction
// histogram.
func BenchmarkFillLoadForward(b *testing.B) {
	c := benchCache(b, func(cfg *Config) {
		cfg.Assoc = 1
		cfg.BlockSize = 64
		cfg.SubBlockSize = 2 // 32 sub-blocks per block
		cfg.Fetch = LoadForward
	})
	refs := [2]trace.Ref{
		{Addr: 0x0000, Kind: trace.Read, Size: 2},
		{Addr: 0x1000, Kind: trace.Read, Size: 2},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(refs[i&1])
	}
}

// TestAccessNoAllocs: the steady-state access path -- hits, misses with
// eviction, fills, and the transaction histogram -- must never allocate.
// A regression here (e.g. the old lazy map in recordTransaction) would
// cost every simulated reference a heap operation.
func TestAccessNoAllocs(t *testing.T) {
	hitCache := small(t)
	hit := read(0x100)
	hitCache.Access(hit)
	if n := testing.AllocsPerRun(1000, func() { hitCache.Access(hit) }); n != 0 {
		t.Errorf("hit path allocates %.1f per access, want 0", n)
	}

	missCache := small(t, func(cfg *Config) { cfg.Assoc = 1; cfg.Fetch = LoadForward })
	refs := [2]trace.Ref{read(0x0000), read(0x1000)}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		missCache.Access(refs[i&1])
		i++
	}); n != 0 {
		t.Errorf("miss path allocates %.1f per access, want 0", n)
	}

	// Every configuration axis the hot path branches on -- write
	// policies (allocate/no-allocate/ignore, through and copy-back),
	// OBL prefetch and the non-LRU replacements -- must stay 0-alloc
	// too: each variant sees conflict misses, hits, and writes.
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"copy-back", func(c *Config) { c.CopyBack = true }},
		{"write-no-allocate", func(c *Config) { c.Write = WriteNoAllocate }},
		{"write-ignore", func(c *Config) { c.Write = WriteIgnore }},
		{"copy-back-no-allocate", func(c *Config) { c.CopyBack = true; c.Write = WriteNoAllocate }},
		{"prefetch-obl", func(c *Config) { c.PrefetchOBL = true }},
		{"random", func(c *Config) { c.Replacement = Random; c.RandomSeed = 99 }},
		{"fifo", func(c *Config) { c.Replacement = FIFO }},
	}
	for _, v := range variants {
		c := small(t, func(cfg *Config) { cfg.Assoc = 2; cfg.Fetch = LoadForward }, v.mutate)
		pattern := [4]trace.Ref{
			read(0x0000),
			{Addr: 0x0000, Kind: trace.Write, Size: 2},
			read(0x1000),
			{Addr: 0x2000, Kind: trace.Write, Size: 2}, // conflicting write miss
		}
		j := 0
		if n := testing.AllocsPerRun(1000, func() {
			c.Access(pattern[j&3])
			j++
		}); n != 0 {
			t.Errorf("%s path allocates %.1f per access, want 0", v.name, n)
		}
	}
}

// TestTxHistAddMatchesMapMerge: Stats.Add on dense histograms must be
// equivalent to the old map-merge semantics for arbitrary histograms,
// including length mismatches in both directions.
func TestTxHistAddMatchesMapMerge(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	randHist := func() []uint64 {
		h := make([]uint64, 1+r.Intn(40))
		for w := 1; w < len(h); w++ {
			if r.Intn(2) == 0 {
				h[w] = uint64(r.Intn(1000))
			}
		}
		return h
	}
	toMap := func(h []uint64) map[int]uint64 {
		m := map[int]uint64{}
		for w, n := range h {
			if n != 0 {
				m[w] = n
			}
		}
		return m
	}
	for trial := 0; trial < 200; trial++ {
		a := Stats{TxHist: randHist()}
		b := Stats{TxHist: randHist()}

		// Reference semantics: merge the map views.
		want := toMap(a.TxHist)
		for w, n := range toMap(b.TxHist) {
			want[w] += n
		}

		a.Add(&b)
		got := a.Transactions()
		if got == nil {
			got = map[int]uint64{}
		}
		for w := range want {
			if want[w] == 0 {
				delete(want, w)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged histogram %v, want %v", trial, got, want)
		}
		for w, n := range want {
			if got[w] != n {
				t.Fatalf("trial %d: merged[%d] = %d, want %d", trial, w, got[w], n)
			}
		}
	}
}

// TestTxHistFromMapRoundTrip: the map/dense conversions must invert each
// other for any histogram a cache can produce.
func TestTxHistFromMapRoundTrip(t *testing.T) {
	m := map[int]uint64{1: 3, 4: 9, 16: 1}
	st := Stats{TxHist: TxHistFromMap(m)}
	got := st.Transactions()
	if len(got) != len(m) {
		t.Fatalf("round trip %v -> %v", m, got)
	}
	for w, n := range m {
		if got[w] != n {
			t.Errorf("round trip lost %d: got %d, want %d", w, got[w], n)
		}
	}
	if TxHistFromMap(nil) != nil {
		t.Error("TxHistFromMap(nil) should be nil")
	}
	if (&Stats{}).Transactions() != nil {
		t.Error("empty histogram should view as nil map")
	}
}
