package cache

import (
	"testing"
	"testing/quick"

	"subcache/internal/addr"
	"subcache/internal/rng"
	"subcache/internal/trace"
)

// genConfig derives a valid random geometry from raw fuzz inputs.
func genConfig(netShift, blockShift, subShift, assocShift uint8) Config {
	net := 32 << (netShift % 6)    // 32..1024
	block := 2 << (blockShift % 6) // 2..64
	if block > net {
		block = net
	}
	sub := 2 << (subShift % 6)
	if sub > block {
		sub = block
	}
	frames := net / block
	assoc := 1 << (assocShift % 5) // 1..16
	if assoc > frames {
		assoc = frames
	}
	return Config{NetSize: net, BlockSize: block, SubBlockSize: sub, Assoc: assoc, WordSize: 2}
}

// TestPropertyInvariants drives randomly configured caches with random
// reference streams and checks the core accounting invariants.
func TestPropertyInvariants(t *testing.T) {
	f := func(netShift, blockShift, subShift, assocShift uint8, seed uint64, fetchRaw uint8) bool {
		cfg := genConfig(netShift, blockShift, subShift, assocShift)
		cfg.Fetch = Fetch(fetchRaw % 4)
		if cfg.Validate() != nil {
			return false // generator bug, fail loudly
		}
		c, err := New(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		capSub := cfg.NetSize / cfg.SubBlockSize
		for i := 0; i < 3000; i++ {
			a := addr.AlignDown(addr.Addr(r.Uint32()&0xffff), 2)
			kind := trace.Kind(r.Intn(3))
			c.Access(trace.Ref{Addr: a, Kind: kind, Size: 2})
			if kind.Countable() && !c.Contains(a) {
				return false // a countable access must leave its word resident
			}
		}
		st := c.Stats()
		if st.Hits+st.Misses != st.Accesses {
			return false
		}
		if st.BlockMisses+st.SubBlockMisses != st.Misses {
			return false
		}
		if c.ResidentSubBlocks() > capSub {
			return false
		}
		// Traffic in words must equal fills times words-per-sub-block.
		if st.WordsFetched != st.SubBlockFills*uint64(cfg.WordsPerSubBlock()) {
			return false
		}
		// The transaction histogram must account for every fetched word
		// (for the fetch policies where fills equal transaction content).
		var words uint64
		for w, n := range st.Transactions() {
			words += uint64(w) * n
		}
		return words == st.WordsFetched
	}
	cfgQ := quickCfg(40)
	if err := quick.Check(f, cfgQ); err != nil {
		t.Error(err)
	}
}

// TestPropertyDemandTrafficIdentity: with demand fetch, traffic ratio is
// exactly miss ratio times sub-block words (Table 7's structure).
func TestPropertyDemandTrafficIdentity(t *testing.T) {
	f := func(netShift, blockShift, subShift, assocShift uint8, seed uint64) bool {
		cfg := genConfig(netShift, blockShift, subShift, assocShift)
		c, err := New(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for i := 0; i < 2000; i++ {
			a := addr.AlignDown(addr.Addr(r.Uint32()&0x3fff), 2)
			c.Access(trace.Ref{Addr: a, Kind: trace.Read, Size: 2})
		}
		st := c.Stats()
		return st.WordsFetched == st.Misses*uint64(cfg.WordsPerSubBlock())
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Error(err)
	}
}

// TestPropertyLoadForwardDominance: for identical streams, load-forward
// never has more misses than demand fetch (it strictly adds prefetching)
// and never less traffic.
func TestPropertyLoadForwardDominance(t *testing.T) {
	f := func(seed uint64) bool {
		cfgD := Config{NetSize: 256, BlockSize: 16, SubBlockSize: 2, Assoc: 4, WordSize: 2}
		cfgLF := cfgD
		cfgLF.Fetch = LoadForward
		cd, _ := New(cfgD)
		cl, _ := New(cfgLF)
		r := rng.New(seed)
		var a addr.Addr
		for i := 0; i < 4000; i++ {
			// Mostly sequential with occasional jumps: the forward
			// bias load-forward exploits.
			if r.Bool(0.2) {
				a = addr.AlignDown(addr.Addr(r.Uint32()&0x1fff), 2)
			} else {
				a += 2
			}
			ref := trace.Ref{Addr: a, Kind: trace.IFetch, Size: 2}
			cd.Access(ref)
			cl.Access(ref)
		}
		sd, sl := cd.Stats(), cl.Stats()
		return sl.Misses <= sd.Misses && sl.WordsFetched >= sd.WordsFetched
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Error(err)
	}
}

// TestPropertyWholeBlockNoSubMisses: a whole-block-fill cache can never
// take a sub-block miss, for any geometry or stream.
func TestPropertyWholeBlockNoSubMisses(t *testing.T) {
	f := func(netShift, blockShift, subShift, assocShift uint8, seed uint64) bool {
		cfg := genConfig(netShift, blockShift, subShift, assocShift)
		cfg.Fetch = WholeBlock
		c, err := New(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for i := 0; i < 2000; i++ {
			a := addr.AlignDown(addr.Addr(r.Uint32()&0x3fff), 2)
			c.Access(trace.Ref{Addr: a, Kind: trace.Read, Size: 2})
		}
		return c.Stats().SubBlockMisses == 0
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Error(err)
	}
}

// TestPropertyOptimizedNeverRedundant: the optimized load-forward scheme
// must never refetch a resident sub-block.
func TestPropertyOptimizedNeverRedundant(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := Config{NetSize: 128, BlockSize: 32, SubBlockSize: 4, Assoc: 2, WordSize: 2, Fetch: LoadForwardOptimized}
		c, err := New(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for i := 0; i < 3000; i++ {
			a := addr.AlignDown(addr.Addr(r.Uint32()&0xfff), 2)
			c.Access(trace.Ref{Addr: a, Kind: trace.Read, Size: 2})
		}
		return c.Stats().RedundantLoads == 0
	}
	if err := quick.Check(f, quickCfg(20)); err != nil {
		t.Error(err)
	}
}

// TestPropertyInclusionMonotonicity: doubling associativity at fixed net
// size with LRU cannot increase the miss count on any stream
// (set-assoc LRU inclusion holds when sets merge pairwise).
func TestPropertyLargerCacheNotWorse(t *testing.T) {
	// LRU stack inclusion: a fully-associative LRU cache of size 2N
	// contains the contents of one of size N at all times, so misses
	// are monotone in size.  Verify on random streams.
	f := func(seed uint64) bool {
		mk := func(net int) *Cache {
			c, err := New(Config{NetSize: net, BlockSize: 8, SubBlockSize: 8,
				Assoc: net / 8, WordSize: 2})
			if err != nil {
				panic(err)
			}
			return c
		}
		small, big := mk(64), mk(128)
		r := rng.New(seed)
		for i := 0; i < 3000; i++ {
			a := addr.AlignDown(addr.Addr(r.Uint32()&0x7ff), 2)
			ref := trace.Ref{Addr: a, Kind: trace.Read, Size: 2}
			small.Access(ref)
			big.Access(ref)
		}
		return big.Stats().Misses <= small.Stats().Misses
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Error(err)
	}
}

// TestPropertyAssociativityInclusion: with the set count held fixed,
// growing the associativity of an LRU cache can never increase misses
// on any stream (per-set LRU stack inclusion).
func TestPropertyAssociativityInclusion(t *testing.T) {
	f := func(seed uint64) bool {
		mk := func(assoc int) *Cache {
			c, err := New(Config{
				NetSize:   8 * 4 * assoc, // 4 sets x assoc ways x 8B blocks
				BlockSize: 8, SubBlockSize: 8, Assoc: assoc, WordSize: 2,
			})
			if err != nil {
				panic(err)
			}
			return c
		}
		c2, c4, c8 := mk(2), mk(4), mk(8)
		r := rng.New(seed)
		for i := 0; i < 4000; i++ {
			a := addr.AlignDown(addr.Addr(r.Uint32()&0xfff), 2)
			ref := trace.Ref{Addr: a, Kind: trace.Read, Size: 2}
			c2.Access(ref)
			c4.Access(ref)
			c8.Access(ref)
		}
		return c4.Stats().Misses <= c2.Stats().Misses &&
			c8.Stats().Misses <= c4.Stats().Misses
	}
	if err := quick.Check(f, quickCfg(20)); err != nil {
		t.Error(err)
	}
}
