package cache

// Tests for the write-traffic extension: write-through versus copy-back
// main-memory update (the paper's flagged further study, §3.1).

import (
	"testing"
	"testing/quick"

	"subcache/internal/addr"
	"subcache/internal/rng"
	"subcache/internal/trace"
)

func write(a addr.Addr) trace.Ref { return trace.Ref{Addr: a, Kind: trace.Write, Size: 2} }

func TestWriteThroughCountsEveryStore(t *testing.T) {
	c := small(t) // CopyBack false by default
	c.Access(write(0x100))
	c.Access(write(0x100))
	c.Access(write(0x102))
	st := c.Stats()
	if st.WriteThroughWords != 3 {
		t.Errorf("write-through words = %d, want 3", st.WriteThroughWords)
	}
	if st.WriteBackWords != 0 {
		t.Errorf("write-back words = %d, want 0", st.WriteBackWords)
	}
	if got := st.WriteTrafficPerStore(); got != 1 {
		t.Errorf("per-store traffic = %g, want 1", got)
	}
}

func TestCopyBackCoalescesStores(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.CopyBack = true })
	// Three stores to the same sub-block: one dirty sub-block.
	c.Access(write(0x100))
	c.Access(write(0x100))
	c.Access(write(0x102))
	st := c.Stats()
	if st.WriteThroughWords != 0 {
		t.Errorf("copy-back emitted %d direct store words", st.WriteThroughWords)
	}
	if st.WriteBackWords != 0 {
		t.Errorf("write-back before eviction: %d words", st.WriteBackWords)
	}
	// Flush: the single dirty 4-byte sub-block = 2 words.
	c.FlushUsage()
	if st.WriteBackWords != 2 {
		t.Errorf("write-back words after flush = %d, want 2", st.WriteBackWords)
	}
	if got := st.WriteTrafficPerStore(); got != 2.0/3.0 {
		t.Errorf("per-store traffic = %g, want 2/3", got)
	}
}

func TestCopyBackWritesBackOnEviction(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.CopyBack = true })
	c.Access(write(0x000)) // dirty sub-block in set 0
	c.Access(read(0x020))  // fill second way
	c.Access(read(0x040))  // evict block 0x000 (LRU)
	st := c.Stats()
	if st.WriteBackWords != 2 {
		t.Errorf("write-back words after eviction = %d, want 2", st.WriteBackWords)
	}
	// A clean eviction must not write back.
	c.Access(read(0x060)) // evicts 0x020 (clean)
	if st.WriteBackWords != 2 {
		t.Errorf("clean eviction wrote back: %d words", st.WriteBackWords)
	}
}

func TestCopyBackNoDoubleFlush(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.CopyBack = true })
	c.Access(write(0x100))
	c.FlushUsage()
	c.FlushUsage() // dirty bits were cleared; second flush adds nothing
	if got := c.Stats().WriteBackWords; got != 2 {
		t.Errorf("double flush accumulated %d words, want 2", got)
	}
}

func TestCopyBackNoAllocateStoreGoesToMemory(t *testing.T) {
	c := small(t, func(cfg *Config) {
		cfg.CopyBack = true
		cfg.Write = WriteNoAllocate
	})
	c.Access(write(0x100)) // miss, not allocated: direct store
	st := c.Stats()
	if st.WriteThroughWords != 1 {
		t.Errorf("uncached store words = %d, want 1", st.WriteThroughWords)
	}
	// A later write hit dirties normally.
	c.Access(read(0x100))
	c.Access(write(0x100))
	c.FlushUsage()
	if st.WriteBackWords != 2 {
		t.Errorf("write-back words = %d, want 2", st.WriteBackWords)
	}
}

func TestWriteIgnoreHasNoWriteTraffic(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.Write = WriteIgnore; cfg.CopyBack = true })
	c.Access(write(0x100))
	c.FlushUsage()
	if got := c.Stats().WriteTrafficWords(); got != 0 {
		t.Errorf("ignored writes produced %d words", got)
	}
}

func TestWriteTrafficDoesNotTouchReadMetrics(t *testing.T) {
	for _, cb := range []bool{false, true} {
		c := small(t, func(cfg *Config) { cfg.CopyBack = cb })
		for i := 0; i < 200; i++ {
			c.Access(write(addr.Addr(i * 2)))
		}
		st := c.Stats()
		if st.Accesses != 0 || st.Misses != 0 || st.WordsFetched != 0 {
			t.Errorf("copyback=%v: writes leaked into read metrics: %+v", cb, st)
		}
	}
}

// Property: copy-back write traffic never exceeds write-through traffic
// on the same stream when sub-block size equals the word size (no
// write-back granularity inflation), and equals it only without reuse.
func TestPropertyCopyBackNoWorseAtWordGranularity(t *testing.T) {
	f := func(seed uint64) bool {
		mk := func(cb bool) *Cache {
			c, err := New(Config{NetSize: 128, BlockSize: 8, SubBlockSize: 2,
				Assoc: 4, WordSize: 2, CopyBack: cb})
			if err != nil {
				panic(err)
			}
			return c
		}
		wt, cbk := mk(false), mk(true)
		r := rng.New(seed)
		for i := 0; i < 3000; i++ {
			a := addr.AlignDown(addr.Addr(r.Uint32()&0x3ff), 2)
			kind := trace.Read
			if r.Bool(0.4) {
				kind = trace.Write
			}
			ref := trace.Ref{Addr: a, Kind: kind, Size: 2}
			wt.Access(ref)
			cbk.Access(ref)
		}
		wt.FlushUsage()
		cbk.FlushUsage()
		return cbk.Stats().WriteTrafficWords() <= wt.Stats().WriteTrafficWords()
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Error(err)
	}
}

// Property: under copy-back, total write-back words never exceed
// (stores x words-per-sub-block): each store dirties at most one
// sub-block.
func TestPropertyWriteBackBounded(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := Config{NetSize: 256, BlockSize: 16, SubBlockSize: 8,
			Assoc: 4, WordSize: 2, CopyBack: true}
		c, err := New(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		stores := 0
		for i := 0; i < 2000; i++ {
			a := addr.AlignDown(addr.Addr(r.Uint32()&0xfff), 2)
			kind := trace.Read
			if r.Bool(0.3) {
				kind = trace.Write
				stores++
			}
			c.Access(trace.Ref{Addr: a, Kind: kind, Size: 2})
		}
		c.FlushUsage()
		bound := uint64(stores * cfg.WordsPerSubBlock())
		return c.Stats().WriteBackWords <= bound
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Error(err)
	}
}
