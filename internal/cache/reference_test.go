package cache

// This file cross-validates the bit-twiddled simulator against a naive
// reference model: maps and slices, no precomputed shifts, no bitmaps,
// written to be obviously correct rather than fast.  Any divergence in
// hit/miss classification, fill counts or eviction choice on random
// streams is a bug in one of the two.

import (
	"testing"
	"testing/quick"

	"subcache/internal/addr"
	"subcache/internal/rng"
	"subcache/internal/trace"
)

// refCache is the naive model.  LRU only, demand or load-forward fetch,
// write-allocate.
type refCache struct {
	cfg   Config
	sets  []refSet
	clock uint64
}

type refSet struct {
	blocks []refBlock
}

type refBlock struct {
	tag      uint64
	valid    map[int]bool
	lastUsed uint64
}

func newRefCache(cfg Config) *refCache {
	return &refCache{cfg: cfg, sets: make([]refSet, cfg.NumSets())}
}

type refResult struct {
	hit    bool
	loaded int
}

func (rc *refCache) access(a addr.Addr, isWrite bool) refResult {
	rc.clock++
	blockNum := uint64(a) / uint64(rc.cfg.BlockSize)
	setIdx := int(blockNum % uint64(rc.cfg.NumSets()))
	subIdx := int(uint64(a)%uint64(rc.cfg.BlockSize)) / rc.cfg.SubBlockSize
	set := &rc.sets[setIdx]

	for i := range set.blocks {
		b := &set.blocks[i]
		if b.tag == blockNum {
			b.lastUsed = rc.clock
			if b.valid[subIdx] {
				return refResult{hit: true}
			}
			return refResult{loaded: rc.fill(b, subIdx)}
		}
	}
	// Block miss: evict LRU if the set is full.
	if len(set.blocks) >= rc.cfg.Assoc {
		lru := 0
		for i := range set.blocks {
			if set.blocks[i].lastUsed < set.blocks[lru].lastUsed {
				lru = i
			}
		}
		set.blocks = append(set.blocks[:lru], set.blocks[lru+1:]...)
	}
	nb := refBlock{tag: blockNum, valid: map[int]bool{}, lastUsed: rc.clock}
	loaded := rc.fill(&nb, subIdx)
	set.blocks = append(set.blocks, nb)
	return refResult{loaded: loaded}
}

func (rc *refCache) fill(b *refBlock, subIdx int) int {
	switch rc.cfg.Fetch {
	case DemandSubBlock:
		b.valid[subIdx] = true
		return 1
	case LoadForward:
		n := 0
		for i := subIdx; i < rc.cfg.SubBlocksPerBlock(); i++ {
			b.valid[i] = true
			n++
		}
		return n
	case LoadForwardOptimized:
		n := 0
		for i := subIdx; i < rc.cfg.SubBlocksPerBlock(); i++ {
			if !b.valid[i] {
				b.valid[i] = true
				n++
			}
		}
		return n
	case WholeBlock:
		for i := 0; i < rc.cfg.SubBlocksPerBlock(); i++ {
			b.valid[i] = true
		}
		return rc.cfg.SubBlocksPerBlock()
	}
	panic("refCache: unknown fetch")
}

// TestAgainstReferenceModel drives both implementations with identical
// random streams over random geometries and fetch policies and demands
// access-by-access agreement.
func TestAgainstReferenceModel(t *testing.T) {
	f := func(netShift, blockShift, subShift, assocShift, fetchRaw uint8, seed uint64) bool {
		cfg := genConfig(netShift, blockShift, subShift, assocShift)
		cfg.Fetch = Fetch(fetchRaw % 4)
		real, err := New(cfg)
		if err != nil {
			return false
		}
		ref := newRefCache(cfg)
		r := rng.New(seed)
		for i := 0; i < 4000; i++ {
			a := addr.AlignDown(addr.Addr(r.Uint32()&0x7fff), 2)
			isWrite := r.Bool(0.2)
			kind := trace.Read
			if isWrite {
				kind = trace.Write
			}
			got := real.Access(trace.Ref{Addr: a, Kind: kind, Size: 2})
			want := ref.access(a, isWrite)
			if got.Hit != want.hit || got.SubBlocksLoaded != want.loaded {
				t.Logf("step %d addr %v cfg %v: got hit=%v loaded=%d, ref hit=%v loaded=%d",
					i, a, cfg, got.Hit, got.SubBlocksLoaded, want.hit, want.loaded)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Error(err)
	}
}

// TestReferenceModelSectorGeometry repeats the cross-check on the
// 360/85-shaped geometry (fully associative, many sub-blocks).
func TestAgainstReferenceModelSector(t *testing.T) {
	cfg := Config{NetSize: 2048, BlockSize: 256, SubBlockSize: 16, Assoc: 8, WordSize: 2}
	real, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefCache(cfg)
	r := rng.New(99)
	for i := 0; i < 20000; i++ {
		a := addr.AlignDown(addr.Addr(r.Uint32()&0xffff), 2)
		got := real.Access(trace.Ref{Addr: a, Kind: trace.Read, Size: 2})
		want := ref.access(a, false)
		if got.Hit != want.hit || got.SubBlocksLoaded != want.loaded {
			t.Fatalf("step %d addr %v: got hit=%v loaded=%d, ref hit=%v loaded=%d",
				i, a, got.Hit, got.SubBlocksLoaded, want.hit, want.loaded)
		}
	}
}
