package cache

// Tests for one-block-lookahead prefetch (Smith [11]; beyond the
// paper's scope but implemented for the ablation study).

import (
	"testing"
	"testing/quick"

	"subcache/internal/addr"
	"subcache/internal/rng"
	"subcache/internal/trace"
)

func TestPrefetchBringsNextBlock(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.PrefetchOBL = true })
	// Miss on block [0x100,0x110): block [0x110,0x120)'s first
	// sub-block must be prefetched.
	c.Access(read(0x100))
	if !c.Contains(0x110) {
		t.Error("next block's first sub-block not prefetched")
	}
	if c.Contains(0x114) {
		t.Error("prefetch loaded more than one sub-block")
	}
	st := c.Stats()
	if st.PrefetchFills != 1 {
		t.Errorf("prefetch fills = %d, want 1", st.PrefetchFills)
	}
	// Traffic counts demand fill + prefetch fill.
	if st.WordsFetched != 4 { // two 4-byte sub-blocks on a 2-byte path
		t.Errorf("words = %d, want 4", st.WordsFetched)
	}
}

func TestPrefetchTurnsSequentialMissesIntoHits(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.PrefetchOBL = true })
	// Walk sub-block 0 of consecutive blocks: after the first miss,
	// every block was prefetched ahead of use.
	for i := 0; i < 8; i++ {
		c.Access(read(addr.Addr(0x100 + i*16)))
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (prefetch covers the stride)", st.Misses)
	}
	if st.PrefetchUsed < 7 {
		t.Errorf("prefetch used = %d, want >= 7", st.PrefetchUsed)
	}
}

func TestPrefetchPollutionAccounting(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.PrefetchOBL = true })
	// One miss prefetches block B.  Then churn B's set without touching
	// B: its eviction must count as pollution.
	c.Access(read(0x100)) // prefetches block at 0x110 (set 1)
	c.Access(read(0x130)) // set 1 (prefetches 0x140, set 0)
	c.Access(read(0x150)) // set 1: evicts LRU of set 1
	c.Access(read(0x170)) // set 1 again
	if c.Stats().PrefetchEvictedUnused == 0 {
		t.Error("no pollution recorded despite unused prefetched blocks being evicted")
	}
}

func TestPrefetchUsedNotDoubleCounted(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.PrefetchOBL = true })
	c.Access(read(0x100)) // prefetch 0x110
	c.Access(read(0x110)) // first use: counted
	c.Access(read(0x110)) // second use: not
	if got := c.Stats().PrefetchUsed; got != 1 {
		t.Errorf("prefetch used = %d, want 1", got)
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	c := small(t)
	c.Access(read(0x100))
	if c.Contains(0x110) {
		t.Error("prefetch happened with PrefetchOBL=false")
	}
	if c.Stats().PrefetchFills != 0 {
		t.Error("prefetch fills counted with PrefetchOBL=false")
	}
}

func TestPrefetchDoesNotRefetchResident(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.PrefetchOBL = true })
	c.Access(read(0x110)) // demand-load block B's first sub-block (prefetches 0x120)
	fills := c.Stats().SubBlockFills
	c.Access(read(0x100)) // miss block A; B's sub-block 0 already resident
	// A's fill + no prefetch fill for B.
	if got := c.Stats().SubBlockFills - fills; got != 1 {
		t.Errorf("fills after second miss = %d, want 1 (B already resident)", got)
	}
}

// Property: on sequential-leaning streams, OBL prefetch never increases
// the miss count and never decreases traffic.
func TestPropertyPrefetchMissesDown(t *testing.T) {
	f := func(seed uint64) bool {
		mk := func(obl bool) *Cache {
			c, err := New(Config{NetSize: 256, BlockSize: 16, SubBlockSize: 8,
				Assoc: 4, WordSize: 2, PrefetchOBL: obl})
			if err != nil {
				panic(err)
			}
			return c
		}
		base, obl := mk(false), mk(true)
		r := rng.New(seed)
		var a addr.Addr
		for i := 0; i < 4000; i++ {
			if r.Bool(0.15) {
				a = addr.AlignDown(addr.Addr(r.Uint32()&0x1fff), 2)
			} else {
				a += 2
			}
			ref := trace.Ref{Addr: a, Kind: trace.IFetch, Size: 2}
			base.Access(ref)
			obl.Access(ref)
		}
		sb, so := base.Stats(), obl.Stats()
		// Prefetch may pollute, so misses aren't strictly lower in all
		// theoretical cases, but on forward-leaning streams it must not
		// hurt by more than a hair and traffic must not drop.
		return float64(so.Misses) <= 1.02*float64(sb.Misses) &&
			so.WordsFetched >= sb.WordsFetched
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Error(err)
	}
}

// Property: prefetch accounting is internally consistent -- used +
// evicted-unused never exceeds fills, and fills are included in total
// sub-block fills.
func TestPropertyPrefetchAccounting(t *testing.T) {
	f := func(seed uint64) bool {
		c, err := New(Config{NetSize: 128, BlockSize: 16, SubBlockSize: 4,
			Assoc: 2, WordSize: 2, PrefetchOBL: true})
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for i := 0; i < 3000; i++ {
			a := addr.AlignDown(addr.Addr(r.Uint32()&0xfff), 2)
			c.Access(trace.Ref{Addr: a, Kind: trace.Read, Size: 2})
		}
		st := c.Stats()
		if st.PrefetchUsed+st.PrefetchEvictedUnused > st.PrefetchFills {
			return false
		}
		return st.PrefetchFills <= st.SubBlockFills
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Error(err)
	}
}

// TestPropertyPrefetchNeverEvictsActiveFrame reproduces the bug where a
// tagged prefetch, triggered mid-access, could select the very frame
// the access was using as its replacement victim (FIFO and Random
// replacement in small or fully-associative sets), leaving the
// processor's word non-resident.  Every countable access must leave its
// word cached, for every replacement policy and geometry, with OBL on.
func TestPropertyPrefetchNeverEvictsActiveFrame(t *testing.T) {
	f := func(seed uint64, replRaw, netShift, blockShift, subShift, assocShift uint8) bool {
		cfg := genConfig(netShift, blockShift, subShift, assocShift)
		cfg.PrefetchOBL = true
		cfg.Replacement = Replacement(replRaw % 3)
		cfg.RandomSeed = seed
		c, err := New(cfg)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for i := 0; i < 3000; i++ {
			a := addr.AlignDown(addr.Addr(r.Uint32()&0x3fff), 2)
			kind := trace.Kind(r.Intn(3))
			c.Access(trace.Ref{Addr: a, Kind: kind, Size: 2})
			if kind.Countable() && !c.Contains(a) {
				t.Logf("cfg %v repl %v: access %v left its word non-resident", cfg, cfg.Replacement, a)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Error(err)
	}
}

// TestPrefetchRandomDirected is the deterministic reproduction the
// property test found for the same bug: a fully-associative cache with
// Random replacement where the prefetch fired mid-access picked the
// active frame as its victim.  With the fix, the prefetch is dropped
// instead and every countable access leaves its word resident.
func TestPrefetchRandomDirected(t *testing.T) {
	const seed = 0xf1afb1ce3249bba0
	cfg := Config{NetSize: 128, BlockSize: 32, SubBlockSize: 2, Assoc: 4,
		WordSize: 2, Replacement: Random, RandomSeed: seed, PrefetchOBL: true}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	for i := 0; i < 3000; i++ {
		a := addr.AlignDown(addr.Addr(r.Uint32()&0x3fff), 2)
		kind := trace.Kind(r.Intn(3))
		c.Access(trace.Ref{Addr: a, Kind: kind, Size: 2})
		if kind.Countable() && !c.Contains(a) {
			t.Fatalf("step %d: access %v left its own word non-resident", i, a)
		}
	}
}
