package cache

import (
	"testing"

	"subcache/internal/addr"
	"subcache/internal/trace"
)

// small returns a tiny cache for behavioural tests: 64 bytes, 16-byte
// blocks, 4-byte sub-blocks, 2-way (2 sets), 2-byte words.
func small(t *testing.T, mutate ...func(*Config)) *Cache {
	t.Helper()
	cfg := Config{NetSize: 64, BlockSize: 16, SubBlockSize: 4, Assoc: 2, WordSize: 2}
	for _, m := range mutate {
		m(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func read(a addr.Addr) trace.Ref { return trace.Ref{Addr: a, Kind: trace.Read, Size: 2} }

func TestFirstAccessMisses(t *testing.T) {
	c := small(t)
	res := c.Access(read(0x100))
	if res.Hit || !res.BlockMiss || res.SubBlocksLoaded != 1 {
		t.Errorf("first access: %+v", res)
	}
	if res2 := c.Access(read(0x100)); !res2.Hit {
		t.Errorf("repeat access missed: %+v", res2)
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestSubBlockGranularity(t *testing.T) {
	c := small(t)
	c.Access(read(0x100)) // loads sub-block [0x100,0x104)
	// Same sub-block, different word: hit.
	if res := c.Access(read(0x102)); !res.Hit {
		t.Errorf("same sub-block missed: %+v", res)
	}
	// Same block, different sub-block: sub-block miss, not a block miss.
	res := c.Access(read(0x104))
	if res.Hit || res.BlockMiss {
		t.Errorf("expected sub-block miss, got %+v", res)
	}
	st := c.Stats()
	if st.BlockMisses != 1 || st.SubBlockMisses != 1 {
		t.Errorf("block/sub misses = %d/%d, want 1/1", st.BlockMisses, st.SubBlockMisses)
	}
}

func TestConventionalCacheHasNoSubBlockMisses(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.SubBlockSize = 16 })
	for _, a := range []addr.Addr{0x100, 0x104, 0x108, 0x10c, 0x200, 0x204} {
		c.Access(read(a))
	}
	if st := c.Stats(); st.SubBlockMisses != 0 {
		t.Errorf("conventional cache recorded %d sub-block misses", st.SubBlockMisses)
	}
}

func TestMissPartition(t *testing.T) {
	c := small(t)
	for i := 0; i < 500; i++ {
		c.Access(read(addr.Addr(i*6) % 0x400))
	}
	st := c.Stats()
	if st.Hits+st.Misses != st.Accesses {
		t.Errorf("hits %d + misses %d != accesses %d", st.Hits, st.Misses, st.Accesses)
	}
	if st.BlockMisses+st.SubBlockMisses != st.Misses {
		t.Errorf("block %d + sub %d != misses %d", st.BlockMisses, st.SubBlockMisses, st.Misses)
	}
	if st.IFetches+st.Reads != st.Accesses {
		t.Errorf("ifetch %d + reads %d != accesses %d", st.IFetches, st.Reads, st.Accesses)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 sets; blocks mapping to set 0 are those with even block number.
	// Block size 16, 2 sets: set = (addr>>4) & 1.
	c := small(t)
	// Fill set 0 with blocks A (0x000) and B (0x020).
	c.Access(read(0x000))
	c.Access(read(0x020))
	// Touch A so B is LRU.
	c.Access(read(0x000))
	// C (0x040) maps to set 0, evicting B.
	res := c.Access(read(0x040))
	if !res.Evicted {
		t.Errorf("expected eviction: %+v", res)
	}
	if !c.Contains(0x000) {
		t.Error("A was evicted but is MRU")
	}
	if c.Contains(0x020) {
		t.Error("B (LRU) still resident")
	}
	if res := c.Access(read(0x020)); res.Hit {
		t.Error("B should have been evicted")
	}
}

func TestFIFOEvictsOldestLoaded(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.Replacement = FIFO })
	c.Access(read(0x000)) // A loaded first
	c.Access(read(0x020)) // B
	c.Access(read(0x000)) // touch A: irrelevant under FIFO
	c.Access(read(0x040)) // evicts A (oldest load), not B
	if c.Contains(0x000) {
		t.Error("FIFO should evict first-loaded block A")
	}
	if !c.Contains(0x020) {
		t.Error("FIFO evicted B, which was loaded later")
	}
}

func TestRandomReplacementDeterministic(t *testing.T) {
	run := func() uint64 {
		c := small(t, func(cfg *Config) { cfg.Replacement = Random; cfg.RandomSeed = 99 })
		for i := 0; i < 2000; i++ {
			c.Access(read(addr.Addr(i*16) % 0x800))
		}
		return c.Stats().Misses
	}
	if run() != run() {
		t.Error("random replacement with fixed seed not reproducible")
	}
}

func TestVictimPrefersInvalidWay(t *testing.T) {
	c := small(t)
	c.Access(read(0x000))
	res := c.Access(read(0x020)) // second way free: no eviction
	if res.Evicted {
		t.Errorf("eviction with a free way: %+v", res)
	}
	if c.Stats().Evictions != 0 {
		t.Errorf("evictions = %d, want 0", c.Stats().Evictions)
	}
}

func TestTrafficEqualsMissesTimesSubBlockWords(t *testing.T) {
	// For demand fetch every miss moves exactly one sub-block, so
	// traffic ratio == miss ratio * (sub-block/word) -- the identity
	// visible throughout Table 7.
	c := small(t) // sub 4, word 2: factor 2
	for i := 0; i < 3000; i++ {
		c.Access(read(addr.Addr(i*14) % 0x1000))
	}
	st := c.Stats()
	if st.WordsFetched != st.Misses*2 {
		t.Errorf("words %d != misses %d * 2", st.WordsFetched, st.Misses)
	}
	if got, want := st.TrafficRatio(), st.MissRatio()*2; !close(got, want) {
		t.Errorf("traffic %g != miss %g * 2", got, want)
	}
}

func close(a, b float64) bool { d := a - b; return d < 1e-12 && d > -1e-12 }

func TestLoadForwardFillsForward(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.Fetch = LoadForward })
	// Block 0x100..0x110, sub-blocks at 0x100,0x104,0x108,0x10c.
	// Missing access at 0x108 loads 0x108 and 0x10c.
	res := c.Access(read(0x108))
	if res.SubBlocksLoaded != 2 {
		t.Errorf("loaded %d sub-blocks, want 2", res.SubBlocksLoaded)
	}
	if !c.Contains(0x10c) {
		t.Error("forward sub-block not loaded")
	}
	if c.Contains(0x100) || c.Contains(0x104) {
		t.Error("backward sub-blocks must not be loaded")
	}
	// Now a backward reference within the block: loads 0x104..0x10c,
	// refetching 0x108 and 0x10c redundantly.
	res = c.Access(read(0x104))
	if res.SubBlocksLoaded != 3 {
		t.Errorf("backward fill loaded %d, want 3", res.SubBlocksLoaded)
	}
	if c.Stats().RedundantLoads != 2 {
		t.Errorf("redundant loads = %d, want 2", c.Stats().RedundantLoads)
	}
}

func TestLoadForwardOptimizedSkipsResident(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.Fetch = LoadForwardOptimized })
	c.Access(read(0x108)) // loads 0x108, 0x10c
	res := c.Access(read(0x104))
	if res.SubBlocksLoaded != 1 {
		t.Errorf("optimized LF loaded %d, want 1", res.SubBlocksLoaded)
	}
	if c.Stats().RedundantLoads != 0 {
		t.Errorf("optimized LF made %d redundant loads", c.Stats().RedundantLoads)
	}
}

func TestLoadForwardOptimizedGapTransactions(t *testing.T) {
	// Valid pattern V.V. with a miss at sub-block 0 must produce two
	// separate transactions for the two gaps... actually fill from 0:
	// sub 0 missing, 1 valid, 2 missing, 3 valid -> two 1-sub-block
	// transactions.
	c := small(t, func(cfg *Config) { cfg.Fetch = LoadForwardOptimized })
	c.Access(read(0x104)) // loads 0x104 + 0x108 + 0x10c? No: optimized LF on empty block loads 0x104..0x10c (3 sub-blocks, one transaction)
	st := c.Stats()
	if st.SubBlockFills != 3 {
		t.Fatalf("fills = %d, want 3", st.SubBlockFills)
	}
	if st.Transactions()[6] != 1 { // 3 sub-blocks * 2 words each
		t.Errorf("transactions = %v, want one of 6 words", st.Transactions())
	}
}

func TestWholeBlockFillsAll(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.Fetch = WholeBlock })
	res := c.Access(read(0x108))
	if res.SubBlocksLoaded != 4 {
		t.Errorf("whole-block loaded %d, want 4", res.SubBlocksLoaded)
	}
	for _, a := range []addr.Addr{0x100, 0x104, 0x108, 0x10c} {
		if !c.Contains(a) {
			t.Errorf("sub-block %v not resident after whole-block fill", a)
		}
	}
	if c.Stats().SubBlockMisses != 0 {
		t.Error("whole-block fill cannot leave sub-block misses in one block")
	}
}

func TestTransactionsHistogram(t *testing.T) {
	c := small(t) // demand: each fill = 1 sub-block = 2 words
	c.Access(read(0x100))
	c.Access(read(0x200))
	st := c.Stats()
	if tx := st.Transactions(); tx[2] != 2 || len(tx) != 1 {
		t.Errorf("transactions = %v", tx)
	}
	// Load-forward: one contiguous transaction of 4 sub-blocks.
	lf := small(t, func(cfg *Config) { cfg.Fetch = LoadForward })
	lf.Access(read(0x100))
	if lf.Stats().Transactions()[8] != 1 {
		t.Errorf("LF transactions = %v, want one of 8 words", lf.Stats().Transactions())
	}
}

func TestWritesNotCounted(t *testing.T) {
	c := small(t)
	c.Access(trace.Ref{Addr: 0x100, Kind: trace.Write, Size: 2})
	st := c.Stats()
	if st.Accesses != 0 || st.Misses != 0 || st.WordsFetched != 0 {
		t.Errorf("write leaked into counters: %+v", st)
	}
	if st.WriteAccesses != 1 || st.WriteMisses != 1 {
		t.Errorf("write counters %d/%d, want 1/1", st.WriteAccesses, st.WriteMisses)
	}
	// But with WriteAllocate the block is now resident for reads.
	if res := c.Access(read(0x100)); !res.Hit {
		t.Error("write-allocate did not install the block")
	}
}

func TestWriteNoAllocate(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.Write = WriteNoAllocate })
	c.Access(trace.Ref{Addr: 0x100, Kind: trace.Write, Size: 2})
	if c.Contains(0x100) {
		t.Error("no-allocate write installed a block")
	}
	// A write hit should still refresh recency.
	c.Access(read(0x000))
	c.Access(read(0x020))
	c.Access(trace.Ref{Addr: 0x000, Kind: trace.Write, Size: 2}) // touch A
	c.Access(read(0x040))                                        // evicts LRU = B
	if !c.Contains(0x000) {
		t.Error("write hit did not refresh LRU recency")
	}
}

func TestWriteIgnore(t *testing.T) {
	c := small(t, func(cfg *Config) { cfg.Write = WriteIgnore })
	c.Access(trace.Ref{Addr: 0x100, Kind: trace.Write, Size: 2})
	st := c.Stats()
	if st.WriteAccesses != 0 || c.Contains(0x100) {
		t.Errorf("ignored write had effects: %+v", st)
	}
}

func TestWarmStartSuppressesColdMisses(t *testing.T) {
	cfg := func(c *Config) { c.WarmStart = true }
	c := small(t, cfg)
	// 4 frames total (64B / 16B). Touch 4 distinct blocks: all warm-up.
	for _, a := range []addr.Addr{0x000, 0x010, 0x020, 0x030} {
		c.Access(read(a))
	}
	st := c.Stats()
	if st.Accesses != 0 || st.Misses != 0 {
		t.Errorf("cold misses counted: %+v", st)
	}
	if st.WarmupAccesses != 4 || st.WarmupMisses != 4 {
		t.Errorf("warm-up counters %d/%d, want 4/4", st.WarmupAccesses, st.WarmupMisses)
	}
	// Now the cache is full: subsequent activity counts.
	c.Access(read(0x000))
	if st.Accesses != 1 || st.Hits != 1 {
		t.Errorf("post-warm access not counted: %+v", st)
	}
}

func TestWarmStartDisabledByDefault(t *testing.T) {
	c := small(t)
	c.Access(read(0x100))
	if c.Stats().Accesses != 1 {
		t.Error("cold access not counted with WarmStart=false")
	}
}

func TestSubBlockUtilization(t *testing.T) {
	c := small(t)
	// Touch 1 of 4 sub-blocks in one block, then flush.
	c.Access(read(0x100))
	c.FlushUsage()
	st := c.Stats()
	if st.ResidencySubBlocks != 4 || st.ResidencyTouched != 1 {
		t.Errorf("residency %d/%d, want 1/4", st.ResidencyTouched, st.ResidencySubBlocks)
	}
	if got := st.SubBlockUtilization(); !close(got, 0.25) {
		t.Errorf("utilization = %g, want 0.25", got)
	}
}

func TestUtilizationAccumulatesOnEviction(t *testing.T) {
	c := small(t)
	c.Access(read(0x000)) // set 0, touch 1/4
	c.Access(read(0x020)) // set 0
	c.Access(read(0x040)) // evict 0x000 block
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.ResidencySubBlocks != 4 || st.ResidencyTouched != 1 {
		t.Errorf("residency %d/%d after eviction", st.ResidencyTouched, st.ResidencySubBlocks)
	}
}

func TestResidentSubBlocksBounded(t *testing.T) {
	c := small(t)
	capSub := c.Config().NetSize / c.Config().SubBlockSize
	for i := 0; i < 5000; i++ {
		c.Access(read(addr.Addr(i*10) % 0x2000))
		if got := c.ResidentSubBlocks(); got > capSub {
			t.Fatalf("resident sub-blocks %d exceeds capacity %d", got, capSub)
		}
	}
}

func TestContainsAfterAccess(t *testing.T) {
	c := small(t)
	for i := 0; i < 1000; i++ {
		a := addr.Addr(i*26) % 0x4000
		a = addr.AlignDown(a, 2)
		c.Access(read(a))
		if !c.Contains(a) {
			t.Fatalf("address %v not resident immediately after access", a)
		}
	}
}

func TestRunDrivesSource(t *testing.T) {
	c := small(t)
	refs := []trace.Ref{read(0x100), read(0x100), read(0x104)}
	if err := c.Run(trace.NewSliceSource(refs)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Hits != 1 {
		t.Errorf("after Run: %+v", st)
	}
	if st.ResidencySubBlocks == 0 {
		t.Error("Run did not flush usage")
	}
}

func TestFullyAssociativeSectorBehaviour(t *testing.T) {
	// Miniature 360/85: 4 sectors of 32 bytes, 8-byte sub-blocks,
	// fully associative.
	cfg := Config{NetSize: 128, BlockSize: 32, SubBlockSize: 8, Assoc: 4, WordSize: 4}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Five distinct sectors: the first gets evicted (LRU).
	for i := 0; i < 5; i++ {
		c.Access(trace.Ref{Addr: addr.Addr(i * 32), Kind: trace.Read, Size: 4})
	}
	if c.Contains(0) {
		t.Error("LRU sector not evicted in fully associative cache")
	}
	for i := 1; i < 5; i++ {
		if !c.Contains(addr.Addr(i * 32)) {
			t.Errorf("sector %d missing", i)
		}
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted the zero Config")
	}
}

func TestStatsString(t *testing.T) {
	c := small(t)
	c.Access(read(0x100))
	if c.Stats().String() == "" {
		t.Error("Stats.String empty")
	}
}
