package cache

import "fmt"

// Stats accumulates the architectural event counts of one simulation
// run.  All headline counters cover instruction fetches and data reads
// only, matching the paper's write-filtered metrics; write and warm-up
// activity is recorded separately for diagnostics.
type Stats struct {
	// Accesses is the number of counted (read + ifetch) word accesses.
	Accesses uint64
	// IFetches and Reads partition Accesses.
	IFetches uint64
	Reads    uint64
	// Hits and Misses partition Accesses.
	Hits   uint64
	Misses uint64
	// BlockMisses are misses where no tag matched; SubBlockMisses are
	// misses within a resident block (tag hit, invalid sub-block).
	// They partition Misses.
	BlockMisses    uint64
	SubBlockMisses uint64

	// SubBlockFills is the number of sub-block transfers from memory.
	SubBlockFills uint64
	// WordsFetched is the bus traffic in data-path words.
	WordsFetched uint64
	// RedundantLoads counts load-forward transfers of sub-blocks that
	// were already resident (the cost of the simple redundant scheme).
	RedundantLoads uint64
	// TxHist histograms contiguous bus transfers by length in words,
	// the input to the nibble-mode cost models: TxHist[w] counts the
	// w-word transactions.  It is a dense array rather than a map so
	// the simulation kernel records a transfer with a single slice
	// increment and no allocation; New pre-sizes it to the block's
	// word count (the longest possible transfer).  Index 0 is unused.
	// Use Transactions for the historical map shape.
	TxHist []uint64

	// Evictions counts replaced valid blocks.
	Evictions uint64
	// ResidencyTouched / ResidencySubBlocks measure sub-block
	// utilisation over completed (and, after FlushUsage, final)
	// residencies: the paper's observation that 72% of a 360/85
	// sector's sub-blocks are never referenced while resident.
	ResidencyTouched   uint64
	ResidencySubBlocks uint64

	// One-block-lookahead prefetch accounting (Config.PrefetchOBL).
	// PrefetchFills counts prefetched sub-block transfers (included in
	// SubBlockFills and WordsFetched); PrefetchUsed counts prefetched
	// blocks later demand-referenced; PrefetchEvictedUnused counts the
	// pollution: prefetched blocks evicted untouched.
	PrefetchFills         uint64
	PrefetchUsed          uint64
	PrefetchEvictedUnused uint64

	// Warm-up activity excluded from the counters by WarmStart.
	WarmupAccesses uint64
	WarmupMisses   uint64

	// Write activity, never included in the ratios.
	WriteAccesses uint64
	WriteMisses   uint64

	// Write traffic to memory, in data-path words (an extension beyond
	// the paper, which lists write-through vs copy-back as further
	// study).  WriteThroughWords counts stores sent straight to memory
	// (all stores under write-through; uncached stores under
	// copy-back); WriteBackWords counts dirty sub-block words written
	// at eviction or final flush under copy-back.
	WriteThroughWords uint64
	WriteBackWords    uint64
}

// Transactions returns the bus-transaction histogram in its historical
// map shape -- length in words to count, zero-count widths omitted, nil
// when no transaction was recorded.  The map is built on each call;
// hot paths should read TxHist directly.
func (s *Stats) Transactions() map[int]uint64 {
	var m map[int]uint64
	for w, n := range s.TxHist {
		if n == 0 {
			continue
		}
		if m == nil {
			m = make(map[int]uint64)
		}
		m[w] = n
	}
	return m
}

// TxHistFromMap builds a dense transaction histogram from the map
// shape, for tests and hand-assembled Stats values.  Widths must be
// non-negative; an empty or nil map yields a nil histogram.
func TxHistFromMap(m map[int]uint64) []uint64 {
	maxW := -1
	for w := range m {
		if w < 0 {
			panic(fmt.Sprintf("cache.TxHistFromMap: negative transaction width %d", w))
		}
		if w > maxW {
			maxW = w
		}
	}
	if maxW < 0 {
		return nil
	}
	h := make([]uint64, maxW+1)
	for w, n := range m {
		h[w] = n
	}
	return h
}

// WriteTrafficWords returns the total store traffic to memory in words.
func (s *Stats) WriteTrafficWords() uint64 {
	return s.WriteThroughWords + s.WriteBackWords
}

// WriteTrafficPerStore returns store-to-memory words per write access:
// 1.0 for write-through by construction, and (usually much) less for
// copy-back when stores exhibit locality.
func (s *Stats) WriteTrafficPerStore() float64 {
	if s.WriteAccesses == 0 {
		return 0
	}
	return float64(s.WriteTrafficWords()) / float64(s.WriteAccesses)
}

// MissRatio returns misses divided by accesses, the paper's latency
// metric.  Zero if no accesses were counted.
func (s *Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// TrafficRatio returns bus words moved with the cache divided by bus
// words without it.  Without a cache every counted access moves exactly
// one word, so the denominator is Accesses.
func (s *Stats) TrafficRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.WordsFetched) / float64(s.Accesses)
}

// SubBlockUtilization returns the fraction of sub-blocks referenced at
// least once during a block residency (call Cache.FlushUsage first to
// include blocks still resident at end of trace).
func (s *Stats) SubBlockUtilization() float64 {
	if s.ResidencySubBlocks == 0 {
		return 0
	}
	return float64(s.ResidencyTouched) / float64(s.ResidencySubBlocks)
}

// RedundantLoadFraction returns the fraction of sub-block transfers that
// were redundant load-forward refetches.
func (s *Stats) RedundantLoadFraction() float64 {
	if s.SubBlockFills == 0 {
		return 0
	}
	return float64(s.RedundantLoads) / float64(s.SubBlockFills)
}

// Add merges other into s (used when aggregating shards of a workload).
// Ratio methods on the merged value weight by accesses, which is the
// correct pooling for a single trace split into pieces; use
// metrics.Average for the paper's unweighted per-trace averaging.
func (s *Stats) Add(other *Stats) {
	s.Accesses += other.Accesses
	s.IFetches += other.IFetches
	s.Reads += other.Reads
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.BlockMisses += other.BlockMisses
	s.SubBlockMisses += other.SubBlockMisses
	s.SubBlockFills += other.SubBlockFills
	s.WordsFetched += other.WordsFetched
	s.RedundantLoads += other.RedundantLoads
	s.Evictions += other.Evictions
	s.ResidencyTouched += other.ResidencyTouched
	s.ResidencySubBlocks += other.ResidencySubBlocks
	s.PrefetchFills += other.PrefetchFills
	s.PrefetchUsed += other.PrefetchUsed
	s.PrefetchEvictedUnused += other.PrefetchEvictedUnused
	s.WarmupAccesses += other.WarmupAccesses
	s.WarmupMisses += other.WarmupMisses
	s.WriteAccesses += other.WriteAccesses
	s.WriteMisses += other.WriteMisses
	s.WriteThroughWords += other.WriteThroughWords
	s.WriteBackWords += other.WriteBackWords
	if len(other.TxHist) > 0 {
		if len(s.TxHist) < len(other.TxHist) {
			grown := make([]uint64, len(other.TxHist))
			copy(grown, s.TxHist)
			s.TxHist = grown
		}
		for w, n := range other.TxHist {
			s.TxHist[w] += n
		}
	}
}

// String summarises the run.
func (s *Stats) String() string {
	return fmt.Sprintf("accesses=%d miss=%.4f traffic=%.4f (blockMiss=%d subMiss=%d fills=%d redundant=%d)",
		s.Accesses, s.MissRatio(), s.TrafficRatio(),
		s.BlockMisses, s.SubBlockMisses, s.SubBlockFills, s.RedundantLoads)
}
