package cache

import (
	"reflect"
	"testing"
)

// fillStats assigns a distinct non-zero value derived from base to
// every field of s, by reflection, so a forgotten field in Add cannot
// hide: if Stats grows a field this helper does not understand, the
// test fails until both it and Add are taught about it.
func fillStats(t *testing.T, s *Stats, base uint64) {
	t.Helper()
	v := reflect.ValueOf(s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(base + uint64(i))
		case reflect.Map:
			f.Set(reflect.ValueOf(map[int]uint64{
				1: base + 100,
				4: base + 200,
				8: base + 300,
			}))
		default:
			t.Fatalf("Stats.%s has kind %v: teach fillStats and Stats.Add about it",
				v.Type().Field(i).Name, f.Kind())
		}
	}
}

// TestStatsAddSumsEveryField: Add must sum every numeric field and
// merge the transaction histogram.  The check enumerates the struct by
// reflection, so adding a counter to Stats without extending Add breaks
// this test rather than silently dropping shard counts.
func TestStatsAddSumsEveryField(t *testing.T) {
	var a, b Stats
	fillStats(t, &a, 1000)
	fillStats(t, &b, 5000)
	a.Add(&b)

	v := reflect.ValueOf(&a).Elem()
	for i := 0; i < v.NumField(); i++ {
		name := v.Type().Field(i).Name
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			want := (1000 + uint64(i)) + (5000 + uint64(i))
			if got := f.Uint(); got != want {
				t.Errorf("Stats.%s = %d after Add, want %d (field not summed?)", name, got, want)
			}
		case reflect.Map:
			want := map[int]uint64{
				1: 1000 + 100 + 5000 + 100,
				4: 1000 + 200 + 5000 + 200,
				8: 1000 + 300 + 5000 + 300,
			}
			if got := f.Interface(); !reflect.DeepEqual(got, want) {
				t.Errorf("Stats.%s = %v after Add, want %v", name, got, want)
			}
		}
	}
}

// TestStatsAddIntoZero: merging into a zero value (nil histogram) must
// allocate the map rather than panic, and reproduce the source.
func TestStatsAddIntoZero(t *testing.T) {
	var a, b Stats
	fillStats(t, &b, 42)
	a.Add(&b)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("zero.Add(b) = %+v, want %+v", a, b)
	}
	// The merged histogram must be a private copy, not an alias.
	a.Transactions[1]++
	if a.Transactions[1] == b.Transactions[1] {
		t.Error("Add aliased the source histogram instead of copying it")
	}
}

// TestStatsAddNilHistogram: a source with no transactions leaves the
// destination untouched.
func TestStatsAddNilHistogram(t *testing.T) {
	var a, b Stats
	a.Accesses = 7
	a.Add(&b)
	if a.Transactions != nil {
		t.Errorf("Add allocated a histogram for a nil source: %v", a.Transactions)
	}
	if a.Accesses != 7 {
		t.Errorf("Accesses = %d, want 7", a.Accesses)
	}
}
