package cache

import (
	"reflect"
	"testing"
)

// fillStats assigns a distinct non-zero value derived from base to
// every field of s, by reflection, so a forgotten field in Add cannot
// hide: if Stats grows a field this helper does not understand, the
// test fails until both it and Add are taught about it.
func fillStats(t *testing.T, s *Stats, base uint64) {
	t.Helper()
	v := reflect.ValueOf(s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(base + uint64(i))
		case reflect.Slice:
			f.Set(reflect.ValueOf([]uint64{
				0, base + 100, 0, 0, base + 200, 0, 0, 0, base + 300,
			}))
		default:
			t.Fatalf("Stats.%s has kind %v: teach fillStats and Stats.Add about it",
				v.Type().Field(i).Name, f.Kind())
		}
	}
}

// TestStatsAddSumsEveryField: Add must sum every numeric field and
// merge the transaction histogram.  The check enumerates the struct by
// reflection, so adding a counter to Stats without extending Add breaks
// this test rather than silently dropping shard counts.
func TestStatsAddSumsEveryField(t *testing.T) {
	var a, b Stats
	fillStats(t, &a, 1000)
	fillStats(t, &b, 5000)
	a.Add(&b)

	v := reflect.ValueOf(&a).Elem()
	for i := 0; i < v.NumField(); i++ {
		name := v.Type().Field(i).Name
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			want := (1000 + uint64(i)) + (5000 + uint64(i))
			if got := f.Uint(); got != want {
				t.Errorf("Stats.%s = %d after Add, want %d (field not summed?)", name, got, want)
			}
		case reflect.Slice:
			want := []uint64{
				0, 1000 + 100 + 5000 + 100, 0, 0,
				1000 + 200 + 5000 + 200, 0, 0, 0,
				1000 + 300 + 5000 + 300,
			}
			if got := f.Interface(); !reflect.DeepEqual(got, want) {
				t.Errorf("Stats.%s = %v after Add, want %v", name, got, want)
			}
		}
	}
}

// TestStatsAddIntoZero: merging into a zero value (nil histogram) must
// allocate the slice rather than panic, and reproduce the source.
func TestStatsAddIntoZero(t *testing.T) {
	var a, b Stats
	fillStats(t, &b, 42)
	a.Add(&b)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("zero.Add(b) = %+v, want %+v", a, b)
	}
	// The merged histogram must be a private copy, not an alias.
	a.TxHist[1]++
	if a.TxHist[1] == b.TxHist[1] {
		t.Error("Add aliased the source histogram instead of copying it")
	}
}

// TestStatsAddNilHistogram: a source with no transactions leaves the
// destination untouched.
func TestStatsAddNilHistogram(t *testing.T) {
	var a, b Stats
	a.Accesses = 7
	a.Add(&b)
	if a.TxHist != nil {
		t.Errorf("Add allocated a histogram for a nil source: %v", a.TxHist)
	}
	if a.Accesses != 7 {
		t.Errorf("Accesses = %d, want 7", a.Accesses)
	}
}

// TestStatsAddShorterHistogram: merging a short histogram into a longer
// one must not truncate the destination's tail.
func TestStatsAddShorterHistogram(t *testing.T) {
	a := Stats{TxHist: []uint64{0, 1, 0, 0, 0, 0, 0, 0, 9}}
	b := Stats{TxHist: []uint64{0, 2}}
	a.Add(&b)
	if a.TxHist[1] != 3 || a.TxHist[8] != 9 || len(a.TxHist) != 9 {
		t.Errorf("short-into-long merge wrong: %v", a.TxHist)
	}
}
