// Package cache implements the paper's central artifact: a
// set-associative cache with sub-block placement.
//
// In sub-block placement (Hill & Smith §1; "sector" placement in the IBM
// System/360 Model 85) an address tag covers a block of two or more
// sub-blocks, each with its own valid bit, and the sub-block is the unit
// of memory transfer.  A conventional cache is the special case
// BlockSize == SubBlockSize.  The IBM 360/85 sector cache is the special
// case of a single fully-associative set (Assoc == NetSize/BlockSize).
//
// The simulator is event-exact rather than cycle-accurate: it models
// placement, replacement and fetch policy and counts the architectural
// events (misses, sub-block fills, bus transactions) from which all of
// the paper's metrics derive.
package cache

import (
	"fmt"

	"subcache/internal/addr"
)

// Replacement selects the policy used to choose a victim block within a
// set.  The paper uses LRU throughout, citing Strecker's observation
// that LRU, FIFO and RANDOM perform comparably; the alternatives are
// provided for the ablation benchmarks.
type Replacement int

const (
	// LRU evicts the least recently used block in the set.
	LRU Replacement = iota
	// FIFO evicts the block resident longest.
	FIFO
	// Random evicts a uniformly random block (deterministically seeded).
	Random
)

// String returns the policy name.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("Replacement(%d)", int(r))
	}
}

// Fetch selects what is loaded when a reference misses.
type Fetch int

const (
	// DemandSubBlock loads only the missing sub-block (the paper's
	// default demand fetch).
	DemandSubBlock Fetch = iota
	// LoadForward loads the missing sub-block and every subsequent
	// sub-block in the same block, refetching sub-blocks that are
	// already valid (the paper's "redundant-load scheme", used by the
	// Zilog Z80,000).
	LoadForward
	// LoadForwardOptimized loads the missing sub-block and only those
	// subsequent sub-blocks in the block that are not already valid
	// (the paper's "optimized operation", judged not worth its
	// complexity given how few redundant loads occur).
	LoadForwardOptimized
	// WholeBlock loads every sub-block of the block on any miss,
	// making the block the transfer unit regardless of SubBlockSize.
	// With BlockSize == SubBlockSize it is identical to DemandSubBlock.
	WholeBlock
)

// String returns the fetch-policy name.
func (f Fetch) String() string {
	switch f {
	case DemandSubBlock:
		return "demand"
	case LoadForward:
		return "load-forward"
	case LoadForwardOptimized:
		return "load-forward-opt"
	case WholeBlock:
		return "whole-block"
	default:
		return fmt.Sprintf("Fetch(%d)", int(f))
	}
}

// WritePolicy controls how data writes interact with the cache.  The
// paper excludes writes from all reported metrics; the default policy
// lets writes allocate and touch blocks (so cache contents stay honest)
// while the counters ignore them.
type WritePolicy int

const (
	// WriteAllocate treats a write like a read for cache-state purposes
	// (allocation, replacement recency) but never counts it.
	WriteAllocate WritePolicy = iota
	// WriteNoAllocate updates recency on a write hit but does not
	// allocate on a write miss.
	WriteNoAllocate
	// WriteIgnore makes writes invisible to the cache entirely.
	WriteIgnore
)

// String returns the write-policy name.
func (w WritePolicy) String() string {
	switch w {
	case WriteAllocate:
		return "write-allocate"
	case WriteNoAllocate:
		return "write-no-allocate"
	case WriteIgnore:
		return "write-ignore"
	default:
		return fmt.Sprintf("WritePolicy(%d)", int(w))
	}
}

// TagBits is the address-space width assumed when sizing address tags.
// The paper computes gross cache sizes for a 32-bit address space "even
// though some of the traces come from 16-bit machines, since we are
// interested in the newer 32-bit architectures".
const TagBits = 32

// Config describes one cache organisation, in the paper's vocabulary:
// net size (data bytes), block size (bytes per address tag), sub-block
// size (bytes per memory transfer and per valid bit) and associativity.
type Config struct {
	// NetSize is the data capacity in bytes.
	NetSize int
	// BlockSize is the bytes covered by one address tag.
	BlockSize int
	// SubBlockSize is the transfer unit in bytes.  Equal to BlockSize
	// for a conventional cache.
	SubBlockSize int
	// Assoc is the set associativity.  NetSize/BlockSize yields a fully
	// associative cache (e.g. the 360/85 sector cache).
	Assoc int
	// WordSize is the memory data-path width in bytes (2 for the
	// paper's PDP-11/Z8000 runs, 4 for VAX-11/System 370).  Traffic is
	// counted in words of this size.
	WordSize int

	Replacement Replacement
	Fetch       Fetch
	Write       WritePolicy

	// WarmStart, when set, suppresses counting until every frame of the
	// cache has been filled once, giving the paper's "warm-start
	// ratios" that "do not count the misses taken to initially fill the
	// cache" (used for the Z8000 results).
	WarmStart bool

	// PrefetchOBL enables tagged one-block-lookahead sequential
	// prefetch (Smith 1978, the paper's citation [11]): a miss to block
	// i -- or the first demand reference to a prefetched block i --
	// also fetches the first sub-block of block i+1, so sequential
	// streams stay one block ahead after the initial miss.  The
	// prefetch moves words (counted in traffic) but is not an access,
	// so it can only lower the miss ratio -- at the risk the paper
	// describes as "memory pollution (fetching data which is not
	// subsequently used, while replacing data that may yet be used)".
	// Prefetch studies were beyond the paper's scope (§3.1); this
	// implements the mechanism it cites for the ablation benches.
	PrefetchOBL bool

	// CopyBack selects copy-back (write-back) main-memory update:
	// writes set per-sub-block dirty bits and dirty sub-blocks are
	// written to memory on eviction.  When false, write-through is
	// modelled: every write moves one word to memory immediately.
	//
	// This extends the paper, which filtered write effects out of its
	// metrics and listed "write through vs copy back factors" as
	// further study (§3.1).  Write traffic is accumulated in separate
	// Stats fields and never contaminates the paper's read-only miss
	// and traffic ratios.
	CopyBack bool

	// RandomSeed seeds the Random replacement policy.  Ignored for LRU
	// and FIFO.
	RandomSeed uint64
}

// Validate checks the geometry.  All sizes must be powers of two with
// WordSize <= SubBlockSize <= BlockSize <= NetSize, the associativity
// must divide the block count, and a block may hold at most 64
// sub-blocks (the valid/touched bitmaps are single machine words).
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    int
	}{
		{"NetSize", c.NetSize},
		{"BlockSize", c.BlockSize},
		{"SubBlockSize", c.SubBlockSize},
		{"WordSize", c.WordSize},
	} {
		if p.v <= 0 || !addr.IsPow2(uint64(p.v)) {
			return fmt.Errorf("cache: %s %d is not a positive power of two", p.name, p.v)
		}
	}
	if c.SubBlockSize > c.BlockSize {
		return fmt.Errorf("cache: sub-block size %d exceeds block size %d", c.SubBlockSize, c.BlockSize)
	}
	if c.WordSize > c.SubBlockSize {
		return fmt.Errorf("cache: word size %d exceeds sub-block size %d (transfers must be at least one word)", c.WordSize, c.SubBlockSize)
	}
	if c.BlockSize > c.NetSize {
		return fmt.Errorf("cache: block size %d exceeds net size %d", c.BlockSize, c.NetSize)
	}
	if c.BlockSize/c.SubBlockSize > 64 {
		return fmt.Errorf("cache: %d sub-blocks per block exceeds the supported 64", c.BlockSize/c.SubBlockSize)
	}
	frames := c.NetSize / c.BlockSize
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: associativity %d must be positive", c.Assoc)
	}
	if c.Assoc > frames {
		return fmt.Errorf("cache: associativity %d exceeds %d blocks", c.Assoc, frames)
	}
	if !addr.IsPow2(uint64(c.Assoc)) {
		return fmt.Errorf("cache: associativity %d is not a power of two", c.Assoc)
	}
	switch c.Replacement {
	case LRU, FIFO, Random:
	default:
		return fmt.Errorf("cache: unknown replacement policy %d", int(c.Replacement))
	}
	switch c.Fetch {
	case DemandSubBlock, LoadForward, LoadForwardOptimized, WholeBlock:
	default:
		return fmt.Errorf("cache: unknown fetch policy %d", int(c.Fetch))
	}
	switch c.Write {
	case WriteAllocate, WriteNoAllocate, WriteIgnore:
	default:
		return fmt.Errorf("cache: unknown write policy %d", int(c.Write))
	}
	return nil
}

// FamilyKey returns the configuration with the fields a single-pass
// multi-configuration kernel may vary across lanes (SubBlockSize and
// Fetch) cleared.  Two configurations with equal family keys share
// cache geometry -- set count, tag width, associativity -- and, when
// MultiPassSafe also holds, identical tag-array dynamics, so one tag/
// replacement engine can simulate all of them in a single trace pass
// (see internal/multipass).
func (c Config) FamilyKey() Config {
	c.SubBlockSize = 0
	c.Fetch = 0
	return c
}

// MultiPassSafe reports whether the configuration's tag-array dynamics
// (probe outcomes, replacement decisions, recency updates, warm-start
// fill progress) are independent of SubBlockSize and Fetch, the
// precondition for sharing a tag engine across sub-block sizes:
//
//   - OBL prefetch must be off: whether a hit triggers the tagged
//     lookahead depends on sub-block validity, so lanes with different
//     sub-block sizes would allocate different prefetch blocks.
//   - Write-no-allocate must be off: a write to a resident block skips
//     the recency update exactly when the written sub-block is invalid,
//     which again depends on the sub-block size.
//
// Write-allocate, write-ignore, copy-back, warm start and all
// replacement policies preserve the invariant (Random replacement draws
// victims only on block misses, which are tag-level events, so equal
// seeds yield equal victim sequences).
func (c Config) MultiPassSafe() bool {
	return !c.PrefetchOBL && c.Write != WriteNoAllocate
}

// NumFrames returns the number of blocks (tag entries) in the cache.
func (c Config) NumFrames() int { return c.NetSize / c.BlockSize }

// NumSets returns the number of sets.
func (c Config) NumSets() int { return c.NumFrames() / c.Assoc }

// SubBlocksPerBlock returns the number of sub-blocks under one tag.
func (c Config) SubBlocksPerBlock() int { return c.BlockSize / c.SubBlockSize }

// WordsPerSubBlock returns the number of data-path words moved by one
// sub-block transfer.
func (c Config) WordsPerSubBlock() int { return c.SubBlockSize / c.WordSize }

// GrossSize returns the paper's cost metric: the combined size in bytes
// of the data array, the address tags (TagBits minus the block-offset
// bits, ignoring set-index bits exactly as the paper does) and one valid
// bit per sub-block.
//
// Reproduces Table 7's gross sizes, e.g. a 64-byte net cache with
// 16-byte blocks and 8-byte sub-blocks: 4 frames x (28 tag bits + 2
// valid bits + 128 data bits) / 8 = 79 bytes.
func (c Config) GrossSize() float64 {
	tagBits := TagBits - int(addr.Log2(uint64(c.BlockSize)))
	bitsPerFrame := tagBits + c.SubBlocksPerBlock() + 8*c.BlockSize
	return float64(c.NumFrames()) * float64(bitsPerFrame) / 8
}

// TagBytes returns the address-tag storage in bytes (excluding valid
// bits), the area term sub-block placement exists to shrink.
func (c Config) TagBytes() float64 {
	tagBits := TagBits - int(addr.Log2(uint64(c.BlockSize)))
	return float64(c.NumFrames()) * float64(tagBits) / 8
}

// ValidBitBytes returns the sub-block valid-bit storage in bytes.
func (c Config) ValidBitBytes() float64 {
	return float64(c.NumFrames()) * float64(c.SubBlocksPerBlock()) / 8
}

// Overhead returns the fraction of the gross cache that is not data:
// (gross - net) / gross.  The paper's §3.2 point is that this is far
// from negligible for small blocks and 32-bit tags -- a 512-byte cache
// with 2-byte blocks is two-thirds tags (31 tag bits per 16 data bits).
func (c Config) Overhead() float64 {
	g := c.GrossSize()
	if g == 0 {
		return 0
	}
	return (g - float64(c.NetSize)) / g
}

// String renders the organisation in the paper's compact "block,sub"
// notation, e.g. "1024B 16,8 4-way LRU".
func (c Config) String() string {
	s := fmt.Sprintf("%dB %d,%d %d-way %s", c.NetSize, c.BlockSize, c.SubBlockSize, c.Assoc, c.Replacement)
	if c.Fetch != DemandSubBlock {
		s += " " + c.Fetch.String()
	}
	return s
}
