package cache

// Additional behavioural edge-case tests for the simulator core.

import (
	"testing"

	"subcache/internal/addr"
	"subcache/internal/rng"
	"subcache/internal/trace"
)

func TestTagAliasingWithinSet(t *testing.T) {
	// Two blocks mapping to the same set must coexist up to the
	// associativity and never be confused with each other.
	c := small(t)         // 64B, 16B blocks, 2 sets, 2-way: set = bit 4 of addr
	c.Access(read(0x000)) // set 0
	c.Access(read(0x040)) // set 0, different tag
	if !c.Contains(0x000) || !c.Contains(0x040) {
		t.Fatal("aliasing blocks evicted each other below associativity")
	}
	// Their sub-blocks are tracked independently.
	if c.Contains(0x004) || c.Contains(0x044) {
		t.Fatal("sub-block state leaked across tags")
	}
}

func TestSetIndexUsesBlockBits(t *testing.T) {
	// Addresses differing only in the sub-block offset must land in the
	// same block, whatever the set count.
	c := small(t)
	c.Access(read(0x100))
	res := c.Access(read(0x10c)) // same 16-byte block, last sub-block
	if res.BlockMiss {
		t.Error("offset bits leaked into the set index or tag")
	}
}

func TestEvictedFlagOnlyOnValidVictim(t *testing.T) {
	c := small(t)
	evictions := 0
	for i := 0; i < 12; i++ {
		res := c.Access(read(addr.Addr(i * 0x40))) // all set 0
		if res.Evicted {
			evictions++
		}
	}
	// 2 ways fill silently; the remaining 10 allocations evict.
	if evictions != 10 {
		t.Errorf("evictions = %d, want 10", evictions)
	}
	if got := c.Stats().Evictions; got != 10 {
		t.Errorf("Stats.Evictions = %d, want 10", got)
	}
}

func TestWarmStartWithEvictionsBeforeFull(t *testing.T) {
	// Warm-start counting must not start until *every* frame is filled,
	// even if one set is churning.  Cache: 4 frames in 2 sets.
	c := small(t, func(cfg *Config) { cfg.WarmStart = true })
	// Hammer set 0 with 3 distinct blocks: set 0's two ways fill and
	// churn, set 1 stays empty, so counting must stay off.
	for i := 0; i < 30; i++ {
		c.Access(read(addr.Addr((i % 3) * 0x40)))
	}
	if c.Stats().Accesses != 0 {
		t.Fatalf("counting started before the cache was full (%d accesses)", c.Stats().Accesses)
	}
	// Fill set 1; counting begins after its second way fills.
	c.Access(read(0x010))
	c.Access(read(0x030))
	c.Access(read(0x010))
	if c.Stats().Accesses != 1 || c.Stats().Hits != 1 {
		t.Errorf("stats after warm fill: %+v", c.Stats())
	}
}

func TestRandomSeedChangesOutcome(t *testing.T) {
	run := func(seed uint64) uint64 {
		c := small(t, func(cfg *Config) { cfg.Replacement = Random; cfg.RandomSeed = seed })
		r := rng.New(4)
		for i := 0; i < 4000; i++ {
			c.Access(read(addr.AlignDown(addr.Addr(r.Uint32()&0x7ff), 2)))
		}
		return c.Stats().Misses
	}
	if run(1) == run(2) && run(1) == run(3) {
		t.Error("random replacement identical across three seeds; seeding is broken")
	}
}

func TestStatsAddMergesEverything(t *testing.T) {
	a := &Stats{
		Accesses: 1, IFetches: 1, Hits: 1,
		TxHist:         TxHistFromMap(map[int]uint64{2: 3}),
		WriteBackWords: 5, WriteThroughWords: 7,
	}
	b := &Stats{
		Accesses: 2, Reads: 2, Misses: 2, BlockMisses: 2,
		SubBlockFills: 4, WordsFetched: 8, RedundantLoads: 1,
		Evictions: 1, ResidencyTouched: 2, ResidencySubBlocks: 4,
		WarmupAccesses: 9, WarmupMisses: 3, WriteAccesses: 6, WriteMisses: 2,
		TxHist:         TxHistFromMap(map[int]uint64{2: 1, 4: 2}),
		WriteBackWords: 1, WriteThroughWords: 2,
	}
	a.Add(b)
	if a.Accesses != 3 || a.Reads != 2 || a.Misses != 2 || a.Hits != 1 {
		t.Errorf("core counters wrong: %+v", a)
	}
	if tx := a.Transactions(); tx[2] != 4 || tx[4] != 2 {
		t.Errorf("transactions wrong: %v", tx)
	}
	if a.WriteBackWords != 6 || a.WriteThroughWords != 9 {
		t.Errorf("write words wrong: %d/%d", a.WriteBackWords, a.WriteThroughWords)
	}
	if a.WarmupAccesses != 9 || a.WriteAccesses != 6 {
		t.Errorf("aux counters wrong: %+v", a)
	}
}

func TestStatsAddIntoEmptyTransactions(t *testing.T) {
	a := &Stats{}
	b := &Stats{TxHist: TxHistFromMap(map[int]uint64{8: 2})}
	a.Add(b)
	if a.Transactions()[8] != 2 {
		t.Errorf("transactions not copied: %v", a.Transactions())
	}
	// And the copy must be independent of b's histogram: Add documents
	// a merge; mutating a must not corrupt b.
	a.TxHist[8] = 99
	if b.TxHist[8] != 2 {
		t.Error("Add aliased the source histogram")
	}
}

func TestZeroStatsRatiosSafe(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 || s.TrafficRatio() != 0 ||
		s.SubBlockUtilization() != 0 || s.RedundantLoadFraction() != 0 ||
		s.WriteTrafficPerStore() != 0 {
		t.Error("zero stats produced nonzero ratios")
	}
}

func TestLoadForwardAtLastSubBlock(t *testing.T) {
	// A miss on the final sub-block of a block loads exactly one
	// sub-block under load-forward (nothing lies forward of it).
	c := small(t, func(cfg *Config) { cfg.Fetch = LoadForward })
	res := c.Access(read(0x10c)) // last 4-byte sub-block of [0x100,0x110)
	if res.SubBlocksLoaded != 1 {
		t.Errorf("loaded %d, want 1", res.SubBlocksLoaded)
	}
}

func TestSingleSubBlockBlockDegenerate(t *testing.T) {
	// block == sub-block: load-forward and whole-block must behave as
	// demand fetch exactly.
	streams := func(f Fetch) uint64 {
		c := small(t, func(cfg *Config) { cfg.SubBlockSize = 16; cfg.Fetch = f })
		r := rng.New(6)
		for i := 0; i < 3000; i++ {
			c.Access(read(addr.AlignDown(addr.Addr(r.Uint32()&0xfff), 2)))
		}
		return c.Stats().WordsFetched
	}
	demand := streams(DemandSubBlock)
	if lf := streams(LoadForward); lf != demand {
		t.Errorf("LF degenerate traffic %d != demand %d", lf, demand)
	}
	if wb := streams(WholeBlock); wb != demand {
		t.Errorf("whole-block degenerate traffic %d != demand %d", wb, demand)
	}
}

func TestDirectMappedBehaviour(t *testing.T) {
	// Assoc 1: any two blocks with equal index bits conflict.
	cfg := Config{NetSize: 64, BlockSize: 16, SubBlockSize: 4, Assoc: 1, WordSize: 2}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(read(0x000))
	c.Access(read(0x040)) // same index (4 sets), conflicts
	if c.Contains(0x000) {
		t.Error("direct-mapped conflict did not evict")
	}
}

func TestHugeAddressesWork(t *testing.T) {
	// Addresses above 2^32 must not wrap or corrupt set indexing.
	c := small(t)
	high := addr.Addr(1) << 40
	c.Access(read(high))
	if !c.Contains(high) {
		t.Error("high address lost")
	}
	if c.Contains(high ^ 0x100000000) {
		t.Error("high address aliased across 2^32")
	}
}

func TestRunPropagatesSourceError(t *testing.T) {
	c := small(t)
	bad := trace.FuncSource(func() (trace.Ref, error) {
		return trace.Ref{}, errFake
	})
	if err := c.Run(bad); err == nil {
		t.Error("Run swallowed a source error")
	}
}

var errFake = fakeErr{}

type fakeErr struct{}

func (fakeErr) Error() string { return "fake trace error" }
