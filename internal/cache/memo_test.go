package cache

// Differential fuzz for the same-block memoization: a memoized cache
// and a probe-every-reference build of the same kernel (the memo
// invalidated before every access, so the tag probe loop runs each
// time) must produce identical statistics on identical traces.  The
// memo is pure classification shortcut -- it must never change which
// frame a reference resolves to, and hence no counter.

import (
	"math/rand"
	"reflect"
	"testing"

	"subcache/internal/addr"
	"subcache/internal/trace"
)

// fuzzTrace generates a word-aligned reference stream with block-level
// locality: sequential runs (which the memo accelerates) interleaved
// with jumps across a footprint a few times the cache size, and a mix
// of instruction fetches, reads and writes.
func fuzzTrace(r *rand.Rand, n, wordSize int, footprint addr.Addr) []trace.Ref {
	refs := make([]trace.Ref, 0, n)
	pos := addr.Addr(0)
	for len(refs) < n {
		if r.Intn(4) == 0 {
			pos = addr.Addr(r.Int63n(int64(footprint))) &^ addr.Addr(wordSize-1)
		}
		run := 1 + r.Intn(8)
		for i := 0; i < run && len(refs) < n; i++ {
			kind := trace.Read
			switch r.Intn(10) {
			case 0, 1, 2:
				kind = trace.IFetch
			case 3, 4:
				kind = trace.Write
			}
			refs = append(refs, trace.Ref{Addr: pos % footprint, Kind: kind, Size: uint8(wordSize)})
			pos += addr.Addr(wordSize)
		}
	}
	return refs
}

// fuzzConfig draws one configuration from a small grid covering every
// replacement, fetch and write policy, both memory-update policies,
// prefetch and warm start.
func fuzzConfig(r *rand.Rand) Config {
	blocks := []int{8, 32}
	cfg := Config{
		NetSize:     []int{256, 1024}[r.Intn(2)],
		BlockSize:   blocks[r.Intn(len(blocks))],
		Assoc:       []int{1, 2, 4}[r.Intn(3)],
		WordSize:    2,
		Replacement: []Replacement{LRU, FIFO, Random}[r.Intn(3)],
		Fetch:       []Fetch{DemandSubBlock, LoadForward, LoadForwardOptimized, WholeBlock}[r.Intn(4)],
		Write:       []WritePolicy{WriteAllocate, WriteNoAllocate, WriteIgnore}[r.Intn(3)],
		CopyBack:    r.Intn(2) == 0,
		WarmStart:   r.Intn(4) == 0,
		PrefetchOBL: r.Intn(4) == 0,
		RandomSeed:  uint64(r.Int63()) | 1,
	}
	subs := []int{2, 8}
	cfg.SubBlockSize = subs[r.Intn(len(subs))]
	if cfg.SubBlockSize > cfg.BlockSize {
		cfg.SubBlockSize = cfg.BlockSize
	}
	return cfg
}

func TestMemoDifferentialFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 40; trial++ {
		cfg := fuzzConfig(r)
		memo, err := New(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		probe, err := New(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		refs := fuzzTrace(r, 4000, cfg.WordSize, addr.Addr(4*cfg.NetSize))
		for _, ref := range refs {
			memo.Access(ref)
			// The probe build never sees a valid memo, so every
			// reference takes the tag probe loop.
			probe.memoI, probe.memoD = -1, -1
			probe.Access(ref)
		}
		memo.FlushUsage()
		probe.FlushUsage()
		if !reflect.DeepEqual(memo.Stats(), probe.Stats()) {
			t.Fatalf("trial %d (%v): memoized stats %+v != probe-every-reference stats %+v",
				trial, cfg, *memo.Stats(), *probe.Stats())
		}
	}
}
