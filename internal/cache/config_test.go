package cache

import (
	"strings"
	"testing"
)

func validConfig() Config {
	return Config{
		NetSize: 1024, BlockSize: 16, SubBlockSize: 8,
		Assoc: 4, WordSize: 2,
	}
}

func TestValidateOK(t *testing.T) {
	if err := validConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"zero net", func(c *Config) { c.NetSize = 0 }, "NetSize"},
		{"non-pow2 net", func(c *Config) { c.NetSize = 1000 }, "NetSize"},
		{"non-pow2 block", func(c *Config) { c.BlockSize = 12 }, "BlockSize"},
		{"non-pow2 sub", func(c *Config) { c.SubBlockSize = 6 }, "SubBlockSize"},
		{"zero word", func(c *Config) { c.WordSize = 0 }, "WordSize"},
		{"sub > block", func(c *Config) { c.SubBlockSize = 32 }, "sub-block size"},
		{"word > sub", func(c *Config) { c.WordSize = 16 }, "word size"},
		{"block > net", func(c *Config) { c.NetSize = 8; c.Assoc = 1; c.SubBlockSize = 8 }, "block size"},
		{"too many sub-blocks", func(c *Config) {
			c.NetSize = 16384
			c.BlockSize = 1024
			c.SubBlockSize = 2
			c.Assoc = 16
		}, "sub-blocks per block"},
		{"zero assoc", func(c *Config) { c.Assoc = 0 }, "associativity"},
		{"assoc > frames", func(c *Config) { c.Assoc = 128 }, "associativity"},
		{"non-pow2 assoc", func(c *Config) { c.Assoc = 3 }, "associativity"},
		{"bad replacement", func(c *Config) { c.Replacement = Replacement(9) }, "replacement"},
		{"bad fetch", func(c *Config) { c.Fetch = Fetch(9) }, "fetch"},
		{"bad write", func(c *Config) { c.Write = WritePolicy(9) }, "write"},
	}
	for _, tc := range cases {
		cfg := validConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestGeometryDerived(t *testing.T) {
	cfg := validConfig() // 1024B, 16-byte blocks, 8-byte sub, 4-way, word 2
	if got := cfg.NumFrames(); got != 64 {
		t.Errorf("NumFrames = %d, want 64", got)
	}
	if got := cfg.NumSets(); got != 16 {
		t.Errorf("NumSets = %d, want 16", got)
	}
	if got := cfg.SubBlocksPerBlock(); got != 2 {
		t.Errorf("SubBlocksPerBlock = %d, want 2", got)
	}
	if got := cfg.WordsPerSubBlock(); got != 4 {
		t.Errorf("WordsPerSubBlock = %d, want 4", got)
	}
}

// TestGrossSizeTable7 checks the gross-size cost model against the
// paper's Table 7 (every distinct organisation listed there).
func TestGrossSizeTable7(t *testing.T) {
	cases := []struct {
		net, block, sub int
		want            float64
	}{
		// Net 64 bytes.
		{64, 16, 8, 79}, {64, 16, 4, 80}, {64, 16, 2, 82},
		{64, 8, 8, 94}, {64, 8, 4, 95}, {64, 8, 2, 97},
		{64, 4, 4, 126}, {64, 4, 2, 128}, {64, 2, 2, 192},
		// Net 256 bytes.
		{256, 32, 32, 284}, {256, 32, 16, 285}, {256, 32, 8, 287},
		{256, 32, 4, 291}, {256, 32, 2, 299},
		{256, 16, 16, 314}, {256, 16, 8, 316}, {256, 16, 4, 320}, {256, 16, 2, 328},
		{256, 8, 8, 376}, {256, 8, 4, 380}, {256, 8, 2, 388},
		{256, 4, 4, 504}, {256, 4, 2, 512}, {256, 2, 2, 768},
		// Net 1024 bytes.
		{1024, 64, 16, 1084}, {1024, 64, 8, 1092}, {1024, 64, 4, 1108},
		{1024, 32, 32, 1136}, {1024, 32, 16, 1140}, {1024, 32, 8, 1148},
		{1024, 32, 4, 1164}, {1024, 32, 2, 1196},
		{1024, 16, 16, 1256}, {1024, 16, 8, 1264}, {1024, 16, 4, 1280}, {1024, 16, 2, 1312},
		{1024, 8, 8, 1504}, {1024, 8, 4, 1520}, {1024, 8, 2, 1552},
		{1024, 4, 4, 2016}, {1024, 4, 2, 2048}, {1024, 2, 2, 3072},
	}
	for _, c := range cases {
		cfg := Config{NetSize: c.net, BlockSize: c.block, SubBlockSize: c.sub, Assoc: 4, WordSize: 2}
		if c.sub < 2 {
			cfg.WordSize = c.sub
		}
		if got := cfg.GrossSize(); got != c.want {
			t.Errorf("GrossSize(%d net, %d,%d) = %g, want %g", c.net, c.block, c.sub, got, c.want)
		}
	}
}

// TestGrossSizePaperExamples checks the two worked examples in the
// paper's prose: the ~190-byte minimum cache for a 32-bit machine
// (§2.2: 16 blocks x [29 tag + 2 valid + 64 data] bits) and the 95-byte
// 64-byte 8,4 VAX cache (§5).
func TestGrossSizePaperExamples(t *testing.T) {
	minimum := Config{NetSize: 128, BlockSize: 8, SubBlockSize: 4, Assoc: 2, WordSize: 4}
	if got := minimum.GrossSize(); got != 190 {
		t.Errorf("minimum cache gross = %g, want 190", got)
	}
	vax := Config{NetSize: 64, BlockSize: 8, SubBlockSize: 4, Assoc: 4, WordSize: 4}
	if got := vax.GrossSize(); got != 95 {
		t.Errorf("64-byte 8,4 cache gross = %g, want 95", got)
	}
}

func TestConfigString(t *testing.T) {
	cfg := validConfig()
	if got := cfg.String(); got != "1024B 16,8 4-way LRU" {
		t.Errorf("String() = %q", got)
	}
	cfg.Fetch = LoadForward
	if got := cfg.String(); got != "1024B 16,8 4-way LRU load-forward" {
		t.Errorf("String() with LF = %q", got)
	}
}

func TestEnumStrings(t *testing.T) {
	pairs := []struct {
		got, want string
	}{
		{LRU.String(), "LRU"}, {FIFO.String(), "FIFO"}, {Random.String(), "Random"},
		{DemandSubBlock.String(), "demand"}, {LoadForward.String(), "load-forward"},
		{LoadForwardOptimized.String(), "load-forward-opt"}, {WholeBlock.String(), "whole-block"},
		{WriteAllocate.String(), "write-allocate"}, {WriteNoAllocate.String(), "write-no-allocate"},
		{WriteIgnore.String(), "write-ignore"},
		{Replacement(7).String(), "Replacement(7)"},
		{Fetch(7).String(), "Fetch(7)"},
		{WritePolicy(7).String(), "WritePolicy(7)"},
	}
	for _, p := range pairs {
		if p.got != p.want {
			t.Errorf("got %q, want %q", p.got, p.want)
		}
	}
}

func TestSectorCacheConfigValid(t *testing.T) {
	// The 360/85: 16 KB, 1024-byte sectors, 64-byte sub-blocks, fully
	// associative (16 ways, 1 set).
	cfg := Config{NetSize: 16384, BlockSize: 1024, SubBlockSize: 64, Assoc: 16, WordSize: 4}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("360/85 config invalid: %v", err)
	}
	if cfg.NumSets() != 1 {
		t.Errorf("NumSets = %d, want 1 (fully associative)", cfg.NumSets())
	}
	if cfg.SubBlocksPerBlock() != 16 {
		t.Errorf("SubBlocksPerBlock = %d, want 16", cfg.SubBlocksPerBlock())
	}
}

func TestTagAndOverheadBreakdown(t *testing.T) {
	// Gross = net + tags + valid bits, exactly.
	for _, cfg := range []Config{
		{NetSize: 512, BlockSize: 2, SubBlockSize: 2, Assoc: 4, WordSize: 2},
		{NetSize: 1024, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2},
		{NetSize: 64, BlockSize: 8, SubBlockSize: 4, Assoc: 4, WordSize: 2},
	} {
		sum := float64(cfg.NetSize) + cfg.TagBytes() + cfg.ValidBitBytes()
		if sum != cfg.GrossSize() {
			t.Errorf("%v: net+tags+valid = %g != gross %g", cfg, sum, cfg.GrossSize())
		}
	}
}

func TestOverheadPaperExample(t *testing.T) {
	// S4.2.1: the 512-byte 2,2 cache occupies 1536 gross bytes: the
	// tags are two-thirds of the data size -- one-third of the total.
	cfg := Config{NetSize: 512, BlockSize: 2, SubBlockSize: 2, Assoc: 4, WordSize: 2}
	if g := cfg.GrossSize(); g != 1536 {
		t.Fatalf("gross = %g, want 1536", g)
	}
	if ov := cfg.Overhead(); ov < 0.66 || ov > 0.67 {
		t.Errorf("overhead = %g, want ~2/3", ov)
	}
	// Doubling the block halves the tag area (S4.2.1).
	cfg4 := cfg
	cfg4.BlockSize = 4
	if cfg.TagBytes() <= 1.9*cfg4.TagBytes() || cfg.TagBytes() >= 2.1*cfg4.TagBytes() {
		t.Errorf("tag bytes %g vs %g: doubling block should halve tags",
			cfg.TagBytes(), cfg4.TagBytes())
	}
}
