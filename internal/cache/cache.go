package cache

import (
	"fmt"
	"io"
	"math/bits"

	"subcache/internal/addr"
	"subcache/internal/rng"
	"subcache/internal/trace"
)

// frame is one block's worth of cache state: an address tag, per
// sub-block valid bits, per sub-block "touched" bits (for the paper's
// sub-block utilisation measurement, §4.1) and the recency bookkeeping
// for the replacement policies.
type frame struct {
	tag      addr.Addr
	tagValid bool
	valid    uint64 // bit i set: sub-block i resident
	touched  uint64 // bit i set: sub-block i referenced while resident
	dirty    uint64 // bit i set: sub-block i modified (copy-back mode)
	// prefetched marks a frame allocated by OBL prefetch and not yet
	// demand-referenced, for the pollution accounting.
	prefetched bool

	lastUse  uint64 // LRU tick
	loadedAt uint64 // FIFO tick
}

// Cache is a running sub-block cache simulation.  It consumes
// word-sized accesses (normally produced by trace.Splitter) and
// accumulates Stats.  Not safe for concurrent use.
type Cache struct {
	cfg    Config
	sets   [][]frame
	tick   uint64
	rand   *rng.Stream
	filled int  // frames filled at least once, for warm-start gating
	warm   bool // counting enabled: warm-start satisfied or disabled

	// Geometry shifts/masks, precomputed so the per-access path never
	// divides or re-derives configuration quantities.
	blockShift  uint
	setMask     addr.Addr
	subShift    uint
	subPerBlk   uint
	wordsPerSub int

	stats Stats
}

// New builds a cache for the given configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	numSets := cfg.NumSets()
	sets := make([][]frame, numSets)
	backing := make([]frame, numSets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	c := &Cache{
		cfg:         cfg,
		sets:        sets,
		warm:        !cfg.WarmStart,
		blockShift:  addr.Log2(uint64(cfg.BlockSize)),
		setMask:     addr.Addr(numSets - 1),
		subShift:    addr.Log2(uint64(cfg.SubBlockSize)),
		subPerBlk:   uint(cfg.SubBlocksPerBlock()),
		wordsPerSub: cfg.WordsPerSubBlock(),
	}
	// Pre-size the transaction histogram to the longest possible
	// transfer (a whole block) so fills record with a plain increment.
	c.stats.TxHist = make([]uint64, cfg.BlockSize/cfg.WordSize+1)
	if cfg.Replacement == Random {
		c.rand = rng.New(cfg.RandomSeed)
	}
	return c, nil
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated statistics.  The returned pointer stays
// valid and live for the lifetime of the cache.
func (c *Cache) Stats() *Stats { return &c.stats }

// counting reports whether events are currently recorded, honouring the
// warm-start rule.  The flag is maintained by noteFill, so the hot path
// reads one bool instead of recomputing the frame count.
func (c *Cache) counting() bool { return c.warm }

// noteFill records the first fill of a frame and flips the warm flag
// once every frame has been filled.
func (c *Cache) noteFill() {
	c.filled++
	if c.filled == len(c.sets)*c.cfg.Assoc {
		c.warm = true
	}
}

// Result describes what one access did, for tests and fine-grained
// instrumentation.
type Result struct {
	// Hit is true when the referenced sub-block was resident.
	Hit bool
	// BlockMiss is true when no tag in the set matched (a new block was
	// allocated, unless the access was a non-allocating write).
	BlockMiss bool
	// SubBlocksLoaded is the number of sub-block transfers the access
	// caused, including redundant load-forward transfers.
	SubBlocksLoaded int
	// Evicted is true when the allocation displaced a valid block.
	Evicted bool
}

// Access presents one word access to the cache.  The address is
// interpreted as-is (callers should pre-align via trace.Splitter; the
// cache itself only needs the address's block and sub-block fields).
func (c *Cache) Access(r trace.Ref) Result {
	if r.Kind == trace.Write {
		switch c.cfg.Write {
		case WriteIgnore:
			return Result{}
		case WriteNoAllocate:
			return c.access(r, false, false)
		case WriteAllocate:
			return c.access(r, true, false)
		}
	}
	return c.access(r, true, true)
}

// markWrite accounts for the memory-update side of a write access.
// hit/installed tell whether the written sub-block is (now) resident in
// frame f at sub-block subIdx.  Write traffic never touches the paper's
// read-only ratios; it accumulates in its own Stats fields.
func (c *Cache) markWrite(f *frame, subIdx uint, resident bool) {
	if !c.cfg.CopyBack {
		// Write-through: the store always moves one word to memory.
		c.stats.WriteThroughWords++
		return
	}
	if resident {
		f.dirty |= 1 << subIdx
		return
	}
	// Copy-back with the datum not cached (non-allocating miss): the
	// store goes straight to memory.
	c.stats.WriteThroughWords++
}

// markPrefetchUsed credits a prefetched frame the first time a demand
// access touches it, reporting whether the tagged next-block prefetch
// should fire.  The prefetch itself is issued by the caller *after* it
// has finished with the frame, because the prefetch may allocate in the
// same set.
func (c *Cache) markPrefetchUsed(f *frame) bool {
	if !f.prefetched {
		return false
	}
	f.prefetched = false
	c.stats.PrefetchUsed++
	return true
}

// prefetch implements one-block-lookahead: bring the first sub-block of
// the given block into the cache without counting an access.  The
// moved words do count as traffic (prefetching "reduces latency at a
// cost of increased memory traffic", §2.2).
//
// exclude names the frame the triggering access just used: the
// processor's word must stay resident, so if replacement selects that
// frame the prefetch is dropped instead (as real hardware loses the
// arbitration).  Without this, FIFO or Random replacement in a
// small or fully-associative set could evict the frame mid-access.
func (c *Cache) prefetch(blockAddr addr.Addr, counted bool, exclude *frame) {
	set := c.sets[blockAddr&c.setMask]
	for i := range set {
		if set[i].tagValid && set[i].tag == blockAddr {
			if set[i].valid&1 != 0 {
				return // already resident: nothing to move
			}
			c.fillPrefetch(&set[i], counted)
			return
		}
	}
	v := c.victim(set)
	f := &set[v]
	if f == exclude {
		return
	}
	if f.tagValid {
		c.retire(f)
	} else {
		c.noteFill()
	}
	c.tick++
	f.tag = blockAddr
	f.tagValid = true
	f.valid = 0
	f.touched = 0
	f.dirty = 0
	f.prefetched = true
	f.lastUse = c.tick
	f.loadedAt = c.tick
	c.fillPrefetch(f, counted)
}

// fillPrefetch loads sub-block 0 of f, accounting it as prefetch
// traffic.  The PrefetchFills diagnostic counts every prefetch (so the
// used/pollution fractions stay consistent with the flag lifecycle);
// the paper's traffic metrics count only while counting is enabled, as
// for demand fills.
func (c *Cache) fillPrefetch(f *frame, counted bool) {
	f.valid |= 1
	c.recordTransaction(1, counted)
	c.stats.PrefetchFills++
	if counted {
		c.stats.SubBlockFills++
		c.stats.WordsFetched += uint64(c.cfg.WordsPerSubBlock())
	}
}

// access performs the lookup.  allocate controls miss handling; count
// controls whether the event reaches the counters (writes never count,
// matching the paper's read+ifetch-only metrics).
func (c *Cache) access(r trace.Ref, allocate, count bool) Result {
	c.tick++
	blockAddr := r.Addr >> c.blockShift
	setIdx := blockAddr & c.setMask
	tag := blockAddr
	subIdx := uint(addr.Offset(r.Addr, uint64(c.cfg.BlockSize))) >> c.subShift
	set := c.sets[setIdx]

	counted := count && c.counting()
	if counted {
		c.stats.Accesses++
		if r.Kind == trace.IFetch {
			c.stats.IFetches++
		} else {
			c.stats.Reads++
		}
	} else if count {
		c.stats.WarmupAccesses++
	}
	if !count {
		c.stats.WriteAccesses++
	}

	// Tag probe.
	way := -1
	for i := range set {
		if set[i].tagValid && set[i].tag == tag {
			way = i
			break
		}
	}

	var res Result
	switch {
	case way >= 0 && set[way].valid&(1<<subIdx) != 0:
		// Full hit.
		res.Hit = true
		set[way].lastUse = c.tick
		set[way].touched |= 1 << subIdx
		if counted {
			c.stats.Hits++
		}
		if r.Kind == trace.Write {
			c.markWrite(&set[way], subIdx, true)
		}
		if c.cfg.PrefetchOBL && c.markPrefetchUsed(&set[way]) {
			// Tagged prefetch, issued last: the frame's state is final.
			c.prefetch(tag+1, counted, &set[way])
		}
		return res

	case way >= 0:
		// Tag hit, sub-block missing.
		if counted {
			c.stats.Misses++
			c.stats.SubBlockMisses++
		} else if count {
			c.stats.WarmupMisses++
		}
		if !count {
			c.stats.WriteMisses++
		}
		if !allocate {
			if r.Kind == trace.Write {
				c.markWrite(nil, subIdx, false)
			}
			return res
		}
		set[way].lastUse = c.tick
		res.SubBlocksLoaded = c.fill(&set[way], subIdx, counted)
		set[way].touched |= 1 << subIdx
		if r.Kind == trace.Write {
			c.markWrite(&set[way], subIdx, true)
		}
		if c.cfg.PrefetchOBL {
			// A miss and a first use of a prefetched block both target
			// the same next block; one lookahead covers both.
			c.markPrefetchUsed(&set[way])
			c.prefetch(blockAddr+1, counted, &set[way])
		}
		return res

	default:
		// Block miss.
		res.BlockMiss = true
		if counted {
			c.stats.Misses++
			c.stats.BlockMisses++
		} else if count {
			c.stats.WarmupMisses++
		}
		if !count {
			c.stats.WriteMisses++
		}
		if !allocate {
			if r.Kind == trace.Write {
				c.markWrite(nil, subIdx, false)
			}
			return res
		}
		v := c.victim(set)
		f := &set[v]
		if f.tagValid {
			res.Evicted = true
			c.retire(f)
		} else {
			c.noteFill()
		}
		f.tag = tag
		f.tagValid = true
		f.valid = 0
		f.touched = 0
		f.dirty = 0
		f.prefetched = false
		f.lastUse = c.tick
		f.loadedAt = c.tick
		res.SubBlocksLoaded = c.fill(f, subIdx, counted)
		f.touched |= 1 << subIdx
		if r.Kind == trace.Write {
			c.markWrite(f, subIdx, true)
		}
		if c.cfg.PrefetchOBL {
			c.prefetch(blockAddr+1, counted, f)
		}
		return res
	}
}

// fill loads sub-blocks into f according to the fetch policy, starting
// from the missing sub-block subIdx, and returns the number of
// sub-block transfers.  Each fill is one contiguous bus transaction; the
// transaction's length in words is recorded for the nibble-mode cost
// models.
func (c *Cache) fill(f *frame, subIdx uint, counted bool) int {
	var loaded, redundant int
	switch c.cfg.Fetch {
	case DemandSubBlock:
		f.valid |= 1 << subIdx
		loaded = 1

	case LoadForward:
		// Fetch subIdx..end, refetching valid ones (redundant-load
		// scheme: the memory system streams autonomously).
		for i := subIdx; i < c.subPerBlk; i++ {
			if f.valid&(1<<i) != 0 {
				redundant++
			}
			f.valid |= 1 << i
			loaded++
		}

	case LoadForwardOptimized:
		// Fetch subIdx..end but skip resident sub-blocks.  Each
		// contiguous group of missing sub-blocks is one transaction.
		run := 0
		for i := subIdx; i < c.subPerBlk; i++ {
			if f.valid&(1<<i) == 0 {
				f.valid |= 1 << i
				loaded++
				run++
			} else if run > 0 {
				c.recordTransaction(run, counted)
				run = 0
			}
		}
		if run > 0 {
			c.recordTransaction(run, counted)
		}
		if counted {
			c.stats.SubBlockFills += uint64(loaded)
			c.stats.WordsFetched += uint64(loaded * c.wordsPerSub)
		}
		return loaded

	case WholeBlock:
		for i := uint(0); i < c.subPerBlk; i++ {
			if f.valid&(1<<i) != 0 {
				redundant++
			}
			f.valid |= 1 << i
			loaded++
		}
	}
	c.recordTransaction(loaded, counted)
	if counted {
		c.stats.SubBlockFills += uint64(loaded)
		c.stats.RedundantLoads += uint64(redundant)
		c.stats.WordsFetched += uint64(loaded * c.wordsPerSub)
	}
	return loaded
}

// recordTransaction logs one contiguous bus transfer of n sub-blocks.
// The histogram is pre-sized to the block's word count, so this is a
// single allocation-free increment.
func (c *Cache) recordTransaction(n int, counted bool) {
	if !counted || n == 0 {
		return
	}
	c.stats.TxHist[n*c.wordsPerSub]++
}

// victim picks the way to replace in set, preferring an unused frame.
func (c *Cache) victim(set []frame) int {
	for i := range set {
		if !set[i].tagValid {
			return i
		}
	}
	switch c.cfg.Replacement {
	case LRU:
		best := 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[best].lastUse {
				best = i
			}
		}
		return best
	case FIFO:
		best := 0
		for i := 1; i < len(set); i++ {
			if set[i].loadedAt < set[best].loadedAt {
				best = i
			}
		}
		return best
	case Random:
		return c.rand.Intn(len(set))
	}
	panic("cache: unreachable replacement policy")
}

// retire accumulates the sub-block utilisation of an evicted frame
// (the paper's "72 percent of the sub-blocks in a block are never
// referenced in the period a block is resident" measurement).
func (c *Cache) retire(f *frame) {
	if f.prefetched {
		c.stats.PrefetchEvictedUnused++
		f.prefetched = false
	}
	c.stats.Evictions++
	c.stats.ResidencySubBlocks += uint64(c.subPerBlk)
	c.stats.ResidencyTouched += uint64(bits.OnesCount64(f.touched))
	if f.dirty != 0 {
		c.stats.WriteBackWords += uint64(bits.OnesCount64(f.dirty) * c.wordsPerSub)
		f.dirty = 0
	}
}

// FlushUsage folds the utilisation of still-resident blocks into the
// residency statistics.  Call once at end of trace before reading
// SubBlockUtilization.
func (c *Cache) FlushUsage() {
	for s := range c.sets {
		for w := range c.sets[s] {
			f := &c.sets[s][w]
			if f.tagValid {
				c.stats.ResidencySubBlocks += uint64(c.subPerBlk)
				c.stats.ResidencyTouched += uint64(bits.OnesCount64(f.touched))
				if f.dirty != 0 {
					c.stats.WriteBackWords += uint64(bits.OnesCount64(f.dirty) * c.wordsPerSub)
					f.dirty = 0
				}
			}
		}
	}
}

// Contains reports whether the sub-block holding the given address is
// resident.  Intended for tests and invariant checks.
func (c *Cache) Contains(a addr.Addr) bool {
	blockAddr := a >> c.blockShift
	set := c.sets[blockAddr&c.setMask]
	subIdx := uint(addr.Offset(a, uint64(c.cfg.BlockSize))) >> c.subShift
	for i := range set {
		if set[i].tagValid && set[i].tag == blockAddr {
			return set[i].valid&(1<<subIdx) != 0
		}
	}
	return false
}

// ResidentSubBlocks returns the total number of valid sub-blocks,
// an invariant-checking helper (never exceeds NetSize/SubBlockSize).
func (c *Cache) ResidentSubBlocks() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].tagValid {
				n += bits.OnesCount64(c.sets[s][w].valid)
			}
		}
	}
	return n
}

// AccessBatch presents a chunk of word accesses to the cache.  It is
// the batched equivalent of calling Access per reference: callers that
// hold a materialised or chunk-buffered trace avoid one call (and, for
// streamed traces, one interface dispatch) per reference.
func (c *Cache) AccessBatch(refs []trace.Ref) {
	for i := range refs {
		c.Access(refs[i])
	}
}

// Run drives the cache with every access from src until EOF, then
// flushes residency usage.  src should already be word-split.  The
// stream is consumed in fixed-size chunks through AccessBatch, so the
// per-reference cost is a slice iteration rather than an interface
// call.
func (c *Cache) Run(src trace.Source) error {
	buf := make([]trace.Ref, trace.ChunkRefs)
	for {
		n, err := trace.ReadChunk(src, buf)
		c.AccessBatch(buf[:n])
		if err == io.EOF {
			c.FlushUsage()
			return nil
		}
		if err != nil {
			return fmt.Errorf("cache: reading trace: %w", err)
		}
	}
}
