package cache

import (
	"fmt"
	"io"
	"math/bits"

	"subcache/internal/addr"
	"subcache/internal/rng"
	"subcache/internal/trace"
)

// Frame storage is struct-of-arrays: one parallel dense slice per field,
// indexed by frame index fi = set*Assoc + way.  A set probe is then a
// contiguous scan over a handful of adjacent tag words -- one or two L1
// lines -- instead of a stride over 64-byte frame structs, and the
// replacement scans (lastUse/loadedAt) enjoy the same locality.
//
// Within a set, frames are filled strictly in way order (the victim
// search always prefers the lowest unused way, and a tag, once set, is
// never invalidated), so "which ways hold a valid tag" is just the
// prefix [0, setFill[set]).  That prefix count replaces the old per-frame
// tagValid flag: probes scan only filled ways, and an unfilled way is
// never read.
//
// The slices are, per frame:
//
//	tags     address tag (the block number; valid for ways < setFill)
//	valid    bit i set: sub-block i resident
//	touched  bit i set: sub-block i referenced while resident
//	dirty    bit i set: sub-block i modified (copy-back mode)
//	lastUse  LRU tick
//	loadedAt FIFO tick
//	prefOBL  frame allocated by OBL prefetch, not yet demand-referenced
//	         (pollution accounting); allocated only when PrefetchOBL is on

// Cache is a running sub-block cache simulation.  It consumes
// word-sized accesses (normally produced by trace.Splitter) and
// accumulates Stats.  Not safe for concurrent use.
type Cache struct {
	cfg   Config
	assoc int

	tags     []addr.Addr
	valid    []uint64
	touched  []uint64
	dirty    []uint64
	lastUse  []uint64
	loadedAt []uint64
	prefOBL  []bool
	setFill  []int32 // valid ways per set: tags[set*assoc : +setFill] hold blocks

	tick   uint64
	rand   *rng.Stream
	filled int  // frames filled at least once, for warm-start gating
	warm   bool // counting enabled: warm-start satisfied or disabled

	// memoI/memoD are per-stream same-block memos: the frame index the
	// last instruction-fetch (respectively data) access touched, or -1.
	// A reference to the same block classifies with one tag compare,
	// bypassing the probe loop entirely; two memos because split traces
	// interleave the instruction and data streams, which would thrash a
	// single memo.  Staleness is impossible: a frame's tag changes only
	// at allocation, which re-points the allocating stream's memo, and
	// a block is resident in at most one frame, so tags[m] == blockAddr
	// is exactly "the memoized frame still holds this block" -- a memo
	// left stale by the other stream's allocation fails the compare and
	// falls back to the probe.
	memoI int32
	memoD int32

	// Geometry shifts/masks, precomputed so the per-access path never
	// divides or re-derives configuration quantities.
	blockShift  uint
	setMask     addr.Addr
	subShift    uint
	subPerBlk   uint
	subMask     uint64 // low subPerBlk bits set: the whole-block valid mask
	wordsPerSub int

	stats Stats
}

// New builds a cache for the given configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	numSets := cfg.NumSets()
	numFrames := numSets * cfg.Assoc
	subPerBlk := uint(cfg.SubBlocksPerBlock())
	c := &Cache{
		cfg:         cfg,
		assoc:       cfg.Assoc,
		tags:        make([]addr.Addr, numFrames),
		valid:       make([]uint64, numFrames),
		touched:     make([]uint64, numFrames),
		dirty:       make([]uint64, numFrames),
		lastUse:     make([]uint64, numFrames),
		loadedAt:    make([]uint64, numFrames),
		setFill:     make([]int32, numSets),
		warm:        !cfg.WarmStart,
		memoI:       -1,
		memoD:       -1,
		blockShift:  addr.Log2(uint64(cfg.BlockSize)),
		setMask:     addr.Addr(numSets - 1),
		subShift:    addr.Log2(uint64(cfg.SubBlockSize)),
		subPerBlk:   subPerBlk,
		subMask:     ^uint64(0) >> (64 - subPerBlk),
		wordsPerSub: cfg.WordsPerSubBlock(),
	}
	if cfg.PrefetchOBL {
		c.prefOBL = make([]bool, numFrames)
	}
	// Pre-size the transaction histogram to the longest possible
	// transfer (a whole block) so fills record with a plain increment.
	c.stats.TxHist = make([]uint64, cfg.BlockSize/cfg.WordSize+1)
	if cfg.Replacement == Random {
		c.rand = rng.New(cfg.RandomSeed)
	}
	return c, nil
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated statistics.  The returned pointer stays
// valid and live for the lifetime of the cache.
func (c *Cache) Stats() *Stats { return &c.stats }

// counting reports whether events are currently recorded, honouring the
// warm-start rule.  The flag is maintained by noteFill, so the hot path
// reads one bool instead of recomputing the frame count.
func (c *Cache) counting() bool { return c.warm }

// noteFill records the first fill of a frame and flips the warm flag
// once every frame has been filled.
func (c *Cache) noteFill() {
	c.filled++
	if c.filled == len(c.tags) {
		c.warm = true
	}
}

// Result describes what one access did, for tests and fine-grained
// instrumentation.
type Result struct {
	// Hit is true when the referenced sub-block was resident.
	Hit bool
	// BlockMiss is true when no tag in the set matched (a new block was
	// allocated, unless the access was a non-allocating write).
	BlockMiss bool
	// SubBlocksLoaded is the number of sub-block transfers the access
	// caused, including redundant load-forward transfers.
	SubBlocksLoaded int
	// Evicted is true when the allocation displaced a valid block.
	Evicted bool
}

// Access presents one word access to the cache.  The address is
// interpreted as-is (callers should pre-align via trace.Splitter; the
// cache itself only needs the address's block and sub-block fields).
func (c *Cache) Access(r trace.Ref) Result {
	if r.Kind == trace.Write {
		switch c.cfg.Write {
		case WriteIgnore:
			return Result{}
		case WriteNoAllocate:
			return c.access(r, false, false)
		case WriteAllocate:
			return c.access(r, true, false)
		}
	}
	return c.access(r, true, true)
}

// markWrite accounts for the memory-update side of a write access.
// resident tells whether the written sub-block is (now) resident in
// frame fi at sub-block subIdx.  Write traffic never touches the paper's
// read-only ratios; it accumulates in its own Stats fields.
func (c *Cache) markWrite(fi int, subIdx uint, resident bool) {
	if !c.cfg.CopyBack {
		// Write-through: the store always moves one word to memory.
		c.stats.WriteThroughWords++
		return
	}
	if resident {
		c.dirty[fi] |= 1 << subIdx
		return
	}
	// Copy-back with the datum not cached (non-allocating miss): the
	// store goes straight to memory.
	c.stats.WriteThroughWords++
}

// markPrefetchUsed credits a prefetched frame the first time a demand
// access touches it, reporting whether the tagged next-block prefetch
// should fire.  The prefetch itself is issued by the caller *after* it
// has finished with the frame, because the prefetch may allocate in the
// same set.
func (c *Cache) markPrefetchUsed(fi int) bool {
	if !c.prefOBL[fi] {
		return false
	}
	c.prefOBL[fi] = false
	c.stats.PrefetchUsed++
	return true
}

// prefetch implements one-block-lookahead: bring the first sub-block of
// the given block into the cache without counting an access.  The
// moved words do count as traffic (prefetching "reduces latency at a
// cost of increased memory traffic", §2.2).
//
// exclude names the frame the triggering access just used: the
// processor's word must stay resident, so if replacement selects that
// frame the prefetch is dropped instead (as real hardware loses the
// arbitration).  Without this, FIFO or Random replacement in a
// small or fully-associative set could evict the frame mid-access.
func (c *Cache) prefetch(blockAddr addr.Addr, counted bool, exclude int) {
	setIdx := int(blockAddr & c.setMask)
	base := setIdx * c.assoc
	n := base + int(c.setFill[setIdx])
	for fi := base; fi < n; fi++ {
		if c.tags[fi] == blockAddr {
			if c.valid[fi]&1 != 0 {
				return // already resident: nothing to move
			}
			c.fillPrefetch(fi, counted)
			return
		}
	}
	fi, fresh := c.victim(setIdx)
	if fi == exclude {
		return
	}
	if fresh {
		c.setFill[setIdx]++
		c.noteFill()
	} else {
		c.retire(fi)
	}
	c.tick++
	c.tags[fi] = blockAddr
	c.valid[fi] = 0
	c.touched[fi] = 0
	c.dirty[fi] = 0
	c.prefOBL[fi] = true
	c.lastUse[fi] = c.tick
	c.loadedAt[fi] = c.tick
	c.fillPrefetch(fi, counted)
}

// fillPrefetch loads sub-block 0 of frame fi, accounting it as prefetch
// traffic.  The PrefetchFills diagnostic counts every prefetch (so the
// used/pollution fractions stay consistent with the flag lifecycle);
// the paper's traffic metrics count only while counting is enabled, as
// for demand fills.
func (c *Cache) fillPrefetch(fi int, counted bool) {
	c.valid[fi] |= 1
	c.recordTransaction(1, counted)
	c.stats.PrefetchFills++
	if counted {
		c.stats.SubBlockFills++
		c.stats.WordsFetched += uint64(c.cfg.WordsPerSubBlock())
	}
}

// access performs the lookup.  allocate controls miss handling; count
// controls whether the event reaches the counters (writes never count,
// matching the paper's read+ifetch-only metrics).
func (c *Cache) access(r trace.Ref, allocate, count bool) Result {
	c.tick++
	blockAddr := r.Addr >> c.blockShift
	tag := blockAddr
	subIdx := uint(addr.Offset(r.Addr, uint64(c.cfg.BlockSize))) >> c.subShift

	counted := count && c.warm
	if counted {
		c.stats.Accesses++
		if r.Kind == trace.IFetch {
			c.stats.IFetches++
		} else {
			c.stats.Reads++
		}
	} else if count {
		c.stats.WarmupAccesses++
	} else {
		c.stats.WriteAccesses++
	}

	// Tag probe: the stream's same-block memoization first (one
	// compare -- the dominant case in word-split traces, where a
	// multi-word access or a sequential instruction run touches one
	// block many times in a row), then the contiguous scan over the
	// set's filled tags.
	memo := &c.memoD
	if r.Kind == trace.IFetch {
		memo = &c.memoI
	}
	fi := -1
	if m := *memo; m >= 0 && c.tags[m] == tag {
		fi = int(m)
	} else {
		setIdx := int(blockAddr & c.setMask)
		base := setIdx * c.assoc
		n := base + int(c.setFill[setIdx])
		for w := base; w < n; w++ {
			if c.tags[w] == tag {
				fi = w
				*memo = int32(w)
				break
			}
		}
	}

	var res Result
	switch {
	case fi >= 0 && c.valid[fi]&(1<<subIdx) != 0:
		// Full hit.
		res.Hit = true
		c.lastUse[fi] = c.tick
		c.touched[fi] |= 1 << subIdx
		if counted {
			c.stats.Hits++
		}
		if r.Kind == trace.Write {
			c.markWrite(fi, subIdx, true)
		}
		if c.cfg.PrefetchOBL && c.markPrefetchUsed(fi) {
			// Tagged prefetch, issued last: the frame's state is final.
			c.prefetch(tag+1, counted, fi)
		}
		return res

	case fi >= 0:
		// Tag hit, sub-block missing.
		if counted {
			c.stats.Misses++
			c.stats.SubBlockMisses++
		} else if count {
			c.stats.WarmupMisses++
		} else {
			c.stats.WriteMisses++
		}
		if !allocate {
			if r.Kind == trace.Write {
				c.markWrite(fi, subIdx, false)
			}
			return res
		}
		c.lastUse[fi] = c.tick
		res.SubBlocksLoaded = c.fill(fi, subIdx, counted)
		c.touched[fi] |= 1 << subIdx
		if r.Kind == trace.Write {
			c.markWrite(fi, subIdx, true)
		}
		if c.cfg.PrefetchOBL {
			// A miss and a first use of a prefetched block both target
			// the same next block; one lookahead covers both.
			c.markPrefetchUsed(fi)
			c.prefetch(blockAddr+1, counted, fi)
		}
		return res

	default:
		// Block miss.
		res.BlockMiss = true
		if counted {
			c.stats.Misses++
			c.stats.BlockMisses++
		} else if count {
			c.stats.WarmupMisses++
		} else {
			c.stats.WriteMisses++
		}
		if !allocate {
			if r.Kind == trace.Write {
				c.markWrite(-1, subIdx, false)
			}
			return res
		}
		setIdx := int(blockAddr & c.setMask)
		v, fresh := c.victim(setIdx)
		fi = v
		if fresh {
			c.setFill[setIdx]++
			c.noteFill()
		} else {
			res.Evicted = true
			c.retire(fi)
		}
		c.tags[fi] = tag
		c.valid[fi] = 0
		c.touched[fi] = 0
		c.dirty[fi] = 0
		if c.prefOBL != nil {
			c.prefOBL[fi] = false
		}
		c.lastUse[fi] = c.tick
		c.loadedAt[fi] = c.tick
		*memo = int32(fi)
		res.SubBlocksLoaded = c.fill(fi, subIdx, counted)
		c.touched[fi] |= 1 << subIdx
		if r.Kind == trace.Write {
			c.markWrite(fi, subIdx, true)
		}
		if c.cfg.PrefetchOBL {
			c.prefetch(blockAddr+1, counted, fi)
		}
		return res
	}
}

// fill loads sub-blocks into frame fi according to the fetch policy,
// starting from the missing sub-block subIdx, and returns the number of
// sub-block transfers.  Each fill is one contiguous bus transaction; the
// transaction's length in words is recorded for the nibble-mode cost
// models.
//
// The valid-mask updates are branch-free: the fetch span is one OR of a
// precomputed mask, and the redundant-transfer count is a popcount of
// the already-valid bits under that mask, instead of a branchy per-bit
// loop.
func (c *Cache) fill(fi int, subIdx uint, counted bool) int {
	var loaded, redundant int
	switch c.cfg.Fetch {
	case DemandSubBlock:
		c.valid[fi] |= 1 << subIdx
		loaded = 1

	case LoadForward:
		// Fetch subIdx..end, refetching valid ones (redundant-load
		// scheme: the memory system streams autonomously).
		mask := c.subMask &^ (1<<subIdx - 1)
		v := c.valid[fi]
		redundant = bits.OnesCount64(v & mask)
		loaded = int(c.subPerBlk - subIdx)
		c.valid[fi] = v | mask

	case LoadForwardOptimized:
		// Fetch subIdx..end but skip resident sub-blocks.  Each
		// contiguous group of missing sub-blocks is one transaction,
		// enumerated low to high by trailing-zero arithmetic.
		mask := c.subMask &^ (1<<subIdx - 1)
		missing := mask &^ c.valid[fi]
		loaded = bits.OnesCount64(missing)
		c.valid[fi] |= mask
		for missing != 0 {
			start := bits.TrailingZeros64(missing)
			run := bits.TrailingZeros64(^(missing >> uint(start)))
			c.recordTransaction(run, counted)
			missing >>= uint(start + run)
		}
		if counted {
			c.stats.SubBlockFills += uint64(loaded)
			c.stats.WordsFetched += uint64(loaded * c.wordsPerSub)
		}
		return loaded

	case WholeBlock:
		v := c.valid[fi]
		redundant = bits.OnesCount64(v)
		loaded = int(c.subPerBlk)
		c.valid[fi] = c.subMask
	}
	c.recordTransaction(loaded, counted)
	if counted {
		c.stats.SubBlockFills += uint64(loaded)
		c.stats.RedundantLoads += uint64(redundant)
		c.stats.WordsFetched += uint64(loaded * c.wordsPerSub)
	}
	return loaded
}

// recordTransaction logs one contiguous bus transfer of n sub-blocks.
// The histogram is pre-sized to the block's word count, so this is a
// single allocation-free increment.
func (c *Cache) recordTransaction(n int, counted bool) {
	if !counted || n == 0 {
		return
	}
	c.stats.TxHist[n*c.wordsPerSub]++
}

// victim picks the frame to replace in the set, preferring an unused
// way; fresh reports that the returned frame has never held a block
// (the caller advances setFill and the warm-start count).  Because ways
// fill in order, the replacement scans run over the set's contiguous
// tick slices.
func (c *Cache) victim(setIdx int) (fi int, fresh bool) {
	base := setIdx * c.assoc
	if n := int(c.setFill[setIdx]); n < c.assoc {
		return base + n, true
	}
	switch c.cfg.Replacement {
	case LRU:
		best := base
		for i := base + 1; i < base+c.assoc; i++ {
			if c.lastUse[i] < c.lastUse[best] {
				best = i
			}
		}
		return best, false
	case FIFO:
		best := base
		for i := base + 1; i < base+c.assoc; i++ {
			if c.loadedAt[i] < c.loadedAt[best] {
				best = i
			}
		}
		return best, false
	case Random:
		return base + c.rand.Intn(c.assoc), false
	}
	panic("cache: unreachable replacement policy")
}

// retire accumulates the sub-block utilisation of an evicted frame
// (the paper's "72 percent of the sub-blocks in a block are never
// referenced in the period a block is resident" measurement).
func (c *Cache) retire(fi int) {
	if c.prefOBL != nil && c.prefOBL[fi] {
		c.stats.PrefetchEvictedUnused++
		c.prefOBL[fi] = false
	}
	c.stats.Evictions++
	c.stats.ResidencySubBlocks += uint64(c.subPerBlk)
	c.stats.ResidencyTouched += uint64(bits.OnesCount64(c.touched[fi]))
	if d := c.dirty[fi]; d != 0 {
		c.stats.WriteBackWords += uint64(bits.OnesCount64(d) * c.wordsPerSub)
		c.dirty[fi] = 0
	}
}

// FlushUsage folds the utilisation of still-resident blocks into the
// residency statistics.  Call once at end of trace before reading
// SubBlockUtilization.
func (c *Cache) FlushUsage() {
	for s := range c.setFill {
		base := s * c.assoc
		for fi := base; fi < base+int(c.setFill[s]); fi++ {
			c.stats.ResidencySubBlocks += uint64(c.subPerBlk)
			c.stats.ResidencyTouched += uint64(bits.OnesCount64(c.touched[fi]))
			if d := c.dirty[fi]; d != 0 {
				c.stats.WriteBackWords += uint64(bits.OnesCount64(d) * c.wordsPerSub)
				c.dirty[fi] = 0
			}
		}
	}
}

// Contains reports whether the sub-block holding the given address is
// resident.  Intended for tests and invariant checks.
func (c *Cache) Contains(a addr.Addr) bool {
	blockAddr := a >> c.blockShift
	setIdx := int(blockAddr & c.setMask)
	subIdx := uint(addr.Offset(a, uint64(c.cfg.BlockSize))) >> c.subShift
	base := setIdx * c.assoc
	for fi := base; fi < base+int(c.setFill[setIdx]); fi++ {
		if c.tags[fi] == blockAddr {
			return c.valid[fi]&(1<<subIdx) != 0
		}
	}
	return false
}

// ResidentSubBlocks returns the total number of valid sub-blocks,
// an invariant-checking helper (never exceeds NetSize/SubBlockSize).
func (c *Cache) ResidentSubBlocks() int {
	n := 0
	for s := range c.setFill {
		base := s * c.assoc
		for fi := base; fi < base+int(c.setFill[s]); fi++ {
			n += bits.OnesCount64(c.valid[fi])
		}
	}
	return n
}

// AccessBatch presents a chunk of word accesses to the cache.  It is
// the batched equivalent of calling Access per reference: callers that
// hold a materialised or chunk-buffered trace avoid one call (and, for
// streamed traces, one interface dispatch) per reference.  The
// same-block memoization carries across the batch, so block-local runs
// pay one tag compare per reference.
func (c *Cache) AccessBatch(refs []trace.Ref) {
	for i := range refs {
		c.Access(refs[i])
	}
}

// Run drives the cache with every access from src until EOF, then
// flushes residency usage.  src should already be word-split.  The
// stream is consumed in fixed-size chunks through AccessBatch, so the
// per-reference cost is a slice iteration rather than an interface
// call.
func (c *Cache) Run(src trace.Source) error {
	buf := make([]trace.Ref, trace.ChunkRefs)
	for {
		n, err := trace.ReadChunk(src, buf)
		c.AccessBatch(buf[:n])
		if err == io.EOF {
			c.FlushUsage()
			return nil
		}
		if err != nil {
			return fmt.Errorf("cache: reading trace: %w", err)
		}
	}
}
