// Package stackdist implements Mattson's single-pass stack-distance
// algorithm (Mattson, Gecsei, Slutz & Traiger, 1970 -- the paper's
// citation [16] for why "LRU permits more efficient simulation").
//
// For an LRU-managed fully-associative cache, the miss ratio at *every*
// capacity can be computed in one pass over the trace: a reference hits
// in a cache of capacity C blocks exactly when its LRU stack distance is
// less than C.  The same property holds per set for a set-associative
// cache with a fixed set mapping, sweeping associativity instead of
// capacity.
//
// The simulator package uses stackdist both as a fast way to sweep cache
// sizes and as an independent oracle for validating the event-driven
// simulator in internal/cache.
package stackdist

import (
	"fmt"
	"io"
	"sort"

	"subcache/internal/addr"
	"subcache/internal/trace"
)

// Profiler computes LRU stack distances at a fixed block granularity.
// Writes can be included or excluded to match the metric being studied.
type Profiler struct {
	blockShift uint
	numSets    int
	setMask    addr.Addr

	// stacks[s] is set s's LRU stack, most recent first.
	stacks [][]addr.Addr

	// hist[d] counts references with stack distance d (distance 0 = the
	// most recently used block); cold counts first-touch references,
	// whose distance is infinite.
	hist  []uint64
	cold  uint64
	total uint64

	countWrites bool
}

// New returns a Profiler at the given block size.  numSets > 1 profiles
// a set-associative mapping (distance then measures depth within the
// reference's set, so capacity sweeps become associativity sweeps);
// numSets == 1 is the classic fully-associative profile.
func New(blockSize, numSets int, countWrites bool) (*Profiler, error) {
	if blockSize <= 0 || !addr.IsPow2(uint64(blockSize)) {
		return nil, fmt.Errorf("stackdist: block size %d not a positive power of two", blockSize)
	}
	if numSets <= 0 || !addr.IsPow2(uint64(numSets)) {
		return nil, fmt.Errorf("stackdist: set count %d not a positive power of two", numSets)
	}
	return &Profiler{
		blockShift:  addr.Log2(uint64(blockSize)),
		numSets:     numSets,
		setMask:     addr.Addr(numSets - 1),
		stacks:      make([][]addr.Addr, numSets),
		countWrites: countWrites,
	}, nil
}

// Touch processes one reference and returns its stack distance
// (-1 for a cold first touch, or for an uncounted write).
func (p *Profiler) Touch(r trace.Ref) int {
	if r.Kind == trace.Write && !p.countWrites {
		return -1
	}
	block := r.Addr >> p.blockShift
	set := int(block & p.setMask)
	stack := p.stacks[set]
	p.total++

	// Linear move-to-front.  Stack distances in real (and realistic
	// synthetic) traces are small with overwhelming frequency, so the
	// expected cost per touch is modest even though the worst case is
	// the footprint size.
	for i, b := range stack {
		if b == block {
			copy(stack[1:i+1], stack[:i])
			stack[0] = block
			p.record(i)
			return i
		}
	}
	p.stacks[set] = append(stack, 0)
	stack = p.stacks[set]
	copy(stack[1:], stack)
	stack[0] = block
	p.cold++
	return -1
}

func (p *Profiler) record(d int) {
	for d >= len(p.hist) {
		p.hist = append(p.hist, 0)
	}
	p.hist[d]++
}

// Run drives the profiler from a source until EOF.
func (p *Profiler) Run(src trace.Source) error {
	for {
		r, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		p.Touch(r)
	}
}

// Total returns the number of counted references.
func (p *Profiler) Total() uint64 { return p.total }

// Cold returns the number of first-touch (infinite-distance) references.
func (p *Profiler) Cold() uint64 { return p.cold }

// Histogram returns a copy of the stack-distance histogram; index d is
// the count of references at distance d.
func (p *Profiler) Histogram() []uint64 {
	out := make([]uint64, len(p.hist))
	copy(out, p.hist)
	return out
}

// Misses returns the number of misses a fully-associative LRU cache of
// the given capacity (in blocks per set; associativity when numSets > 1)
// would take: every reference at distance >= capacity plus all cold
// references.
func (p *Profiler) Misses(capacity int) uint64 {
	if capacity < 0 {
		capacity = 0
	}
	m := p.cold
	for d := capacity; d < len(p.hist); d++ {
		m += p.hist[d]
	}
	return m
}

// MissRatio returns Misses(capacity) / Total().
func (p *Profiler) MissRatio(capacity int) float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.Misses(capacity)) / float64(p.total)
}

// Curve evaluates the miss ratio at each of the given capacities,
// a convenience for size sweeps.  Capacities need not be sorted.
func (p *Profiler) Curve(capacities []int) map[int]float64 {
	out := make(map[int]float64, len(capacities))
	for _, c := range capacities {
		out[c] = p.MissRatio(c)
	}
	return out
}

// FootprintBlocks returns the number of distinct blocks touched.
func (p *Profiler) FootprintBlocks() uint64 { return p.cold }

// Percentile returns the smallest capacity (in blocks) at which the hit
// ratio reaches q (0 < q <= 1), or -1 if even a cache holding the whole
// footprint cannot (because of cold misses).  Useful for characterising
// a workload's working-set size.
func (p *Profiler) Percentile(q float64) int {
	if p.total == 0 {
		return -1
	}
	need := uint64(q * float64(p.total))
	var cum uint64
	for d := 0; d < len(p.hist); d++ {
		cum += p.hist[d]
		if cum >= need {
			return d + 1
		}
	}
	return -1
}

// SortedDistances returns the distances with nonzero counts, ascending,
// for report output.
func (p *Profiler) SortedDistances() []int {
	var ds []int
	for d, n := range p.hist {
		if n > 0 {
			ds = append(ds, d)
		}
	}
	sort.Ints(ds)
	return ds
}
