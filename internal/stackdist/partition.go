package stackdist

import (
	"sort"

	"subcache/internal/cache"
)

// Unit is one shard worker's share of a stack group: the group's full
// lane set (Idxs indexes the partitioned configuration slice; sibling
// units of one group share the same slice) restricted to the set
// partition blk & (Parts-1) == Part.  Each unit becomes one Engine;
// sibling units' statistics sum exactly (cache.Stats.Add) to the
// unpartitioned group's, so partitioning never perturbs results.
type Unit struct {
	// Gid identifies the stack group the unit belongs to; sibling units
	// (same group, different Part) carry the same Gid, and their partial
	// statistics must be merged before reporting.  Gids are dense,
	// starting at 0, in first-appearance order of the group's lowest
	// configuration index.
	Gid   int
	Idxs  []int
	Parts uint64
	Part  uint64
}

// cost estimates the unit's per-access simulation work, mirroring the
// multipass planner's scale: one shared stack walk plus one lane update
// per member, divided by the partition fan-out since each sibling only
// processes 1/Parts of the block stream.
func (u Unit) cost() int {
	c := (2 + len(u.Idxs)) / int(u.Parts)
	if c < 1 {
		c = 1
	}
	return c
}

// Plan is one shard worker's list of stack units.
type Plan struct {
	Units []Unit
}

// Cost is the planner's estimated per-access cost of the plan, for
// telemetry's estimated-versus-observed shard load reporting.
func (p Plan) Cost() int {
	c := 0
	for _, u := range p.Units {
		c += u.cost()
	}
	return c
}

// Group splits cfgs into stack groups -- index lists sharing a Key, all
// Supported -- plus the rest, which need a different engine.  Order is
// deterministic: groups by first appearance, indexes ascending.
func Group(cfgs []cache.Config) (groups [][]int, rest []int) {
	byKey := make(map[cache.Config]int)
	for i, cfg := range cfgs {
		if Supported(cfg) != nil {
			rest = append(rest, i)
			continue
		}
		k := Key(cfg)
		gi, ok := byKey[k]
		if !ok {
			gi = len(groups)
			byKey[k] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups, rest
}

// maxParts returns how far a group's set partition may fan out: the
// smallest member set count, or 1 when any member uses warm start
// (whose frame-fill progress is global across sets).
func maxParts(cfgs []cache.Config, idxs []int) uint64 {
	m := uint64(0)
	for _, k := range idxs {
		if cfgs[k].WarmStart {
			return 1
		}
		s := uint64(cfgs[k].NumSets())
		if m == 0 || s < m {
			m = s
		}
	}
	return m
}

// Partition splits the Supported members of cfgs across at most shards
// workers, balancing estimated per-access cost, and returns the
// leftover indexes that need another engine.  Unlike the multipass
// planner, a stack group is never split by membership -- every lane
// needs the whole recency list -- so idle shards are filled by set
// partitioning instead: the costliest splittable group doubles its
// partition fan-out until every shard has work or nothing can split
// further.  The result is deterministic, covers every Supported index
// once per partition, and contains only non-empty plans.
func Partition(cfgs []cache.Config, shards int) ([]Plan, []int) {
	if shards < 1 {
		shards = 1
	}
	groups, rest := Group(cfgs)

	parts := make([]uint64, len(groups))
	limit := make([]uint64, len(groups))
	total := 0
	for gi, idxs := range groups {
		parts[gi] = 1
		limit[gi] = maxParts(cfgs, idxs)
		total++
	}
	for total < shards {
		best, bestCost := -1, 0
		for gi, idxs := range groups {
			if parts[gi]*2 > limit[gi] {
				continue
			}
			if c := (Unit{Idxs: idxs, Parts: parts[gi]}).cost(); best < 0 || c > bestCost {
				best, bestCost = gi, c
			}
		}
		if best < 0 {
			break
		}
		total -= int(parts[best])
		parts[best] *= 2
		total += int(parts[best])
	}

	units := make([]Unit, 0, total)
	for gi, idxs := range groups {
		for part := uint64(0); part < parts[gi]; part++ {
			units = append(units, Unit{Gid: gi, Idxs: idxs, Parts: parts[gi], Part: part})
		}
	}

	// Longest-processing-time greedy, deterministic: heaviest first,
	// ties on lowest group then lowest partition, each to the
	// least-loaded shard.
	sort.SliceStable(units, func(i, j int) bool {
		if ci, cj := units[i].cost(), units[j].cost(); ci != cj {
			return ci > cj
		}
		if units[i].Gid != units[j].Gid {
			return units[i].Gid < units[j].Gid
		}
		return units[i].Part < units[j].Part
	})
	plans := make([]Plan, shards)
	loads := make([]int, shards)
	for _, u := range units {
		best := 0
		for s := 1; s < shards; s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		loads[best] += u.cost()
		plans[best].Units = append(plans[best].Units, u)
	}
	out := plans[:0]
	for _, p := range plans {
		if len(p.Units) > 0 {
			out = append(out, p)
		}
	}
	return out, rest
}
