package stackdist_test

import (
	"reflect"
	"testing"

	"subcache/internal/cache"
	"subcache/internal/stackdist"
)

// planConfigs is a mixed grid: two stack groups (block 16 and block 32)
// plus configurations stack analysis must refuse.
func planConfigs() []cache.Config {
	cfgs := groupLanes(cache.Config{BlockSize: 16, WordSize: 2},
		[]int{256, 1024}, []int{2, 4}, []int{4, 16})
	cfgs = append(cfgs, groupLanes(cache.Config{BlockSize: 32, WordSize: 2},
		[]int{512}, []int{4}, []int{8, 32})...)
	fifo := cfgs[0]
	fifo.Replacement = cache.FIFO
	prefetch := cfgs[1]
	prefetch.PrefetchOBL = true
	return append(cfgs, fifo, prefetch)
}

// TestPartitionCoverage: every Supported index appears in exactly one
// unit per partition of its group, every partition 0..Parts-1 appears
// exactly once, and the unsupported indexes are all returned as rest.
func TestPartitionCoverage(t *testing.T) {
	cfgs := planConfigs()
	for _, shards := range []int{1, 2, 3, 8, 64} {
		plans, rest := stackdist.Partition(cfgs, shards)
		if len(plans) > shards {
			t.Errorf("shards=%d: %d plans", shards, len(plans))
		}
		type gp struct {
			gid  int
			part uint64
		}
		seen := map[gp]bool{}
		covered := map[int]uint64{} // config index -> partition fan-out
		for _, p := range plans {
			if len(p.Units) == 0 {
				t.Errorf("shards=%d: empty plan", shards)
			}
			if p.Cost() <= 0 {
				t.Errorf("shards=%d: non-positive plan cost", shards)
			}
			for _, u := range p.Units {
				k := gp{u.Gid, u.Part}
				if seen[k] {
					t.Errorf("shards=%d: duplicate unit gid=%d part=%d", shards, u.Gid, u.Part)
				}
				seen[k] = true
				if u.Part >= u.Parts {
					t.Errorf("shards=%d: part %d >= parts %d", shards, u.Part, u.Parts)
				}
				for _, k := range u.Idxs {
					if have, ok := covered[k]; ok && have != u.Parts {
						t.Errorf("shards=%d: index %d in groups with different fan-outs", shards, k)
					}
					covered[k] = u.Parts
					if err := stackdist.Supported(cfgs[k]); err != nil {
						t.Errorf("shards=%d: unsupported config %d planned: %v", shards, k, err)
					}
					if u.Parts > uint64(cfgs[k].NumSets()) {
						t.Errorf("shards=%d: fan-out %d exceeds %d sets of config %d",
							shards, u.Parts, cfgs[k].NumSets(), k)
					}
				}
			}
		}
		for i, cfg := range cfgs {
			supported := stackdist.Supported(cfg) == nil
			if _, ok := covered[i]; ok != supported {
				t.Errorf("shards=%d: index %d covered=%v supported=%v", shards, i, ok, supported)
			}
		}
		inRest := map[int]bool{}
		for _, k := range rest {
			inRest[k] = true
			if stackdist.Supported(cfgs[k]) == nil {
				t.Errorf("shards=%d: supported config %d in rest", shards, k)
			}
		}
		for i, cfg := range cfgs {
			if stackdist.Supported(cfg) != nil && !inRest[i] {
				t.Errorf("shards=%d: unsupported config %d missing from rest", shards, i)
			}
		}
	}
}

// TestPartitionDeterministic: the plan is a pure function of its
// inputs.
func TestPartitionDeterministic(t *testing.T) {
	cfgs := planConfigs()
	a, restA := stackdist.Partition(cfgs, 8)
	b, restB := stackdist.Partition(cfgs, 8)
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(restA, restB) {
		t.Error("Partition is not deterministic")
	}
}

// TestPartitionWarmStartPinned: a group containing a warm-start member
// must never fan out, however many shards ask for work.
func TestPartitionWarmStartPinned(t *testing.T) {
	warm := groupLanes(cache.Config{BlockSize: 16, WordSize: 2, WarmStart: true},
		[]int{256, 1024}, []int{2, 4}, []int{4, 16})
	plans, rest := stackdist.Partition(warm, 16)
	if len(rest) != 0 {
		t.Fatalf("warm-start configs rejected outright: %v", rest)
	}
	for _, p := range plans {
		for _, u := range p.Units {
			if u.Parts != 1 {
				t.Errorf("warm-start group fanned out to %d partitions", u.Parts)
			}
		}
	}
}

// TestPartitionFansOutForIdleShards: with one big splittable group and
// many shards, the planner must produce more than one unit.
func TestPartitionFansOutForIdleShards(t *testing.T) {
	cfgs := groupLanes(cache.Config{BlockSize: 16, WordSize: 2},
		[]int{1024}, []int{2}, []int{4, 16}) // 32 sets: plenty of fan-out room
	plans, _ := stackdist.Partition(cfgs, 8)
	units := 0
	for _, p := range plans {
		units += len(p.Units)
	}
	if units < 2 {
		t.Errorf("8 idle shards left the group unsplit (%d units)", units)
	}
	if len(plans) < 2 {
		t.Errorf("fan-out did not reach multiple shards (%d plans)", len(plans))
	}
}
