// The one-pass stack-distance sweep engine.
//
// The Profiler in stackdist.go answers "what is this reference's LRU
// stack distance" for one fixed (block size, set count).  The Engine
// here generalises that into a first-class sweep kernel: shared LRU
// recency state per stack group -- configurations sharing a block
// size and write policy -- simulates *every* (net size, associativity,
// sub-block size, fetch policy) combination of the group exactly, in a
// single trace pass, byte-for-byte equal to cache.Cache and
// multipass.Family.
//
// Why shared recency lists suffice (Mattson et al. 1970, plus
// bit-selection set mapping): under LRU, the recency order of the
// blocks mapping to one set is the global recency order filtered to
// that set, and every block more recent than a configuration's
// least-recently-used resident is itself resident (the inclusion
// property).  The engine keeps one doubly-linked recency list per
// (set count, set) for each distinct set count in the group -- a
// reference costs one move-to-front per distinct set count, not per
// configuration -- and a configuration's eviction victim on a miss is
// simply the assoc'th node of its own set's list: the first assoc
// nodes are exactly the set's residents, so the victim search is
// assoc pointer chases, and running out of list first means the set
// is not yet full.
//
// Exact sub-block metrics ride on one further consequence of
// inclusion: between two touches of a block, its per-set LRU depth
// only grows, so a block leaves a configuration's resident set exactly
// when it is chosen as that configuration's victim.  Each
// configuration's lanes (sub-block size x fetch policy) therefore keep
// per-block valid/touched/dirty bitmaps on the list nodes, retired and
// refilled at exactly the evictions the victim search identifies --
// the same event sequence an independent cache.Cache would produce,
// hence the same Stats, transaction histogram included.
//
// Two structural consequences keep the kernel fast.  First, each node
// carries a residency mask with one bit per tag geometry, set at fill
// and cleared at eviction, so a reference is classified as hit or miss
// in every configuration at once by one table lookup plus one word
// load -- no recency traversal.  Victim searches run only for the
// configurations whose mask bit is clear.  (The mask is a single
// uint64, which caps a stack group at 64 distinct tag geometries;
// NewEngine rejects larger groups explicitly.)  Second, a block whose
// mask drops to zero -- evicted from every configuration -- can never
// be hit or chosen as a victim again (every block above any
// configuration's LRU resident is itself resident), so its node is
// retired to a free list and its table entry deleted: the lists track
// the union of the resident sets, bounding both memory and victim
// search length by the total cache capacity under study rather than
// the trace footprint.
//
// Eligibility is stricter than multipass: Supported requires LRU (FIFO
// and Random break the stack property) on top of MultiPassSafe.  The
// sweep harness declares unsupported configurations explicitly and
// simulates them by other engines in the same pass; this package never
// approximates.
package stackdist

import (
	"fmt"
	"io"
	"math/bits"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/trace"
)

// Supported reports whether the configuration's metrics can be computed
// exactly by stack-distance analysis, with a descriptive error when
// not.  The requirements, beyond validity:
//
//   - LRU replacement: the stack (inclusion) property -- a cache's
//     contents at associativity A nest inside those at A+1 -- holds for
//     LRU but not for FIFO or Random, so only LRU lets one recency list
//     stand in for every associativity.
//   - MultiPassSafe (no OBL prefetch, not write-no-allocate): tag-array
//     dynamics must not depend on sub-block state, exactly as for the
//     multipass engine, or the shared recency order would diverge from
//     the simulated cache's.
//
// Warm start, copy-back, write-allocate and write-ignore are all
// supported.
func Supported(cfg cache.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Replacement != cache.LRU {
		return fmt.Errorf("stackdist: %v: %s replacement breaks the stack inclusion property (only LRU nests across associativities)", cfg, cfg.Replacement)
	}
	if !cfg.MultiPassSafe() {
		return fmt.Errorf("stackdist: %v: tag dynamics depend on sub-block state (prefetch or write-no-allocate)", cfg)
	}
	return nil
}

// Key returns the configuration with every field a stack group may vary
// across its members cleared.  Two supported configurations with equal
// keys can share one recency list: they agree on block granularity
// (BlockSize), on which references the list sees at all (Write), and on
// the fields Supported pins (Replacement, PrefetchOBL).  Net size,
// associativity, sub-block size, fetch policy, warm start and copy-back
// all vary within a group.
func Key(c cache.Config) cache.Config {
	c.NetSize = 0
	c.SubBlockSize = 0
	c.Assoc = 0
	c.Fetch = 0
	c.WarmStart = false
	c.CopyBack = false
	c.RandomSeed = 0
	return c
}

// lane is one input configuration's private accounting: the sub-block
// geometry and the Stats.  Its per-block valid/touched/dirty words live
// on the list nodes (see Engine.bits), not here.
type lane struct {
	cfg         cache.Config
	subShift    uint
	subPerBlk   uint
	subMask     uint64 // low subPerBlk bits set (the lane's local field)
	wordsPerSub int
	stats       cache.Stats
}

// tagCfg is one distinct tag-array geometry within the group -- a
// (NumSets, Assoc, WarmStart, CopyBack) combination, i.e. a
// cache.Config.FamilyKey -- carrying the tag-level counters shared by
// its lanes, exactly as multipass.Family does.
type tagCfg struct {
	setMask uint64 // NumSets-1: x is a set-mate of b iff (x^b)&setMask == 0
	assoc   int32
	gran    int32 // index into Engine.grans of this set count's lists
	// The configuration's lanes occupy the contiguous internal range
	// [lane0, lane1) of Engine.lanes, so the per-lane loops advance
	// their bits index by one triple per step.
	lane0, lane1 int32

	// Victim-search scratch, valid only within one Access: the node
	// index of the set's LRU resident; nilNode when the set is not full.
	victim int32

	// Warm-start state: counting starts once every frame has been
	// filled, mirroring multipass.Family.filled/warm.
	warm   bool
	filled int
	frames int
	// Snapshot of the engine's running reference totals at the moment
	// warm flipped (classified-as-warm-up refs inclusive); FlushUsage
	// derives the counted/warm-up split from it.
	warmIF, warmReads uint64

	// Tag-level event counters, identical in every lane.
	blockMisses       uint64
	warmupBlockMisses uint64
	writeBlockMisses  uint64
	evictions         uint64
}

// gran is one distinct set count's recency lists: heads[headOff+s] is
// the most recent block of set s (s = blk & mask), and every node
// carries a (prev, next) link pair per granularity (see Engine.links).
type gran struct {
	mask    uint64
	headOff int32
}

const (
	nilNode = int32(-1)
	// freeMark in a node's first link slot marks a retired node awaiting
	// reuse, so one access retiring the same victim for two
	// configurations frees it once.
	freeMark = int32(-2)
)

// blkTable maps block number -> node index: open addressing with
// linear probing and backward-shift deletion (retiring a node removes
// its key, so the table tracks resident blocks, not the footprint).
// Keys are stored +1 so zero means empty.
type blkTable struct {
	keys []uint64
	vals []int32
	mask uint64
	n    int
}

func newBlkTable() blkTable {
	const initial = 1024
	return blkTable{keys: make([]uint64, initial), vals: make([]int32, initial), mask: initial - 1}
}

// get returns the node index for blk, or (nilNode, false).
func (t *blkTable) get(blk uint64) (int32, bool) {
	h := (blk * 0x9E3779B97F4A7C15) & t.mask
	for {
		k := t.keys[h]
		if k == blk+1 {
			return t.vals[h], true
		}
		if k == 0 {
			return nilNode, false
		}
		h = (h + 1) & t.mask
	}
}

// put inserts blk -> ni (blk must not be present).
func (t *blkTable) put(blk uint64, ni int32) {
	if uint64(t.n+1)*4 > (t.mask+1)*3 {
		t.grow()
	}
	h := (blk * 0x9E3779B97F4A7C15) & t.mask
	for t.keys[h] != 0 {
		h = (h + 1) & t.mask
	}
	t.keys[h] = blk + 1
	t.vals[h] = ni
	t.n++
}

// del removes blk (which must be present) by backward-shift deletion:
// later entries of the probe cluster slide into the hole whenever their
// home slot permits, so lookups never need tombstones.
func (t *blkTable) del(blk uint64) {
	h := (blk * 0x9E3779B97F4A7C15) & t.mask
	for t.keys[h] != blk+1 {
		h = (h + 1) & t.mask
	}
	t.n--
	j := h
	for {
		t.keys[h] = 0
		for {
			j = (j + 1) & t.mask
			k := t.keys[j]
			if k == 0 {
				return
			}
			// The entry at j may fill the hole at h iff h lies
			// cyclically within [home(k), j].
			hk := ((k - 1) * 0x9E3779B97F4A7C15) & t.mask
			if (j-hk)&t.mask >= (j-h)&t.mask {
				break
			}
		}
		t.keys[h], t.vals[h] = t.keys[j], t.vals[j]
		h = j
	}
}

func (t *blkTable) grow() {
	old := *t
	size := (t.mask + 1) * 2
	t.keys = make([]uint64, size)
	t.vals = make([]int32, size)
	t.mask = size - 1
	for i, k := range old.keys {
		if k == 0 {
			continue
		}
		h := ((k - 1) * 0x9E3779B97F4A7C15) & t.mask
		for t.keys[h] != 0 {
			h = (h + 1) & t.mask
		}
		t.keys[h] = k
		t.vals[h] = old.vals[i]
	}
}

// Engine simulates one stack group -- every configuration sharing a
// Key -- in a single trace pass.  Not safe for concurrent use.
type Engine struct {
	blockShift uint
	offMask    uint64
	write      cache.WritePolicy

	// Set partitioning: the engine processes only references whose
	// block number satisfies blk & partMask == part.  partMask is
	// parts-1; zero means the whole stream.  Because every
	// configuration's set count is a multiple of parts, a partition is
	// a union of whole sets for every configuration at once, so
	// per-partition counters sum exactly (cache.Stats.Add) to the
	// unpartitioned run.
	partMask uint64
	part     uint64

	// Lanes are stored grouped by tag geometry (see tagCfg.lane0), in a
	// deterministic internal order; extLane maps NewEngine's input index
	// to the internal one for the public accessors.  The hot per-lane
	// scalars live in dense parallel arrays so the access loops touch
	// one cache line for the whole group instead of one lane struct
	// each: laneCB is the copy-back flag, laneWarm the owning tagCfg's
	// warm flag, cfgOfLane the owning tag geometry and
	// laneOff/lanePlane the lane's bit-plane placement.
	cfgs      []tagCfg
	lanes     []lane
	extLane   []int32
	laneCB    []bool
	laneWarm  []bool
	cfgOfLane []int32
	laneOff   []uint8
	lanePlane []int32

	// Per-node lane bitmaps follow multipass.Family's struct-of-arrays
	// bit-plane layout: every lane owns the field [laneOff,
	// laneOff+subPerBlk) of plane word ni*nPlanes+plane, in three
	// parallel arrays (valid, touched, dirty) instead of strided
	// per-lane triples.  A reference that hits everywhere then updates
	// nPlanes words, independent of the lane count.
	nPlanes int
	valid   []uint64
	touched []uint64
	dirty   []uint64

	// Precomputed bit tables, all indexed by block word offset wo =
	// (off >> wordShift):
	//
	//   refBits[wo*nPlanes+pj]: OR over plane pj's lanes of the bit for
	//     the sub-block containing wo -- the all-hit path's one load.
	//   refBitsC[(ci*blkWords+wo)*nPlanes+pj]: the same restricted to
	//     tag geometry ci's lanes, for the split hit/miss paths.
	//   missBitsC[(ci*blkWords+wo)*nPlanes+pj]: geometry ci's plane
	//     valid word after a block-miss fill at wo (fills start from a
	//     zeroed field, so the result is a pure function of wo).
	//   missWords/missLoaded[li*blkWords+wo]: lane li's words-per-fill
	//     transaction size and sub-blocks-loaded count for that fill.
	//   laneOfBit[pj*64+b]: the lane owning bit b of plane pj.
	//   cfgMask[ci*nPlanes+pj]: OR of geometry ci's lane fields.
	//   cbMask[pj]: OR of the copy-back lanes' fields.
	refBits    []uint64
	refBitsC   []uint64
	missBitsC  []uint64
	missWords  []int32
	missLoaded []int32
	laneOfBit  []int32
	cfgMask    []uint64
	cbMask     []uint64
	wordShift  uint
	blkWords   int

	// Same-block memo: the node of the last block looked up, or
	// nilNode.  Trace locality makes consecutive references repeat
	// blocks, so one compare usually replaces the hash-table probe.
	// freeNode invalidates the memo when it retires the memoized node.
	memoBlk uint64
	memoNi  int32

	// The recency structure: one doubly-linked list per (granularity,
	// set), where the granularities are the group's distinct set
	// counts, most recent at the head.  Nodes are arena entries
	// addressed by index: blks holds each node's block number, resMask
	// its residency mask (bit ci set iff configuration ci holds the
	// block), and links its (prev, next) pair per granularity -- node
	// ni's pair for granularity g sits at links[ni*lstride + 2g]; the
	// lane bitmaps live in the valid/touched/dirty plane arrays above.
	// Retired nodes (mask dropped to zero) chain off freeHead through
	// their second link slot, first slot freeMark, so the arena size
	// tracks the union of the resident sets, not the footprint.
	grans   []gran
	lstride int
	heads   []int32
	blks    []uint64
	resMask []uint64
	allMask uint64
	links   []int32

	freeHead int32
	nFree    int
	table    blkTable

	// Running reference totals over the group's processed stream, the
	// shared half of every configuration's access classification.
	ifetches uint64
	reads    uint64
	writes   uint64

	flushed bool
}

// NewEngine builds a stack engine for the given configurations, which must
// all be Supported and share a Key.  parts/part select one set
// partition (parts a power of two, part < parts); pass 1, 0 for the
// whole stream.  Partitioning requires every configuration's set count
// to be at least parts and rejects warm-start configurations, whose
// fill progress is global across sets.
func NewEngine(cfgs []cache.Config, parts, part uint64) (*Engine, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("stackdist: no configurations")
	}
	if parts == 0 {
		parts = 1
	}
	if !addr.IsPow2(parts) {
		return nil, fmt.Errorf("stackdist: partition count %d is not a power of two", parts)
	}
	if part >= parts {
		return nil, fmt.Errorf("stackdist: partition %d out of range (parts %d)", part, parts)
	}
	key := Key(cfgs[0])
	for _, cfg := range cfgs {
		if err := Supported(cfg); err != nil {
			return nil, err
		}
		if Key(cfg) != key {
			return nil, fmt.Errorf("stackdist: %v and %v are not in the same stack group", cfgs[0], cfg)
		}
		if parts > 1 {
			if cfg.WarmStart {
				return nil, fmt.Errorf("stackdist: %v: warm-start fill progress is global, cannot set-partition", cfg)
			}
			if uint64(cfg.NumSets()) < parts {
				return nil, fmt.Errorf("stackdist: %v: %d sets cannot be split into %d partitions", cfg, cfg.NumSets(), parts)
			}
		}
	}
	base := cfgs[0]
	e := &Engine{
		blockShift: addr.Log2(uint64(base.BlockSize)),
		offMask:    uint64(base.BlockSize - 1),
		write:      base.Write,
		partMask:   parts - 1,
		part:       part,
		wordShift:  addr.Log2(uint64(base.WordSize)),
		blkWords:   base.BlockSize / base.WordSize,
		freeHead:   nilNode,
		memoNi:     nilNode,
		table:      newBlkTable(),
	}
	byFam := make(map[cache.Config]int)
	cfgOf := make([]int, len(cfgs))
	for i, cfg := range cfgs {
		fk := cfg.FamilyKey()
		ci, ok := byFam[fk]
		if !ok {
			ci = len(e.cfgs)
			byFam[fk] = ci
			e.cfgs = append(e.cfgs, tagCfg{
				setMask: uint64(cfg.NumSets() - 1),
				assoc:   int32(cfg.Assoc),
				victim:  nilNode,
				warm:    !cfg.WarmStart,
				frames:  cfg.NumFrames(),
			})
		}
		cfgOf[i] = ci
		e.cfgs[ci].lane1++ // lane count, rewritten to a range below
	}
	// Give each geometry its contiguous internal lane range, then place
	// the lanes: geometries in first-appearance order, input order
	// within a geometry.
	off := int32(0)
	for ci := range e.cfgs {
		n := e.cfgs[ci].lane1
		e.cfgs[ci].lane0, e.cfgs[ci].lane1 = off, off
		off += n
	}
	e.lanes = make([]lane, len(cfgs))
	e.extLane = make([]int32, len(cfgs))
	e.laneCB = make([]bool, len(cfgs))
	e.laneWarm = make([]bool, len(cfgs))
	for i, cfg := range cfgs {
		c := &e.cfgs[cfgOf[i]]
		li := c.lane1
		c.lane1++
		e.extLane[i] = li
		e.lanes[li] = lane{
			cfg:         cfg,
			subShift:    addr.Log2(uint64(cfg.SubBlockSize)),
			subPerBlk:   uint(cfg.SubBlocksPerBlock()),
			subMask:     ^uint64(0) >> (64 - uint(cfg.SubBlocksPerBlock())),
			wordsPerSub: cfg.WordsPerSubBlock(),
		}
		// Same pre-sizing as cache.New and multipass.New: fills record
		// with one increment.
		e.lanes[li].stats.TxHist = make([]uint64, cfg.BlockSize/cfg.WordSize+1)
		e.laneCB[li] = cfg.CopyBack
		e.laneWarm[li] = !cfg.WarmStart
	}
	if len(e.cfgs) > 64 {
		return nil, fmt.Errorf("stackdist: %d distinct tag geometries in one stack group exceed the 64 tracked by the residency mask; split the group", len(e.cfgs))
	}
	e.allMask = ^uint64(0) >> (64 - uint(len(e.cfgs)))
	// One list granularity per distinct set count, coarsest first (the
	// order is cosmetic; victim searches index by tagCfg.gran).
	for ci := range e.cfgs {
		c := &e.cfgs[ci]
		g := -1
		for gi := range e.grans {
			if e.grans[gi].mask == c.setMask {
				g = gi
				break
			}
		}
		if g < 0 {
			g = len(e.grans)
			e.grans = append(e.grans, gran{mask: c.setMask, headOff: int32(len(e.heads))})
			for s := uint64(0); s <= c.setMask; s++ {
				e.heads = append(e.heads, nilNode)
			}
		}
		c.gran = int32(g)
	}
	e.lstride = 2 * len(e.grans)

	// Bit-plane placement, first-fit in internal lane order: a lane's
	// field occupies subPerBlk contiguous bits of one plane word and
	// never straddles planes.  A block-size ladder sums to at most
	// 2*subPerBlkMax-1 <= 63 bits per geometry, so real groups use one
	// plane word per one or two geometries.
	e.cfgOfLane = make([]int32, len(cfgs))
	e.laneOff = make([]uint8, len(cfgs))
	e.lanePlane = make([]int32, len(cfgs))
	var planeUsed []int
	for ci := range e.cfgs {
		c := &e.cfgs[ci]
		for li := c.lane0; li < c.lane1; li++ {
			e.cfgOfLane[li] = int32(ci)
			n := int(e.lanes[li].subPerBlk)
			pj := -1
			for j, used := range planeUsed {
				if used+n <= 64 {
					pj = j
					break
				}
			}
			if pj < 0 {
				pj = len(planeUsed)
				planeUsed = append(planeUsed, 0)
			}
			e.lanePlane[li] = int32(pj)
			e.laneOff[li] = uint8(planeUsed[pj])
			planeUsed[pj] += n
		}
	}
	e.nPlanes = len(planeUsed)

	np, words := e.nPlanes, e.blkWords
	e.refBits = make([]uint64, words*np)
	e.refBitsC = make([]uint64, len(e.cfgs)*words*np)
	e.missBitsC = make([]uint64, len(e.cfgs)*words*np)
	e.missWords = make([]int32, len(cfgs)*words)
	e.missLoaded = make([]int32, len(cfgs)*words)
	e.laneOfBit = make([]int32, np*64)
	e.cfgMask = make([]uint64, len(e.cfgs)*np)
	e.cbMask = make([]uint64, np)
	for li := range e.lanes {
		ln := &e.lanes[li]
		ci := int(e.cfgOfLane[li])
		pj := int(e.lanePlane[li])
		offb := uint(e.laneOff[li])
		for b := uint(0); b < ln.subPerBlk; b++ {
			e.laneOfBit[pj*64+int(offb+b)] = int32(li)
		}
		e.cfgMask[ci*np+pj] |= ln.subMask << offb
		if ln.cfg.CopyBack {
			e.cbMask[pj] |= ln.subMask << offb
		}
		for wo := 0; wo < words; wo++ {
			sub := uint(wo) >> (ln.subShift - e.wordShift)
			e.refBits[wo*np+pj] |= 1 << (offb + sub)
			e.refBitsC[(ci*words+wo)*np+pj] |= 1 << (offb + sub)
			// Block-miss fills start from a zeroed field, so the
			// resulting valid bits, transaction size and sub-blocks
			// loaded are pure functions of the fetch policy and wo
			// (LoadForwardOptimized degenerates to LoadForward's single
			// run when nothing is valid).
			var local uint64
			var loaded int
			switch ln.cfg.Fetch {
			case cache.DemandSubBlock:
				local, loaded = 1<<sub, 1
			case cache.LoadForward, cache.LoadForwardOptimized:
				local = ln.subMask &^ (1<<sub - 1)
				loaded = int(ln.subPerBlk - sub)
			case cache.WholeBlock:
				local, loaded = ln.subMask, int(ln.subPerBlk)
			}
			e.missBitsC[(ci*words+wo)*np+pj] |= local << offb
			e.missWords[li*words+wo] = int32(loaded * ln.wordsPerSub)
			e.missLoaded[li*words+wo] = int32(loaded)
		}
	}
	return e, nil
}

// Lanes returns the number of configurations the engine simulates.
func (e *Engine) Lanes() int { return len(e.lanes) }

// Config returns the i'th configuration, in NewEngine's input order.
func (e *Engine) Config(i int) cache.Config { return e.lanes[e.extLane[i]].cfg }

// Stats returns the i'th configuration's statistics.  As for multipass,
// the tag-level counters are only folded in by FlushUsage: call it once
// at end of trace before reading.  For a partitioned engine the stats
// cover only this partition's sets; sum sibling partitions with
// cache.Stats.Add for the full-stream counters.
func (e *Engine) Stats(i int) *cache.Stats { return &e.lanes[e.extLane[i]].stats }

// Footprint returns the number of blocks currently resident in at
// least one configuration (in this partition).
func (e *Engine) Footprint() int { return len(e.blks) - e.nFree }

// newNode returns a node for blk (bits and residency mask zeroed),
// reusing a retired slot when one is free.  The caller links it.
func (e *Engine) newNode(blk uint64) int32 {
	ni := e.freeHead
	if ni != nilNode {
		// A node is retired only once its residency mask dropped to
		// zero, and each eviction zeroes that configuration's plane
		// fields, so the slot's planes and mask are already zero.
		e.freeHead = e.links[int(ni)*e.lstride+1]
		e.nFree--
		e.blks[ni] = blk
	} else {
		ni = int32(len(e.blks))
		e.blks = append(e.blks, blk)
		e.resMask = append(e.resMask, 0)
		for i := 0; i < e.lstride; i++ {
			e.links = append(e.links, nilNode)
		}
		for i := 0; i < e.nPlanes; i++ {
			e.valid = append(e.valid, 0)
			e.touched = append(e.touched, 0)
			e.dirty = append(e.dirty, 0)
		}
	}
	e.table.put(blk, ni)
	return ni
}

// freeNode unlinks a dead node from every granularity, removes its
// table entry and chains its slot onto the free list.
func (e *Engine) freeNode(ni int32) {
	blk := e.blks[ni]
	nb := int(ni) * e.lstride
	for g := range e.grans {
		p, n := e.links[nb+2*g], e.links[nb+2*g+1]
		if p != nilNode {
			e.links[int(p)*e.lstride+2*g+1] = n
		} else {
			gr := &e.grans[g]
			e.heads[int(gr.headOff)+int(blk&gr.mask)] = n
		}
		if n != nilNode {
			e.links[int(n)*e.lstride+2*g] = p
		}
	}
	e.table.del(blk)
	if ni == e.memoNi {
		e.memoNi = nilNode
	}
	e.links[nb] = freeMark
	e.links[nb+1] = e.freeHead
	e.freeHead = ni
	e.nFree++
}

// pushAll links a fresh node at the head of its set's list in every
// granularity.
func (e *Engine) pushAll(ni int32, blk uint64) {
	nb := int(ni) * e.lstride
	for g := range e.grans {
		gr := &e.grans[g]
		hi := int(gr.headOff) + int(blk&gr.mask)
		h := e.heads[hi]
		e.links[nb+2*g] = nilNode
		e.links[nb+2*g+1] = h
		if h != nilNode {
			e.links[int(h)*e.lstride+2*g] = ni
		}
		e.heads[hi] = ni
	}
}

// moveToFront restores the node to the head of its set's list in every
// granularity where it is not already the most recent block.
func (e *Engine) moveToFront(ni int32, blk uint64) {
	nb := int(ni) * e.lstride
	for g := range e.grans {
		gr := &e.grans[g]
		hi := int(gr.headOff) + int(blk&gr.mask)
		h := e.heads[hi]
		if h == ni {
			continue
		}
		// ni is mid-list, so it has a predecessor, and the head exists.
		p, n := e.links[nb+2*g], e.links[nb+2*g+1]
		e.links[int(p)*e.lstride+2*g+1] = n
		if n != nilNode {
			e.links[int(n)*e.lstride+2*g] = p
		}
		e.links[nb+2*g] = nilNode
		e.links[nb+2*g+1] = h
		e.links[int(h)*e.lstride+2*g] = ni
		e.heads[hi] = ni
	}
}

// findVictim returns the configuration's eviction victim for a miss on
// blk: the assoc'th node of the set's recency list.  nilNode means the
// set holds fewer than assoc blocks (not yet full).  Exact because the
// lists hold every block resident in at least one configuration in
// recency order, and every block above this configuration's LRU
// resident is itself resident here (inclusion), so the list's first
// assoc nodes are precisely the set's residents and the last of them
// its LRU block.
func (e *Engine) findVictim(c *tagCfg, blk uint64) int32 {
	g := int(c.gran)
	gr := &e.grans[g]
	x := e.heads[int(gr.headOff)+int(blk&gr.mask)]
	need := c.assoc
	if need == 1 {
		// Direct-mapped: the victim is the set's most recent block.
		return x
	}
	next := 2*g + 1
	for x != nilNode {
		need--
		if need == 0 {
			return x
		}
		x = e.links[int(x)*e.lstride+next]
	}
	return nilNode
}

// Access presents one word access to every configuration of the group.
func (e *Engine) Access(r trace.Ref) {
	isWrite := r.Kind == trace.Write
	if isWrite && e.write == cache.WriteIgnore {
		return
	}
	blk := uint64(r.Addr) >> e.blockShift
	if blk&e.partMask != e.part {
		return
	}
	e.access(blk, uint(uint64(r.Addr)&e.offMask), r.Kind)
}

// access processes one partition-accepted reference: blk is the block
// number, off the byte offset within the block.
func (e *Engine) access(blk uint64, off uint, kind trace.Kind) {
	isWrite := kind == trace.Write
	if isWrite {
		e.writes++
	} else if kind == trace.IFetch {
		e.ifetches++
	} else {
		e.reads++
	}

	// Same-block memo first -- trace locality repeats blocks, so one
	// compare usually replaces the hash probe -- then the table.
	var ni int32
	var found bool
	if blk == e.memoBlk && e.memoNi != nilNode {
		ni, found = e.memoNi, true
	} else if ni, found = e.table.get(blk); found {
		e.memoBlk, e.memoNi = blk, ni
	}

	// Classify every configuration at once from the node's residency
	// mask: the block hits exactly where its bit is set (at fill),
	// misses where it is clear (at eviction).  No recency traversal.
	var resident uint64
	if found {
		resident = e.resMask[ni]
	}
	missing := e.allMask &^ resident

	if missing == 0 {
		// Hit everywhere -- the dominant case: one load-test-OR per
		// plane word covers every lane at once, with the rare sub-block
		// miss peeled out by bit, then the block moves to its list
		// heads.
		wo := int(off >> e.wordShift)
		nb := int(ni) * e.nPlanes
		ob := wo * e.nPlanes
		for pj := 0; pj < e.nPlanes; pj++ {
			need := e.refBits[ob+pj]
			if sm := need &^ e.valid[nb+pj]; sm != 0 {
				e.subMiss(pj, nb+pj, off, sm, isWrite)
			}
			e.touched[nb+pj] |= need
			if isWrite {
				e.dirty[nb+pj] |= need & e.cbMask[pj]
			}
		}
		e.moveToFront(ni, blk)
		return
	}

	// Victim search for the missing configurations only, before the
	// block is moved to its list heads.
	for m := missing; m != 0; m &= m - 1 {
		c := &e.cfgs[bits.TrailingZeros64(m)]
		c.victim = e.findVictim(c, blk)
	}

	if !found {
		ni = e.newNode(blk)
		e.memoBlk, e.memoNi = blk, ni
	}
	for ci := range e.cfgs {
		if missing&(1<<uint(ci)) != 0 {
			e.missCfg(ci, ni, off, isWrite)
		} else {
			e.hitCfg(ci, ni, off, isWrite)
		}
	}
	if found {
		e.moveToFront(ni, blk)
	} else {
		e.pushAll(ni, blk)
	}

	// Retire victims now evicted from every configuration: they can
	// never be hit (non-resident) or chosen as a victim (below every
	// LRU resident) again.
	for m := missing; m != 0; m &= m - 1 {
		v := e.cfgs[bits.TrailingZeros64(m)].victim
		if v == nilNode || e.resMask[v] != 0 || e.links[int(v)*e.lstride] == freeMark {
			continue
		}
		e.freeNode(v)
	}
}

// subMiss resolves the sub-block misses in one plane word: sm holds
// the referenced bits absent from valid[wi], one bit per missing lane
// (a reference touches exactly one bit per lane).
func (e *Engine) subMiss(pj, wi int, off uint, sm uint64, isWrite bool) {
	for m := sm; m != 0; m &= m - 1 {
		li := e.laneOfBit[pj*64+bits.TrailingZeros64(m)]
		ln := &e.lanes[li]
		counted := !isWrite && e.laneWarm[li]
		if counted {
			ln.stats.SubBlockMisses++
		} else if !isWrite {
			ln.stats.WarmupMisses++
		} else {
			ln.stats.WriteMisses++
		}
		e.fillLane(ln, uint(e.laneOff[li]), wi, off>>ln.subShift, counted)
	}
}

// hitCfg resolves a tag hit for geometry ci: the per-plane walk of the
// all-hit path, restricted to the geometry's own bit fields, mirroring
// the tag-hit path of multipass.Family.Access.
func (e *Engine) hitCfg(ci int, ni int32, off uint, isWrite bool) {
	wo := int(off >> e.wordShift)
	nb := int(ni) * e.nPlanes
	cb := (ci*e.blkWords + wo) * e.nPlanes
	for pj := 0; pj < e.nPlanes; pj++ {
		need := e.refBitsC[cb+pj]
		if need == 0 {
			continue
		}
		if sm := need &^ e.valid[nb+pj]; sm != 0 {
			e.subMiss(pj, nb+pj, off, sm, isWrite)
		}
		e.touched[nb+pj] |= need
		if isWrite {
			e.dirty[nb+pj] |= need & e.cbMask[pj]
		}
	}
}

// missCfg resolves a block (tag) miss for configuration ci: the victim
// the search identified (if any) is retired, warm-start fill progress
// advances, and the new block's lane state is initialised, mirroring
// the block-miss path of multipass.Family.Access.
func (e *Engine) missCfg(ci int, ni int32, off uint, isWrite bool) {
	c := &e.cfgs[ci]
	counted := !isWrite && c.warm
	if counted {
		c.blockMisses++
	} else if !isWrite {
		c.warmupBlockMisses++
	} else {
		c.writeBlockMisses++
	}
	if c.victim != nilNode {
		c.evictions++
		e.resMask[c.victim] &^= 1 << uint(ci)
		vb := int(c.victim) * e.nPlanes
		mb := ci * e.nPlanes
		for pj := 0; pj < e.nPlanes; pj++ {
			cm := e.cfgMask[mb+pj]
			if cm == 0 {
				continue
			}
			t := e.touched[vb+pj] & cm
			d := e.dirty[vb+pj] & cm
			if t|d != 0 {
				for li := c.lane0; li < c.lane1; li++ {
					if e.lanePlane[li] != int32(pj) {
						continue
					}
					ln := &e.lanes[li]
					offb := uint(e.laneOff[li])
					ln.stats.ResidencyTouched += uint64(bits.OnesCount64(t >> offb & ln.subMask))
					if dd := d >> offb & ln.subMask; dd != 0 {
						ln.stats.WriteBackWords += uint64(bits.OnesCount64(dd) * ln.wordsPerSub)
					}
				}
			}
			e.valid[vb+pj] &^= cm
			e.touched[vb+pj] &^= cm
			e.dirty[vb+pj] &^= cm
		}
	} else {
		c.filled++
		if c.filled == c.frames && !c.warm {
			c.warm = true
			for li := c.lane0; li < c.lane1; li++ {
				e.laneWarm[li] = true
			}
			// Totals include the current (warm-up-classified) reference,
			// so the snapshot is exactly the warm-up share.
			c.warmIF = e.ifetches
			c.warmReads = e.reads
		}
	}
	// Fill: the geometry's plane fields take their precomputed
	// block-miss state (valid from missBitsC, touched from the
	// referenced bits), and the per-lane transaction accounting reads
	// the matching precomputed sizes.
	e.resMask[ni] |= 1 << uint(ci)
	wo := int(off >> e.wordShift)
	nb := int(ni) * e.nPlanes
	cb := (ci*e.blkWords + wo) * e.nPlanes
	mb := ci * e.nPlanes
	for pj := 0; pj < e.nPlanes; pj++ {
		cm := e.cfgMask[mb+pj]
		if cm == 0 {
			continue
		}
		rb := e.refBitsC[cb+pj]
		e.valid[nb+pj] = e.valid[nb+pj]&^cm | e.missBitsC[cb+pj]
		e.touched[nb+pj] = e.touched[nb+pj]&^cm | rb
		if isWrite {
			e.dirty[nb+pj] = e.dirty[nb+pj]&^cm | rb&e.cbMask[pj]
		} else {
			e.dirty[nb+pj] &^= cm
		}
	}
	if counted {
		for li := c.lane0; li < c.lane1; li++ {
			ln := &e.lanes[li]
			ln.stats.TxHist[e.missWords[int(li)*e.blkWords+wo]]++
			loaded := uint64(e.missLoaded[int(li)*e.blkWords+wo])
			ln.stats.SubBlockFills += loaded
			ln.stats.WordsFetched += loaded * uint64(ln.wordsPerSub)
		}
	}
}

// fillLane loads sub-blocks into the lane's field (at bit offset offb
// of plane word valid[wi]) according to its fetch policy, with the
// same mask arithmetic as multipass.lane.fill: set bits come from one
// OR, counts from popcount deltas, and LoadForwardOptimized's
// transaction runs from trailing-zeros scans over the missing mask.
func (e *Engine) fillLane(ln *lane, offb uint, wi int, subIdx uint, counted bool) {
	lv := e.valid[wi] >> offb & ln.subMask
	var loaded, redundant int
	switch ln.cfg.Fetch {
	case cache.DemandSubBlock:
		lv |= 1 << subIdx
		loaded = 1

	case cache.LoadForward:
		mask := ln.subMask &^ (1<<subIdx - 1)
		redundant = bits.OnesCount64(lv & mask)
		loaded = int(ln.subPerBlk - subIdx)
		lv |= mask

	case cache.LoadForwardOptimized:
		missing := (ln.subMask &^ (1<<subIdx - 1)) &^ lv
		loaded = bits.OnesCount64(missing)
		for m := missing; m != 0; {
			start := uint(bits.TrailingZeros64(m))
			run := bits.TrailingZeros64(^(m >> start))
			e.recordTransaction(ln, run, counted)
			m &^= (1<<uint(run) - 1) << start
		}
		lv |= missing
		e.valid[wi] |= lv << offb
		if counted {
			ln.stats.SubBlockFills += uint64(loaded)
			ln.stats.WordsFetched += uint64(loaded * ln.wordsPerSub)
		}
		return

	case cache.WholeBlock:
		redundant = bits.OnesCount64(lv)
		loaded = int(ln.subPerBlk)
		lv = ln.subMask
	}
	e.valid[wi] |= lv << offb
	e.recordTransaction(ln, loaded, counted)
	if counted {
		ln.stats.SubBlockFills += uint64(loaded)
		ln.stats.RedundantLoads += uint64(redundant)
		ln.stats.WordsFetched += uint64(loaded * ln.wordsPerSub)
	}
}

func (e *Engine) recordTransaction(ln *lane, n int, counted bool) {
	if !counted || n == 0 {
		return
	}
	ln.stats.TxHist[n*ln.wordsPerSub]++
}

// AccessBatch presents a chunk of word accesses, the batched equivalent
// of calling Access per reference.
func (e *Engine) AccessBatch(refs []trace.Ref) {
	for i := range refs {
		e.Access(refs[i])
	}
}

// WordSize returns the group's shared word size in bytes, the
// granularity for trace.PackRefs.
func (e *Engine) WordSize() int { return e.lanes[0].cfg.WordSize }

// AccessBatchPacked is AccessBatch taking the chunk's packed form
// (trace.PackRefs at the engine's word granularity) alongside, so the
// per-reference decode is one load and two shifts; the sweep executors
// share one packing pass across every engine of a workload.
func (e *Engine) AccessBatchPacked(refs []trace.Ref, packed []uint64) {
	_ = packed[:len(refs)]
	baShift := 2 + e.blockShift - e.wordShift
	woMask := uint64(e.blkWords - 1)
	wIgnore := e.write == cache.WriteIgnore
	for i := range packed {
		v := packed[i]
		k := trace.Kind(v & 3)
		if k == trace.Write && wIgnore {
			continue
		}
		blk := v >> baShift
		if blk&e.partMask != e.part {
			continue
		}
		e.access(blk, uint(v>>2&woMask)<<e.wordShift, k)
	}
}

// FlushUsage finalises every configuration's statistics: still-resident
// blocks are folded into the residency counters (a block is resident in
// a configuration iff its valid bits there are nonzero, so one arena
// scan covers every configuration), and the tag-level counters are
// distributed into each lane's cache.Stats by the same partition
// identities multipass.Family.FlushUsage uses.  Call exactly once at
// end of trace; further calls are no-ops.
func (e *Engine) FlushUsage() {
	if e.flushed {
		return
	}
	e.flushed = true
	for ni := range e.blks {
		if e.links[ni*e.lstride] == freeMark {
			continue
		}
		nb := ni * e.nPlanes
		for li := range e.lanes {
			ln := &e.lanes[li]
			wi := nb + int(e.lanePlane[li])
			offb := uint(e.laneOff[li])
			if e.valid[wi]>>offb&ln.subMask == 0 {
				continue
			}
			ln.stats.ResidencyTouched += uint64(bits.OnesCount64(e.touched[wi] >> offb & ln.subMask))
			if d := e.dirty[wi] >> offb & ln.subMask; d != 0 {
				ln.stats.WriteBackWords += uint64(bits.OnesCount64(d) * ln.wordsPerSub)
				e.dirty[wi] &^= ln.subMask << offb
			}
		}
	}
	for ci := range e.cfgs {
		c := &e.cfgs[ci]
		if !c.warm {
			// Never warmed: every non-write reference was warm-up.
			c.warmIF = e.ifetches
			c.warmReads = e.reads
		}
		ifetches := e.ifetches - c.warmIF
		reads := e.reads - c.warmReads
		accesses := ifetches + reads
		for li := c.lane0; li < c.lane1; li++ {
			ln := &e.lanes[li]
			st := &ln.stats
			// Every non-ignored write falls through to memory once per
			// write-through lane, so the per-lane counter the eager
			// paths used to keep is just the shared write total.
			if !e.laneCB[li] {
				st.WriteThroughWords += e.writes
			}
			st.Accesses = accesses
			st.IFetches = ifetches
			st.Reads = reads
			st.BlockMisses = c.blockMisses
			st.Misses = c.blockMisses + st.SubBlockMisses
			st.Hits = accesses - st.Misses
			st.WarmupAccesses = c.warmIF + c.warmReads
			st.WarmupMisses += c.warmupBlockMisses
			st.WriteAccesses = e.writes
			st.WriteMisses += c.writeBlockMisses
			st.Evictions = c.evictions
			// Every block ever filled is still resident at flush (tags
			// never invalidate), so filled is the resident count, and
			// each retirement or final residency contributes one block
			// of sub-blocks to the utilisation denominator.
			st.ResidencySubBlocks = (c.evictions + uint64(c.filled)) * uint64(ln.subPerBlk)
		}
	}
}

// Run drives the engine with every access from src until EOF, then
// flushes.  src should already be word-split.
func (e *Engine) Run(src trace.Source) error {
	buf := make([]trace.Ref, trace.ChunkRefs)
	for {
		n, err := trace.ReadChunk(src, buf)
		e.AccessBatch(buf[:n])
		if err == io.EOF {
			e.FlushUsage()
			return nil
		}
		if err != nil {
			return fmt.Errorf("stackdist: reading trace: %w", err)
		}
	}
}
