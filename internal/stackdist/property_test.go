// Property tests for the stack-distance invariants the one-pass engine
// relies on: inclusion (miss counts monotone in associativity and in
// set count), conservation (histogram total + cold == total
// references; hits + misses == accesses), and agreement between the
// new engine and the original Profiler oracle.
package stackdist_test

import (
	"reflect"
	"testing"

	"subcache/internal/cache"
	"subcache/internal/stackdist"
)

// demandConfig builds a demand-fetch configuration; monotonicity is a
// theorem for demand fetch (forward-fill policies can refill a small
// cache's sub-blocks on a big cache's tag hits, so only the tag-level
// inclusion survives there).
func demandConfig(net, block, sub, assoc, word int) cache.Config {
	return cache.Config{NetSize: net, BlockSize: block, SubBlockSize: sub,
		Assoc: assoc, WordSize: word}
}

// TestPropertyMonotoneInAssociativity: at a fixed set count, growing
// associativity can only lose misses -- LRU inclusion.  Set count is
// held at NetSize/(BlockSize*Assoc) = 16 by scaling NetSize with Assoc.
func TestPropertyMonotoneInAssociativity(t *testing.T) {
	const block, word, sets = 16, 2, 16
	for _, sub := range []int{2, 8, 16} {
		for seed := uint64(0); seed < 5; seed++ {
			refs := makeTrace(0xa550+seed, 5000, 0xffff, word)
			var cfgs []cache.Config
			for _, assoc := range []int{1, 2, 4, 8} {
				cfgs = append(cfgs, demandConfig(sets*block*assoc, block, sub, assoc, word))
			}
			stats := runStack(t, cfgs, refs, 1)
			for i := 1; i < len(stats); i++ {
				if stats[i].Misses > stats[i-1].Misses {
					t.Errorf("seed %d sub %d: misses grew with associativity: assoc %d -> %d: %d -> %d",
						seed, sub, cfgs[i-1].Assoc, cfgs[i].Assoc, stats[i-1].Misses, stats[i].Misses)
				}
				if stats[i].MissRatio() > stats[i-1].MissRatio() {
					t.Errorf("seed %d sub %d: miss ratio grew with associativity", seed, sub)
				}
			}
		}
	}
}

// TestPropertyMonotoneInSets: at a fixed associativity, doubling the
// set count refines every set -- set-mates at 2S are a subset of
// set-mates at S, so per-set depth only shrinks and misses can only
// fall.  This is capacity monotonicity for a direct scaled grid.
func TestPropertyMonotoneInSets(t *testing.T) {
	const block, word, assoc = 16, 2, 2
	for _, sub := range []int{2, 16} {
		for seed := uint64(0); seed < 5; seed++ {
			refs := makeTrace(0x5e75+seed, 5000, 0xffff, word)
			var cfgs []cache.Config
			for _, net := range []int{64, 128, 256, 512, 1024} {
				cfgs = append(cfgs, demandConfig(net, block, sub, assoc, word))
			}
			stats := runStack(t, cfgs, refs, 1)
			for i := 1; i < len(stats); i++ {
				if stats[i].Misses > stats[i-1].Misses {
					t.Errorf("seed %d sub %d: misses grew with capacity: net %d -> %d: %d -> %d",
						seed, sub, cfgs[i-1].NetSize, cfgs[i].NetSize, stats[i-1].Misses, stats[i].Misses)
				}
			}
		}
	}
}

// TestPropertyConservation: for every configuration the engine
// simulates, hits + misses == accesses, block + sub-block misses ==
// misses, and accesses == ifetches + reads; and for the Profiler, the
// histogram total plus cold misses equals the counted references.
func TestPropertyConservation(t *testing.T) {
	refs := makeTrace(0xc0b5, 6000, 0xffff, 2)
	cfgs := groupLanes(cache.Config{BlockSize: 16, WordSize: 2},
		[]int{64, 256}, []int{1, 4}, []int{4, 16})
	for _, st := range runStack(t, cfgs, refs, 1) {
		if st.Hits+st.Misses != st.Accesses {
			t.Errorf("hits %d + misses %d != accesses %d", st.Hits, st.Misses, st.Accesses)
		}
		if st.BlockMisses+st.SubBlockMisses != st.Misses {
			t.Errorf("block %d + sub %d != misses %d", st.BlockMisses, st.SubBlockMisses, st.Misses)
		}
		if st.IFetches+st.Reads != st.Accesses {
			t.Errorf("ifetches %d + reads %d != accesses %d", st.IFetches, st.Reads, st.Accesses)
		}
	}

	p, err := stackdist.New(16, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		p.Touch(r)
	}
	sum := p.Cold()
	for _, n := range p.Histogram() {
		sum += n
	}
	if sum != p.Total() {
		t.Errorf("histogram sum + cold = %d, want total %d", sum, p.Total())
	}
}

// TestPropertyEngineMatchesProfiler ties the new engine to the original
// oracle: with whole-block lanes and writes ignored, the engine's block
// misses at (S sets, assoc A) must equal the Profiler's Misses(A) over
// the same stream at the same set mapping.
func TestPropertyEngineMatchesProfiler(t *testing.T) {
	const block, word = 16, 2
	refs := makeTrace(0x0b5e, 6000, 0xffff, word)
	for _, sets := range []int{1, 4, 16} {
		for _, assoc := range []int{1, 2, 4} {
			cfg := demandConfig(sets*block*assoc, block, block, assoc, word)
			cfg.Write = cache.WriteIgnore
			e, err := stackdist.NewEngine([]cache.Config{cfg}, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			e.AccessBatch(refs)
			e.FlushUsage()

			p, err := stackdist.New(block, sets, false)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range refs {
				p.Touch(r)
			}
			if got, want := e.Stats(0).BlockMisses, p.Misses(assoc); got != want {
				t.Errorf("sets %d assoc %d: engine block misses %d != profiler misses %d",
					sets, assoc, got, want)
			}
		}
	}
}

// TestPropertyPartitionInvariance: merged partition statistics must be
// identical across every legal fan-out -- the engine-level half of the
// sweep's shard perturbation-freeness guarantee.
func TestPropertyPartitionInvariance(t *testing.T) {
	refs := makeTrace(0x9a47, 6000, 0xffff, 2)
	cfgs := groupLanes(cache.Config{BlockSize: 16, WordSize: 2},
		[]int{256, 1024}, []int{2, 4}, []int{4, 16})
	base := runStack(t, cfgs, refs, 1)
	// The smallest member (net 256, assoc 4) has 4 sets, the fan-out cap.
	for _, parts := range []uint64{2, 4} {
		got := runStack(t, cfgs, refs, parts)
		for i := range cfgs {
			if !reflect.DeepEqual(got[i], base[i]) {
				t.Errorf("%v: parts=%d perturbs results", cfgs[i], parts)
			}
		}
	}
}
