package stackdist

import (
	"testing"
	"testing/quick"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/rng"
	"subcache/internal/trace"
)

func ref(a addr.Addr) trace.Ref { return trace.Ref{Addr: a, Kind: trace.Read, Size: 2} }

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, false); err == nil {
		t.Error("accepted zero block size")
	}
	if _, err := New(3, 1, false); err == nil {
		t.Error("accepted non-pow2 block size")
	}
	if _, err := New(8, 0, false); err == nil {
		t.Error("accepted zero sets")
	}
	if _, err := New(8, 3, false); err == nil {
		t.Error("accepted non-pow2 sets")
	}
}

func TestDistancesSimple(t *testing.T) {
	p, err := New(8, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	// A, B, A, C, B, B
	seq := []addr.Addr{0x00, 0x08, 0x00, 0x10, 0x08, 0x08}
	wantD := []int{-1, -1, 1, -1, 2, 0}
	for i, a := range seq {
		if got := p.Touch(ref(a)); got != wantD[i] {
			t.Errorf("touch %d (%v): distance %d, want %d", i, a, got, wantD[i])
		}
	}
	if p.Total() != 6 || p.Cold() != 3 {
		t.Errorf("total=%d cold=%d", p.Total(), p.Cold())
	}
	hist := p.Histogram()
	if hist[0] != 1 || hist[1] != 1 || hist[2] != 1 {
		t.Errorf("hist = %v", hist)
	}
}

func TestMissesByCapacity(t *testing.T) {
	p, _ := New(8, 1, false)
	for _, a := range []addr.Addr{0x00, 0x08, 0x00, 0x10, 0x08, 0x08} {
		p.Touch(ref(a))
	}
	// capacity 1: hits only distance 0 -> misses = 6-1 = 5
	if got := p.Misses(1); got != 5 {
		t.Errorf("Misses(1) = %d, want 5", got)
	}
	// capacity 2: hits distances 0,1 -> misses 4
	if got := p.Misses(2); got != 4 {
		t.Errorf("Misses(2) = %d, want 4", got)
	}
	// capacity 3: hits 0,1,2 -> only cold misses remain
	if got := p.Misses(3); got != 3 {
		t.Errorf("Misses(3) = %d, want 3", got)
	}
	// capacity 0: everything misses
	if got := p.Misses(0); got != 6 {
		t.Errorf("Misses(0) = %d, want 6", got)
	}
}

func TestWritesExcludedByDefault(t *testing.T) {
	p, _ := New(8, 1, false)
	p.Touch(trace.Ref{Addr: 0, Kind: trace.Write, Size: 2})
	if p.Total() != 0 {
		t.Error("write counted with countWrites=false")
	}
	pw, _ := New(8, 1, true)
	pw.Touch(trace.Ref{Addr: 0, Kind: trace.Write, Size: 2})
	if pw.Total() != 1 {
		t.Error("write not counted with countWrites=true")
	}
}

func TestMissRatioMonotoneInCapacity(t *testing.T) {
	p, _ := New(8, 1, false)
	r := rng.New(5)
	for i := 0; i < 20000; i++ {
		p.Touch(ref(addr.Addr(r.Uint32() & 0xfff)))
	}
	prev := 1.1
	for c := 0; c < 600; c += 7 {
		m := p.MissRatio(c)
		if m > prev+1e-12 {
			t.Fatalf("miss ratio not monotone at capacity %d: %g > %g", c, m, prev)
		}
		prev = m
	}
}

// TestOracleMatchesCacheSimulator is the central cross-validation: a
// fully-associative LRU cache with block == sub-block must take exactly
// the misses the stack-distance oracle predicts, on arbitrary streams.
func TestOracleMatchesCacheSimulator(t *testing.T) {
	const blockSize = 8
	capacities := []int{1, 2, 4, 8, 16}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		refs := make([]trace.Ref, 5000)
		for i := range refs {
			refs[i] = ref(addr.AlignDown(addr.Addr(r.Uint32()&0x3ff), 2))
		}
		p, err := New(blockSize, 1, false)
		if err != nil {
			return false
		}
		for _, rr := range refs {
			p.Touch(rr)
		}
		for _, capBlocks := range capacities {
			c, err := cache.New(cache.Config{
				NetSize: capBlocks * blockSize, BlockSize: blockSize,
				SubBlockSize: blockSize, Assoc: capBlocks, WordSize: 2,
			})
			if err != nil {
				return false
			}
			for _, rr := range refs {
				c.Access(rr)
			}
			if c.Stats().Misses != p.Misses(capBlocks) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(15)); err != nil {
		t.Error(err)
	}
}

// TestSetAssociativeOracle validates the per-set profile against the
// set-associative simulator: with S sets, distance-within-set < A iff a
// hit in an A-way set-associative cache.
func TestSetAssociativeOracle(t *testing.T) {
	const blockSize, numSets = 8, 4
	f := func(seed uint64) bool {
		r := rng.New(seed)
		refs := make([]trace.Ref, 4000)
		for i := range refs {
			refs[i] = ref(addr.AlignDown(addr.Addr(r.Uint32()&0x7ff), 2))
		}
		p, err := New(blockSize, numSets, false)
		if err != nil {
			return false
		}
		for _, rr := range refs {
			p.Touch(rr)
		}
		for _, assoc := range []int{1, 2, 4, 8} {
			c, err := cache.New(cache.Config{
				NetSize: numSets * assoc * blockSize, BlockSize: blockSize,
				SubBlockSize: blockSize, Assoc: assoc, WordSize: 2,
			})
			if err != nil {
				return false
			}
			for _, rr := range refs {
				c.Access(rr)
			}
			if c.Stats().Misses != p.Misses(assoc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(10)); err != nil {
		t.Error(err)
	}
}

func TestRunAndCurve(t *testing.T) {
	p, _ := New(8, 1, false)
	refs := []trace.Ref{ref(0), ref(8), ref(0), ref(8)}
	if err := p.Run(trace.NewSliceSource(refs)); err != nil {
		t.Fatal(err)
	}
	curve := p.Curve([]int{1, 2})
	if curve[2] >= curve[1] {
		t.Errorf("curve not decreasing: %v", curve)
	}
	if curve[2] != 0.5 { // two cold misses out of four
		t.Errorf("curve[2] = %g, want 0.5", curve[2])
	}
}

func TestFootprintBlocks(t *testing.T) {
	p, _ := New(8, 1, false)
	for _, a := range []addr.Addr{0, 4, 8, 16, 16} {
		p.Touch(ref(a))
	}
	if got := p.FootprintBlocks(); got != 3 { // blocks 0, 1, 2
		t.Errorf("footprint = %d, want 3", got)
	}
}

func TestPercentile(t *testing.T) {
	p, _ := New(8, 1, false)
	// 1 cold + 9 hits at distance 0.
	for i := 0; i < 10; i++ {
		p.Touch(ref(0))
	}
	if got := p.Percentile(0.9); got != 1 {
		t.Errorf("Percentile(0.9) = %d, want 1", got)
	}
	if got := p.Percentile(1.0); got != -1 {
		t.Errorf("Percentile(1.0) = %d, want -1 (cold misses uncatchable)", got)
	}
	empty, _ := New(8, 1, false)
	if got := empty.Percentile(0.5); got != -1 {
		t.Errorf("empty Percentile = %d", got)
	}
}

func TestSortedDistances(t *testing.T) {
	p, _ := New(8, 1, false)
	for _, a := range []addr.Addr{0, 8, 0, 8, 16, 0} {
		p.Touch(ref(a))
	}
	ds := p.SortedDistances()
	for i := 1; i < len(ds); i++ {
		if ds[i] <= ds[i-1] {
			t.Fatalf("distances not sorted: %v", ds)
		}
	}
}
