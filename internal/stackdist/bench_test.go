// Benchmarks comparing the one-pass stack engine against the multipass
// family kernel on a realistic Table 7 slice: one stack group per block
// size spanning the paper's three net sizes, driven by a synthetic
// workload trace.  These are the numbers behind benchsweep's per-engine
// ns_per_ref column; run them when touching the Access walk.
package stackdist_test

import (
	"testing"

	"subcache/internal/cache"
	"subcache/internal/multipass"
	"subcache/internal/stackdist"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

// benchGroup builds the Table 7 configurations for one block size
// across the given net sizes: demand fetch, every legal sub-block
// size, 4-way (capped) LRU -- exactly the group the sweep harness
// hands to one stack engine.
func benchGroup(block int, nets []int, wordSize int) []cache.Config {
	var cfgs []cache.Config
	for _, net := range nets {
		if block > net {
			continue
		}
		assoc := 4
		if frames := net / block; frames < assoc {
			assoc = frames
		}
		for sub := 32; sub >= 2; sub /= 2 {
			if sub > block || sub < wordSize {
				continue
			}
			cfgs = append(cfgs, cache.Config{
				NetSize:      net,
				BlockSize:    block,
				SubBlockSize: sub,
				Assoc:        assoc,
				WordSize:     wordSize,
				Replacement:  cache.LRU,
				Write:        cache.WriteAllocate,
			})
		}
	}
	return cfgs
}

// benchTrace generates one word-split synthetic workload trace.
func benchTrace(b *testing.B, n int) []trace.Ref {
	b.Helper()
	arch := synth.PDP11
	prof := synth.Workloads(arch)[0]
	src, err := synth.NewWordSource(prof, n, arch.WordSize())
	if err != nil {
		b.Fatalf("NewWordSource: %v", err)
	}
	refs := make([]trace.Ref, 0, n)
	buf := make([]trace.Ref, trace.ChunkRefs)
	for {
		k, err := trace.ReadChunk(src, buf)
		refs = append(refs, buf[:k]...)
		if err != nil {
			return refs
		}
	}
}

var benchBlocks = []int{2, 16, 64}

func BenchmarkEngineAccess(b *testing.B) {
	nets := []int{64, 256, 1024}
	refs := benchTrace(b, 100000)
	for _, block := range benchBlocks {
		cfgs := benchGroup(block, nets, synth.PDP11.WordSize())
		b.Run(sizeName(block), func(b *testing.B) {
			b.SetBytes(int64(len(refs)))
			for i := 0; i < b.N; i++ {
				e, err := stackdist.NewEngine(cfgs, 1, 0)
				if err != nil {
					b.Fatal(err)
				}
				e.AccessBatch(refs)
				e.FlushUsage()
			}
		})
	}
}

// BenchmarkFamilyAccess replays the same trace through the equivalent
// multipass families (one per net size), the baseline the stack engine
// must beat.
func BenchmarkFamilyAccess(b *testing.B) {
	nets := []int{64, 256, 1024}
	refs := benchTrace(b, 100000)
	for _, block := range benchBlocks {
		cfgs := benchGroup(block, nets, synth.PDP11.WordSize())
		byNet := make(map[int][]cache.Config)
		for _, cfg := range cfgs {
			byNet[cfg.NetSize] = append(byNet[cfg.NetSize], cfg)
		}
		b.Run(sizeName(block), func(b *testing.B) {
			b.SetBytes(int64(len(refs)))
			for i := 0; i < b.N; i++ {
				for _, net := range nets {
					if len(byNet[net]) == 0 {
						continue
					}
					f, err := multipass.New(byNet[net])
					if err != nil {
						b.Fatal(err)
					}
					f.AccessBatch(refs)
					f.FlushUsage()
				}
			}
		})
	}
}

func sizeName(block int) string {
	switch block {
	case 2:
		return "block2"
	case 16:
		return "block16"
	default:
		return "block64"
	}
}
