package stackdist_test

import (
	"encoding/binary"
	"reflect"
	"testing"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/stackdist"
	"subcache/internal/trace"
)

// decodeRefs interprets raw fuzzer bytes as a reference stream: each
// 6-byte record is a little-endian 32-bit address (bounded to an 18-bit
// space so small caches see real contention), a kind byte and an
// ignored pad byte.
func decodeRefs(data []byte, wordSize int) []trace.Ref {
	const maxRefs = 2048
	refs := make([]trace.Ref, 0, len(data)/6)
	for len(data) >= 6 && len(refs) < maxRefs {
		a := addr.Addr(binary.LittleEndian.Uint32(data) & 0x3ffff)
		refs = append(refs, trace.Ref{
			Addr: addr.AlignDown(a, uint64(wordSize)),
			Kind: trace.Kind(data[4] % 3),
			Size: uint8(wordSize),
		})
		data = data[6:]
	}
	return refs
}

// decodeGroup derives a random-but-valid stack group from a shape byte:
// the fuzzer steers geometry (block size, word size, write policy,
// copy-back, warm start) as well as the trace, so equivalence is
// checked over random traces x random configuration grids.
func decodeGroup(shape byte) []cache.Config {
	base := cache.Config{
		BlockSize: 8 << (shape & 3), // 8..64
		WordSize:  2 << ((shape >> 2) & 1),
	}
	if base.WordSize > base.BlockSize {
		base.WordSize = base.BlockSize
	}
	if shape&8 != 0 {
		base.Write = cache.WriteIgnore
	}
	base.CopyBack = shape&16 != 0
	base.WarmStart = shape&32 != 0
	nets := []int{16 * base.BlockSize, 64 * base.BlockSize}
	assocs := []int{1, 4}
	if shape&64 != 0 {
		assocs = []int{2, 8}
	}
	subs := []int{base.WordSize, base.BlockSize}
	if base.BlockSize/2 >= base.WordSize {
		subs = append(subs, base.BlockSize/2)
	}
	return groupLanes(base, nets, assocs, subs)
}

// FuzzStackDistEquivalence: for arbitrary reference streams and
// fuzzer-chosen configuration grids, every counter of every lane must
// match a reference simulation, whole-stream and set-partitioned.
func FuzzStackDistEquivalence(f *testing.F) {
	// Seeds shared with internal/trace's fuzzers plus structured
	// streams that exercise eviction, write and warm-up paths.
	f.Add([]byte("0 100 2\n"))
	f.Add([]byte("2 dead 4\n1 beef 1\n"))
	f.Add([]byte("SBCT"))
	for _, shape := range []byte{0, 0x2a, 0x55, 0x7f} {
		var seq []byte
		seq = append(seq, shape)
		for i := 0; i < 96; i++ {
			var rec [6]byte
			binary.LittleEndian.PutUint32(rec[:4], uint32(i*56%4096))
			rec[4] = byte(i % 3)
			seq = append(seq, rec[:]...)
		}
		f.Add(seq)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 7 {
			return
		}
		cfgs := decodeGroup(data[0])
		refs := decodeRefs(data[1:], cfgs[0].WordSize)
		if len(refs) == 0 {
			return
		}
		want := make([]*cache.Stats, len(cfgs))
		for i, cfg := range cfgs {
			c, err := cache.New(cfg)
			if err != nil {
				t.Fatalf("cache.New(%v): %v", cfg, err)
			}
			for _, r := range refs {
				c.Access(r)
			}
			c.FlushUsage()
			want[i] = c.Stats()
		}
		partsList := []uint64{1}
		if !cfgs[0].WarmStart {
			partsList = append(partsList, 2)
		}
		for _, parts := range partsList {
			got := make([]*cache.Stats, len(cfgs))
			for i := range got {
				got[i] = &cache.Stats{}
			}
			for part := uint64(0); part < parts; part++ {
				e, err := stackdist.NewEngine(cfgs, parts, part)
				if err != nil {
					t.Fatalf("NewEngine(parts=%d): %v", parts, err)
				}
				e.AccessBatch(refs)
				e.FlushUsage()
				for i := range cfgs {
					got[i].Add(e.Stats(i))
				}
			}
			for i, cfg := range cfgs {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("%v (parts=%d): counter divergence on %d refs\n got:  %+v\n want: %+v",
						cfg, parts, len(refs), got[i], want[i])
				}
			}
		}
	})
}
