// Differential tests: the one-pass stack engine must be counter-exact
// against the reference simulator.  Every test drives the same seeded
// stream through one Engine (whole-stream and set-partitioned) and
// through one cache.Cache per configuration, then requires the full
// cache.Stats -- every counter and the bus-transaction histogram, not
// just the ratios -- to be identical.
package stackdist_test

import (
	"fmt"
	"reflect"
	"testing"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/rng"
	"subcache/internal/stackdist"
	"subcache/internal/trace"
)

// makeTrace builds a seeded word trace mixing uniform, temporal,
// sequential and spatial patterns, so hits, sub-block misses, block
// misses, evictions and warm-up transitions all occur.
func makeTrace(seed uint64, n int, addrMask uint64, wordSize int) []trace.Ref {
	r := rng.New(seed)
	hot := make([]addr.Addr, 16)
	for i := range hot {
		hot[i] = addr.Addr(r.Uint64() & addrMask)
	}
	refs := make([]trace.Ref, 0, n)
	var seq addr.Addr
	for i := 0; i < n; i++ {
		var a addr.Addr
		switch r.Intn(4) {
		case 0:
			a = addr.Addr(r.Uint64() & addrMask)
		case 1:
			a = hot[r.Intn(len(hot))]
		case 2:
			seq += addr.Addr(wordSize)
			a = seq & addr.Addr(addrMask)
		default:
			a = (hot[r.Intn(len(hot))] + addr.Addr(r.Intn(64))) & addr.Addr(addrMask)
		}
		refs = append(refs, trace.Ref{
			Addr: addr.AlignDown(a, uint64(wordSize)),
			Kind: trace.Kind(r.Intn(3)),
			Size: uint8(wordSize),
		})
	}
	return refs
}

// runReference replays refs through a fresh reference cache.
func runReference(t *testing.T, cfg cache.Config, refs []trace.Ref) *cache.Stats {
	t.Helper()
	c, err := cache.New(cfg)
	if err != nil {
		t.Fatalf("cache.New(%v): %v", cfg, err)
	}
	for _, r := range refs {
		c.Access(r)
	}
	c.FlushUsage()
	return c.Stats()
}

// runStack replays refs through one engine per set partition and merges
// the partial statistics, returning per-configuration Stats aligned
// with cfgs.  parts == 1 exercises the plain whole-stream engine.
func runStack(t *testing.T, cfgs []cache.Config, refs []trace.Ref, parts uint64) []*cache.Stats {
	t.Helper()
	out := make([]*cache.Stats, len(cfgs))
	for i := range out {
		out[i] = &cache.Stats{}
	}
	for part := uint64(0); part < parts; part++ {
		e, err := stackdist.NewEngine(cfgs, parts, part)
		if err != nil {
			t.Fatalf("NewEngine(parts=%d, part=%d): %v", parts, part, err)
		}
		e.AccessBatch(refs)
		e.FlushUsage()
		for i := range cfgs {
			out[i].Add(e.Stats(i))
		}
	}
	return out
}

// diffGroup checks one stack group against the reference simulator,
// whole-stream and (when legal) split into 2 and 4 set partitions.
func diffGroup(t *testing.T, cfgs []cache.Config, refs []trace.Ref) {
	t.Helper()
	want := make([]*cache.Stats, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = runReference(t, cfg, refs)
	}
	partitionable := true
	minSets := 1 << 62
	for _, cfg := range cfgs {
		if cfg.WarmStart {
			partitionable = false
		}
		if s := cfg.NumSets(); s < minSets {
			minSets = s
		}
	}
	partsList := []uint64{1}
	if partitionable {
		for _, p := range []uint64{2, 4} {
			if int(p) <= minSets {
				partsList = append(partsList, p)
			}
		}
	}
	for _, parts := range partsList {
		got := runStack(t, cfgs, refs, parts)
		for i, cfg := range cfgs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%v (parts=%d): stackdist diverges from reference\n got:  %+v\n want: %+v",
					cfg, parts, got[i], want[i])
			}
		}
	}
}

// groupLanes expands one base configuration into a full stack group:
// every (net, assoc) geometry crossed with sub-block sizes and fetch
// policies.  All results share a stackdist.Key with base.
func groupLanes(base cache.Config, nets []int, assocs []int, subs []int) []cache.Config {
	var cfgs []cache.Config
	for _, net := range nets {
		for _, assoc := range assocs {
			for _, sub := range subs {
				c := base
				c.NetSize = net
				c.Assoc = assoc
				c.SubBlockSize = sub
				if c.Assoc > c.NumFrames() {
					continue
				}
				cfgs = append(cfgs, c)
				if sub < base.BlockSize {
					for _, f := range []cache.Fetch{cache.LoadForward, cache.LoadForwardOptimized, cache.WholeBlock} {
						cf := c
						cf.Fetch = f
						cfgs = append(cfgs, cf)
					}
				}
			}
		}
	}
	return cfgs
}

// TestDiffStackGroups: the engine's headline capability -- one recency
// list simulating every net size and associativity of a block size at
// once -- differentially against the reference, for both word sizes.
func TestDiffStackGroups(t *testing.T) {
	cases := []struct {
		name               string
		base               cache.Config
		nets, assocs, subs []int
	}{
		{"word2/block16", cache.Config{BlockSize: 16, WordSize: 2},
			[]int{64, 256, 1024}, []int{1, 2, 4}, []int{2, 8, 16}},
		{"word4/block32", cache.Config{BlockSize: 32, WordSize: 4},
			[]int{128, 512}, []int{1, 4, 8}, []int{4, 16, 32}},
		{"word2/block8", cache.Config{BlockSize: 8, WordSize: 2},
			[]int{64, 128, 256, 512}, []int{2}, []int{2, 4, 8}},
	}
	for i, tc := range cases {
		tc, i := tc, i
		t.Run(tc.name, func(t *testing.T) {
			refs := makeTrace(0x57ac+uint64(i), 6000, 0xffff, tc.base.WordSize)
			cfgs := groupLanes(tc.base, tc.nets, tc.assocs, tc.subs)
			diffGroup(t, cfgs, refs)
		})
	}
}

// TestDiffPolicyMatrix differentially tests one group geometry under
// every Supported combination of write policy, memory-update mode and
// warm-start accounting, with fetch lanes mixed in.  Warm start and
// copy-back vary *within* the group as well as across subtests.
func TestDiffPolicyMatrix(t *testing.T) {
	var seed uint64 = 1984
	for _, write := range []cache.WritePolicy{cache.WriteAllocate, cache.WriteIgnore} {
		for _, copyBack := range []bool{false, true} {
			for _, warm := range []bool{false, true} {
				write, copyBack, warm := write, copyBack, warm
				seed++
				traceSeed := seed
				name := fmt.Sprintf("%v/copyback=%v/warm=%v", write, copyBack, warm)
				t.Run(name, func(t *testing.T) {
					b := cache.Config{BlockSize: 32, WordSize: 2, Write: write,
						CopyBack: copyBack, WarmStart: warm}
					cfgs := groupLanes(b, []int{128, 256}, []int{1, 4}, []int{4, 32})
					// Mixed-mode members: flip warm/copy-back on a couple
					// of lanes so one engine carries both settings.
					mixed := cfgs[0]
					mixed.WarmStart = !mixed.WarmStart
					mixed2 := cfgs[len(cfgs)/2]
					mixed2.CopyBack = !mixed2.CopyBack
					cfgs = append(cfgs, mixed, mixed2)
					refs := makeTrace(traceSeed, 4000, 0x3fff, 2)
					diffGroup(t, cfgs, refs)
				})
			}
		}
	}
}

// TestDiffGeometryExtremes covers the corners: direct-mapped,
// fully-associative (every block in one set, the classic Mattson
// stack), and single-set small caches where every access contends.
func TestDiffGeometryExtremes(t *testing.T) {
	cases := []struct {
		name string
		cfgs []cache.Config
	}{
		{"direct-mapped", groupLanes(cache.Config{BlockSize: 16, WordSize: 2},
			[]int{64, 128, 256}, []int{1}, []int{2, 4, 16})},
		{"fully-assoc", []cache.Config{
			{NetSize: 128, BlockSize: 64, SubBlockSize: 8, Assoc: 2, WordSize: 4},
			{NetSize: 256, BlockSize: 64, SubBlockSize: 8, Assoc: 4, WordSize: 4},
			{NetSize: 512, BlockSize: 64, SubBlockSize: 64, Assoc: 8, WordSize: 4},
			{NetSize: 512, BlockSize: 64, SubBlockSize: 16, Assoc: 8, WordSize: 4, Fetch: cache.LoadForward},
		}},
		{"single-set", []cache.Config{
			{NetSize: 64, BlockSize: 32, SubBlockSize: 8, Assoc: 2, WordSize: 2},
			{NetSize: 128, BlockSize: 32, SubBlockSize: 32, Assoc: 4, WordSize: 2},
		}},
	}
	for i, tc := range cases {
		tc, i := tc, i
		t.Run(tc.name, func(t *testing.T) {
			refs := makeTrace(0xe0+uint64(i), 5000, 0x1fff, tc.cfgs[0].WordSize)
			diffGroup(t, tc.cfgs, refs)
		})
	}
}

// TestRunDrivesSource: Engine.Run consumes a Source to EOF and flushes,
// matching a reference cache driven the same way.
func TestRunDrivesSource(t *testing.T) {
	cfg := cache.Config{NetSize: 128, BlockSize: 16, SubBlockSize: 4, Assoc: 2, WordSize: 2}
	refs := makeTrace(33, 3000, 0xfff, 2)
	e, err := stackdist.NewEngine([]cache.Config{cfg}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(trace.NewSliceSource(refs)); err != nil {
		t.Fatal(err)
	}
	want := runReference(t, cfg, refs)
	if !reflect.DeepEqual(e.Stats(0), want) {
		t.Errorf("Run diverges:\n got:  %+v\n want: %+v", e.Stats(0), want)
	}
}

// TestSupportedRefusals: the engine must refuse, with a descriptive
// error, every configuration whose exact simulation stack analysis
// cannot deliver -- never approximate.
func TestSupportedRefusals(t *testing.T) {
	ok := cache.Config{NetSize: 256, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2}
	if err := stackdist.Supported(ok); err != nil {
		t.Fatalf("eligible config refused: %v", err)
	}
	fifo := ok
	fifo.Replacement = cache.FIFO
	if err := stackdist.Supported(fifo); err == nil {
		t.Error("FIFO accepted; inclusion fails for non-LRU replacement")
	}
	random := ok
	random.Replacement = cache.Random
	if err := stackdist.Supported(random); err == nil {
		t.Error("Random accepted; inclusion fails for non-LRU replacement")
	}
	prefetch := ok
	prefetch.PrefetchOBL = true
	if err := stackdist.Supported(prefetch); err == nil {
		t.Error("prefetch accepted; tag dynamics depend on sub-block validity")
	}
	noAlloc := ok
	noAlloc.Write = cache.WriteNoAllocate
	if err := stackdist.Supported(noAlloc); err == nil {
		t.Error("write-no-allocate accepted; recency depends on sub-block validity")
	}
	invalid := ok
	invalid.SubBlockSize = 3
	if err := stackdist.Supported(invalid); err == nil {
		t.Error("invalid geometry accepted")
	}
}

// TestNewEngineRejections: construction-time refusals -- mixed groups,
// empty input, and illegal partitions.
func TestNewEngineRejections(t *testing.T) {
	ok := cache.Config{NetSize: 256, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2}
	if _, err := stackdist.NewEngine(nil, 1, 0); err == nil {
		t.Error("empty group accepted")
	}
	otherBlock := ok
	otherBlock.BlockSize = 32
	otherBlock.SubBlockSize = 32
	if _, err := stackdist.NewEngine([]cache.Config{ok, otherBlock}, 1, 0); err == nil {
		t.Error("mixed block sizes accepted in one stack group")
	}
	fifo := ok
	fifo.Replacement = cache.FIFO
	if _, err := stackdist.NewEngine([]cache.Config{fifo}, 1, 0); err == nil {
		t.Error("unsupported replacement accepted")
	}
	if _, err := stackdist.NewEngine([]cache.Config{ok}, 3, 0); err == nil {
		t.Error("non-power-of-two partition count accepted")
	}
	if _, err := stackdist.NewEngine([]cache.Config{ok}, 2, 2); err == nil {
		t.Error("out-of-range partition accepted")
	}
	warm := ok
	warm.WarmStart = true
	if _, err := stackdist.NewEngine([]cache.Config{warm}, 2, 0); err == nil {
		t.Error("warm-start config accepted with set partitioning")
	}
	tiny := ok
	tiny.NetSize = 16
	tiny.Assoc = 1
	if _, err := stackdist.NewEngine([]cache.Config{tiny}, 2, 0); err == nil {
		t.Error("partition count exceeding the set count accepted")
	}
}

// TestLaneAccessors: lanes preserve input order and expose their
// configurations and footprint.
func TestLaneAccessors(t *testing.T) {
	cfgs := groupLanes(cache.Config{BlockSize: 16, WordSize: 2},
		[]int{128, 256}, []int{2}, []int{4, 16})
	e, err := stackdist.NewEngine(cfgs, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Lanes() != len(cfgs) {
		t.Fatalf("Lanes() = %d, want %d", e.Lanes(), len(cfgs))
	}
	for i, cfg := range cfgs {
		if e.Config(i) != cfg {
			t.Errorf("Config(%d) = %v, want %v", i, e.Config(i), cfg)
		}
	}
	refs := makeTrace(7, 2000, 0xfff, 2)
	e.AccessBatch(refs)
	if e.Footprint() == 0 {
		t.Error("Footprint() = 0 after a 2000-reference trace")
	}
}
