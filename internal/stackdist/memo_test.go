package stackdist

// Differential fuzz for the stack engine's same-block memo: the packed
// batch path (whose hash-table lookups are usually short-circuited by
// the memo) against a probe-every-reference build with the memo
// invalidated before every access, so each reference takes the full
// open-addressing probe.  Every configuration's statistics must match.

import (
	"math/rand"
	"reflect"
	"testing"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/trace"
)

func fuzzTrace(r *rand.Rand, n, wordSize int, footprint addr.Addr) []trace.Ref {
	refs := make([]trace.Ref, 0, n)
	pos := addr.Addr(0)
	for len(refs) < n {
		if r.Intn(4) == 0 {
			pos = addr.Addr(r.Int63n(int64(footprint))) &^ addr.Addr(wordSize-1)
		}
		run := 1 + r.Intn(8)
		for i := 0; i < run && len(refs) < n; i++ {
			kind := trace.Read
			switch r.Intn(10) {
			case 0, 1, 2:
				kind = trace.IFetch
			case 3, 4:
				kind = trace.Write
			}
			refs = append(refs, trace.Ref{Addr: pos % footprint, Kind: kind, Size: uint8(wordSize)})
			pos += addr.Addr(wordSize)
		}
	}
	return refs
}

// fuzzGroup draws one stack group: a shared Key (block size, write
// policy, LRU) with net size, associativity, sub-block size, fetch
// policy, copy-back and warm start varying across members.
func fuzzGroup(r *rand.Rand) []cache.Config {
	base := cache.Config{
		BlockSize: []int{8, 32}[r.Intn(2)],
		WordSize:  2,
		Write:     []cache.WritePolicy{cache.WriteAllocate, cache.WriteIgnore}[r.Intn(2)],
	}
	var cfgs []cache.Config
	for _, net := range []int{256, 1024} {
		c := base
		c.NetSize = net
		c.Assoc = []int{1, 2, 4}[r.Intn(3)]
		c.CopyBack = r.Intn(2) == 0
		c.WarmStart = r.Intn(4) == 0
		for sub := c.BlockSize; sub >= c.WordSize; sub /= 2 {
			m := c
			m.SubBlockSize = sub
			m.Fetch = []cache.Fetch{cache.DemandSubBlock, cache.LoadForward,
				cache.LoadForwardOptimized, cache.WholeBlock}[r.Intn(4)]
			cfgs = append(cfgs, m)
		}
	}
	return cfgs
}

func TestEngineMemoDifferentialFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(0x57ac4))
	for trial := 0; trial < 25; trial++ {
		cfgs := fuzzGroup(r)
		memo, err := NewEngine(cfgs, 1, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		probe, err := NewEngine(cfgs, 1, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		refs := fuzzTrace(r, 4000, cfgs[0].WordSize, addr.Addr(8*1024))
		packed := make([]uint64, 512)
		shift := addr.Log2(uint64(cfgs[0].WordSize))
		for off := 0; off < len(refs); off += 512 {
			end := off + 512
			if end > len(refs) {
				end = len(refs)
			}
			trace.PackRefs(packed, refs[off:end], shift)
			memo.AccessBatchPacked(refs[off:end], packed[:end-off])
		}
		for _, ref := range refs {
			probe.memoNi = nilNode // every reference takes the hash probe
			probe.Access(ref)
		}
		memo.FlushUsage()
		probe.FlushUsage()
		for i := range cfgs {
			if !reflect.DeepEqual(memo.Stats(i), probe.Stats(i)) {
				t.Fatalf("trial %d lane %d (%v): memoized packed stats %+v != probe-every-reference stats %+v",
					trial, i, cfgs[i], *memo.Stats(i), *probe.Stats(i))
			}
		}
	}
}
