package busim

import (
	"math"
	"testing"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/membus"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

func cfg1024() cache.Config {
	return cache.Config{NetSize: 1024, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2}
}

func workloadAccesses(t *testing.T, name string, n int) []trace.Ref {
	t.Helper()
	prof, ok := synth.ProfileByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	refs, err := synth.Generate(prof, n)
	if err != nil {
		t.Fatal(err)
	}
	words, err := trace.SplitAll(trace.NewSliceSource(refs), 2)
	if err != nil {
		t.Fatal(err)
	}
	return words
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("accepted empty processor list")
	}
	if _, err := Run(Config{}, []Processor{{Name: "p", Config: cache.Config{}}}); err == nil {
		t.Error("accepted invalid cache config")
	}
}

func TestSingleProcessorNoContention(t *testing.T) {
	// One processor: stall = misses' transfer time only; no queueing.
	accesses := []trace.Ref{
		{Addr: 0x100, Kind: trace.Read, Size: 2},
		{Addr: 0x100, Kind: trace.Read, Size: 2},
		{Addr: 0x102, Kind: trace.Read, Size: 2},
	}
	res, err := Run(Config{CacheCycles: 1, BusCyclesPerWord: 4},
		[]Processor{{Name: "p0", Config: cfg1024(), Accesses: accesses}})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Processors[0]
	// 3 cache cycles + one 4-word (8-byte sub-block / 2-byte word)
	// transfer at 4 cycles/word = 16 stall cycles.
	if p.Accesses != 3 {
		t.Errorf("accesses = %d", p.Accesses)
	}
	if p.StallCycles != 16 {
		t.Errorf("stall = %g, want 16", p.StallCycles)
	}
	if p.Cycles != 19 {
		t.Errorf("cycles = %g, want 19", p.Cycles)
	}
	if res.BusBusyCycles != 16 {
		t.Errorf("bus busy = %g, want 16", res.BusBusyCycles)
	}
}

func TestPerfectCacheNeverStalls(t *testing.T) {
	// Repeatedly hitting one word: exactly one miss.
	var accesses []trace.Ref
	for i := 0; i < 100; i++ {
		accesses = append(accesses, trace.Ref{Addr: 0x100, Kind: trace.Read, Size: 2})
	}
	res, err := Run(Config{}, []Processor{{Name: "p", Config: cfg1024(), Accesses: accesses}})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Processors[0]
	if p.MissRatio != 0.01 {
		t.Errorf("miss ratio = %g", p.MissRatio)
	}
	// CPA approaches CacheCycles.
	if p.CPA > 1.2 {
		t.Errorf("CPA = %g, want ~1", p.CPA)
	}
}

func TestContentionSlowsProcessors(t *testing.T) {
	// Two processors streaming disjoint data: every access misses a
	// sub-block, all transfers serialise on the bus.
	mk := func(base addr.Addr) []trace.Ref {
		var out []trace.Ref
		for i := 0; i < 500; i++ {
			out = append(out, trace.Ref{Addr: base + addr.Addr(8*i), Kind: trace.Read, Size: 2})
		}
		return out
	}
	cfg := Config{CacheCycles: 1, BusCyclesPerWord: 4}
	solo, err := Run(cfg, []Processor{{Name: "a", Config: cfg1024(), Accesses: mk(0)}})
	if err != nil {
		t.Fatal(err)
	}
	duo, err := Run(cfg, []Processor{
		{Name: "a", Config: cfg1024(), Accesses: mk(0)},
		{Name: "b", Config: cfg1024(), Accesses: mk(1 << 20)},
	})
	if err != nil {
		t.Fatal(err)
	}
	soloCPA := solo.Processors[0].CPA
	duoCPA := duo.Processors[0].CPA
	if duoCPA <= soloCPA {
		t.Errorf("no slowdown under contention: solo %g, duo %g", soloCPA, duoCPA)
	}
	// A saturated bus serves two miss streams at roughly half speed
	// each: makespan close to 2x the solo time.
	if duo.MakespanCycles < 1.7*solo.MakespanCycles {
		t.Errorf("makespan %g vs solo %g: expected near-2x under saturation",
			duo.MakespanCycles, solo.MakespanCycles)
	}
	if duo.BusUtilization < 0.95 {
		t.Errorf("bus utilization = %g, want saturated", duo.BusUtilization)
	}
}

func TestCachesRelieveTheBus(t *testing.T) {
	// The paper's argument: with good caches, more processors fit.
	// Four processors with 1KB caches must beat four with 64B caches on
	// aggregate throughput.
	run := func(net int) float64 {
		var procs []Processor
		for i, name := range []string{"ED", "ROFF", "SIMP", "PLOT"} {
			cfg := cache.Config{NetSize: net, BlockSize: 16, SubBlockSize: 8,
				Assoc: 4, WordSize: 2}
			procs = append(procs, Processor{
				Name: name, Config: cfg,
				Accesses: workloadAccesses(t, name, 20000),
			})
			_ = i
		}
		res, err := Run(Config{CacheCycles: 1, BusCyclesPerWord: 4}, procs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	big, small := run(1024), run(64)
	if big <= small {
		t.Errorf("bigger caches did not raise throughput: %g vs %g", big, small)
	}
}

// TestAnalyticModelAgreement cross-validates the discrete-event
// simulation against membus.SharedBus: below saturation, measured bus
// utilization must track the analytic demand within a modest margin.
func TestAnalyticModelAgreement(t *testing.T) {
	accesses := workloadAccesses(t, "ED", 40000)
	cfg := Config{CacheCycles: 1, BusCyclesPerWord: 2}
	res, err := Run(cfg, []Processor{{Name: "p", Config: cfg1024(), Accesses: accesses}})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Processors[0]
	traffic := float64(res.BusBusyCycles) / cfg.BusCyclesPerWord / float64(p.Accesses)

	// Analytic: access rate = accesses/makespan; each word transfer
	// occupies BusCyclesPerWord cycles of a bus with capacity
	// 1/BusCyclesPerWord words/cycle.
	bus := membus.SharedBus{WordsPerSecond: 1 / cfg.BusCyclesPerWord, Model: membus.Linear{}}
	rate := float64(p.Accesses) / res.MakespanCycles
	predicted := bus.Demand(1, rate, traffic, 4)
	if math.Abs(predicted-res.BusUtilization) > 0.02 {
		t.Errorf("analytic demand %.4f vs measured utilization %.4f", predicted, res.BusUtilization)
	}
}

// TestDeterminism: repeated runs are identical.
func TestDeterminism(t *testing.T) {
	accesses := workloadAccesses(t, "GREP", 20000)
	run := func() *Result {
		res, err := Run(Config{}, []Processor{
			{Name: "a", Config: cfg1024(), Accesses: accesses},
			{Name: "b", Config: cfg1024(), Accesses: accesses},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MakespanCycles != b.MakespanCycles || a.BusBusyCycles != b.BusBusyCycles {
		t.Error("simulation not deterministic")
	}
}

// TestNibbleBusSpeedsTransfers: pricing with the nibble model must
// shorten the makespan of a miss-heavy run.
func TestNibbleBusSpeedsTransfers(t *testing.T) {
	accesses := workloadAccesses(t, "SIMP", 20000)
	linear, err := Run(Config{Model: membus.Linear{}},
		[]Processor{{Name: "p", Config: cfg1024(), Accesses: accesses}})
	if err != nil {
		t.Fatal(err)
	}
	nibble, err := Run(Config{Model: membus.PaperNibble},
		[]Processor{{Name: "p", Config: cfg1024(), Accesses: accesses}})
	if err != nil {
		t.Fatal(err)
	}
	if nibble.MakespanCycles >= linear.MakespanCycles {
		t.Errorf("nibble bus no faster: %g vs %g", nibble.MakespanCycles, linear.MakespanCycles)
	}
}

// TestWritesDoNotStall: with write-allocate, writes may move data but
// must not be counted as processor accesses, and the run must finish.
func TestWritesPassThrough(t *testing.T) {
	accesses := []trace.Ref{
		{Addr: 0x100, Kind: trace.Write, Size: 2},
		{Addr: 0x100, Kind: trace.Read, Size: 2},
	}
	res, err := Run(Config{}, []Processor{{Name: "p", Config: cfg1024(), Accesses: accesses}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processors[0].Accesses != 1 {
		t.Errorf("counted accesses = %d, want 1 (write excluded)", res.Processors[0].Accesses)
	}
}

// TestRunDoesNotMutateProcessors: Processor values must be reusable
// across runs (Run keeps its cursor state in private nodes).
func TestRunDoesNotMutateProcessors(t *testing.T) {
	accesses := workloadAccesses(t, "LS", 5000)
	procs := []Processor{{Name: "p", Config: cfg1024(), Accesses: accesses}}
	a, err := Run(Config{}, procs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanCycles != b.MakespanCycles {
		t.Error("second run over the same Processor values diverged")
	}
}
