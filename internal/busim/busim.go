// Package busim is a discrete-event simulation of several cached
// processors sharing one memory bus -- the system §1 of the paper
// worries about: "bus traffic can seriously limit system performance.
// This problem is particularly acute if the bus is to be shared among
// two or more microprocessors", plus "the contention between the
// processor, which wants to use the cache, and the bus which is loading
// and unloading it".
//
// Each processor executes a word-access stream through its own cache:
// hits cost one processor cycle; misses stall the processor while the
// miss's bus transaction is arbitrated (FIFO by request time) and
// transferred (priced by a membus.CostModel in bus cycles per
// single-word transfer).  The simulation is exact for this model: each
// processor's next bus request is a deterministic function of its own
// progress, so the global ordering is resolved by always granting the
// earliest outstanding request.
//
// The analytic membus.SharedBus model predicts saturation from traffic
// ratios alone; busim measures it, queueing delays included, and the
// two are cross-validated in the tests.
package busim

import (
	"fmt"
	"math"

	"subcache/internal/cache"
	"subcache/internal/membus"
	"subcache/internal/trace"
)

// Processor describes one node: a cache configuration and the word
// accesses driving it (pre-split to the data-path width).
type Processor struct {
	Name     string
	Config   cache.Config
	Accesses []trace.Ref
}

// Config parameterises the system.
type Config struct {
	// CacheCycles is the processor-visible cost of a cache hit (and of
	// issuing any access), in cycles.  Default 1.
	CacheCycles float64
	// BusCyclesPerWord converts the cost model's single-word unit to
	// bus cycles.  Default 4 (memory much slower than the cache, as in
	// the paper's t_cache << t_mem discussion).
	BusCyclesPerWord float64
	// Model prices a transaction of w words; default Linear.
	Model membus.CostModel
}

func (c *Config) fill() {
	if c.CacheCycles == 0 {
		c.CacheCycles = 1
	}
	if c.BusCyclesPerWord == 0 {
		c.BusCyclesPerWord = 4
	}
	if c.Model == nil {
		c.Model = membus.Linear{}
	}
}

// ProcessorResult reports one node's outcome.
type ProcessorResult struct {
	Name string
	// Accesses is the number of counted word accesses executed.
	Accesses uint64
	// Cycles is the processor's completion time.
	Cycles float64
	// StallCycles is time spent waiting for the bus (queueing +
	// transfer).
	StallCycles float64
	// MissRatio is the cache's resulting miss ratio.
	MissRatio float64
	// CPA is cycles per access: CacheCycles at best, growing with miss
	// ratio and bus contention.
	CPA float64
}

// Result reports the whole system's outcome.
type Result struct {
	Processors []ProcessorResult
	// MakespanCycles is when the last processor finished.
	MakespanCycles float64
	// BusBusyCycles is total bus occupancy; BusUtilization divides by
	// the makespan.
	BusBusyCycles  float64
	BusUtilization float64
	// Throughput is aggregate accesses per cycle, the system-level
	// figure of merit (saturates as the bus does).
	Throughput float64
}

// node is the per-processor simulation state.
type node struct {
	proc  Processor
	cache *cache.Cache
	pos   int     // next access index
	clock float64 // local time
	stall float64

	// Pending bus request, valid when wantWords > 0.
	reqTime   float64
	wantWords int
	done      bool
}

// Run simulates the system to completion.
func Run(cfg Config, procs []Processor) (*Result, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("busim: no processors")
	}
	cfg.fill()
	nodes := make([]*node, len(procs))
	for i, p := range procs {
		c, err := cache.New(p.Config)
		if err != nil {
			return nil, fmt.Errorf("busim: processor %s: %w", p.Name, err)
		}
		nodes[i] = &node{proc: p, cache: c}
		nodes[i].advance(cfg)
	}

	var busFree, busBusy float64
	for {
		// Grant the earliest outstanding request (FIFO arbitration).
		best := -1
		for i, n := range nodes {
			if n.done || n.wantWords == 0 {
				continue
			}
			if best == -1 || n.reqTime < nodes[best].reqTime {
				best = i
			}
		}
		if best == -1 {
			break // no more bus work: all nodes ran to completion
		}
		n := nodes[best]
		grant := math.Max(busFree, n.reqTime)
		duration := cfg.Model.Cost(n.wantWords) * cfg.BusCyclesPerWord
		completion := grant + duration
		busFree = completion
		busBusy += duration
		n.stall += completion - n.reqTime
		n.clock = completion
		n.wantWords = 0
		n.advance(cfg)
	}

	res := &Result{Processors: make([]ProcessorResult, len(nodes))}
	var totalAccesses uint64
	for i, n := range nodes {
		st := n.cache.Stats()
		res.Processors[i] = ProcessorResult{
			Name:        n.proc.Name,
			Accesses:    st.Accesses,
			Cycles:      n.clock,
			StallCycles: n.stall,
			MissRatio:   st.MissRatio(),
		}
		if st.Accesses > 0 {
			res.Processors[i].CPA = n.clock / float64(st.Accesses)
		}
		res.MakespanCycles = math.Max(res.MakespanCycles, n.clock)
		totalAccesses += st.Accesses
	}
	res.BusBusyCycles = busBusy
	if res.MakespanCycles > 0 {
		res.BusUtilization = busBusy / res.MakespanCycles
		res.Throughput = float64(totalAccesses) / res.MakespanCycles
	}
	return res, nil
}

// advance runs the node's processor until its next miss (recording the
// pending bus request) or to the end of its stream.
func (n *node) advance(cfg Config) {
	for n.pos < len(n.proc.Accesses) {
		r := n.proc.Accesses[n.pos]
		n.pos++
		n.clock += cfg.CacheCycles
		res := n.cache.Access(r)
		if res.SubBlocksLoaded > 0 && r.Kind.Countable() {
			// A miss: the processor stalls at its current time until
			// the transfer completes.
			n.reqTime = n.clock
			n.wantWords = res.SubBlocksLoaded * n.proc.Config.WordsPerSubBlock()
			return
		}
	}
	n.cache.FlushUsage()
	n.done = true
}
