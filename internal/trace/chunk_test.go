package trace

import (
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"subcache/internal/addr"
)

func chunkRefs(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = Ref{Addr: addr.Addr(0x1000 + 2*i), Kind: Read, Size: 2}
	}
	return out
}

// TestReadChunkBatching: a 10-reference stream through 4-reference
// buffers yields 4, 4, then 2 alongside io.EOF -- the final partial
// chunk arrives with the sentinel, never after it.
func TestReadChunkBatching(t *testing.T) {
	refs := chunkRefs(10)
	src := NewSliceSource(refs)
	buf := make([]Ref, 4)

	for i := 0; i < 2; i++ {
		n, err := ReadChunk(src, buf)
		if n != 4 || err != nil {
			t.Fatalf("chunk %d: got (%d, %v), want (4, nil)", i, n, err)
		}
		if !reflect.DeepEqual(buf[:n], refs[4*i:4*i+4]) {
			t.Fatalf("chunk %d: wrong contents", i)
		}
	}
	n, err := ReadChunk(src, buf)
	if n != 2 || err != io.EOF {
		t.Fatalf("final chunk: got (%d, %v), want (2, io.EOF)", n, err)
	}
	if !reflect.DeepEqual(buf[:n], refs[8:]) {
		t.Fatal("final chunk: wrong contents")
	}
	if n, err = ReadChunk(src, buf); n != 0 || err != io.EOF {
		t.Fatalf("after EOF: got (%d, %v), want (0, io.EOF)", n, err)
	}
}

// TestReadChunkExactMultiple: when the stream length divides the buffer
// size the EOF arrives on its own with an empty chunk.
func TestReadChunkExactMultiple(t *testing.T) {
	src := NewSliceSource(chunkRefs(8))
	buf := make([]Ref, 4)
	for i := 0; i < 2; i++ {
		if n, err := ReadChunk(src, buf); n != 4 || err != nil {
			t.Fatalf("chunk %d: got (%d, %v)", i, n, err)
		}
	}
	if n, err := ReadChunk(src, buf); n != 0 || err != io.EOF {
		t.Fatalf("got (%d, %v), want (0, io.EOF)", n, err)
	}
}

// TestReadChunkMatchesSplitAll: concatenating chunks read off a
// splitter reproduces SplitAll exactly, for buffer sizes that do and do
// not divide the stream -- the equivalence the chunk-broadcast sweep
// executor relies on.
func TestReadChunkMatchesSplitAll(t *testing.T) {
	mixed := []Ref{
		{Addr: 0x1000, Kind: IFetch, Size: 4},
		{Addr: 0x2001, Kind: Read, Size: 2},
		{Addr: 0x3003, Kind: Write, Size: 8},
		{Addr: 0x4000, Kind: Read, Size: 1},
	}
	var stream []Ref
	for i := 0; i < 25; i++ {
		for _, r := range mixed {
			r.Addr += addr.Addr(64 * i)
			stream = append(stream, r)
		}
	}
	want, err := SplitAll(NewSliceSource(stream), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, bufSize := range []int{1, 3, 7, 64, len(want), len(want) + 9} {
		sp := NewSplitter(NewSliceSource(stream), 2)
		buf := make([]Ref, bufSize)
		var got []Ref
		for {
			n, err := ReadChunk(sp, buf)
			got = append(got, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("bufSize=%d: chunked stream differs from SplitAll (%d vs %d refs)",
				bufSize, len(got), len(want))
		}
	}
}

// TestReadChunkPropagatesErrors: a mid-stream failure surfaces with the
// count of good references read before it.
func TestReadChunkPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	i := 0
	src := FuncSource(func() (Ref, error) {
		if i == 3 {
			return Ref{}, boom
		}
		i++
		return Ref{Addr: addr.Addr(i), Size: 1}, nil
	})
	buf := make([]Ref, 8)
	if n, err := ReadChunk(src, buf); n != 3 || err != boom {
		t.Fatalf("got (%d, %v), want (3, boom)", n, err)
	}
}

// TestTextReaderLatchesErrors: after a parse error the reader must keep
// returning that error instead of silently resuming on the next line,
// which would drop the bad record from the trace.
func TestTextReaderLatchesErrors(t *testing.T) {
	r := NewTextReader(strings.NewReader("2 1000 2\nbogus line here\n0 2000 2\n"))
	if _, err := r.Next(); err != nil {
		t.Fatalf("good line: %v", err)
	}
	_, err := r.Next()
	if err == nil {
		t.Fatal("bad line accepted")
	}
	for i := 0; i < 3; i++ {
		ref, again := r.Next()
		if again != err {
			t.Fatalf("call %d after error: got %v, want the latched %v", i, again, err)
		}
		if (ref != Ref{}) {
			t.Fatalf("call %d after error: yielded record %v past the failure", i, ref)
		}
	}
}

// TestTextReaderLatchKinds: every parse-failure class latches -- field
// count, label, address, size.
func TestTextReaderLatchKinds(t *testing.T) {
	for _, tc := range []struct{ name, line string }{
		{"fields", "0 1 2 3 4"},
		{"label", "x 1000 2"},
		{"badlabel", "9 1000 2"},
		{"address", "0 zz 2"},
		{"size", "0 1000 zz"},
		{"zerosize", "0 1000 0"},
	} {
		r := NewTextReader(strings.NewReader(tc.line + "\n0 4000 2\n"))
		_, err := r.Next()
		if err == nil {
			t.Errorf("%s: bad line %q accepted", tc.name, tc.line)
			continue
		}
		if _, again := r.Next(); again != err {
			t.Errorf("%s: error not latched: %v then %v", tc.name, err, again)
		}
	}
}
