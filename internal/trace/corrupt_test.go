package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"subcache/internal/addr"
)

// binTrace serialises refs to .strc bytes for corruption tests.
func binTrace(t *testing.T, refs []Ref) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewBinWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func corruptTestRefs(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = Ref{Addr: addr.Addr(0x2000 + 2*i), Kind: Kind(i % 3), Size: 2}
	}
	return out
}

// drainChunks reads src through ReadChunk until it errors, returning
// the refs recovered and the terminal error -- the access pattern the
// sweep executors use.
func drainChunks(src Source, chunkSize int) ([]Ref, error) {
	var out []Ref
	buf := make([]Ref, chunkSize)
	for {
		n, err := ReadChunk(src, buf)
		out = append(out, buf[:n]...)
		if err != nil {
			return out, err
		}
	}
}

// TestBinReaderTruncatedChunked: a .strc stream cut mid-record fails
// under chunked reads with an error naming the record and byte offset,
// yields only the complete records before the cut, and latches.
func TestBinReaderTruncatedChunked(t *testing.T) {
	refs := corruptTestRefs(20)
	data := binTrace(t, refs)
	cut := data[:len(data)-3] // mid-record: 19 whole records + 7 bytes

	br, err := NewBinReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := drainChunks(br, 7)
	if rerr == nil || rerr == io.EOF {
		t.Fatalf("truncated stream ended with %v, want an attributed error", rerr)
	}
	if !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Errorf("cause = %v, want io.ErrUnexpectedEOF", rerr)
	}
	wantMsg := "record 19 (offset 206)" // header 16 + 19*10
	if !strings.Contains(rerr.Error(), wantMsg) {
		t.Errorf("error %q does not attribute %q", rerr, wantMsg)
	}
	if len(got) != 19 {
		t.Errorf("recovered %d refs before the cut, want 19", len(got))
	}
	// Latched: further chunked reads keep failing identically.
	if _, again := ReadChunk(br, make([]Ref, 4)); again != rerr {
		t.Errorf("error not latched: %v then %v", rerr, again)
	}
}

// TestBinReaderCorruptKindChunked: a flipped kind byte mid-stream is
// caught at its exact record, and the reader never resumes past it.
func TestBinReaderCorruptKindChunked(t *testing.T) {
	refs := corruptTestRefs(12)
	data := binTrace(t, refs)
	// Record 5's kind byte sits at header + 5*recordLen.
	data[16+5*10] = 0xEE

	br, err := NewBinReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := drainChunks(br, 5)
	if rerr == nil || errors.Is(rerr, io.EOF) {
		t.Fatalf("corrupt stream ended with %v, want an error", rerr)
	}
	if !strings.Contains(rerr.Error(), "record 5 (offset 66)") {
		t.Errorf("error %q does not attribute record 5 at offset 66", rerr)
	}
	if len(got) != 5 {
		t.Errorf("recovered %d refs before the corruption, want 5", len(got))
	}
	if _, again := br.Next(); again != rerr {
		t.Errorf("error not latched: %v then %v", rerr, again)
	}
}

// TestTextReaderLatchedChunked: the text reader's latched parse error
// (PR 2) holds under chunked reads -- after a bad line, no chunk ever
// yields further refs.
func TestTextReaderLatchedChunked(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 10; i++ {
		b.WriteString("0 1000 2\n")
	}
	b.WriteString("banana\n")
	for i := 0; i < 10; i++ {
		b.WriteString("0 1000 2\n")
	}

	tr := NewTextReader(strings.NewReader(b.String()))
	got, rerr := drainChunks(tr, 4)
	if rerr == nil || errors.Is(rerr, io.EOF) {
		t.Fatalf("corrupt text ended with %v, want a parse error", rerr)
	}
	if !strings.Contains(rerr.Error(), "line 11") {
		t.Errorf("error %q does not attribute line 11", rerr)
	}
	if len(got) != 10 {
		t.Errorf("recovered %d refs before the bad line, want 10", len(got))
	}
	if _, again := ReadChunk(tr, make([]Ref, 4)); again != rerr {
		t.Errorf("error not latched under chunked reads: %v then %v", rerr, again)
	}
}
