// Package trace defines the memory-reference trace model used
// throughout the simulator: the Ref record, streaming Source interfaces,
// composable transformations (data-path splitting, filtering, limiting)
// and text and binary file formats.
//
// The paper drives its simulations from address traces of real programs
// (Tables 2–5), truncated to one million references with no context
// switches.  This package provides the identical interface for both
// file-backed traces and the synthetic workload generators in
// internal/synth.
package trace

import (
	"context"
	"errors"
	"fmt"
	"io"

	"subcache/internal/addr"
)

// Kind classifies a memory reference.  The paper computes its headline
// metrics over instruction fetches and data reads only ("write-back
// issues were filtered out of our results"); writes are carried in the
// trace so that cache implementations may maintain correct contents, but
// are excluded from miss- and traffic-ratio accounting.
type Kind uint8

const (
	// IFetch is an instruction fetch.
	IFetch Kind = iota
	// Read is a data read.
	Read
	// Write is a data write.
	Write
	numKinds
)

// String returns the conventional single-word name of the kind.
func (k Kind) String() string {
	switch k {
	case IFetch:
		return "ifetch"
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Countable reports whether references of this kind contribute to the
// paper's miss and traffic ratios (instruction fetches and reads do;
// writes do not).
func (k Kind) Countable() bool { return k == IFetch || k == Read }

// Ref is one memory reference: a byte address, an access kind and the
// number of bytes requested.  Size is the processor-level request size
// (e.g. a 4-byte VAX longword load); the data-path Splitter turns such
// requests into word-sized memory accesses.
type Ref struct {
	Addr addr.Addr
	Kind Kind
	Size uint8
}

// String formats the reference as "<kind> <addr>/<size>".
func (r Ref) String() string {
	return fmt.Sprintf("%s %s/%d", r.Kind, r.Addr, r.Size)
}

// Source is a stream of references.  Next returns io.EOF after the last
// reference.  Implementations need not be safe for concurrent use; the
// sweep harness gives each simulation its own Source.
type Source interface {
	Next() (Ref, error)
}

// ByteCounter is implemented by byte-backed sources (the file readers)
// that can report how many on-disk bytes they have decoded.  The sweep
// executors publish it as the telemetry bytes_read counter once a
// source's stream ends; synthetic sources do not implement it and
// count zero.
type ByteCounter interface {
	Bytes() uint64
}

// SliceSource adapts an in-memory slice of references to a Source.
type SliceSource struct {
	refs []Ref
	pos  int
}

// NewSliceSource returns a Source that yields refs in order.  The slice
// is not copied; the caller must not mutate it while the source is in
// use.
func NewSliceSource(refs []Ref) *SliceSource {
	return &SliceSource{refs: refs}
}

// Next implements Source.
func (s *SliceSource) Next() (Ref, error) {
	if s.pos >= len(s.refs) {
		return Ref{}, io.EOF
	}
	r := s.refs[s.pos]
	s.pos++
	return r, nil
}

// Reset rewinds the source to the beginning so the same slice can be
// replayed through another cache configuration.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of references in the underlying slice.
func (s *SliceSource) Len() int { return len(s.refs) }

// Limit wraps src, terminating the stream after n references.  The
// paper's runs use n = 1,000,000.
func Limit(src Source, n int) Source { return &limitSource{src: src, left: n} }

type limitSource struct {
	src  Source
	left int
}

func (l *limitSource) Next() (Ref, error) {
	if l.left <= 0 {
		return Ref{}, io.EOF
	}
	r, err := l.src.Next()
	if err != nil {
		return Ref{}, err
	}
	l.left--
	return r, nil
}

// FilterKinds wraps src, passing through only references whose kind
// satisfies keep.
func FilterKinds(src Source, keep func(Kind) bool) Source {
	return &filterSource{src: src, keep: keep}
}

type filterSource struct {
	src  Source
	keep func(Kind) bool
}

func (f *filterSource) Next() (Ref, error) {
	for {
		r, err := f.src.Next()
		if err != nil {
			return Ref{}, err
		}
		if f.keep(r.Kind) {
			return r, nil
		}
	}
}

// Collect drains src into a slice, up to max references (max <= 0 means
// unlimited).  It returns the references read and any error other than
// io.EOF.
func Collect(src Source, max int) ([]Ref, error) {
	var refs []Ref
	for max <= 0 || len(refs) < max {
		r, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return refs, err
		}
		refs = append(refs, r)
	}
	return refs, nil
}

// FuncSource adapts a function to the Source interface, which keeps the
// synthetic generators free of interface boilerplate.
type FuncSource func() (Ref, error)

// Next implements Source.
func (f FuncSource) Next() (Ref, error) { return f() }

// WithContext wraps src so the stream ends with ctx's error once ctx is
// cancelled or its deadline expires.  The check runs once per ChunkRefs
// references -- the same granularity at which the sweep executors
// notice cancellation -- so the per-reference hot path stays a counter
// decrement.  The error is latched: every Next after cancellation keeps
// returning it.
func WithContext(ctx context.Context, src Source) Source {
	return &ctxSource{ctx: ctx, src: src}
}

type ctxSource struct {
	ctx  context.Context
	src  Source
	n    int // references until the next ctx poll
	done error
}

func (c *ctxSource) Next() (Ref, error) {
	if c.done != nil {
		return Ref{}, c.done
	}
	if c.n <= 0 {
		if err := c.ctx.Err(); err != nil {
			c.done = err
			return Ref{}, err
		}
		c.n = ChunkRefs
	}
	c.n--
	return c.src.Next()
}
