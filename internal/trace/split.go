package trace

import (
	"fmt"
	"io"

	"subcache/internal/addr"
)

// Splitter converts processor-level references of arbitrary size into a
// stream of word-aligned, word-sized memory accesses.
//
// The paper: "Traces were created for the Z8000 and PDP-11 by assuming
// 2 byte data paths and for the System/370 and VAX-11 assuming 4 byte
// data paths to memory."  A 4-byte VAX load that is 2-byte aligned on a
// 4-byte data path touches two memory words; each touched word becomes
// one access of the same kind as the original reference.  The split
// stream is what the cache simulator and the no-cache bus-traffic
// baseline both consume, so the traffic ratio denominator is exactly the
// number of countable accesses emitted here.
type Splitter struct {
	src      Source
	wordSize uint64

	// pending words of the reference currently being expanded.
	cur     Ref
	pending int
}

// NewSplitter returns a Source emitting word-sized accesses for the
// given data-path width in bytes (a power of two, typically 2 or 4).
func NewSplitter(src Source, wordSize int) *Splitter {
	if wordSize <= 0 || !addr.IsPow2(uint64(wordSize)) {
		panic(fmt.Sprintf("trace.NewSplitter: word size %d is not a positive power of two", wordSize))
	}
	return &Splitter{src: src, wordSize: uint64(wordSize)}
}

// WordSize returns the data-path width in bytes.
func (s *Splitter) WordSize() int { return int(s.wordSize) }

// Next implements Source.  Every returned Ref has Size == WordSize() and
// an address aligned to the word size.
func (s *Splitter) Next() (Ref, error) {
	for s.pending == 0 {
		r, err := s.src.Next()
		if err != nil {
			return Ref{}, err
		}
		size := uint64(r.Size)
		if size == 0 {
			size = 1
		}
		first := addr.AlignDown(r.Addr, s.wordSize)
		last := addr.AlignDown(r.Addr+addr.Addr(size-1), s.wordSize)
		s.cur = Ref{Addr: first, Kind: r.Kind, Size: uint8(s.wordSize)}
		s.pending = int((last-first)/addr.Addr(s.wordSize)) + 1
	}
	out := s.cur
	s.pending--
	s.cur.Addr += addr.Addr(s.wordSize)
	return out, nil
}

// CountWords reports how many word-sized accesses a reference expands to
// on a data path of the given width.
func CountWords(r Ref, wordSize int) int {
	w := uint64(wordSize)
	size := uint64(r.Size)
	if size == 0 {
		size = 1
	}
	first := addr.AlignDown(r.Addr, w)
	last := addr.AlignDown(r.Addr+addr.Addr(size-1), w)
	return int((last-first)/addr.Addr(w)) + 1
}

// ChunkRefs is the standard batching granularity of the simulation
// harness: 8192 references (~128 KiB of trace.Ref) keeps a chunk inside
// L2 while amortising per-chunk overhead (channel traffic, cancellation
// checks, interface dispatch) to a few operations per hundred thousand
// accesses.  Cache.Run, multipass.Family.Run and the sweep executors
// all feed the access kernels in chunks of this size.
const ChunkRefs = 8192

// ReadChunk fills buf with the next references from src, returning how
// many were stored.  The error is io.EOF only at end of stream --
// possibly alongside n > 0 for a final partial chunk -- and any other
// error reports a failed read after n good references.  It is the
// batching primitive behind the sweep harness's chunk-broadcast
// executor, which streams a trace through reusable fixed-size buffers
// instead of materialising it.
func ReadChunk(src Source, buf []Ref) (int, error) {
	for n := range buf {
		r, err := src.Next()
		if err != nil {
			return n, err
		}
		buf[n] = r
	}
	return len(buf), nil
}

// SplitAll is a convenience that fully expands src through a splitter,
// returning the word accesses.  Intended for tests and small traces.
func SplitAll(src Source, wordSize int) ([]Ref, error) {
	sp := NewSplitter(src, wordSize)
	var out []Ref
	for {
		r, err := sp.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}
