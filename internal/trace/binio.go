package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"subcache/internal/addr"
)

// This file implements the compact binary trace format ".strc"
// (subcache trace).  Layout, all little-endian:
//
//	header:  magic "SBCT" (4 bytes) | version uint16 | reserved uint16
//	         | count uint64 (0 if unknown at write time)
//	record:  kind uint8 | size uint8 | addr uint64
//
// Ten bytes per reference keeps a one-million-reference trace at ~10 MB
// and decoding branch-free.

const (
	binMagic   = "SBCT"
	binVersion = 1
	recordLen  = 10
	headerLen  = 16
)

// BinWriter writes references in .strc binary format.
type BinWriter struct {
	w     *bufio.Writer
	count uint64
}

// NewBinWriter writes a header to w and returns a BinWriter.  Call
// Flush when done.  The header's count field is written as 0 (unknown);
// readers rely on EOF.
func NewBinWriter(w io.Writer) (*BinWriter, error) {
	bw := &BinWriter{w: bufio.NewWriter(w)}
	var hdr [headerLen]byte
	copy(hdr[:4], binMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], binVersion)
	if _, err := bw.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return bw, nil
}

// Write emits one reference.
func (b *BinWriter) Write(r Ref) error {
	var rec [recordLen]byte
	rec[0] = byte(r.Kind)
	rec[1] = r.Size
	binary.LittleEndian.PutUint64(rec[2:], uint64(r.Addr))
	b.count++
	_, err := b.w.Write(rec[:])
	return err
}

// Count returns the number of references written so far.
func (b *BinWriter) Count() uint64 { return b.count }

// Flush writes any buffered data to the underlying writer.
func (b *BinWriter) Flush() error { return b.w.Flush() }

// BinReader reads .strc binary traces and implements Source.  Errors
// are attributed (record index and byte offset) and latched: after any
// error other than io.EOF, every subsequent Next returns the same
// error, so a corrupt or truncated stream can never resume mid-file and
// silently skew counters downstream.
type BinReader struct {
	r   *bufio.Reader
	rec uint64 // records successfully decoded so far
	err error  // latched failure
}

// NewBinReader validates the header of r and returns a Source.
func NewBinReader(r io.Reader) (*BinReader, error) {
	br := &BinReader{r: bufio.NewReader(r)}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading strc header: %w", err)
	}
	if string(hdr[:4]) != binMagic {
		return nil, fmt.Errorf("trace: bad magic %q, want %q", hdr[:4], binMagic)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != binVersion {
		return nil, fmt.Errorf("trace: unsupported strc version %d", v)
	}
	return br, nil
}

// Next implements Source.
func (b *BinReader) Next() (Ref, error) {
	if b.err != nil {
		return Ref{}, b.err
	}
	var rec [recordLen]byte
	if _, err := io.ReadFull(b.r, rec[:]); err != nil {
		if err == io.EOF {
			return Ref{}, err // clean end of stream; not latched
		}
		return Ref{}, b.fail(fmt.Errorf("trace: truncated strc record %d (offset %d): %w",
			b.rec, b.offset(), err))
	}
	if rec[0] >= byte(numKinds) {
		return Ref{}, b.fail(fmt.Errorf("trace: corrupt strc record %d (offset %d): kind %d",
			b.rec, b.offset(), rec[0]))
	}
	b.rec++
	return Ref{
		Kind: Kind(rec[0]),
		Size: rec[1],
		Addr: addr.Addr(binary.LittleEndian.Uint64(rec[2:])),
	}, nil
}

// offset is the byte position of the record being decoded.
func (b *BinReader) offset() uint64 { return headerLen + b.rec*recordLen }

// Bytes implements ByteCounter: the bytes of header and records decoded
// so far, feeding the telemetry layer's bytes_read counter.
func (b *BinReader) Bytes() uint64 { return b.offset() }

func (b *BinReader) fail(err error) error {
	b.err = err
	return err
}
