package trace

import (
	"errors"
	"io"
	"testing"

	"subcache/internal/addr"
)

func TestKindString(t *testing.T) {
	if IFetch.String() != "ifetch" || Read.String() != "read" || Write.String() != "write" {
		t.Errorf("kind names wrong: %s %s %s", IFetch, Read, Write)
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind string = %s", Kind(9))
	}
}

func TestKindCountable(t *testing.T) {
	if !IFetch.Countable() || !Read.Countable() {
		t.Error("ifetch and read must be countable")
	}
	if Write.Countable() {
		t.Error("writes must not be countable (paper filters write-back effects)")
	}
}

func TestSliceSource(t *testing.T) {
	refs := []Ref{
		{Addr: 0x100, Kind: IFetch, Size: 2},
		{Addr: 0x200, Kind: Read, Size: 4},
		{Addr: 0x300, Kind: Write, Size: 1},
	}
	s := NewSliceSource(refs)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for i, want := range refs {
		got, err := s.Next()
		if err != nil {
			t.Fatalf("ref %d: %v", i, err)
		}
		if got != want {
			t.Errorf("ref %d = %v, want %v", i, got, want)
		}
	}
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("after end: err = %v, want io.EOF", err)
	}
	s.Reset()
	if got, err := s.Next(); err != nil || got != refs[0] {
		t.Errorf("after Reset: got %v, %v", got, err)
	}
}

func TestLimit(t *testing.T) {
	refs := make([]Ref, 10)
	for i := range refs {
		refs[i] = Ref{Addr: addr.Addr(i), Kind: Read, Size: 1}
	}
	lim := Limit(NewSliceSource(refs), 4)
	got, err := Collect(lim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("Limit(4) yielded %d refs", len(got))
	}
}

func TestLimitZero(t *testing.T) {
	lim := Limit(NewSliceSource([]Ref{{Addr: 1, Kind: Read, Size: 1}}), 0)
	if _, err := lim.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("Limit(0).Next() err = %v, want io.EOF", err)
	}
}

func TestFilterKinds(t *testing.T) {
	refs := []Ref{
		{Addr: 1, Kind: IFetch, Size: 1},
		{Addr: 2, Kind: Write, Size: 1},
		{Addr: 3, Kind: Read, Size: 1},
		{Addr: 4, Kind: Write, Size: 1},
	}
	f := FilterKinds(NewSliceSource(refs), Kind.Countable)
	got, err := Collect(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Addr != 1 || got[1].Addr != 3 {
		t.Errorf("filtered = %v", got)
	}
}

func TestCollectMax(t *testing.T) {
	refs := make([]Ref, 100)
	for i := range refs {
		refs[i] = Ref{Addr: addr.Addr(i), Kind: Read, Size: 1}
	}
	got, err := Collect(NewSliceSource(refs), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Errorf("Collect(max=7) returned %d", len(got))
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	fs := FuncSource(func() (Ref, error) {
		if n >= 3 {
			return Ref{}, io.EOF
		}
		n++
		return Ref{Addr: addr.Addr(n), Kind: IFetch, Size: 2}, nil
	})
	got, err := Collect(fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("FuncSource yielded %d refs", len(got))
	}
}

func TestRefString(t *testing.T) {
	r := Ref{Addr: 0x10, Kind: Read, Size: 4}
	if got := r.String(); got != "read 0x10/4" {
		t.Errorf("Ref.String() = %q", got)
	}
}
