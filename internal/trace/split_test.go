package trace

import (
	"testing"
	"testing/quick"

	"subcache/internal/addr"
)

func TestSplitterAligned(t *testing.T) {
	// A 4-byte aligned read on a 4-byte path is a single access.
	src := NewSliceSource([]Ref{{Addr: 0x100, Kind: Read, Size: 4}})
	got, err := SplitAll(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Addr != 0x100 || got[0].Size != 4 {
		t.Errorf("got %v", got)
	}
}

func TestSplitterWide(t *testing.T) {
	// A 4-byte reference on a 2-byte path becomes two word accesses.
	src := NewSliceSource([]Ref{{Addr: 0x100, Kind: Read, Size: 4}})
	got, err := SplitAll(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d accesses, want 2", len(got))
	}
	if got[0].Addr != 0x100 || got[1].Addr != 0x102 {
		t.Errorf("addresses %v %v", got[0].Addr, got[1].Addr)
	}
	for _, r := range got {
		if r.Size != 2 || r.Kind != Read {
			t.Errorf("bad access %v", r)
		}
	}
}

func TestSplitterMisaligned(t *testing.T) {
	// A 4-byte reference starting mid-word on a 4-byte path straddles
	// two words.
	src := NewSliceSource([]Ref{{Addr: 0x102, Kind: IFetch, Size: 4}})
	got, err := SplitAll(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Addr != 0x100 || got[1].Addr != 0x104 {
		t.Errorf("got %v", got)
	}
}

func TestSplitterZeroSizeTreatedAsOne(t *testing.T) {
	src := NewSliceSource([]Ref{{Addr: 0x7, Kind: Read, Size: 0}})
	got, err := SplitAll(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Addr != 0x4 {
		t.Errorf("got %v", got)
	}
}

func TestSplitterPanicsOnBadWordSize(t *testing.T) {
	for _, w := range []int{0, -2, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSplitter(%d) did not panic", w)
				}
			}()
			NewSplitter(NewSliceSource(nil), w)
		}()
	}
}

func TestCountWordsMatchesSplitter(t *testing.T) {
	f := func(a uint32, size uint8, wshift uint8) bool {
		w := 1 << (wshift%3 + 1) // 2, 4, 8
		r := Ref{Addr: addr.Addr(a), Kind: Read, Size: size}
		got, err := SplitAll(NewSliceSource([]Ref{r}), w)
		if err != nil {
			return false
		}
		if len(got) != CountWords(r, w) {
			return false
		}
		// All emitted accesses must be aligned, word sized, contiguous.
		for i, acc := range got {
			if !addr.IsAligned(acc.Addr, uint64(w)) || int(acc.Size) != w {
				return false
			}
			if i > 0 && acc.Addr != got[i-1].Addr+addr.Addr(w) {
				return false
			}
		}
		// The split must cover the reference.
		size64 := uint64(size)
		if size64 == 0 {
			size64 = 1
		}
		first := addr.AlignDown(r.Addr, uint64(w))
		last := got[len(got)-1].Addr
		return first == got[0].Addr && uint64(last)+uint64(w) >= uint64(r.Addr)+size64
	}
	if err := quick.Check(f, quickCfg(100)); err != nil {
		t.Error(err)
	}
}

func TestSplitterPreservesOrderAcrossRefs(t *testing.T) {
	refs := []Ref{
		{Addr: 0x10, Kind: IFetch, Size: 4},
		{Addr: 0x20, Kind: Read, Size: 8},
		{Addr: 0x31, Kind: Write, Size: 2},
	}
	got, err := SplitAll(NewSliceSource(refs), 2)
	if err != nil {
		t.Fatal(err)
	}
	// 2 + 4 + 1..2 accesses; 0x31 size 2 covers 0x31..0x32 -> words
	// 0x30 and 0x32.
	wantKinds := []Kind{IFetch, IFetch, Read, Read, Read, Read, Write, Write}
	if len(got) != len(wantKinds) {
		t.Fatalf("got %d accesses, want %d: %v", len(got), len(wantKinds), got)
	}
	for i, k := range wantKinds {
		if got[i].Kind != k {
			t.Errorf("access %d kind = %v, want %v", i, got[i].Kind, k)
		}
	}
}
