package trace

// PackRefs writes the packed form of each reference into dst:
//
//	dst[i] = uint64(refs[i].Addr)>>wordShift<<2 | uint64(refs[i].Kind)
//
// The packed word carries the word index and the access kind -- all a
// word-granular simulator reads per reference -- in one load where the
// Ref struct costs two, and the packing is geometry-free: any block
// size recovers its block address with a single shift and its block
// word offset with a shift and mask.  Engines simulating many
// configurations over one chunk therefore share a single packing pass
// (see the sweep executors).  dst must be at least len(refs) long.
func PackRefs(dst []uint64, refs []Ref, wordShift uint) {
	_ = dst[:len(refs)]
	for i := range refs {
		dst[i] = uint64(refs[i].Addr)>>wordShift<<2 | uint64(refs[i].Kind)
	}
}
