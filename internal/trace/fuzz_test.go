package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzTextReader: arbitrary input must never panic the din parser, and
// anything it accepts must round-trip.
func FuzzTextReader(f *testing.F) {
	f.Add([]byte("0 100 2\n"))
	f.Add([]byte("2 dead 4\n1 beef 1\n"))
	f.Add([]byte("# comment\n\n0 0x10\n"))
	f.Add([]byte("9 zz\n"))
	f.Add([]byte("0 100 2 trailing\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewTextReader(bytes.NewReader(data))
		var accepted []Ref
		for {
			ref, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // rejection is fine; panics are not
			}
			accepted = append(accepted, ref)
			if len(accepted) > 1000 {
				break
			}
		}
		if len(accepted) == 0 {
			return
		}
		var buf bytes.Buffer
		w := NewTextWriter(&buf)
		for _, ref := range accepted {
			if err := w.Write(ref); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		back, err := Collect(NewTextReader(&buf), 0)
		if err != nil {
			t.Fatalf("re-reading own output failed: %v", err)
		}
		if len(back) != len(accepted) {
			t.Fatalf("round trip lost refs: %d vs %d", len(back), len(accepted))
		}
		for i := range back {
			if back[i] != accepted[i] {
				t.Fatalf("round trip changed ref %d: %v vs %v", i, back[i], accepted[i])
			}
		}
	})
}

// FuzzBinReader: arbitrary bytes must never panic the binary decoder.
func FuzzBinReader(f *testing.F) {
	var valid bytes.Buffer
	w, _ := NewBinWriter(&valid)
	_ = w.Write(Ref{Addr: 0x1234, Kind: Read, Size: 4})
	_ = w.Flush()
	f.Add(valid.Bytes())
	f.Add([]byte("SBCT"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewBinReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}
