package trace

import (
	"fmt"
	"io"
)

// Interleave multiplexes several reference streams round-robin with a
// fixed quantum, modelling a multiprogrammed processor switching tasks
// every quantum references.
//
// The paper ran its traces "without context switches" and flags the
// omission: "the omission of task switching effects will bias our
// estimated performance upward, although the small sizes of the caches
// studied make this effect minor" (§3.3).  Interleave lets the
// experiment suite quantify exactly that bias: as the quantum shrinks,
// tasks evict each other's working sets and the miss ratio rises toward
// the cold-start rate.
//
// Exhausted streams drop out of the rotation; the interleaved stream
// ends when every input has ended.  Address spaces are NOT disambiguated
// (no ASIDs, as in the paper's era of untagged caches), so distinct
// tasks sharing address ranges collide exactly as they would in the
// hardware being modelled.
type interleaveSource struct {
	srcs    []Source
	quantum int

	cur  int // index of the running task
	left int // references left in the current quantum
	live int // sources not yet exhausted
}

// Interleave returns the multiplexed source.  quantum must be positive;
// at least one source is required.
func Interleave(quantum int, srcs ...Source) (Source, error) {
	if quantum <= 0 {
		return nil, fmt.Errorf("trace: quantum %d must be positive", quantum)
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("trace: Interleave needs at least one source")
	}
	s := &interleaveSource{
		srcs:    append([]Source(nil), srcs...),
		quantum: quantum,
		left:    quantum,
		live:    len(srcs),
	}
	return s, nil
}

// Next implements Source.
func (s *interleaveSource) Next() (Ref, error) {
	for s.live > 0 {
		if s.srcs[s.cur] == nil || s.left == 0 {
			s.rotate()
			continue
		}
		r, err := s.srcs[s.cur].Next()
		if err == io.EOF {
			s.srcs[s.cur] = nil
			s.live--
			s.rotate()
			continue
		}
		if err != nil {
			return Ref{}, err
		}
		s.left--
		return r, nil
	}
	return Ref{}, io.EOF
}

// rotate advances to the next live task and recharges the quantum.
func (s *interleaveSource) rotate() {
	for i := 0; i < len(s.srcs); i++ {
		s.cur = (s.cur + 1) % len(s.srcs)
		if s.srcs[s.cur] != nil {
			s.left = s.quantum
			return
		}
	}
}
