package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"subcache/internal/addr"
)

// This file implements a Dinero-style ("din") text trace format:
//
//	<label> <hex address> [<size>]
//
// one reference per line, where label is 0 (data read), 1 (data write)
// or 2 (instruction fetch), the address is hexadecimal with or without a
// 0x prefix, and the optional size is a decimal byte count (default 1
// word is the *reader's* concern; we default to size 1).  Blank lines
// and lines starting with '#' are ignored.  This is the interchange
// format of the classic Dinero cache simulators, which makes externally
// produced traces usable with cmd/cachesim.

const (
	dinRead   = 0
	dinWrite  = 1
	dinIFetch = 2
)

func kindToDin(k Kind) int {
	switch k {
	case Read:
		return dinRead
	case Write:
		return dinWrite
	case IFetch:
		return dinIFetch
	}
	panic(fmt.Sprintf("trace: unknown kind %d", k))
}

func dinToKind(label int) (Kind, error) {
	switch label {
	case dinRead:
		return Read, nil
	case dinWrite:
		return Write, nil
	case dinIFetch:
		return IFetch, nil
	}
	return 0, fmt.Errorf("trace: unknown din label %d", label)
}

// TextWriter writes references in din text format.
type TextWriter struct {
	w *bufio.Writer
}

// NewTextWriter returns a TextWriter emitting to w.  Call Flush when
// done.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriter(w)}
}

// Write emits one reference.
func (t *TextWriter) Write(r Ref) error {
	_, err := fmt.Fprintf(t.w, "%d %x %d\n", kindToDin(r.Kind), uint64(r.Addr), r.Size)
	return err
}

// Flush writes any buffered data to the underlying writer.
func (t *TextWriter) Flush() error { return t.w.Flush() }

// countingReader counts the bytes the scanner pulls from the
// underlying reader.  The scanner reads ahead, so mid-stream this runs
// ahead of the lines actually consumed; at EOF it equals the exact
// input size, which Bytes uses to avoid overcounting a final line with
// no trailing newline.
type countingReader struct {
	r io.Reader
	n uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += uint64(n)
	return n, err
}

// TextReader reads references in din text format and implements Source.
type TextReader struct {
	sc    *bufio.Scanner
	cr    *countingReader
	line  int
	bytes uint64
	err   error // first parse or scan error, latched
}

// NewTextReader returns a Source reading din text from r.
func NewTextReader(r io.Reader) *TextReader {
	cr := &countingReader{r: r}
	sc := bufio.NewScanner(cr)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &TextReader{sc: sc, cr: cr}
}

// fail latches the reader on its first error: every subsequent Next
// returns the same error instead of silently resuming on the line after
// the bad record, which would drop it from the trace.
func (t *TextReader) fail(err error) (Ref, error) {
	t.err = err
	return Ref{}, err
}

// Next implements Source.  After any error other than io.EOF the
// reader is stuck: all further calls return that same error.
func (t *TextReader) Next() (Ref, error) {
	if t.err != nil {
		return Ref{}, t.err
	}
	for t.sc.Scan() {
		t.line++
		t.bytes += uint64(len(t.sc.Bytes())) + 1 // +1 for the newline
		line := strings.TrimSpace(t.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return t.fail(fmt.Errorf("trace: line %d: want 2 or 3 fields, got %d", t.line, len(fields)))
		}
		label, err := strconv.Atoi(fields[0])
		if err != nil {
			return t.fail(fmt.Errorf("trace: line %d: bad label %q: %v", t.line, fields[0], err))
		}
		kind, err := dinToKind(label)
		if err != nil {
			return t.fail(fmt.Errorf("trace: line %d: %v", t.line, err))
		}
		hexs := strings.TrimPrefix(strings.TrimPrefix(fields[1], "0x"), "0X")
		a, err := strconv.ParseUint(hexs, 16, 64)
		if err != nil {
			return t.fail(fmt.Errorf("trace: line %d: bad address %q: %v", t.line, fields[1], err))
		}
		size := uint64(1)
		if len(fields) == 3 {
			size, err = strconv.ParseUint(fields[2], 10, 8)
			if err != nil || size == 0 {
				return t.fail(fmt.Errorf("trace: line %d: bad size %q", t.line, fields[2]))
			}
		}
		return Ref{Addr: addr.Addr(a), Kind: kind, Size: uint8(size)}, nil
	}
	if err := t.sc.Err(); err != nil {
		return t.fail(err)
	}
	return Ref{}, io.EOF
}

// Bytes implements ByteCounter: the bytes of trace text consumed so far
// (lines plus their newlines), feeding the telemetry layer's bytes_read
// counter.  The per-line tally assumes a newline after every line, so
// it is capped at the bytes actually read from the input, which makes
// the count exact at EOF even when the final line has no trailing
// newline.
func (t *TextReader) Bytes() uint64 {
	if t.cr.n < t.bytes {
		return t.cr.n
	}
	return t.bytes
}
