package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"subcache/internal/addr"
)

func sampleRefs() []Ref {
	return []Ref{
		{Addr: 0x1000, Kind: IFetch, Size: 2},
		{Addr: 0x2004, Kind: Read, Size: 4},
		{Addr: 0x3008, Kind: Write, Size: 1},
		{Addr: 0xffffffff, Kind: Read, Size: 8},
		{Addr: 0, Kind: IFetch, Size: 2},
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	for _, r := range sampleRefs() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewTextReader(&buf), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRefs()
	if len(got) != len(want) {
		t.Fatalf("round trip count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ref %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTextReaderCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n2 1000 2\n   \n0 0x2004 4\n"
	got, err := Collect(NewTextReader(strings.NewReader(in)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d refs: %v", len(got), got)
	}
	if got[0].Kind != IFetch || got[0].Addr != 0x1000 {
		t.Errorf("ref 0 = %v", got[0])
	}
	if got[1].Kind != Read || got[1].Addr != 0x2004 {
		t.Errorf("ref 1 = %v", got[1])
	}
}

func TestTextReaderDefaultSize(t *testing.T) {
	got, err := Collect(NewTextReader(strings.NewReader("0 100\n")), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Size != 1 {
		t.Errorf("got %v", got)
	}
}

// TestTextReaderBytesExact: Bytes reports exactly the input size at
// EOF, whether or not the final line has a trailing newline (the
// per-line tally alone would overcount the latter by one).
func TestTextReaderBytesExact(t *testing.T) {
	for _, in := range []string{
		"0 100 2\n2 1000 4\n",
		"0 100 2\n2 1000 4", // no trailing newline
		"# comment\n0 100 2",
	} {
		r := NewTextReader(strings.NewReader(in))
		if _, err := Collect(r, 0); err != nil {
			t.Fatalf("input %q: %v", in, err)
		}
		if got := r.Bytes(); got != uint64(len(in)) {
			t.Errorf("input %q: Bytes() = %d, want %d", in, got, len(in))
		}
	}
}

func TestTextReaderErrors(t *testing.T) {
	cases := []string{
		"9 100 2\n",       // bad label
		"x 100 2\n",       // non-numeric label
		"0 zz 2\n",        // bad address
		"0 100 0\n",       // zero size
		"0 100 999\n",     // size overflows uint8
		"0\n",             // too few fields
		"0 100 2 extra\n", // too many fields
	}
	for _, in := range cases {
		if _, err := NewTextReader(strings.NewReader(in)).Next(); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestBinRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewBinWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRefs() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(sampleRefs())) {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewBinReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRefs()
	if len(got) != len(want) {
		t.Fatalf("round trip count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ref %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBinReaderBadMagic(t *testing.T) {
	if _, err := NewBinReader(bytes.NewReader([]byte("XXXX0123456789ab"))); err == nil {
		t.Error("expected bad-magic error")
	}
}

func TestBinReaderShortHeader(t *testing.T) {
	if _, err := NewBinReader(bytes.NewReader([]byte("SB"))); err == nil {
		t.Error("expected short-header error")
	}
}

func TestBinReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewBinWriter(&buf)
	_ = w.Write(Ref{Addr: 1, Kind: Read, Size: 1})
	_ = w.Flush()
	data := buf.Bytes()[:buf.Len()-3] // chop the last record short
	r, err := NewBinReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	if err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated record: err = %v, want corruption error", err)
	}
}

func TestBinReaderCorruptKind(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewBinWriter(&buf)
	_ = w.Write(Ref{Addr: 1, Kind: Read, Size: 1})
	_ = w.Flush()
	data := buf.Bytes()
	data[headerLen] = 99 // overwrite kind byte of first record
	r, err := NewBinReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("expected corrupt-kind error")
	}
}

// Property: any reference round-trips through both formats.
func TestRoundTripProperty(t *testing.T) {
	f := func(a uint64, kindRaw uint8, size uint8) bool {
		if size == 0 {
			size = 1
		}
		r := Ref{Addr: addr.Addr(a), Kind: Kind(kindRaw % 3), Size: size}

		var tb bytes.Buffer
		tw := NewTextWriter(&tb)
		if tw.Write(r) != nil || tw.Flush() != nil {
			return false
		}
		tGot, err := NewTextReader(&tb).Next()
		if err != nil || tGot != r {
			return false
		}

		var bb bytes.Buffer
		bw, err := NewBinWriter(&bb)
		if err != nil || bw.Write(r) != nil || bw.Flush() != nil {
			return false
		}
		br, err := NewBinReader(&bb)
		if err != nil {
			return false
		}
		bGot, err := br.Next()
		return err == nil && bGot == r
	}
	if err := quick.Check(f, quickCfg(100)); err != nil {
		t.Error(err)
	}
}
