package trace

import (
	"fmt"
	"io"
	"sort"

	"subcache/internal/addr"
)

// Stats summarises a trace: reference counts per kind, the word-level
// footprint (unique words touched, which bounds any cache's cold-miss
// count) and the address range.  The paper characterises its workloads
// informally ("the System/370 programs are large, using hundreds of
// kilobytes of storage"); Stats makes the same characterisation of the
// synthetic workloads checkable in tests.
type Stats struct {
	WordSize int

	Total     uint64
	ByKind    [3]uint64
	Countable uint64 // IFetch + Read accesses

	UniqueWords  uint64
	FootprintLen uint64 // UniqueWords * WordSize, in bytes

	MinAddr addr.Addr
	MaxAddr addr.Addr
}

// Measure drains src through a data-path splitter of the given word
// size and returns the resulting statistics.
func Measure(src Source, wordSize int) (Stats, error) {
	st := Stats{WordSize: wordSize, MinAddr: ^addr.Addr(0)}
	seen := make(map[addr.Addr]struct{})
	sp := NewSplitter(src, wordSize)
	for {
		r, err := sp.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		st.Total++
		st.ByKind[r.Kind]++
		if r.Kind.Countable() {
			st.Countable++
		}
		if _, ok := seen[r.Addr]; !ok {
			seen[r.Addr] = struct{}{}
			st.UniqueWords++
		}
		if r.Addr < st.MinAddr {
			st.MinAddr = r.Addr
		}
		if r.Addr > st.MaxAddr {
			st.MaxAddr = r.Addr
		}
	}
	st.FootprintLen = st.UniqueWords * uint64(wordSize)
	if st.Total == 0 {
		st.MinAddr = 0
	}
	return st, nil
}

// String renders the statistics for human inspection.
func (s Stats) String() string {
	return fmt.Sprintf(
		"refs=%d (ifetch=%d read=%d write=%d countable=%d) footprint=%dB words=%d range=[%s,%s]",
		s.Total, s.ByKind[IFetch], s.ByKind[Read], s.ByKind[Write], s.Countable,
		s.FootprintLen, s.UniqueWords, s.MinAddr, s.MaxAddr)
}

// RunLengths measures the distribution of sequential-forward run lengths
// in the instruction-fetch stream at word granularity: the number of
// consecutive fetches r where addr(r+1) = addr(r) + wordSize.  The paper
// argues program references "exhibit a forward bias" (§4.4); this
// histogram quantifies that bias for a workload.
func RunLengths(src Source, wordSize int) (hist map[int]int, meanRun float64, err error) {
	sp := NewSplitter(FilterKinds(src, func(k Kind) bool { return k == IFetch }), wordSize)
	hist = make(map[int]int)
	var prev addr.Addr
	have := false
	run := 1
	var runs, totalLen int
	flush := func() {
		hist[run]++
		runs++
		totalLen += run
	}
	for {
		r, e := sp.Next()
		if e == io.EOF {
			break
		}
		if e != nil {
			return nil, 0, e
		}
		if have && r.Addr == prev+addr.Addr(wordSize) {
			run++
		} else if have {
			flush()
			run = 1
		}
		prev = r.Addr
		have = true
	}
	if have {
		flush()
	}
	if runs > 0 {
		meanRun = float64(totalLen) / float64(runs)
	}
	return hist, meanRun, nil
}

// HistKeys returns the sorted keys of a run-length histogram, a helper
// for deterministic report output.
func HistKeys(hist map[int]int) []int {
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
