package trace

import (
	"testing"

	"subcache/internal/addr"
)

func seqRefs(base addr.Addr, n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = Ref{Addr: base + addr.Addr(2*i), Kind: Read, Size: 2}
	}
	return out
}

func TestInterleaveValidation(t *testing.T) {
	if _, err := Interleave(0, NewSliceSource(nil)); err == nil {
		t.Error("accepted zero quantum")
	}
	if _, err := Interleave(5); err == nil {
		t.Error("accepted no sources")
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := NewSliceSource(seqRefs(0x1000, 4))
	b := NewSliceSource(seqRefs(0x2000, 4))
	src, err := Interleave(2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantBases := []addr.Addr{0x1000, 0x1002, 0x2000, 0x2002, 0x1004, 0x1006, 0x2004, 0x2006}
	if len(got) != len(wantBases) {
		t.Fatalf("got %d refs, want %d", len(got), len(wantBases))
	}
	for i, w := range wantBases {
		if got[i].Addr != w {
			t.Errorf("ref %d = %v, want %v", i, got[i].Addr, w)
		}
	}
}

func TestInterleaveUnevenLengths(t *testing.T) {
	a := NewSliceSource(seqRefs(0x1000, 5))
	b := NewSliceSource(seqRefs(0x2000, 1))
	src, err := Interleave(2, a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("got %d refs, want 6 (no references lost)", len(got))
	}
	// After b exhausts, a runs uninterrupted.
	last := got[len(got)-1]
	if last.Addr != 0x1008 {
		t.Errorf("last ref = %v, want 0x1008", last.Addr)
	}
}

func TestInterleaveSingleSource(t *testing.T) {
	src, err := Interleave(3, NewSliceSource(seqRefs(0, 7)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Addr != addr.Addr(2*i) {
			t.Fatalf("single-source interleave reordered refs: %v", got)
		}
	}
}

func TestInterleaveLargeQuantum(t *testing.T) {
	// Quantum bigger than either stream: sources run to completion one
	// after the other.
	a := NewSliceSource(seqRefs(0x1000, 3))
	b := NewSliceSource(seqRefs(0x2000, 3))
	src, _ := Interleave(100, a, b)
	got, _ := Collect(src, 0)
	if len(got) != 6 || got[2].Addr != 0x1004 || got[3].Addr != 0x2000 {
		t.Errorf("large-quantum order wrong: %v", got)
	}
}

func TestInterleaveThreeWays(t *testing.T) {
	src, _ := Interleave(1,
		NewSliceSource(seqRefs(0x1000, 2)),
		NewSliceSource(seqRefs(0x2000, 2)),
		NewSliceSource(seqRefs(0x3000, 2)))
	got, _ := Collect(src, 0)
	want := []addr.Addr{0x1000, 0x2000, 0x3000, 0x1002, 0x2002, 0x3002}
	for i, w := range want {
		if got[i].Addr != w {
			t.Fatalf("three-way order wrong at %d: %v", i, got)
		}
	}
}
