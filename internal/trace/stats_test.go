package trace

import (
	"testing"

	"subcache/internal/addr"
)

func TestMeasureBasic(t *testing.T) {
	refs := []Ref{
		{Addr: 0x100, Kind: IFetch, Size: 2},
		{Addr: 0x100, Kind: IFetch, Size: 2}, // repeat: no new unique word
		{Addr: 0x104, Kind: Read, Size: 4},   // 2 words on 2-byte path
		{Addr: 0x200, Kind: Write, Size: 2},
	}
	st, err := Measure(NewSliceSource(refs), 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 5 {
		t.Errorf("Total = %d, want 5", st.Total)
	}
	if st.ByKind[IFetch] != 2 || st.ByKind[Read] != 2 || st.ByKind[Write] != 1 {
		t.Errorf("ByKind = %v", st.ByKind)
	}
	if st.Countable != 4 {
		t.Errorf("Countable = %d, want 4", st.Countable)
	}
	if st.UniqueWords != 4 { // 0x100, 0x104, 0x106, 0x200
		t.Errorf("UniqueWords = %d, want 4", st.UniqueWords)
	}
	if st.FootprintLen != 8 {
		t.Errorf("FootprintLen = %d, want 8", st.FootprintLen)
	}
	if st.MinAddr != 0x100 || st.MaxAddr != 0x200 {
		t.Errorf("range [%v,%v]", st.MinAddr, st.MaxAddr)
	}
}

func TestMeasureEmpty(t *testing.T) {
	st, err := Measure(NewSliceSource(nil), 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 0 || st.UniqueWords != 0 || st.MinAddr != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestStatsString(t *testing.T) {
	st, _ := Measure(NewSliceSource([]Ref{{Addr: 4, Kind: Read, Size: 4}}), 4)
	if s := st.String(); s == "" {
		t.Error("String() empty")
	}
}

func TestRunLengthsSequential(t *testing.T) {
	// Ten perfectly sequential 2-byte fetches: one run of 10.
	var refs []Ref
	for i := 0; i < 10; i++ {
		refs = append(refs, Ref{Addr: addr.Addr(0x100 + 2*i), Kind: IFetch, Size: 2})
	}
	hist, mean, err := RunLengths(NewSliceSource(refs), 2)
	if err != nil {
		t.Fatal(err)
	}
	if hist[10] != 1 || len(hist) != 1 {
		t.Errorf("hist = %v", hist)
	}
	if mean != 10 {
		t.Errorf("mean = %g, want 10", mean)
	}
}

func TestRunLengthsBranches(t *testing.T) {
	// Two runs of 3 separated by a branch, data refs ignored.
	refs := []Ref{
		{Addr: 0x100, Kind: IFetch, Size: 2},
		{Addr: 0x102, Kind: IFetch, Size: 2},
		{Addr: 0x104, Kind: IFetch, Size: 2},
		{Addr: 0x500, Kind: Read, Size: 2}, // ignored
		{Addr: 0x200, Kind: IFetch, Size: 2},
		{Addr: 0x202, Kind: IFetch, Size: 2},
		{Addr: 0x204, Kind: IFetch, Size: 2},
	}
	hist, mean, err := RunLengths(NewSliceSource(refs), 2)
	if err != nil {
		t.Fatal(err)
	}
	if hist[3] != 2 {
		t.Errorf("hist = %v, want two runs of 3", hist)
	}
	if mean != 3 {
		t.Errorf("mean = %g, want 3", mean)
	}
}

func TestRunLengthsEmpty(t *testing.T) {
	hist, mean, err := RunLengths(NewSliceSource(nil), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 0 || mean != 0 {
		t.Errorf("hist=%v mean=%g", hist, mean)
	}
}

func TestHistKeysSorted(t *testing.T) {
	keys := HistKeys(map[int]int{5: 1, 1: 2, 3: 3})
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 3 || keys[2] != 5 {
		t.Errorf("keys = %v", keys)
	}
}
