package paperdata

import (
	"math"
	"testing"

	"subcache/internal/synth"
)

// TestTable7InternalConsistency verifies the transcription against the
// table's structural identity: with demand fetch every miss moves
// exactly one sub-block, so traffic = miss * (sub / word).  Published
// values are rounded to 3-4 digits, so the check allows rounding error.
func TestTable7InternalConsistency(t *testing.T) {
	for arch, cells := range Table7 {
		word := float64(arch.WordSize())
		for k, c := range cells {
			factor := float64(k.Sub) / word
			want := c.Miss * factor
			// Published ratios carry ~0.001 rounding in each figure.
			tol := 0.002 * factor
			if math.Abs(c.Traffic-want) > tol {
				t.Errorf("%v %v: traffic %.4f != miss %.4f * %g (+-%.4f)",
					arch, k, c.Traffic, c.Miss, factor, tol)
			}
		}
	}
}

// TestTable7GeometryValid checks every key is a Table 1 organisation
// compatible with its architecture's word size.
func TestTable7GeometryValid(t *testing.T) {
	for arch, cells := range Table7 {
		for k := range cells {
			if k.Sub > k.Block || k.Block > k.Net {
				t.Errorf("%v %v: inconsistent geometry", arch, k)
			}
			if k.Sub < arch.WordSize() {
				t.Errorf("%v %v: sub-block below word size", arch, k)
			}
		}
	}
}

// TestTable7Coverage ensures the transcription spans all architectures
// and all three reported net sizes.
func TestTable7Coverage(t *testing.T) {
	for _, arch := range synth.AllArchs() {
		cells, ok := Table7[arch]
		if !ok {
			t.Fatalf("no Table 7 data for %v", arch)
		}
		nets := map[int]int{}
		for k := range cells {
			nets[k.Net]++
		}
		for _, net := range []int{64, 256, 1024} {
			if nets[net] < 5 {
				t.Errorf("%v: only %d cells at net %d", arch, nets[net], net)
			}
		}
	}
}

// TestArchOrdering spot-checks the paper's architecture ordering at the
// shared anchor point (1024-byte, 16,8).
func TestArchOrdering(t *testing.T) {
	k := Key{1024, 16, 8}
	z := Table7[synth.Z8000][k].Miss
	p := Table7[synth.PDP11][k].Miss
	v := Table7[synth.VAX11][k].Miss
	s := Table7[synth.S370][k].Miss
	if !(z < p && p < v && v < s) {
		t.Errorf("paper ordering broken in transcription: %g %g %g %g", z, p, v, s)
	}
}

// TestTable8Consistency: non-LF rows obey traffic = miss * sub/word
// (word = 2 on the Z8000); LF rows sit between the sub-block-only and
// block-fill traffic.
func TestTable8Consistency(t *testing.T) {
	for k, c := range Table8 {
		if !k.LoadForward {
			want := c.Miss * float64(k.Sub) / 2
			if math.Abs(c.Traffic-want) > 0.002*float64(k.Sub) {
				t.Errorf("%v: traffic %.3f != %.3f", k, c.Traffic, want)
			}
		}
	}
	// The paper's headline LF claims at the Z80,000 point (256B, 16,2):
	// LF cuts traffic ~20%% versus whole-block fill for ~7%% miss cost.
	wb := Table8[LFKey{256, 16, 16, false}]
	lf := Table8[LFKey{256, 16, 2, true}]
	sb := Table8[LFKey{256, 16, 2, false}]
	if !(lf.Traffic < wb.Traffic && lf.Traffic > sb.Traffic) {
		t.Error("LF traffic not between sub-block-only and whole-block")
	}
	if !(lf.Miss < sb.Miss && lf.Miss > wb.Miss) {
		t.Error("LF miss not between whole-block and sub-block-only")
	}
}

func TestTable6Shape(t *testing.T) {
	if !(Table6.Way16 < Table6.Way8 && Table6.Way8 < Table6.Way4) {
		t.Error("associativity ordering broken")
	}
	ratio := Table6.Sector360 / Table6.Way4
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("sector/4-way ratio %.2f, paper says ~3x", ratio)
	}
	if Table6.NeverRefFrac != 0.72 {
		t.Error("72%% untouched sub-block figure wrong")
	}
}
