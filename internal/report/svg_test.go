package report

import (
	"strings"
	"testing"
)

func sampleFigure() *Figure {
	return &Figure{
		Title: "Test & Figure", XLabel: "traffic ratio", YLabel: "miss ratio",
		Series: []Series{
			{Name: "net256 b16", Points: []XY{{0.8, 0.14, "256:16,16"}, {0.5, 0.20, "256:16,8"}, {0.35, 0.30, "256:16,4"}}},
			{Name: "net256 s8", Points: []XY{{0.5, 0.20, "256:16,8"}, {0.31, 0.17, "256:8,8"}}},
		},
	}
}

func TestSVGWellFormedPieces(t *testing.T) {
	svg := sampleFigure().SVG(640, 480)
	for _, want := range []string{
		"<svg", "</svg>", "<polyline", "<circle", "Test &amp; Figure",
		"miss ratio", "traffic ratio", "net256 b16",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Balanced tags (cheap sanity check).
	if strings.Count(svg, "<svg") != strings.Count(svg, "</svg>") {
		t.Error("unbalanced svg tags")
	}
}

func TestSVGDashedForSubBlockLines(t *testing.T) {
	svg := sampleFigure().SVG(640, 480)
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("constant-sub-block series not dashed")
	}
}

func TestSVGEmptyFigure(t *testing.T) {
	fig := &Figure{Title: "E"}
	svg := fig.SVG(200, 150)
	if !strings.Contains(svg, "no data") {
		t.Error("empty figure should say so")
	}
}

func TestSVGSinglePointNoDivisionByZero(t *testing.T) {
	fig := &Figure{Series: []Series{{Name: "s", Points: []XY{{0.5, 0.5, "p"}}}}}
	svg := fig.SVG(300, 200)
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Errorf("degenerate figure produced NaN/Inf:\n%s", svg)
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	fig := &Figure{
		Title:  `<script>"x"</script>`,
		Series: []Series{{Name: "a<b", Points: []XY{{1, 1, `q"`}}}},
	}
	svg := fig.SVG(300, 200)
	if strings.Contains(svg, "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b") {
		t.Error("series name not escaped")
	}
}

func TestSVGMinimumSize(t *testing.T) {
	svg := sampleFigure().SVG(1, 1)
	if !strings.Contains(svg, "<svg") {
		t.Error("tiny size did not render")
	}
	if strings.Contains(svg, "NaN") {
		t.Error("tiny size produced NaN")
	}
}
