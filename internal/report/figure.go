package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"subcache/internal/sweep"
)

// XY is one plotted point.
type XY struct {
	X, Y  float64
	Label string
}

// Series is a named, ordered point sequence (one of the paper's solid
// constant-block or dashed constant-sub-block lines).
type Series struct {
	Name   string
	Points []XY
}

// Figure is a miss-ratio-versus-traffic-ratio plot in the style of the
// paper's Figures 1-9.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// CSV renders every series as rows of (series, label, x, y).
func (f *Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "series,label,%s,%s\n", csvEscape(f.XLabel), csvEscape(f.YLabel))
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%s,%.6f,%.6f\n", csvEscape(s.Name), csvEscape(p.Label), p.X, p.Y)
		}
	}
	return b.String()
}

// ASCII renders the figure as a width x height character scatter plot.
// Each series is drawn with its own marker (a, b, c, ...); overlapping
// points keep the first marker.  Axes are linear, spanning the data.
func (f *Figure) ASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range f.Series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			n++
		}
	}
	if n == 0 {
		return f.Title + " (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		marker := byte('a' + si%26)
		for _, p := range s.Points {
			x := int(float64(width-1) * (p.X - minX) / (maxX - minX))
			y := int(float64(height-1) * (p.Y - minY) / (maxY - minY))
			row := height - 1 - y
			if grid[row][x] == ' ' {
				grid[row][x] = marker
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%s (vertical, %.4f..%.4f) vs %s (horizontal, %.4f..%.4f)\n",
		f.YLabel, minY, maxY, f.XLabel, minX, maxX)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", byte('a'+si%26), s.Name)
	}
	return b.String()
}

// MissVsTraffic builds the paper's figure structure from a sweep result:
// for each net size, one series per constant block size (the solid "bz"
// lines, points ordered by sub-block size) and one per constant
// sub-block size (the dashed "sz" lines).  scaled selects the
// nibble-mode traffic ratio (Figures 7 and 8) instead of the standard
// one.
func MissVsTraffic(res *sweep.Result, netSizes []int, scaled bool, title string) *Figure {
	fig := &Figure{
		Title:  title,
		XLabel: "traffic ratio",
		YLabel: "miss ratio",
	}
	if scaled {
		fig.XLabel = "scaled traffic ratio (nibble mode)"
	}
	wantNet := make(map[int]bool, len(netSizes))
	for _, n := range netSizes {
		wantNet[n] = true
	}
	pts := res.Points()

	// Constant-block (solid) lines.
	type key struct{ net, block int }
	blockLines := map[key][]XY{}
	subLines := map[key][]XY{}
	var blockKeys, subKeys []key
	for _, p := range pts {
		if !wantNet[p.Net] {
			continue
		}
		s := res.Summaries[p]
		x := s.Traffic
		if scaled {
			x = s.Scaled
		}
		xy := XY{X: x, Y: s.Miss, Label: p.String()}
		bk := key{p.Net, p.Block}
		if _, ok := blockLines[bk]; !ok {
			blockKeys = append(blockKeys, bk)
		}
		blockLines[bk] = append(blockLines[bk], xy)
		sk := key{p.Net, p.Sub}
		if _, ok := subLines[sk]; !ok {
			subKeys = append(subKeys, sk)
		}
		subLines[sk] = append(subLines[sk], xy)
	}
	sort.Slice(blockKeys, func(i, j int) bool {
		if blockKeys[i].net != blockKeys[j].net {
			return blockKeys[i].net < blockKeys[j].net
		}
		return blockKeys[i].block < blockKeys[j].block
	})
	sort.Slice(subKeys, func(i, j int) bool {
		if subKeys[i].net != subKeys[j].net {
			return subKeys[i].net < subKeys[j].net
		}
		return subKeys[i].block < subKeys[j].block
	})
	for _, k := range blockKeys {
		if len(blockLines[k]) < 2 {
			continue // a one-point "line" is just clutter
		}
		fig.Series = append(fig.Series, Series{
			Name:   fmt.Sprintf("net%d b%d", k.net, k.block),
			Points: blockLines[k],
		})
	}
	for _, k := range subKeys {
		if len(subLines[k]) < 2 {
			continue
		}
		fig.Series = append(fig.Series, Series{
			Name:   fmt.Sprintf("net%d s%d", k.net, k.block),
			Points: subLines[k],
		})
	}
	return fig
}
