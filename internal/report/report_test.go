package report

import (
	"strings"
	"testing"

	"subcache/internal/cache"
	"subcache/internal/sweep"
	"subcache/internal/synth"
)

func TestTableString(t *testing.T) {
	tb := NewTable("Title", "a", "bb", "ccc")
	tb.Add("1", "2", "3")
	tb.Add("10", "20")
	s := tb.String()
	if !strings.Contains(s, "Title") || !strings.Contains(s, "bb") {
		t.Errorf("table output missing pieces:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), s)
	}
}

func TestTableAddPanicsOnWideRow(t *testing.T) {
	tb := NewTable("", "one")
	defer func() {
		if recover() == nil {
			t.Error("wide row did not panic")
		}
	}()
	tb.Add("a", "b")
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("", "s", "f", "i")
	tb.Addf("x", 0.12345, 7)
	if tb.Rows[0][1] != "0.1234" && tb.Rows[0][1] != "0.1235" {
		t.Errorf("float cell = %q", tb.Rows[0][1])
	}
	if tb.Rows[0][2] != "7" {
		t.Errorf("int cell = %q", tb.Rows[0][2])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.Add(`va"l`, "a,b")
	csv := tb.CSV()
	want := "x,y\n\"va\"\"l\",\"a,b\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestFigureCSVAndASCII(t *testing.T) {
	fig := &Figure{
		Title: "T", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "s1", Points: []XY{{0.1, 0.5, "p1"}, {0.2, 0.3, "p2"}}},
			{Name: "s2", Points: []XY{{0.4, 0.1, "p3"}}},
		},
	}
	csv := fig.CSV()
	if !strings.Contains(csv, "s1,p1,0.100000,0.500000") {
		t.Errorf("CSV missing row:\n%s", csv)
	}
	art := fig.ASCII(40, 10)
	if !strings.Contains(art, "a = s1") || !strings.Contains(art, "b = s2") {
		t.Errorf("ASCII legend missing:\n%s", art)
	}
	if !strings.Contains(art, "a") {
		t.Errorf("no markers plotted:\n%s", art)
	}
}

func TestFigureASCIIEmpty(t *testing.T) {
	fig := &Figure{Title: "E"}
	if !strings.Contains(fig.ASCII(40, 10), "no data") {
		t.Error("empty figure should say so")
	}
}

func TestFigureASCIIDegenerate(t *testing.T) {
	// A single point (zero x/y range) must not divide by zero.
	fig := &Figure{Title: "D", Series: []Series{{Name: "s", Points: []XY{{0.5, 0.5, ""}}}}}
	if fig.ASCII(30, 8) == "" {
		t.Error("degenerate figure rendered empty")
	}
}

func smallResult(t *testing.T, arch synth.Arch, pts []sweep.Point) *sweep.Result {
	t.Helper()
	res, err := sweep.Run(sweep.Request{
		Arch: arch, Points: pts, Refs: 5000,
		Workloads: []string{synth.Workloads(arch)[0].Name},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMissVsTraffic(t *testing.T) {
	pts := []sweep.Point{
		{Net: 256, Block: 16, Sub: 16},
		{Net: 256, Block: 16, Sub: 8},
		{Net: 256, Block: 16, Sub: 2},
		{Net: 256, Block: 8, Sub: 8},
		{Net: 256, Block: 8, Sub: 2},
	}
	res := smallResult(t, synth.PDP11, pts)
	fig := MissVsTraffic(res, []int{256}, false, "test fig")
	if len(fig.Series) == 0 {
		t.Fatal("no series")
	}
	names := map[string]int{}
	for _, s := range fig.Series {
		names[s.Name] = len(s.Points)
	}
	if names["net256 b16"] != 3 {
		t.Errorf("b16 line has %d points, want 3 (%v)", names["net256 b16"], names)
	}
	if names["net256 s8"] != 2 {
		t.Errorf("s8 line has %d points, want 2 (%v)", names["net256 s8"], names)
	}
	// Scaled variant must use the nibble x-coordinates.
	scaled := MissVsTraffic(res, []int{256}, true, "scaled")
	if !strings.Contains(scaled.XLabel, "nibble") {
		t.Error("scaled figure not labelled")
	}
}

func TestTable7Rendering(t *testing.T) {
	pts := []sweep.Point{{Net: 64, Block: 8, Sub: 8}, {Net: 64, Block: 8, Sub: 2}}
	res := map[synth.Arch]*sweep.Result{
		synth.PDP11: smallResult(t, synth.PDP11, pts),
		// VAX word size 4 excludes the 8,2 point.
		synth.VAX11: smallResult(t, synth.VAX11, pts[:1]),
	}
	tb := Table7(res)
	s := tb.String()
	if !strings.Contains(s, "PDP-11 miss") || !strings.Contains(s, "VAX-11 miss") {
		t.Errorf("missing architecture columns:\n%s", s)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("got %d rows, want 2:\n%s", len(tb.Rows), s)
	}
	// Gross size column must reproduce Table 7's 94 bytes for 64B 8,8.
	if tb.Rows[0][1] != "94" {
		t.Errorf("gross cell = %q, want 94", tb.Rows[0][1])
	}
	// The 8,2 row must leave the VAX columns blank.
	last := tb.Rows[1]
	if last[len(last)-1] != "" {
		t.Errorf("VAX cell for 8,2 should be blank, got %q", last[len(last)-1])
	}
}

func TestTable8Rendering(t *testing.T) {
	pts := []sweep.Point{
		{Net: 256, Block: 16, Sub: 16},
		{Net: 256, Block: 16, Sub: 2, Fetch: cache.LoadForward},
		{Net: 256, Block: 16, Sub: 2},
	}
	res, err := sweep.Run(sweep.Request{
		Arch: synth.Z8000, Points: pts, Refs: 10000,
		Workloads: []string{"CCP", "C1", "C2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tb := Table8(res)
	s := tb.String()
	if !strings.Contains(s, "load-forward") {
		t.Errorf("LF row missing:\n%s", s)
	}
	if len(tb.Rows) != 3 {
		t.Errorf("got %d rows:\n%s", len(tb.Rows), s)
	}
}
