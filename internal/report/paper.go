package report

import (
	"fmt"

	"subcache/internal/sweep"
	"subcache/internal/synth"
)

// Table7 renders the paper's central table: for each organisation
// (rows: net/gross size, block, sub-block) the miss ratio, traffic ratio
// and nibble-mode traffic ratio for every architecture that was swept.
// Architectures appear in the paper's column order.
func Table7(results map[synth.Arch]*sweep.Result) *Table {
	archs := make([]synth.Arch, 0, len(results))
	for _, a := range synth.AllArchs() {
		if _, ok := results[a]; ok {
			archs = append(archs, a)
		}
	}
	header := []string{"net", "gross", "blk,sub"}
	for _, a := range archs {
		header = append(header,
			a.String()+" miss", a.String()+" traffic", a.String()+" nibble")
	}
	t := NewTable("Table 7. Miss and traffic ratios (4-way set associative, LRU, demand fetch)", header...)

	// Row set: union of points across architectures (word size excludes
	// some sub-blocks on 32-bit machines), ordered as Table 7.
	seen := map[sweep.Point]bool{}
	var rows []sweep.Point
	for _, a := range archs {
		for _, p := range results[a].Points() {
			if !seen[p] {
				seen[p] = true
				rows = append(rows, p)
			}
		}
	}
	rows = sortPoints(rows)

	for _, p := range rows {
		gross := p.Config(synth.PDP11).GrossSize()
		cells := []string{
			fmt.Sprint(p.Net),
			fmt.Sprintf("%.0f", gross),
			fmt.Sprintf("%d,%d", p.Block, p.Sub),
		}
		for _, a := range archs {
			if s, ok := results[a].Summaries[p]; ok {
				cells = append(cells,
					fmt.Sprintf("%.4f", s.Miss),
					fmt.Sprintf("%.4f", s.Traffic),
					fmt.Sprintf("%.4f", s.Scaled))
			} else {
				cells = append(cells, "", "", "")
			}
		}
		t.Add(cells...)
	}
	return t
}

func sortPoints(pts []sweep.Point) []sweep.Point {
	out := append([]sweep.Point(nil), pts...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && pointLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func pointLess(a, b sweep.Point) bool {
	if a.Net != b.Net {
		return a.Net < b.Net
	}
	if a.Block != b.Block {
		return a.Block > b.Block
	}
	if a.Sub != b.Sub {
		return a.Sub > b.Sub
	}
	return a.Fetch < b.Fetch
}

// Table8 renders the load-forward study (paper Table 8): miss ratio,
// traffic ratio and nibble traffic ratio for each organisation of the
// Z8000 compiler-trace sweep, flagging load-forward rows.
func Table8(res *sweep.Result) *Table {
	t := NewTable("Table 8. Load-forward results (Z8000 traces CCP, C1, C2)",
		"net", "gross", "blk,sub", "fetch", "miss", "traffic", "nibble", "redundant")
	for _, p := range res.Points() {
		s := res.Summaries[p]
		runs := res.Runs[p]
		var redundant, fills float64
		for _, r := range runs {
			redundant += float64(r.RedundantLoads)
			fills += float64(r.SubBlockFills)
		}
		redFrac := 0.0
		if fills > 0 {
			redFrac = redundant / fills
		}
		t.Add(
			fmt.Sprint(p.Net),
			fmt.Sprintf("%.0f", p.Config(synth.Z8000).GrossSize()),
			fmt.Sprintf("%d,%d", p.Block, p.Sub),
			p.Fetch.String(),
			fmt.Sprintf("%.4f", s.Miss),
			fmt.Sprintf("%.4f", s.Traffic),
			fmt.Sprintf("%.4f", s.Scaled),
			fmt.Sprintf("%.4f", redFrac),
		)
	}
	return t
}
