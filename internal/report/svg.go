package report

import (
	"fmt"
	"math"
	"strings"
)

// SVG renders the figure as a standalone SVG document in the style of
// the paper's figures: miss ratio on the vertical axis, traffic ratio on
// the horizontal, one polyline per series (solid for constant-block "b"
// lines, dashed for constant-sub-block "s" lines), points labelled by
// their organisation on hover via <title>.
func (f *Figure) SVG(width, height int) string {
	const margin = 56
	if width < 2*margin+40 {
		width = 2*margin + 40
	}
	if height < 2*margin+40 {
		height = 2*margin + 40
	}
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range f.Series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			n++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14">%s</text>`+"\n",
		margin, xmlEscape(f.Title))
	if n == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">no data</text>`+"\n",
			margin, height/2)
		b.WriteString("</svg>\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// Expand to round axis bounds starting at zero when data permits:
	// the paper's figures anchor at the origin.
	if minX > 0 && minX < 0.25*maxX {
		minX = 0
	}
	if minY > 0 && minY < 0.25*maxY {
		minY = 0
	}
	tx := func(x float64) float64 { return float64(margin) + plotW*(x-minX)/(maxX-minX) }
	ty := func(y float64) float64 { return float64(height-margin) - plotH*(y-minY)/(maxY-minY) }

	// Axes and gridlines at quarters.
	fmt.Fprintf(&b, `<g stroke="#ccc" stroke-width="1" font-family="sans-serif" font-size="10" fill="#444">`+"\n")
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		fy := minY + (maxY-minY)*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d"/>`+"\n",
			tx(fx), margin, tx(fx), height-margin)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f"/>`+"\n",
			margin, ty(fy), width-margin, ty(fy))
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" stroke="none">%.2f</text>`+"\n",
			tx(fx), height-margin+16, fx)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" stroke="none">%.2f</text>`+"\n",
			margin-6, ty(fy)+3, fy)
	}
	b.WriteString("</g>\n")
	fmt.Fprintf(&b, `<g stroke="black" stroke-width="1.5">`+"\n")
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d"/>`+"\n",
		margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d"/>`+"\n",
		margin, margin, margin, height-margin)
	b.WriteString("</g>\n")
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		width/2, height-8, xmlEscape(f.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		height/2, height/2, xmlEscape(f.YLabel))

	palette := []string{"#1b6ca8", "#c0392b", "#1e8449", "#8e44ad", "#b7950b",
		"#2c3e50", "#d35400", "#148f77", "#884ea0", "#7b241c"}
	for si, s := range f.Series {
		color := palette[si%len(palette)]
		dashed := strings.Contains(s.Name, " s") // constant-sub-block lines
		dash := ""
		if dashed {
			dash = ` stroke-dasharray="5,4"`
		}
		if len(s.Points) > 1 {
			var pts []string
			for _, p := range s.Points {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", tx(p.X), ty(p.Y)))
			}
			fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.3"%s points="%s"/>`+"\n",
				color, dash, strings.Join(pts, " "))
		}
		for _, p := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"><title>%s: %s (%.4f, %.4f)</title></circle>`+"\n",
				tx(p.X), ty(p.Y), color, xmlEscape(s.Name), xmlEscape(p.Label), p.X, p.Y)
		}
		// Legend entry.
		ly := margin + 14*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"%s/>`+"\n",
			width-margin-110, ly, width-margin-90, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			width-margin-84, ly+3, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
