// Package report renders sweep results as the paper's tables and
// figures: aligned text tables, CSV series files, and ASCII
// miss-versus-traffic scatter plots standing in for Figures 1-9.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table with CSV export.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row.  Rows shorter than the header are padded; longer
// rows panic, since they indicate a builder bug.
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.Header) {
		panic(fmt.Sprintf("report: row has %d cells for %d columns", len(cells), len(t.Header)))
	}
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Addf appends one row formatting each value with the given verbs, a
// convenience for numeric rows: values are formatted with %v unless they
// are float64 (%.4f).
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4f", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Add(row...)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quoting cells containing
// commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
