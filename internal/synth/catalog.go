package synth

import (
	"fmt"
	"sort"
)

// Arch identifies one of the paper's four traced architectures.
type Arch int

const (
	// PDP11 is the 16-bit DEC PDP-11 (Table 2's workload).
	PDP11 Arch = iota
	// Z8000 is the 16-bit Zilog Z8000 (Table 3; warm-start results).
	Z8000
	// VAX11 is the 32-bit DEC VAX-11 (Table 4).
	VAX11
	// S370 is the 32-bit IBM System/370 (Table 5).
	S370
)

// AllArchs lists the architectures in the paper's presentation order.
func AllArchs() []Arch { return []Arch{PDP11, Z8000, VAX11, S370} }

// String returns the architecture name as the paper writes it.
func (a Arch) String() string {
	switch a {
	case PDP11:
		return "PDP-11"
	case Z8000:
		return "Z8000"
	case VAX11:
		return "VAX-11"
	case S370:
		return "System/370"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// ParseArch converts an architecture name (as String renders it) into
// an Arch; the service API and CLI flags share this vocabulary.
func ParseArch(s string) (Arch, error) {
	for _, a := range AllArchs() {
		if s == a.String() {
			return a, nil
		}
	}
	return 0, fmt.Errorf("synth: unknown architecture %q (want PDP-11, Z8000, VAX-11 or System/370)", s)
}

// WordSize returns the memory data-path width the paper assumed when
// creating each architecture's traces: 2 bytes for the 16-bit machines,
// 4 bytes for the 32-bit machines.
func (a Arch) WordSize() int {
	switch a {
	case PDP11, Z8000:
		return 2
	case VAX11, S370:
		return 4
	default:
		panic(fmt.Sprintf("synth: unknown architecture %d", int(a)))
	}
}

// WarmStart reports whether the paper quotes warm-start ratios for this
// architecture's results (it does for the Z8000, §4.2.2).
func (a Arch) WarmStart() bool { return a == Z8000 }

// base returns the architecture's baseline profile.  The four baselines
// encode the paper's workload characterisation (§4.2.5): the Z8000
// traces are "small, compact pieces of code"; the PDP-11 programs are
// "also relatively small" in a 16-bit space; the VAX programs are "a
// mixture of small and large"; and the System/370 programs are "large,
// using hundreds of kilobytes of storage".  Magnitudes were calibrated
// so the architecture averages land near Table 7 (see EXPERIMENTS.md).
func (a Arch) base() Profile {
	switch a {
	case PDP11:
		return Profile{
			Arch: a, CodeSize: 16 << 10, HotLoci: 96, CodeZipf: 1.1,
			MeanRunLen: 10, PLoop: 0.50, MeanLoopIter: 12, PNearJump: 0.30,
			PhaseLoci: 20, PhaseScalars: 28, MeanPhaseLen: 3000,
			InstrMin: 2, InstrMax: 6, InstrGrain: 2,
			DataRefsPerInstr: 0.55, WriteFrac: 0.30,
			DataSize: 24 << 10, StackSize: 1 << 10,
			HotScalars: 96, ScalarZipf: 1.0,
			Streams: 4, MeanStreamLen: 48,
			FracStack: 0.30, FracScalar: 0.28, FracStream: 0.32,
			AccessSize: 2,
		}
	case Z8000:
		return Profile{
			Arch: a, CodeSize: 8 << 10, HotLoci: 64, CodeZipf: 1.4,
			MeanRunLen: 12, PLoop: 0.60, MeanLoopIter: 24, PNearJump: 0.30,
			PhaseLoci: 10, PhaseScalars: 14, MeanPhaseLen: 6000,
			InstrMin: 2, InstrMax: 6, InstrGrain: 2,
			DataRefsPerInstr: 0.45, WriteFrac: 0.30,
			DataSize: 12 << 10, StackSize: 768,
			HotScalars: 64, ScalarZipf: 1.1,
			Streams: 3, MeanStreamLen: 64,
			FracStack: 0.34, FracScalar: 0.30, FracStream: 0.30,
			AccessSize: 2,
		}
	case VAX11:
		return Profile{
			Arch: a, CodeSize: 64 << 10, HotLoci: 160, CodeZipf: 1.05,
			MeanRunLen: 8, PLoop: 0.50, MeanLoopIter: 12, PNearJump: 0.30,
			PhaseLoci: 28, PhaseScalars: 36, MeanPhaseLen: 3000,
			InstrMin: 2, InstrMax: 8, InstrGrain: 1,
			DataRefsPerInstr: 0.80, WriteFrac: 0.30,
			DataSize: 160 << 10, StackSize: 4 << 10,
			HotScalars: 160, ScalarZipf: 0.9,
			Streams: 6, MeanStreamLen: 56,
			FracStack: 0.26, FracScalar: 0.24, FracStream: 0.42,
			AccessSize: 4,
		}
	case S370:
		return Profile{
			Arch: a, CodeSize: 192 << 10, HotLoci: 320, CodeZipf: 0.8,
			MeanRunLen: 8, PLoop: 0.35, MeanLoopIter: 8, PNearJump: 0.25,
			PhaseLoci: 64, PhaseScalars: 64, MeanPhaseLen: 1500,
			InstrMin: 2, InstrMax: 6, InstrGrain: 2,
			DataRefsPerInstr: 1.0, WriteFrac: 0.30,
			DataSize: 512 << 10, StackSize: 8 << 10,
			HotScalars: 256, ScalarZipf: 0.7,
			Streams: 8, MeanStreamLen: 48,
			FracStack: 0.18, FracScalar: 0.20, FracStream: 0.46,
			AccessSize: 4,
		}
	default:
		panic(fmt.Sprintf("synth: unknown architecture %d", int(a)))
	}
}

// variant describes one named workload as a perturbation of its
// architecture baseline, standing in for one row of Tables 2-5.
type variant struct {
	name string
	desc string
	seed uint64
	// Multiplicative adjustments; 0 means "leave at baseline".
	codeScale, dataScale, loopScale, runScale float64
}

// apply produces the concrete profile.
func (v variant) apply(base Profile) Profile {
	p := base
	p.Name = v.name
	p.Seed = v.seed
	scale := func(x int, f float64) int {
		if f == 0 {
			return x
		}
		y := int(float64(x) * f)
		if y < 1 {
			y = 1
		}
		return y
	}
	p.CodeSize = scale(p.CodeSize, v.codeScale)
	p.HotLoci = scale(p.HotLoci, v.codeScale)
	p.DataSize = scale(p.DataSize, v.dataScale)
	p.MeanLoopIter = scale(p.MeanLoopIter, v.loopScale)
	p.MeanRunLen = scale(p.MeanRunLen, v.runScale)
	return p
}

// variants maps each architecture to the workloads of its table in the
// paper.  Descriptions quote Tables 2-5; the perturbations express each
// program's character (a printer plotter loops tightly over arrays, an
// operating system branches widely, a compiler is mid-sized and
// pointer-heavy, ...).
var variants = map[Arch][]variant{
	PDP11: {
		{name: "OPSYS", desc: "C: toy operating system", seed: 0xA1, codeScale: 1.4, dataScale: 1.2, loopScale: 0.7},
		{name: "PLOT", desc: "Fortran: printer plotter program", seed: 0xA2, codeScale: 0.7, dataScale: 1.1, loopScale: 1.6, runScale: 1.2},
		{name: "SIMP", desc: "Fortran: pipeline simulation program", seed: 0xA3, codeScale: 1.0, dataScale: 1.4, loopScale: 1.2},
		{name: "TRACE", desc: "PDP-11 Assembly: tracing program tracing ED", seed: 0xA4, codeScale: 0.8, dataScale: 0.8, loopScale: 0.9},
		{name: "ROFF", desc: "PDP-11 Assembly: text output and formatting program", seed: 0xA5, codeScale: 0.9, dataScale: 1.0, loopScale: 1.1},
		{name: "ED", desc: "C: text editor", seed: 0xA6, codeScale: 1.2, dataScale: 0.9, loopScale: 0.8},
	},
	Z8000: {
		{name: "CCP", desc: "C: first phase of C compiler", seed: 0xB1, codeScale: 1.3, dataScale: 1.2, loopScale: 0.8},
		{name: "C1", desc: "C: second phase of C compiler", seed: 0xB2, codeScale: 1.2, dataScale: 1.1, loopScale: 0.9},
		{name: "C2", desc: "C: third phase of C compiler", seed: 0xB3, codeScale: 1.1, dataScale: 1.0, loopScale: 0.9},
		{name: "OD", desc: "C: Unix utility for dumping files in ASCII", seed: 0xB4, codeScale: 0.6, dataScale: 0.7, loopScale: 1.5, runScale: 1.1},
		{name: "GREP", desc: "C: Unix utility for string searching", seed: 0xB5, codeScale: 0.6, dataScale: 0.9, loopScale: 1.6},
		{name: "SORT", desc: "C: Unix utility for sorting", seed: 0xB6, codeScale: 0.8, dataScale: 1.3, loopScale: 1.3},
		{name: "LS", desc: "C: Unix utility for listing files", seed: 0xB7, codeScale: 0.7, dataScale: 0.8, loopScale: 1.0},
		{name: "NM", desc: "C: Unix utility for printing a symbol table", seed: 0xB8, codeScale: 0.8, dataScale: 1.0, loopScale: 1.1},
		{name: "NROFF", desc: "C: Unix utility for formatting text files", seed: 0xB9, codeScale: 1.1, dataScale: 1.0, loopScale: 0.9},
	},
	VAX11: {
		{name: "SPICE", desc: "Fortran: circuit simulation", seed: 0xC1, codeScale: 1.3, dataScale: 1.6, loopScale: 1.3},
		{name: "OTMDL", desc: "Pascal: constructs LR(0) parser", seed: 0xC2, codeScale: 1.1, dataScale: 1.2, loopScale: 0.9},
		{name: "SEDX", desc: "C: stream editor", seed: 0xC3, codeScale: 0.7, dataScale: 0.7, loopScale: 1.1},
		{name: "QSORT", desc: "C: quick sort", seed: 0xC4, codeScale: 0.5, dataScale: 1.3, loopScale: 1.4, runScale: 0.9},
		{name: "TROFF", desc: "C: text formatter", seed: 0xC5, codeScale: 1.2, dataScale: 0.9, loopScale: 0.8},
		{name: "C2V", desc: "C: third phase of C compiler", seed: 0xC6, codeScale: 1.0, dataScale: 0.9, loopScale: 0.9},
	},
	S370: {
		{name: "FGO1", desc: "Fortran Go step: single-precision factor", seed: 0xD1, codeScale: 0.9, dataScale: 1.2, loopScale: 1.3},
		{name: "FCOMP1", desc: "Fortran compile: Reynolds PDE solver", seed: 0xD2, codeScale: 1.3, dataScale: 0.9, loopScale: 0.8},
		{name: "PGO1", desc: "PL/I Go step", seed: 0xD3, codeScale: 1.0, dataScale: 1.0, loopScale: 1.0},
		{name: "PGO2", desc: "PL/I Go step: CCW analysis", seed: 0xD4, codeScale: 1.1, dataScale: 1.3, loopScale: 0.9},
	},
}

// Workloads returns the calibrated profile for every workload of the
// architecture, in the paper's table order.
func Workloads(a Arch) []Profile {
	vs, ok := variants[a]
	if !ok {
		panic(fmt.Sprintf("synth: unknown architecture %d", int(a)))
	}
	base := a.base()
	out := make([]Profile, len(vs))
	for i, v := range vs {
		out[i] = v.apply(base)
	}
	return out
}

// Describe returns the paper's description of a workload, or "".
func Describe(name string) string {
	for _, vs := range variants {
		for _, v := range vs {
			if v.name == name {
				return v.desc
			}
		}
	}
	return ""
}

// ProfileByName finds a workload profile across all architectures.
func ProfileByName(name string) (Profile, bool) {
	for _, a := range AllArchs() {
		for _, p := range Workloads(a) {
			if p.Name == name {
				return p, true
			}
		}
	}
	return Profile{}, false
}

// Names lists every workload name, sorted, for CLI help text.
func Names() []string {
	var names []string
	for _, a := range AllArchs() {
		for _, p := range Workloads(a) {
			names = append(names, p.Name)
		}
	}
	sort.Strings(names)
	return names
}
