package synth

import (
	"testing"

	"subcache/internal/addr"
	"subcache/internal/trace"
)

// TestRegionsDisjoint: every catalog profile's code, data and stack
// regions must fit under the fixed bases without overlapping, or
// generated "data" addresses could land in code and corrupt locality
// measurements.
func TestRegionsDisjoint(t *testing.T) {
	for _, a := range AllArchs() {
		for _, p := range Workloads(a) {
			if codeBase+p.CodeSize+p.InstrMax >= dataBase {
				t.Errorf("%s: code region [0x%x,+%d) reaches the data base", p.Name, codeBase, p.CodeSize)
			}
			if dataBase+p.DataSize >= stackBase {
				t.Errorf("%s: data region reaches the stack base", p.Name)
			}
		}
	}
}

// TestVariantsDiffer: workloads within a suite must be genuinely
// different programs, not reseeded clones -- their footprints and miss
// behaviour should spread.
func TestVariantsDiffer(t *testing.T) {
	seen := map[uint64]string{}
	for _, a := range AllArchs() {
		foot := map[string]uint64{}
		for _, p := range Workloads(a) {
			if prev, dup := seen[p.Seed]; dup {
				t.Errorf("seed %#x shared by %s and %s", p.Seed, prev, p.Name)
			}
			seen[p.Seed] = p.Name
			refs, err := Generate(p, 60000)
			if err != nil {
				t.Fatal(err)
			}
			st, err := trace.Measure(trace.NewSliceSource(refs), a.WordSize())
			if err != nil {
				t.Fatal(err)
			}
			foot[p.Name] = st.FootprintLen
		}
		// At least two distinct footprints per suite.
		distinct := map[uint64]bool{}
		for _, f := range foot {
			distinct[f] = true
		}
		if len(distinct) < 2 {
			t.Errorf("%v: all workloads share footprint %v", a, foot)
		}
	}
}

// TestVariantApplyScaling checks the perturbation mechanics.
func TestVariantApplyScaling(t *testing.T) {
	base := PDP11.base()
	v := variant{name: "X", seed: 42, codeScale: 2, dataScale: 0.5, loopScale: 3, runScale: 2}
	p := v.apply(base)
	if p.Name != "X" || p.Seed != 42 {
		t.Errorf("identity not applied: %+v", p)
	}
	if p.CodeSize != base.CodeSize*2 || p.HotLoci != base.HotLoci*2 {
		t.Errorf("code scaling wrong: %d/%d", p.CodeSize, p.HotLoci)
	}
	if p.DataSize != base.DataSize/2 {
		t.Errorf("data scaling wrong: %d", p.DataSize)
	}
	if p.MeanLoopIter != base.MeanLoopIter*3 || p.MeanRunLen != base.MeanRunLen*2 {
		t.Errorf("loop/run scaling wrong: %d/%d", p.MeanLoopIter, p.MeanRunLen)
	}
	// Zero scale means "leave alone"; scales can never drop below 1.
	v2 := variant{name: "Y", seed: 1, dataScale: 0.00001}
	p2 := v2.apply(base)
	if p2.CodeSize != base.CodeSize {
		t.Error("zero codeScale modified CodeSize")
	}
	if p2.DataSize < 1 {
		t.Error("scaling produced non-positive size")
	}
}

// TestInstrLenStatic: instruction length must be a pure function of the
// address, so loop re-walks fetch identical addresses.
func TestInstrLenStatic(t *testing.T) {
	p := PDP11.base()
	p.Name, p.Seed = "t", 5
	g, err := NewGenerator(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for a := addr.Addr(0x1000); a < 0x1100; a += 2 {
		l1 := g.instrLen(a)
		l2 := g.instrLen(a)
		if l1 != l2 {
			t.Fatalf("instrLen(%v) unstable: %d vs %d", a, l1, l2)
		}
		if l1 < p.InstrMin || l1 > p.InstrMax || l1%p.InstrGrain != 0 {
			t.Fatalf("instrLen(%v) = %d out of spec", a, l1)
		}
	}
}

// TestLoopsRefetchIdenticalAddresses: the heart of temporal locality --
// consecutive loop iterations must touch the same instruction
// addresses.
func TestLoopsRefetchIdenticalAddresses(t *testing.T) {
	p := PDP11.base()
	p.Name, p.Seed = "t", 9
	p.PLoop, p.MeanLoopIter = 1.0, 50 // force looping
	refs, err := Generate(p, 20000)
	if err != nil {
		t.Fatal(err)
	}
	// Count immediate re-occurrences of instruction addresses within a
	// window: with heavy looping, most addresses repeat.
	seen := map[addr.Addr]int{}
	repeats := 0
	total := 0
	for _, r := range refs {
		if r.Kind != trace.IFetch {
			continue
		}
		total++
		if seen[r.Addr] > 0 {
			repeats++
		}
		seen[r.Addr]++
	}
	if total == 0 || float64(repeats)/float64(total) < 0.5 {
		t.Errorf("only %d/%d instruction fetches were repeats under forced looping", repeats, total)
	}
}

func TestWordSizePanicsOnUnknownArch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WordSize on unknown arch did not panic")
		}
	}()
	Arch(99).WordSize()
}

func TestWorkloadsPanicsOnUnknownArch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Workloads on unknown arch did not panic")
		}
	}()
	Workloads(Arch(99))
}
