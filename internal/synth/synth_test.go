package synth

import (
	"strings"
	"testing"

	"subcache/internal/addr"
	"subcache/internal/trace"
)

func testProfile() Profile {
	p := PDP11.base()
	p.Name = "test"
	p.Seed = 42
	return p
}

func TestProfileValidateOK(t *testing.T) {
	if err := testProfile().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"no name", func(p *Profile) { p.Name = "" }},
		{"zero code", func(p *Profile) { p.CodeSize = 0 }},
		{"zero data", func(p *Profile) { p.DataSize = 0 }},
		{"zero stack", func(p *Profile) { p.StackSize = 0 }},
		{"zero loci", func(p *Profile) { p.HotLoci = 0 }},
		{"zero scalars", func(p *Profile) { p.HotScalars = 0 }},
		{"zero streams", func(p *Profile) { p.Streams = 0 }},
		{"zero run len", func(p *Profile) { p.MeanRunLen = 0 }},
		{"bad instr bounds", func(p *Profile) { p.InstrMax = p.InstrMin - 1 }},
		{"bad access size", func(p *Profile) { p.AccessSize = 3 }},
		{"probability > 1", func(p *Profile) { p.PLoop = 1.5 }},
		{"negative probability", func(p *Profile) { p.WriteFrac = -0.1 }},
		{"fractions sum > 1", func(p *Profile) { p.FracStack, p.FracScalar, p.FracStream = 0.5, 0.4, 0.3 }},
		{"phase loci exceed population", func(p *Profile) { p.PhaseLoci = p.HotLoci + 1 }},
		{"phase scalars exceed population", func(p *Profile) { p.PhaseScalars = p.HotScalars + 1 }},
		{"phases without length", func(p *Profile) { p.PhaseLoci = 2; p.MeanPhaseLen = 0 }},
	}
	for _, tc := range cases {
		p := testProfile()
		tc.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestNewGeneratorRejectsInvalid(t *testing.T) {
	p := testProfile()
	p.Name = ""
	if _, err := NewGenerator(p, 10); err == nil {
		t.Error("NewGenerator accepted invalid profile")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(testProfile(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testProfile(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at ref %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSeedsProduceDifferentTraces(t *testing.T) {
	p1, p2 := testProfile(), testProfile()
	p2.Seed = 43
	a, _ := Generate(p1, 5000)
	b, _ := Generate(p2, 5000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Errorf("different seeds produced %d/%d identical refs", same, len(a))
	}
}

func TestGenerateLength(t *testing.T) {
	refs, err := Generate(testProfile(), 12345)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 12345 {
		t.Errorf("len = %d, want 12345", len(refs))
	}
}

func TestStreamComposition(t *testing.T) {
	p := testProfile()
	refs, err := Generate(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	var ifetch, read, write int
	for _, r := range refs {
		switch r.Kind {
		case trace.IFetch:
			ifetch++
			// Instruction fetches must come from the code region.
			if r.Addr < codeBase || r.Addr >= codeBase+addr.Addr(p.CodeSize)+addr.Addr(p.InstrMax) {
				t.Fatalf("ifetch outside code region: %v", r)
			}
			if int(r.Size) < p.InstrMin || int(r.Size) > p.InstrMax {
				t.Fatalf("instruction size %d outside [%d,%d]", r.Size, p.InstrMin, p.InstrMax)
			}
		case trace.Read:
			read++
		case trace.Write:
			write++
		}
		if r.Kind != trace.IFetch {
			inData := r.Addr >= dataBase && r.Addr < dataBase+addr.Addr(p.DataSize)
			inStack := r.Addr >= stackBase && r.Addr < stackBase+addr.Addr(p.StackSize)
			if !inData && !inStack {
				t.Fatalf("data ref outside data/stack regions: %v", r)
			}
		}
	}
	if ifetch == 0 || read == 0 || write == 0 {
		t.Fatalf("missing kinds: ifetch=%d read=%d write=%d", ifetch, read, write)
	}
	// Data references per instruction should be near the profile.
	gotRatio := float64(read+write) / float64(ifetch)
	if gotRatio < p.DataRefsPerInstr*0.8 || gotRatio > p.DataRefsPerInstr*1.2 {
		t.Errorf("data/instr ratio = %.3f, want ~%.3f", gotRatio, p.DataRefsPerInstr)
	}
	// Writes should be near WriteFrac of data references.
	gotWrite := float64(write) / float64(read+write)
	if gotWrite < p.WriteFrac*0.8 || gotWrite > p.WriteFrac*1.2 {
		t.Errorf("write fraction = %.3f, want ~%.3f", gotWrite, p.WriteFrac)
	}
}

func TestForwardBias(t *testing.T) {
	// Instruction fetch addresses should mostly move forward: the
	// property load-forward exploits (§4.4).
	refs, err := Generate(testProfile(), 50000)
	if err != nil {
		t.Fatal(err)
	}
	var fwd, back int
	var prev addr.Addr
	have := false
	for _, r := range refs {
		if r.Kind != trace.IFetch {
			continue
		}
		if have {
			if r.Addr > prev {
				fwd++
			} else if r.Addr < prev {
				back++
			}
		}
		prev = r.Addr
		have = true
	}
	if fwd <= 2*back {
		t.Errorf("insufficient forward bias: fwd=%d back=%d", fwd, back)
	}
}

func TestSequentialRuns(t *testing.T) {
	// Mean instruction run length at word granularity should exceed 2:
	// sequential code is the dominant pattern.
	refs, _ := Generate(testProfile(), 50000)
	_, mean, err := trace.RunLengths(trace.NewSliceSource(refs), 2)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 2 {
		t.Errorf("mean ifetch run length %.2f too short", mean)
	}
}

func TestFootprintOrderingAcrossArchs(t *testing.T) {
	// The architecture working sets must be ordered as the paper
	// characterises them: Z8000 < PDP-11 < VAX-11 < System/370.
	foot := func(a Arch) uint64 {
		p := Workloads(a)[0]
		refs, err := Generate(p, 200000)
		if err != nil {
			t.Fatal(err)
		}
		st, err := trace.Measure(trace.NewSliceSource(refs), a.WordSize())
		if err != nil {
			t.Fatal(err)
		}
		return st.FootprintLen
	}
	z, p, v, s := foot(Z8000), foot(PDP11), foot(VAX11), foot(S370)
	if !(z < p && p < v && v < s) {
		t.Errorf("footprints out of order: Z8000=%d PDP=%d VAX=%d S370=%d", z, p, v, s)
	}
}

func TestCatalogShape(t *testing.T) {
	counts := map[Arch]int{PDP11: 6, Z8000: 9, VAX11: 6, S370: 4}
	seen := map[string]bool{}
	for a, want := range counts {
		ws := Workloads(a)
		if len(ws) != want {
			t.Errorf("%s: %d workloads, want %d (paper tables 2-5)", a, len(ws), want)
		}
		for _, p := range ws {
			if seen[p.Name] {
				t.Errorf("duplicate workload name %s", p.Name)
			}
			seen[p.Name] = true
			if err := p.Validate(); err != nil {
				t.Errorf("workload %s invalid: %v", p.Name, err)
			}
			if p.Arch != a {
				t.Errorf("workload %s has arch %v, want %v", p.Name, p.Arch, a)
			}
			if Describe(p.Name) == "" {
				t.Errorf("workload %s has no description", p.Name)
			}
		}
	}
}

func TestPaperTraceNamesPresent(t *testing.T) {
	// The load-forward study (§4.4) uses the compiler traces CCP, C1,
	// C2; Table 2's PDP-11 names must exist too.
	for _, name := range []string{"CCP", "C1", "C2", "OPSYS", "PLOT", "SIMP", "TRACE", "ROFF", "ED", "SPICE", "FGO1"} {
		if _, ok := ProfileByName(name); !ok {
			t.Errorf("workload %s missing from catalog", name)
		}
	}
}

func TestProfileByNameMiss(t *testing.T) {
	if _, ok := ProfileByName("NOSUCH"); ok {
		t.Error("found nonexistent workload")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 25 {
		t.Errorf("Names() returned %d, want 25", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("names not sorted at %d: %v", i, names)
		}
	}
}

func TestArchMethods(t *testing.T) {
	if PDP11.WordSize() != 2 || Z8000.WordSize() != 2 || VAX11.WordSize() != 4 || S370.WordSize() != 4 {
		t.Error("word sizes wrong")
	}
	if !Z8000.WarmStart() || PDP11.WarmStart() || VAX11.WarmStart() || S370.WarmStart() {
		t.Error("warm-start flags wrong")
	}
	for _, a := range AllArchs() {
		if strings.HasPrefix(a.String(), "Arch(") {
			t.Errorf("missing name for arch %d", int(a))
		}
	}
	if !strings.HasPrefix(Arch(9).String(), "Arch(") {
		t.Error("unknown arch String")
	}
}

func TestDescribeUnknown(t *testing.T) {
	if Describe("NOSUCH") != "" {
		t.Error("Describe returned text for unknown workload")
	}
}

func TestPhasesChangeWorkingSet(t *testing.T) {
	// With phases enabled, a small window of the trace should touch far
	// fewer distinct blocks than the whole trace does.
	p := testProfile()
	refs, _ := Generate(p, 200000)
	window := refs[:5000]
	wStats, _ := trace.Measure(trace.NewSliceSource(window), 2)
	tStats, _ := trace.Measure(trace.NewSliceSource(refs), 2)
	if wStats.UniqueWords*4 >= tStats.UniqueWords {
		t.Errorf("phase structure missing: window footprint %d vs total %d",
			wStats.UniqueWords, tStats.UniqueWords)
	}
}

func TestGeneratorProfileAccessor(t *testing.T) {
	g, err := NewGenerator(testProfile(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Profile().Name != "test" {
		t.Error("Profile() accessor wrong")
	}
}

func TestNoPhaseConfiguration(t *testing.T) {
	// Phases disabled must still generate a valid stream.
	p := testProfile()
	p.PhaseLoci, p.PhaseScalars, p.MeanPhaseLen = 0, 0, 0
	refs, err := Generate(p, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 10000 {
		t.Errorf("len = %d", len(refs))
	}
}
