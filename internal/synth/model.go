// Package synth generates synthetic address traces with controllable
// locality, substituting for the paper's production-program traces
// (Tables 2-5), which no longer exist in distributable form.
//
// The generator is an explicit program-behaviour model rather than a
// noise source.  Its instruction stream executes sequential runs of
// instructions, loops over them with geometric iteration counts, and
// transfers control with the forward bias the paper relies on for
// load-forward ("a program typically branches to a random location
// within a cache block, proceeds sequentially forward, and then branches
// again", §4.4).  Its data stream mixes stack references, Zipf-selected
// hot scalars, forward-moving sequential streams (arrays and strings)
// and uniform references over the data region.  Temporal locality comes
// from loops, the stack and hot scalars; spatial locality from
// sequential runs and streams; and the overall working-set size -- the
// knob that separates the paper's four architectures -- from the code
// and data region sizes.
//
// Everything is deterministic given the profile's seed, so runs are
// repeatable exactly as trace-driven simulation requires.
package synth

import (
	"fmt"
	"io"

	"subcache/internal/addr"
	"subcache/internal/rng"
	"subcache/internal/trace"
)

// Profile parameterises one synthetic workload.  The catalog in this
// package provides profiles standing in for each trace in the paper's
// Tables 2-5.
type Profile struct {
	// Name identifies the workload (e.g. "OPSYS").
	Name string
	// Arch is the architecture the workload models.
	Arch Arch
	// Seed makes the trace reproducible; each workload has its own.
	Seed uint64

	// --- Instruction stream ---

	// CodeSize is the span of the code region in bytes.  The dominant
	// influence on instruction miss ratio at a given cache size.
	CodeSize int
	// HotLoci is the number of frequently executed code locations
	// (loop heads, hot procedures) control transfers target.
	HotLoci int
	// CodeZipf skews locus selection; higher concentrates execution in
	// fewer loci (more temporal locality).
	CodeZipf float64
	// MeanRunLen is the mean number of instructions executed
	// sequentially between control transfers.
	MeanRunLen int
	// PLoop is the probability that a new run is a loop body that will
	// iterate; MeanLoopIter is the mean iteration count.
	PLoop        float64
	MeanLoopIter int
	// PNearJump is the probability a control transfer lands near the
	// current point (short forward skip) instead of at a hot locus.
	PNearJump float64
	// PhaseLoci and PhaseScalars bound the *active* working set: the
	// program executes in phases, each confined to a subset of the hot
	// loci and scalars, re-drawn (by Zipf rank) every MeanPhaseLen
	// instructions.  Phases are what give real programs their knee: a
	// cache that holds one phase's working set hits, a smaller one
	// misses on every locus revisit.  Zero disables phases (all loci
	// always active).
	PhaseLoci    int
	PhaseScalars int
	MeanPhaseLen int
	// InstrMin/InstrMax bound instruction lengths in bytes; actual
	// lengths are a deterministic hash of the address so that re-walks
	// of a loop body fetch identical addresses.
	InstrMin, InstrMax int
	// InstrGrain aligns instruction starts (2 for the 16-bit machines
	// and S/370's halfword alignment, 1 for the byte-aligned VAX).
	InstrGrain int

	// --- Data stream ---

	// DataRefsPerInstr is the mean number of data references issued per
	// instruction executed.
	DataRefsPerInstr float64
	// WriteFrac is the fraction of data references that are writes
	// (excluded from metrics but kept in the trace).
	WriteFrac float64
	// DataSize is the span of the data region in bytes.
	DataSize int
	// StackSize bounds the stack region; stack depth performs a
	// reflected random walk within it.
	StackSize int
	// HotScalars is the number of frequently referenced variables;
	// ScalarZipf skews their selection.
	HotScalars int
	ScalarZipf float64
	// Streams is the number of concurrent sequential data streams
	// (array walks, string scans); MeanStreamLen is the mean advance
	// count before a stream restarts elsewhere.
	Streams       int
	MeanStreamLen int
	// FracStack, FracScalar and FracStream apportion data references;
	// the remainder are uniform over the data region.
	FracStack, FracScalar, FracStream float64

	// AccessSize is the natural data operand size in bytes (the
	// machine's word: 2 or 4).
	AccessSize int
}

// Validate checks internal consistency of the profile.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("synth: profile has no name")
	}
	if p.CodeSize <= 0 || p.DataSize <= 0 || p.StackSize <= 0 {
		return fmt.Errorf("synth %s: non-positive region size", p.Name)
	}
	if p.HotLoci <= 0 || p.HotScalars <= 0 || p.Streams <= 0 {
		return fmt.Errorf("synth %s: non-positive population", p.Name)
	}
	if p.MeanRunLen <= 0 || p.MeanLoopIter <= 0 || p.MeanStreamLen <= 0 {
		return fmt.Errorf("synth %s: non-positive mean", p.Name)
	}
	if p.InstrMin <= 0 || p.InstrMax < p.InstrMin || p.InstrGrain <= 0 {
		return fmt.Errorf("synth %s: bad instruction size bounds", p.Name)
	}
	if p.PhaseLoci < 0 || p.PhaseLoci > p.HotLoci {
		return fmt.Errorf("synth %s: PhaseLoci %d out of [0,%d]", p.Name, p.PhaseLoci, p.HotLoci)
	}
	if p.PhaseScalars < 0 || p.PhaseScalars > p.HotScalars {
		return fmt.Errorf("synth %s: PhaseScalars %d out of [0,%d]", p.Name, p.PhaseScalars, p.HotScalars)
	}
	if (p.PhaseLoci > 0 || p.PhaseScalars > 0) && p.MeanPhaseLen <= 0 {
		return fmt.Errorf("synth %s: phases enabled but MeanPhaseLen %d not positive", p.Name, p.MeanPhaseLen)
	}
	if p.AccessSize != 1 && p.AccessSize != 2 && p.AccessSize != 4 && p.AccessSize != 8 {
		return fmt.Errorf("synth %s: bad access size %d", p.Name, p.AccessSize)
	}
	for _, f := range []float64{p.PLoop, p.PNearJump, p.WriteFrac,
		p.FracStack, p.FracScalar, p.FracStream} {
		if f < 0 || f > 1 {
			return fmt.Errorf("synth %s: probability %g out of [0,1]", p.Name, f)
		}
	}
	if s := p.FracStack + p.FracScalar + p.FracStream; s > 1 {
		return fmt.Errorf("synth %s: data fractions sum to %g > 1", p.Name, s)
	}
	return nil
}

// Region bases keep code, data and stack disjoint.  The 16-bit profiles
// choose region sizes that fit beneath these bases scaled down; bases
// are chosen so all profiles fit a 32-bit space.
const (
	codeBase  = 0x0000_1000
	dataBase  = 0x0010_0000
	stackBase = 0x0080_0000
)

// Generator produces the reference stream for a profile.  It implements
// trace.Source and never returns an error other than io.EOF (when
// constructed with a limit).
type Generator struct {
	p Profile

	// Independent streams per model component so components do not
	// perturb each other's sequences.
	ctlRand   *rng.Stream // control flow
	dataRand  *rng.Stream // data reference mix
	lenRand   *rng.Stream // run/loop/stream lengths
	locusZipf *rng.Zipf
	scalarZ   *rng.Zipf

	loci    []addr.Addr // hot code locations
	scalars []addr.Addr // hot variable addresses

	// Instruction engine state.
	pc       addr.Addr
	runLeft  int // instructions left in the current sequential run
	loopHead addr.Addr
	loopLen  int // instructions per loop-body walk
	loopLeft int // iterations remaining

	// Phase state: currently active subsets of loci and scalars, and
	// the countdown (in instructions) to the next phase change.
	activeLoci    []addr.Addr
	activeScalars []addr.Addr
	phaseLeft     int

	// Data engine state.
	stackTop int // byte offset within the stack region
	streams  []addr.Addr

	// Interleaving: data references owed before the next ifetch.
	// pending[pendHead:] is the drain queue; the backing array is
	// reused across refills so steady-state generation never allocates.
	owedData float64
	pending  []trace.Ref
	pendHead int

	emitted int
	limit   int // <= 0: unlimited
}

// NewGenerator builds a generator for p.  limit bounds the number of
// references emitted (<= 0 for unlimited; the paper uses 1,000,000).
func NewGenerator(p Profile, limit int) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(p.Seed)
	g := &Generator{
		p:        p,
		ctlRand:  root.Split(),
		dataRand: root.Split(),
		lenRand:  root.Split(),
		limit:    limit,
	}
	layout := root.Split()
	g.loci = make([]addr.Addr, p.HotLoci)
	for i := range g.loci {
		g.loci[i] = codeBase + addr.AlignDown(addr.Addr(layout.Intn(p.CodeSize)), uint64(p.InstrGrain))
	}
	g.scalars = make([]addr.Addr, p.HotScalars)
	for i := range g.scalars {
		g.scalars[i] = dataBase + addr.AlignDown(addr.Addr(layout.Intn(p.DataSize)), uint64(p.AccessSize))
	}
	g.streams = make([]addr.Addr, p.Streams)
	for i := range g.streams {
		g.streams[i] = dataBase + addr.AlignDown(addr.Addr(layout.Intn(p.DataSize)), uint64(p.AccessSize))
	}
	g.locusZipf = rng.NewZipf(g.ctlRand.Split(), p.HotLoci, p.CodeZipf)
	g.scalarZ = rng.NewZipf(g.dataRand.Split(), p.HotScalars, p.ScalarZipf)
	g.stackTop = p.StackSize / 2
	g.newPhase()
	g.newRun()
	return g, nil
}

// newPhase re-draws the active locus and scalar subsets.  Subset members
// are drawn by Zipf rank from the global populations, so hot loci recur
// across phases (inter-phase temporal locality) while each phase's
// footprint stays bounded.
func (g *Generator) newPhase() {
	p := &g.p
	if p.PhaseLoci == 0 && p.PhaseScalars == 0 {
		g.activeLoci = g.loci
		g.activeScalars = g.scalars
		g.phaseLeft = 1 << 62 // effectively never
		return
	}
	pick := func(pop []addr.Addr, z *rng.Zipf, n int) []addr.Addr {
		if n == 0 {
			return pop
		}
		out := make([]addr.Addr, n)
		for i := range out {
			out[i] = pop[z.Next()]
		}
		return out
	}
	g.activeLoci = pick(g.loci, g.locusZipf, p.PhaseLoci)
	g.activeScalars = pick(g.scalars, g.scalarZ, p.PhaseScalars)
	g.phaseLeft = 1 + g.lenRand.Geometric(1/float64(p.MeanPhaseLen))
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// instrLen returns the deterministic instruction length at a, so loop
// re-walks refetch identical addresses: static code has static layout.
func (g *Generator) instrLen(a addr.Addr) int {
	span := (g.p.InstrMax - g.p.InstrMin) / g.p.InstrGrain
	if span == 0 {
		return g.p.InstrMin
	}
	// SplitMix-style avalanche of the address and seed.
	h := uint64(a) ^ g.p.Seed*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return g.p.InstrMin + int(h%uint64(span+1))*g.p.InstrGrain
}

// newRun chooses the next control-flow target and run shape.
func (g *Generator) newRun() {
	p := &g.p
	g.runLeft = 1 + g.lenRand.Geometric(1/float64(p.MeanRunLen))
	var target addr.Addr
	if g.pc != 0 && g.ctlRand.Bool(p.PNearJump) {
		// Short forward skip: the forward bias of real code.
		skip := (1 + g.ctlRand.Intn(8)) * p.InstrMax
		target = g.pc + addr.Addr(skip)
		if target >= codeBase+addr.Addr(p.CodeSize) {
			target = g.pickLocus()
		}
	} else {
		target = g.pickLocus()
	}
	target = addr.AlignDown(target, uint64(p.InstrGrain))
	g.pc = target
	if g.ctlRand.Bool(p.PLoop) {
		g.loopHead = target
		g.loopLen = g.runLeft
		g.loopLeft = g.lenRand.Geometric(1 / float64(p.MeanLoopIter))
	} else {
		g.loopLeft = 0
	}
}

// pickLocus selects a control-transfer target: uniformly from the
// active phase subset when phases are enabled, otherwise by Zipf rank
// from the whole population.
func (g *Generator) pickLocus() addr.Addr {
	if g.p.PhaseLoci > 0 {
		return g.activeLoci[g.ctlRand.Intn(len(g.activeLoci))]
	}
	return g.loci[g.locusZipf.Next()]
}

// pickScalar is the data-side analogue of pickLocus.
func (g *Generator) pickScalar() addr.Addr {
	if g.p.PhaseScalars > 0 {
		return g.activeScalars[g.dataRand.Intn(len(g.activeScalars))]
	}
	return g.scalars[g.scalarZ.Next()]
}

// stepInstr emits the next instruction fetch and advances control flow.
func (g *Generator) stepInstr() trace.Ref {
	p := &g.p
	g.phaseLeft--
	if g.phaseLeft <= 0 {
		g.newPhase()
	}
	ilen := g.instrLen(g.pc)
	ref := trace.Ref{Addr: g.pc, Kind: trace.IFetch, Size: uint8(ilen)}
	g.pc += addr.Addr(ilen)
	if g.pc >= codeBase+addr.Addr(p.CodeSize) {
		g.pc = codeBase
	}
	g.runLeft--
	if g.runLeft == 0 {
		if g.loopLeft > 0 {
			g.loopLeft--
			g.pc = g.loopHead
			g.runLeft = g.loopLen
		} else {
			g.newRun()
		}
	}
	return ref
}

// stepData emits one data reference from the mixture model.
func (g *Generator) stepData() trace.Ref {
	p := &g.p
	var a addr.Addr
	u := g.dataRand.Float64()
	switch {
	case u < p.FracStack:
		// Reflected random walk of the stack top; references cluster
		// just below it (locals of the current frame).
		step := (g.dataRand.Intn(3) - 1) * p.AccessSize
		g.stackTop += step
		if g.stackTop < 0 {
			g.stackTop = 0
		}
		if g.stackTop >= p.StackSize {
			g.stackTop = p.StackSize - p.AccessSize
		}
		back := g.dataRand.Geometric(0.5) * p.AccessSize
		off := g.stackTop - back
		if off < 0 {
			off = 0
		}
		a = stackBase + addr.Addr(off)
	case u < p.FracStack+p.FracScalar:
		a = g.pickScalar()
	case u < p.FracStack+p.FracScalar+p.FracStream:
		i := g.dataRand.Intn(len(g.streams))
		a = g.streams[i]
		g.streams[i] += addr.Addr(p.AccessSize)
		end := addr.Addr(dataBase + p.DataSize)
		restart := g.streams[i] >= end ||
			g.dataRand.Bool(1/float64(p.MeanStreamLen))
		if restart {
			g.streams[i] = dataBase + addr.AlignDown(
				addr.Addr(g.dataRand.Intn(p.DataSize)), uint64(p.AccessSize))
		}
	default:
		a = dataBase + addr.AlignDown(
			addr.Addr(g.dataRand.Intn(p.DataSize)), uint64(p.AccessSize))
	}
	kind := trace.Read
	if g.dataRand.Bool(p.WriteFrac) {
		kind = trace.Write
	}
	return trace.Ref{Addr: a, Kind: kind, Size: uint8(p.AccessSize)}
}

// Next implements trace.Source.
func (g *Generator) Next() (trace.Ref, error) {
	if g.limit > 0 && g.emitted >= g.limit {
		return trace.Ref{}, io.EOF
	}
	g.emitted++
	if g.pendHead < len(g.pending) {
		r := g.pending[g.pendHead]
		g.pendHead++
		return r, nil
	}
	ref := g.stepInstr()
	g.owedData += g.p.DataRefsPerInstr
	g.pending = g.pending[:0]
	g.pendHead = 0
	for g.owedData >= 1 {
		g.owedData--
		g.pending = append(g.pending, g.stepData())
	}
	return ref, nil
}

// NewWordSource returns the profile's reference stream pre-split to
// word accesses on a data path of the given width: the exact input a
// cache simulation replays, as a stream.  limit bounds the generated
// references before splitting, so the emitted accesses match
// Generate(p, limit) expanded through trace.SplitAll.
func NewWordSource(p Profile, limit, wordSize int) (trace.Source, error) {
	g, err := NewGenerator(p, limit)
	if err != nil {
		return nil, err
	}
	return trace.NewSplitter(g, wordSize), nil
}

// Generate materialises n references of the profile into memory,
// a convenience for the sweep harness (which replays one trace through
// many cache configurations).
func Generate(p Profile, n int) ([]trace.Ref, error) {
	g, err := NewGenerator(p, n)
	if err != nil {
		return nil, err
	}
	refs := make([]trace.Ref, 0, n)
	for {
		r, err := g.Next()
		if err == io.EOF {
			return refs, nil
		}
		if err != nil {
			return nil, err
		}
		refs = append(refs, r)
	}
}
