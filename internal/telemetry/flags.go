package telemetry

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Flags is the shared observability flag bundle, so every command
// exposes the same vocabulary:
//
//	-pprof, -cpuprofile, -memprofile        (RegisterFlags: all commands)
//	-events, -manifest, -progress, -heartbeat (RegisterSweepFlags: sweep drivers)
//
// After flag parsing, Start turns the bundle into a live Session.
type Flags struct {
	Pprof      string
	CPUProfile string
	MemProfile string
	Version    bool

	Events    string
	Manifest  string
	Progress  bool
	Heartbeat time.Duration

	sweep bool
}

// RegisterFlags registers the profiling flags every command shares.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Pprof, "pprof", "", "serve net/http/pprof on `addr` (e.g. localhost:6060; :0 picks a port) for live profiling")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile of the run to `file`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile at exit to `file`")
	fs.BoolVar(&f.Version, "version", false, "print the build version and exit")
	return f
}

// PrintVersion writes the standard one-line version report.
func PrintVersion(tool string) {
	fmt.Printf("%s %s %s %s/%s\n", tool, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// RegisterSweepFlags additionally registers the sweep-driver telemetry
// flags: the event stream, the run manifest and the progress line.
func (f *Flags) RegisterSweepFlags(fs *flag.FlagSet) {
	f.sweep = true
	fs.StringVar(&f.Events, "events", "", "write the structured telemetry event stream (JSONL) to `file`")
	fs.StringVar(&f.Manifest, "manifest", "", "write a RUN.json run manifest to `file` at exit")
	fs.BoolVar(&f.Progress, "progress", false, "print a single updating progress line (points done, refs/sec, ETA) to stderr")
	fs.DurationVar(&f.Heartbeat, "heartbeat", time.Second, "heartbeat/progress `interval`")
}

// Session is a command's live observability state: the recorder to
// thread into the pipeline, plus the profiles, pprof server, event
// sink, progress line and manifest that Close finalises.
type Session struct {
	// Manifest collects run metadata (engine, shards, seed);
	// commands fill it in before Close, which writes it if -manifest
	// was given.  Always non-nil.
	Manifest *Manifest

	flags     *Flags
	start     time.Time
	run       *Run // nil when only profiling flags are active
	progress  *Progress
	stopCPU   func()
	stopPprof func()
}

// Start materialises the flag bundle: opens the event sink, starts
// the heartbeat, progress line, pprof server and CPU profile.
// fingerprint should hash whatever determines the run's results (see
// Fingerprint); it lands in the manifest.
func (f *Flags) Start(tool, fingerprint string) (*Session, error) {
	if f.Version {
		PrintVersion(tool)
		os.Exit(0)
	}
	s := &Session{flags: f, start: time.Now(), Manifest: NewManifest(tool, fingerprint)}

	var sink Sink
	if f.Events != "" {
		js, err := CreateJSONLSink(f.Events)
		if err != nil {
			return nil, err
		}
		sink = js
		s.Manifest.EventsFile = f.Events
	}
	if f.Progress {
		s.progress = NewProgress(os.Stderr, tool)
	}
	if sink != nil || s.progress != nil || f.Manifest != "" {
		opts := Options{Sink: sink, TraceID: fingerprint}
		if sink != nil || s.progress != nil {
			opts.Heartbeat = f.Heartbeat
		}
		if s.progress != nil {
			opts.OnHeartbeat = s.progress.Update
		}
		s.run = NewRun(opts)
	}

	if f.Pprof != "" {
		addr, stop, err := ServePprof(f.Pprof)
		if err != nil {
			s.abort()
			return nil, err
		}
		s.stopPprof = stop
		fmt.Fprintf(os.Stderr, "%s: pprof listening on http://%s/debug/pprof/\n", tool, addr)
	}
	if f.CPUProfile != "" {
		stop, err := StartCPUProfile(f.CPUProfile)
		if err != nil {
			s.abort()
			return nil, err
		}
		s.stopCPU = stop
	}
	return s, nil
}

// Recorder returns the recorder to thread into the pipeline (Nop when
// no telemetry output was requested, so callers never branch).
func (s *Session) Recorder() Recorder {
	if s.run == nil {
		return Nop
	}
	return s.run
}

// abort tears down a half-started session.
func (s *Session) abort() {
	if s.run != nil {
		s.run.Close()
	}
	if s.stopPprof != nil {
		s.stopPprof()
	}
	if s.stopCPU != nil {
		s.stopCPU()
	}
}

// Close finalises the session: final heartbeat, progress line, event
// sink flush, RUN.json manifest, profiles, pprof server.  It returns
// the first error; simulation results are unaffected either way.
func (s *Session) Close() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if s.run != nil {
		keep(s.run.CloseInterrupted(s.Manifest.Interrupted))
		if s.progress != nil {
			s.progress.Done(s.run.Snapshot())
		}
	}
	if s.flags.Manifest != "" {
		s.Manifest.Finish(s.start, s.run)
		keep(s.Manifest.Write(s.flags.Manifest))
	}
	if s.stopCPU != nil {
		s.stopCPU()
	}
	if s.flags.MemProfile != "" {
		keep(WriteHeapProfile(s.flags.MemProfile))
	}
	if s.stopPprof != nil {
		s.stopPprof()
	}
	return first
}
