package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress renders a single updating status line from heartbeat
// snapshots: points done/planned, reference throughput, and a coarse
// ETA.  It writes carriage-return-rewritten lines (no scrollback
// spam) and is off unless a command passes -progress, so default
// stdout/stderr stay byte-identical.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	tool     string
	start    time.Time
	lastRefs uint64
	lastAt   time.Time
	width    int // widest line written, for trailing-blank erasure
}

// NewProgress returns a renderer writing to w (conventionally stderr).
func NewProgress(w io.Writer, tool string) *Progress {
	now := time.Now()
	return &Progress{w: w, tool: tool, start: now, lastAt: now}
}

// Update renders one snapshot; wire it to Options.OnHeartbeat.
func (p *Progress) Update(s *Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()

	done := s.Counter(PointsCompleted) + s.Counter(PointsFailed) + s.Counter(PointsResumed)
	planned := s.Counter(PointsPlanned)
	refs := s.Counter(RefsSimulated)

	now := time.Now()
	var rate float64 // refs/sec since the previous update
	if dt := now.Sub(p.lastAt).Seconds(); dt > 0 && refs >= p.lastRefs {
		rate = float64(refs-p.lastRefs) / dt
	}
	p.lastRefs, p.lastAt = refs, now

	line := fmt.Sprintf("%s: points %d/%d", p.tool, done, planned)
	if rate > 0 {
		line += fmt.Sprintf("  %s refs/s", siCount(rate))
	}
	// The per-point average divides by points actually simulated this
	// run: checkpoint-resumed points completed instantly and would
	// drag the estimate (and the ETA) far below reality.
	simulated := s.Counter(PointsCompleted) + s.Counter(PointsFailed)
	if planned > done && simulated > 0 {
		perPoint := now.Sub(p.start) / time.Duration(simulated)
		eta := time.Duration(planned-done) * perPoint
		line += fmt.Sprintf("  eta %s", eta.Round(time.Second))
	}
	if failed := s.Counter(PointsFailed); failed > 0 {
		line += fmt.Sprintf("  (%d failed)", failed)
	}
	p.render(line)
}

// Done finalises the line with the run's outcome and a newline.
func (p *Progress) Done(s *Snapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	done := s.Counter(PointsCompleted) + s.Counter(PointsResumed)
	line := fmt.Sprintf("%s: %d points done (%d resumed, %d failed) in %s",
		p.tool, done, s.Counter(PointsResumed), s.Counter(PointsFailed),
		time.Since(p.start).Round(time.Millisecond))
	p.render(line)
	fmt.Fprintln(p.w)
}

// render rewrites the status line in place, blanking any residue from
// a longer previous line.
func (p *Progress) render(line string) {
	pad := ""
	if n := p.width - len(line); n > 0 {
		for i := 0; i < n; i++ {
			pad += " "
		}
	}
	if len(line) > p.width {
		p.width = len(line)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
}

// siCount formats a rate with an SI suffix (12.3M, 456k, 789).
func siCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
