package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// maxShards bounds the per-shard aggregate array.  Shard counts come
// from GOMAXPROCS, so 256 is far beyond any real machine this runs on;
// higher indexes are clamped into the last cell rather than dropped.
const maxShards = 256

// shardCell is one shard's atomics.
type shardCell struct {
	refs      atomic.Uint64
	busyNanos atomic.Int64
}

// Options configures a Run recorder.  The zero value is a pure counter
// recorder: no events, no heartbeat.
type Options struct {
	// Sink receives emitted events; nil discards them.
	Sink Sink
	// Heartbeat, when positive, emits a heartbeat event (and calls
	// OnHeartbeat) at this interval until Close.
	Heartbeat time.Duration
	// OnHeartbeat, if set, observes each heartbeat snapshot; the
	// progress line hangs off this.
	OnHeartbeat func(*Snapshot)
	// TraceID, when set, is stamped into every emitted span event that
	// does not carry its own trace: the job fingerprint for service
	// jobs, the config fingerprint for CLI sweeps.
	TraceID string
}

// Run is the live Recorder: pre-sized atomic arrays for counters,
// gauges, stage times and shard aggregates, plus an optional event
// sink and heartbeat.  All methods are safe for concurrent use.
type Run struct {
	start      time.Time
	counters   [numCounters]atomic.Uint64
	gauges     [numGauges]atomic.Int64
	stages     [numStages]atomic.Int64 // nanoseconds
	stageN     [numStages]atomic.Uint64
	stageHists [numStages]Histogram
	hists      [numHists]Histogram
	shards     [maxShards]shardCell
	nshards    atomic.Int64 // highest shard index observed + 1
	seq        atomic.Uint64

	opts Options

	// emitMu makes seq stamping and the sink write one critical
	// section, so events reach the sink in seq order (ValidateStream
	// requires strictly increasing seq in file order).  The no-sink
	// path skips it and uses the atomic alone.
	emitMu sync.Mutex

	hbStop chan struct{}
	hbDone sync.WaitGroup
	closed atomic.Bool
}

// NewRun returns a live recorder and starts its heartbeat (if any).
func NewRun(opts Options) *Run {
	r := &Run{start: time.Now(), opts: opts, hbStop: make(chan struct{})}
	if opts.Heartbeat > 0 {
		r.hbDone.Add(1)
		go r.heartbeatLoop(opts.Heartbeat)
	}
	return r
}

// Enabled implements Recorder.
func (r *Run) Enabled() bool { return true }

// Add implements Recorder.
func (r *Run) Add(c Counter, n uint64) {
	if c >= 0 && c < numCounters {
		r.counters[c].Add(n)
	}
}

// SetGauge implements Recorder.
func (r *Run) SetGauge(g Gauge, v int64) {
	if g >= 0 && g < numGauges {
		r.gauges[g].Store(v)
	}
}

// Observe implements Recorder: the duration accumulates into the
// stage's total, bumps its observation count, and lands in its latency
// histogram, all atomically.
func (r *Run) Observe(s Stage, d time.Duration) {
	if s >= 0 && s < numStages {
		r.stages[s].Add(int64(d))
		r.stageN[s].Add(1)
		r.stageHists[s].ObserveDur(d)
	}
}

// ObserveDur implements Recorder.
func (r *Run) ObserveDur(h Hist, d time.Duration) {
	if h >= 0 && h < numHists {
		r.hists[h].ObserveDur(d)
	}
}

// ShardObserve implements Recorder.
func (r *Run) ShardObserve(shard int, refs uint64, busy time.Duration) {
	if shard < 0 {
		return
	}
	if shard >= maxShards {
		shard = maxShards - 1
	}
	r.shards[shard].refs.Add(refs)
	r.shards[shard].busyNanos.Add(int64(busy))
	for {
		n := r.nshards.Load()
		if int64(shard) < n || r.nshards.CompareAndSwap(n, int64(shard)+1) {
			return
		}
	}
}

// Emit implements Recorder: stamps the event and writes it to the
// sink.  Stamping and the sink write share one critical section so
// concurrent emitters (shard workers, the heartbeat goroutine) cannot
// interleave out of seq order in the stream.  A sink failure
// increments EventsDropped and is otherwise swallowed -- telemetry
// never fails a simulation.
func (r *Run) Emit(ev *Event) {
	ev.V = SchemaVersion
	if r.opts.TraceID != "" {
		if ev.Span != nil && ev.Span.Trace == "" {
			ev.Span.Trace = r.opts.TraceID
		}
		if ev.SpanEnd != nil && ev.SpanEnd.Trace == "" {
			ev.SpanEnd.Trace = r.opts.TraceID
		}
	}
	if r.opts.Sink == nil {
		ev.Seq = r.seq.Add(1) - 1
		ev.ElapsedMS = time.Since(r.start).Milliseconds()
		return
	}
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	ev.Seq = r.seq.Add(1) - 1
	ev.ElapsedMS = time.Since(r.start).Milliseconds()
	if err := r.opts.Sink.Write(ev); err != nil {
		r.counters[EventsDropped].Add(1)
	}
}

// Elapsed is the wall time since the recorder was created.
func (r *Run) Elapsed() time.Duration { return time.Since(r.start) }

// Snapshot copies the recorder's current state.
func (r *Run) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters: make(map[string]uint64, numCounters),
		Gauges:   make(map[string]int64, numGauges),
		StagesMS: make(map[string]float64, numStages),
	}
	for c := Counter(0); c < numCounters; c++ {
		if v := r.counters[c].Load(); v != 0 {
			s.Counters[c.String()] = v
		}
	}
	for g := Gauge(0); g < numGauges; g++ {
		if v := r.gauges[g].Load(); v != 0 {
			s.Gauges[g.String()] = v
		}
	}
	for st := Stage(0); st < numStages; st++ {
		if v := r.stages[st].Load(); v != 0 {
			s.StagesMS[st.String()] = float64(v) / 1e6
		}
		if n := r.stageN[st].Load(); n != 0 {
			if s.StagesN == nil {
				s.StagesN = make(map[string]uint64, numStages)
			}
			s.StagesN[st.String()] = n
		}
		if hs := r.stageHists[st].Snap(); hs != nil {
			if s.Hists == nil {
				s.Hists = make(map[string]*HistSnap)
			}
			s.Hists["stage_"+st.String()] = hs
		}
	}
	for h := Hist(0); h < numHists; h++ {
		if hs := r.hists[h].Snap(); hs != nil {
			if s.Hists == nil {
				s.Hists = make(map[string]*HistSnap)
			}
			s.Hists[h.String()] = hs
		}
	}
	for i := int64(0); i < r.nshards.Load(); i++ {
		s.Shards = append(s.Shards, ShardSnap{
			Shard:  int(i),
			Refs:   r.shards[i].refs.Load(),
			BusyMS: float64(r.shards[i].busyNanos.Load()) / 1e6,
		})
	}
	return s
}

// heartbeatLoop emits a heartbeat event per tick until Close.
func (r *Run) heartbeatLoop(every time.Duration) {
	defer r.hbDone.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.heartbeat()
		case <-r.hbStop:
			return
		}
	}
}

// heartbeat emits one heartbeat event and invokes the callback.
func (r *Run) heartbeat() {
	snap := r.Snapshot()
	r.Emit(&Event{Type: EventHeartbeat, Heartbeat: &Heartbeat{Snapshot: snap}})
	if r.opts.OnHeartbeat != nil {
		r.opts.OnHeartbeat(snap)
	}
}

// Close finalises the recorder for a completed run; see CloseInterrupted.
func (r *Run) Close() error { return r.CloseInterrupted(false) }

// CloseInterrupted stops the heartbeat, emits one final beat (when a
// heartbeat consumer is configured) followed by the terminal run-end
// event, and closes the sink.  The heartbeat goroutine is fully joined
// before the run-end event is stamped, and Emit serialises the sink, so
// no heartbeat can ever land after the terminal event -- ValidateStream
// enforces exactly that ordering on the written stream.  interrupted
// marks a run cut short by a signal, cancellation or drain.  Safe to
// call twice; the recorder's counters remain readable afterwards.
func (r *Run) CloseInterrupted(interrupted bool) error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(r.hbStop)
	r.hbDone.Wait()
	if r.opts.Heartbeat > 0 || r.opts.OnHeartbeat != nil {
		r.heartbeat()
	}
	if r.opts.Sink != nil {
		r.Emit(&Event{Type: EventRunEnd, RunEnd: &RunEnd{Interrupted: interrupted, Snapshot: r.Snapshot()}})
		return r.opts.Sink.Close()
	}
	return nil
}
