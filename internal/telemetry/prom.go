package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled to
// keep the repository dependency-free.  WritePromText renders a
// Snapshot; ValidatePromText is the strict consumer-side check the CI
// smoke runs against a live scrape, the same role eventcheck plays for
// the JSONL stream.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promWriter accumulates families in deterministic order.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) family(name, typ, help string) {
	p.printf("# HELP %s %s\n", name, help)
	p.printf("# TYPE %s %s\n", name, typ)
}

// histFamily writes one histogram family.  Each series set (one per
// label set) carries the cumulative buckets, +Inf, _sum and _count.
// labels is the extra label rendered per series ("" for none).
func (p *promWriter) histSeries(name, labels string, s *HistSnap) {
	lbl := func(le string) string {
		if labels == "" {
			return fmt.Sprintf(`{le="%s"}`, le)
		}
		return fmt.Sprintf(`{%s,le="%s"}`, labels, le)
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.N
		if b.LoNanos >= overflowLo {
			// The unbounded overflow bucket has no finite upper edge;
			// its mass appears in +Inf only.
			continue
		}
		// The bucket's exclusive upper bound in seconds: 2*lo (1ns for
		// the zero bucket).
		p.printf("%s_bucket%s %d\n", name, lbl(promFloat(float64(b.hi())/1e9)), cum)
	}
	inf := "+Inf"
	if labels != "" {
		p.printf("%s_bucket{%s,le=\"%s\"} %d\n", name, labels, inf, s.Count)
	} else {
		p.printf("%s_bucket{le=\"%s\"} %d\n", name, inf, s.Count)
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	p.printf("%s_sum%s %s\n", name, suffix, promFloat(float64(s.SumNanos)/1e9))
	p.printf("%s_count%s %d\n", name, suffix, s.Count)
}

// WritePromText renders a telemetry snapshot as Prometheus text
// exposition under the given namespace prefix.  extra adds gauges
// outside the snapshot (cache sizes, worker counts); build, when
// non-nil, emits a <ns>_build_info gauge with its entries as labels
// (injectable so the golden test is deterministic).  Output order is
// fully deterministic: build info, counters, gauges, stage totals,
// histograms, shard series -- each sorted by name.
func WritePromText(w io.Writer, ns string, s *Snapshot, extra map[string]float64, build map[string]string) error {
	p := &promWriter{w: w}

	if build != nil {
		keys := make([]string, 0, len(build))
		for k := range build {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf(`%s="%s"`, k, promEscape(build[k])))
		}
		name := ns + "_build_info"
		p.family(name, "gauge", "Build information as labels; value is always 1.")
		p.printf("%s{%s} 1\n", name, strings.Join(parts, ","))
	}

	// Counters.  Cumulative-nanosecond counters become seconds to
	// follow Prometheus base-unit conventions.
	cnames := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		cnames = append(cnames, n)
	}
	sort.Strings(cnames)
	for _, n := range cnames {
		v := s.Counters[n]
		if strings.HasSuffix(n, "_nanos") {
			name := ns + "_" + strings.TrimSuffix(n, "_nanos") + "_seconds_total"
			p.family(name, "counter", "Cumulative "+strings.TrimSuffix(n, "_nanos")+" time in seconds.")
			p.printf("%s %s\n", name, promFloat(float64(v)/1e9))
			continue
		}
		name := ns + "_" + n + "_total"
		p.family(name, "counter", "Monotonic counter "+n+" (see docs/OBSERVABILITY.md).")
		p.printf("%s %d\n", name, v)
	}

	// Gauges: snapshot gauges then caller extras, one sorted space.
	type gauge struct {
		name string
		val  float64
	}
	var gauges []gauge
	for n, v := range s.Gauges {
		gauges = append(gauges, gauge{ns + "_" + n, float64(v)})
	}
	for n, v := range extra {
		gauges = append(gauges, gauge{ns + "_" + n, v})
	}
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	for _, g := range gauges {
		p.family(g.name, "gauge", "Instantaneous value (see docs/OBSERVABILITY.md).")
		p.printf("%s %s\n", g.name, promFloat(g.val))
	}

	// Stage totals: cumulative seconds and observation counts, one
	// family each with a stage label.
	if len(s.StagesMS) > 0 {
		snames := make([]string, 0, len(s.StagesMS))
		for n := range s.StagesMS {
			snames = append(snames, n)
		}
		sort.Strings(snames)
		name := ns + "_stage_seconds_total"
		p.family(name, "counter", "Cumulative wall time per pipeline stage in seconds.")
		for _, n := range snames {
			p.printf("%s{stage=\"%s\"} %s\n", name, promEscape(n), promFloat(s.StagesMS[n]/1e3))
		}
	}
	if len(s.StagesN) > 0 {
		snames := make([]string, 0, len(s.StagesN))
		for n := range s.StagesN {
			snames = append(snames, n)
		}
		sort.Strings(snames)
		name := ns + "_stage_observations_total"
		p.family(name, "counter", "Observations per pipeline stage (mean latency = stage_seconds_total / this).")
		for _, n := range snames {
			p.printf("%s{stage=\"%s\"} %d\n", name, promEscape(n), s.StagesN[n])
		}
	}

	// Histograms: stage histograms fold into one family under a stage
	// label; the service-level set gets a family per histogram.
	var stageHists, plainHists []string
	for n, hs := range s.Hists {
		if hs == nil || hs.Count == 0 {
			continue
		}
		if strings.HasPrefix(n, "stage_") {
			stageHists = append(stageHists, n)
		} else {
			plainHists = append(plainHists, n)
		}
	}
	sort.Strings(stageHists)
	sort.Strings(plainHists)
	if len(stageHists) > 0 {
		name := ns + "_stage_duration_seconds"
		p.family(name, "histogram", "Latency distribution per pipeline stage (log2 buckets).")
		for _, n := range stageHists {
			p.histSeries(name, fmt.Sprintf(`stage="%s"`, promEscape(strings.TrimPrefix(n, "stage_"))), s.Hists[n])
		}
	}
	for _, n := range plainHists {
		name := ns + "_" + n + "_seconds"
		p.family(name, "histogram", "Latency distribution of "+n+" (log2 buckets).")
		p.histSeries(name, "", s.Hists[n])
	}

	// Per-shard aggregates.
	if len(s.Shards) > 0 {
		name := ns + "_shard_refs_total"
		p.family(name, "counter", "Trace references fed to each shard worker.")
		for _, sh := range s.Shards {
			p.printf("%s{shard=\"%d\"} %d\n", name, sh.Shard, sh.Refs)
		}
		name = ns + "_shard_busy_seconds_total"
		p.family(name, "counter", "Busy (simulating) time per shard worker in seconds.")
		for _, sh := range s.Shards {
			p.printf("%s{shard=\"%d\"} %s\n", name, sh.Shard, promFloat(sh.BusyMS/1e3))
		}
	}
	return p.err
}

// PromStats summarises a validated exposition.
type PromStats struct {
	// Families counts metric families, Series distinct label sets,
	// Samples sample lines.
	Families int
	Series   int
	Samples  int
}

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// baseFamily strips a histogram sample suffix back to its family name.
func baseFamily(name string) (string, string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf), suf
		}
	}
	return name, ""
}

// parsePromLabels parses `name{a="b",c="d"} value` bodies.  Returns
// the label map and the remainder after the closing brace.
func parsePromLabels(s string, line int) (map[string]string, string, error) {
	labels := make(map[string]string)
	rest := s
	for {
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("line %d: malformed label pair %q", line, rest)
		}
		name := strings.TrimSpace(rest[:eq])
		if !promLabelRe.MatchString(name) {
			return nil, "", fmt.Errorf("line %d: bad label name %q", line, name)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("line %d: label %s value not quoted", line, name)
		}
		rest = rest[1:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, "", fmt.Errorf("line %d: dangling escape in label %s", line, name)
				}
				i++
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("line %d: bad escape \\%c in label %s", line, rest[i], name)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, "", fmt.Errorf("line %d: unterminated label value for %s", line, name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("line %d: duplicate label %s", line, name)
		}
		labels[name] = val.String()
		rest = rest[i+1:]
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		return nil, "", fmt.Errorf("line %d: expected ',' or '}' after label %s", line, name)
	}
}

// labelKey canonicalises a label set minus `le`, for grouping a
// histogram family's series.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// seriesKey canonicalises a full label set, for duplicate detection.
func seriesKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		fmt.Fprintf(&b, "{%s=%q}", k, labels[k])
	}
	return b.String()
}

// ValidatePromText strictly parses a Prometheus text exposition:
// comment grammar (# HELP / # TYPE with a known type, TYPE at most
// once per family and before its samples), metric and label name
// syntax, quoted/escaped label values, parseable float values, no
// duplicate series, family contiguity (a family's samples may not
// interleave with another's), and histogram coherence per series set:
// `le` strictly increasing with cumulative non-decreasing counts, a
// `+Inf` bucket present and equal to `_count`, and `_sum` present.
// This is the check CI runs against a live sweepd scrape.
func ValidatePromText(r io.Reader) (PromStats, error) {
	var st PromStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	types := make(map[string]string) // family -> declared type
	helps := make(map[string]bool)
	seen := make(map[string]bool) // full series keys
	finished := make(map[string]bool)
	current := "" // family whose block we are inside
	samples := make(map[string][]promSample)

	closeFamily := func(fam string) {
		if fam != "" {
			finished[fam] = true
		}
	}

	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				// Other comments are legal and ignored.
				continue
			}
			fam := fields[2]
			if !promMetricRe.MatchString(fam) {
				return st, fmt.Errorf("line %d: bad metric name %q in %s", line, fam, fields[1])
			}
			if fam != current {
				closeFamily(current)
				if finished[fam] {
					return st, fmt.Errorf("line %d: family %s reopened (samples must be contiguous)", line, fam)
				}
				current = fam
			}
			if fields[1] == "HELP" {
				if helps[fam] {
					return st, fmt.Errorf("line %d: second HELP for %s", line, fam)
				}
				helps[fam] = true
				continue
			}
			if len(fields) < 4 {
				return st, fmt.Errorf("line %d: TYPE %s missing type", line, fam)
			}
			typ := strings.TrimSpace(fields[3])
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return st, fmt.Errorf("line %d: unknown type %q for %s", line, typ, fam)
			}
			if _, dup := types[fam]; dup {
				return st, fmt.Errorf("line %d: second TYPE for %s", line, fam)
			}
			if len(samples[fam]) > 0 {
				return st, fmt.Errorf("line %d: TYPE for %s after its samples", line, fam)
			}
			types[fam] = typ
			continue
		}

		// Sample line: name[{labels}] value [timestamp]
		name := text
		labels := map[string]string{}
		rest := ""
		if i := strings.IndexAny(text, "{ \t"); i >= 0 {
			name, rest = text[:i], text[i:]
		}
		if !promMetricRe.MatchString(name) {
			return st, fmt.Errorf("line %d: bad metric name %q", line, name)
		}
		if strings.HasPrefix(rest, "{") {
			var err error
			labels, rest, err = parsePromLabels(rest[1:], line)
			if err != nil {
				return st, err
			}
		}
		rest = strings.TrimSpace(rest)
		valueStr := rest
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			valueStr = rest[:i]
			ts := strings.TrimSpace(rest[i:])
			if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
				return st, fmt.Errorf("line %d: bad timestamp %q", line, ts)
			}
		}
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			return st, fmt.Errorf("line %d: bad sample value %q", line, valueStr)
		}

		fam, _ := baseFamily(name)
		if types[fam] != "histogram" && types[fam] != "summary" {
			fam = name
		}
		if fam != current {
			closeFamily(current)
			if finished[fam] {
				return st, fmt.Errorf("line %d: family %s reopened (samples must be contiguous)", line, fam)
			}
			current = fam
		}
		sk := seriesKey(name, labels)
		if seen[sk] {
			return st, fmt.Errorf("line %d: duplicate series %s", line, sk)
		}
		seen[sk] = true
		samples[fam] = append(samples[fam], promSample{name: name, labels: labels, value: value, line: line})
		st.Samples++
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("line %d: %w", line, err)
	}
	closeFamily(current)
	st.Families = len(samples)
	st.Series = len(seen)

	// Histogram coherence, per family and label set.
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		type group struct {
			buckets  []promSample
			sum      *promSample
			count    *promSample
			firstAt  int
			infValue float64
			hasInf   bool
		}
		groups := make(map[string]*group)
		for i := range samples[fam] {
			sp := samples[fam][i]
			key := labelKey(sp.labels)
			g := groups[key]
			if g == nil {
				g = &group{firstAt: sp.line}
				groups[key] = g
			}
			_, suf := baseFamily(sp.name)
			switch suf {
			case "_bucket":
				le, ok := sp.labels["le"]
				if !ok {
					return st, fmt.Errorf("line %d: %s bucket without le label", sp.line, fam)
				}
				if le == "+Inf" {
					g.hasInf, g.infValue = true, sp.value
				}
				g.buckets = append(g.buckets, sp)
			case "_sum":
				g.sum = &samples[fam][i]
			case "_count":
				g.count = &samples[fam][i]
			default:
				return st, fmt.Errorf("line %d: histogram %s has plain sample %s", sp.line, fam, sp.name)
			}
		}
		for key, g := range groups {
			lastLe := math.Inf(-1)
			lastCum := -1.0
			for _, b := range g.buckets {
				leStr := b.labels["le"]
				le := math.Inf(1)
				if leStr != "+Inf" {
					var err error
					le, err = strconv.ParseFloat(leStr, 64)
					if err != nil {
						return st, fmt.Errorf("line %d: bad le %q", b.line, leStr)
					}
				}
				if le <= lastLe {
					return st, fmt.Errorf("line %d: %s{%s} le %q not increasing", b.line, fam, key, leStr)
				}
				if b.value < lastCum {
					return st, fmt.Errorf("line %d: %s{%s} bucket count %v below previous %v (not cumulative)", b.line, fam, key, b.value, lastCum)
				}
				lastLe, lastCum = le, b.value
			}
			if !g.hasInf {
				return st, fmt.Errorf("near line %d: histogram %s{%s} missing +Inf bucket", g.firstAt, fam, key)
			}
			if g.count == nil {
				return st, fmt.Errorf("near line %d: histogram %s{%s} missing _count", g.firstAt, fam, key)
			}
			if g.sum == nil {
				return st, fmt.Errorf("near line %d: histogram %s{%s} missing _sum", g.firstAt, fam, key)
			}
			if g.infValue != g.count.value {
				return st, fmt.Errorf("line %d: histogram %s{%s} +Inf bucket %v != _count %v", g.count.line, fam, key, g.infValue, g.count.value)
			}
		}
	}
	return st, nil
}
