package telemetry

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrentExact is the conservation gate the histogram
// doc comment promises: many goroutines hammering one histogram produce
// exactly the counts, sum, max and per-bucket tallies that a serial
// replay of the same observations produces, under -race.
func TestHistogramConcurrentExact(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10_000
	)
	// Pre-generate the observation sets so the serial reference replays
	// the identical values.
	vals := make([][]uint64, goroutines)
	rng := rand.New(rand.NewSource(42))
	for g := range vals {
		vals[g] = make([]uint64, perG)
		for i := range vals[g] {
			switch rng.Intn(4) {
			case 0:
				vals[g][i] = 0
			case 1:
				vals[g][i] = uint64(rng.Intn(1000))
			case 2:
				vals[g][i] = uint64(rng.Int63n(int64(time.Minute)))
			default:
				vals[g][i] = overflowLo + uint64(rng.Int63())
			}
		}
	}

	var concurrent, serial Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(obs []uint64) {
			defer wg.Done()
			for _, v := range obs {
				concurrent.Observe(v)
			}
		}(vals[g])
	}
	wg.Wait()
	for _, obs := range vals {
		for _, v := range obs {
			serial.Observe(v)
		}
	}

	got, want := concurrent.Snap(), serial.Snap()
	if got == nil || want == nil {
		t.Fatalf("nil snapshot: got=%v want=%v", got, want)
	}
	if got.Count != want.Count || got.SumNanos != want.SumNanos || got.MaxNanos != want.MaxNanos {
		t.Fatalf("totals diverge: got {%d %d %d} want {%d %d %d}",
			got.Count, got.SumNanos, got.MaxNanos, want.Count, want.SumNanos, want.MaxNanos)
	}
	if len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("bucket sets diverge: got %v want %v", got.Buckets, want.Buckets)
	}
	var total uint64
	for i, b := range got.Buckets {
		if b != want.Buckets[i] {
			t.Fatalf("bucket %d diverges: got %+v want %+v", i, b, want.Buckets[i])
		}
		total += b.N
	}
	if total != got.Count {
		t.Fatalf("bucket counts sum to %d, count is %d", total, got.Count)
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	cases := []struct {
		ns uint64
		lo uint64
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 4},
		{1023, 512},
		{1024, 1024},
		{overflowLo - 1, overflowLo / 2},
		{overflowLo, overflowLo},
		{math.MaxUint64, overflowLo},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.ns)
		s := h.Snap()
		if len(s.Buckets) != 1 || s.Buckets[0].LoNanos != c.lo {
			t.Errorf("Observe(%d): buckets %v, want single bucket lo=%d", c.ns, s.Buckets, c.lo)
		}
		if hi := s.Buckets[0].hi(); c.ns >= hi && c.lo < overflowLo {
			t.Errorf("Observe(%d): landed in [%d,%d), above its bound", c.ns, c.lo, hi)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	// Empty: nil snapshot, zero quantiles.
	var empty Histogram
	if s := empty.Snap(); s != nil {
		t.Fatalf("empty histogram snapped to %+v, want nil", s)
	}
	var nilSnap *HistSnap
	if q := nilSnap.Quantile(0.5); q != 0 {
		t.Fatalf("nil snapshot Quantile = %v, want 0", q)
	}
	if m := nilSnap.MeanNanos(); m != 0 {
		t.Fatalf("nil snapshot MeanNanos = %v, want 0", m)
	}

	// Single observation: every quantile is clamped to the exact max.
	var one Histogram
	one.Observe(700)
	s := one.Snap()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := s.Quantile(q); v != 700 {
			t.Errorf("single-value Quantile(%v) = %v, want 700 (exact max)", q, v)
		}
	}

	// All observations in one bucket: quantiles stay inside [lo, max].
	var same Histogram
	for i := 0; i < 100; i++ {
		same.Observe(600) // bucket [512, 1024)
	}
	s = same.Snap()
	for _, q := range []float64{0.01, 0.5, 0.95} {
		if v := s.Quantile(q); v < 512 || v > 600 {
			t.Errorf("one-bucket Quantile(%v) = %v, want within [512, 600]", q, v)
		}
	}

	// Overflow bucket: interpolation is bounded by the exact max, not
	// the (unbounded) bucket.
	var over Histogram
	over.Observe(overflowLo + 12345)
	s = over.Snap()
	if v := s.Quantile(0.5); v != float64(overflowLo+12345) {
		t.Errorf("overflow Quantile(0.5) = %v, want exact max %d", v, overflowLo+12345)
	}

	// Out-of-range q clamps.
	if v := s.Quantile(-1); v <= 0 {
		t.Errorf("Quantile(-1) = %v, want clamped positive", v)
	}
	if v, max := s.Quantile(2), float64(overflowLo+12345); v != max {
		t.Errorf("Quantile(2) = %v, want max %v", v, max)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h.Observe(uint64(rng.Int63n(int64(10 * time.Second))))
	}
	s := h.Snap()
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v: quantiles must be monotone", q, v, prev)
		}
		prev = v
	}
	if p100 := s.Quantile(1); p100 != float64(s.MaxNanos) {
		t.Fatalf("Quantile(1) = %v, want exact max %d", p100, s.MaxNanos)
	}
}

func TestHistogramMergeExact(t *testing.T) {
	var a, b, whole Histogram
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		v := uint64(rng.Int63n(int64(time.Hour)))
		if i%5 == 0 {
			v = overflowLo + uint64(rng.Int63())
		}
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	merged := a.Snap()
	merged.Merge(b.Snap())
	merged.Merge(nil) // no-op
	want := whole.Snap()
	if merged.Count != want.Count || merged.SumNanos != want.SumNanos || merged.MaxNanos != want.MaxNanos {
		t.Fatalf("merged totals {%d %d %d}, want {%d %d %d}",
			merged.Count, merged.SumNanos, merged.MaxNanos, want.Count, want.SumNanos, want.MaxNanos)
	}
	if len(merged.Buckets) != len(want.Buckets) {
		t.Fatalf("merged buckets %v, want %v", merged.Buckets, want.Buckets)
	}
	for i := range merged.Buckets {
		if merged.Buckets[i] != want.Buckets[i] {
			t.Fatalf("merged bucket %d = %+v, want %+v", i, merged.Buckets[i], want.Buckets[i])
		}
	}
}

func TestHistogramObserveDurClampsNegative(t *testing.T) {
	var h Histogram
	h.ObserveDur(-time.Second)
	s := h.Snap()
	if s.Count != 1 || s.SumNanos != 0 || len(s.Buckets) != 1 || s.Buckets[0].LoNanos != 0 {
		t.Fatalf("negative duration recorded as %+v, want one zero observation", s)
	}
}

func TestHistNames(t *testing.T) {
	seen := map[string]bool{}
	for h := Hist(0); h < numHists; h++ {
		n := h.String()
		if n == "" || n == "hist_unknown" {
			t.Fatalf("hist %d has no name", h)
		}
		if seen[n] {
			t.Fatalf("duplicate hist name %q", n)
		}
		seen[n] = true
	}
	if Hist(-1).String() != "hist_unknown" || numHists.String() != "hist_unknown" {
		t.Fatal("out-of-range Hist must stringify to hist_unknown")
	}
}
