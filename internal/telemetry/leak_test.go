package telemetry

import (
	"context"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// TestRunNoGoroutineLeak is the CLI-path half of the torn-shutdown
// regression: many short-lived recorders with fast heartbeats, each
// started and closed (some "interrupted" mid-run, as a signal handler
// would), must leave no heartbeat goroutines or tickers behind, and
// every stream must still end on its terminal run-end event.
func TestRunNoGoroutineLeak(t *testing.T) {
	dir := t.TempDir()
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		sink, err := CreateJSONLSink(filepath.Join(dir, "events.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		run := NewRun(Options{Sink: sink, Heartbeat: time.Millisecond})
		ctx, cancel := context.WithCancel(context.Background())
		run.Add(PointsCompleted, 1)
		if i%3 == 0 {
			// Simulate a SIGINT arriving mid-run.
			cancel()
		}
		if err := run.CloseInterrupted(ctx.Err() != nil); err != nil {
			t.Fatal(err)
		}
		cancel()
		// Closing again is a no-op, not a double-close panic.
		if err := run.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
