//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package telemetry

// processCPUSeconds is unavailable on this platform; manifests record 0.
func processCPUSeconds() float64 { return 0 }
