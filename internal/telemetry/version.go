package telemetry

// Version is the build's version string, stamped at link time:
//
//	go build -ldflags "-X subcache/internal/telemetry.Version=$(git describe --tags --always --dirty)"
//
// (the Makefile does exactly this).  It is reported by every command's
// -version flag, in RUN.json manifests, in sweepd's /v1/stats, and in
// the /metrics build-info gauge.  Unstamped builds say "dev".
var Version = "dev"
