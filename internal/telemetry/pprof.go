package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	rpprof "runtime/pprof"
)

// Profiling hooks: the net/http/pprof endpoint for live inspection of
// a running sweep, and the start/stop CPU- and heap-profile helpers
// every command shares (previously duplicated in benchsweep).

// ServePprof starts an HTTP server exposing the standard
// /debug/pprof/ endpoints on addr (e.g. "localhost:6060"; ":0" picks
// a free port).  It returns the bound address and a shutdown
// function.  The server uses its own mux, so nothing else leaks onto
// the profiling port.
func ServePprof(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: -pprof %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close; nothing to report
	return ln.Addr().String(), func() { srv.Close() }, nil
}

// StartCPUProfile begins a CPU profile written to path, returning the
// stop function.
func StartCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: -cpuprofile: %w", err)
	}
	if err := rpprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: -cpuprofile: %w", err)
	}
	return func() {
		rpprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile shows retained
// objects, not garbage) and writes a heap profile to path.
func WriteHeapProfile(path string) error {
	runtime.GC()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: -memprofile: %w", err)
	}
	defer f.Close()
	if err := rpprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("telemetry: -memprofile: %w", err)
	}
	return nil
}
