// Package telemetry is the observability layer of the simulation
// pipeline: runtime counters, stage timings, a structured event
// stream, run manifests and profiling hooks, shared by every command
// and threaded through the sweep executors.
//
// The design constraints come from the sweep kernel it instruments:
//
//   - Zero dependencies: stdlib only, like the rest of the repository.
//   - Allocation-conscious: counter and gauge updates are single atomic
//     operations on pre-sized arrays, and every hot-path call site sits
//     at chunk granularity (trace.ChunkRefs references), never per
//     reference, so the access kernel's 0 allocs/op contract
//     (TestAccessNoAllocs, TestFamilyAccessNoAllocs) is untouched.
//   - Observation only: a Recorder never feeds back into simulation, so
//     results with telemetry on are bit-identical to results with it
//     off (enforced by TestTelemetryDoesNotPerturbResults).
//
// The zero value of the layer is off: a nil Recorder (normalised by
// OrNop) costs one predictable branch per chunk and nothing else.
//
// docs/OBSERVABILITY.md documents the counter catalogue, the event
// schemas and the RUN.json manifest format.
package telemetry

import "time"

// Recorder receives telemetry from the pipeline.  Implementations must
// be safe for concurrent use from every sweep worker; all methods must
// be non-blocking and cheap, because they are called at chunk
// boundaries of hot simulation loops.
//
// Two implementations exist: Nop (the default, all methods free) and
// Run (atomic counters plus an optional event sink and heartbeat).
type Recorder interface {
	// Enabled reports whether the recorder observes anything at all.
	// Hot paths hoist this to skip clock reads when telemetry is off.
	Enabled() bool
	// Add increments a monotonic counter.
	Add(c Counter, n uint64)
	// SetGauge records the current value of an instantaneous gauge.
	SetGauge(g Gauge, v int64)
	// Observe accumulates wall time into a pipeline stage, and records
	// the same duration in the stage's latency histogram.
	Observe(s Stage, d time.Duration)
	// ObserveDur records one duration in a service-level latency
	// histogram.
	ObserveDur(h Hist, d time.Duration)
	// ShardObserve accumulates one shard worker's fed references and
	// busy time (time spent simulating, not waiting).
	ShardObserve(shard int, refs uint64, busy time.Duration)
	// Emit appends a structured event to the recorder's sink, stamping
	// its sequence number and elapsed time.  Events are a side channel:
	// emission failures are counted, never propagated into simulation.
	Emit(ev *Event)
}

// nop is the disabled recorder.
type nop struct{}

func (nop) Enabled() bool                           { return false }
func (nop) Add(Counter, uint64)                     {}
func (nop) SetGauge(Gauge, int64)                   {}
func (nop) Observe(Stage, time.Duration)            {}
func (nop) ObserveDur(Hist, time.Duration)          {}
func (nop) ShardObserve(int, uint64, time.Duration) {}
func (nop) Emit(*Event)                             {}

// Nop is the recorder that records nothing, the pipeline-wide default.
var Nop Recorder = nop{}

// OrNop normalises an optional recorder: nil becomes Nop, so call sites
// never branch on nil.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}
