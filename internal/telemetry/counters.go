package telemetry

// The counter/gauge/stage catalogue.  Every identifier is a dense
// index into a pre-sized atomic array, so an update is one atomic add
// with no map lookups and no allocation.  Names are the stable wire
// vocabulary: they appear in heartbeat snapshots and RUN.json, and
// docs/OBSERVABILITY.md documents each one; add new entries at the end
// of an enum and to its name table together.

// Counter identifies one monotonic counter.
type Counter int

const (
	// RefsRead counts word references produced by trace sources
	// (synthetic generators or trace-file readers), once per reference
	// regardless of how many configurations consume it.
	RefsRead Counter = iota
	// RefsSimulated counts references fed into simulation units: one
	// reference consumed by k units counts k.  This is the pipeline's
	// work measure and the numerator of the progress line's refs/sec.
	RefsSimulated
	// BytesRead counts bytes decoded from on-disk trace files (.din
	// text or .strc binary).  Zero for synthetic workloads.
	BytesRead
	// ChunksBroadcast counts trace chunks the sharded executor's
	// producer handed to its shard workers.
	ChunksBroadcast
	// FamiliesFlushed counts multipass families finalised by
	// FlushUsage at the end of a pass.
	FamiliesFlushed
	// CheckpointRecords counts workload entries appended to the
	// checkpoint journal.
	CheckpointRecords
	// CheckpointFsyncNanos accumulates the fsync latency of those
	// appends; divide by CheckpointRecords for the mean.
	CheckpointFsyncNanos
	// PointsPlanned counts (workload, point) pairs a sweep set out to
	// simulate, added at run-start.  The progress line's denominator.
	PointsPlanned
	// PointsCompleted counts (workload, point) pairs that finished
	// cleanly with counters intact.
	PointsCompleted
	// PointsFailed counts attributed failures (PointErrors): one per
	// lost point, or a single count for a workload-scope failure that
	// loses every point of its workload.  Each increment has a matching
	// error-attributed event.
	PointsFailed
	// PointsResumed counts (workload, point) pairs restored from a
	// checkpoint journal instead of simulated.
	PointsResumed
	// EventsDropped counts events the sink failed to write (disk
	// errors); the only self-referential counter.
	EventsDropped
	// StackUnitsFlushed counts stack-distance engine units (one per
	// set partition of a stack group) finalised by FlushUsage at the
	// end of a pass, the stackdist engine's analogue of
	// FamiliesFlushed.
	StackUnitsFlushed
	// RequestsAdmitted counts sweep requests the service accepted onto
	// its worker queue (cache hits and dedup joins are not admissions).
	RequestsAdmitted
	// RequestsRejected counts sweep requests refused by admission
	// control: queue full, tenant over quota, or a draining server.
	RequestsRejected
	// RequestsDeduped counts requests that joined an identical
	// in-flight sweep (same fingerprint) instead of simulating again.
	RequestsDeduped
	// CacheHits counts requests served from the fingerprint-keyed
	// result cache (memory or disk) without any simulation.
	CacheHits
	// CacheEvictions counts on-disk result-cache entries removed by the
	// service's TTL or size-cap eviction policy.
	CacheEvictions
	// CacheCorruptQuarantined counts on-disk result-cache entries that
	// failed verification (bad checksum, fingerprint mismatch, torn or
	// unparsable envelope) and were moved to the cache's corrupt/
	// directory instead of being served.
	CacheCorruptQuarantined
	// JobRetries counts sweep re-executions after a transient failure
	// (trace-source I/O; see sweep.Transient), each preceded by an
	// exponential-backoff delay.
	JobRetries
	// JobsRecovered counts jobs re-admitted from the service's job
	// journal at startup: admitted or started at crash time, never
	// terminal.
	JobsRecovered
	// JobJournalRecords counts state-transition records appended to the
	// service's job journal, fsync included.
	JobJournalRecords
	numCounters
)

// counterNames is the stable wire name of each counter.
var counterNames = [numCounters]string{
	RefsRead:                "refs_read",
	RefsSimulated:           "refs_simulated",
	BytesRead:               "bytes_read",
	ChunksBroadcast:         "chunks_broadcast",
	FamiliesFlushed:         "families_flushed",
	CheckpointRecords:       "checkpoint_records",
	CheckpointFsyncNanos:    "checkpoint_fsync_nanos",
	PointsPlanned:           "points_planned",
	PointsCompleted:         "points_completed",
	PointsFailed:            "points_failed",
	PointsResumed:           "points_resumed",
	EventsDropped:           "events_dropped",
	StackUnitsFlushed:       "stack_units_flushed",
	RequestsAdmitted:        "requests_admitted",
	RequestsRejected:        "requests_rejected",
	RequestsDeduped:         "requests_deduped",
	CacheHits:               "cache_hits",
	CacheEvictions:          "cache_evictions",
	CacheCorruptQuarantined: "cache_corrupt_quarantined",
	JobRetries:              "job_retries",
	JobsRecovered:           "jobs_recovered",
	JobJournalRecords:       "job_journal_records",
}

// String returns the counter's wire name.
func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return "counter_unknown"
	}
	return counterNames[c]
}

// Gauge identifies one instantaneous value.
type Gauge int

const (
	// FreeRingOccupancy is the number of chunk buffers sitting idle in
	// the sharded executor's free ring at the last broadcast: 0 means
	// the producer is starved by the slowest shard, nbuf means the
	// shards are starved by the producer.
	FreeRingOccupancy Gauge = iota
	// ActiveWorkloads is the number of workload executors currently
	// simulating.
	ActiveWorkloads
	// QueueDepth is the number of sweep requests waiting on the
	// service's worker queue (admitted but not yet running).
	QueueDepth
	numGauges
)

var gaugeNames = [numGauges]string{
	FreeRingOccupancy: "free_ring_occupancy",
	ActiveWorkloads:   "active_workloads",
	QueueDepth:        "queue_depth",
}

// String returns the gauge's wire name.
func (g Gauge) String() string {
	if g < 0 || g >= numGauges {
		return "gauge_unknown"
	}
	return gaugeNames[g]
}

// Stage identifies one pipeline stage for monotonic wall-time
// accumulation.  Stages overlap across goroutines (a sweep's shards
// simulate while its producer reads), so stage times sum to more than
// the wall clock on purpose: they answer "where do worker-seconds go",
// not "what fraction of the run elapsed here".
type Stage int

const (
	// StageTraceRead is time generating or decoding trace references.
	StageTraceRead Stage = iota
	// StageBroadcast is producer time distributing chunks to shard
	// queues, including time blocked on an empty free ring.
	StageBroadcast
	// StageSimulate is shard/unit time inside the access kernels.
	StageSimulate
	// StageFlush is time finalising usage counters at end of pass.
	StageFlush
	// StageCheckpoint is time appending to the checkpoint journal,
	// fsync included.
	StageCheckpoint
	numStages
)

var stageNames = [numStages]string{
	StageTraceRead:  "trace_read",
	StageBroadcast:  "broadcast",
	StageSimulate:   "simulate",
	StageFlush:      "flush",
	StageCheckpoint: "checkpoint",
}

// String returns the stage's wire name.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "stage_unknown"
	}
	return stageNames[s]
}

// ShardSnap is one shard worker's aggregate in a snapshot.
type ShardSnap struct {
	Shard  int     `json:"shard"`
	Refs   uint64  `json:"refs"`
	BusyMS float64 `json:"busy_ms"`
}

// Snapshot is a consistent-enough copy of a recorder's state: counters
// and gauges by wire name, stage wall-times in milliseconds with their
// observation counts (mean stage latency = stages_ms[s]/stages_n[s]),
// latency histograms, and per-shard aggregates.  Individual values are
// read atomically; cross-counter consistency is not guaranteed while
// workers run, which is fine for heartbeats and exact once the run has
// quiesced.
type Snapshot struct {
	Counters map[string]uint64  `json:"counters"`
	Gauges   map[string]int64   `json:"gauges,omitempty"`
	StagesMS map[string]float64 `json:"stages_ms,omitempty"`
	// StagesN counts Observe calls per stage, so any heartbeat or
	// manifest yields a mean stage latency, not just a total.
	StagesN map[string]uint64 `json:"stages_n,omitempty"`
	// Hists carries the latency histograms: the service-level set
	// (job_queue_wait, job_execution, ...) under their own names and
	// each stage's under "stage_<name>".
	Hists  map[string]*HistSnap `json:"hists,omitempty"`
	Shards []ShardSnap          `json:"shards,omitempty"`
}

// Counter returns a counter's value by its identifier (0 if absent).
func (s *Snapshot) Counter(c Counter) uint64 { return s.Counters[c.String()] }

// Hist returns a histogram snapshot by its identifier (nil if absent).
func (s *Snapshot) Hist(h Hist) *HistSnap { return s.Hists[h.String()] }
