package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// spanStream marshals events into a JSONL stream, stamping sequence
// numbers and non-decreasing elapsed times.
func spanStream(t *testing.T, evs ...*Event) string {
	t.Helper()
	var sb strings.Builder
	for i, ev := range evs {
		ev.V = SchemaVersion
		ev.Seq = uint64(i)
		ev.ElapsedMS = int64(i)
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func spanStart(id, parent, name, workload string) *Event {
	return &Event{Type: EventSpanStart, Span: &Span{ID: id, Parent: parent, Name: name, Workload: workload}}
}

func spanEnd(id string) *Event {
	return &Event{Type: EventSpanEnd, SpanEnd: &SpanEnd{ID: id, DurNanos: 10}}
}

func TestValidateStreamSpanNesting(t *testing.T) {
	stream := spanStream(t,
		spanStart("job#1", "", "job", ""),
		spanStart("queue#2", "job#1", "queue", ""),
		spanEnd("queue#2"),
		spanStart("attempt#3", "job#1", "attempt", ""),
		spanStart("workload#4", "attempt#3", "workload", "W"),
		&Event{Type: EventPointDone, PointDone: &PointDone{Workload: "W", Point: "64:4,2"}},
		spanEnd("workload#4"),
		spanEnd("attempt#3"),
		spanEnd("job#1"),
		&Event{Type: EventRunEnd, RunEnd: &RunEnd{Snapshot: &Snapshot{Counters: map[string]uint64{}}}},
	)
	st, err := ValidateStream(strings.NewReader(stream))
	if err != nil {
		t.Fatalf("balanced span stream rejected: %v", err)
	}
	if st.ByType[EventSpanStart] != 4 || st.ByType[EventSpanEnd] != 4 {
		t.Fatalf("span counts %d/%d, want 4/4", st.ByType[EventSpanStart], st.ByType[EventSpanEnd])
	}
}

func TestValidateStreamSpanViolations(t *testing.T) {
	cases := []struct {
		name string
		evs  []*Event
		want string
	}{
		{
			"duplicate span id",
			[]*Event{spanStart("a#1", "", "a", ""), spanEnd("a#1"), spanStart("a#1", "", "a", "")},
			"duplicate span id",
		},
		{
			"parent not open",
			[]*Event{spanStart("kid#1", "ghost#9", "kid", "")},
			"not open",
		},
		{
			"parent already ended",
			[]*Event{
				spanStart("par#1", "", "par", ""), spanEnd("par#1"),
				spanStart("kid#2", "par#1", "kid", ""),
			},
			"not open",
		},
		{
			"end without start",
			[]*Event{spanEnd("never#1")},
			"not open",
		},
		{
			"end with open children",
			[]*Event{
				spanStart("par#1", "", "par", ""),
				spanStart("kid#2", "par#1", "kid", ""),
				spanEnd("par#1"),
			},
			"open children",
		},
		{
			"run-end with open span",
			[]*Event{
				spanStart("job#1", "", "job", ""),
				{Type: EventRunEnd, RunEnd: &RunEnd{Snapshot: &Snapshot{Counters: map[string]uint64{}}}},
			},
			"still open",
		},
		{
			"point-done outside any workload span",
			[]*Event{
				spanStart("job#1", "", "job", ""),
				{Type: EventPointDone, PointDone: &PointDone{Workload: "W", Point: "64:4,2"}},
			},
			"no open span",
		},
		{
			"point-done under wrong workload",
			[]*Event{
				spanStart("w#1", "", "workload", "A"),
				{Type: EventPointDone, PointDone: &PointDone{Workload: "B", Point: "64:4,2"}},
			},
			"no open span",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ValidateStream(strings.NewReader(spanStream(t, c.evs...)))
			if err == nil {
				t.Fatal("invalid span stream accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestValidateStreamPointDoneWithoutSpans: streams from span-less
// producers (the standalone sweep drivers predate spans) stay valid --
// reconciliation only engages once the stream contains spans.
func TestValidateStreamPointDoneWithoutSpans(t *testing.T) {
	stream := spanStream(t,
		&Event{Type: EventPointDone, PointDone: &PointDone{Workload: "W", Point: "64:4,2"}},
	)
	if _, err := ValidateStream(strings.NewReader(stream)); err != nil {
		t.Fatalf("span-less stream rejected: %v", err)
	}
}

func TestActiveSpanNilSafety(t *testing.T) {
	for _, rec := range []Recorder{nil, Nop} {
		sp := StartSpan(rec, Span{Name: "x"})
		if sp != nil {
			t.Fatalf("StartSpan with disabled recorder returned %v, want nil", sp)
		}
		if sp.ID() != "" {
			t.Fatalf("nil span ID = %q, want empty", sp.ID())
		}
		sp.End()          // must not panic
		sp.EndErr("boom") // must not panic
	}
}

func TestContextWithSpan(t *testing.T) {
	ctx := context.Background()
	if id := SpanFromContext(ctx); id != "" {
		t.Fatalf("empty context carries span %q", id)
	}
	if got := ContextWithSpan(ctx, ""); got != ctx {
		t.Fatal("empty id must return the context unchanged")
	}
	if id := SpanFromContext(ContextWithSpan(ctx, "job#7")); id != "job#7" {
		t.Fatalf("round-tripped span id = %q, want job#7", id)
	}
}

// TestRunSpansEndToEnd drives real spans through a live recorder and
// validates the emitted stream: IDs unique, nesting balanced, the
// trace id stamped from Options.TraceID, double-End suppressed.
func TestRunSpansEndToEnd(t *testing.T) {
	var sb strings.Builder
	rec := NewRun(Options{Sink: NewJSONLSink(&sb), TraceID: "fp123"})

	job := StartSpan(rec, Span{Name: "job"})
	if job == nil || job.ID() == "" {
		t.Fatal("live recorder produced inert span")
	}
	att := StartSpan(rec, Span{Name: "attempt", Parent: job.ID(), Detail: "0"})
	wl := StartSpan(rec, Span{Name: "workload", Parent: att.ID(), Workload: "W"})
	wl.EndErr("trace read failed")
	wl.End() // idempotent: must not emit a second span-end
	att.End()
	job.End()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := ValidateStream(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("live span stream invalid: %v\n%s", err, sb.String())
	}
	if st.ByType[EventSpanStart] != 3 || st.ByType[EventSpanEnd] != 3 {
		t.Fatalf("span counts %d/%d, want 3/3 (double End must not re-emit)",
			st.ByType[EventSpanStart], st.ByType[EventSpanEnd])
	}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		switch ev.Type {
		case EventSpanStart:
			if ev.Span.Trace != "fp123" {
				t.Fatalf("span-start trace %q, want fp123", ev.Span.Trace)
			}
		case EventSpanEnd:
			if ev.SpanEnd.Trace != "fp123" {
				t.Fatalf("span-end trace %q, want fp123", ev.SpanEnd.Trace)
			}
			if ev.SpanEnd.DurNanos < 0 {
				t.Fatalf("negative span duration %d", ev.SpanEnd.DurNanos)
			}
		}
	}
}

func TestWriteSpanReport(t *testing.T) {
	stream := spanStream(t,
		&Event{Type: EventSpanStart, Span: &Span{Trace: "fp9", ID: "job#1", Name: "job"}},
		&Event{Type: EventSpanStart, Span: &Span{Trace: "fp9", ID: "attempt#2", Parent: "job#1", Name: "attempt", Detail: "0"}},
		&Event{Type: EventSpanStart, Span: &Span{Trace: "fp9", ID: "workload#3", Parent: "attempt#2", Name: "workload", Workload: "W"}},
		&Event{Type: EventSpanEnd, SpanEnd: &SpanEnd{Trace: "fp9", ID: "workload#3", DurNanos: 4_000_000}},
		&Event{Type: EventSpanEnd, SpanEnd: &SpanEnd{Trace: "fp9", ID: "attempt#2", DurNanos: 5_000_000, Err: "boom"}},
		&Event{Type: EventSpanEnd, SpanEnd: &SpanEnd{Trace: "fp9", ID: "job#1", DurNanos: 6_000_000}},
		&Event{Type: EventSpanStart, Span: &Span{Trace: "fp9", ID: "orphaned#4", Name: "flush"}},
	)
	var out strings.Builder
	if err := WriteSpanReport(&out, strings.NewReader(stream)); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"trace fp9",
		"job",
		"attempt[0]",
		"workload=W",
		"err=boom",
		"(unfinished)", // orphaned#4 never ended
		"stage totals",
		"* ", // critical-path marker
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// Empty stream: still a report, not an error.
	out.Reset()
	if err := WriteSpanReport(&out, strings.NewReader("")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no spans") {
		t.Errorf("empty report = %q, want a 'no spans' notice", out.String())
	}
}
