package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The structured event stream: one JSON object per line, written
// alongside the checkpoint journal, so a running (or crashed) sweep
// can be observed by tailing a file.  The schema is versioned and
// deliberately flat: a fixed envelope carrying exactly one typed
// payload, which keeps decoding trivial for tools in any language and
// makes round-trip tests exact.

// SchemaVersion is bumped when an envelope or payload field changes
// meaning; additions are backward compatible and do not bump it.
const SchemaVersion = 1

// Event types.
const (
	// EventRunStart opens one sweep: what will be simulated and how.
	EventRunStart = "run-start"
	// EventPointDone records one completed (workload, point) pair.
	EventPointDone = "point-done"
	// EventShardStat summarises one shard worker at end of a
	// workload's pass: balance, throughput, survivors.
	EventShardStat = "shard-stat"
	// EventErrorAttributed records one attributed simulation failure;
	// every PointError a sweep reports has exactly one.
	EventErrorAttributed = "error-attributed"
	// EventHeartbeat carries a periodic counter snapshot.
	EventHeartbeat = "heartbeat"
	// EventRunEnd terminates one recorder's stream: the final counter
	// snapshot plus whether the run was interrupted.  Run.Close emits
	// it after the heartbeat goroutine has fully stopped, so it is
	// always the last event -- ValidateStream rejects anything after
	// it, which is how consumers detect a torn shutdown.
	EventRunEnd = "run-end"
	// EventSpanStart opens one timed span of the run's lifecycle
	// (queue wait, a sweep attempt, a shard's pass...).  Spans nest:
	// a non-empty parent must name a span that is still open, and
	// ValidateStream enforces balanced nesting.
	EventSpanStart = "span-start"
	// EventSpanEnd closes one span with its measured duration.
	EventSpanEnd = "span-end"
)

// Event is the envelope every telemetry event shares.  Exactly one
// payload pointer is non-nil, matching Type; Validate enforces it.
type Event struct {
	// V is the schema version (SchemaVersion).
	V int `json:"v"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Seq is the emission sequence number, unique and increasing
	// within one recorder's stream.
	Seq uint64 `json:"seq"`
	// ElapsedMS is wall milliseconds since the recorder started.
	ElapsedMS int64 `json:"elapsed_ms"`

	RunStart  *RunStart        `json:"run_start,omitempty"`
	PointDone *PointDone       `json:"point_done,omitempty"`
	ShardStat *ShardStat       `json:"shard_stat,omitempty"`
	Error     *ErrorAttributed `json:"error,omitempty"`
	Heartbeat *Heartbeat       `json:"heartbeat,omitempty"`
	RunEnd    *RunEnd          `json:"run_end,omitempty"`
	Span      *Span            `json:"span,omitempty"`
	SpanEnd   *SpanEnd         `json:"span_end,omitempty"`
}

// RunStart is the EventRunStart payload.
type RunStart struct {
	// Arch names the architecture suite being swept.
	Arch string `json:"arch"`
	// Engine is the simulation strategy ("multipass" or "reference").
	Engine string `json:"engine"`
	// Shards is the requested intra-workload shard count (0 = auto,
	// <0 = materialised baseline).
	Shards int `json:"shards"`
	// Points is the number of grid points per workload.
	Points int `json:"points"`
	// Workloads is the number of workloads in the sweep.
	Workloads int `json:"workloads"`
	// Refs is the requested trace length per workload.
	Refs int `json:"refs"`
	// Checkpoint reports whether a checkpoint journal is attached.
	Checkpoint bool `json:"checkpoint,omitempty"`
}

// PointDone is the EventPointDone payload.
type PointDone struct {
	Workload string `json:"workload"`
	// Point is the grid point in the paper's notation, e.g. "1024:16,8".
	Point string `json:"point"`
	// Miss and Traffic are the run's headline ratios.
	Miss    float64 `json:"miss"`
	Traffic float64 `json:"traffic"`
	// Resumed marks a pair restored from the checkpoint journal
	// rather than simulated.
	Resumed bool `json:"resumed,omitempty"`
}

// ShardStat is the EventShardStat payload.
type ShardStat struct {
	Workload string `json:"workload"`
	Shard    int    `json:"shard"`
	// Units is the number of simulation units (families + fallback
	// caches) the shard owned; Lanes counts their configurations.
	Units int `json:"units"`
	Lanes int `json:"lanes"`
	// EstCost is the partitioner's per-access cost estimate for the
	// shard's plan; compare across shards against BusyMS to judge the
	// balance heuristic.
	EstCost int `json:"est_cost"`
	// Refs is the number of trace references fed to the shard.
	Refs uint64 `json:"refs"`
	// BusyMS is wall time the shard spent simulating (not waiting).
	BusyMS float64 `json:"busy_ms"`
}

// ErrorAttributed is the EventErrorAttributed payload.
type ErrorAttributed struct {
	Workload string `json:"workload"`
	// Point is the lost grid point, empty for a workload-scope
	// failure (which loses every point of the workload).
	Point string `json:"point,omitempty"`
	// Shard is the shard worker that hosted the failure, -1 when the
	// failing path was not sharded.
	Shard int `json:"shard"`
	// Cause is the error text; Panic marks a recovered panic.
	Cause string `json:"cause"`
	Panic bool   `json:"panic,omitempty"`
}

// Span is the EventSpanStart payload: one timed slice of the run.
type Span struct {
	// Trace groups every span of one logical operation; the service
	// uses the job fingerprint, CLI sweeps the config fingerprint.
	// Run.Emit stamps it from Options.TraceID when left empty.
	Trace string `json:"trace,omitempty"`
	// ID is unique within the stream; SpanEnd closes it by ID.
	ID string `json:"id"`
	// Parent is the enclosing span's ID; empty for a root span.  A
	// non-empty parent must be open when the child starts.
	Parent string `json:"parent,omitempty"`
	// Name is the span's kind: "job", "queue", "attempt", "workload",
	// "trace-read", "simulate", "produce", "shard", "flush",
	// "cache-write"...
	Name string `json:"name"`
	// Workload names the workload a sweep-level span serves, when
	// there is one; point-done events reconcile against it.
	Workload string `json:"workload,omitempty"`
	// Detail disambiguates siblings: attempt number, shard index,
	// "resumed"...
	Detail string `json:"detail,omitempty"`
}

// SpanEnd is the EventSpanEnd payload.
type SpanEnd struct {
	Trace string `json:"trace,omitempty"`
	// ID matches the span-start being closed.
	ID string `json:"id"`
	// DurNanos is the span's measured wall duration.
	DurNanos int64 `json:"dur_ns"`
	// Err carries the failure that ended the span, when there was one.
	Err string `json:"err,omitempty"`
}

// Heartbeat is the EventHeartbeat payload.
type Heartbeat struct {
	Snapshot *Snapshot `json:"snapshot"`
}

// RunEnd is the EventRunEnd payload: the stream's terminal record.
type RunEnd struct {
	// Interrupted marks a run cut short (signal, cancellation, drain)
	// rather than completed; its counters describe the partial run.
	Interrupted bool `json:"interrupted,omitempty"`
	// Snapshot is the recorder's final, quiesced counter state.
	Snapshot *Snapshot `json:"snapshot"`
}

// Validate checks an event against the schema: known version and
// type, exactly one payload, and the payload matching the type with
// its required fields set.
func (ev *Event) Validate() error {
	if ev.V != SchemaVersion {
		return fmt.Errorf("telemetry: event seq %d: version %d, want %d", ev.Seq, ev.V, SchemaVersion)
	}
	if ev.ElapsedMS < 0 {
		return fmt.Errorf("telemetry: event seq %d: negative elapsed_ms %d", ev.Seq, ev.ElapsedMS)
	}
	payloads := 0
	for _, p := range []bool{ev.RunStart != nil, ev.PointDone != nil, ev.ShardStat != nil, ev.Error != nil, ev.Heartbeat != nil, ev.RunEnd != nil, ev.Span != nil, ev.SpanEnd != nil} {
		if p {
			payloads++
		}
	}
	if payloads != 1 {
		return fmt.Errorf("telemetry: event seq %d (%s): %d payloads, want exactly 1", ev.Seq, ev.Type, payloads)
	}
	switch ev.Type {
	case EventRunStart:
		if p := ev.RunStart; p == nil {
			return payloadMismatch(ev)
		} else if p.Arch == "" || p.Engine == "" || p.Points <= 0 || p.Workloads <= 0 || p.Refs <= 0 {
			return fmt.Errorf("telemetry: run-start seq %d: missing arch/engine or non-positive points/workloads/refs", ev.Seq)
		}
	case EventPointDone:
		if p := ev.PointDone; p == nil {
			return payloadMismatch(ev)
		} else if p.Workload == "" || p.Point == "" {
			return fmt.Errorf("telemetry: point-done seq %d: empty workload or point", ev.Seq)
		}
	case EventShardStat:
		if p := ev.ShardStat; p == nil {
			return payloadMismatch(ev)
		} else if p.Workload == "" || p.Shard < 0 {
			return fmt.Errorf("telemetry: shard-stat seq %d: empty workload or negative shard", ev.Seq)
		}
	case EventErrorAttributed:
		if p := ev.Error; p == nil {
			return payloadMismatch(ev)
		} else if p.Workload == "" || p.Cause == "" {
			return fmt.Errorf("telemetry: error-attributed seq %d: empty workload or cause", ev.Seq)
		} else if p.Shard < -1 {
			return fmt.Errorf("telemetry: error-attributed seq %d: shard %d < -1", ev.Seq, p.Shard)
		}
	case EventHeartbeat:
		if p := ev.Heartbeat; p == nil {
			return payloadMismatch(ev)
		} else if p.Snapshot == nil {
			return fmt.Errorf("telemetry: heartbeat seq %d: nil snapshot", ev.Seq)
		}
	case EventRunEnd:
		if p := ev.RunEnd; p == nil {
			return payloadMismatch(ev)
		} else if p.Snapshot == nil {
			return fmt.Errorf("telemetry: run-end seq %d: nil snapshot", ev.Seq)
		}
	case EventSpanStart:
		if p := ev.Span; p == nil {
			return payloadMismatch(ev)
		} else if p.ID == "" || p.Name == "" {
			return fmt.Errorf("telemetry: span-start seq %d: empty id or name", ev.Seq)
		}
	case EventSpanEnd:
		if p := ev.SpanEnd; p == nil {
			return payloadMismatch(ev)
		} else if p.ID == "" {
			return fmt.Errorf("telemetry: span-end seq %d: empty id", ev.Seq)
		} else if p.DurNanos < 0 {
			return fmt.Errorf("telemetry: span-end seq %d: negative dur_ns %d", ev.Seq, p.DurNanos)
		}
	default:
		return fmt.Errorf("telemetry: event seq %d: unknown type %q", ev.Seq, ev.Type)
	}
	return nil
}

func payloadMismatch(ev *Event) error {
	return fmt.Errorf("telemetry: event seq %d: payload does not match type %q", ev.Seq, ev.Type)
}

// Sink consumes emitted events.  Implementations must be safe for
// concurrent Write calls.
type Sink interface {
	Write(ev *Event) error
	Close() error
}

// JSONLSink writes events as JSON lines.  Writes are serialised by a
// mutex and buffered; Flush (or Close) makes them visible to tailing
// readers.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error // latched write failure
}

// NewJSONLSink wraps an open writer (closed with the sink if it
// implements io.Closer).
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// CreateJSONLSink creates (truncating) an event file, making parent
// directories as needed -- like WriteFileAtomic, so "-events dir/x"
// works before dir exists.
func CreateJSONLSink(path string) (*JSONLSink, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("telemetry: events: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: events: %w", err)
	}
	return NewJSONLSink(f), nil
}

// Write implements Sink.
func (s *JSONLSink) Write(ev *Event) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		s.err = err
		return err
	}
	return nil
}

// Flush pushes buffered events to the underlying writer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// Close flushes and releases the sink.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ferr := s.w.Flush()
	if s.err == nil {
		s.err = fmt.Errorf("telemetry: sink closed")
	}
	if s.c != nil {
		if cerr := s.c.Close(); ferr == nil {
			ferr = cerr
		}
	}
	return ferr
}

// StreamStats summarises a validated event stream.
type StreamStats struct {
	// Events counts valid events; ByType breaks them down.
	Events int
	ByType map[string]int
}

// newStreamScanner sizes a line scanner for event streams (heartbeat
// snapshots can be large).
func newStreamScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	return sc
}

// decodeStreamLine parses one stream line into a schema-validated
// event; skip is true for a blank line.
func decodeStreamLine(raw []byte) (Event, bool, error) {
	raw = bytes.TrimSpace(raw)
	if len(raw) == 0 {
		return Event{}, true, nil
	}
	var ev Event
	if err := json.Unmarshal(raw, &ev); err != nil {
		return ev, false, err
	}
	if err := ev.Validate(); err != nil {
		return ev, false, err
	}
	return ev, false, nil
}

// openSpan tracks one not-yet-ended span during stream validation.
type openSpan struct {
	parent   string
	workload string
	children int
}

// ValidateStream reads a JSONL event stream and validates every line:
// schema-valid events with strictly increasing sequence numbers and
// non-decreasing elapsed times, nothing after a run-end event (the
// stream's terminal record -- a heartbeat landing after it would mean
// a torn shutdown), and well-formed spans: unique IDs, parents open
// when a child starts, balanced nesting (a span may not end while a
// child is open, and a completed stream -- one that reaches run-end --
// may not leave spans open), and every point-done emitted after spans
// appear attributable to an open span carrying its workload.  It
// returns the summary and the first error (with its line number).
func ValidateStream(r io.Reader) (StreamStats, error) {
	st := StreamStats{ByType: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	line := 0
	var lastSeq uint64
	var lastElapsed int64
	ended := false
	open := make(map[string]*openSpan)
	seenIDs := make(map[string]bool)
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return st, fmt.Errorf("line %d: %w", line, err)
		}
		if err := ev.Validate(); err != nil {
			return st, fmt.Errorf("line %d: %w", line, err)
		}
		if st.Events > 0 && ev.Seq <= lastSeq {
			return st, fmt.Errorf("line %d: seq %d not after %d", line, ev.Seq, lastSeq)
		}
		if ev.ElapsedMS < lastElapsed {
			return st, fmt.Errorf("line %d: elapsed_ms %d before %d (time went backwards)", line, ev.ElapsedMS, lastElapsed)
		}
		if ended {
			return st, fmt.Errorf("line %d: %s event after run-end (torn shutdown)", line, ev.Type)
		}
		switch ev.Type {
		case EventSpanStart:
			p := ev.Span
			if seenIDs[p.ID] {
				return st, fmt.Errorf("line %d: duplicate span id %q", line, p.ID)
			}
			seenIDs[p.ID] = true
			if p.Parent != "" {
				par, ok := open[p.Parent]
				if !ok {
					return st, fmt.Errorf("line %d: span %q parent %q not open", line, p.ID, p.Parent)
				}
				par.children++
			}
			open[p.ID] = &openSpan{parent: p.Parent, workload: p.Workload}
		case EventSpanEnd:
			p := ev.SpanEnd
			sp, ok := open[p.ID]
			if !ok {
				return st, fmt.Errorf("line %d: span-end for %q, which is not open", line, p.ID)
			}
			if sp.children > 0 {
				return st, fmt.Errorf("line %d: span %q ended with %d open children (unbalanced nesting)", line, p.ID, sp.children)
			}
			if sp.parent != "" {
				if par, ok := open[sp.parent]; ok {
					par.children--
				}
			}
			delete(open, p.ID)
		case EventPointDone:
			if len(seenIDs) > 0 {
				wl, found := ev.PointDone.Workload, false
				for _, sp := range open {
					if sp.workload == wl {
						found = true
						break
					}
				}
				if !found {
					return st, fmt.Errorf("line %d: point-done for workload %q with no open span carrying it", line, wl)
				}
			}
		case EventRunEnd:
			if len(open) > 0 {
				for id := range open {
					return st, fmt.Errorf("line %d: run-end with span %q still open", line, id)
				}
			}
		}
		ended = ev.Type == EventRunEnd
		lastSeq = ev.Seq
		lastElapsed = ev.ElapsedMS
		st.Events++
		st.ByType[ev.Type]++
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("line %d: %w", line, err)
	}
	return st, nil
}
