package telemetry

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// memSink collects events in memory for assertions.
type memSink struct {
	mu     sync.Mutex
	events []Event
	fail   error // returned by Write when set
	closed bool
}

func (m *memSink) Write(ev *Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return m.fail
	}
	m.events = append(m.events, *ev)
	return nil
}

func (m *memSink) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

func (m *memSink) all() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// TestRunSnapshot: counters, gauges, stages and shard aggregates all
// land in the snapshot under their wire names, and zero entries are
// omitted.
func TestRunSnapshot(t *testing.T) {
	r := NewRun(Options{})
	r.Add(RefsRead, 100)
	r.Add(RefsRead, 23)
	r.Add(PointsCompleted, 7)
	r.SetGauge(FreeRingOccupancy, 3)
	r.Observe(StageSimulate, 2*time.Millisecond)
	r.Observe(StageSimulate, 1*time.Millisecond)
	r.ShardObserve(0, 50, time.Millisecond)
	r.ShardObserve(2, 73, 2*time.Millisecond)

	s := r.Snapshot()
	if got := s.Counter(RefsRead); got != 123 {
		t.Errorf("refs_read = %d, want 123", got)
	}
	if got := s.Counter(PointsCompleted); got != 7 {
		t.Errorf("points_completed = %d, want 7", got)
	}
	if _, ok := s.Counters["points_failed"]; ok {
		t.Error("zero counter points_failed present in snapshot")
	}
	if got := s.Gauges["free_ring_occupancy"]; got != 3 {
		t.Errorf("free_ring_occupancy = %d, want 3", got)
	}
	if got := s.StagesMS["simulate"]; got != 3.0 {
		t.Errorf("simulate stage = %vms, want 3ms", got)
	}
	// Shard 1 was never observed but sits inside the observed range, so
	// it appears with zeros; the range ends at the highest shard seen.
	if len(s.Shards) != 3 {
		t.Fatalf("shards = %d entries, want 3", len(s.Shards))
	}
	if s.Shards[2].Refs != 73 || s.Shards[2].BusyMS != 2.0 {
		t.Errorf("shard 2 = %+v, want refs 73 busy 2ms", s.Shards[2])
	}
	if s.Shards[1].Refs != 0 {
		t.Errorf("unobserved shard 1 refs = %d, want 0", s.Shards[1].Refs)
	}

	// Out-of-range identifiers must be ignored, not corrupt memory.
	r.Add(Counter(-1), 1)
	r.Add(numCounters, 1)
	r.Observe(numStages, time.Second)
	r.ShardObserve(-1, 9, 0)
	r.ShardObserve(maxShards+10, 9, 0) // clamps into the last cell
	if got := len(r.Snapshot().Shards); got != maxShards {
		t.Errorf("after clamped observe, shards = %d, want %d", got, maxShards)
	}
}

// TestRunEmitStamping: Emit fills in version, a strictly increasing
// sequence from 0, and a non-negative elapsed time; emitted events
// validate as-is.
func TestRunEmitStamping(t *testing.T) {
	sink := &memSink{}
	r := NewRun(Options{Sink: sink})
	for i := 0; i < 3; i++ {
		r.Emit(&Event{Type: EventPointDone, PointDone: &PointDone{Workload: "W", Point: "64:4,2"}})
	}
	evs := sink.all()
	if len(evs) != 3 {
		t.Fatalf("sink got %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.V != SchemaVersion {
			t.Errorf("event %d: V = %d, want %d", i, ev.V, SchemaVersion)
		}
		if ev.Seq != uint64(i) {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, i)
		}
		if ev.ElapsedMS < 0 {
			t.Errorf("event %d: negative elapsed %d", i, ev.ElapsedMS)
		}
		if err := ev.Validate(); err != nil {
			t.Errorf("event %d: %v", i, err)
		}
	}
}

// TestRunSinkFailureCounted: a failing sink increments EventsDropped
// and never propagates the error to the caller.
func TestRunSinkFailureCounted(t *testing.T) {
	sink := &memSink{fail: errors.New("disk full")}
	r := NewRun(Options{Sink: sink})
	r.Emit(&Event{Type: EventHeartbeat, Heartbeat: &Heartbeat{Snapshot: &Snapshot{}}})
	r.Emit(&Event{Type: EventHeartbeat, Heartbeat: &Heartbeat{Snapshot: &Snapshot{}}})
	if got := r.Snapshot().Counter(EventsDropped); got != 2 {
		t.Errorf("events_dropped = %d, want 2", got)
	}
}

// TestRunCloseFinalHeartbeat: when a heartbeat consumer is configured,
// Close emits one final beat so the stream always ends with a complete
// snapshot, closes the sink, and is idempotent.
func TestRunCloseFinalHeartbeat(t *testing.T) {
	sink := &memSink{}
	var beats int
	r := NewRun(Options{Sink: sink, OnHeartbeat: func(s *Snapshot) {
		if s == nil {
			t.Error("nil snapshot in heartbeat callback")
		}
		beats++
	}})
	r.Add(RefsRead, 5)
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if beats != 1 {
		t.Errorf("heartbeat callbacks = %d, want 1", beats)
	}
	evs := sink.all()
	if len(evs) != 2 || evs[0].Type != EventHeartbeat || evs[1].Type != EventRunEnd {
		t.Fatalf("sink events = %+v, want heartbeat then run-end", evs)
	}
	if got := evs[0].Heartbeat.Snapshot.Counter(RefsRead); got != 5 {
		t.Errorf("final heartbeat refs_read = %d, want 5", got)
	}
	if evs[1].RunEnd.Interrupted {
		t.Error("run-end marked interrupted on a clean close")
	}
	if got := evs[1].RunEnd.Snapshot.Counter(RefsRead); got != 5 {
		t.Errorf("run-end snapshot refs_read = %d, want 5", got)
	}
	if !sink.closed {
		t.Error("sink not closed")
	}
	// Counters stay readable after Close.
	if got := r.Snapshot().Counter(RefsRead); got != 5 {
		t.Errorf("post-close refs_read = %d, want 5", got)
	}
}

// TestRunConcurrentUpdates: hammer every recorder method from many
// goroutines (run with -race) and check the totals are exact.
func TestRunConcurrentUpdates(t *testing.T) {
	sink := &memSink{}
	r := NewRun(Options{Sink: sink})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Add(RefsSimulated, 2)
				r.Observe(StageSimulate, time.Microsecond)
				r.ShardObserve(w, 1, time.Microsecond)
				r.SetGauge(ActiveWorkloads, int64(w))
			}
			r.Emit(&Event{Type: EventShardStat, ShardStat: &ShardStat{Workload: "W", Shard: w}})
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter(RefsSimulated); got != workers*perWorker*2 {
		t.Errorf("refs_simulated = %d, want %d", got, workers*perWorker*2)
	}
	if len(s.Shards) != workers {
		t.Fatalf("shards = %d, want %d", len(s.Shards), workers)
	}
	for _, sh := range s.Shards {
		if sh.Refs != perWorker {
			t.Errorf("shard %d refs = %d, want %d", sh.Shard, sh.Refs, perWorker)
		}
	}
	// Sequence numbers must be unique even under contention.
	seen := map[uint64]bool{}
	for _, ev := range sink.all() {
		if seen[ev.Seq] {
			t.Errorf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	if len(seen) != workers {
		t.Errorf("emitted %d events, want %d", len(seen), workers)
	}
}

// TestRunEmitOrderedInStream: concurrent emitters (simulating shard
// workers plus the heartbeat goroutine) must produce a stream whose
// file order matches seq order -- the contract ValidateStream enforces
// when CI checks a live sweep's events.
func TestRunEmitOrderedInStream(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	r := NewRun(Options{Sink: sink})
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%10 == 0 {
					r.heartbeat()
				}
				r.Emit(&Event{Type: EventPointDone, PointDone: &PointDone{Workload: "W", Point: "64:4,2"}})
			}
		}(w)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st, err := ValidateStream(&buf)
	if err != nil {
		t.Fatalf("stream invalid: %v", err)
	}
	// Every worker emission plus the terminal run-end event.
	if want := workers*perWorker*11/10 + 1; st.Events != want {
		t.Errorf("stream has %d events, want %d", st.Events, want)
	}
	if st.ByType[EventRunEnd] != 1 {
		t.Errorf("run-end events = %d, want exactly 1", st.ByType[EventRunEnd])
	}
}

// TestNopAndOrNop: the disabled recorder reports disabled and OrNop
// normalises nil to it.
func TestNopAndOrNop(t *testing.T) {
	if Nop.Enabled() {
		t.Error("Nop.Enabled() = true")
	}
	// All methods are callable no-ops.
	Nop.Add(RefsRead, 1)
	Nop.SetGauge(FreeRingOccupancy, 1)
	Nop.Observe(StageFlush, time.Second)
	Nop.ShardObserve(0, 1, time.Second)
	Nop.Emit(&Event{})
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) != Nop")
	}
	r := NewRun(Options{})
	if OrNop(r) != Recorder(r) {
		t.Error("OrNop(r) != r")
	}
	if !r.Enabled() {
		t.Error("Run.Enabled() = false")
	}
}
