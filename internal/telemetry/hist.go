package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Latency histograms.  The bucketing is log2 over nanoseconds: bucket 0
// holds exactly {0}, bucket i (i >= 1) holds [2^(i-1), 2^i) ns, and the
// last bucket absorbs everything at or above 2^62 ns.  An observation
// is three atomic adds plus one CAS loop for the exact maximum -- no
// locks, no allocation -- so recording rides the same hot-path budget
// as the counters.  Identical observation sets produce identical
// histograms regardless of interleaving (bucket/count/sum conservation
// is enforced under -race by TestHistogramConcurrentExact).

// histBuckets is the bucket-array size: bits.Len64 of any uint64 is at
// most 64, and index 63 doubles as the overflow bucket.
const histBuckets = 64

// Hist identifies one service-level latency histogram.  Stage
// histograms are recorded implicitly by Recorder.Observe; these cover
// the request path around the sweep itself.
type Hist int

const (
	// HistQueueWait is a job's time from admission to dequeue by a
	// worker.
	HistQueueWait Hist = iota
	// HistExecution is the wall time of one sweep execution attempt
	// (retries observe once per attempt).
	HistExecution
	// HistRetryBackoff is the realised backoff delay before a retry
	// attempt (shorter than scheduled when a cancellation cut it off).
	HistRetryBackoff
	// HistCacheRead is the verified disk store's read latency
	// (memory-cache hits are not observed).
	HistCacheRead
	// HistCacheWrite is the verified disk store's write latency
	// (atomic write + fsync + index update).
	HistCacheWrite
	// HistJobLatency is a job's end-to-end latency: admission to
	// terminal state, whatever the outcome.
	HistJobLatency
	numHists
)

var histNames = [numHists]string{
	HistQueueWait:    "job_queue_wait",
	HistExecution:    "job_execution",
	HistRetryBackoff: "job_retry_backoff",
	HistCacheRead:    "cache_read",
	HistCacheWrite:   "cache_write",
	HistJobLatency:   "job_latency",
}

// String returns the histogram's wire name.
func (h Hist) String() string {
	if h < 0 || h >= numHists {
		return "hist_unknown"
	}
	return histNames[h]
}

// Histogram is a concurrent-safe log2-bucketed latency histogram.  The
// zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds, exact
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(ns uint64) int {
	i := bits.Len64(ns) // 0 for ns==0, else floor(log2(ns))+1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketLo is the inclusive lower bound of bucket i, in nanoseconds.
func bucketLo(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return uint64(1) << uint(i-1)
}

// Observe records one value in nanoseconds.
func (h *Histogram) Observe(ns uint64) {
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// ObserveDur records one duration (negative durations clamp to 0).
func (h *Histogram) ObserveDur(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snap copies the histogram's current state (nil when it has recorded
// nothing, so snapshots omit untouched histograms).
func (h *Histogram) Snap() *HistSnap {
	n := h.count.Load()
	if n == 0 {
		return nil
	}
	s := &HistSnap{Count: n, SumNanos: h.sum.Load(), MaxNanos: h.max.Load()}
	for i := 0; i < histBuckets; i++ {
		if v := h.buckets[i].Load(); v != 0 {
			s.Buckets = append(s.Buckets, HistBucket{LoNanos: bucketLo(i), N: v})
		}
	}
	return s
}

// HistBucket is one non-empty bucket of a histogram snapshot: its
// inclusive lower bound in nanoseconds and its observation count.  The
// bucket's exclusive upper bound is 2*lo (1 for the lo==0 bucket); the
// overflow bucket (lo == 2^62) is unbounded above.
type HistBucket struct {
	LoNanos uint64 `json:"lo_ns"`
	N       uint64 `json:"n"`
}

// HistSnap is a histogram snapshot as it appears in Snapshot.Hists,
// heartbeats, RUN.json and /v1/stats: totals plus the non-empty log2
// buckets.  Buckets are ordered by lower bound.
type HistSnap struct {
	Count    uint64       `json:"count"`
	SumNanos uint64       `json:"sum_ns"`
	MaxNanos uint64       `json:"max_ns"`
	Buckets  []HistBucket `json:"buckets,omitempty"`
}

// overflowLo is the lower bound of the unbounded overflow bucket.
const overflowLo = uint64(1) << (histBuckets - 2)

// hi returns a bucket's exclusive upper bound in nanoseconds (for the
// overflow bucket there is none; hi returns MaxUint64).
func (b HistBucket) hi() uint64 {
	switch {
	case b.LoNanos == 0:
		return 1
	case b.LoNanos >= overflowLo:
		return math.MaxUint64
	default:
		return 2 * b.LoNanos
	}
}

// MeanNanos is the mean observation in nanoseconds (0 when empty).
func (s *HistSnap) MeanNanos() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return float64(s.SumNanos) / float64(s.Count)
}

// Quantile derives the q-th quantile (0 <= q <= 1) in nanoseconds by a
// nearest-rank walk over the buckets with linear interpolation inside
// the landing bucket, clamped to the exact recorded maximum.  Exact
// per-observation values are not retained, so the answer is accurate to
// within its bucket (a factor of 2); the maximum is exact.
func (s *HistSnap) Quantile(q float64) float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// 1-based nearest rank.
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		if rank > cum+b.N {
			cum += b.N
			continue
		}
		lo, hi := float64(b.LoNanos), float64(b.hi())
		if b.LoNanos >= overflowLo || hi > float64(s.MaxNanos) {
			hi = float64(s.MaxNanos)
		}
		if hi < lo {
			hi = lo
		}
		// Position of the rank within this bucket, interpolated.
		frac := float64(rank-cum) / float64(b.N)
		v := lo + (hi-lo)*frac
		if max := float64(s.MaxNanos); v > max {
			v = max
		}
		return v
	}
	return float64(s.MaxNanos)
}

// Merge adds another snapshot into this one, exactly: equal-bound
// buckets add, totals add, and the maximum takes the larger value.
// Merging the per-shard or per-job histograms of a partitioned run
// yields the histogram a single recorder would have produced.
func (s *HistSnap) Merge(o *HistSnap) {
	if o == nil || o.Count == 0 {
		return
	}
	s.Count += o.Count
	s.SumNanos += o.SumNanos
	if o.MaxNanos > s.MaxNanos {
		s.MaxNanos = o.MaxNanos
	}
	byLo := make(map[uint64]int, len(s.Buckets))
	for i, b := range s.Buckets {
		byLo[b.LoNanos] = i
	}
	for _, b := range o.Buckets {
		if i, ok := byLo[b.LoNanos]; ok {
			s.Buckets[i].N += b.N
		} else {
			s.Buckets = append(s.Buckets, b)
		}
	}
	// Restore bound order after appends.
	for i := 1; i < len(s.Buckets); i++ {
		for j := i; j > 0 && s.Buckets[j-1].LoNanos > s.Buckets[j].LoNanos; j-- {
			s.Buckets[j-1], s.Buckets[j] = s.Buckets[j], s.Buckets[j-1]
		}
	}
}
