package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// ManifestVersion is the RUN.json schema version.
const ManifestVersion = 1

// Manifest is a run manifest (RUN.json): one self-describing record of
// what a command ran, on what, for how long, and what the pipeline
// counted.  It is the durable complement of the event stream -- small
// enough to commit or attach to a CI artifact, and stable enough to
// diff across runs.
type Manifest struct {
	// V is the manifest schema version (ManifestVersion).
	V int `json:"v"`
	// Tool names the command that ran ("benchsweep", "experiments", ...).
	Tool string `json:"tool"`
	// Fingerprint is a short hash of the run's effective configuration
	// (see Fingerprint); runs with equal fingerprints simulated the
	// same thing.
	Fingerprint string `json:"config_fingerprint"`
	// Engine and Shards echo the sweep strategy, when one applies.
	Engine string `json:"engine,omitempty"`
	Shards int    `json:"shards,omitempty"`
	// Seed is the run's random seed, for commands that take one.
	Seed uint64 `json:"seed,omitempty"`
	// BuildVersion is the link-time version stamp (telemetry.Version);
	// "dev" for unstamped builds.
	BuildVersion string `json:"build_version,omitempty"`
	// GoVersion, GOOS, GOARCH and NumCPU describe the machine.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// WallSeconds and CPUSeconds are the run's elapsed wall clock and
	// consumed process CPU time (user + system, all cores summed;
	// 0 where the platform cannot report it).
	WallSeconds float64 `json:"wall_seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`
	// Interrupted marks a run cut short by SIGINT/SIGTERM or a drain:
	// the manifest and counters describe the partial run that actually
	// happened, not the one that was requested.
	Interrupted bool `json:"interrupted,omitempty"`
	// EventsFile points at the JSONL event stream, when one was written.
	EventsFile string `json:"events_file,omitempty"`
	// Telemetry is the final counter snapshot.
	Telemetry *Snapshot `json:"telemetry"`
}

// Validate checks the manifest's schema.
func (m *Manifest) Validate() error {
	switch {
	case m.V != ManifestVersion:
		return fmt.Errorf("telemetry: manifest version %d, want %d", m.V, ManifestVersion)
	case m.Tool == "":
		return fmt.Errorf("telemetry: manifest missing tool")
	case m.Fingerprint == "":
		return fmt.Errorf("telemetry: manifest missing config_fingerprint")
	case m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "" || m.NumCPU <= 0:
		return fmt.Errorf("telemetry: manifest missing machine description")
	case m.WallSeconds < 0 || m.CPUSeconds < 0:
		return fmt.Errorf("telemetry: manifest negative wall/cpu time")
	case m.Telemetry == nil:
		return fmt.Errorf("telemetry: manifest missing telemetry snapshot")
	}
	return nil
}

// NewManifest starts a manifest with the machine description filled
// in; the caller sets the run description and calls Finish.
func NewManifest(tool, fingerprint string) *Manifest {
	return &Manifest{
		V:            ManifestVersion,
		Tool:         tool,
		Fingerprint:  fingerprint,
		BuildVersion: Version,
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
	}
}

// Finish stamps the timing and final counters: wall time from the
// given start, CPU time from the OS, telemetry from the recorder.
func (m *Manifest) Finish(start time.Time, rec *Run) {
	m.WallSeconds = time.Since(start).Seconds()
	m.CPUSeconds = processCPUSeconds()
	if rec != nil {
		m.Telemetry = rec.Snapshot()
	} else {
		m.Telemetry = &Snapshot{Counters: map[string]uint64{}}
	}
}

// Write atomically writes the manifest: marshal, write a temp file in
// the destination directory, rename into place -- so a crashed run
// never leaves a torn RUN.json.
func (m *Manifest) Write(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: manifest: %w", err)
	}
	return WriteFileAtomic(path, append(b, '\n'), 0o644)
}

// ReadManifest loads and validates a RUN.json.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("telemetry: manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}

// Fingerprint hashes the parts of a run's configuration that determine
// its results into a short stable id.  Callers pass whatever defines
// the run (flag values, grid description); equal inputs give equal
// fingerprints across machines and Go versions.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:%s\n", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// WriteFileAtomic writes data to path via a temp file, fsync and
// rename, the same pattern WriteTraceFile uses: the destination is
// either the old content or the complete new content, never a torn
// partial write.  The fsync before the rename keeps that true across
// power loss, not just process crashes.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	if dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
