package telemetry

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// sampleEvents returns one well-formed event of every type, as a
// recorder would emit them.
func sampleEvents() []*Event {
	return []*Event{
		{V: SchemaVersion, Type: EventRunStart, Seq: 0, ElapsedMS: 1, RunStart: &RunStart{
			Arch: "PDP-11", Engine: "multipass", Shards: 8, Points: 19, Workloads: 6, Refs: 10000, Checkpoint: true}},
		{V: SchemaVersion, Type: EventPointDone, Seq: 1, ElapsedMS: 2, PointDone: &PointDone{
			Workload: "FGO1", Point: "1024:16,8", Miss: 0.052, Traffic: 0.206}},
		{V: SchemaVersion, Type: EventShardStat, Seq: 2, ElapsedMS: 3, ShardStat: &ShardStat{
			Workload: "FGO1", Shard: 3, Units: 2, Lanes: 9, EstCost: 11, Refs: 8192, BusyMS: 1.5}},
		{V: SchemaVersion, Type: EventErrorAttributed, Seq: 3, ElapsedMS: 4, Error: &ErrorAttributed{
			Workload: "EDC", Point: "64:4,2", Shard: 1, Cause: "panic: injected", Panic: true}},
		{V: SchemaVersion, Type: EventHeartbeat, Seq: 4, ElapsedMS: 5, Heartbeat: &Heartbeat{
			Snapshot: &Snapshot{Counters: map[string]uint64{"refs_read": 42}}}},
	}
}

// TestEventRoundTrip: every event type survives JSON marshal/unmarshal
// exactly and validates on both sides of the trip.
func TestEventRoundTrip(t *testing.T) {
	for _, ev := range sampleEvents() {
		if err := ev.Validate(); err != nil {
			t.Fatalf("%s: invalid before marshal: %v", ev.Type, err)
		}
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("%s: marshal: %v", ev.Type, err)
		}
		var got Event
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("%s: unmarshal: %v", ev.Type, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: invalid after round trip: %v", ev.Type, err)
		}
		if !reflect.DeepEqual(&got, ev) {
			t.Errorf("%s: round trip changed the event\n got:  %+v\n want: %+v", ev.Type, &got, ev)
		}
	}
}

// TestEventValidateRejects: schema violations are caught, with enough
// context to find the offending event.
func TestEventValidateRejects(t *testing.T) {
	pd := &PointDone{Workload: "FGO1", Point: "64:4,2"}
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"wrong version", Event{V: 99, Type: EventPointDone, PointDone: pd}, "version"},
		{"no payload", Event{V: SchemaVersion, Type: EventPointDone}, "payloads"},
		{"two payloads", Event{V: SchemaVersion, Type: EventPointDone, PointDone: pd,
			Heartbeat: &Heartbeat{Snapshot: &Snapshot{}}}, "payloads"},
		{"type-payload mismatch", Event{V: SchemaVersion, Type: EventRunStart, PointDone: pd}, "payload"},
		{"unknown type", Event{V: SchemaVersion, Type: "nonsense", PointDone: pd}, "unknown type"},
		{"negative elapsed", Event{V: SchemaVersion, Type: EventPointDone, ElapsedMS: -1, PointDone: pd}, "elapsed"},
		{"empty workload", Event{V: SchemaVersion, Type: EventPointDone,
			PointDone: &PointDone{Point: "64:4,2"}}, "workload"},
		{"run-start missing fields", Event{V: SchemaVersion, Type: EventRunStart,
			RunStart: &RunStart{Arch: "PDP-11"}}, "run-start"},
		{"error shard below -1", Event{V: SchemaVersion, Type: EventErrorAttributed,
			Error: &ErrorAttributed{Workload: "W", Cause: "x", Shard: -2}}, "shard"},
		{"heartbeat nil snapshot", Event{V: SchemaVersion, Type: EventHeartbeat,
			Heartbeat: &Heartbeat{}}, "snapshot"},
	}
	for _, tc := range cases {
		err := tc.ev.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateStream: a well-formed JSONL stream passes with the right
// per-type tallies; corrupt lines and sequence regressions are rejected
// with their line number.
func TestValidateStream(t *testing.T) {
	var sb strings.Builder
	for _, ev := range sampleEvents() {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	sb.WriteString("\n") // blank lines are fine

	st, err := ValidateStream(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	if st.Events != 5 {
		t.Errorf("Events = %d, want 5", st.Events)
	}
	for _, typ := range []string{EventRunStart, EventPointDone, EventShardStat, EventErrorAttributed, EventHeartbeat} {
		if st.ByType[typ] != 1 {
			t.Errorf("ByType[%s] = %d, want 1", typ, st.ByType[typ])
		}
	}

	bad := []struct {
		name, stream, want string
	}{
		{"corrupt json", "{not json\n", "line 1"},
		{"schema violation", `{"v":1,"type":"point-done","seq":0}` + "\n", "line 1"},
		{"seq regression", `{"v":1,"type":"point-done","seq":5,"elapsed_ms":0,"point_done":{"workload":"W","point":"64:4,2"}}` + "\n" +
			`{"v":1,"type":"point-done","seq":5,"elapsed_ms":0,"point_done":{"workload":"W","point":"64:4,2"}}` + "\n", "line 2"},
	}
	for _, tc := range bad {
		if _, err := ValidateStream(strings.NewReader(tc.stream)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestJSONLSinkLatchesAfterClose: a closed sink rejects writes instead
// of panicking on a closed file, and the failure is reported (the
// recorder turns it into EventsDropped).
func TestJSONLSinkLatchesAfterClose(t *testing.T) {
	var sb strings.Builder
	s := NewJSONLSink(&sb)
	ev := sampleEvents()[1]
	if err := s.Write(ev); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Write(ev); err == nil {
		t.Error("write after close succeeded")
	}
	st, err := ValidateStream(strings.NewReader(sb.String()))
	if err != nil || st.Events != 1 {
		t.Errorf("flushed stream: %d events, err %v", st.Events, err)
	}
}
