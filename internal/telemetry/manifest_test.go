package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestManifestRoundTrip: build, finish, write and re-read a manifest;
// the loaded copy validates and carries the counters through.
func TestManifestRoundTrip(t *testing.T) {
	r := NewRun(Options{})
	r.Add(RefsRead, 42)
	r.Add(PointsCompleted, 19)

	m := NewManifest("benchsweep", Fingerprint("refs=1000", "nets=[64]"))
	m.Engine = "multipass"
	m.Shards = 4
	m.Finish(time.Now().Add(-time.Second), r)

	path := filepath.Join(t.TempDir(), "out", "RUN.json")
	if err := m.Write(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Tool != "benchsweep" || got.Engine != "multipass" || got.Shards != 4 {
		t.Errorf("run description mangled: %+v", got)
	}
	if got.Fingerprint != m.Fingerprint {
		t.Errorf("fingerprint %q != %q", got.Fingerprint, m.Fingerprint)
	}
	if got.WallSeconds < 0.9 {
		t.Errorf("wall_seconds = %v, want >= ~1", got.WallSeconds)
	}
	if got.Telemetry == nil || got.Telemetry.Counter(RefsRead) != 42 {
		t.Errorf("telemetry snapshot lost: %+v", got.Telemetry)
	}

	// Finish with a nil recorder still produces a valid (empty) snapshot.
	m2 := NewManifest("calib", Fingerprint("tool=calib"))
	m2.Finish(time.Now(), nil)
	if err := m2.Validate(); err != nil {
		t.Errorf("nil-recorder manifest invalid: %v", err)
	}
}

// TestManifestValidateRejects: each required field is enforced.
func TestManifestValidateRejects(t *testing.T) {
	valid := func() *Manifest {
		m := NewManifest("tool", "abcd1234abcd1234")
		m.Finish(time.Now(), nil)
		return m
	}
	cases := []struct {
		name   string
		break_ func(*Manifest)
		want   string
	}{
		{"bad version", func(m *Manifest) { m.V = 2 }, "version"},
		{"missing tool", func(m *Manifest) { m.Tool = "" }, "tool"},
		{"missing fingerprint", func(m *Manifest) { m.Fingerprint = "" }, "fingerprint"},
		{"missing machine", func(m *Manifest) { m.NumCPU = 0 }, "machine"},
		{"negative wall", func(m *Manifest) { m.WallSeconds = -1 }, "wall"},
		{"nil telemetry", func(m *Manifest) { m.Telemetry = nil }, "snapshot"},
	}
	for _, tc := range cases {
		m := valid()
		tc.break_(m)
		err := m.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// ReadManifest surfaces validation failures with the path.
	path := filepath.Join(t.TempDir(), "RUN.json")
	if err := os.WriteFile(path, []byte(`{"v":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Error("ReadManifest accepted an invalid manifest")
	}
}

// TestFingerprint: deterministic, sensitive to content and to part
// boundaries (the length prefix prevents ["ab"] == ["a","b"]).
func TestFingerprint(t *testing.T) {
	a := Fingerprint("refs=1000", "nets=[64]")
	if a != Fingerprint("refs=1000", "nets=[64]") {
		t.Error("fingerprint not deterministic")
	}
	if len(a) != 16 {
		t.Errorf("fingerprint length %d, want 16", len(a))
	}
	if a == Fingerprint("refs=1001", "nets=[64]") {
		t.Error("fingerprint insensitive to content")
	}
	if Fingerprint("ab") == Fingerprint("a", "b") {
		t.Error("fingerprint insensitive to part boundaries")
	}
}

// TestWriteFileAtomic: creates parent directories, replaces existing
// content completely, and leaves no temp files behind.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "out.json")
	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "second" {
		t.Fatalf("content = %q, err %v; want \"second\"", b, err)
	}
	ents, err := os.ReadDir(filepath.Join(dir, "sub"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("directory has %d entries, want 1 (temp file left behind?)", len(ents))
	}
}
