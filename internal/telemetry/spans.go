package telemetry

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Spans are the event stream's timeline: where counters say how much
// work a run did and stage timings say where worker-seconds went in
// aggregate, spans say what one job spent its wall clock on, nested --
// admit -> queue -> attempt -> simulate -> flush -> cache-write.  They
// ride the existing versioned stream as span-start/span-end events, so
// everything already built for events (sinks, drops accounting,
// ValidateStream, eventcheck) applies unchanged.

// spanSeq allocates process-unique span IDs.  IDs are diagnostic
// labels, not results: streams are never byte-compared, so a shared
// atomic is fine.
var spanSeq atomic.Uint64

// StartSpan emits a span-start and returns the handle that will end
// it.  Safe to call with a nil or disabled recorder: the returned span
// is inert (and may itself be nil-received).  Spans are single-
// goroutine: the goroutine that starts one ends it.
func StartSpan(rec Recorder, s Span) *ActiveSpan {
	if rec == nil || !rec.Enabled() {
		return nil
	}
	s.ID = s.Name + "#" + strconv.FormatUint(spanSeq.Add(1), 10)
	rec.Emit(&Event{Type: EventSpanStart, Span: &s})
	return &ActiveSpan{rec: rec, id: s.ID, start: time.Now()}
}

// ActiveSpan is an open span.  End and EndErr are idempotent, so a
// deferred End composes with an explicit EndErr on a failure path.
type ActiveSpan struct {
	rec   Recorder
	id    string
	start time.Time
	ended bool
}

// ID returns the span's stream ID ("" for an inert span), for use as a
// child's Parent.
func (a *ActiveSpan) ID() string {
	if a == nil {
		return ""
	}
	return a.id
}

// End emits the span-end with the measured duration.
func (a *ActiveSpan) End() { a.EndErr("") }

// EndErr ends the span recording the failure that terminated it.
func (a *ActiveSpan) EndErr(errText string) {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	a.rec.Emit(&Event{Type: EventSpanEnd, SpanEnd: &SpanEnd{
		ID:       a.id,
		DurNanos: time.Since(a.start).Nanoseconds(),
		Err:      errText,
	}})
}

// spanKey is the context key carrying the enclosing span's ID across
// API boundaries (service -> sweep -> shard executor).
type spanKey struct{}

// ContextWithSpan returns a context whose operations are children of
// the span with the given ID ("" returns ctx unchanged).
func ContextWithSpan(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, id)
}

// SpanFromContext returns the enclosing span's ID, or "".
func SpanFromContext(ctx context.Context) string {
	id, _ := ctx.Value(spanKey{}).(string)
	return id
}

// reportSpan is one span as reconstructed from a stream for the text
// report.
type reportSpan struct {
	Span
	startMS  int64
	durNanos int64
	err      string
	ended    bool
	children []*reportSpan
}

// WriteSpanReport reads one event stream and prints a per-trace span
// tree: each span with its duration and share of its parent, the
// critical path (the longest child at every level) marked, and a
// per-name stage rollup.  This is eventcheck -spans.
func WriteSpanReport(w io.Writer, r io.Reader) error {
	spans := make(map[string]*reportSpan)
	var order []*reportSpan
	sc := newStreamScanner(r)
	line := 0
	for sc.Scan() {
		line++
		ev, skip, err := decodeStreamLine(sc.Bytes())
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if skip {
			continue
		}
		switch ev.Type {
		case EventSpanStart:
			rs := &reportSpan{Span: *ev.Span, startMS: ev.ElapsedMS}
			spans[rs.ID] = rs
			order = append(order, rs)
		case EventSpanEnd:
			if rs, ok := spans[ev.SpanEnd.ID]; ok {
				rs.durNanos = ev.SpanEnd.DurNanos
				rs.err = ev.SpanEnd.Err
				rs.ended = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("line %d: %w", line, err)
	}
	if len(order) == 0 {
		fmt.Fprintln(w, "no spans in stream")
		return nil
	}

	// Build the trees: children under parents, roots grouped by trace.
	byTrace := make(map[string][]*reportSpan)
	var traces []string
	for _, rs := range order {
		if rs.Parent != "" {
			if par, ok := spans[rs.Parent]; ok {
				par.children = append(par.children, rs)
				continue
			}
		}
		if _, ok := byTrace[rs.Trace]; !ok {
			traces = append(traces, rs.Trace)
		}
		byTrace[rs.Trace] = append(byTrace[rs.Trace], rs)
	}
	sort.Strings(traces)

	totals := make(map[string]struct {
		n   int
		dur int64
	})
	var walk func(rs *reportSpan, indent string, parentDur int64, critical bool)
	walk = func(rs *reportSpan, indent string, parentDur int64, critical bool) {
		t := totals[rs.Name]
		t.n++
		t.dur += rs.durNanos
		totals[rs.Name] = t

		label := rs.Name
		if rs.Detail != "" {
			label += "[" + rs.Detail + "]"
		}
		if rs.Workload != "" {
			label += " workload=" + rs.Workload
		}
		mark := "  "
		if critical {
			mark = "* "
		}
		suffix := ""
		switch {
		case !rs.ended:
			suffix = "  (unfinished)"
		case rs.err != "":
			suffix = "  err=" + rs.err
		}
		share := ""
		if parentDur > 0 {
			share = fmt.Sprintf("  %4.1f%%", 100*float64(rs.durNanos)/float64(parentDur))
		}
		fmt.Fprintf(w, "  %s%s%-*s %10s%s%s\n", mark, indent, 44-len(indent), label, fmtDur(rs.durNanos), share, suffix)

		kids := append([]*reportSpan(nil), rs.children...)
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].startMS != kids[j].startMS {
				return kids[i].startMS < kids[j].startMS
			}
			return kids[i].ID < kids[j].ID
		})
		longest := -1
		var best int64 = -1
		for i, k := range kids {
			if k.durNanos > best {
				best, longest = k.durNanos, i
			}
		}
		for i, k := range kids {
			walk(k, indent+"  ", rs.durNanos, critical && i == longest)
		}
	}
	for _, tr := range traces {
		name := tr
		if name == "" {
			name = "(no trace id)"
		}
		fmt.Fprintf(w, "trace %s\n", name)
		for _, root := range byTrace[tr] {
			walk(root, "", 0, true)
		}
	}

	fmt.Fprintln(w, "stage totals (sum over spans; * marks the critical path above)")
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if totals[names[i]].dur != totals[names[j]].dur {
			return totals[names[i]].dur > totals[names[j]].dur
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		t := totals[n]
		fmt.Fprintf(w, "  %-24s n=%-5d total=%s\n", n, t.n, fmtDur(t.dur))
	}
	return nil
}

// fmtDur renders nanoseconds with a sensible unit for a report column.
func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
