package telemetry

import (
	"strings"
	"testing"
)

// promTestSnapshot builds a small fixed snapshot whose exposition is
// fully deterministic (histograms built from fixed observations).
func promTestSnapshot() *Snapshot {
	var qw, sim Histogram
	qw.Observe(0)
	qw.Observe(1000)
	qw.Observe(1000)
	sim.Observe(500_000_000)
	return &Snapshot{
		Counters: map[string]uint64{"cache_hits": 7, "busy_nanos": 1_500_000_000},
		Gauges:   map[string]int64{"queue_depth": 2},
		StagesMS: map[string]float64{"simulate": 2000},
		StagesN:  map[string]uint64{"simulate": 4},
		Hists: map[string]*HistSnap{
			"job_queue_wait": qw.Snap(),
			"stage_simulate": sim.Snap(),
		},
		Shards: []ShardSnap{{Shard: 0, Refs: 100, BusyMS: 1500}},
	}
}

// TestWritePromTextGolden pins the exposition byte-for-byte: ordering,
// HELP/TYPE grammar, unit conversions (nanos->seconds), cumulative
// buckets and the build-info labels.  A diff here is a contract change
// for every scraper.
func TestWritePromTextGolden(t *testing.T) {
	var b strings.Builder
	err := WritePromText(&b, "test", promTestSnapshot(),
		map[string]float64{"workers": 4},
		map[string]string{"version": "v1.2.3", "goos": "linux"})
	if err != nil {
		t.Fatal(err)
	}
	const want = `# HELP test_build_info Build information as labels; value is always 1.
# TYPE test_build_info gauge
test_build_info{goos="linux",version="v1.2.3"} 1
# HELP test_busy_seconds_total Cumulative busy time in seconds.
# TYPE test_busy_seconds_total counter
test_busy_seconds_total 1.5
# HELP test_cache_hits_total Monotonic counter cache_hits (see docs/OBSERVABILITY.md).
# TYPE test_cache_hits_total counter
test_cache_hits_total 7
# HELP test_queue_depth Instantaneous value (see docs/OBSERVABILITY.md).
# TYPE test_queue_depth gauge
test_queue_depth 2
# HELP test_workers Instantaneous value (see docs/OBSERVABILITY.md).
# TYPE test_workers gauge
test_workers 4
# HELP test_stage_seconds_total Cumulative wall time per pipeline stage in seconds.
# TYPE test_stage_seconds_total counter
test_stage_seconds_total{stage="simulate"} 2
# HELP test_stage_observations_total Observations per pipeline stage (mean latency = stage_seconds_total / this).
# TYPE test_stage_observations_total counter
test_stage_observations_total{stage="simulate"} 4
# HELP test_stage_duration_seconds Latency distribution per pipeline stage (log2 buckets).
# TYPE test_stage_duration_seconds histogram
test_stage_duration_seconds_bucket{stage="simulate",le="0.536870912"} 1
test_stage_duration_seconds_bucket{stage="simulate",le="+Inf"} 1
test_stage_duration_seconds_sum{stage="simulate"} 0.5
test_stage_duration_seconds_count{stage="simulate"} 1
# HELP test_job_queue_wait_seconds Latency distribution of job_queue_wait (log2 buckets).
# TYPE test_job_queue_wait_seconds histogram
test_job_queue_wait_seconds_bucket{le="1e-09"} 1
test_job_queue_wait_seconds_bucket{le="1.024e-06"} 3
test_job_queue_wait_seconds_bucket{le="+Inf"} 3
test_job_queue_wait_seconds_sum 2e-06
test_job_queue_wait_seconds_count 3
# HELP test_shard_refs_total Trace references fed to each shard worker.
# TYPE test_shard_refs_total counter
test_shard_refs_total{shard="0"} 100
# HELP test_shard_busy_seconds_total Busy (simulating) time per shard worker in seconds.
# TYPE test_shard_busy_seconds_total counter
test_shard_busy_seconds_total{shard="0"} 1.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWritePromTextRoundTrip feeds the writer's own output to the
// strict parser: producer and consumer must agree on the grammar.
func TestWritePromTextRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WritePromText(&b, "test", promTestSnapshot(),
		map[string]float64{"workers": 4},
		map[string]string{"version": `quo"te\back`, "go_version": "go1.x"}); err != nil {
		t.Fatal(err)
	}
	st, err := ValidatePromText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own exposition rejected: %v\n%s", err, b.String())
	}
	if st.Families != 11 {
		t.Errorf("families = %d, want 11", st.Families)
	}
	if st.Samples != 18 || st.Series != 18 {
		t.Errorf("samples/series = %d/%d, want 18/18", st.Samples, st.Series)
	}
}

// TestWritePromTextEmptySnapshot: a freshly started server must still
// expose a parseable page.
func TestWritePromTextEmptySnapshot(t *testing.T) {
	var b strings.Builder
	if err := WritePromText(&b, "test", &Snapshot{Counters: map[string]uint64{}}, nil,
		map[string]string{"version": "dev"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePromText(strings.NewReader(b.String())); err != nil {
		t.Fatalf("empty-snapshot exposition rejected: %v\n%s", err, b.String())
	}
}

func TestValidatePromTextRejects(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{
			"non-cumulative buckets",
			"# TYPE h histogram\n" +
				"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"cumulative",
		},
		{
			"missing +Inf bucket",
			"# TYPE h histogram\n" +
				"h_bucket{le=\"0.1\"} 5\nh_sum 1\nh_count 5\n",
			"+Inf",
		},
		{
			"+Inf disagrees with count",
			"# TYPE h histogram\n" +
				"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
			"count",
		},
		{
			"missing sum",
			"# TYPE h histogram\n" +
				"h_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"sum",
		},
		{
			"duplicate series",
			"# TYPE c counter\nc 1\nc 2\n",
			"duplicate series",
		},
		{
			"reopened family",
			"# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n",
			"contiguous",
		},
		{
			"second TYPE",
			"# TYPE a counter\n# TYPE a gauge\na 1\n",
			"second TYPE",
		},
		{
			"TYPE after samples",
			"a 1\n# TYPE a counter\na{x=\"1\"} 1\n",
			"after its samples",
		},
		{
			"bad metric name",
			"1badname 3\n",
			"bad metric name",
		},
		{
			"unquoted label value",
			"a{x=unquoted} 1\n",
			"not quoted",
		},
		{
			"bad value",
			"a one\n",
			"bad sample value",
		},
		{
			"unknown type",
			"# TYPE a sparkline\na 1\n",
			"unknown type",
		},
		{
			"le not increasing",
			"# TYPE h histogram\n" +
				"h_bucket{le=\"0.2\"} 1\nh_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"increasing",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ValidatePromText(strings.NewReader(c.text))
			if err == nil {
				t.Fatalf("accepted invalid exposition:\n%s", c.text)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

func TestValidatePromTextAcceptsBenign(t *testing.T) {
	// Stray comments, timestamps, escapes, untyped samples.
	text := "# just a comment\n" +
		"# HELP a A counter.\n# TYPE a counter\na 1 1700000000000\n" +
		"b{msg=\"line\\nbreak \\\"q\\\" back\\\\slash\"} 2\n"
	st, err := ValidatePromText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("rejected benign exposition: %v", err)
	}
	if st.Samples != 2 {
		t.Fatalf("samples = %d, want 2", st.Samples)
	}
}
