package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatalf("split children agree at step %d", i)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("identical split sequences diverged at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	for _, p := range []float64{0.1, 0.3, 0.5, 0.9} {
		sum := 0.0
		const trials = 50000
		for i := 0; i < trials; i++ {
			sum += float64(r.Geometric(p))
		}
		got := sum / trials
		want := (1 - p) / p
		if math.Abs(got-want) > 0.15*(want+0.1) {
			t.Errorf("Geometric(%g) mean = %.3f, want ~%.3f", p, got, want)
		}
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const mean, trials = 5.0, 50000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += r.Exp(mean)
	}
	got := sum / trials
	if math.Abs(got-mean) > 0.1*mean {
		t.Errorf("Exp(%g) mean = %.3f", mean, got)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(19)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	// With s=1 the first category should dominate the last by roughly
	// a factor of 100; accept anything strongly skewed.
	if counts[0] < 10*counts[99] {
		t.Errorf("Zipf(s=1) insufficiently skewed: first=%d last=%d", counts[0], counts[99])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(23)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const trials = 50000
	for i := 0; i < trials; i++ {
		counts[z.Next()]++
	}
	want := float64(trials) / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("Zipf(s=0) bucket %d: %d, want ~%.0f", i, c, want)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 1, 0, math.MaxUint64},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}

func TestGeometricPanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%g) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestNewZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestBoolProbabilities(t *testing.T) {
	r := New(31)
	trues := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	frac := float64(trues) / trials
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("Bool(0.25) true fraction = %g", frac)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
}

func TestZipfN(t *testing.T) {
	z := NewZipf(New(1), 42, 1)
	if z.N() != 42 {
		t.Errorf("N = %d", z.N())
	}
}
