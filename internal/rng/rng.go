// Package rng implements the deterministic pseudo-random number
// generation used by the synthetic workload generators.
//
// Trace-driven simulation must be exactly repeatable (the paper lists
// repeatability as the first reason for choosing the method), so this
// package deliberately avoids math/rand's global state: every stream is
// an explicit *Stream value derived from an explicit seed, and streams
// can be split so that independent model components (instruction fetch,
// data references, branch outcomes, ...) draw from independent sequences
// regardless of how often the other components consume values.
//
// The core generator is SplitMix64 feeding xoshiro256**, both public
// domain algorithms by Blackman and Vigna.
package rng

import "math"

// Stream is a deterministic random number stream.  The zero value is not
// valid; use New or Split.
type Stream struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output.  It
// is used for seeding and for Split, as recommended by the xoshiro
// authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from seed.  Distinct seeds yield
// independent-looking streams.
func New(seed uint64) *Stream {
	var s Stream
	x := seed
	for i := range s.s {
		s.s[i] = splitmix64(&x)
	}
	// xoshiro256** requires a nonzero state; splitmix64 of any seed
	// makes an all-zero state astronomically unlikely, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 1
	}
	return &s
}

// Split derives a new independent stream from r.  The child's sequence
// is a pure function of r's state at the time of the call, so a fixed
// split order yields fixed child streams.
func (r *Stream) Split() *Stream {
	x := r.Uint64()
	var s Stream
	for i := range s.s {
		s.s[i] = splitmix64(&x)
	}
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 1
	}
	return &s
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly random bits.
func (r *Stream) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n).  n must be positive.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng.Intn: n must be positive")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded
	// integers without division in the common case.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := ah*bl + (al*bl)>>32
	lo = a * b
	hi = ah*bh + t>>32 + (t&mask+al*bh)>>32
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool { return r.Float64() < p }

// Geometric returns a sample from a geometric distribution with success
// probability p: the number of failures before the first success, in
// {0, 1, 2, ...}.  Mean (1-p)/p.  p must be in (0, 1].
func (r *Stream) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng.Geometric: p out of (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	// Inverse CDF; guard the log argument away from 0.
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	k := math.Floor(math.Log(u) / math.Log(1-p))
	if k < 0 {
		k = 0
	}
	const maxGeom = 1 << 30
	if k > maxGeom {
		k = maxGeom
	}
	return int(k)
}

// Exp returns an exponentially distributed sample with the given mean.
func (r *Stream) Exp(mean float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s.  It precomputes the CDF once; use NewZipf for repeated
// sampling.
type Zipf struct {
	cdf []float64
	r   *Stream
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s >= 0 drawing
// from stream r.  s == 0 degenerates to the uniform distribution.
func NewZipf(r *Stream, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng.NewZipf: n must be positive")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// N returns the number of categories.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next sample in [0, N()).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
