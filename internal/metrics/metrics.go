// Package metrics computes and aggregates the paper's performance and
// cost metrics: miss ratio, traffic ratio, scaled traffic ratio, gross
// cache size and effective access time.
//
// Aggregation follows §3.3: "Multiple-trace miss and traffic ratios are
// the unweighted average of the miss and traffic ratios of individual
// runs" -- each trace contributes equally regardless of length.
package metrics

import (
	"fmt"
	"math"

	"subcache/internal/cache"
	"subcache/internal/membus"
)

// Run is the measured outcome of simulating one trace through one cache
// configuration.
type Run struct {
	Trace   string
	Config  cache.Config
	Miss    float64
	Traffic float64
	Scaled  float64 // traffic under the nibble-mode cost model

	// Raw counters, retained for reporting beyond the three ratios.
	Accesses       uint64
	Misses         uint64
	BlockMisses    uint64
	SubBlockMisses uint64
	WordsFetched   uint64
	RedundantLoads uint64
	SubBlockFills  uint64
	Utilization    float64 // sub-block residency utilisation
}

// NewRun derives a Run from finished cache statistics, pricing the
// scaled traffic ratio with the paper's nibble-mode model.
func NewRun(traceName string, cfg cache.Config, st *cache.Stats) Run {
	return Run{
		Trace:          traceName,
		Config:         cfg,
		Miss:           st.MissRatio(),
		Traffic:        st.TrafficRatio(),
		Scaled:         membus.ScaledTraffic(st, membus.PaperNibble),
		Accesses:       st.Accesses,
		Misses:         st.Misses,
		BlockMisses:    st.BlockMisses,
		SubBlockMisses: st.SubBlockMisses,
		WordsFetched:   st.WordsFetched,
		RedundantLoads: st.RedundantLoads,
		SubBlockFills:  st.SubBlockFills,
		Utilization:    st.SubBlockUtilization(),
	}
}

// String renders the run compactly.
func (r Run) String() string {
	return fmt.Sprintf("%s %s: miss=%.4f traffic=%.4f nibble=%.4f",
		r.Trace, r.Config, r.Miss, r.Traffic, r.Scaled)
}

// Summary is the unweighted average of several runs of the same cache
// configuration over different traces.
type Summary struct {
	Config  cache.Config
	N       int
	Miss    float64
	Traffic float64
	Scaled  float64
	// MissMin/MissMax bound the per-trace spread, a reproduction-quality
	// diagnostic the paper does not report but that EXPERIMENTS.md uses.
	MissMin, MissMax float64
	Utilization      float64
}

// Average combines runs with equal weight per trace, as the paper does.
// It panics if runs is empty or the runs disagree on configuration,
// because averaging across organisations is always a harness bug.
func Average(runs []Run) Summary {
	if len(runs) == 0 {
		panic("metrics.Average: no runs")
	}
	s := Summary{Config: runs[0].Config, N: len(runs), MissMin: math.Inf(1), MissMax: math.Inf(-1)}
	for _, r := range runs {
		if r.Config != runs[0].Config {
			panic(fmt.Sprintf("metrics.Average: mixed configs %v vs %v", r.Config, runs[0].Config))
		}
		s.Miss += r.Miss
		s.Traffic += r.Traffic
		s.Scaled += r.Scaled
		s.Utilization += r.Utilization
		s.MissMin = math.Min(s.MissMin, r.Miss)
		s.MissMax = math.Max(s.MissMax, r.Miss)
	}
	n := float64(len(runs))
	s.Miss /= n
	s.Traffic /= n
	s.Scaled /= n
	s.Utilization /= n
	return s
}

// EffectiveAccessTime returns the paper's §3.2 model
//
//	t_eff = t_cache*(1-m) + t_mem*m
//
// for miss ratio m.
func EffectiveAccessTime(tCache, tMem, missRatio float64) float64 {
	return tCache*(1-missRatio) + tMem*missRatio
}

// Speedup returns the ratio of memory access time without a cache to
// the effective access time with one: how much a cache with miss ratio
// m accelerates a machine whose memory costs tMem and cache costs
// tCache per access.
func Speedup(tCache, tMem, missRatio float64) float64 {
	eff := EffectiveAccessTime(tCache, tMem, missRatio)
	if eff == 0 {
		return 0
	}
	return tMem / eff
}
