package metrics

import (
	"math"
	"testing"

	"subcache/internal/cache"
)

func cfg() cache.Config {
	return cache.Config{NetSize: 1024, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2}
}

func TestNewRun(t *testing.T) {
	st := &cache.Stats{
		Accesses: 1000, Misses: 100, Hits: 900,
		BlockMisses: 60, SubBlockMisses: 40,
		SubBlockFills: 100, WordsFetched: 400,
		TxHist:             cache.TxHistFromMap(map[int]uint64{4: 100}),
		ResidencyTouched:   30,
		ResidencySubBlocks: 60,
	}
	r := NewRun("t1", cfg(), st)
	if r.Miss != 0.1 {
		t.Errorf("Miss = %g", r.Miss)
	}
	if r.Traffic != 0.4 {
		t.Errorf("Traffic = %g", r.Traffic)
	}
	// nibble: 0.4 * cost(4)/4 = 0.4 * 0.5
	if math.Abs(r.Scaled-0.2) > 1e-12 {
		t.Errorf("Scaled = %g, want 0.2", r.Scaled)
	}
	if r.Utilization != 0.5 {
		t.Errorf("Utilization = %g", r.Utilization)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestAverageUnweighted(t *testing.T) {
	// A short trace and a long trace: the paper averages ratios, not
	// pooled counts, so both weigh equally.
	a := Run{Trace: "short", Config: cfg(), Miss: 0.2, Traffic: 0.8, Scaled: 0.4, Accesses: 10}
	b := Run{Trace: "long", Config: cfg(), Miss: 0.1, Traffic: 0.4, Scaled: 0.2, Accesses: 1000000}
	s := Average([]Run{a, b})
	if math.Abs(s.Miss-0.15) > 1e-12 {
		t.Errorf("Miss = %g, want 0.15 (unweighted)", s.Miss)
	}
	if math.Abs(s.Traffic-0.6) > 1e-12 {
		t.Errorf("Traffic = %g, want 0.6", s.Traffic)
	}
	if s.N != 2 || s.MissMin != 0.1 || s.MissMax != 0.2 {
		t.Errorf("summary %+v", s)
	}
}

func TestAveragePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Average(nil) did not panic")
		}
	}()
	Average(nil)
}

func TestAveragePanicsMixedConfigs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Average with mixed configs did not panic")
		}
	}()
	other := cfg()
	other.BlockSize = 32
	Average([]Run{{Config: cfg()}, {Config: other}})
}

func TestEffectiveAccessTime(t *testing.T) {
	// t_eff = 1*(1-0.1) + 10*0.1 = 1.9
	if got := EffectiveAccessTime(1, 10, 0.1); math.Abs(got-1.9) > 1e-12 {
		t.Errorf("t_eff = %g, want 1.9", got)
	}
	// Perfect cache: t_eff = t_cache.
	if got := EffectiveAccessTime(1, 10, 0); got != 1 {
		t.Errorf("t_eff(m=0) = %g", got)
	}
	// No cache benefit: t_eff = t_mem.
	if got := EffectiveAccessTime(1, 10, 1); got != 10 {
		t.Errorf("t_eff(m=1) = %g", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(1, 10, 0.1); math.Abs(got-10.0/1.9) > 1e-12 {
		t.Errorf("Speedup = %g", got)
	}
	if got := Speedup(0, 0, 0); got != 0 {
		t.Errorf("Speedup degenerate = %g", got)
	}
}

func TestSpeedupMonotoneInMissRatio(t *testing.T) {
	prev := math.Inf(1)
	for m := 0.0; m <= 1.0; m += 0.05 {
		s := Speedup(1, 20, m)
		if s > prev {
			t.Fatalf("speedup not monotone at m=%.2f", m)
		}
		prev = s
	}
}
