// Package ibuffer models the instruction buffers the paper contrasts
// with on-chip caches (§2.2).
//
// An instruction buffer "holds one or more blocks of the instruction
// address space, feeds into the instruction fetch stage of the CPU
// pipeline, and may or may not be capable of recognizing when a branch
// target hits a location already in the buffer".  The paper names two
// archetypes:
//
//   - the DEC VAX-11/780 style: a single short window of contiguous
//     bytes that tracks sequential execution.  It reduces latency for
//     consecutive fetches but, because it cannot recognise branch
//     targets, it "does not reduce the number of bytes required from
//     the memory system" -- its traffic ratio is exactly 1.
//   - the CRAY-1 style: several buffers each holding a large aligned
//     region, with branch-target recognition, so entire loops stay
//     buffered.  These do cut traffic, at a large cost in bytes.
//
// Both are provided so the examples and experiments can reproduce the
// paper's argument that a small *cache* (the "minimum cache") dominates
// both per byte of chip area.
package ibuffer

import (
	"fmt"
	"io"

	"subcache/internal/addr"
	"subcache/internal/trace"
)

// Stats counts instruction-buffer activity.  Only instruction fetches
// are presented to a buffer; each access is one data-path word.
type Stats struct {
	// Fetches is the number of word fetches presented.
	Fetches uint64
	// Hits is the number served from the buffer without a memory word.
	Hits uint64
	// WordsFetched is the bus traffic in words.
	WordsFetched uint64
}

// HitRatio returns hits over fetches.
func (s *Stats) HitRatio() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Fetches)
}

// MissRatio returns 1 - HitRatio for nonzero fetch counts.
func (s *Stats) MissRatio() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return 1 - s.HitRatio()
}

// TrafficRatio returns bus words per fetched word (1.0 means the buffer
// saves no bandwidth, the paper's point about simple buffers).
func (s *Stats) TrafficRatio() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return float64(s.WordsFetched) / float64(s.Fetches)
}

// Sequential is the VAX-11/780-style buffer: a FIFO of prefetched
// consecutive bytes feeding the decoder.  A fetch of the word currently
// in the decode latch or of the expected next word hits; everything
// else -- including a backward branch to a byte that was buffered a
// moment ago -- restarts the stream, because the buffer does not
// recognise branch targets.  Each word entering the buffer crosses the
// bus exactly once, so at instruction-stream level the traffic ratio is
// 1 (less only the decoder's repeat reads of the word in the latch):
// the paper's point that simple buffers reduce latency, not bandwidth.
//
// The byte capacity of the real buffer (8 bytes on the VAX-11/780)
// governs how much fetch latency it can hide; at the architectural
// hit/traffic level modelled here it has no further effect, so the
// model has no size parameter beyond the word.
type Sequential struct {
	wordSize uint64

	last  addr.Addr // word in the decode latch
	next  addr.Addr // next prefetched word
	valid bool

	stats Stats
}

// NewSequential builds the buffer for the given data-path word size.
func NewSequential(wordSize int) (*Sequential, error) {
	if wordSize <= 0 || !addr.IsPow2(uint64(wordSize)) {
		return nil, fmt.Errorf("ibuffer: word size %d not a positive power of two", wordSize)
	}
	return &Sequential{wordSize: uint64(wordSize)}, nil
}

// Stats returns the accumulated counters.
func (b *Sequential) Stats() *Stats { return &b.stats }

// Fetch presents one word-aligned instruction fetch.  It returns true
// on a buffer hit.
func (b *Sequential) Fetch(a addr.Addr) bool {
	a = addr.AlignDown(a, b.wordSize)
	b.stats.Fetches++
	switch {
	case b.valid && a == b.last:
		// Decoder still consuming the latched word: free hit.
		b.stats.Hits++
		return true
	case b.valid && a == b.next:
		// The prefetched next word arrives: hit, one bus word.
		b.stats.Hits++
		b.stats.WordsFetched++
		b.last = a
		b.next = a + addr.Addr(b.wordSize)
		return true
	default:
		// Control transfer: restart the stream at a.
		b.stats.WordsFetched++
		b.valid = true
		b.last = a
		b.next = a + addr.Addr(b.wordSize)
		return false
	}
}

// Loop is the CRAY-1-style buffer set: n buffers, each holding one
// aligned region of the instruction space, replaced LRU, with
// branch-target recognition -- a fetch anywhere in a resident region
// hits.  A miss fills the whole region (the CRAY-1 streamed full buffer
// lines), so traffic moves in region-sized transactions.
type Loop struct {
	wordSize   uint64
	regionSize uint64

	regions []loopRegion
	clock   uint64

	stats Stats
}

type loopRegion struct {
	base     addr.Addr
	valid    bool
	lastUsed uint64
}

// NewLoop builds n buffers of regionSize bytes each.
func NewLoop(n, regionSize, wordSize int) (*Loop, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ibuffer: need at least one loop buffer")
	}
	if wordSize <= 0 || !addr.IsPow2(uint64(wordSize)) {
		return nil, fmt.Errorf("ibuffer: word size %d not a positive power of two", wordSize)
	}
	if regionSize < wordSize || !addr.IsPow2(uint64(regionSize)) {
		return nil, fmt.Errorf("ibuffer: region size %d not a power of two >= word size", regionSize)
	}
	return &Loop{
		wordSize:   uint64(wordSize),
		regionSize: uint64(regionSize),
		regions:    make([]loopRegion, n),
	}, nil
}

// Stats returns the accumulated counters.
func (b *Loop) Stats() *Stats { return &b.stats }

// Contains reports whether the region holding a is resident.
func (b *Loop) Contains(a addr.Addr) bool {
	base := addr.AlignDown(a, b.regionSize)
	for i := range b.regions {
		if b.regions[i].valid && b.regions[i].base == base {
			return true
		}
	}
	return false
}

// Fetch presents one instruction fetch; returns true on a hit in any
// resident region.
func (b *Loop) Fetch(a addr.Addr) bool {
	b.clock++
	b.stats.Fetches++
	base := addr.AlignDown(a, b.regionSize)
	lru := 0
	for i := range b.regions {
		r := &b.regions[i]
		if r.valid && r.base == base {
			r.lastUsed = b.clock
			b.stats.Hits++
			return true
		}
		if !b.regions[lru].valid {
			continue // keep pointing at an invalid slot
		}
		if !r.valid || r.lastUsed < b.regions[lru].lastUsed {
			lru = i
		}
	}
	b.regions[lru] = loopRegion{base: base, valid: true, lastUsed: b.clock}
	b.stats.WordsFetched += b.regionSize / b.wordSize
	return false
}

// Run drives a buffer with the instruction fetches of a word-split
// source, ignoring data references (buffers see only the fetch stage).
func Run(b interface{ Fetch(addr.Addr) bool }, src trace.Source) error {
	for {
		r, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if r.Kind != trace.IFetch {
			continue
		}
		b.Fetch(r.Addr)
	}
}
