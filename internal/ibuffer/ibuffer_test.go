package ibuffer

import (
	"math"
	"testing"
	"testing/quick"

	"subcache/internal/addr"
	"subcache/internal/rng"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

func TestNewSequentialValidation(t *testing.T) {
	if _, err := NewSequential(0); err == nil {
		t.Error("accepted zero word size")
	}
	if _, err := NewSequential(3); err == nil {
		t.Error("accepted non-pow2 word size")
	}
}

func TestSequentialStraightLineHits(t *testing.T) {
	b, err := NewSequential(2)
	if err != nil {
		t.Fatal(err)
	}
	// First fetch misses; nine sequential successors hit.
	if b.Fetch(0x100) {
		t.Error("cold fetch hit")
	}
	for i := 1; i <= 9; i++ {
		if !b.Fetch(addr.Addr(0x100 + 2*i)) {
			t.Errorf("sequential fetch %d missed", i)
		}
	}
	st := b.Stats()
	if st.Fetches != 10 || st.Hits != 9 {
		t.Errorf("stats %+v", st)
	}
	// Every word still crossed the bus: traffic ratio exactly 1.
	if got := st.TrafficRatio(); got != 1 {
		t.Errorf("traffic = %g, want 1 (simple buffers save no bandwidth)", got)
	}
}

func TestSequentialBranchMisses(t *testing.T) {
	b, _ := NewSequential(2)
	b.Fetch(0x100)
	b.Fetch(0x102)
	if b.Fetch(0x200) {
		t.Error("branch target hit in a non-recognising buffer")
	}
	// The decoder re-reading the latched word is free.
	if !b.Fetch(0x201) {
		// 0x201 aligns to 0x200, the latched word: hit.
		t.Error("latched-word refetch missed")
	}
	// A branch BACK to a just-executed address misses: the buffer does
	// not recognise targets.
	if b.Fetch(0x102) {
		t.Error("backward branch hit in a non-recognising buffer")
	}
}

// TestSequentialLoopTrafficEqualsOne: looping code gets NO bandwidth
// help from a simple buffer -- each iteration refetches (the paper's
// motivation for caches over buffers).
func TestSequentialLoopTraffic(t *testing.T) {
	b, _ := NewSequential(2)
	for iter := 0; iter < 100; iter++ {
		for pc := addr.Addr(0x100); pc < 0x110; pc += 2 {
			b.Fetch(pc)
		}
	}
	st := b.Stats()
	if got := st.TrafficRatio(); math.Abs(got-1) > 0.01 {
		t.Errorf("loop traffic ratio = %g, want ~1", got)
	}
	// But latency-wise it still hits on the sequential part.
	if st.HitRatio() < 0.8 {
		t.Errorf("hit ratio = %g, want high (sequential bodies)", st.HitRatio())
	}
}

func TestNewLoopValidation(t *testing.T) {
	if _, err := NewLoop(0, 128, 2); err == nil {
		t.Error("accepted zero buffers")
	}
	if _, err := NewLoop(4, 0, 2); err == nil {
		t.Error("accepted zero region")
	}
	if _, err := NewLoop(4, 100, 2); err == nil {
		t.Error("accepted non-pow2 region")
	}
	if _, err := NewLoop(4, 128, 5); err == nil {
		t.Error("accepted bad word size")
	}
}

func TestLoopRecognisesBranchTargets(t *testing.T) {
	// CRAY-1 shape: 4 buffers of 128 bytes.
	b, err := NewLoop(4, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Fetch(0x100) {
		t.Error("cold fetch hit")
	}
	// A branch to a different word in the same region hits: the buffer
	// recognises targets.
	if !b.Fetch(0x140) {
		t.Error("branch target within region missed")
	}
	if !b.Contains(0x17e) {
		t.Error("region edge not resident")
	}
	if b.Contains(0x180) {
		t.Error("next region spuriously resident")
	}
}

func TestLoopHoldsEntireLoops(t *testing.T) {
	b, _ := NewLoop(4, 128, 2)
	// A 100-iteration loop over 64 bytes: one fill, then all hits.
	for iter := 0; iter < 100; iter++ {
		for pc := addr.Addr(0x100); pc < 0x140; pc += 2 {
			b.Fetch(pc)
		}
	}
	st := b.Stats()
	if st.WordsFetched != 64 { // one 128-byte region = 64 words
		t.Errorf("words fetched = %d, want 64", st.WordsFetched)
	}
	if st.TrafficRatio() > 0.05 {
		t.Errorf("loop buffer traffic = %g, want tiny", st.TrafficRatio())
	}
}

func TestLoopLRUReplacement(t *testing.T) {
	b, _ := NewLoop(2, 128, 2)
	b.Fetch(0x000) // region A
	b.Fetch(0x080) // region B
	b.Fetch(0x000) // touch A
	b.Fetch(0x100) // region C evicts B (LRU)
	if !b.Contains(0x000) || !b.Contains(0x100) {
		t.Error("wrong survivors after replacement")
	}
	if b.Contains(0x080) {
		t.Error("LRU region not evicted")
	}
}

func TestRunFiltersDataRefs(t *testing.T) {
	b, _ := NewLoop(2, 128, 2)
	refs := []trace.Ref{
		{Addr: 0x100, Kind: trace.IFetch, Size: 2},
		{Addr: 0x5000, Kind: trace.Read, Size: 2},
		{Addr: 0x6000, Kind: trace.Write, Size: 2},
		{Addr: 0x102, Kind: trace.IFetch, Size: 2},
	}
	if err := Run(b, trace.NewSliceSource(refs)); err != nil {
		t.Fatal(err)
	}
	if b.Stats().Fetches != 2 {
		t.Errorf("fetches = %d, want 2 (data refs filtered)", b.Stats().Fetches)
	}
}

func TestStatsZeroSafe(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 || s.MissRatio() != 0 || s.TrafficRatio() != 0 {
		t.Error("zero stats not safe")
	}
}

// Property: on ANY fetch stream, the sequential buffer's traffic ratio
// is exactly 1 -- the paper's claim that simple buffers never save
// bandwidth.
func TestPropertySequentialTrafficIsOne(t *testing.T) {
	f := func(seed uint64) bool {
		b, err := NewSequential(2)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		var pc addr.Addr = 0x100
		for i := 0; i < 2000; i++ {
			// Always advance or jump to a different word, so the
			// decode-latch free-hit case never fires: traffic must
			// then be exactly 1.
			if r.Bool(0.25) {
				np := addr.AlignDown(addr.Addr(r.Uint32()&0xffff), 2)
				if np == pc {
					np += 2
				}
				pc = np
			} else {
				pc += 2
			}
			b.Fetch(pc)
		}
		return b.Stats().TrafficRatio() == 1
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Error(err)
	}
}

// Property: the loop-buffer hit+miss partition is exact and traffic is
// misses x region words.
func TestPropertyLoopAccounting(t *testing.T) {
	f := func(seed uint64) bool {
		b, err := NewLoop(4, 64, 2)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		for i := 0; i < 2000; i++ {
			b.Fetch(addr.AlignDown(addr.Addr(r.Uint32()&0x3ff), 2))
		}
		st := b.Stats()
		misses := st.Fetches - st.Hits
		return st.WordsFetched == misses*32
	}
	if err := quick.Check(f, quickCfg(30)); err != nil {
		t.Error(err)
	}
}

// TestBuffersOnRealWorkload: on a synthetic instruction stream, the
// CRAY-style buffers must beat the simple buffer on traffic, and both
// must achieve reasonable hit ratios.
func TestBuffersOnRealWorkload(t *testing.T) {
	prof, ok := synth.ProfileByName("GREP")
	if !ok {
		t.Fatal("GREP missing")
	}
	refs, err := synth.Generate(prof, 50000)
	if err != nil {
		t.Fatal(err)
	}
	words, err := trace.SplitAll(trace.NewSliceSource(refs), 2)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := NewSequential(2)
	loop, _ := NewLoop(4, 128, 2)
	if err := Run(seq, trace.NewSliceSource(words)); err != nil {
		t.Fatal(err)
	}
	if err := Run(loop, trace.NewSliceSource(words)); err != nil {
		t.Fatal(err)
	}
	if tr := seq.Stats().TrafficRatio(); tr < 0.9 || tr > 1 {
		t.Errorf("sequential traffic = %g, want ~1 (no bandwidth saving)", tr)
	}
	if loop.Stats().TrafficRatio() >= 1 {
		t.Errorf("loop buffers did not cut traffic: %g", loop.Stats().TrafficRatio())
	}
	if seq.Stats().HitRatio() < 0.3 {
		t.Errorf("sequential hit ratio %g implausibly low", seq.Stats().HitRatio())
	}
	if loop.Stats().HitRatio() <= seq.Stats().HitRatio() {
		t.Errorf("loop buffers (%g) should out-hit the 8-byte window (%g)",
			loop.Stats().HitRatio(), seq.Stats().HitRatio())
	}
}
