package multipass

import (
	"reflect"
	"testing"

	"subcache/internal/cache"
)

// partitionCfg builds a MultiPassSafe grid configuration.
func partitionCfg(net, block, sub int) cache.Config {
	assoc := 4
	if frames := net / block; frames < assoc {
		assoc = frames
	}
	return cache.Config{
		NetSize: net, BlockSize: block, SubBlockSize: sub,
		Assoc: assoc, WordSize: 2,
		Replacement: cache.LRU, Write: cache.WriteAllocate,
	}
}

// partitionSuite is a representative mix: three families of different
// widths plus two fallback (non-MultiPassSafe) configurations.
func partitionSuite() []cache.Config {
	var cfgs []cache.Config
	for _, sub := range []int{2, 4, 8, 16} {
		cfgs = append(cfgs, partitionCfg(256, 16, sub))
	}
	for _, sub := range []int{2, 4} {
		cfgs = append(cfgs, partitionCfg(64, 8, sub))
	}
	cfgs = append(cfgs, partitionCfg(1024, 32, 8))
	obl := partitionCfg(256, 16, 8)
	obl.PrefetchOBL = true
	cfgs = append(cfgs, obl)
	wna := partitionCfg(64, 8, 2)
	wna.Write = cache.WriteNoAllocate
	cfgs = append(cfgs, wna)
	return cfgs
}

// TestPartitionCoversEveryIndex: every shard count yields plans that
// cover each configuration index exactly once, with no empty plans and
// never more plans than shards.
func TestPartitionCoversEveryIndex(t *testing.T) {
	cfgs := partitionSuite()
	for shards := -1; shards <= len(cfgs)+4; shards++ {
		plans := PartitionShards(cfgs, shards)
		if shards >= 1 && len(plans) > shards {
			t.Fatalf("shards=%d: got %d plans", shards, len(plans))
		}
		seen := make(map[int]int)
		for pi, plan := range plans {
			if len(plan.Families) == 0 && len(plan.Rest) == 0 {
				t.Errorf("shards=%d: plan %d is empty", shards, pi)
			}
			for _, fam := range plan.Families {
				if len(fam) == 0 {
					t.Errorf("shards=%d: plan %d has an empty family", shards, pi)
				}
				for _, k := range fam {
					seen[k]++
				}
			}
			for _, k := range plan.Rest {
				seen[k]++
			}
		}
		for i := range cfgs {
			if seen[i] != 1 {
				t.Fatalf("shards=%d: index %d assigned %d times", shards, i, seen[i])
			}
		}
	}
}

// TestPartitionFamilyInvariants: every planned family must be a real
// single-pass family -- all members MultiPassSafe and sharing one
// FamilyKey -- and every Rest index must be a configuration the kernel
// cannot host.
func TestPartitionFamilyInvariants(t *testing.T) {
	cfgs := partitionSuite()
	for _, shards := range []int{1, 2, 3, len(cfgs) + 4} {
		plans := PartitionShards(cfgs, shards)
		for _, plan := range plans {
			for _, fam := range plan.Families {
				key := cfgs[fam[0]].FamilyKey()
				for _, k := range fam {
					if !cfgs[k].MultiPassSafe() {
						t.Errorf("shards=%d: non-safe config %d planned into a family", shards, k)
					}
					if cfgs[k].FamilyKey() != key {
						t.Errorf("shards=%d: family mixes keys at index %d", shards, k)
					}
				}
			}
			for _, k := range plan.Rest {
				if cfgs[k].MultiPassSafe() {
					t.Errorf("shards=%d: safe config %d left on the fallback path", shards, k)
				}
			}
		}
	}
}

// TestPartitionSplitsWideFamilies: with more shards than natural units
// the widest families are halved so idle shards get work; the split
// halves still satisfy the family invariants (checked above) because
// any subset of a family is itself a family.
func TestPartitionSplitsWideFamilies(t *testing.T) {
	var cfgs []cache.Config
	for _, sub := range []int{2, 4, 8, 16} {
		cfgs = append(cfgs, partitionCfg(256, 16, sub))
	}
	plans := PartitionShards(cfgs, 2)
	if len(plans) != 2 {
		t.Fatalf("one 4-lane family across 2 shards: got %d plans, want 2", len(plans))
	}
	for pi, plan := range plans {
		if len(plan.Families) != 1 || len(plan.Families[0]) != 2 {
			t.Errorf("plan %d: want one 2-lane half-family, got %+v", pi, plan)
		}
	}

	// More shards than lanes: families bottom out at one lane each and
	// the plan count stops growing.
	plans = PartitionShards(cfgs, 16)
	if len(plans) != 4 {
		t.Fatalf("4 lanes across 16 shards: got %d plans, want 4", len(plans))
	}
}

// TestPartitionDeterministic: the plan is a pure function of its
// inputs.
func TestPartitionDeterministic(t *testing.T) {
	cfgs := partitionSuite()
	for _, shards := range []int{1, 3, 7} {
		a := PartitionShards(cfgs, shards)
		b := PartitionShards(cfgs, shards)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("shards=%d: partition is not deterministic", shards)
		}
	}
}

// TestPartitionBalance: with two shards and units of known cost the LPT
// assignment must not put everything on one shard.
func TestPartitionBalance(t *testing.T) {
	cfgs := partitionSuite()
	plans := PartitionShards(cfgs, 2)
	if len(plans) != 2 {
		t.Fatalf("got %d plans, want 2", len(plans))
	}
	load := func(p ShardPlan) int {
		n := 0
		for _, fam := range p.Families {
			n += 2 + len(fam)
		}
		return n + 3*len(p.Rest)
	}
	a, b := load(plans[0]), load(plans[1])
	if a == 0 || b == 0 {
		t.Fatalf("degenerate balance: loads %d/%d", a, b)
	}
	if a > 3*b || b > 3*a {
		t.Errorf("poor balance: loads %d/%d", a, b)
	}
}
