// Differential tests: the multipass kernel must be counter-exact
// against the reference simulator.  Every test here drives the same
// seeded reference stream through a multipass.Family and through one
// cache.Cache per lane, then requires the full cache.Stats -- every
// counter and the bus-transaction histogram, not just the ratios -- to
// be identical.
package multipass_test

import (
	"fmt"
	"reflect"
	"testing"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/multipass"
	"subcache/internal/rng"
	"subcache/internal/sweep"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

// makeTrace builds a seeded word trace mixing uniform, temporal,
// sequential and spatial reference patterns, so hits, sub-block misses,
// block misses, evictions and warm-up transitions all occur.
func makeTrace(seed uint64, n int, addrMask uint64, wordSize int) []trace.Ref {
	r := rng.New(seed)
	hot := make([]addr.Addr, 16)
	for i := range hot {
		hot[i] = addr.Addr(r.Uint64() & addrMask)
	}
	refs := make([]trace.Ref, 0, n)
	var seq addr.Addr
	for i := 0; i < n; i++ {
		var a addr.Addr
		switch r.Intn(4) {
		case 0:
			a = addr.Addr(r.Uint64() & addrMask)
		case 1:
			a = hot[r.Intn(len(hot))]
		case 2:
			seq += addr.Addr(wordSize)
			a = seq & addr.Addr(addrMask)
		default:
			a = (hot[r.Intn(len(hot))] + addr.Addr(r.Intn(64))) & addr.Addr(addrMask)
		}
		refs = append(refs, trace.Ref{
			Addr: addr.AlignDown(a, uint64(wordSize)),
			Kind: trace.Kind(r.Intn(3)),
			Size: uint8(wordSize),
		})
	}
	return refs
}

// runReference replays refs through a fresh reference cache.
func runReference(t *testing.T, cfg cache.Config, refs []trace.Ref) *cache.Stats {
	t.Helper()
	c, err := cache.New(cfg)
	if err != nil {
		t.Fatalf("cache.New(%v): %v", cfg, err)
	}
	for _, r := range refs {
		c.Access(r)
	}
	c.FlushUsage()
	return c.Stats()
}

// diffFamily runs refs through a family kernel and per-lane reference
// caches and reports any counter divergence.
func diffFamily(t *testing.T, cfgs []cache.Config, refs []trace.Ref) {
	t.Helper()
	fam, err := multipass.New(cfgs)
	if err != nil {
		t.Fatalf("multipass.New: %v", err)
	}
	for _, r := range refs {
		fam.Access(r)
	}
	fam.FlushUsage()
	for i, cfg := range cfgs {
		want := runReference(t, cfg, refs)
		got := fam.Stats(i)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: multipass diverges from reference\n got:  %+v\n want: %+v", cfg, got, want)
		}
	}
}

// fetchLanes expands one (net, block) family into every (sub, fetch)
// lane the sweep grid could ask for: demand fetch at every sub-block
// size plus the load-forward and whole-block variants where sub < block.
func fetchLanes(base cache.Config, subs []int) []cache.Config {
	var cfgs []cache.Config
	for _, sub := range subs {
		c := base
		c.SubBlockSize = sub
		cfgs = append(cfgs, c)
		if sub < base.BlockSize {
			for _, f := range []cache.Fetch{cache.LoadForward, cache.LoadForwardOptimized, cache.WholeBlock} {
				cf := c
				cf.Fetch = f
				cfgs = append(cfgs, cf)
			}
		}
	}
	return cfgs
}

// TestDiffGridFamilies groups the paper's Table 1 grid into families
// exactly as the sweep's MultiPass engine does and differentially tests
// every family, for both 2-byte and 4-byte data paths.
func TestDiffGridFamilies(t *testing.T) {
	archs := []synth.Arch{synth.PDP11, synth.VAX11} // word sizes 2 and 4
	for _, arch := range archs {
		arch := arch
		ws := arch.WordSize()
		refs := makeTrace(0xd1ff+uint64(ws), 6000, 0xffff, ws)
		pts := sweep.Grid([]int{64, 256}, ws)
		type famKey struct{ net, block int }
		fams := map[famKey][]cache.Config{}
		var order []famKey
		for _, p := range pts {
			cfg := p.Config(arch)
			k := famKey{p.Net, p.Block}
			if _, ok := fams[k]; !ok {
				order = append(order, k)
			}
			fams[k] = append(fams[k], cfg)
		}
		for _, k := range order {
			k, cfgs := k, fams[k]
			t.Run(fmt.Sprintf("%s/net%d/block%d", arch, k.net, k.block), func(t *testing.T) {
				diffFamily(t, cfgs, refs)
			})
		}
	}
}

// TestDiffPolicyMatrix differentially tests one representative family
// under every MultiPassSafe combination of write policy, memory-update
// mode, replacement policy and warm-start accounting, with fetch-policy
// lanes mixed in.
func TestDiffPolicyMatrix(t *testing.T) {
	base := cache.Config{
		NetSize: 256, BlockSize: 32, Assoc: 4, WordSize: 2,
		SubBlockSize: 32, // per-lane below
	}
	var seed uint64 = 1984
	for _, write := range []cache.WritePolicy{cache.WriteAllocate, cache.WriteIgnore} {
		for _, copyBack := range []bool{false, true} {
			for _, repl := range []cache.Replacement{cache.LRU, cache.FIFO, cache.Random} {
				for _, warm := range []bool{false, true} {
					write, copyBack, repl, warm := write, copyBack, repl, warm
					seed++
					traceSeed := seed
					name := fmt.Sprintf("%v/%v/copyback=%v/warm=%v", write, repl, copyBack, warm)
					t.Run(name, func(t *testing.T) {
						b := base
						b.Write = write
						b.CopyBack = copyBack
						b.Replacement = repl
						b.RandomSeed = 7
						b.WarmStart = warm
						cfgs := fetchLanes(b, []int{2, 4, 8, 16, 32})
						refs := makeTrace(traceSeed, 4000, 0x3fff, 2)
						diffFamily(t, cfgs, refs)
					})
				}
			}
		}
	}
}

// TestDiffTinyAndFullyAssociative covers the geometry extremes: a
// direct-mapped family, a fully-associative (360/85-style sector)
// family, and a single-set cache where every access contends.
func TestDiffTinyAndFullyAssociative(t *testing.T) {
	cases := []struct {
		name string
		base cache.Config
		subs []int
	}{
		{"direct-mapped", cache.Config{NetSize: 128, BlockSize: 16, Assoc: 1, WordSize: 2}, []int{2, 4, 8, 16}},
		{"fully-assoc", cache.Config{NetSize: 512, BlockSize: 64, Assoc: 8, WordSize: 4}, []int{4, 8, 16, 32, 64}},
		{"single-set", cache.Config{NetSize: 64, BlockSize: 32, Assoc: 2, WordSize: 2}, []int{2, 8, 32}},
	}
	for i, tc := range cases {
		tc, i := tc, i
		t.Run(tc.name, func(t *testing.T) {
			refs := makeTrace(0xace0+uint64(i), 5000, 0x1fff, tc.base.WordSize)
			diffFamily(t, fetchLanes(tc.base, tc.subs), refs)
		})
	}
}

// TestNewRejectsIneligible: configurations whose tag dynamics depend on
// sub-block state, or that mix families, must be refused up front.
func TestNewRejectsIneligible(t *testing.T) {
	ok := cache.Config{NetSize: 256, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2}
	if _, err := multipass.New([]cache.Config{ok}); err != nil {
		t.Fatalf("eligible config rejected: %v", err)
	}
	prefetch := ok
	prefetch.PrefetchOBL = true
	if _, err := multipass.New([]cache.Config{prefetch}); err == nil {
		t.Error("prefetch config accepted; tag dynamics depend on sub-block validity")
	}
	noAlloc := ok
	noAlloc.Write = cache.WriteNoAllocate
	if _, err := multipass.New([]cache.Config{noAlloc}); err == nil {
		t.Error("write-no-allocate config accepted; recency updates depend on sub-block validity")
	}
	otherFamily := ok
	otherFamily.BlockSize = 32
	otherFamily.SubBlockSize = 32
	if _, err := multipass.New([]cache.Config{ok, otherFamily}); err == nil {
		t.Error("mixed (net,block) families accepted")
	}
	invalid := ok
	invalid.SubBlockSize = 3
	if _, err := multipass.New([]cache.Config{invalid}); err == nil {
		t.Error("invalid geometry accepted")
	}
	if _, err := multipass.New(nil); err == nil {
		t.Error("empty family accepted")
	}
}

// TestLaneAccessors: lanes preserve input order and expose their
// configurations.
func TestLaneAccessors(t *testing.T) {
	base := cache.Config{NetSize: 128, BlockSize: 16, Assoc: 2, WordSize: 2}
	cfgs := fetchLanes(base, []int{2, 4, 8, 16})
	fam, err := multipass.New(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Lanes() != len(cfgs) {
		t.Fatalf("Lanes() = %d, want %d", fam.Lanes(), len(cfgs))
	}
	for i, cfg := range cfgs {
		if fam.Config(i) != cfg {
			t.Errorf("Config(%d) = %v, want %v", i, fam.Config(i), cfg)
		}
	}
}

// TestRunDrivesSource: Family.Run consumes a Source to EOF and flushes
// residency, matching the reference Run helper.
func TestRunDrivesSource(t *testing.T) {
	cfg := cache.Config{NetSize: 128, BlockSize: 16, SubBlockSize: 4, Assoc: 2, WordSize: 2}
	refs := makeTrace(33, 3000, 0xfff, 2)

	fam, err := multipass.New([]cache.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := fam.Run(trace.NewSliceSource(refs)); err != nil {
		t.Fatal(err)
	}

	c, err := cache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(trace.NewSliceSource(refs)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fam.Stats(0), c.Stats()) {
		t.Errorf("Run diverges:\n got:  %+v\n want: %+v", fam.Stats(0), c.Stats())
	}
}
