// Package multipass simulates a whole family of cache configurations in
// a single pass over a trace.
//
// The idea is the set-refinement structure behind stack-distance
// simulation (Mattson et al. 1970): for a fixed net size, block size and
// associativity, every sub-block size indexes the same sets, matches the
// same tags and -- provided nothing feeds sub-block state back into the
// tag array -- makes the same replacement decisions on the same
// accesses.  One shared tag/replacement engine can therefore carry a
// "lane" per (sub-block size, fetch policy) pair, each lane owning only
// the per-frame valid/touched/dirty bitmaps and its own cache.Stats.
// Simulating the k sub-block sizes of one Table 7 family then costs one
// trace pass and one tag probe per access instead of k.
//
// The kernel is bit-exact against cache.Cache: every counter in
// cache.Stats, including the bus-transaction histogram, is accumulated
// by the same rules.  internal/multipass/diff_test.go and
// FuzzMultiPassEquivalence enforce the equivalence; the sweep harness
// additionally regression-tests the generated paper artifacts
// byte-for-byte across engines.
//
// To keep the per-reference loop tight, counters that are tag-level
// facts -- identical in every lane by the set-refinement argument
// (accesses, warm-up accesses, write accesses, block misses, evictions,
// write-through words) -- are accumulated once per family and folded
// into each lane's cache.Stats by FlushUsage, which also derives Hits
// and Misses from the partition identities (Hits = Accesses - Misses,
// Misses = BlockMisses + SubBlockMisses).  Per-lane stats are therefore
// only partially populated until FlushUsage runs; every consumer of
// Family.Stats must flush first, exactly as the reference simulator
// requires for its residency counters.
//
// Storage follows the struct-of-arrays layout of internal/cache --
// dense per-(set,way) slices plus a per-set fill count exploiting the
// prefix-fill invariant (ways fill in order and tags never invalidate)
// -- with one twist: the tag and the recency tick of a frame are
// interleaved in a single slice, because the batch loop's tag probe,
// LRU victim scan and recency store all hit the same set, and pairing
// the two words keeps that entire set's footprint in one or two cache
// lines instead of four.  The lane bitmaps go one
// step further: all lanes' valid (touched, dirty) masks for one frame
// are packed side by side into bit planes -- lane li owns the field
// [laneOff, laneOff+subPerBlk) of plane word fi*nPlanes+plane -- and a
// small table precomputed per block offset gives, in one load, the OR
// of every lane's referenced-sub-block bit.  The steady-state cost of a
// full hit across k lanes is then one mask test and one OR, independent
// of k; the per-lane loop runs only for the lanes that actually miss.
// A pair of same-block memos (one per instruction/data stream, which
// interleave in split traces) short-circuits the tag probe for
// repeat-block references.
//
// Eligibility is decided by cache.Config.MultiPassSafe: OBL prefetch and
// write-no-allocate feed sub-block validity back into tag-array
// dynamics, so such configurations must be simulated by the reference
// cache.Cache (the sweep harness falls back automatically).
package multipass

import (
	"fmt"
	"io"
	"math/bits"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/rng"
	"subcache/internal/trace"
)

// lane is one configuration's cold state: the fetch-policy parameters
// used on fills and retirements, its bit-plane placement, and the
// statistics.  The hot per-frame bitmaps live in the family's packed
// plane words.
type lane struct {
	cfg         cache.Config
	subShift    uint
	subPerBlk   uint
	subMask     uint64 // low subPerBlk bits set (the lane's local field)
	wordsPerSub int
	plane       int  // which plane word holds this lane's field
	laneOff     uint // bit offset of the field within the plane word
	stats       cache.Stats
}

// Family simulates a set of cache configurations that share tag-array
// dynamics (equal FamilyKey, all MultiPassSafe) in one trace pass.  Not
// safe for concurrent use.
type Family struct {
	base    cache.Config // cfgs[0]; SubBlockSize/Fetch vary per lane
	lanes   []lane
	nLanes  int
	nPlanes int

	// Shared tag array, struct-of-arrays, indexed fi = set*assoc+way.
	tags     []uint64
	lastUse  []uint64 // recency ticks; consulted only when assoc > 4
	loadedAt []uint64
	setFill  []int32 // valid ways per set: prefix [0, setFill) holds blocks

	// setOrder[setIdx] packs the set's exact LRU order into one byte:
	// four 2-bit way ids, most recently used first, so the victim of a
	// full set is the low field and recording an access is one load
	// from mruTab instead of a tick store.  Exact for any assoc <= 4
	// (see mruTab); wider LRU sets fall back to lastUse ticks.
	setOrder []uint8

	// Packed lane bitmaps: plane word pj of frame fi is at fi*nPlanes+pj
	// and carries the valid (touched, dirty) fields of every lane
	// assigned to plane pj.  On the Table 7 grids the sub-block counts
	// of a whole family sum below 64, so nPlanes is 1 and a frame's
	// entire lane state is three words.
	valid   []uint64
	touched []uint64
	dirty   []uint64

	// refBits[(off>>wordShift)*nPlanes+pj] is the OR, over the lanes of
	// plane pj, of the bit for the sub-block containing block offset
	// off: the "which sub-block does this reference touch" shift work
	// for every lane collapses into one table load.  Indexing by word
	// offset is exact for any byte offset because sub-blocks are at
	// least a word.
	refBits []uint64

	// laneOfBit[pj*64+b] is the lane owning bit b of plane pj, so a
	// sub-miss handler iterates exactly the missing lanes by peeling
	// bits instead of filtering all lanes.
	laneOfBit []uint8

	// Block-miss fill tables.  A block miss always fills from a zeroed
	// valid word, which makes every fetch policy's outcome a pure
	// function of the block offset: one contiguous transaction, no
	// redundant loads.  missBits[(off>>wordShift)*nPlanes+pj] is the
	// plane's valid word after all its lanes filled; missWords[li*words
	// + off>>wordShift] is lane li's words-transferred count, which is
	// simultaneously its TxHist index and its WordsFetched delta; and
	// missLoaded likewise its SubBlockFills delta.
	missBits   []uint64
	missWords  []int32
	missLoaded []int32

	// packBuf is AccessBatch's scratch for the packed form of the
	// chunk (see trace.PackRefs): the hot loops read one word per
	// reference.  AccessBatchPacked callers supply the packed chunk
	// themselves and share one packing pass across sibling families.
	packBuf []uint64

	// memoI/memoD are per-stream same-block memos: the frame the last
	// instruction-fetch (data) reference touched, or -1.  Split traces
	// interleave the two streams, so a single memo would thrash.  No
	// invalidation is needed: a frame's tag changes only at allocation,
	// which re-points the current stream's memo, and a stale memo fails
	// its tag compare and falls back to the probe.
	memoI int32
	memoD int32

	// Deferred per-lane counters.  The miss paths of the batch loop
	// record events in these dense histograms -- one increment per event
	// -- and FlushUsage folds them into each lane's cache.Stats, where
	// the eager paths would have done three to five counter updates per
	// lane per event.  All three are order-independent totals, so the
	// fold is exact.
	//
	// bitMiss[b] (bitMissW[b]) counts counted (write) sub-block misses
	// whose referenced bit is bit b of plane 0: on an all-demand-fetch
	// single-plane family the bit identifies the lane, the loaded
	// sub-block and the one-sub-block transaction all at once.
	// blkMissHist[wo] counts counted block misses at word offset wo; the
	// missWords/missLoaded tables turn that into every lane's histogram
	// and fill deltas at flush time.
	bitMiss     []uint64
	bitMissW    []uint64
	blkMissHist []uint64

	// Retired-frame touched bits accumulate in per-plane vertical
	// (bit-sliced) counters: vcTouch[pj*vcDepth+j] holds bit j of a
	// 64-wide column of binary counters, so retiring a frame is a short
	// ripple-carry add of its touched word instead of a per-lane
	// popcount.  A carry out of the top level spills 1<<vcDepth into
	// vcSpill[pj*64+b] per set bit.  FlushUsage reassembles per-bit
	// totals and attributes them to lanes via laneOfBit.
	vcTouch []uint64
	vcSpill []uint64

	// allDemand is set when every lane uses DemandSubBlock fetch (the
	// entire Table 7 grid): a sub-block miss then loads exactly the
	// missing bit for each missing lane, so the batch loop resolves a
	// whole miss mask with one OR plus the bitMiss deferrals.
	allDemand bool

	assoc     int
	tick      uint64
	filled    int
	warm      bool // counting enabled: warm-start satisfied or disabled
	flushed   bool // FlushUsage has folded the shared counters
	rand      *rng.Stream
	wordShift uint
	blkWords  int // BlockSize/WordSize: row length of the miss tables

	blockShift uint
	setMask    addr.Addr
	offMask    uint64 // BlockSize-1: block-offset extraction
	copyBack   bool

	// Tag-level event counts, identical in every lane and therefore
	// accumulated once per family instead of once per lane per access.
	// FlushUsage folds them into each lane's cache.Stats.
	//
	// kindCount is the counted-phase access classification, indexed by
	// trace.Kind (IFetch/Read/Write): one unconditional increment
	// replaces the hit path's classification branches, and FlushUsage
	// derives ifetches, reads, accesses and the warm-phase write count
	// from it.
	kindCount         [4]uint64
	warmupAccesses    uint64
	writeAccesses     uint64 // warm-up-phase writes; kindCount[Write] holds the rest
	blockMisses       uint64 // counted block (tag) misses
	warmupBlockMisses uint64
	writeBlockMisses  uint64
	evictions         uint64
	wtWords           uint64 // write-through words, one per write (write-through mode)
}

// New builds a family kernel for the given configurations.  All
// configurations must validate, be MultiPassSafe, and share a FamilyKey
// (i.e. differ only in SubBlockSize and Fetch).
func New(cfgs []cache.Config) (*Family, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("multipass: no configurations")
	}
	key := cfgs[0].FamilyKey()
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if !cfg.MultiPassSafe() {
			return nil, fmt.Errorf("multipass: %v: tag dynamics depend on sub-block state (prefetch or write-no-allocate)", cfg)
		}
		if cfg.FamilyKey() != key {
			return nil, fmt.Errorf("multipass: %v and %v are not in the same family", cfgs[0], cfg)
		}
	}
	base := cfgs[0]
	numFrames := base.NumFrames()
	k := len(cfgs)
	f := &Family{
		base:       base,
		nLanes:     k,
		tags:       make([]uint64, numFrames),
		lastUse:    make([]uint64, numFrames),
		loadedAt:   make([]uint64, numFrames),
		setFill:    make([]int32, base.NumSets()),
		setOrder:   make([]uint8, base.NumSets()),
		memoI:      -1,
		memoD:      -1,
		assoc:      base.Assoc,
		warm:       !base.WarmStart,
		wordShift:  addr.Log2(uint64(base.WordSize)),
		blockShift: addr.Log2(uint64(base.BlockSize)),
		setMask:    addr.Addr(base.NumSets() - 1),
		offMask:    uint64(base.BlockSize - 1),
		copyBack:   base.CopyBack,
	}
	if base.Replacement == cache.Random {
		f.rand = rng.New(base.RandomSeed)
	}
	// Assign each lane a field in a bit plane, first-fit in input order:
	// a new plane starts whenever the current one cannot hold the next
	// lane's subPerBlk bits.
	f.lanes = make([]lane, k)
	used := uint(64) // force plane 0 to open on the first lane
	plane := -1
	for i, cfg := range cfgs {
		subPerBlk := uint(cfg.SubBlocksPerBlock())
		if used+subPerBlk > 64 {
			plane++
			used = 0
		}
		f.lanes[i] = lane{
			cfg:         cfg,
			subShift:    addr.Log2(uint64(cfg.SubBlockSize)),
			subPerBlk:   subPerBlk,
			subMask:     ^uint64(0) >> (64 - subPerBlk),
			wordsPerSub: cfg.WordsPerSubBlock(),
			plane:       plane,
			laneOff:     used,
		}
		used += subPerBlk
		// Same pre-sizing as cache.New: fills record with one increment.
		f.lanes[i].stats.TxHist = make([]uint64, cfg.BlockSize/cfg.WordSize+1)
	}
	f.nPlanes = plane + 1
	f.valid = make([]uint64, numFrames*f.nPlanes)
	f.touched = make([]uint64, numFrames*f.nPlanes)
	f.dirty = make([]uint64, numFrames*f.nPlanes)
	words := base.BlockSize / base.WordSize
	f.blkWords = words
	f.refBits = make([]uint64, words*f.nPlanes)
	f.laneOfBit = make([]uint8, f.nPlanes*64)
	f.missBits = make([]uint64, words*f.nPlanes)
	f.missWords = make([]int32, len(f.lanes)*words)
	f.missLoaded = make([]int32, len(f.lanes)*words)
	for w := 0; w < words; w++ {
		off := uint(w) << f.wordShift
		for i := range f.lanes {
			ln := &f.lanes[i]
			sub := off >> ln.subShift
			f.refBits[w*f.nPlanes+ln.plane] |= 1 << (ln.laneOff + sub)
			// The zero-valid fill: one transaction spanning the fetch
			// policy's reach from sub.
			var mask uint64
			switch ln.cfg.Fetch {
			case cache.DemandSubBlock:
				mask = 1 << sub
			case cache.LoadForward, cache.LoadForwardOptimized:
				mask = ln.subMask &^ (1<<sub - 1)
			case cache.WholeBlock:
				mask = ln.subMask
			}
			loaded := bits.OnesCount64(mask)
			f.missBits[w*f.nPlanes+ln.plane] |= mask << ln.laneOff
			f.missLoaded[i*words+w] = int32(loaded)
			f.missWords[i*words+w] = int32(loaded * ln.wordsPerSub)
		}
	}
	for i := range f.lanes {
		ln := &f.lanes[i]
		for b := uint(0); b < ln.subPerBlk; b++ {
			f.laneOfBit[ln.plane*64+int(ln.laneOff+b)] = uint8(i)
		}
	}
	f.allDemand = true
	for _, cfg := range cfgs {
		if cfg.Fetch != cache.DemandSubBlock {
			f.allDemand = false
		}
	}
	f.bitMiss = make([]uint64, 64)
	f.bitMissW = make([]uint64, 64)
	f.blkMissHist = make([]uint64, words)
	f.packBuf = make([]uint64, trace.ChunkRefs)
	f.vcTouch = make([]uint64, f.nPlanes*vcDepth)
	f.vcSpill = make([]uint64, f.nPlanes*64)
	return f, nil
}

// vcDepth is the height of the vertical touched-bit counters: each bit
// column counts up to 1<<vcDepth retirements before spilling into
// vcSpill, so the spill path is effectively never taken on real traces.
const vcDepth = 24

// mruTab[o<<2|w] is the packed recency byte o after an access to way
// w: the way moves to the front of the four-field sequence.  The
// update drops every stale occurrence of the way and pads by
// repeating the tail, so for sets narrower than four ways the low
// field is still exactly the least recently used of the ways present;
// a fresh way not yet in the byte pushes everything down.  The table
// is 1 KiB and stays L1-resident.
var mruTab = buildMRUTab()

func buildMRUTab() (t [1024]uint8) {
	for o := 0; o < 256; o++ {
		for w := 0; w < 4; w++ {
			seq := []int{w}
			for s := 6; s >= 0; s -= 2 {
				if x := o >> s & 3; x != w {
					seq = append(seq, x)
				}
			}
			for len(seq) < 4 {
				seq = append(seq, seq[len(seq)-1])
			}
			t[o<<2|w] = uint8(seq[0]<<6 | seq[1]<<4 | seq[2]<<2 | seq[3])
		}
	}
	return t
}

// Group partitions configurations into single-pass families.  Each
// returned family is a list of indexes into cfgs sharing a FamilyKey,
// all MultiPassSafe, in first-appearance order; rest holds the indexes
// of configurations that need the reference simulator.  Group does not
// validate geometry -- New reports those errors.
func Group(cfgs []cache.Config) (families [][]int, rest []int) {
	byKey := make(map[cache.Config]int)
	for i, cfg := range cfgs {
		if !cfg.MultiPassSafe() {
			rest = append(rest, i)
			continue
		}
		key := cfg.FamilyKey()
		fi, ok := byKey[key]
		if !ok {
			fi = len(families)
			byKey[key] = fi
			families = append(families, nil)
		}
		families[fi] = append(families[fi], i)
	}
	return families, rest
}

// Lanes returns the number of configurations simulated by the family.
func (f *Family) Lanes() int { return len(f.lanes) }

// Config returns the i'th lane's configuration, in New's input order.
func (f *Family) Config(i int) cache.Config { return f.lanes[i].cfg }

// Stats returns the i'th lane's accumulated statistics.  The pointer
// stays valid for the lifetime of the family, but the tag-level
// counters (accesses, block misses, evictions, and the hit/miss
// totals derived from them) are only folded in by FlushUsage: call
// FlushUsage once at end of trace before reading any counter.
func (f *Family) Stats(i int) *cache.Stats { return &f.lanes[i].stats }

// counting mirrors cache.Cache.counting: with warm start, events are
// recorded only once every frame has been filled.  Fill progress is a
// tag-level property, so one flag covers every lane; the flag is
// maintained at fill time so the hot path reads a bool.
func (f *Family) counting() bool { return f.warm }

// Access presents one word access to every lane of the family.
func (f *Family) Access(r trace.Ref) {
	isWrite := r.Kind == trace.Write
	count := true
	if isWrite {
		if f.base.Write == cache.WriteIgnore {
			return
		}
		// WriteAllocate (the only other MultiPassSafe policy): writes
		// allocate and touch recency like reads but are never counted.
		count = false
	}

	f.tick++
	blockAddr := r.Addr >> f.blockShift
	off := uint(uint64(r.Addr) & f.offMask)
	counted := count && f.warm

	// Access classification is a tag-level fact: record it once for
	// the family instead of once per lane, and in the warm (common)
	// phase as one unconditional kind-indexed increment.
	if f.warm {
		f.kindCount[r.Kind&3]++
	} else if count {
		f.warmupAccesses++
	} else {
		f.writeAccesses++
	}

	// Shared tag probe: the stream's same-block memo first (one
	// compare, the dominant case on block-local traces), then the
	// contiguous scan over the set's filled tags.
	memo := &f.memoD
	if r.Kind == trace.IFetch {
		memo = &f.memoI
	}
	fi := -1
	if m := *memo; m >= 0 && f.tags[m] == uint64(blockAddr) {
		fi = int(m)
	} else {
		setIdx := int(blockAddr & f.setMask)
		sbase := setIdx * f.assoc
		n := sbase + int(f.setFill[setIdx])
		for w := sbase; w < n; w++ {
			if f.tags[w] == uint64(blockAddr) {
				fi = w
				*memo = int32(w)
				break
			}
		}
	}

	if fi >= 0 {
		f.recordUse(int(blockAddr&f.setMask), fi)
		// Tag hit.  One plane word per ~64 lane bits classifies every
		// lane at once: lanes whose referenced-sub-block bit is already
		// valid need nothing but the touched OR; only lanes with the
		// bit missing take the per-lane fill path.  Table 7 families
		// always fit one plane, so that case runs straight-line.
		if f.nPlanes == 1 {
			need := f.refBits[off>>f.wordShift]
			if missing := need &^ f.valid[fi]; missing != 0 {
				f.subMiss(0, fi, off, missing, counted, count)
			}
			f.touched[fi] |= need
			if isWrite {
				if f.copyBack {
					f.dirty[fi] |= need
				} else {
					// Every lane moves the same one word to memory;
					// folded into WriteThroughWords by FlushUsage.
					f.wtWords++
				}
			}
			return
		}
		pb := fi * f.nPlanes
		ob := int(off>>f.wordShift) * f.nPlanes
		for pj := 0; pj < f.nPlanes; pj++ {
			need := f.refBits[ob+pj]
			if missing := need &^ f.valid[pb+pj]; missing != 0 {
				f.subMiss(pj, pb+pj, off, missing, counted, count)
			}
			f.touched[pb+pj] |= need
		}
		if isWrite {
			if f.copyBack {
				for pj := 0; pj < f.nPlanes; pj++ {
					f.dirty[pb+pj] |= f.refBits[ob+pj]
				}
			} else {
				f.wtWords++
			}
		}
		return
	}

	f.allocate(blockAddr, off, counted, count, isWrite, memo)
}

// recordUse marks frame fi of set setIdx most recently used: the
// packed order byte for narrow sets, the tick slice for wide ones.
func (f *Family) recordUse(setIdx, fi int) {
	w := uint(fi-setIdx*f.assoc) & 3
	if o := f.setOrder[setIdx]; uint(o>>6) != w {
		f.setOrder[setIdx] = mruTab[uint(o)<<2|w]
	}
	f.lastUse[fi] = f.tick
}

// allocate handles a block (tag) miss: classification, victim choice,
// retirement, tag assignment and the initial fill of every lane.  The
// caller has already advanced the tick and classified the access.
func (f *Family) allocate(blockAddr addr.Addr, off uint, counted, count, isWrite bool, memo *int32) {
	// One shared allocation, every lane misses -- a tag-level fact,
	// recorded once.
	if counted {
		f.blockMisses++
	} else if count {
		f.warmupBlockMisses++
	} else {
		f.writeBlockMisses++
	}
	setIdx := int(blockAddr & f.setMask)
	fi, fresh := f.victim(setIdx)
	if fresh {
		f.setFill[setIdx]++
		f.filled++
		if f.filled == len(f.tags) {
			f.warm = true
		}
	} else {
		f.evictions++
		f.retire(fi)
	}
	f.tags[fi] = uint64(blockAddr)
	f.recordUse(setIdx, fi)
	f.loadedAt[fi] = f.tick
	*memo = int32(fi)
	// Every lane fills from a zeroed valid word, so the whole frame
	// initialisation is three table loads per plane, and the per-lane
	// work is only the precomputed counter deltas (skipped entirely for
	// uncounted references, exactly as fill would have skipped them --
	// a zero-valid fill has no redundant loads and one transaction).
	pb := fi * f.nPlanes
	wo := int(off >> f.wordShift)
	ob := wo * f.nPlanes
	var dirtyBits uint64 = 0
	if isWrite {
		if f.copyBack {
			dirtyBits = ^uint64(0)
		} else {
			f.wtWords++
		}
	}
	for pj := 0; pj < f.nPlanes; pj++ {
		f.valid[pb+pj] = f.missBits[ob+pj]
		f.touched[pb+pj] = f.refBits[ob+pj]
		f.dirty[pb+pj] = f.refBits[ob+pj] & dirtyBits
	}
	if counted {
		// The per-lane transaction and fill deltas are pure functions of
		// the word offset (see the miss tables), so one histogram
		// increment here replaces the per-lane counter loop; FlushUsage
		// expands it through missWords/missLoaded.
		f.blkMissHist[wo]++
	}
}

// subMiss resolves the lanes of plane pj whose referenced sub-block is
// missing: each set bit of missing is exactly one lane's referenced
// bit, so peeling bits visits the missing lanes and no others.  wi is
// the frame's plane-word index.
func (f *Family) subMiss(pj, wi int, off uint, missing uint64, counted, count bool) {
	for m := missing; m != 0; m &= m - 1 {
		ln := &f.lanes[f.laneOfBit[pj*64+bits.TrailingZeros64(m)]]
		st := &ln.stats
		if counted {
			st.SubBlockMisses++
		} else if count {
			st.WarmupMisses++
		} else {
			st.WriteMisses++
		}
		f.fill(ln, wi, off>>ln.subShift, counted)
	}
}

// AccessBatch presents a chunk of word accesses to every lane, the
// batched equivalent of calling Access per reference.  The sweep
// executors feed trace.ChunkRefs-sized chunks through it.
//
// The batch loop inlines the whole warm-phase protocol -- reads and
// writes, memo or probe, hit and sub-miss -- on a single-plane family,
// with the per-access state (tick, memos, kind counts, slice headers,
// geometry) hoisted into locals, so the steady-state cost per reference
// is a handful of L1 loads with no call overhead.  On an all-demand
// family a sub-block miss is one OR plus a bit-peeled histogram
// deferral (see bitMiss); block misses share Access's allocate path.
// Warm-up-phase references and multi-plane families drop to Access
// itself, so the observable state transitions are identical to calling
// Access per reference.
func (f *Family) AccessBatch(refs []trace.Ref) {
	if len(refs) > len(f.packBuf) {
		f.packBuf = make([]uint64, len(refs))
	}
	packed := f.packBuf[:len(refs)]
	trace.PackRefs(packed, refs, f.wordShift)
	f.accessPacked(refs, packed)
}

// AccessBatchPacked is AccessBatch for a caller that already holds the
// chunk in trace.PackRefs form at this family's word granularity
// (packed[i] = uint64(refs[i].Addr)>>log2(WordSize)<<2 |
// uint64(refs[i].Kind)).  The sweep executors pack each broadcast
// chunk once and share it across every family of the workload.
func (f *Family) AccessBatchPacked(refs []trace.Ref, packed []uint64) {
	f.accessPacked(refs, packed)
}

// WordSize returns the family's word size in bytes, the granularity
// AccessBatchPacked's packed form must be built with.
func (f *Family) WordSize() int { return f.base.WordSize }

func (f *Family) accessPacked(refs []trace.Ref, packed []uint64) {
	if f.nPlanes != 1 || (f.base.Replacement == cache.LRU && f.assoc > 4) {
		// Multi-plane families and LRU sets wider than the packed order
		// byte run the per-reference protocol.
		for i := range refs {
			f.Access(refs[i])
		}
		return
	}
	// Warm-up-phase references carry fill accounting the fast loop
	// omits, and warm never reverts once set, so they peel off the front
	// through Access and the main loop runs branch-free on the flag.
	for len(refs) > 0 && !f.warm {
		f.Access(refs[0])
		refs = refs[1:]
		packed = packed[1:]
	}
	tags, valid, touched, dirty := f.tags, f.valid, f.touched, f.dirty
	setFill, setOrder, refBits := f.setFill, f.setOrder, f.refBits
	bitMiss, bitMissW, blkMissHist := f.bitMiss, f.bitMissW, f.blkMissHist
	missBits, vcTouch := f.missBits, f.vcTouch
	wordShift := f.wordShift
	// Packed-form geometry: the block address is one shift of the
	// packed word, the block word offset one shift and mask.
	baShift := 2 + f.blockShift - wordShift
	woMask := uint64(f.blkWords - 1)
	setMask, assoc := uint64(f.setMask), f.assoc
	allDemand, copyBack := f.allDemand, f.copyBack
	wIgnore := f.base.Write == cache.WriteIgnore
	// In the warm phase the fill/warm bookkeeping is settled and LRU
	// needs no loadedAt, so an LRU family's whole miss path can run
	// inline; FIFO/Random fall back to allocate.
	fastMiss := f.base.Replacement == cache.LRU
	tick := f.tick
	// Stream memos, kind counts and the tag-level event totals live in
	// locals, folded back once at batch end.  The memos are indexed by
	// stream: 0 for instruction fetches, 1 for data (reads and writes
	// share the data stream, like memoD).
	memos := [2]int32{f.memoI, f.memoD}
	var kc [4]uint64
	var bm, wbm, evict, allocW uint64
	if f.blkWords == 1 && allDemand && fastMiss && !copyBack &&
		missBits[0] == refBits[0] {
		// Single-word blocks (block == word): the frame has one
		// sub-block, a demand fill loads exactly it, and nothing is ever
		// written back, so valid == touched == refBits[0] is invariant
		// on every filled frame.  That collapses hit and miss onto one
		// straight-line body with no unpredictable branches: the tag
		// scan compiles to conditional moves, the LRU victim is the low
		// field of the set's order byte, and every store is
		// unconditional -- on a hit it rewrites the value the
		// frame already holds.  These families carry the sweep's worst
		// miss rates and no block locality for the memo to exploit, so
		// the branch-free body beats the memoized one.  Retired touched
		// bits and the miss histogram are uniform, folded from the
		// eviction and miss totals after the loop.
		need := refBits[0]
		mb := missBits[0]
		for i := range packed {
			v := packed[i]
			k := v & 3
			isWrite := k == uint64(trace.Write)
			if isWrite && wIgnore {
				continue
			}
			ba := v >> baShift
			ki := (k + 1) >> 1 & 1
			kc[k]++
			setIdx := int(ba & setMask)
			sbase := setIdx * assoc
			nf := int(setFill[setIdx])
			fi := -1
			for w := 0; w < nf; w++ {
				if tags[sbase+w] == ba {
					fi = sbase + w
				}
			}
			// miss==1 iff no way matched; fresh==1 iff the miss lands in
			// an unused way, full==1 iff the set is full.
			o := setOrder[setIdx]
			miss := uint64(fi) >> 63
			full := uint64(int64(nf-assoc))>>63 ^ 1
			fresh := miss &^ full
			dst := sbase + int(o&3)
			if fresh != 0 {
				dst = sbase + nf
			}
			if fi >= 0 {
				dst = fi
			}
			setFill[setIdx] = int32(nf + int(fresh))
			evict += miss & full
			w1 := v >> 1 & 1
			wbm += w1 & miss
			bm += (1 - w1) & miss
			if fresh != 0 {
				// Only a first-time fill needs the mask stores; every
				// previously filled frame already holds them (the
				// invariant above), so the steady state never touches
				// the mask arrays at all.
				valid[dst] = mb
				touched[dst] = need
			}
			tags[dst] = ba
			// Skip the recency store when the way is already MRU: on
			// block-local runs that is the steady state, and skipping
			// keeps the order byte's load-table-store chain off the
			// loop's critical path.
			if w := uint(dst-sbase) & 3; uint(o>>6) != w {
				setOrder[setIdx] = mruTab[uint(o)<<2|w]
			}
			memos[ki] = int32(dst)
		}
		tick += kc[trace.IFetch] + kc[trace.Read] + kc[trace.Write]
		blkMissHist[0] += bm
		for m := need; m != 0; m &= m - 1 {
			f.vcSpill[bits.TrailingZeros64(m)] += evict
		}
	} else {
		for i := range packed {
			v := packed[i]
			k := v & 3
			isWrite := k == uint64(trace.Write)
			if isWrite && wIgnore {
				continue
			}
			tick++
			ba := v >> baShift
			wo := v >> 2 & woMask
			// IFetch(0)->0, Read(1)/Write(2)->1: the stream index,
			// branch free; the kind histogram needs no branch at all.
			ki := (k + 1) >> 1 & 1
			kc[k]++
			setIdx := int(ba & setMask)
			sbase := setIdx * assoc
			var fi int
			if m := memos[ki]; m >= 0 && tags[m] == ba {
				fi = int(m)
			} else {
				nf := int(setFill[setIdx])
				fi = -1
				// No early break: a fixed scan compiles to conditional
				// moves, trading a couple of extra tag loads for zero
				// branch mispredicts on the match position.
				for w := 0; w < nf; w++ {
					if tags[sbase+w] == ba {
						fi = sbase + w
					}
				}
				if fi < 0 {
					if !fastMiss {
						f.tick = tick
						if isWrite {
							// allocate counts the write-through word
							// itself; keep the epilogue's batch-total
							// fold from counting it again.
							allocW++
						}
						f.allocate(addr.Addr(ba), uint(wo)<<wordShift, !isWrite, !isWrite, isWrite, &memos[ki])
						continue
					}
					// Inline block miss: an unused way if one remains,
					// else the LRU victim from the set's order byte,
					// whose touched bits ripple into the vertical
					// counters.
					if nf < assoc {
						fi = sbase + nf
						setFill[setIdx] = int32(nf + 1)
					} else {
						fi = sbase + int(setOrder[setIdx]&3)
						evict++
						carry := touched[fi]
						for j := 0; carry != 0; j++ {
							if j == vcDepth {
								for m := carry; m != 0; m &= m - 1 {
									f.vcSpill[bits.TrailingZeros64(m)] += 1 << vcDepth
								}
								break
							}
							t := vcTouch[j] & carry
							vcTouch[j] ^= carry
							carry = t
						}
						if copyBack {
							if d := dirty[fi]; d != 0 {
								f.retireDirty(fi, d)
							}
						}
					}
					tags[fi] = ba
					o := setOrder[setIdx]
					setOrder[setIdx] = mruTab[uint(o)<<2|uint(fi-sbase)&3]
					memos[ki] = int32(fi)
					need := refBits[wo]
					valid[fi] = missBits[wo]
					touched[fi] = need
					if isWrite && copyBack {
						dirty[fi] = need
					}
					w1 := v >> 1 & 1
					wbm += w1
					bm += 1 - w1
					blkMissHist[wo] += 1 - w1
					continue
				}
				memos[ki] = int32(fi)
			}
			need := refBits[wo]
			if missing := need &^ valid[fi]; missing != 0 {
				if allDemand {
					// Demand fetch loads exactly the missing bit for
					// each missing lane; the counter work defers.
					valid[fi] |= missing
					if isWrite {
						for m := missing; m != 0; m &= m - 1 {
							bitMissW[bits.TrailingZeros64(m)]++
						}
					} else {
						for m := missing; m != 0; m &= m - 1 {
							bitMiss[bits.TrailingZeros64(m)]++
						}
					}
				} else {
					f.subMiss(0, fi, uint(wo)<<wordShift, missing, !isWrite, !isWrite)
				}
			}
			touched[fi] |= need
			if isWrite && copyBack {
				dirty[fi] |= need
			}
			// As in the word loop: only a non-MRU way needs the store.
			w := uint(fi-sbase) & 3
			if o := setOrder[setIdx]; uint(o>>6) != w {
				setOrder[setIdx] = mruTab[uint(o)<<2|w]
			}
		}
	}
	f.tick = tick
	f.memoI, f.memoD = memos[0], memos[1]
	f.kindCount[trace.IFetch] += kc[trace.IFetch]
	f.kindCount[trace.Read] += kc[trace.Read]
	f.kindCount[trace.Write] += kc[trace.Write]
	if !copyBack && !wIgnore {
		// Write-through moves exactly one word per write, hit or miss:
		// the total is the write count, minus the writes the allocate
		// fallback already counted.
		f.wtWords += kc[trace.Write] - allocW
	}
	f.blockMisses += bm
	f.writeBlockMisses += wbm
	f.evictions += evict
}

// victim picks the frame to replace in the set, mirroring
// cache.Cache.victim: an unused way first (ways fill in order, so the
// unused ways are the suffix past setFill), else the replacement scan
// over the set's contiguous tick slices.
func (f *Family) victim(setIdx int) (fi int, fresh bool) {
	base := setIdx * f.assoc
	if n := int(f.setFill[setIdx]); n < f.assoc {
		return base + n, true
	}
	switch f.base.Replacement {
	case cache.LRU:
		if f.assoc <= 4 {
			return base + int(f.setOrder[setIdx]&3), false
		}
		best := base
		for i := base + 1; i < base+f.assoc; i++ {
			if f.lastUse[i] < f.lastUse[best] {
				best = i
			}
		}
		return best, false
	case cache.FIFO:
		best := base
		for i := base + 1; i < base+f.assoc; i++ {
			if f.loadedAt[i] < f.loadedAt[best] {
				best = i
			}
		}
		return best, false
	case cache.Random:
		return base + f.rand.Intn(f.assoc), false
	}
	panic("multipass: unreachable replacement policy")
}

// fill loads sub-blocks into the lane's field of the plane word at wi
// according to the lane's fetch policy, mirroring cache.Cache.fill
// exactly (including the transaction histogram).  The mask updates are
// branch-free: one OR of a precomputed span mask shifted to the lane's
// field, with redundant transfers counted by popcount.
func (f *Family) fill(ln *lane, wi int, subIdx uint, counted bool) {
	lv := (f.valid[wi] >> ln.laneOff) & ln.subMask // the lane's local valid field
	var loaded, redundant int
	switch ln.cfg.Fetch {
	case cache.DemandSubBlock:
		f.valid[wi] |= 1 << (ln.laneOff + subIdx)
		loaded = 1

	case cache.LoadForward:
		mask := ln.subMask &^ (1<<subIdx - 1)
		redundant = bits.OnesCount64(lv & mask)
		loaded = int(ln.subPerBlk - subIdx)
		f.valid[wi] |= mask << ln.laneOff

	case cache.LoadForwardOptimized:
		// Each contiguous group of missing sub-blocks is one
		// transaction, enumerated low to high by trailing-zero
		// arithmetic.
		mask := ln.subMask &^ (1<<subIdx - 1)
		missing := mask &^ lv
		loaded = bits.OnesCount64(missing)
		f.valid[wi] |= mask << ln.laneOff
		for missing != 0 {
			start := bits.TrailingZeros64(missing)
			run := bits.TrailingZeros64(^(missing >> uint(start)))
			ln.recordTransaction(run, counted)
			missing >>= uint(start + run)
		}
		if counted {
			ln.stats.SubBlockFills += uint64(loaded)
			ln.stats.WordsFetched += uint64(loaded * ln.wordsPerSub)
		}
		return

	case cache.WholeBlock:
		redundant = bits.OnesCount64(lv)
		loaded = int(ln.subPerBlk)
		f.valid[wi] |= ln.subMask << ln.laneOff
	}
	ln.recordTransaction(loaded, counted)
	if counted {
		ln.stats.SubBlockFills += uint64(loaded)
		ln.stats.RedundantLoads += uint64(redundant)
		ln.stats.WordsFetched += uint64(loaded * ln.wordsPerSub)
	}
}

// recordTransaction logs one contiguous bus transfer of n sub-blocks.
// The histogram is pre-sized to the block's word count, so this is a
// single allocation-free increment.
func (ln *lane) recordTransaction(n int, counted bool) {
	if !counted || n == 0 {
		return
	}
	ln.stats.TxHist[n*ln.wordsPerSub]++
}

// retire folds an evicted frame's utilisation and dirty words into the
// family's deferred accumulators.  The eviction count and residency
// denominator are tag-level facts accumulated at family level (see
// FlushUsage); the touched bits ripple into the vertical counters (a
// handful of word ops instead of a per-lane popcount), and only a
// frame with dirty bits -- copy-back families only -- takes the
// per-lane write-back loop.
func (f *Family) retire(fi int) {
	pb := fi * f.nPlanes
	for pj := 0; pj < f.nPlanes; pj++ {
		carry := f.touched[pb+pj]
		vb := pj * vcDepth
		for j := 0; carry != 0; j++ {
			if j == vcDepth {
				for m := carry; m != 0; m &= m - 1 {
					f.vcSpill[pj*64+bits.TrailingZeros64(m)] += 1 << vcDepth
				}
				break
			}
			t := f.vcTouch[vb+j] & carry
			f.vcTouch[vb+j] ^= carry
			carry = t
		}
		if d := f.dirty[pb+pj]; d != 0 {
			for li := range f.lanes {
				ln := &f.lanes[li]
				if ln.plane != pj {
					continue
				}
				if ld := (d >> ln.laneOff) & ln.subMask; ld != 0 {
					ln.stats.WriteBackWords += uint64(bits.OnesCount64(ld) * ln.wordsPerSub)
				}
			}
			f.dirty[pb+pj] = 0
		}
	}
}

// retireDirty folds an evicted single-plane frame's dirty words into
// the lanes' write-back counters and clears them: the copy-back slow
// half of the batch loop's inline miss path.
func (f *Family) retireDirty(fi int, d uint64) {
	for li := range f.lanes {
		ln := &f.lanes[li]
		if ld := (d >> ln.laneOff) & ln.subMask; ld != 0 {
			ln.stats.WriteBackWords += uint64(bits.OnesCount64(ld) * ln.wordsPerSub)
		}
	}
	f.dirty[fi] = 0
}

// FlushUsage finalises every lane's statistics: it folds still-resident
// blocks into the residency counters and distributes the family-level
// tag counters into each lane's cache.Stats, deriving Hits and Misses
// from the partition identities.  Call exactly once at end of trace;
// further calls are no-ops, and counters read before the flush are
// incomplete.
func (f *Family) FlushUsage() {
	if f.flushed {
		return
	}
	f.flushed = true
	resident := uint64(0)
	for s := range f.setFill {
		base := s * f.assoc
		for fi := base; fi < base+int(f.setFill[s]); fi++ {
			resident++
			f.retire(fi)
		}
	}

	// Expand the deferred histograms into per-lane counters.  Sub-block
	// miss counts must land before Misses is derived below; everything
	// else is an order-independent total.
	for b := 0; b < 64; b++ {
		nm, nw := f.bitMiss[b], f.bitMissW[b]
		if nm == 0 && nw == 0 {
			continue
		}
		ln := &f.lanes[f.laneOfBit[b]]
		ln.stats.SubBlockMisses += nm
		ln.stats.TxHist[ln.wordsPerSub] += nm
		ln.stats.SubBlockFills += nm
		ln.stats.WordsFetched += nm * uint64(ln.wordsPerSub)
		ln.stats.WriteMisses += nw
	}
	for wo, n := range f.blkMissHist {
		if n == 0 {
			continue
		}
		for li := range f.lanes {
			st := &f.lanes[li].stats
			wf := uint64(f.missWords[li*f.blkWords+wo])
			st.TxHist[wf] += n
			st.SubBlockFills += uint64(f.missLoaded[li*f.blkWords+wo]) * n
			st.WordsFetched += wf * n
		}
	}
	for pj := 0; pj < f.nPlanes; pj++ {
		for b := 0; b < 64; b++ {
			cnt := f.vcSpill[pj*64+b]
			for j := 0; j < vcDepth; j++ {
				cnt += (f.vcTouch[pj*vcDepth+j] >> uint(b) & 1) << uint(j)
			}
			if cnt == 0 {
				continue
			}
			f.lanes[f.laneOfBit[pj*64+b]].stats.ResidencyTouched += cnt
		}
	}

	ifetches := f.kindCount[trace.IFetch]
	reads := f.kindCount[trace.Read]
	accesses := ifetches + reads
	writeAccesses := f.writeAccesses + f.kindCount[trace.Write]
	for i := range f.lanes {
		ln := &f.lanes[i]
		st := &ln.stats
		st.Accesses = accesses
		st.IFetches = ifetches
		st.Reads = reads
		st.BlockMisses = f.blockMisses
		st.Misses = f.blockMisses + st.SubBlockMisses
		st.Hits = accesses - st.Misses
		st.WarmupAccesses = f.warmupAccesses
		st.WarmupMisses += f.warmupBlockMisses
		st.WriteAccesses = writeAccesses
		st.WriteMisses += f.writeBlockMisses
		st.Evictions = f.evictions
		st.WriteThroughWords += f.wtWords
		// Every retirement and every block resident at flush time
		// contributes one block's worth of sub-blocks to the residency
		// denominator.
		st.ResidencySubBlocks = (f.evictions + resident) * uint64(ln.subPerBlk)
	}
}

// Run drives the family with every access from src until EOF, then
// flushes residency usage.  src should already be word-split.  As for
// cache.Cache.Run, the stream is consumed in fixed-size chunks through
// AccessBatch.
func (f *Family) Run(src trace.Source) error {
	buf := make([]trace.Ref, trace.ChunkRefs)
	for {
		n, err := trace.ReadChunk(src, buf)
		f.AccessBatch(buf[:n])
		if err == io.EOF {
			f.FlushUsage()
			return nil
		}
		if err != nil {
			return fmt.Errorf("multipass: reading trace: %w", err)
		}
	}
}
