// Package multipass simulates a whole family of cache configurations in
// a single pass over a trace.
//
// The idea is the set-refinement structure behind stack-distance
// simulation (Mattson et al. 1970): for a fixed net size, block size and
// associativity, every sub-block size indexes the same sets, matches the
// same tags and -- provided nothing feeds sub-block state back into the
// tag array -- makes the same replacement decisions on the same
// accesses.  One shared tag/replacement engine can therefore carry a
// "lane" per (sub-block size, fetch policy) pair, each lane owning only
// the per-frame valid/touched/dirty bitmaps and its own cache.Stats.
// Simulating the k sub-block sizes of one Table 7 family then costs one
// trace pass and one tag probe per access instead of k.
//
// The kernel is bit-exact against cache.Cache: every counter in
// cache.Stats, including the bus-transaction histogram, is accumulated
// by the same rules.  internal/multipass/diff_test.go and
// FuzzMultiPassEquivalence enforce the equivalence; the sweep harness
// additionally regression-tests the generated paper artifacts
// byte-for-byte across engines.
//
// To keep the per-reference loop tight, counters that are tag-level
// facts -- identical in every lane by the set-refinement argument
// (accesses, warm-up accesses, write accesses, block misses,
// evictions) -- are accumulated once per family and folded into each
// lane's cache.Stats by FlushUsage, which also derives Hits and Misses
// from the partition identities (Hits = Accesses - Misses, Misses =
// BlockMisses + SubBlockMisses).  Per-lane stats are therefore only
// partially populated until FlushUsage runs; every consumer of
// Family.Stats must flush first, exactly as the reference simulator
// requires for its residency counters.
//
// Eligibility is decided by cache.Config.MultiPassSafe: OBL prefetch and
// write-no-allocate feed sub-block validity back into tag-array
// dynamics, so such configurations must be simulated by the reference
// cache.Cache (the sweep harness falls back automatically).
package multipass

import (
	"fmt"
	"io"
	"math/bits"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/rng"
	"subcache/internal/trace"
)

// tagFrame is the shared, lane-independent part of one block frame: the
// address tag and the replacement bookkeeping.
type tagFrame struct {
	tag      addr.Addr
	tagValid bool
	lastUse  uint64
	loadedAt uint64
}

// lane is one configuration's private state: the per-frame sub-block
// bitmaps and the statistics.  Frames are indexed set*assoc+way, in
// lockstep with the family's shared tag frames.
type lane struct {
	cfg         cache.Config
	subShift    uint
	subPerBlk   uint
	wordsPerSub int
	valid       []uint64
	touched     []uint64
	dirty       []uint64
	stats       cache.Stats
}

// Family simulates a set of cache configurations that share tag-array
// dynamics (equal FamilyKey, all MultiPassSafe) in one trace pass.  Not
// safe for concurrent use.
type Family struct {
	base   cache.Config // cfgs[0]; SubBlockSize/Fetch vary per lane
	lanes  []lane
	frames []tagFrame // numSets * assoc
	assoc  int

	tick    uint64
	filled  int
	warm    bool // counting enabled: warm-start satisfied or disabled
	flushed bool // FlushUsage has folded the shared counters
	rand    *rng.Stream

	blockShift uint
	setMask    addr.Addr
	offMask    uint64 // BlockSize-1: block-offset extraction
	copyBack   bool

	// Tag-level event counts, identical in every lane and therefore
	// accumulated once per family instead of once per lane per access.
	// FlushUsage folds them into each lane's cache.Stats.
	accesses          uint64 // counted (read + ifetch) accesses
	ifetches          uint64
	reads             uint64
	warmupAccesses    uint64
	writeAccesses     uint64
	blockMisses       uint64 // counted block (tag) misses
	warmupBlockMisses uint64
	writeBlockMisses  uint64
	evictions         uint64
}

// New builds a family kernel for the given configurations.  All
// configurations must validate, be MultiPassSafe, and share a FamilyKey
// (i.e. differ only in SubBlockSize and Fetch).
func New(cfgs []cache.Config) (*Family, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("multipass: no configurations")
	}
	key := cfgs[0].FamilyKey()
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if !cfg.MultiPassSafe() {
			return nil, fmt.Errorf("multipass: %v: tag dynamics depend on sub-block state (prefetch or write-no-allocate)", cfg)
		}
		if cfg.FamilyKey() != key {
			return nil, fmt.Errorf("multipass: %v and %v are not in the same family", cfgs[0], cfg)
		}
	}
	base := cfgs[0]
	numFrames := base.NumFrames()
	f := &Family{
		base:       base,
		frames:     make([]tagFrame, numFrames),
		assoc:      base.Assoc,
		warm:       !base.WarmStart,
		blockShift: addr.Log2(uint64(base.BlockSize)),
		setMask:    addr.Addr(base.NumSets() - 1),
		offMask:    uint64(base.BlockSize - 1),
		copyBack:   base.CopyBack,
	}
	if base.Replacement == cache.Random {
		f.rand = rng.New(base.RandomSeed)
	}
	f.lanes = make([]lane, len(cfgs))
	for i, cfg := range cfgs {
		f.lanes[i] = lane{
			cfg:         cfg,
			subShift:    addr.Log2(uint64(cfg.SubBlockSize)),
			subPerBlk:   uint(cfg.SubBlocksPerBlock()),
			wordsPerSub: cfg.WordsPerSubBlock(),
			valid:       make([]uint64, numFrames),
			touched:     make([]uint64, numFrames),
			dirty:       make([]uint64, numFrames),
		}
		// Same pre-sizing as cache.New: fills record with one increment.
		f.lanes[i].stats.TxHist = make([]uint64, cfg.BlockSize/cfg.WordSize+1)
	}
	return f, nil
}

// Group partitions configurations into single-pass families.  Each
// returned family is a list of indexes into cfgs sharing a FamilyKey,
// all MultiPassSafe, in first-appearance order; rest holds the indexes
// of configurations that need the reference simulator.  Group does not
// validate geometry -- New reports those errors.
func Group(cfgs []cache.Config) (families [][]int, rest []int) {
	byKey := make(map[cache.Config]int)
	for i, cfg := range cfgs {
		if !cfg.MultiPassSafe() {
			rest = append(rest, i)
			continue
		}
		key := cfg.FamilyKey()
		fi, ok := byKey[key]
		if !ok {
			fi = len(families)
			byKey[key] = fi
			families = append(families, nil)
		}
		families[fi] = append(families[fi], i)
	}
	return families, rest
}

// Lanes returns the number of configurations simulated by the family.
func (f *Family) Lanes() int { return len(f.lanes) }

// Config returns the i'th lane's configuration, in New's input order.
func (f *Family) Config(i int) cache.Config { return f.lanes[i].cfg }

// Stats returns the i'th lane's accumulated statistics.  The pointer
// stays valid for the lifetime of the family, but the tag-level
// counters (accesses, block misses, evictions, and the hit/miss
// totals derived from them) are only folded in by FlushUsage: call
// FlushUsage once at end of trace before reading any counter.
func (f *Family) Stats(i int) *cache.Stats { return &f.lanes[i].stats }

// counting mirrors cache.Cache.counting: with warm start, events are
// recorded only once every frame has been filled.  Fill progress is a
// tag-level property, so one flag covers every lane; the flag is
// maintained at fill time so the hot path reads a bool.
func (f *Family) counting() bool { return f.warm }

// Access presents one word access to every lane of the family.
func (f *Family) Access(r trace.Ref) {
	isWrite := r.Kind == trace.Write
	count := true
	if isWrite {
		if f.base.Write == cache.WriteIgnore {
			return
		}
		// WriteAllocate (the only other MultiPassSafe policy): writes
		// allocate and touch recency like reads but are never counted.
		count = false
	}

	f.tick++
	blockAddr := r.Addr >> f.blockShift
	setIdx := int(blockAddr & f.setMask)
	off := uint(uint64(r.Addr) & f.offMask)
	counted := count && f.warm

	// Access classification is a tag-level fact: record it once for
	// the family instead of once per lane.
	if counted {
		f.accesses++
		if r.Kind == trace.IFetch {
			f.ifetches++
		} else {
			f.reads++
		}
	} else if count {
		f.warmupAccesses++
	} else {
		f.writeAccesses++
	}

	// Shared tag probe.
	base := setIdx * f.assoc
	way := -1
	for w := 0; w < f.assoc; w++ {
		fr := &f.frames[base+w]
		if fr.tagValid && fr.tag == blockAddr {
			way = w
			break
		}
	}

	if way >= 0 {
		// Tag hit: each lane resolves to a full hit or a sub-block miss
		// against its own valid bitmap.  A full hit needs no counter at
		// all -- FlushUsage derives Hits from the access and miss
		// totals -- so the steady-state lane cost is one bitmap test
		// and one touched-bit set.
		fi := base + way
		for i := range f.lanes {
			ln := &f.lanes[i]
			bit := uint64(1) << (off >> ln.subShift)
			if ln.valid[fi]&bit == 0 {
				st := &ln.stats
				if counted {
					st.SubBlockMisses++
				} else if count {
					st.WarmupMisses++
				} else {
					st.WriteMisses++
				}
				ln.fill(fi, off>>ln.subShift, counted)
			}
			ln.touched[fi] |= bit
			if isWrite {
				ln.markWrite(fi, bit)
			}
		}
		f.frames[fi].lastUse = f.tick
		return
	}

	// Block miss: one shared allocation, every lane misses -- another
	// tag-level fact, recorded once.
	if counted {
		f.blockMisses++
	} else if count {
		f.warmupBlockMisses++
	} else {
		f.writeBlockMisses++
	}
	v := f.victim(base)
	fi := base + v
	fr := &f.frames[fi]
	if fr.tagValid {
		f.evictions++
		for i := range f.lanes {
			f.lanes[i].retire(fi)
		}
	} else {
		f.filled++
		if f.filled == len(f.frames) {
			f.warm = true
		}
	}
	fr.tag = blockAddr
	fr.tagValid = true
	fr.lastUse = f.tick
	fr.loadedAt = f.tick
	for i := range f.lanes {
		ln := &f.lanes[i]
		ln.valid[fi], ln.touched[fi], ln.dirty[fi] = 0, 0, 0
		subIdx := off >> ln.subShift
		ln.fill(fi, subIdx, counted)
		ln.touched[fi] |= 1 << subIdx
		if isWrite {
			ln.markWrite(fi, 1<<subIdx)
		}
	}
}

// AccessBatch presents a chunk of word accesses to every lane, the
// batched equivalent of calling Access per reference.  The sweep
// executors feed trace.ChunkRefs-sized chunks through it.
func (f *Family) AccessBatch(refs []trace.Ref) {
	for i := range refs {
		f.Access(refs[i])
	}
}

// victim picks the way to replace within the set starting at base,
// mirroring cache.Cache.victim.
func (f *Family) victim(base int) int {
	for w := 0; w < f.assoc; w++ {
		if !f.frames[base+w].tagValid {
			return w
		}
	}
	switch f.base.Replacement {
	case cache.LRU:
		best := 0
		for w := 1; w < f.assoc; w++ {
			if f.frames[base+w].lastUse < f.frames[base+best].lastUse {
				best = w
			}
		}
		return best
	case cache.FIFO:
		best := 0
		for w := 1; w < f.assoc; w++ {
			if f.frames[base+w].loadedAt < f.frames[base+best].loadedAt {
				best = w
			}
		}
		return best
	case cache.Random:
		return f.rand.Intn(f.assoc)
	}
	panic("multipass: unreachable replacement policy")
}

// markWrite accounts for the memory-update side of a write whose datum
// is (now) resident, the only case a MultiPassSafe policy produces.
func (ln *lane) markWrite(fi int, bit uint64) {
	if ln.cfg.CopyBack {
		ln.dirty[fi] |= bit
		return
	}
	ln.stats.WriteThroughWords++
}

// fill loads sub-blocks into frame fi according to the lane's fetch
// policy, mirroring cache.Cache.fill exactly (including the transaction
// histogram).
func (ln *lane) fill(fi int, subIdx uint, counted bool) {
	var loaded, redundant int
	switch ln.cfg.Fetch {
	case cache.DemandSubBlock:
		ln.valid[fi] |= 1 << subIdx
		loaded = 1

	case cache.LoadForward:
		for i := subIdx; i < ln.subPerBlk; i++ {
			if ln.valid[fi]&(1<<i) != 0 {
				redundant++
			}
			ln.valid[fi] |= 1 << i
			loaded++
		}

	case cache.LoadForwardOptimized:
		run := 0
		for i := subIdx; i < ln.subPerBlk; i++ {
			if ln.valid[fi]&(1<<i) == 0 {
				ln.valid[fi] |= 1 << i
				loaded++
				run++
			} else if run > 0 {
				ln.recordTransaction(run, counted)
				run = 0
			}
		}
		if run > 0 {
			ln.recordTransaction(run, counted)
		}
		if counted {
			ln.stats.SubBlockFills += uint64(loaded)
			ln.stats.WordsFetched += uint64(loaded * ln.wordsPerSub)
		}
		return

	case cache.WholeBlock:
		for i := uint(0); i < ln.subPerBlk; i++ {
			if ln.valid[fi]&(1<<i) != 0 {
				redundant++
			}
			ln.valid[fi] |= 1 << i
			loaded++
		}
	}
	ln.recordTransaction(loaded, counted)
	if counted {
		ln.stats.SubBlockFills += uint64(loaded)
		ln.stats.RedundantLoads += uint64(redundant)
		ln.stats.WordsFetched += uint64(loaded * ln.wordsPerSub)
	}
}

// recordTransaction logs one contiguous bus transfer of n sub-blocks.
// The histogram is pre-sized to the block's word count, so this is a
// single allocation-free increment.
func (ln *lane) recordTransaction(n int, counted bool) {
	if !counted || n == 0 {
		return
	}
	ln.stats.TxHist[n*ln.wordsPerSub]++
}

// retire folds an evicted frame's utilisation and dirty words into the
// lane's statistics.  The eviction count and residency denominator are
// tag-level facts accumulated at family level (see FlushUsage), so the
// per-lane work is just the touched popcount and the dirty write-back.
func (ln *lane) retire(fi int) {
	ln.stats.ResidencyTouched += uint64(bits.OnesCount64(ln.touched[fi]))
	if ln.dirty[fi] != 0 {
		ln.stats.WriteBackWords += uint64(bits.OnesCount64(ln.dirty[fi]) * ln.wordsPerSub)
		ln.dirty[fi] = 0
	}
}

// FlushUsage finalises every lane's statistics: it folds still-resident
// blocks into the residency counters and distributes the family-level
// tag counters into each lane's cache.Stats, deriving Hits and Misses
// from the partition identities.  Call exactly once at end of trace;
// further calls are no-ops, and counters read before the flush are
// incomplete.
func (f *Family) FlushUsage() {
	if f.flushed {
		return
	}
	f.flushed = true
	resident := uint64(0)
	for fi := range f.frames {
		if !f.frames[fi].tagValid {
			continue
		}
		resident++
		for i := range f.lanes {
			ln := &f.lanes[i]
			ln.stats.ResidencyTouched += uint64(bits.OnesCount64(ln.touched[fi]))
			if ln.dirty[fi] != 0 {
				ln.stats.WriteBackWords += uint64(bits.OnesCount64(ln.dirty[fi]) * ln.wordsPerSub)
				ln.dirty[fi] = 0
			}
		}
	}
	for i := range f.lanes {
		ln := &f.lanes[i]
		st := &ln.stats
		st.Accesses = f.accesses
		st.IFetches = f.ifetches
		st.Reads = f.reads
		st.BlockMisses = f.blockMisses
		st.Misses = f.blockMisses + st.SubBlockMisses
		st.Hits = f.accesses - st.Misses
		st.WarmupAccesses = f.warmupAccesses
		st.WarmupMisses += f.warmupBlockMisses
		st.WriteAccesses = f.writeAccesses
		st.WriteMisses += f.writeBlockMisses
		st.Evictions = f.evictions
		// Every retirement and every block resident at flush time
		// contributes one block's worth of sub-blocks to the residency
		// denominator.
		st.ResidencySubBlocks = (f.evictions + resident) * uint64(ln.subPerBlk)
	}
}

// Run drives the family with every access from src until EOF, then
// flushes residency usage.  src should already be word-split.  As for
// cache.Cache.Run, the stream is consumed in fixed-size chunks through
// AccessBatch.
func (f *Family) Run(src trace.Source) error {
	buf := make([]trace.Ref, trace.ChunkRefs)
	for {
		n, err := trace.ReadChunk(src, buf)
		f.AccessBatch(buf[:n])
		if err == io.EOF {
			f.FlushUsage()
			return nil
		}
		if err != nil {
			return fmt.Errorf("multipass: reading trace: %w", err)
		}
	}
}
