// Package multipass simulates a whole family of cache configurations in
// a single pass over a trace.
//
// The idea is the set-refinement structure behind stack-distance
// simulation (Mattson et al. 1970): for a fixed net size, block size and
// associativity, every sub-block size indexes the same sets, matches the
// same tags and -- provided nothing feeds sub-block state back into the
// tag array -- makes the same replacement decisions on the same
// accesses.  One shared tag/replacement engine can therefore carry a
// "lane" per (sub-block size, fetch policy) pair, each lane owning only
// the per-frame valid/touched/dirty bitmaps and its own cache.Stats.
// Simulating the k sub-block sizes of one Table 7 family then costs one
// trace pass and one tag probe per access instead of k.
//
// The kernel is bit-exact against cache.Cache: every counter in
// cache.Stats, including the bus-transaction histogram, is accumulated
// by the same rules in the same order.  internal/multipass/diff_test.go
// and FuzzMultiPassEquivalence enforce the equivalence; the sweep
// harness additionally regression-tests the generated paper artifacts
// byte-for-byte across engines.
//
// Eligibility is decided by cache.Config.MultiPassSafe: OBL prefetch and
// write-no-allocate feed sub-block validity back into tag-array
// dynamics, so such configurations must be simulated by the reference
// cache.Cache (the sweep harness falls back automatically).
package multipass

import (
	"fmt"
	"io"
	"math/bits"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/rng"
	"subcache/internal/trace"
)

// tagFrame is the shared, lane-independent part of one block frame: the
// address tag and the replacement bookkeeping.
type tagFrame struct {
	tag      addr.Addr
	tagValid bool
	lastUse  uint64
	loadedAt uint64
}

// lane is one configuration's private state: the per-frame sub-block
// bitmaps and the statistics.  Frames are indexed set*assoc+way, in
// lockstep with the family's shared tag frames.
type lane struct {
	cfg         cache.Config
	subShift    uint
	subPerBlk   uint
	wordsPerSub int
	valid       []uint64
	touched     []uint64
	dirty       []uint64
	stats       cache.Stats
}

// Family simulates a set of cache configurations that share tag-array
// dynamics (equal FamilyKey, all MultiPassSafe) in one trace pass.  Not
// safe for concurrent use.
type Family struct {
	base   cache.Config // cfgs[0]; SubBlockSize/Fetch vary per lane
	lanes  []lane
	frames []tagFrame // numSets * assoc
	assoc  int

	tick   uint64
	filled int
	rand   *rng.Stream

	blockShift uint
	setMask    addr.Addr
	copyBack   bool
}

// New builds a family kernel for the given configurations.  All
// configurations must validate, be MultiPassSafe, and share a FamilyKey
// (i.e. differ only in SubBlockSize and Fetch).
func New(cfgs []cache.Config) (*Family, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("multipass: no configurations")
	}
	key := cfgs[0].FamilyKey()
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if !cfg.MultiPassSafe() {
			return nil, fmt.Errorf("multipass: %v: tag dynamics depend on sub-block state (prefetch or write-no-allocate)", cfg)
		}
		if cfg.FamilyKey() != key {
			return nil, fmt.Errorf("multipass: %v and %v are not in the same family", cfgs[0], cfg)
		}
	}
	base := cfgs[0]
	numFrames := base.NumFrames()
	f := &Family{
		base:       base,
		frames:     make([]tagFrame, numFrames),
		assoc:      base.Assoc,
		blockShift: addr.Log2(uint64(base.BlockSize)),
		setMask:    addr.Addr(base.NumSets() - 1),
		copyBack:   base.CopyBack,
	}
	if base.Replacement == cache.Random {
		f.rand = rng.New(base.RandomSeed)
	}
	f.lanes = make([]lane, len(cfgs))
	for i, cfg := range cfgs {
		f.lanes[i] = lane{
			cfg:         cfg,
			subShift:    addr.Log2(uint64(cfg.SubBlockSize)),
			subPerBlk:   uint(cfg.SubBlocksPerBlock()),
			wordsPerSub: cfg.WordsPerSubBlock(),
			valid:       make([]uint64, numFrames),
			touched:     make([]uint64, numFrames),
			dirty:       make([]uint64, numFrames),
		}
	}
	return f, nil
}

// Group partitions configurations into single-pass families.  Each
// returned family is a list of indexes into cfgs sharing a FamilyKey,
// all MultiPassSafe, in first-appearance order; rest holds the indexes
// of configurations that need the reference simulator.  Group does not
// validate geometry -- New reports those errors.
func Group(cfgs []cache.Config) (families [][]int, rest []int) {
	byKey := make(map[cache.Config]int)
	for i, cfg := range cfgs {
		if !cfg.MultiPassSafe() {
			rest = append(rest, i)
			continue
		}
		key := cfg.FamilyKey()
		fi, ok := byKey[key]
		if !ok {
			fi = len(families)
			byKey[key] = fi
			families = append(families, nil)
		}
		families[fi] = append(families[fi], i)
	}
	return families, rest
}

// Lanes returns the number of configurations simulated by the family.
func (f *Family) Lanes() int { return len(f.lanes) }

// Config returns the i'th lane's configuration, in New's input order.
func (f *Family) Config(i int) cache.Config { return f.lanes[i].cfg }

// Stats returns the i'th lane's accumulated statistics.  The pointer
// stays valid and live for the lifetime of the family.
func (f *Family) Stats(i int) *cache.Stats { return &f.lanes[i].stats }

// counting mirrors cache.Cache.counting: with warm start, events are
// recorded only once every frame has been filled.  Fill progress is a
// tag-level property, so one flag covers every lane.
func (f *Family) counting() bool {
	return !f.base.WarmStart || f.filled == len(f.frames)
}

// Access presents one word access to every lane of the family.
func (f *Family) Access(r trace.Ref) {
	count := true
	if r.Kind == trace.Write {
		if f.base.Write == cache.WriteIgnore {
			return
		}
		// WriteAllocate (the only other MultiPassSafe policy): writes
		// allocate and touch recency like reads but are never counted.
		count = false
	}

	f.tick++
	blockAddr := r.Addr >> f.blockShift
	setIdx := int(blockAddr & f.setMask)
	off := addr.Offset(r.Addr, uint64(f.base.BlockSize))
	counted := count && f.counting()

	for i := range f.lanes {
		st := &f.lanes[i].stats
		if counted {
			st.Accesses++
			if r.Kind == trace.IFetch {
				st.IFetches++
			} else {
				st.Reads++
			}
		} else if count {
			st.WarmupAccesses++
		}
		if !count {
			st.WriteAccesses++
		}
	}

	// Shared tag probe.
	base := setIdx * f.assoc
	way := -1
	for w := 0; w < f.assoc; w++ {
		fr := &f.frames[base+w]
		if fr.tagValid && fr.tag == blockAddr {
			way = w
			break
		}
	}

	if way >= 0 {
		// Tag hit: each lane resolves to a full hit or a sub-block miss
		// against its own valid bitmap.
		fi := base + way
		for i := range f.lanes {
			ln := &f.lanes[i]
			subIdx := uint(off) >> ln.subShift
			bit := uint64(1) << subIdx
			st := &ln.stats
			if ln.valid[fi]&bit != 0 {
				if counted {
					st.Hits++
				}
			} else {
				if counted {
					st.Misses++
					st.SubBlockMisses++
				} else if count {
					st.WarmupMisses++
				}
				if !count {
					st.WriteMisses++
				}
				ln.fill(fi, subIdx, counted)
			}
			ln.touched[fi] |= bit
			if r.Kind == trace.Write {
				ln.markWrite(fi, bit)
			}
		}
		f.frames[fi].lastUse = f.tick
		return
	}

	// Block miss: one shared allocation, every lane misses.
	for i := range f.lanes {
		st := &f.lanes[i].stats
		if counted {
			st.Misses++
			st.BlockMisses++
		} else if count {
			st.WarmupMisses++
		}
		if !count {
			st.WriteMisses++
		}
	}
	v := f.victim(base)
	fi := base + v
	fr := &f.frames[fi]
	if fr.tagValid {
		for i := range f.lanes {
			f.lanes[i].retire(fi)
		}
	} else {
		f.filled++
	}
	fr.tag = blockAddr
	fr.tagValid = true
	fr.lastUse = f.tick
	fr.loadedAt = f.tick
	for i := range f.lanes {
		ln := &f.lanes[i]
		ln.valid[fi], ln.touched[fi], ln.dirty[fi] = 0, 0, 0
		subIdx := uint(off) >> ln.subShift
		ln.fill(fi, subIdx, counted)
		ln.touched[fi] |= 1 << subIdx
		if r.Kind == trace.Write {
			ln.markWrite(fi, 1<<subIdx)
		}
	}
}

// victim picks the way to replace within the set starting at base,
// mirroring cache.Cache.victim.
func (f *Family) victim(base int) int {
	for w := 0; w < f.assoc; w++ {
		if !f.frames[base+w].tagValid {
			return w
		}
	}
	switch f.base.Replacement {
	case cache.LRU:
		best := 0
		for w := 1; w < f.assoc; w++ {
			if f.frames[base+w].lastUse < f.frames[base+best].lastUse {
				best = w
			}
		}
		return best
	case cache.FIFO:
		best := 0
		for w := 1; w < f.assoc; w++ {
			if f.frames[base+w].loadedAt < f.frames[base+best].loadedAt {
				best = w
			}
		}
		return best
	case cache.Random:
		return f.rand.Intn(f.assoc)
	}
	panic("multipass: unreachable replacement policy")
}

// markWrite accounts for the memory-update side of a write whose datum
// is (now) resident, the only case a MultiPassSafe policy produces.
func (ln *lane) markWrite(fi int, bit uint64) {
	if ln.cfg.CopyBack {
		ln.dirty[fi] |= bit
		return
	}
	ln.stats.WriteThroughWords++
}

// fill loads sub-blocks into frame fi according to the lane's fetch
// policy, mirroring cache.Cache.fill exactly (including the transaction
// histogram).
func (ln *lane) fill(fi int, subIdx uint, counted bool) {
	var loaded, redundant int
	switch ln.cfg.Fetch {
	case cache.DemandSubBlock:
		ln.valid[fi] |= 1 << subIdx
		loaded = 1

	case cache.LoadForward:
		for i := subIdx; i < ln.subPerBlk; i++ {
			if ln.valid[fi]&(1<<i) != 0 {
				redundant++
			}
			ln.valid[fi] |= 1 << i
			loaded++
		}

	case cache.LoadForwardOptimized:
		run := 0
		for i := subIdx; i < ln.subPerBlk; i++ {
			if ln.valid[fi]&(1<<i) == 0 {
				ln.valid[fi] |= 1 << i
				loaded++
				run++
			} else if run > 0 {
				ln.recordTransaction(run, counted)
				run = 0
			}
		}
		if run > 0 {
			ln.recordTransaction(run, counted)
		}
		if counted {
			ln.stats.SubBlockFills += uint64(loaded)
			ln.stats.WordsFetched += uint64(loaded * ln.wordsPerSub)
		}
		return

	case cache.WholeBlock:
		for i := uint(0); i < ln.subPerBlk; i++ {
			if ln.valid[fi]&(1<<i) != 0 {
				redundant++
			}
			ln.valid[fi] |= 1 << i
			loaded++
		}
	}
	ln.recordTransaction(loaded, counted)
	if counted {
		ln.stats.SubBlockFills += uint64(loaded)
		ln.stats.RedundantLoads += uint64(redundant)
		ln.stats.WordsFetched += uint64(loaded * ln.wordsPerSub)
	}
}

// recordTransaction logs one contiguous bus transfer of n sub-blocks.
func (ln *lane) recordTransaction(n int, counted bool) {
	if !counted || n == 0 {
		return
	}
	words := n * ln.wordsPerSub
	if ln.stats.Transactions == nil {
		ln.stats.Transactions = make(map[int]uint64)
	}
	ln.stats.Transactions[words]++
}

// retire folds an evicted frame's utilisation and dirty words into the
// lane's statistics, mirroring cache.Cache.retire.
func (ln *lane) retire(fi int) {
	ln.stats.Evictions++
	ln.stats.ResidencySubBlocks += uint64(ln.subPerBlk)
	ln.stats.ResidencyTouched += uint64(bits.OnesCount64(ln.touched[fi]))
	if ln.dirty[fi] != 0 {
		ln.stats.WriteBackWords += uint64(bits.OnesCount64(ln.dirty[fi]) * ln.wordsPerSub)
		ln.dirty[fi] = 0
	}
}

// FlushUsage folds still-resident blocks into every lane's residency
// statistics.  Call once at end of trace, as for cache.Cache.
func (f *Family) FlushUsage() {
	for fi := range f.frames {
		if !f.frames[fi].tagValid {
			continue
		}
		for i := range f.lanes {
			ln := &f.lanes[i]
			ln.stats.ResidencySubBlocks += uint64(ln.subPerBlk)
			ln.stats.ResidencyTouched += uint64(bits.OnesCount64(ln.touched[fi]))
			if ln.dirty[fi] != 0 {
				ln.stats.WriteBackWords += uint64(bits.OnesCount64(ln.dirty[fi]) * ln.wordsPerSub)
				ln.dirty[fi] = 0
			}
		}
	}
}

// Run drives the family with every access from src until EOF, then
// flushes residency usage.  src should already be word-split.
func (f *Family) Run(src trace.Source) error {
	for {
		r, err := src.Next()
		if err == io.EOF {
			f.FlushUsage()
			return nil
		}
		if err != nil {
			return fmt.Errorf("multipass: reading trace: %w", err)
		}
		f.Access(r)
	}
}
