package multipass

import (
	"sort"

	"subcache/internal/cache"
)

// ShardPlan is one shard worker's slice of a configuration set.
// Families lists single-pass family groups (each a list of indexes into
// the partitioned configuration slice, sharing a FamilyKey and all
// MultiPassSafe); Rest lists the indexes that need the reference
// simulator.  A plan set produced by PartitionShards covers every input
// index exactly once across all shards.
type ShardPlan struct {
	Families [][]int
	Rest     []int
}

// Cost is the partitioner's estimated per-access simulation cost of the
// whole plan -- the load PartitionShards balanced.  Exposed so the
// telemetry layer can report estimated versus observed shard load.
func (p ShardPlan) Cost() int {
	c := 0
	for _, idxs := range p.Families {
		c += shardUnit{idxs: idxs, family: true}.cost()
	}
	for range p.Rest {
		c += shardUnit{}.cost()
	}
	return c
}

// shardUnit is the indivisible (or, for families, divisible) scheduling
// unit PartitionShards balances: either one family's lane set or one
// reference-simulated configuration.
type shardUnit struct {
	idxs   []int
	family bool
}

// cost estimates the unit's per-access simulation work.  A family pays
// one shared tag probe plus one lane update per member; a reference
// cache pays the full probe-and-fill path on its own.
func (u shardUnit) cost() int {
	if u.family {
		return 2 + len(u.idxs)
	}
	return 3
}

// PartitionShards splits cfgs across at most shards single-pass
// workers, balancing estimated per-access cost.  Families are the
// preferred unit of work -- their lanes share one tag probe, so keeping
// them together is cheapest -- but when there are fewer units than
// shards, the largest families are split in two (any subset of a family
// is itself a valid family: lane state is private, so membership never
// affects results), trading shared probes for parallelism.  The
// partition is deterministic, covers every index exactly once, and
// returns only non-empty plans, so the result may have fewer than
// shards entries.
func PartitionShards(cfgs []cache.Config, shards int) []ShardPlan {
	if shards < 1 {
		shards = 1
	}
	families, rest := Group(cfgs)
	units := make([]shardUnit, 0, len(families)+len(rest))
	for _, idxs := range families {
		units = append(units, shardUnit{idxs: idxs, family: true})
	}
	for _, k := range rest {
		units = append(units, shardUnit{idxs: []int{k}})
	}

	// Fill idle shards by halving the widest families until every shard
	// has a unit or nothing divisible remains.
	for len(units) < shards {
		widest := -1
		for i, u := range units {
			if u.family && len(u.idxs) >= 2 &&
				(widest < 0 || len(u.idxs) > len(units[widest].idxs)) {
				widest = i
			}
		}
		if widest < 0 {
			break
		}
		u := units[widest]
		mid := len(u.idxs) / 2
		units[widest] = shardUnit{idxs: u.idxs[:mid], family: true}
		units = append(units, shardUnit{idxs: u.idxs[mid:], family: true})
	}

	// Longest-processing-time greedy: heaviest units first, each to the
	// least-loaded shard.  Ties break on lowest first index and lowest
	// shard number, keeping the plan deterministic.
	sort.SliceStable(units, func(i, j int) bool {
		if ci, cj := units[i].cost(), units[j].cost(); ci != cj {
			return ci > cj
		}
		return units[i].idxs[0] < units[j].idxs[0]
	})
	plans := make([]ShardPlan, shards)
	loads := make([]int, shards)
	for _, u := range units {
		best := 0
		for s := 1; s < shards; s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		loads[best] += u.cost()
		if u.family {
			plans[best].Families = append(plans[best].Families, u.idxs)
		} else {
			plans[best].Rest = append(plans[best].Rest, u.idxs[0])
		}
	}
	out := plans[:0]
	for _, p := range plans {
		if len(p.Families) > 0 || len(p.Rest) > 0 {
			out = append(out, p)
		}
	}
	return out
}
