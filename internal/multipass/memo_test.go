package multipass

// Differential fuzz for the family kernel's same-block memoization: the
// memoized batch fast path (AccessBatch, which classifies a repeated
// block with one compare) against a probe-every-reference build -- the
// per-reference Access entry point with both stream memos invalidated
// before every call, so each reference runs the full tag probe.  Every
// lane's statistics must match exactly.

import (
	"math/rand"
	"reflect"
	"testing"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/trace"
)

func fuzzTrace(r *rand.Rand, n, wordSize int, footprint addr.Addr) []trace.Ref {
	refs := make([]trace.Ref, 0, n)
	pos := addr.Addr(0)
	for len(refs) < n {
		if r.Intn(4) == 0 {
			pos = addr.Addr(r.Int63n(int64(footprint))) &^ addr.Addr(wordSize-1)
		}
		run := 1 + r.Intn(8)
		for i := 0; i < run && len(refs) < n; i++ {
			kind := trace.Read
			switch r.Intn(10) {
			case 0, 1, 2:
				kind = trace.IFetch
			case 3, 4:
				kind = trace.Write
			}
			refs = append(refs, trace.Ref{Addr: pos % footprint, Kind: kind, Size: uint8(wordSize)})
			pos += addr.Addr(wordSize)
		}
	}
	return refs
}

// fuzzFamily draws one family: a shared tag geometry (every replacement
// policy, both multipass-safe write policies, copy-back and warm start
// included) with a ladder of sub-block sizes and fetch policies.
func fuzzFamily(r *rand.Rand) []cache.Config {
	base := cache.Config{
		NetSize:     []int{256, 1024}[r.Intn(2)],
		BlockSize:   []int{8, 32}[r.Intn(2)],
		Assoc:       []int{1, 2, 4, 8}[r.Intn(4)],
		WordSize:    2,
		Replacement: []cache.Replacement{cache.LRU, cache.FIFO, cache.Random}[r.Intn(3)],
		Write:       []cache.WritePolicy{cache.WriteAllocate, cache.WriteIgnore}[r.Intn(2)],
		CopyBack:    r.Intn(2) == 0,
		WarmStart:   r.Intn(4) == 0,
		RandomSeed:  uint64(r.Int63()) | 1,
	}
	var cfgs []cache.Config
	for sub := base.BlockSize; sub >= base.WordSize; sub /= 2 {
		c := base
		c.SubBlockSize = sub
		c.Fetch = []cache.Fetch{cache.DemandSubBlock, cache.LoadForward,
			cache.LoadForwardOptimized, cache.WholeBlock}[r.Intn(4)]
		cfgs = append(cfgs, c)
	}
	return cfgs
}

func TestFamilyMemoDifferentialFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(0xfa111e5))
	for trial := 0; trial < 30; trial++ {
		cfgs := fuzzFamily(r)
		memo, err := New(cfgs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		probe, err := New(cfgs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		refs := fuzzTrace(r, 4000, cfgs[0].WordSize, addr.Addr(4*cfgs[0].NetSize))
		for off := 0; off < len(refs); off += 512 {
			end := off + 512
			if end > len(refs) {
				end = len(refs)
			}
			memo.AccessBatch(refs[off:end])
		}
		for _, ref := range refs {
			// Invalidate both stream memos so every reference runs the
			// full probe loop.
			probe.memoI, probe.memoD = -1, -1
			probe.Access(ref)
		}
		memo.FlushUsage()
		probe.FlushUsage()
		for i := range cfgs {
			if !reflect.DeepEqual(memo.Stats(i), probe.Stats(i)) {
				t.Fatalf("trial %d lane %d (%v): memoized batch stats %+v != probe-every-reference stats %+v",
					trial, i, cfgs[i], *memo.Stats(i), *probe.Stats(i))
			}
		}
	}
}
