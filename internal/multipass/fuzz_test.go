package multipass_test

import (
	"encoding/binary"
	"reflect"
	"testing"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/multipass"
	"subcache/internal/trace"
)

// decodeRefs interprets raw fuzzer bytes as a reference stream: each
// 6-byte record is a little-endian 32-bit address (bounded to an 18-bit
// space so the small caches see real contention), a kind byte and an
// ignored pad byte.  Any input, including the internal/trace fuzz
// corpus seeds below, decodes to some trace.
func decodeRefs(data []byte, wordSize int) []trace.Ref {
	const maxRefs = 2048
	refs := make([]trace.Ref, 0, len(data)/6)
	for len(data) >= 6 && len(refs) < maxRefs {
		a := addr.Addr(binary.LittleEndian.Uint32(data) & 0x3ffff)
		refs = append(refs, trace.Ref{
			Addr: addr.AlignDown(a, uint64(wordSize)),
			Kind: trace.Kind(data[4] % 3),
			Size: uint8(wordSize),
		})
		data = data[6:]
	}
	return refs
}

// fuzzFamilies are the configuration families every fuzz input is
// replayed through: a plain LRU write-through family and a harder one
// combining Random replacement, copy-back and warm-start accounting,
// both with mixed fetch-policy lanes.
func fuzzFamilies() [][]cache.Config {
	plain := cache.Config{NetSize: 256, BlockSize: 16, Assoc: 4, WordSize: 2}
	hard := cache.Config{
		NetSize: 64, BlockSize: 32, Assoc: 2, WordSize: 2,
		Replacement: cache.Random, RandomSeed: 99,
		CopyBack: true, WarmStart: true,
	}
	return [][]cache.Config{
		fetchLanes(plain, []int{2, 4, 8, 16}),
		fetchLanes(hard, []int{2, 8, 32}),
	}
}

// FuzzMultiPassEquivalence: for arbitrary reference streams, every
// counter of every lane must match a reference simulation of the same
// configuration.  The seed corpus reuses the internal/trace fuzz seeds
// (raw din text and binary trace bytes) plus structured streams that
// exercise eviction and write paths.
func FuzzMultiPassEquivalence(f *testing.F) {
	// Seeds shared with internal/trace's FuzzTextReader / FuzzBinReader.
	f.Add([]byte("0 100 2\n"))
	f.Add([]byte("2 dead 4\n1 beef 1\n"))
	f.Add([]byte("# comment\n\n0 0x10\n"))
	f.Add([]byte("9 zz\n"))
	f.Add([]byte("0 100 2 trailing\n"))
	f.Add([]byte("SBCT"))
	// Structured seeds: a sequential sweep (evictions) and a hot loop.
	var seq []byte
	for i := 0; i < 64; i++ {
		var rec [6]byte
		binary.LittleEndian.PutUint32(rec[:4], uint32(i*32))
		rec[4] = byte(i % 3)
		seq = append(seq, rec[:]...)
	}
	f.Add(seq)
	var loop []byte
	for i := 0; i < 64; i++ {
		var rec [6]byte
		binary.LittleEndian.PutUint32(rec[:4], uint32((i%5)*64))
		rec[4] = byte(i % 2)
		loop = append(loop, rec[:]...)
	}
	f.Add(loop)

	f.Fuzz(func(t *testing.T, data []byte) {
		refs := decodeRefs(data, 2)
		if len(refs) == 0 {
			return
		}
		for _, cfgs := range fuzzFamilies() {
			fam, err := multipass.New(cfgs)
			if err != nil {
				t.Fatalf("multipass.New: %v", err)
			}
			for _, r := range refs {
				fam.Access(r)
			}
			fam.FlushUsage()
			for i, cfg := range cfgs {
				c, err := cache.New(cfg)
				if err != nil {
					t.Fatalf("cache.New(%v): %v", cfg, err)
				}
				for _, r := range refs {
					c.Access(r)
				}
				c.FlushUsage()
				if !reflect.DeepEqual(fam.Stats(i), c.Stats()) {
					t.Fatalf("%v: counter divergence on %d refs\n got:  %+v\n want: %+v",
						cfg, len(refs), fam.Stats(i), c.Stats())
				}
			}
		}
	})
}
