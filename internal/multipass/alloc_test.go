package multipass_test

// Allocation regression for the family kernel: the steady-state access
// path (hits, misses, fills across every lane) must never touch the
// heap, or each simulated reference in a sweep pays for it.

import (
	"testing"

	"subcache/internal/cache"
	"subcache/internal/multipass"
	"subcache/internal/trace"
)

func TestFamilyAccessNoAllocs(t *testing.T) {
	base := cache.Config{NetSize: 256, BlockSize: 32, Assoc: 1, WordSize: 2}
	var cfgs []cache.Config
	for _, sub := range []int{2, 8, 32} {
		c := base
		c.SubBlockSize = sub
		cfgs = append(cfgs, c)
	}
	lf := base
	lf.SubBlockSize = 4
	lf.Fetch = cache.LoadForward
	cfgs = append(cfgs, lf)

	fam, err := multipass.New(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	refs := [2]trace.Ref{
		{Addr: 0x0000, Kind: trace.Read, Size: 2},
		{Addr: 0x1000, Kind: trace.Read, Size: 2}, // same set, conflicting tag
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		fam.Access(refs[i&1]) // alternating conflict misses
		fam.Access(refs[i&1]) // plus a hit
		i++
	}); n != 0 {
		t.Errorf("family access path allocates %.1f per round, want 0", n)
	}

	// The multipass-safe configuration axes -- write-through and
	// copy-back, write-ignore, and the FIFO/Random allocate fallback of
	// the batch loop -- must stay 0-alloc on both entry points, batch
	// included (its packed scratch is preallocated).
	variants := []struct {
		name   string
		mutate func(*cache.Config)
	}{
		{"copy-back", func(c *cache.Config) { c.CopyBack = true }},
		{"write-ignore", func(c *cache.Config) { c.Write = cache.WriteIgnore }},
		{"random", func(c *cache.Config) { c.Replacement = cache.Random; c.RandomSeed = 99 }},
		{"fifo", func(c *cache.Config) { c.Replacement = cache.FIFO }},
	}
	for _, v := range variants {
		vcfgs := make([]cache.Config, len(cfgs))
		for j := range cfgs {
			vcfgs[j] = cfgs[j]
			v.mutate(&vcfgs[j])
		}
		vfam, err := multipass.New(vcfgs)
		if err != nil {
			t.Fatal(err)
		}
		batch := []trace.Ref{
			{Addr: 0x0000, Kind: trace.Read, Size: 2},
			{Addr: 0x0002, Kind: trace.Write, Size: 2},
			{Addr: 0x1000, Kind: trace.Write, Size: 2}, // conflicting write miss
			{Addr: 0x2000, Kind: trace.IFetch, Size: 2},
		}
		if n := testing.AllocsPerRun(1000, func() { vfam.AccessBatch(batch) }); n != 0 {
			t.Errorf("%s batch path allocates %.1f per chunk, want 0", v.name, n)
		}
	}
}
