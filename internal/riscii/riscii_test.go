package riscii

import (
	"math"
	"testing"
	"testing/quick"

	"subcache/internal/addr"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

func TestICacheConfigDefaults(t *testing.T) {
	cfg := ICacheConfig{}.Config()
	if cfg.NetSize != 512 || cfg.BlockSize != 8 || cfg.Assoc != 1 || cfg.WordSize != 4 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// 64 direct-mapped blocks, as the chip.
	if cfg.NumFrames() != 64 || cfg.NumSets() != 64 {
		t.Errorf("frames=%d sets=%d, want 64/64", cfg.NumFrames(), cfg.NumSets())
	}
}

func TestRemotePCSequential(t *testing.T) {
	r, err := NewRemotePC(4)
	if err != nil {
		t.Fatal(err)
	}
	// Pure straight-line code: all predictions correct.
	for pc := addr.Addr(0x100); pc < 0x200; pc += 4 {
		if !r.Observe(pc, pc+4) {
			t.Fatalf("sequential prediction failed at %v", pc)
		}
	}
	if r.Accuracy() != 1 {
		t.Errorf("accuracy = %g, want 1", r.Accuracy())
	}
}

func TestRemotePCLearnsLoopBranch(t *testing.T) {
	r, _ := NewRemotePC(4)
	// A 4-instruction loop: 0x100,0x104,0x108,0x10c -> 0x100.
	loop := []addr.Addr{0x100, 0x104, 0x108, 0x10c}
	missFirst := 0
	for iter := 0; iter < 50; iter++ {
		for i, pc := range loop {
			next := loop[(i+1)%len(loop)]
			if !r.Observe(pc, next) && iter > 0 {
				missFirst++
			}
		}
	}
	// After the first iteration the backward branch is remembered:
	// no further mispredictions.
	if missFirst != 0 {
		t.Errorf("%d mispredictions after warmup", missFirst)
	}
	if r.Accuracy() < 0.99 {
		t.Errorf("loop accuracy = %g", r.Accuracy())
	}
}

func TestRemotePCRetrainsOnFallthrough(t *testing.T) {
	r, _ := NewRemotePC(4)
	r.Observe(0x100, 0x200) // branch: target remembered
	if r.Predict(0x100) != 0x200 {
		t.Error("target not remembered")
	}
	r.Observe(0x100, 0x104) // falls through: hint retrained
	if r.Predict(0x100) != 0x104 {
		t.Error("fallthrough did not clear the stale hint")
	}
}

func TestRemotePCValidation(t *testing.T) {
	if _, err := NewRemotePC(0); err == nil {
		t.Error("accepted zero instruction size")
	}
	if _, err := NewRemotePC(3); err == nil {
		t.Error("accepted non-pow2 instruction size")
	}
}

func TestRemotePCZeroSafe(t *testing.T) {
	r, _ := NewRemotePC(4)
	if r.Accuracy() != 0 || r.Predictions() != 0 {
		t.Error("fresh predictor not zeroed")
	}
}

func TestAccessTimeReductionChipNumbers(t *testing.T) {
	// 89.9% accuracy with ~47% overlap reproduces the chip's 42.2%.
	got := AccessTimeReduction(0.899, 0.47)
	if math.Abs(got-0.422) > 0.01 {
		t.Errorf("reduction = %g, want ~0.422", got)
	}
}

func TestCompactorValidation(t *testing.T) {
	if _, err := NewCompactor(0, 0, 4, 0.4, 1); err == nil {
		t.Error("accepted zero size")
	}
	if _, err := NewCompactor(0, 10, 4, 0.4, 1); err == nil {
		t.Error("accepted non-multiple size")
	}
	if _, err := NewCompactor(0, 16, 4, 1.5, 1); err == nil {
		t.Error("accepted fraction > 1")
	}
}

func TestCompactorSavings(t *testing.T) {
	// 40% of instructions compacted to half length: ~20% size cut,
	// the chip's number.
	c, err := NewCompactor(0x1000, 64<<10, 4, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.StaticSavings(); math.Abs(s-0.20) > 0.02 {
		t.Errorf("savings = %g, want ~0.20", s)
	}
}

func TestCompactorMapMonotone(t *testing.T) {
	c, _ := NewCompactor(0x1000, 4096, 4, 0.4, 3)
	var prev addr.Addr
	for a := addr.Addr(0x1000); a < 0x1000+4096; a += 4 {
		m := c.Map(a)
		if a > 0x1000 && m <= prev {
			t.Fatalf("mapping not strictly monotone at %v: %v <= %v", a, m, prev)
		}
		if m > a {
			t.Fatalf("compacted address %v beyond original %v", m, a)
		}
		prev = m
	}
}

func TestCompactorMapOutsideRegion(t *testing.T) {
	c, _ := NewCompactor(0x1000, 4096, 4, 0.4, 3)
	if c.Map(0x10) != 0x10 {
		t.Error("address below region changed")
	}
	if c.Map(0x100000) != 0x100000 {
		t.Error("address above region changed")
	}
}

func TestCompactorZeroFraction(t *testing.T) {
	c, _ := NewCompactor(0, 1024, 4, 0, 3)
	if c.StaticSavings() != 0 {
		t.Error("zero fraction saved space")
	}
	for a := addr.Addr(0); a < 1024; a += 4 {
		if c.Map(a) != a {
			t.Fatalf("identity mapping broken at %v", a)
		}
	}
}

// Property: the compacted mapping preserves instruction-slot ordering
// for any fraction and seed.
func TestPropertyCompactorMonotone(t *testing.T) {
	f := func(seed uint64, fracRaw uint8) bool {
		frac := float64(fracRaw%101) / 100
		c, err := NewCompactor(0, 2048, 4, frac, seed)
		if err != nil {
			return false
		}
		var prev addr.Addr
		for a := addr.Addr(0); a < 2048; a += 4 {
			m := c.Map(a)
			if a > 0 && m <= prev {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Error(err)
	}
}

// --- Whole-chip evaluations against the paper's §2.3 numbers ---

func benchTrace(t *testing.T, n int) []trace.Ref {
	t.Helper()
	refs, err := synth.Generate(Workload(11), n)
	if err != nil {
		t.Fatal(err)
	}
	return refs
}

// TestMissRatioVsSize: the chip study found miss ratios falling ~20%
// per size doubling (0.148, 0.125, 0.098, 0.078 for 512..4096 bytes).
// The synthetic benchmark must show monotone decline with meaningful
// per-doubling improvements.
func TestMissRatioVsSize(t *testing.T) {
	refs := benchTrace(t, 200000)
	prev := math.Inf(1)
	for _, size := range []int{512, 1024, 2048, 4096} {
		res, err := Evaluate(ICacheConfig{Size: size}, trace.NewSliceSource(refs), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.MissRatio >= prev {
			t.Errorf("%dB: miss %.4f did not improve on %.4f", size, res.MissRatio, prev)
		}
		if prev != math.Inf(1) {
			drop := 1 - res.MissRatio/prev
			if drop < 0.05 {
				t.Errorf("%dB: doubling improved miss only %.1f%%", size, 100*drop)
			}
		}
		prev = res.MissRatio
	}
}

// TestRemotePCAccuracyOnBenchmark: the chip predicted 89.9% of next
// addresses; the loopy synthetic benchmark should land in the same
// region (>= 80%).
func TestRemotePCAccuracyOnBenchmark(t *testing.T) {
	refs := benchTrace(t, 200000)
	rpc, _ := NewRemotePC(4)
	res, err := Evaluate(ICacheConfig{}, trace.NewSliceSource(refs), nil, rpc)
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictionAccuracy < 0.80 {
		t.Errorf("remote PC accuracy = %.3f, want >= 0.80 (chip: 0.899)", res.PredictionAccuracy)
	}
	if res.Fetches == 0 {
		t.Error("no fetches evaluated")
	}
}

// TestCompactionImprovesMissRatio: the chip's half-word instructions
// improved miss ratios 27%; the model must show a clear improvement.
func TestCompactionImprovesMissRatio(t *testing.T) {
	refs := benchTrace(t, 200000)
	plain, err := Evaluate(ICacheConfig{}, trace.NewSliceSource(refs), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewCompactor(0x1000, Workload(11).CodeSize+64, 4, 0.4, 11)
	if err != nil {
		t.Fatal(err)
	}
	compacted, err := Evaluate(ICacheConfig{}, trace.NewSliceSource(refs), comp, nil)
	if err != nil {
		t.Fatal(err)
	}
	improve := 1 - compacted.MissRatio/plain.MissRatio
	if improve < 0.08 {
		t.Errorf("compaction improved miss only %.1f%% (plain %.4f, compacted %.4f; chip: 27%%)",
			100*improve, plain.MissRatio, compacted.MissRatio)
	}
}
