package riscii

import "subcache/internal/synth"

// Workload returns a RISC-style synthetic instruction workload: fixed
// 32-bit instructions (the RISC architecture the chip was built for),
// compact code with strong loop behaviour, resembling the limited
// benchmarks of the RISC II study.
func Workload(seed uint64) synth.Profile {
	return synth.Profile{
		Name: "RISCII-BENCH",
		Arch: synth.VAX11, // 32-bit, 4-byte data path
		Seed: seed,

		CodeSize: 96 << 10, HotLoci: 256, CodeZipf: 0.9,
		MeanRunLen: 7, PLoop: 0.45, MeanLoopIter: 10, PNearJump: 0.30,
		PhaseLoci: 40, PhaseScalars: 16, MeanPhaseLen: 1500,
		InstrMin: 4, InstrMax: 4, InstrGrain: 4,

		DataRefsPerInstr: 0.25, WriteFrac: 0.3,
		DataSize: 16 << 10, StackSize: 2 << 10,
		HotScalars: 64, ScalarZipf: 1.0,
		Streams: 3, MeanStreamLen: 48,
		FracStack: 0.3, FracScalar: 0.3, FracStream: 0.3,
		AccessSize: 4,
	}
}
