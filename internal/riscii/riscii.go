// Package riscii models the RISC II instruction cache the paper
// presents as an implemented example of on-chip cache architecture
// (§2.3): a 512-byte, direct-mapped, 8-byte-block single-chip
// instruction cache with two architectural innovations:
//
//   - a remote program counter that guesses the next instruction
//     address so the cache can start its private-store access before
//     the processor presents the real address (the paper's chip
//     predicted 89.9% of next addresses and cut perceived access time
//     42.2%), and
//   - dynamic code expansion: selected instructions are stored in a
//     compacted half-word format and expanded on the way to the
//     processor, shrinking code ~20% and improving miss ratio ~27%.
//
// The cache proper reuses internal/cache (direct-mapped is Assoc == 1);
// this package adds the predictor and the compaction address mapping,
// and a harness that measures both against instruction traces.
package riscii

import (
	"fmt"
	"io"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/trace"
)

// ICacheConfig describes a RISC II-style instruction cache.  The chip's
// parameters are the defaults: 512 bytes, 8-byte blocks, direct mapped,
// 4-byte (one-instruction) transfers.
type ICacheConfig struct {
	Size      int
	BlockSize int
}

// Config converts to the simulator's configuration.  RISC II loaded
// whole blocks on a miss.
func (c ICacheConfig) Config() cache.Config {
	size := c.Size
	if size == 0 {
		size = 512
	}
	block := c.BlockSize
	if block == 0 {
		block = 8
	}
	return cache.Config{
		NetSize:      size,
		BlockSize:    block,
		SubBlockSize: block,
		Assoc:        1, // direct mapped
		WordSize:     4, // one 32-bit RISC instruction
		Replacement:  cache.LRU,
		Fetch:        cache.DemandSubBlock,
		Write:        cache.WriteIgnore, // instruction cache
	}
}

// RemotePC is the next-instruction-address predictor.  Like the chip,
// it has "limited instruction-decode ability and static jump-likely
// hints": for each static instruction it knows whether the instruction
// is likely to transfer control (a static hint) and remembers the last
// target it transferred to.  Prediction is sequential (pc + 4) unless
// the hint fires and a remembered target exists.
type RemotePC struct {
	instrSize addr.Addr
	// lastTarget remembers, per static branch, its most recent
	// destination; nil values mean "no transfer seen yet".
	lastTarget map[addr.Addr]addr.Addr

	predictions uint64
	correct     uint64
}

// NewRemotePC builds a predictor for fixed-size instructions of the
// given length in bytes.
func NewRemotePC(instrSize int) (*RemotePC, error) {
	if instrSize <= 0 || !addr.IsPow2(uint64(instrSize)) {
		return nil, fmt.Errorf("riscii: instruction size %d not a positive power of two", instrSize)
	}
	return &RemotePC{
		instrSize:  addr.Addr(instrSize),
		lastTarget: make(map[addr.Addr]addr.Addr),
	}, nil
}

// Predict returns the guessed successor of the instruction at pc.
func (r *RemotePC) Predict(pc addr.Addr) addr.Addr {
	if t, ok := r.lastTarget[pc]; ok {
		return t
	}
	return pc + r.instrSize
}

// Observe feeds the actual successor of pc, scoring the previous
// prediction and updating the static hint state.  It returns whether
// the prediction was correct.
func (r *RemotePC) Observe(pc, next addr.Addr) bool {
	predicted := r.Predict(pc)
	r.predictions++
	ok := predicted == next
	if ok {
		r.correct++
	}
	if next != pc+r.instrSize {
		// A control transfer: remember the target (the static
		// jump-likely hint for this instruction now fires).
		r.lastTarget[pc] = next
	} else if _, hinted := r.lastTarget[pc]; hinted && !ok {
		// The hinted branch fell through this time; a once-wrong hint
		// is retrained to the latest behaviour.
		delete(r.lastTarget, pc)
	}
	return ok
}

// Accuracy returns the fraction of correct predictions (the chip:
// 0.899).
func (r *RemotePC) Accuracy() float64 {
	if r.predictions == 0 {
		return 0
	}
	return float64(r.correct) / float64(r.predictions)
}

// Predictions returns the number of scored predictions.
func (r *RemotePC) Predictions() uint64 { return r.predictions }

// AccessTimeReduction converts prediction accuracy into the perceived
// access-time saving: a correct prediction overlaps the cache's
// private-store access with the processor's address generation, hiding
// overlapFrac of the access time; a wrong prediction pays full price.
// With the chip's 89.9% accuracy and ~47% overlap this reproduces the
// reported 42.2% reduction.
func AccessTimeReduction(accuracy, overlapFrac float64) float64 {
	return accuracy * overlapFrac
}

// Compactor implements dynamic code expansion's address side: a
// deterministic fraction of static instructions are stored half-length,
// so the compacted code image is smaller and the same dynamic stream
// touches fewer cache bytes.  Map rewrites an original instruction
// address to its compacted address; the monotone mapping preserves
// program order and relative locality, exactly what the cache sees.
type Compactor struct {
	base      addr.Addr
	instrSize int
	// compactedOffset[i] is the compacted byte offset of the i-th
	// instruction slot.
	compactedOffset []addr.Addr
	staticSavings   float64
}

// NewCompactor builds the mapping for a code region of the given base
// and size holding fixed instrSize-byte instructions, of which roughly
// frac are compactable to half length.  Compactability is a
// deterministic hash of the slot index and seed (a static property of
// the program image, as on the chip).
func NewCompactor(base addr.Addr, size, instrSize int, frac float64, seed uint64) (*Compactor, error) {
	if size <= 0 || instrSize <= 0 || size%instrSize != 0 {
		return nil, fmt.Errorf("riscii: bad code region %d/%d", size, instrSize)
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("riscii: compactable fraction %g out of [0,1]", frac)
	}
	slots := size / instrSize
	c := &Compactor{
		base:            base,
		instrSize:       instrSize,
		compactedOffset: make([]addr.Addr, slots+1),
	}
	var off addr.Addr
	compacted := 0
	for i := 0; i < slots; i++ {
		c.compactedOffset[i] = off
		if hashFrac(uint64(i), seed) < frac {
			off += addr.Addr(instrSize / 2)
			compacted++
		} else {
			off += addr.Addr(instrSize)
		}
	}
	c.compactedOffset[slots] = off
	c.staticSavings = 1 - float64(off)/float64(size)
	return c, nil
}

// hashFrac maps (i, seed) to a uniform-ish value in [0,1).
func hashFrac(i, seed uint64) float64 {
	x := i ^ seed*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x>>11) / (1 << 53)
}

// Map rewrites an original-image instruction address into the compacted
// image.  Addresses outside the region pass through unchanged.
func (c *Compactor) Map(a addr.Addr) addr.Addr {
	if a < c.base {
		return a
	}
	slot := int(a-c.base) / c.instrSize
	if slot >= len(c.compactedOffset)-1 {
		return a
	}
	within := (uint64(a-c.base) % uint64(c.instrSize)) / 2 // halves survive
	return c.base + c.compactedOffset[slot] + addr.Addr(within)
}

// StaticSavings returns the code-size reduction of the compacted image
// (the chip: ~20%).
func (c *Compactor) StaticSavings() float64 { return c.staticSavings }

// Result summarises one instruction-trace evaluation.
type Result struct {
	// MissRatio of the instruction cache on the (possibly compacted)
	// stream.
	MissRatio float64
	// Fetches is the number of instruction fetches presented.
	Fetches uint64
	// PredictionAccuracy is the remote PC's score (0 if not evaluated).
	PredictionAccuracy float64
}

// Evaluate drives an instruction stream through a RISC II cache,
// optionally remapped by a compactor and optionally scored by a remote
// PC.  Only IFetch references are considered; each is one instruction.
func Evaluate(cfg ICacheConfig, src trace.Source, comp *Compactor, rpc *RemotePC) (Result, error) {
	c, err := cache.New(cfg.Config())
	if err != nil {
		return Result{}, err
	}
	var prev addr.Addr
	havePrev := false
	var fetches uint64
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Result{}, err
		}
		if r.Kind != trace.IFetch {
			continue
		}
		a := addr.AlignDown(r.Addr, 4)
		if comp != nil {
			a = addr.AlignDown(comp.Map(a), 2)
		}
		fetches++
		c.Access(trace.Ref{Addr: a, Kind: trace.IFetch, Size: 4})
		if rpc != nil {
			if havePrev {
				rpc.Observe(prev, a)
			}
			prev, havePrev = a, true
		}
	}
	res := Result{MissRatio: c.Stats().MissRatio(), Fetches: fetches}
	if rpc != nil {
		res.PredictionAccuracy = rpc.Accuracy()
	}
	return res, nil
}
