package sweep

import (
	"strings"
	"testing"

	"subcache/internal/cache"
	"subcache/internal/synth"
)

func TestGridRespectsTable1(t *testing.T) {
	pts := Grid([]int{64, 256, 1024}, 2)
	if len(pts) == 0 {
		t.Fatal("empty grid")
	}
	seen := map[Point]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Errorf("duplicate point %v", p)
		}
		seen[p] = true
		if p.Block < 2 || p.Block > 64 {
			t.Errorf("%v: block out of Table 1 range", p)
		}
		if p.Sub < 2 || p.Sub > 32 {
			t.Errorf("%v: sub-block out of Table 1 range", p)
		}
		if p.Sub > p.Block || p.Block > p.Net {
			t.Errorf("%v: inconsistent geometry", p)
		}
		if p.Block == 64 && p.Sub == 64 {
			t.Errorf("%v: 64,64 is not in Table 1", p)
		}
	}
	// Net 1024 on a 2-byte-word machine has exactly the 18 organisations
	// of Table 7's 1024-byte section.
	var n1024 int
	for _, p := range pts {
		if p.Net == 1024 {
			n1024++
		}
	}
	if n1024 != 19 {
		t.Errorf("1024-byte grid has %d points, want 19 (Table 7)", n1024)
	}
}

func TestGridWordSizeFloor(t *testing.T) {
	// A 4-byte-word machine has no x,2 points.
	for _, p := range Grid([]int{256}, 4) {
		if p.Sub < 4 {
			t.Errorf("point %v has sub-block below the word size", p)
		}
	}
}

func TestPointString(t *testing.T) {
	p := Point{Net: 256, Block: 16, Sub: 2}
	if p.String() != "256:16,2" {
		t.Errorf("String = %q", p.String())
	}
	p.Fetch = cache.LoadForward
	if p.String() != "256:16,2,LF" {
		t.Errorf("String = %q", p.String())
	}
}

func TestPointConfig(t *testing.T) {
	cfg := Point{Net: 1024, Block: 16, Sub: 8}.Config(synth.PDP11)
	if cfg.Assoc != 4 || cfg.WordSize != 2 || cfg.WarmStart {
		t.Errorf("config = %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
	// Tiny cache: associativity capped at the frame count.
	tiny := Point{Net: 64, Block: 32, Sub: 8}.Config(synth.VAX11)
	if tiny.Assoc != 2 {
		t.Errorf("tiny assoc = %d, want 2", tiny.Assoc)
	}
	// Z8000 runs warm-start.
	if !(Point{Net: 64, Block: 8, Sub: 2}).Config(synth.Z8000).WarmStart {
		t.Error("Z8000 config not warm-start")
	}
}

func TestRunSmallSweep(t *testing.T) {
	pts := []Point{
		{Net: 256, Block: 16, Sub: 8},
		{Net: 256, Block: 16, Sub: 2},
		{Net: 1024, Block: 16, Sub: 8},
	}
	res, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Summaries) != len(pts) {
		t.Fatalf("got %d summaries", len(res.Summaries))
	}
	for _, p := range pts {
		runs := res.Runs[p]
		if len(runs) != 6 { // six PDP-11 workloads
			t.Errorf("%v: %d runs, want 6", p, len(runs))
		}
	}
	// Structural expectations: smaller sub-block -> higher miss, lower
	// traffic; bigger cache -> lower miss.
	s168 := res.Summaries[pts[0]]
	s162 := res.Summaries[pts[1]]
	big := res.Summaries[pts[2]]
	if !(s162.Miss > s168.Miss) {
		t.Errorf("sub-block shrink did not raise miss: %.4f vs %.4f", s162.Miss, s168.Miss)
	}
	if !(s162.Traffic < s168.Traffic) {
		t.Errorf("sub-block shrink did not cut traffic: %.4f vs %.4f", s162.Traffic, s168.Traffic)
	}
	if !(big.Miss < s168.Miss) {
		t.Errorf("bigger cache did not cut miss: %.4f vs %.4f", big.Miss, s168.Miss)
	}
}

func TestRunWorkloadSubset(t *testing.T) {
	pts := []Point{{Net: 256, Block: 16, Sub: 2, Fetch: cache.LoadForward}}
	res, err := Run(Request{
		Arch: synth.Z8000, Points: pts, Refs: 20000,
		Workloads: []string{"CCP", "C1", "C2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Runs[pts[0]]); got != 3 {
		t.Errorf("%d runs, want 3", got)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	_, err := Run(Request{
		Arch: synth.Z8000, Points: []Point{{Net: 64, Block: 8, Sub: 2}},
		Refs: 100, Workloads: []string{"NOSUCH"},
	})
	if err == nil || !strings.Contains(err.Error(), "NOSUCH") {
		t.Errorf("err = %v", err)
	}
}

func TestRunValidatesRequest(t *testing.T) {
	if _, err := Run(Request{Arch: synth.PDP11, Refs: 0, Points: []Point{{Net: 64, Block: 8, Sub: 2}}}); err == nil {
		t.Error("accepted zero refs")
	}
	if _, err := Run(Request{Arch: synth.PDP11, Refs: 100}); err == nil {
		t.Error("accepted empty points")
	}
}

func TestRunOverride(t *testing.T) {
	pts := []Point{{Net: 256, Block: 8, Sub: 8}}
	lru, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 20000,
		Workloads: []string{"ED"}})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 20000,
		Workloads: []string{"ED"},
		Override: func(c *cache.Config) {
			c.Replacement = cache.Random
			c.RandomSeed = 7
		}})
	if err != nil {
		t.Fatal(err)
	}
	// Different policies should give (at least slightly) different miss
	// counts on a nontrivial trace.
	if lru.Summaries[pts[0]].Miss == rnd.Summaries[pts[0]].Miss {
		t.Error("override had no effect")
	}
}

func TestResultPointsSorted(t *testing.T) {
	pts := []Point{
		{Net: 1024, Block: 16, Sub: 8},
		{Net: 64, Block: 8, Sub: 2},
		{Net: 64, Block: 16, Sub: 8},
		{Net: 64, Block: 16, Sub: 2},
	}
	res, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 5000, Workloads: []string{"ED"}})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Points()
	want := []Point{
		{Net: 64, Block: 16, Sub: 8},
		{Net: 64, Block: 16, Sub: 2},
		{Net: 64, Block: 8, Sub: 2},
		{Net: 1024, Block: 16, Sub: 8},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	pts := []Point{{Net: 256, Block: 16, Sub: 4}}
	req := Request{Arch: synth.VAX11, Points: pts, Refs: 20000, Workloads: []string{"QSORT"}}
	a, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summaries[pts[0]] != b.Summaries[pts[0]] {
		t.Error("sweep not deterministic")
	}
}

func TestRunOne(t *testing.T) {
	prof, _ := synth.ProfileByName("ED")
	cfg := cache.Config{NetSize: 256, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2}
	run, err := RunOne(prof, cfg, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if run.Accesses == 0 || run.Miss <= 0 || run.Miss >= 1 {
		t.Errorf("run = %+v", run)
	}
	if _, err := RunOne(prof, cache.Config{}, 10); err == nil {
		t.Error("RunOne accepted invalid config")
	}
}

func TestRunOverrideInvalidConfig(t *testing.T) {
	_, err := Run(Request{
		Arch: synth.PDP11, Points: []Point{{Net: 64, Block: 8, Sub: 2}},
		Refs: 1000, Workloads: []string{"ED"},
		Override: func(c *cache.Config) { c.Assoc = 999 },
	})
	if err == nil {
		t.Error("sweep accepted an override that invalidates the config")
	}
}

func TestRunParallelismOne(t *testing.T) {
	pts := []Point{{Net: 64, Block: 8, Sub: 4}, {Net: 256, Block: 8, Sub: 4}}
	seq, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 5000,
		Workloads: []string{"ED"}, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 5000,
		Workloads: []string{"ED"}, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if seq.Summaries[p] != par.Summaries[p] {
			t.Errorf("parallelism changed results at %v", p)
		}
	}
}
