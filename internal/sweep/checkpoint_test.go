package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"subcache/internal/cache"
	"subcache/internal/metrics"
	"subcache/internal/synth"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sweep.ckpt")
}

// TestJournalRoundTrip: recorded entries survive a close/reopen and
// load back verbatim.
func TestJournalRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	pts := []Point{{Net: 64, Block: 8, Sub: 2}, {Net: 64, Block: 8, Sub: 4}}
	runs := map[Point]metrics.Run{
		pts[0]: {Trace: "ED", Miss: 0.25, Traffic: 1.5},
		pts[1]: {Trace: "ED", Miss: 0.125, Traffic: 0.75},
	}

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("fp1", "ED", pts, runs); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Skipped != 0 {
		t.Errorf("Skipped = %d, want 0", j2.Skipped)
	}
	got, ok := j2.Lookup("fp1", "ED")
	if !ok {
		t.Fatal("recorded entry missing after reopen")
	}
	if !reflect.DeepEqual(got, runs) {
		t.Errorf("round trip changed runs\n got:  %v\n want: %v", got, runs)
	}
	if _, ok := j2.Lookup("fp2", "ED"); ok {
		t.Error("lookup matched a foreign fingerprint")
	}
	if _, ok := j2.Lookup("fp1", "CCP"); ok {
		t.Error("lookup matched an unrecorded workload")
	}
}

// TestJournalRejectsCorruption: garbage lines, torn tails and tampered
// payloads are skipped on load -- never half-trusted -- while valid
// entries around them survive.
func TestJournalRejectsCorruption(t *testing.T) {
	path := tmpJournal(t)
	pts := []Point{{Net: 64, Block: 8, Sub: 2}}
	runs := map[Point]metrics.Run{pts[0]: {Trace: "ED", Miss: 0.5}}

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("fp", "ED", pts, runs); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("fp", "CCP", pts, runs); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the second entry's payload (flip a digit inside the
	// miss ratio) without touching its checksum, inject a garbage line,
	// and tear the tail off a duplicated first line.
	lines := splitLines(t, data)
	tampered := append([]byte(nil), lines[0]...)
	tampered = append(tampered, '\n')
	bad := []byte(nil)
	bad = append(bad, lines[1]...)
	for i := range bad {
		if bad[i] == '5' {
			bad[i] = '6'
			break
		}
	}
	tampered = append(tampered, bad...)
	tampered = append(tampered, '\n')
	tampered = append(tampered, []byte("{not json at all\n")...)
	tampered = append(tampered, lines[0][:len(lines[0])/2]...) // torn tail
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Skipped != 3 {
		t.Errorf("Skipped = %d, want 3 (tampered, garbage, torn)", j2.Skipped)
	}
	if _, ok := j2.Lookup("fp", "ED"); !ok {
		t.Error("valid entry lost to surrounding corruption")
	}
	if _, ok := j2.Lookup("fp", "CCP"); ok {
		t.Error("tampered entry was trusted")
	}
}

func splitLines(t *testing.T, data []byte) [][]byte {
	t.Helper()
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			lines = append(lines, data[start:i])
			start = i + 1
		}
	}
	if len(lines) < 2 {
		t.Fatalf("journal has %d lines, want at least 2", len(lines))
	}
	return lines
}

// marshalRuns renders a result's runs deterministically for the
// byte-for-byte comparisons below.
func marshalRuns(t *testing.T, res *Result) []byte {
	t.Helper()
	type pointRuns struct {
		Point Point         `json:"point"`
		Runs  []metrics.Run `json:"runs"`
	}
	var all []pointRuns
	for _, p := range res.Points() {
		all = append(all, pointRuns{Point: p, Runs: res.Runs[p]})
	}
	b, err := json.Marshal(all)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCheckpointResumeByteForByte is the acceptance scenario: a
// checkpointed sweep killed mid-run (cancelled after its first
// workload is journaled) and then restarted reproduces the
// uninterrupted run's results byte for byte on a Table 7 grid.
func TestCheckpointResumeByteForByte(t *testing.T) {
	pts := Grid([]int{64, 256}, 2)
	base := Request{Arch: synth.PDP11, Points: pts, Refs: 20000,
		Engine: MultiPass, Shards: -1, Parallelism: 1}

	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := marshalRuns(t, want)

	// Phase 1: same request, checkpointed, killed once the second
	// workload starts -- with Parallelism 1 the workloads run
	// sequentially, so the first is already journaled.
	path := tmpJournal(t)
	profiles := synth.Workloads(synth.PDP11)
	if len(profiles) < 2 {
		t.Skip("suite too small to interrupt")
	}
	second := profiles[1].Name
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := base
	req.Checkpoint = path
	req.Hooks = &Hooks{BeforeUnit: func(w string, _ int, _ []Point, _ int) {
		if w == second {
			cancel()
		}
	}}
	if _, err := RunContext(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep: err = %v, want context.Canceled", err)
	}

	// Phase 2: restart.  The journaled workload must be restored, the
	// rest re-simulated, and the merged result identical to the
	// uninterrupted run.
	req = base
	req.Checkpoint = path
	got, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Resumed < 1 {
		t.Errorf("Resumed = %d, want at least 1", got.Resumed)
	}
	if gotBytes := marshalRuns(t, got); string(gotBytes) != string(wantBytes) {
		t.Fatal("resumed sweep differs from the uninterrupted run")
	}
	if !reflect.DeepEqual(got.Summaries, want.Summaries) {
		t.Error("resumed summaries differ")
	}
	if want.TracePasses-got.TracePasses != got.Resumed {
		t.Errorf("restored workloads still cost passes: %d vs %d with %d resumed",
			got.TracePasses, want.TracePasses, got.Resumed)
	}
}

// TestCheckpointAcrossStrategies: the fingerprint deliberately excludes
// engine, shards, parallelism and the workload subset, so a journal
// written by a partial-suite multipass run seeds a full-suite sharded
// reference run -- and the restored entries are byte-identical.
func TestCheckpointAcrossStrategies(t *testing.T) {
	pts := Grid([]int{64}, 2)
	path := tmpJournal(t)
	profiles := synth.Workloads(synth.PDP11)
	if len(profiles) < 3 {
		t.Skip("suite too small for a subset run")
	}
	subset := []string{profiles[0].Name, profiles[2].Name}

	first, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 15000,
		Engine: MultiPass, Shards: 2, Workloads: subset, Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	if first.Resumed != 0 {
		t.Fatalf("fresh run resumed %d workloads", first.Resumed)
	}

	full := Request{Arch: synth.PDP11, Points: pts, Refs: 15000,
		Engine: Reference, Shards: 0, Checkpoint: path}
	got, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if got.Resumed != len(subset) {
		t.Errorf("Resumed = %d, want %d", got.Resumed, len(subset))
	}
	clean := Request{Arch: synth.PDP11, Points: pts, Refs: 15000, Engine: Reference}
	want, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshalRuns(t, got)) != string(marshalRuns(t, want)) {
		t.Error("cross-strategy resume differs from a clean run")
	}
}

// TestCheckpointFingerprintIsolation: entries only resume requests with
// matching architecture, trace length and point set.
func TestCheckpointFingerprintIsolation(t *testing.T) {
	pts := Grid([]int{64}, 2)
	path := tmpJournal(t)
	base := Request{Arch: synth.PDP11, Points: pts, Refs: 5000, Checkpoint: path,
		Engine: MultiPass}
	if _, err := Run(base); err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func(*Request){
		"refs":   func(r *Request) { r.Refs = 6000 },
		"points": func(r *Request) { r.Points = r.Points[:len(r.Points)-1] },
		"arch":   func(r *Request) { r.Arch = synth.Z8000 },
	} {
		req := base
		mutate(&req)
		res, err := Run(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Resumed != 0 {
			t.Errorf("%s: resumed %d workloads from a foreign journal entry", name, res.Resumed)
		}
	}

	// Unchanged request: everything resumes.
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(synth.Workloads(synth.PDP11)); res.Resumed != want {
		t.Errorf("identical request resumed %d workloads, want %d", res.Resumed, want)
	}
	if res.TracePasses != 0 {
		t.Errorf("fully resumed sweep made %d trace passes", res.TracePasses)
	}
}

// TestCheckpointRefusesOverride: an Override cannot be fingerprinted,
// so checkpointing one is an error, not a silent wrong resume.
func TestCheckpointRefusesOverride(t *testing.T) {
	_, err := Run(Request{
		Arch: synth.PDP11, Points: Grid([]int{64}, 2), Refs: 1000,
		Checkpoint: tmpJournal(t),
		Override:   func(c *cache.Config) { c.CopyBack = true },
	})
	if err == nil {
		t.Fatal("checkpointed sweep accepted an Override")
	}
}

// TestCheckpointSkipsFailedWorkloads: a workload that failed is not
// journaled, so a resumed run retries it rather than trusting a
// partial result.
func TestCheckpointSkipsFailedWorkloads(t *testing.T) {
	pts := Grid([]int{64}, 2)
	path := tmpJournal(t)
	boom := &Hooks{BeforeUnit: func(w string, _ int, _ []Point, _ int) {
		if w == "ED" {
			panic("injected")
		}
	}}
	res, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 9000,
		Engine: MultiPass, Shards: -1, ContinueOnError: true,
		Checkpoint: path, Hooks: boom})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) == 0 {
		t.Fatal("injected panic produced no errors")
	}

	// The retry (no fault) must re-simulate ED and come out clean.
	got, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 9000,
		Engine: MultiPass, Shards: -1, Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Errors) != 0 {
		t.Fatalf("retry inherited errors: %v", got.Errors)
	}
	want, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 9000})
	if err != nil {
		t.Fatal(err)
	}
	if string(marshalRuns(t, got)) != string(marshalRuns(t, want)) {
		t.Error("retried run differs from a clean run")
	}
}
