package sweep

import (
	"reflect"
	"strings"
	"testing"

	"subcache/internal/cache"
	"subcache/internal/synth"
)

// TestEnginesProduceIdenticalRuns: the MultiPass engine must reproduce
// the Reference engine's per-workload runs exactly -- every counter and
// every derived ratio -- over a full Table 1 grid, while making one
// trace pass per workload instead of one per point.
func TestEnginesProduceIdenticalRuns(t *testing.T) {
	pts := Grid([]int{64, 256}, 2)
	base := Request{Arch: synth.PDP11, Points: pts, Refs: 20000}

	ref := base
	ref.Engine = Reference
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	mp := base
	mp.Engine = MultiPass
	got, err := Run(mp)
	if err != nil {
		t.Fatal(err)
	}

	workloads := len(synth.Workloads(synth.PDP11))
	if want.TracePasses != len(pts)*workloads {
		t.Errorf("reference TracePasses = %d, want %d", want.TracePasses, len(pts)*workloads)
	}
	if got.TracePasses != workloads {
		t.Errorf("multipass TracePasses = %d, want %d", got.TracePasses, workloads)
	}
	if want.TracePasses < 5*got.TracePasses {
		t.Errorf("pass reduction %d/%d below the 5x target", want.TracePasses, got.TracePasses)
	}

	for _, p := range pts {
		if !reflect.DeepEqual(got.Runs[p], want.Runs[p]) {
			t.Errorf("%v: engine runs differ\n got:  %v\n want: %v", p, got.Runs[p], want.Runs[p])
		}
		if got.Summaries[p] != want.Summaries[p] {
			t.Errorf("%v: engine summaries differ", p)
		}
	}
}

// TestMultiPassFallback: points whose configuration is not
// MultiPassSafe (here, OBL prefetch via Override) must fall back to the
// reference simulator inside the single pass and still match a
// Reference-engine sweep bit for bit.
func TestMultiPassFallback(t *testing.T) {
	pts := []Point{
		{Net: 256, Block: 16, Sub: 8},
		{Net: 256, Block: 16, Sub: 2},
	}
	override := func(c *cache.Config) { c.PrefetchOBL = true }
	want, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 10000,
		Workloads: []string{"ED"}, Override: override, Engine: Reference})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 10000,
		Workloads: []string{"ED"}, Override: override, Engine: MultiPass})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !reflect.DeepEqual(got.Runs[p], want.Runs[p]) {
			t.Errorf("%v: fallback runs differ\n got:  %v\n want: %v", p, got.Runs[p], want.Runs[p])
		}
	}
	if got.TracePasses != 1 {
		t.Errorf("fallback points should ride the single pass: TracePasses = %d", got.TracePasses)
	}
}

// TestMultiPassMixedPolicies: a sweep whose Override leaves some points
// eligible and rearranges policies still matches the reference engine.
func TestMultiPassMixedPolicies(t *testing.T) {
	pts := []Point{
		{Net: 64, Block: 8, Sub: 2},
		{Net: 64, Block: 8, Sub: 4},
		{Net: 64, Block: 8, Sub: 2, Fetch: cache.LoadForward},
	}
	override := func(c *cache.Config) {
		c.Replacement = cache.Random
		c.RandomSeed = 7
		c.CopyBack = true
	}
	for _, wl := range [][]string{{"CCP"}, nil} {
		want, err := Run(Request{Arch: synth.Z8000, Points: pts, Refs: 8000,
			Workloads: wl, Override: override, Engine: Reference})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(Request{Arch: synth.Z8000, Points: pts, Refs: 8000,
			Workloads: wl, Override: override, Engine: MultiPass})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if !reflect.DeepEqual(got.Runs[p], want.Runs[p]) {
				t.Errorf("%v (workloads %v): engine runs differ", p, wl)
			}
		}
	}
}

// TestMultiPassInvalidConfig: configuration errors surface from the
// single-pass path just as from the reference path.
func TestMultiPassInvalidConfig(t *testing.T) {
	_, err := Run(Request{
		Arch: synth.PDP11, Points: []Point{{Net: 64, Block: 8, Sub: 2}},
		Refs: 1000, Workloads: []string{"ED"}, Engine: MultiPass,
		Override: func(c *cache.Config) { c.Assoc = 999 },
	})
	if err == nil {
		t.Error("multipass sweep accepted an override that invalidates the config")
	}
}

// TestMultiPassParallelismInvariance mirrors TestRunParallelismOne for
// the workload-parallel engine.
func TestMultiPassParallelismInvariance(t *testing.T) {
	pts := []Point{{Net: 64, Block: 8, Sub: 4}, {Net: 256, Block: 8, Sub: 4}}
	var results []*Result
	for _, par := range []int{1, 8} {
		res, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 5000,
			Parallelism: par, Engine: MultiPass})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for _, p := range pts {
		if !reflect.DeepEqual(results[0].Runs[p], results[1].Runs[p]) {
			t.Errorf("parallelism changed multipass results at %v", p)
		}
	}
}

func TestEngineNames(t *testing.T) {
	for _, e := range []Engine{Reference, MultiPass, StackDist} {
		back, err := ParseEngine(e.String())
		if err != nil || back != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), back, err)
		}
	}
	if _, err := ParseEngine("warp"); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Errorf("ParseEngine accepted junk: %v", err)
	}
	if s := Engine(42).String(); !strings.Contains(s, "42") {
		t.Errorf("Engine(42).String() = %q", s)
	}
	if _, err := Run(Request{Arch: synth.PDP11, Refs: 10,
		Points: []Point{{Net: 64, Block: 8, Sub: 2}}, Engine: Engine(42)}); err == nil {
		t.Error("Run accepted an unknown engine")
	}
}
