// Checkpoint journal: crash-safe persistence of completed sweep work.
//
// A journal is an append-only file of JSON lines, one entry per
// completed (request fingerprint, workload) pair, each carrying every
// point's metrics.Run and a SHA-256 checksum of its own payload.  A
// sweep with Request.Checkpoint set records each workload the moment
// it completes (single atomic append + fsync), and a restarted sweep
// restores matching entries instead of re-simulating them.  Because
// every engine and shard count produces bit-identical runs, entries
// are keyed only by what determines results -- architecture, trace
// length, and the point set -- so a resume may freely change engine,
// shard count or parallelism, and a partial-suite run can seed a
// full-suite one.
//
// Robustness: a torn final line (killed mid-append), a corrupted line,
// or an entry whose checksum does not match is skipped on load and
// simply re-simulated; it can never be half-trusted.  Entries from
// other requests sharing the file are ignored, so one journal file can
// serve a whole experiment series.
package sweep

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"subcache/internal/metrics"
	"subcache/internal/telemetry"
)

// journalVersion is bumped when the entry layout changes; entries with
// a different version are skipped on load.
const journalVersion = 1

// journalRun pairs one grid point with its completed run.
type journalRun struct {
	Point Point       `json:"point"`
	Run   metrics.Run `json:"run"`
}

// journalEntry is one completed workload within one fingerprinted
// request.  Sum is the hex SHA-256 of the entry serialised with Sum
// empty; load rejects entries whose recomputed sum differs.
type journalEntry struct {
	V        int          `json:"v"`
	FP       string       `json:"fp"`
	Workload string       `json:"workload"`
	Runs     []journalRun `json:"runs"`
	Sum      string       `json:"sum,omitempty"`
}

// sum computes the entry's checksum over its payload (Sum cleared).
func (e journalEntry) sum() (string, error) {
	e.Sum = ""
	b, err := json.Marshal(e)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:]), nil
}

// Journal is an open checkpoint file.  Safe for concurrent Record
// calls from sweep workers.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	done map[string]journalEntry // "fp\x00workload" -> last valid entry
	rec  telemetry.Recorder      // set by RunContext; never nil
	// Skipped counts lines that failed to parse or verify on load:
	// torn tails, corruption, foreign versions.  Informational.
	Skipped int
}

func journalKey(fp, workload string) string { return fp + "\x00" + workload }

// OpenJournal opens (creating if needed) a checkpoint journal and
// loads every hash-verified entry.  Invalid lines are counted in
// Skipped and otherwise ignored.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	j := &Journal{f: f, path: path, done: make(map[string]journalEntry), rec: telemetry.Nop}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<26)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.V != journalVersion || e.Sum == "" {
			j.Skipped++
			continue
		}
		want, err := e.sum()
		if err != nil || want != e.Sum {
			j.Skipped++
			continue
		}
		j.done[journalKey(e.FP, e.Workload)] = e
	}
	if err := sc.Err(); err != nil {
		// An unreadable tail (e.g. a torn line longer than the buffer)
		// invalidates nothing already verified; keep what we have.
		j.Skipped++
	}
	return j, nil
}

// Lookup returns the journaled runs for one workload under the given
// request fingerprint, or ok=false if none were recorded.
func (j *Journal) Lookup(fp, workload string) (map[Point]metrics.Run, bool) {
	j.mu.Lock()
	e, ok := j.done[journalKey(fp, workload)]
	j.mu.Unlock()
	if !ok {
		return nil, false
	}
	runs := make(map[Point]metrics.Run, len(e.Runs))
	for _, jr := range e.Runs {
		runs[jr.Point] = jr.Run
	}
	return runs, true
}

// Record appends one completed workload's runs as a single fsynced
// line, so the entry is either fully journaled or (on a crash
// mid-write) fully rejected by the checksum on the next load.
func (j *Journal) Record(fp, workload string, points []Point, runs map[Point]metrics.Run) error {
	e := journalEntry{V: journalVersion, FP: fp, Workload: workload}
	for _, p := range points {
		r, ok := runs[p]
		if !ok {
			return fmt.Errorf("sweep: checkpoint: workload %s missing point %v", workload, p)
		}
		e.Runs = append(e.Runs, journalRun{Point: p, Run: r})
	}
	sum, err := e.sum()
	if err != nil {
		return fmt.Errorf("sweep: checkpoint: %w", err)
	}
	e.Sum = sum
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("sweep: checkpoint: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	enabled := j.rec.Enabled()
	var t0 time.Time
	if enabled {
		t0 = time.Now()
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("sweep: checkpoint %s: %w", j.path, err)
	}
	var w time.Time
	if enabled {
		w = time.Now()
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweep: checkpoint %s: %w", j.path, err)
	}
	if enabled {
		now := time.Now()
		j.rec.Observe(telemetry.StageCheckpoint, now.Sub(t0))
		j.rec.Add(telemetry.CheckpointFsyncNanos, uint64(now.Sub(w)))
		j.rec.Add(telemetry.CheckpointRecords, 1)
	}
	j.done[journalKey(fp, workload)] = e
	return nil
}

// Close releases the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// RequestFingerprint exposes a request's checkpoint fingerprint: the
// short stable hash of exactly what determines its results (see
// requestFingerprint).  The sweep service keys its result cache and
// singleflight dedup on it, so two requests that would simulate the
// same thing -- whatever their engine, shard count or parallelism --
// share one simulation and one cache entry.
func RequestFingerprint(req Request) (string, error) {
	return requestFingerprint(req)
}

// requestFingerprint hashes exactly what determines a sweep's results
// per workload: the architecture (and its word size), the trace
// length, and the requested point set.  Engine, shard count,
// parallelism and the workload subset are deliberately excluded --
// results are bit-identical across all of them, so a journal written
// under one execution strategy resumes under any other.  Override is
// an arbitrary function and cannot be fingerprinted, so checkpointing
// refuses it.
func requestFingerprint(req Request) (string, error) {
	if req.Override != nil {
		return "", fmt.Errorf("sweep: checkpointing a sweep with a config Override is not supported (the override cannot be fingerprinted)")
	}
	h := sha256.New()
	fmt.Fprintf(h, "v%d arch=%s word=%d refs=%d\n", journalVersion, req.Arch, req.Arch.WordSize(), req.Refs)
	pts := append([]Point(nil), req.Points...)
	sortPoints(pts)
	for _, p := range pts {
		fmt.Fprintln(h, p.String())
	}
	return hex.EncodeToString(h.Sum(nil))[:16], nil
}

// ckState carries an open journal plus the request context it verifies
// entries against.
type ckState struct {
	j      *Journal
	fp     string
	points []Point // request points, for Record's canonical order
}

func (c *ckState) lookup(workload string) (map[Point]metrics.Run, bool) {
	if c == nil {
		return nil, false
	}
	return c.j.Lookup(c.fp, workload)
}

func (c *ckState) record(workload string, runs map[Point]metrics.Run) error {
	if c == nil {
		return nil
	}
	return c.j.Record(c.fp, workload, c.points, runs)
}
