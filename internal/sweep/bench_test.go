package sweep

import (
	"testing"

	"subcache/internal/synth"
)

// benchRefs keeps the benchmark grid representative (warm caches, real
// contention) while fast enough for -bench=.; the full-scale numbers are
// produced by cmd/benchsweep and recorded in BENCH_sweep.json.
const benchRefs = 20000

// BenchmarkSweepTable7 regenerates one architecture's full Table 7 grid
// (net 64/256/1024, every block/sub-block organisation) with each
// engine.  The "passes" metric is the number of trace iterations per
// regeneration -- the quantity the single-pass multipass kernel exists
// to cut (>= 5x on this grid) -- and "pts" the organisation count.
func BenchmarkSweepTable7(b *testing.B) {
	pts := Grid([]int{64, 256, 1024}, synth.PDP11.WordSize())
	for _, eng := range []Engine{Reference, MultiPass} {
		b.Run(eng.String(), func(b *testing.B) {
			var passes int
			for i := 0; i < b.N; i++ {
				res, err := Run(Request{
					Arch:   synth.PDP11,
					Points: pts,
					Refs:   benchRefs,
					Engine: eng,
				})
				if err != nil {
					b.Fatal(err)
				}
				passes = res.TracePasses
			}
			b.ReportMetric(float64(passes), "passes")
			b.ReportMetric(float64(len(pts)), "pts")
		})
	}
}
