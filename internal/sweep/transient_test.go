package sweep

import (
	"context"
	"fmt"
	"io"
	"testing"
)

// TestTransientClassifier pins the retry contract: only workload-scope
// I/O-style failures are transient; panics, point-scope failures,
// cancellations and unattributed errors are not.
func TestTransientClassifier(t *testing.T) {
	point := Point{Net: 64, Block: 16, Sub: 8}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain error", fmt.Errorf("boom"), false},
		{"workload-scope io", &PointError{Workload: "W", Shard: -1, Cause: io.ErrUnexpectedEOF}, true},
		{"workload-scope wrapped io", fmt.Errorf("sweep: %w",
			&PointError{Workload: "W", Shard: -1, Cause: fmt.Errorf("read: %w", io.ErrUnexpectedEOF)}), true},
		{"workload-scope panic", &PointError{Workload: "W", Shard: -1,
			Cause: &PanicError{Value: "kaboom"}}, false},
		{"workload-scope cancel", &PointError{Workload: "W", Shard: -1,
			Cause: context.Canceled}, false},
		{"workload-scope deadline", &PointError{Workload: "W", Shard: -1,
			Cause: fmt.Errorf("aborted: %w", context.DeadlineExceeded)}, false},
		{"point-scope io", &PointError{Workload: "W", Point: point, Shard: 0,
			Cause: io.ErrUnexpectedEOF}, false},
		{"point-scope panic", &PointError{Workload: "W", Point: point, Shard: 1,
			Cause: &PanicError{Value: 42}}, false},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("%s: Transient = %v, want %v", tc.name, got, tc.want)
		}
	}
}
