// Package sweep runs families of cache configurations over workload
// suites: the harness behind every table and figure reproduction.
//
// A sweep generates each workload's trace once, splits it to data-path
// words once, and replays it through every requested cache organisation
// in parallel.  Results come back as metrics.Run values keyed by
// (workload, point) plus unweighted per-architecture averages, the
// paper's aggregation (§3.3).
//
// Execution is fault tolerant (see fault.go): worker panics become
// attributed PointErrors, Request.ContinueOnError trades fail-fast
// abort for partial results, and Request.Checkpoint journals completed
// workloads so an interrupted sweep resumes instead of restarting.
package sweep

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"subcache/internal/cache"
	"subcache/internal/metrics"
	"subcache/internal/multipass"
	"subcache/internal/stackdist"
	"subcache/internal/synth"
	"subcache/internal/telemetry"
	"subcache/internal/trace"
)

// Engine selects how a sweep simulates its points.
type Engine int

const (
	// Reference replays the trace through one cache.Cache per point:
	// one trace pass per (workload, point) pair, parallel across points.
	Reference Engine = iota
	// MultiPass makes a single pass over each workload's trace, feeding
	// every point simultaneously: points whose tag dynamics are
	// sub-block-invariant (cache.Config.MultiPassSafe) are grouped into
	// multipass.Family kernels sharing one tag engine per (net, block)
	// family, and the rest ride the same pass as individual reference
	// caches.  Results are bit-identical to Reference; parallelism moves
	// from points to workloads.
	MultiPass
	// StackDist also makes a single pass per workload, but collapses
	// further: every LRU point of one block size -- all net sizes,
	// associativities, sub-block sizes and fetch policies at once --
	// shares a single stack-distance recency list (stackdist.Engine),
	// deriving each point's counters from per-set LRU depths.  Points
	// stack analysis cannot compute exactly (non-LRU replacement,
	// write-no-allocate, prefetch; see stackdist.Supported) fall back
	// to multipass families or reference caches on the same pass.
	// Results are bit-identical to Reference; sharding partitions sets
	// rather than configurations.
	StackDist
)

// String returns the engine name used by the -engine CLI flag.
func (e Engine) String() string {
	switch e {
	case Reference:
		return "reference"
	case MultiPass:
		return "multipass"
	case StackDist:
		return "stackdist"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine converts a CLI flag value into an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "reference":
		return Reference, nil
	case "multipass":
		return MultiPass, nil
	case "stackdist":
		return StackDist, nil
	default:
		return 0, fmt.Errorf("sweep: unknown engine %q (want reference, multipass or stackdist)", s)
	}
}

// Point is one cache organisation within a sweep, in the paper's
// (net, block, sub-block) coordinates plus the fetch policy.
type Point struct {
	Net, Block, Sub int
	Fetch           cache.Fetch
}

// String renders the point in the paper's notation, e.g. "1024:16,8" or
// "256:16,2,LF".
func (p Point) String() string {
	s := fmt.Sprintf("%d:%d,%d", p.Net, p.Block, p.Sub)
	switch p.Fetch {
	case cache.LoadForward:
		s += ",LF"
	case cache.LoadForwardOptimized:
		s += ",LFopt"
	case cache.WholeBlock:
		s += ",WB"
	}
	return s
}

// Table 1's parameter ranges.
const (
	minBlock = 2
	maxBlock = 64
	minSub   = 2
	maxSub   = 32
)

// Grid enumerates the paper's Table 1 design grid for the given net
// sizes on a machine with the given word size: block sizes 2-64 bytes,
// sub-block sizes 2-32 bytes, sub-block <= block <= net, and sub-block
// at least one data-path word.  Points are ordered largest block first,
// then largest sub-block, matching Table 7's layout.
func Grid(netSizes []int, wordSize int) []Point {
	var pts []Point
	for _, net := range netSizes {
		for block := maxBlock; block >= minBlock; block /= 2 {
			if block > net {
				continue
			}
			for sub := maxSub; sub >= minSub; sub /= 2 {
				if sub > block || sub < wordSize {
					continue
				}
				if block == maxBlock && sub > 16 {
					// Table 7 stops 64-byte blocks at 16-byte
					// sub-blocks (Table 1 caps sub-blocks at 32, and
					// the paper reports no 64,32 point).
					continue
				}
				pts = append(pts, Point{Net: net, Block: block, Sub: sub})
			}
		}
	}
	return pts
}

// Config converts a point into a full cache configuration for an
// architecture, applying the paper's fixed choices: 4-way
// set-associative (capped at the block count for tiny caches), LRU,
// write-allocate, warm-start for the Z8000.
func (p Point) Config(arch synth.Arch) cache.Config {
	assoc := 4
	if frames := p.Net / p.Block; frames < assoc {
		assoc = frames
	}
	return cache.Config{
		NetSize:      p.Net,
		BlockSize:    p.Block,
		SubBlockSize: p.Sub,
		Assoc:        assoc,
		WordSize:     arch.WordSize(),
		Replacement:  cache.LRU,
		Fetch:        p.Fetch,
		Write:        cache.WriteAllocate,
		WarmStart:    arch.WarmStart(),
	}
}

// Request describes one sweep.
type Request struct {
	// Arch selects the workload suite and word size.
	Arch synth.Arch
	// Points are the organisations to simulate.
	Points []Point
	// Refs is the trace length per workload (the paper uses 1,000,000).
	Refs int
	// Workloads optionally restricts the suite to the named workloads
	// (e.g. the load-forward study's CCP, C1, C2); nil means all.
	Workloads []string
	// Override, if non-nil, adjusts each derived cache.Config before
	// simulation (used by the ablation benches to change replacement
	// policy, associativity or warm-start handling).
	Override func(*cache.Config)
	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int
	// Engine selects the simulation strategy; the zero value is the
	// per-point Reference engine.  MultiPass produces bit-identical
	// results in far fewer trace passes (see Result.TracePasses).
	Engine Engine
	// Shards selects intra-workload parallelism.  With Shards >= 1 each
	// workload's families and fallback caches are partitioned across
	// that many shard workers, all fed from a single chunk-broadcast
	// trace generation (every cache still sees the complete ordered
	// stream, so results stay bit-identical; the trace is streamed, not
	// materialised).  0, the default, picks a machine-appropriate shard
	// count for the MultiPass engine and keeps the Reference engine on
	// its materialised per-point path, preserving it as an independent
	// baseline.  Negative forces the materialised-trace paths for both
	// engines (the differential baselines).
	Shards int
	// ContinueOnError selects the degraded-completion failure policy:
	// instead of the first failing point aborting the sweep
	// (fail-fast, the default), the failure is recorded in
	// Result.Errors with its exact workload/point/shard attribution
	// and every unaffected simulation unit keeps running.  Surviving
	// points are bit-identical to an undisturbed sweep: a unit is
	// either fed the complete ordered trace or reported failed, never
	// half-counted.  Cancellation of the caller's context still aborts
	// the sweep with an error.
	ContinueOnError bool
	// Checkpoint, when non-empty, names a journal file to which every
	// completed workload's runs are atomically appended, and from
	// which a restarted sweep restores hash-verified entries instead
	// of re-simulating them (Result.Resumed counts restores).  The
	// journal is keyed by what determines results -- architecture,
	// Refs, point set -- so resumes may change engine, shard count,
	// parallelism or the workload subset.  Incompatible with Override.
	Checkpoint string
	// Hooks instruments the execution layer for fault injection and
	// tests; nil in production.  See Hooks.
	Hooks *Hooks
	// Recorder receives runtime telemetry: counters, stage timings
	// and the structured event stream (run-start, point-done,
	// shard-stat, error-attributed; see internal/telemetry and
	// docs/OBSERVABILITY.md).  nil disables telemetry.  Recording is
	// observation only -- results are bit-identical with it on or off
	// -- and every call site sits at chunk or workload granularity,
	// so the access kernel stays allocation-free.
	Recorder telemetry.Recorder
}

// Result holds a completed sweep.
type Result struct {
	Arch synth.Arch
	// Runs maps point -> one run per workload, in catalog order.  With
	// ContinueOnError a failed (workload, point) pair is simply absent
	// from its point's slice; Errors says why.
	Runs map[Point][]metrics.Run
	// Summaries maps point -> the unweighted average across workloads.
	// With ContinueOnError a point that failed for some workloads is
	// averaged over its surviving runs (N says how many), and a point
	// with no surviving runs has no summary.
	Summaries map[Point]metrics.Summary
	// TracePasses counts full iterations over a workload's word trace
	// summed across workloads: len(Points) per workload for the
	// Reference engine, 1 per workload for MultiPass.  Workloads
	// restored from a checkpoint cost no passes.  The sweep benchmarks
	// report it as the single-pass kernel's headline saving.
	TracePasses int
	// Errors lists every attributed failure of a ContinueOnError
	// sweep, ordered by workload (catalog order), then point.  Empty
	// for a fully successful sweep; always empty under fail-fast,
	// where the first failure is returned as the sweep's error
	// instead.
	Errors []*PointError
	// Resumed counts workloads restored from the Checkpoint journal
	// rather than simulated.
	Resumed int
}

// Points returns the result's points sorted by net size, then by the
// Table 7 ordering (block descending, sub descending, demand before
// load-forward).
func (r *Result) Points() []Point {
	pts := make([]Point, 0, len(r.Summaries))
	for p := range r.Summaries {
		pts = append(pts, p)
	}
	sortPoints(pts)
	return pts
}

// pointLess is the canonical point ordering: net ascending, then the
// Table 7 layout (block descending, sub descending, demand first).
func pointLess(a, b Point) bool {
	if a.Net != b.Net {
		return a.Net < b.Net
	}
	if a.Block != b.Block {
		return a.Block > b.Block
	}
	if a.Sub != b.Sub {
		return a.Sub > b.Sub
	}
	return a.Fetch < b.Fetch
}

// sortPoints orders points canonically (see pointLess).
func sortPoints(pts []Point) {
	sort.Slice(pts, func(i, j int) bool { return pointLess(pts[i], pts[j]) })
}

// Run executes the sweep.
func Run(req Request) (*Result, error) {
	return RunContext(context.Background(), req)
}

// RunContext executes the sweep under a context: cancelling ctx aborts
// every worker promptly.  Under the default fail-fast policy the first
// failing point cancels the rest of the sweep and is returned as the
// error (panics included, recovered and attributed); with
// Request.ContinueOnError failures accumulate in Result.Errors
// instead.
func RunContext(ctx context.Context, req Request) (*Result, error) {
	if req.Refs <= 0 {
		return nil, fmt.Errorf("sweep: non-positive trace length %d", req.Refs)
	}
	if len(req.Points) == 0 {
		return nil, fmt.Errorf("sweep: no points requested")
	}
	profiles, err := selectWorkloads(req.Arch, req.Workloads)
	if err != nil {
		return nil, err
	}

	rec := telemetry.OrNop(req.Recorder)
	if rec.Enabled() {
		rec.Add(telemetry.PointsPlanned, uint64(len(req.Points)*len(profiles)))
		rec.Emit(&telemetry.Event{Type: telemetry.EventRunStart, RunStart: &telemetry.RunStart{
			Arch:       req.Arch.String(),
			Engine:     req.Engine.String(),
			Shards:     req.Shards,
			Points:     len(req.Points),
			Workloads:  len(profiles),
			Refs:       req.Refs,
			Checkpoint: req.Checkpoint != "",
		}})
	}

	var ck *ckState
	if req.Checkpoint != "" {
		fp, err := requestFingerprint(req)
		if err != nil {
			return nil, err
		}
		j, err := OpenJournal(req.Checkpoint)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		j.rec = rec
		ck = &ckState{j: j, fp: fp, points: req.Points}
	}

	par := req.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	// Pick the per-workload executor and the cross-workload
	// parallelism for the requested engine/shard strategy.
	var fn func(ctx context.Context, prof synth.Profile) (map[Point]metrics.Run, []*PointError)
	outer := par
	passesPerWorkload := 1
	switch req.Engine {
	case Reference:
		passesPerWorkload = len(req.Points)
		if req.Shards >= 1 {
			// Sharded streaming executor, one reference cache per point.
			outer, fn = shardedExecutor(req, profiles, par, Reference)
		} else {
			// Materialised per-point path: workloads sequential, points
			// parallel within each (the legacy baseline scheduling).
			outer = 1
			fn = func(ctx context.Context, prof synth.Profile) (map[Point]metrics.Run, []*PointError) {
				rec := telemetry.OrNop(req.Recorder)
				parent := telemetry.SpanFromContext(ctx)
				tsp := telemetry.StartSpan(rec, telemetry.Span{Name: "trace-read", Parent: parent, Workload: prof.Name})
				accesses, err := wordTrace(prof, req)
				if err != nil {
					tsp.EndErr(err.Error())
					return nil, workloadError(prof.Name, -1, err)
				}
				tsp.End()
				ssp := telemetry.StartSpan(rec, telemetry.Span{Name: "simulate", Parent: parent, Workload: prof.Name})
				defer ssp.End()
				return simulatePoints(ctx, prof.Name, accesses, req, par)
			}
		}
	case MultiPass, StackDist:
		eng := req.Engine
		if req.Shards < 0 {
			if outer > len(profiles) {
				outer = len(profiles)
			}
			fn = func(ctx context.Context, prof synth.Profile) (map[Point]metrics.Run, []*PointError) {
				return simulateOnePass(ctx, prof, req, eng)
			}
		} else {
			outer, fn = shardedExecutor(req, profiles, par, eng)
		}
	default:
		return nil, fmt.Errorf("sweep: unknown engine %v", req.Engine)
	}

	perProf, perrs, attempted, resumed, err := runWorkloads(ctx, profiles, req, ck, outer, fn)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Arch:      req.Arch,
		Runs:      make(map[Point][]metrics.Run, len(req.Points)),
		Summaries: make(map[Point]metrics.Summary, len(req.Points)),
		Resumed:   resumed,
	}
	for i, runs := range perProf {
		for p, run := range runs {
			res.Runs[p] = append(res.Runs[p], run)
		}
		if attempted[i] {
			res.TracePasses += passesPerWorkload
		}
	}
	for _, pes := range perrs {
		res.Errors = append(res.Errors, pes...)
	}
	for p, runs := range res.Runs {
		res.Summaries[p] = metrics.Average(runs)
	}
	return res, nil
}

// shardedExecutor returns the outer (cross-workload) parallelism and
// the per-workload function for the chunk-broadcast executor, for any
// engine (eng selects how configurations are planned into units).
func shardedExecutor(req Request, profiles []synth.Profile, par int, eng Engine) (int, func(context.Context, synth.Profile) (map[Point]metrics.Run, []*PointError)) {
	shards := req.Shards
	if shards == 0 {
		// Auto: spread the cores over the suite's concurrent workloads,
		// rounding up so a many-core box stays busy even when the suite
		// is small.
		shards = (par + len(profiles) - 1) / len(profiles)
	}
	if shards < 1 {
		shards = 1
	}
	outer := par / shards
	if outer < 1 {
		outer = 1
	}
	if outer > len(profiles) {
		outer = len(profiles)
	}
	fn := func(ctx context.Context, prof synth.Profile) (map[Point]metrics.Run, []*PointError) {
		return simulateSharded(ctx, prof, req, shards, eng)
	}
	return outer, fn
}

// runWorkloads executes fn once per profile with bounded parallelism,
// applying the sweep's failure policy and checkpointing:
//
//   - fail-fast (default): the first workload reporting an error
//     cancels its siblings, and the first error in profile order is
//     returned;
//   - ContinueOnError: per-workload errors accumulate and every other
//     workload completes;
//   - checkpointing: profiles present in the journal are restored
//     without simulation, and every cleanly completed workload is
//     recorded the moment it finishes.
//
// fn must return either complete runs for every point it does not
// report an error for, or nil runs plus workload-scope errors -- never
// half-counted partial counters.  A workload aborted by cancellation
// returns no runs and no errors (it is a casualty, not a cause).
func runWorkloads(
	ctx context.Context,
	profiles []synth.Profile,
	req Request,
	ck *ckState,
	outer int,
	fn func(context.Context, synth.Profile) (map[Point]metrics.Run, []*PointError),
) (perProf []map[Point]metrics.Run, perrs [][]*PointError, attempted []bool, resumed int, err error) {
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := len(profiles)
	perProf = make([]map[Point]metrics.Run, n)
	perrs = make([][]*PointError, n)
	attempted = make([]bool, n)
	var mu sync.Mutex // guards resumed

	rec := telemetry.OrNop(req.Recorder)
	var active atomic.Int64 // concurrent workload executors, for the gauge

	jobs := make(chan int)
	var wg sync.WaitGroup
	if outer > n {
		outer = n
	}
	if outer < 1 {
		outer = 1
	}
	for w := 0; w < outer; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue
				}
				prof := profiles[i]
				if runs, ok := ck.lookup(prof.Name); ok {
					perProf[i] = runs
					mu.Lock()
					resumed++
					mu.Unlock()
					rec.Add(telemetry.PointsResumed, uint64(len(runs)))
					sp := telemetry.StartSpan(rec, telemetry.Span{
						Name: "workload", Workload: prof.Name,
						Parent: telemetry.SpanFromContext(ctx), Detail: "resumed",
					})
					emitPointsDone(rec, prof.Name, req.Points, runs, true)
					sp.End()
					continue
				}
				attempted[i] = true
				rec.SetGauge(telemetry.ActiveWorkloads, active.Add(1))
				sp := telemetry.StartSpan(rec, telemetry.Span{
					Name: "workload", Workload: prof.Name,
					Parent: telemetry.SpanFromContext(ctx),
				})
				runs, pes := fn(telemetry.ContextWithSpan(ctx, sp.ID()), prof)
				rec.SetGauge(telemetry.ActiveWorkloads, active.Add(-1))
				perProf[i] = runs
				if runs != nil && len(pes) == 0 && ctx.Err() == nil {
					if ckErr := ck.record(prof.Name, runs); ckErr != nil {
						pes = append(pes, &PointError{Workload: prof.Name, Shard: -1, Cause: ckErr})
					}
				}
				perrs[i] = pes
				rec.Add(telemetry.PointsCompleted, uint64(len(runs)))
				emitPointsDone(rec, prof.Name, req.Points, runs, false)
				for _, pe := range pes {
					rec.Add(telemetry.PointsFailed, 1)
					rec.Emit(pe.event())
				}
				if len(pes) > 0 {
					sp.EndErr(pes[0].Cause.Error())
					if !req.ContinueOnError {
						cancel()
					}
				} else {
					sp.End()
				}
			}
		}()
	}
	for i := range profiles {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	if !req.ContinueOnError {
		for _, pes := range perrs {
			if len(pes) > 0 {
				return nil, nil, nil, 0, pes[0]
			}
		}
	}
	if cerr := parent.Err(); cerr != nil {
		return nil, nil, nil, 0, cerr
	}
	return perProf, perrs, attempted, resumed, nil
}

// emitPointsDone emits one point-done event per completed run, in the
// request's point order (run completion order is scheduling-dependent,
// the event stream should not be).
func emitPointsDone(rec telemetry.Recorder, workload string, points []Point, runs map[Point]metrics.Run, resumed bool) {
	if !rec.Enabled() {
		return
	}
	for _, p := range points {
		run, ok := runs[p]
		if !ok {
			continue
		}
		rec.Emit(&telemetry.Event{Type: telemetry.EventPointDone, PointDone: &telemetry.PointDone{
			Workload: workload,
			Point:    p.String(),
			Miss:     run.Miss,
			Traffic:  run.Traffic,
			Resumed:  resumed,
		}})
	}
}

// pointConfig resolves a point's full cache configuration under the
// request, applying any Override.
func pointConfig(p Point, req Request) cache.Config {
	cfg := p.Config(req.Arch)
	if req.Override != nil {
		req.Override(&cfg)
	}
	return cfg
}

// buildUnits groups the request's points into simulation units for the
// materialised single-pass path.  A unit whose construction fails is
// returned as a failure instead of a unit; under fail-fast the caller
// aborts on the first one.
func buildUnits(req Request, eng Engine) (units []*simUnit, failed []unitFailure) {
	cfgs := make([]cache.Config, len(req.Points))
	for i, p := range req.Points {
		cfgs[i] = pointConfig(p, req)
	}
	lists, _, failed := shardUnitLists(eng, cfgs, req.Points, 1, true)
	for _, us := range lists {
		units = append(units, us...)
	}
	return units, failed
}

// shardUnitLists realises an engine's plan over cfgs as per-shard unit
// lists plus the planner's per-shard cost estimates.  materialised
// attributes construction failures to shard -1 (the unsharded paths);
// otherwise to the owning shard index.  Lists may number fewer than
// shards when the planner cannot fill them all.
func shardUnitLists(eng Engine, cfgs []cache.Config, points []Point, shards int, materialised bool) (lists [][]*simUnit, costs []int, failed []unitFailure) {
	shardAt := func(si int) int {
		if materialised {
			return -1
		}
		return si
	}
	switch eng {
	case StackDist:
		// Stack groups fan out across shards by set partitioning;
		// configurations stack analysis refuses (stackdist.Supported)
		// ride the same pass on multipass families or reference caches,
		// planned over the leftover indexes and remapped back.
		splans, rest := stackdist.Partition(cfgs, shards)
		var mplans []multipass.ShardPlan
		if len(rest) > 0 {
			restCfgs := make([]cache.Config, len(rest))
			for i, k := range rest {
				restCfgs[i] = cfgs[k]
			}
			mplans = multipass.PartitionShards(restCfgs, shards)
			for pi := range mplans {
				for _, idxs := range mplans[pi].Families {
					for j, k := range idxs {
						idxs[j] = rest[k]
					}
				}
				for j, k := range mplans[pi].Rest {
					mplans[pi].Rest[j] = rest[k]
				}
			}
		}
		n := len(splans)
		if len(mplans) > n {
			n = len(mplans)
		}
		lists = make([][]*simUnit, n)
		costs = make([]int, n)
		for si := 0; si < n; si++ {
			if si < len(splans) {
				us, fs := planStackUnits(splans[si], cfgs, points, shardAt(si))
				lists[si] = append(lists[si], us...)
				failed = append(failed, fs...)
				costs[si] += splans[si].Cost()
			}
			if si < len(mplans) {
				us, fs := planUnits(mplans[si], cfgs, points, shardAt(si))
				lists[si] = append(lists[si], us...)
				failed = append(failed, fs...)
				costs[si] += mplans[si].Cost()
			}
		}
	case MultiPass:
		plans := multipass.PartitionShards(cfgs, shards)
		lists = make([][]*simUnit, len(plans))
		costs = make([]int, len(plans))
		for si, plan := range plans {
			us, fs := planUnits(plan, cfgs, points, shardAt(si))
			lists[si] = us
			failed = append(failed, fs...)
			costs[si] = plan.Cost()
		}
	default: // Reference
		plans := referencePlans(len(cfgs), shards)
		lists = make([][]*simUnit, len(plans))
		costs = make([]int, len(plans))
		for si, plan := range plans {
			us, fs := planUnits(plan, cfgs, points, shardAt(si))
			lists[si] = us
			failed = append(failed, fs...)
			costs[si] = plan.Cost()
		}
	}
	return lists, costs, failed
}

// planStackUnits realises one shard's stack units -- each a set
// partition of one stack group -- attributing construction failures to
// the given shard.
func planStackUnits(plan stackdist.Plan, cfgs []cache.Config, points []Point, shard int) (units []*simUnit, failed []unitFailure) {
	for _, u := range plan.Units {
		ucfgs := make([]cache.Config, len(u.Idxs))
		for j, k := range u.Idxs {
			ucfgs[j] = cfgs[k]
		}
		e, err := stackdist.NewEngine(ucfgs, u.Parts, u.Part)
		if err != nil {
			failed = append(failed, unitFailure{idxs: u.Idxs, shard: shard, gid: u.Gid + 1, cause: err})
			continue
		}
		units = append(units, &simUnit{stack: e, idxs: u.Idxs, pts: unitPoints(points, u.Idxs), gid: u.Gid + 1})
	}
	return units, failed
}

// planUnits realises one shard plan's families and fallback caches as
// simUnits, attributing construction failures to the given shard.
func planUnits(plan multipass.ShardPlan, cfgs []cache.Config, points []Point, shard int) (units []*simUnit, failed []unitFailure) {
	for _, idxs := range plan.Families {
		fcfgs := make([]cache.Config, len(idxs))
		for j, k := range idxs {
			fcfgs[j] = cfgs[k]
		}
		fam, err := multipass.New(fcfgs)
		if err != nil {
			failed = append(failed, unitFailure{idxs: idxs, shard: shard, cause: err})
			continue
		}
		units = append(units, &simUnit{fam: fam, idxs: idxs, pts: unitPoints(points, idxs)})
	}
	for _, k := range plan.Rest {
		c, err := cache.New(cfgs[k])
		if err != nil {
			failed = append(failed, unitFailure{idxs: []int{k}, shard: shard, cause: err})
			continue
		}
		units = append(units, &simUnit{cache: c, idxs: []int{k}, pts: unitPoints(points, []int{k})})
	}
	return units, failed
}

// unitPoints resolves the points a unit carries; nil when the caller
// has no point vocabulary (RunConfigs).
func unitPoints(points []Point, idxs []int) []Point {
	if points == nil {
		return nil
	}
	pts := make([]Point, len(idxs))
	for j, k := range idxs {
		pts[j] = points[k]
	}
	return pts
}

// simulateOnePass evaluates every requested point over one workload in
// a single iteration of its materialised word trace, planned by eng:
// stack-distance engines (StackDist), shared-tag-engine families
// (MultiPass, and StackDist's fallback for refused configurations), and
// individual reference caches for the rest, all fed from the same loop.
// A panicking unit is retired with its points attributed; surviving
// units consume the complete trace and stay bit-identical.
func simulateOnePass(ctx context.Context, prof synth.Profile, req Request, eng Engine) (map[Point]metrics.Run, []*PointError) {
	rec := telemetry.OrNop(req.Recorder)
	parent := telemetry.SpanFromContext(ctx)
	tsp := telemetry.StartSpan(rec, telemetry.Span{Name: "trace-read", Parent: parent, Workload: prof.Name})
	accesses, err := wordTrace(prof, req)
	if err != nil {
		tsp.EndErr(err.Error())
		return nil, workloadError(prof.Name, -1, err)
	}
	tsp.End()

	units, failed := buildUnits(req, eng)
	if len(failed) > 0 && !req.ContinueOnError {
		return nil, pointErrors(prof.Name, req.Points, failed[:1])
	}

	enabled := rec.Enabled()
	var simStart time.Time
	var simRefs uint64
	if enabled {
		simStart = time.Now()
	}
	ssp := telemetry.StartSpan(rec, telemetry.Span{Name: "simulate", Parent: parent, Workload: prof.Name})
	defer ssp.End()

	// The single pass: every live unit sees each access once, fed in
	// trace.ChunkRefs-sized batches.  A cancelled sweep (sibling
	// failure or caller abort) is noticed at every chunk boundary.
	live := len(units)
	chunk := 0
	packs := newPackSet(units)
	for off := 0; off < len(accesses) && live > 0; off += trace.ChunkRefs {
		if ctx.Err() != nil {
			return nil, pointErrors(prof.Name, req.Points, failed)
		}
		end := off + trace.ChunkRefs
		if end > len(accesses) {
			end = len(accesses)
		}
		batch := accesses[off:end]
		packs.next()
		for _, u := range units {
			if u.dead {
				continue
			}
			if uerr := u.accessBatch(batch, packs.forUnit(u, batch), req.Hooks, prof.Name, -1, chunk); uerr != nil {
				u.dead = true
				live--
				failed = append(failed, unitFailure{idxs: u.idxs, shard: -1, gid: u.gid, cause: uerr})
				if !req.ContinueOnError {
					return nil, pointErrors(prof.Name, req.Points, failed[len(failed)-1:])
				}
				continue
			}
			simRefs += uint64(len(batch))
		}
		chunk++
	}
	if enabled {
		rec.Observe(telemetry.StageSimulate, time.Since(simStart))
		rec.Add(telemetry.RefsSimulated, simRefs)
	}
	ssp.End()

	var flushStart time.Time
	var families, stacks uint64
	if enabled {
		flushStart = time.Now()
	}
	fsp := telemetry.StartSpan(rec, telemetry.Span{Name: "flush", Parent: parent, Workload: prof.Name})
	defer fsp.End()
	out := make(map[Point]metrics.Run, len(req.Points))
	runs := make([]metrics.Run, len(req.Points))
	for _, u := range units {
		if u.dead {
			continue
		}
		if uerr := u.collect(prof.Name, runs); uerr != nil {
			failed = append(failed, unitFailure{idxs: u.idxs, shard: -1, gid: u.gid, cause: uerr})
			if !req.ContinueOnError {
				return nil, pointErrors(prof.Name, req.Points, failed[len(failed)-1:])
			}
			continue
		}
		switch {
		case u.fam != nil:
			families++
		case u.stack != nil:
			stacks++
		}
		for _, k := range u.idxs {
			out[req.Points[k]] = runs[k]
		}
	}
	if enabled {
		rec.Observe(telemetry.StageFlush, time.Since(flushStart))
		rec.Add(telemetry.FamiliesFlushed, families)
		rec.Add(telemetry.StackUnitsFlushed, stacks)
	}
	return out, pointErrors(prof.Name, req.Points, failed)
}

// selectWorkloads resolves the request's workload list.
func selectWorkloads(arch synth.Arch, names []string) ([]synth.Profile, error) {
	all := synth.Workloads(arch)
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]synth.Profile, len(all))
	for _, p := range all {
		byName[p.Name] = p
	}
	out := make([]synth.Profile, 0, len(names))
	for _, n := range names {
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("sweep: workload %q not in %v suite", n, arch)
		}
		out = append(out, p)
	}
	return out, nil
}

// wordTrace materialises a profile's trace, pre-split to word accesses,
// so every configuration replays identical input.  The request's
// WrapSource hook (if any) wraps the word stream, and a panicking
// source is recovered into an error.
func wordTrace(prof synth.Profile, req Request) (refs []trace.Ref, err error) {
	src, err := synth.NewWordSource(prof, req.Refs, req.Arch.WordSize())
	if err != nil {
		return nil, err
	}
	rec := telemetry.OrNop(req.Recorder)
	var readStart time.Time
	if rec.Enabled() {
		readStart = time.Now()
	}
	wrapped := req.Hooks.wrapSource(prof.Name, src)
	ferr := safeCall(func() {
		buf := make([]trace.Ref, trace.ChunkRefs)
		for {
			n, rerr := trace.ReadChunk(wrapped, buf)
			refs = append(refs, buf[:n]...)
			if rerr != nil {
				if rerr != io.EOF {
					err = rerr
				}
				return
			}
		}
	})
	if ferr != nil {
		return nil, ferr
	}
	if err != nil {
		return nil, err
	}
	if rec.Enabled() {
		rec.Observe(telemetry.StageTraceRead, time.Since(readStart))
		rec.Add(telemetry.RefsRead, uint64(len(refs)))
		if bc, ok := wrapped.(trace.ByteCounter); ok {
			rec.Add(telemetry.BytesRead, bc.Bytes())
		}
	}
	return refs, nil
}

// simulatePoints runs every point over one workload's accesses, with
// bounded parallelism: the Reference engine's materialised path.
// Under fail-fast the first error cancels the remaining work (workers
// drain the job queue without simulating and abort an in-flight replay
// at the next chunk boundary); with ContinueOnError failed points are
// reported and the rest complete.  Worker panics are recovered and
// attributed to their exact point.
func simulatePoints(ctx context.Context, name string, accesses []trace.Ref, req Request, par int) (map[Point]metrics.Run, []*PointError) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type job struct {
		point Point
		run   metrics.Run
		err   error
	}
	jobs := make(chan Point)
	results := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				if ctx.Err() != nil {
					continue
				}
				run, completed, jerr := simulateOnePoint(ctx, name, accesses, p, req)
				if jerr != nil {
					results <- job{point: p, err: jerr}
					continue
				}
				if completed {
					results <- job{point: p, run: run}
				}
			}
		}()
	}
	go func() {
		for _, p := range req.Points {
			jobs <- p
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	out := make(map[Point]metrics.Run, len(req.Points))
	var failed []*PointError
	for j := range results {
		if j.err != nil {
			failed = append(failed, &PointError{Workload: name, Point: j.point, Shard: -1, Cause: j.err})
			if !req.ContinueOnError {
				cancel()
			}
			continue
		}
		out[j.point] = j.run
	}
	// Completion order is scheduling-dependent; report errors in the
	// deterministic Table 7 point order.
	sort.Slice(failed, func(i, j int) bool {
		return pointLess(failed[i].Point, failed[j].Point)
	})
	return out, failed
}

// simulateOnePoint replays one workload's accesses through one point's
// cache inside a recovery boundary.  completed is false when the
// replay was abandoned at a chunk boundary due to cancellation.
func simulateOnePoint(ctx context.Context, name string, accesses []trace.Ref, p Point, req Request) (run metrics.Run, completed bool, err error) {
	rec := telemetry.OrNop(req.Recorder)
	var simStart time.Time
	if rec.Enabled() {
		simStart = time.Now()
	}
	ferr := safeCall(func() {
		cfg := pointConfig(p, req)
		c, cerr := cache.New(cfg)
		if cerr != nil {
			err = cerr
			return
		}
		pts := []Point{p}
		chunk := 0
		for off := 0; off < len(accesses); off += trace.ChunkRefs {
			if ctx.Err() != nil {
				return
			}
			if req.Hooks != nil && req.Hooks.BeforeUnit != nil {
				req.Hooks.BeforeUnit(name, -1, pts, chunk)
			}
			end := off + trace.ChunkRefs
			if end > len(accesses) {
				end = len(accesses)
			}
			c.AccessBatch(accesses[off:end])
			chunk++
		}
		c.FlushUsage()
		run = metrics.NewRun(name, cfg, c.Stats())
		completed = true
	})
	if completed && rec.Enabled() {
		rec.Observe(telemetry.StageSimulate, time.Since(simStart))
		rec.Add(telemetry.RefsSimulated, uint64(len(accesses)))
	}
	if ferr != nil {
		return metrics.Run{}, false, ferr
	}
	return run, completed, err
}

// RunOne simulates a single workload through a single configuration:
// the facade's simple path and a convenience for tests.  The trace is
// streamed straight from the generator, never materialised.
func RunOne(prof synth.Profile, cfg cache.Config, refs int) (metrics.Run, error) {
	return RunOneContext(context.Background(), prof, cfg, refs)
}

// RunOneContext is RunOne honoring a context: cancellation or deadline
// expiry aborts the replay at the next chunk boundary with ctx's
// error, exactly as RunContext does for full sweeps.
func RunOneContext(ctx context.Context, prof synth.Profile, cfg cache.Config, refs int) (metrics.Run, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return metrics.Run{}, err
	}
	src, err := synth.NewWordSource(prof, refs, cfg.WordSize)
	if err != nil {
		return metrics.Run{}, err
	}
	if err := c.Run(trace.WithContext(ctx, src)); err != nil {
		return metrics.Run{}, err
	}
	return metrics.NewRun(prof.Name, cfg, c.Stats()), nil
}
