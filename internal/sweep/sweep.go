// Package sweep runs families of cache configurations over workload
// suites: the harness behind every table and figure reproduction.
//
// A sweep generates each workload's trace once, splits it to data-path
// words once, and replays it through every requested cache organisation
// in parallel.  Results come back as metrics.Run values keyed by
// (workload, point) plus unweighted per-architecture averages, the
// paper's aggregation (§3.3).
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"subcache/internal/cache"
	"subcache/internal/metrics"
	"subcache/internal/multipass"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

// Engine selects how a sweep simulates its points.
type Engine int

const (
	// Reference replays the trace through one cache.Cache per point:
	// one trace pass per (workload, point) pair, parallel across points.
	Reference Engine = iota
	// MultiPass makes a single pass over each workload's trace, feeding
	// every point simultaneously: points whose tag dynamics are
	// sub-block-invariant (cache.Config.MultiPassSafe) are grouped into
	// multipass.Family kernels sharing one tag engine per (net, block)
	// family, and the rest ride the same pass as individual reference
	// caches.  Results are bit-identical to Reference; parallelism moves
	// from points to workloads.
	MultiPass
)

// String returns the engine name used by the -engine CLI flag.
func (e Engine) String() string {
	switch e {
	case Reference:
		return "reference"
	case MultiPass:
		return "multipass"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine converts a CLI flag value into an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "reference":
		return Reference, nil
	case "multipass":
		return MultiPass, nil
	default:
		return 0, fmt.Errorf("sweep: unknown engine %q (want reference or multipass)", s)
	}
}

// Point is one cache organisation within a sweep, in the paper's
// (net, block, sub-block) coordinates plus the fetch policy.
type Point struct {
	Net, Block, Sub int
	Fetch           cache.Fetch
}

// String renders the point in the paper's notation, e.g. "1024:16,8" or
// "256:16,2,LF".
func (p Point) String() string {
	s := fmt.Sprintf("%d:%d,%d", p.Net, p.Block, p.Sub)
	switch p.Fetch {
	case cache.LoadForward:
		s += ",LF"
	case cache.LoadForwardOptimized:
		s += ",LFopt"
	case cache.WholeBlock:
		s += ",WB"
	}
	return s
}

// Table 1's parameter ranges.
const (
	minBlock = 2
	maxBlock = 64
	minSub   = 2
	maxSub   = 32
)

// Grid enumerates the paper's Table 1 design grid for the given net
// sizes on a machine with the given word size: block sizes 2-64 bytes,
// sub-block sizes 2-32 bytes, sub-block <= block <= net, and sub-block
// at least one data-path word.  Points are ordered largest block first,
// then largest sub-block, matching Table 7's layout.
func Grid(netSizes []int, wordSize int) []Point {
	var pts []Point
	for _, net := range netSizes {
		for block := maxBlock; block >= minBlock; block /= 2 {
			if block > net {
				continue
			}
			for sub := maxSub; sub >= minSub; sub /= 2 {
				if sub > block || sub < wordSize {
					continue
				}
				if block == maxBlock && sub > 16 {
					// Table 7 stops 64-byte blocks at 16-byte
					// sub-blocks (Table 1 caps sub-blocks at 32, and
					// the paper reports no 64,32 point).
					continue
				}
				pts = append(pts, Point{Net: net, Block: block, Sub: sub})
			}
		}
	}
	return pts
}

// Config converts a point into a full cache configuration for an
// architecture, applying the paper's fixed choices: 4-way
// set-associative (capped at the block count for tiny caches), LRU,
// write-allocate, warm-start for the Z8000.
func (p Point) Config(arch synth.Arch) cache.Config {
	assoc := 4
	if frames := p.Net / p.Block; frames < assoc {
		assoc = frames
	}
	return cache.Config{
		NetSize:      p.Net,
		BlockSize:    p.Block,
		SubBlockSize: p.Sub,
		Assoc:        assoc,
		WordSize:     arch.WordSize(),
		Replacement:  cache.LRU,
		Fetch:        p.Fetch,
		Write:        cache.WriteAllocate,
		WarmStart:    arch.WarmStart(),
	}
}

// Request describes one sweep.
type Request struct {
	// Arch selects the workload suite and word size.
	Arch synth.Arch
	// Points are the organisations to simulate.
	Points []Point
	// Refs is the trace length per workload (the paper uses 1,000,000).
	Refs int
	// Workloads optionally restricts the suite to the named workloads
	// (e.g. the load-forward study's CCP, C1, C2); nil means all.
	Workloads []string
	// Override, if non-nil, adjusts each derived cache.Config before
	// simulation (used by the ablation benches to change replacement
	// policy, associativity or warm-start handling).
	Override func(*cache.Config)
	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int
	// Engine selects the simulation strategy; the zero value is the
	// per-point Reference engine.  MultiPass produces bit-identical
	// results in far fewer trace passes (see Result.TracePasses).
	Engine Engine
	// Shards selects intra-workload parallelism.  With Shards >= 1 each
	// workload's families and fallback caches are partitioned across
	// that many shard workers, all fed from a single chunk-broadcast
	// trace generation (every cache still sees the complete ordered
	// stream, so results stay bit-identical; the trace is streamed, not
	// materialised).  0, the default, picks a machine-appropriate shard
	// count for the MultiPass engine and keeps the Reference engine on
	// its materialised per-point path, preserving it as an independent
	// baseline.  Negative forces the materialised-trace paths for both
	// engines (the differential baselines).
	Shards int
}

// Result holds a completed sweep.
type Result struct {
	Arch synth.Arch
	// Runs maps point -> one run per workload, in catalog order.
	Runs map[Point][]metrics.Run
	// Summaries maps point -> the unweighted average across workloads.
	Summaries map[Point]metrics.Summary
	// TracePasses counts full iterations over a workload's word trace
	// summed across workloads: len(Points) per workload for the
	// Reference engine, 1 per workload for MultiPass.  The sweep
	// benchmarks report it as the single-pass kernel's headline saving.
	TracePasses int
}

// Points returns the result's points sorted by net size, then by the
// Table 7 ordering (block descending, sub descending, demand before
// load-forward).
func (r *Result) Points() []Point {
	pts := make([]Point, 0, len(r.Summaries))
	for p := range r.Summaries {
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		if a.Block != b.Block {
			return a.Block > b.Block
		}
		if a.Sub != b.Sub {
			return a.Sub > b.Sub
		}
		return a.Fetch < b.Fetch
	})
	return pts
}

// Run executes the sweep.
func Run(req Request) (*Result, error) {
	return RunContext(context.Background(), req)
}

// RunContext executes the sweep under a context: cancelling ctx aborts
// every worker promptly, and the first failing point cancels the rest
// of the sweep.
func RunContext(ctx context.Context, req Request) (*Result, error) {
	if req.Refs <= 0 {
		return nil, fmt.Errorf("sweep: non-positive trace length %d", req.Refs)
	}
	if len(req.Points) == 0 {
		return nil, fmt.Errorf("sweep: no points requested")
	}
	profiles, err := selectWorkloads(req.Arch, req.Workloads)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Arch:      req.Arch,
		Runs:      make(map[Point][]metrics.Run, len(req.Points)),
		Summaries: make(map[Point]metrics.Summary, len(req.Points)),
	}
	par := req.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	switch req.Engine {
	case Reference:
		if req.Shards >= 1 {
			// Sharded streaming executor, one reference cache per point.
			perProf, err := simulateShardedAll(ctx, profiles, req, par, false)
			if err != nil {
				return nil, err
			}
			for _, runs := range perProf {
				for p, run := range runs {
					res.Runs[p] = append(res.Runs[p], run)
				}
				res.TracePasses += len(req.Points)
			}
			break
		}
		for _, prof := range profiles {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			accesses, err := wordTrace(prof, req.Refs, req.Arch.WordSize())
			if err != nil {
				return nil, err
			}
			runs, err := simulatePoints(ctx, prof.Name, accesses, req, par)
			if err != nil {
				return nil, err
			}
			for p, run := range runs {
				res.Runs[p] = append(res.Runs[p], run)
			}
			res.TracePasses += len(req.Points)
		}
	case MultiPass:
		var perProf []map[Point]metrics.Run
		if req.Shards < 0 {
			perProf, err = simulateOnePassAll(ctx, profiles, req, par)
		} else {
			perProf, err = simulateShardedAll(ctx, profiles, req, par, true)
		}
		if err != nil {
			return nil, err
		}
		for _, runs := range perProf {
			for p, run := range runs {
				res.Runs[p] = append(res.Runs[p], run)
			}
			res.TracePasses++
		}
	default:
		return nil, fmt.Errorf("sweep: unknown engine %v", req.Engine)
	}
	for p, runs := range res.Runs {
		res.Summaries[p] = metrics.Average(runs)
	}
	return res, nil
}

// pointConfig resolves a point's full cache configuration under the
// request, applying any Override.
func pointConfig(p Point, req Request) cache.Config {
	cfg := p.Config(req.Arch)
	if req.Override != nil {
		req.Override(&cfg)
	}
	return cfg
}

// simulateOnePassAll runs every workload through the single-pass engine
// with bounded parallelism across workloads (each worker owns one
// workload's trace at a time).  The returned slice is in profile order,
// so per-point run lists keep the catalog order the Reference engine
// produces.
func simulateOnePassAll(ctx context.Context, profiles []synth.Profile, req Request, par int) ([]map[Point]metrics.Run, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	perProf := make([]map[Point]metrics.Run, len(profiles))
	errs := make([]error, len(profiles))
	jobs := make(chan int)
	var wg sync.WaitGroup
	if par > len(profiles) {
		par = len(profiles)
	}
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue
				}
				perProf[i], errs[i] = simulateOnePass(ctx, profiles[i], req)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	for i := range profiles {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return perProf, nil
}

// simulateOnePass evaluates every requested point over one workload in
// a single iteration of its word trace.  MultiPassSafe points are
// grouped by cache.Config.FamilyKey into shared-tag-engine families;
// the rest are simulated by individual reference caches fed from the
// same loop.
func simulateOnePass(ctx context.Context, prof synth.Profile, req Request) (map[Point]metrics.Run, error) {
	accesses, err := wordTrace(prof, req.Refs, req.Arch.WordSize())
	if err != nil {
		return nil, err
	}

	cfgs := make([]cache.Config, len(req.Points))
	for i, p := range req.Points {
		cfgs[i] = pointConfig(p, req)
	}
	groups, rest := multipass.Group(cfgs)
	families := make([]*multipass.Family, len(groups))
	for i, idxs := range groups {
		fcfgs := make([]cache.Config, len(idxs))
		for j, k := range idxs {
			fcfgs[j] = cfgs[k]
		}
		fam, err := multipass.New(fcfgs)
		if err != nil {
			return nil, fmt.Errorf("sweep: %v: %w", req.Points[idxs[0]], err)
		}
		families[i] = fam
	}
	fallbacks := make([]*cache.Cache, len(rest))
	for i, k := range rest {
		c, err := cache.New(cfgs[k])
		if err != nil {
			return nil, fmt.Errorf("sweep: %v: %w", req.Points[k], err)
		}
		fallbacks[i] = c
	}

	// The single pass: every family and every fallback cache sees each
	// access once, fed in trace.ChunkRefs-sized batches so the kernels
	// iterate a slice instead of paying a call per reference.  A
	// cancelled sweep (sibling failure or caller abort) is noticed at
	// every chunk boundary.
	for off := 0; off < len(accesses); off += trace.ChunkRefs {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		batch := accesses[off:min(off+trace.ChunkRefs, len(accesses))]
		for _, fam := range families {
			fam.AccessBatch(batch)
		}
		for _, c := range fallbacks {
			c.AccessBatch(batch)
		}
	}

	out := make(map[Point]metrics.Run, len(req.Points))
	for i, fam := range families {
		fam.FlushUsage()
		for j, k := range groups[i] {
			out[req.Points[k]] = metrics.NewRun(prof.Name, fam.Config(j), fam.Stats(j))
		}
	}
	for i, c := range fallbacks {
		c.FlushUsage()
		out[req.Points[rest[i]]] = metrics.NewRun(prof.Name, c.Config(), c.Stats())
	}
	return out, nil
}

// selectWorkloads resolves the request's workload list.
func selectWorkloads(arch synth.Arch, names []string) ([]synth.Profile, error) {
	all := synth.Workloads(arch)
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]synth.Profile, len(all))
	for _, p := range all {
		byName[p.Name] = p
	}
	out := make([]synth.Profile, 0, len(names))
	for _, n := range names {
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("sweep: workload %q not in %v suite", n, arch)
		}
		out = append(out, p)
	}
	return out, nil
}

// wordTrace materialises a profile's trace, pre-split to word accesses,
// so every configuration replays identical input.
func wordTrace(prof synth.Profile, refs, wordSize int) ([]trace.Ref, error) {
	g, err := synth.NewGenerator(prof, refs)
	if err != nil {
		return nil, err
	}
	return trace.SplitAll(g, wordSize)
}

// simulatePoints runs every point over one workload's accesses, with
// bounded parallelism.  The first error cancels the remaining work:
// workers drain the job queue without simulating and abort an
// in-flight replay at the next chunk boundary, instead of replaying
// the full trace for every remaining point.
func simulatePoints(ctx context.Context, name string, accesses []trace.Ref, req Request, par int) (map[Point]metrics.Run, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type job struct {
		point Point
		run   metrics.Run
		err   error
	}
	jobs := make(chan Point)
	results := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				if ctx.Err() != nil {
					continue
				}
				cfg := pointConfig(p, req)
				c, err := cache.New(cfg)
				if err != nil {
					results <- job{point: p, err: fmt.Errorf("sweep: %v: %w", p, err)}
					continue
				}
				aborted := false
				for off := 0; off < len(accesses); off += trace.ChunkRefs {
					if ctx.Err() != nil {
						aborted = true
						break
					}
					c.AccessBatch(accesses[off:min(off+trace.ChunkRefs, len(accesses))])
				}
				if aborted {
					continue
				}
				c.FlushUsage()
				results <- job{point: p, run: metrics.NewRun(name, cfg, c.Stats())}
			}
		}()
	}
	go func() {
		for _, p := range req.Points {
			jobs <- p
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	out := make(map[Point]metrics.Run, len(req.Points))
	var firstErr error
	for j := range results {
		if j.err != nil {
			if firstErr == nil {
				firstErr = j.err
				cancel()
			}
			continue
		}
		out[j.point] = j.run
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// RunOne simulates a single workload through a single configuration:
// the facade's simple path and a convenience for tests.  The trace is
// streamed straight from the generator, never materialised.
func RunOne(prof synth.Profile, cfg cache.Config, refs int) (metrics.Run, error) {
	c, err := cache.New(cfg)
	if err != nil {
		return metrics.Run{}, err
	}
	src, err := synth.NewWordSource(prof, refs, cfg.WordSize)
	if err != nil {
		return metrics.Run{}, err
	}
	if err := c.Run(src); err != nil {
		return metrics.Run{}, err
	}
	return metrics.NewRun(prof.Name, cfg, c.Stats()), nil
}
