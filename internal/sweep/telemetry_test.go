package sweep

import (
	"bytes"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"subcache/internal/synth"
	"subcache/internal/telemetry"
	"subcache/internal/trace"
)

// captureSink collects emitted events in memory.
type captureSink struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (c *captureSink) Write(ev *telemetry.Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, *ev)
	return nil
}

func (c *captureSink) Close() error { return nil }

func (c *captureSink) byType(typ string) []telemetry.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []telemetry.Event
	for _, ev := range c.events {
		if ev.Type == typ {
			out = append(out, ev)
		}
	}
	return out
}

// telemetryRequest is the shared shape of this file's sweeps: big
// enough to span multiple trace chunks, sharded wider than the
// machine so the race detector sees real contention.
func telemetryRequest() Request {
	return Request{
		Arch:   synth.PDP11,
		Points: Grid([]int{64, 256}, 2),
		Refs:   2*trace.ChunkRefs + 100,
		Engine: MultiPass,
		Shards: 8,
	}
}

// TestTelemetryDoesNotPerturbResults is the package's observation-only
// contract (named in the telemetry package doc): results with a live
// recorder attached are bit-identical to results without one.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	plain, err := Run(telemetryRequest())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	rec := telemetry.NewRun(telemetry.Options{Sink: telemetry.NewJSONLSink(&buf)})
	req := telemetryRequest()
	req.Recorder = rec
	instr, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(instr.Runs, plain.Runs) {
		t.Error("instrumented Runs differ from uninstrumented")
	}
	if !reflect.DeepEqual(instr.Summaries, plain.Summaries) {
		t.Error("instrumented Summaries differ from uninstrumented")
	}
	if instr.TracePasses != plain.TracePasses {
		t.Errorf("TracePasses = %d, want %d", instr.TracePasses, plain.TracePasses)
	}
}

// TestTelemetryCountersDeterministic: two identical instrumented runs
// count exactly the same work (the counters are work measures, not
// timing measures), the counters obey the run's structure, and the
// emitted stream is schema-valid.
func TestTelemetryCountersDeterministic(t *testing.T) {
	run := func() (*telemetry.Snapshot, *bytes.Buffer, *Result) {
		var buf bytes.Buffer
		sink := telemetry.NewJSONLSink(&buf)
		rec := telemetry.NewRun(telemetry.Options{Sink: sink})
		req := telemetryRequest()
		req.Recorder = rec
		res, err := Run(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		return rec.Snapshot(), &buf, res
	}

	s1, buf1, res := run()
	s2, _, _ := run()
	if !reflect.DeepEqual(s1.Counters, s2.Counters) {
		t.Errorf("counters differ across identical runs\n run 1: %v\n run 2: %v", s1.Counters, s2.Counters)
	}

	req := telemetryRequest()
	workloads := len(synth.Workloads(req.Arch))
	planned := uint64(len(req.Points) * workloads)
	if got := s1.Counter(telemetry.PointsPlanned); got != planned {
		t.Errorf("points_planned = %d, want %d", got, planned)
	}
	if got := s1.Counter(telemetry.PointsCompleted); got != planned {
		t.Errorf("points_completed = %d, want %d (no failures injected)", got, planned)
	}
	if s1.Counter(telemetry.PointsFailed) != 0 || s1.Counter(telemetry.EventsDropped) != 0 {
		t.Errorf("clean run counted failures: %v", s1.Counters)
	}
	// Every workload's word trace is read once and feeds every unit, so
	// refs_simulated is a whole multiple of refs_read.
	refsRead := s1.Counter(telemetry.RefsRead)
	refsSim := s1.Counter(telemetry.RefsSimulated)
	if refsRead == 0 || refsSim == 0 || refsSim%refsRead != 0 {
		t.Errorf("refs_simulated %d not a multiple of refs_read %d", refsSim, refsRead)
	}
	if s1.Counter(telemetry.ChunksBroadcast) == 0 {
		t.Error("sharded run broadcast no chunks")
	}
	if s1.Counter(telemetry.BytesRead) != 0 {
		t.Errorf("synthetic run counted bytes_read = %d", s1.Counter(telemetry.BytesRead))
	}
	// Shard aggregates cover the fed references exactly once per shard.
	var shardRefs uint64
	for _, sh := range s1.Shards {
		shardRefs += sh.Refs
	}
	if want := refsRead * uint64(len(s1.Shards)); shardRefs != want {
		t.Errorf("shard refs sum to %d, want refs_read x shards = %d", shardRefs, want)
	}

	// The stream is schema-valid and structurally complete: one
	// run-start, one point-done per completed pair, one shard-stat per
	// (workload, shard).
	st, err := telemetry.ValidateStream(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatalf("emitted stream invalid: %v", err)
	}
	if st.ByType[telemetry.EventRunStart] != 1 {
		t.Errorf("run-start events = %d, want 1", st.ByType[telemetry.EventRunStart])
	}
	if got := st.ByType[telemetry.EventPointDone]; got != int(planned) {
		t.Errorf("point-done events = %d, want %d", got, planned)
	}
	if got := st.ByType[telemetry.EventShardStat]; got != workloads*req.Shards {
		t.Errorf("shard-stat events = %d, want %d", got, workloads*req.Shards)
	}
	if st.ByType[telemetry.EventErrorAttributed] != 0 {
		t.Errorf("clean run emitted %d error events", st.ByType[telemetry.EventErrorAttributed])
	}
	_ = res
}

// TestTelemetryCheckpointCounters: the first run journals one record
// per workload; a resumed run restores every pair, counting resumes
// instead of completions and marking its point-done events.
func TestTelemetryCheckpointCounters(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "sweep.ckpt")
	pts := []Point{
		{Net: 256, Block: 16, Sub: 8},
		{Net: 256, Block: 16, Sub: 2},
		{Net: 1024, Block: 16, Sub: 8},
	}
	base := Request{Arch: synth.PDP11, Points: pts, Refs: 20000, Engine: MultiPass, Checkpoint: ck}
	workloads := uint64(len(synth.Workloads(base.Arch)))
	planned := uint64(len(pts)) * workloads

	sink1 := &captureSink{}
	rec1 := telemetry.NewRun(telemetry.Options{Sink: sink1})
	req := base
	req.Recorder = rec1
	if _, err := Run(req); err != nil {
		t.Fatal(err)
	}
	rec1.Close()
	s1 := rec1.Snapshot()
	if got := s1.Counter(telemetry.CheckpointRecords); got != workloads {
		t.Errorf("first run checkpoint_records = %d, want %d", got, workloads)
	}
	if s1.Counter(telemetry.CheckpointFsyncNanos) == 0 {
		t.Error("first run recorded no fsync time")
	}
	if s1.Counter(telemetry.PointsResumed) != 0 || s1.Counter(telemetry.PointsCompleted) != planned {
		t.Errorf("first run resumed/completed = %d/%d, want 0/%d",
			s1.Counter(telemetry.PointsResumed), s1.Counter(telemetry.PointsCompleted), planned)
	}

	sink2 := &captureSink{}
	rec2 := telemetry.NewRun(telemetry.Options{Sink: sink2})
	req = base
	req.Recorder = rec2
	res, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	rec2.Close()
	if res.Resumed != int(workloads) {
		t.Fatalf("second run resumed %d workloads, want %d", res.Resumed, workloads)
	}
	s2 := rec2.Snapshot()
	if got := s2.Counter(telemetry.PointsResumed); got != planned {
		t.Errorf("second run points_resumed = %d, want %d", got, planned)
	}
	if s2.Counter(telemetry.PointsCompleted) != 0 || s2.Counter(telemetry.CheckpointRecords) != 0 {
		t.Errorf("second run completed/records = %d/%d, want 0/0",
			s2.Counter(telemetry.PointsCompleted), s2.Counter(telemetry.CheckpointRecords))
	}
	done := sink2.byType(telemetry.EventPointDone)
	if len(done) != int(planned) {
		t.Fatalf("second run point-done events = %d, want %d", len(done), planned)
	}
	for _, ev := range done {
		if !ev.PointDone.Resumed {
			t.Errorf("resumed run emitted unresumed point-done: %+v", ev.PointDone)
		}
	}
}

// byteCountingSource wraps a source, implementing trace.ByteCounter
// with a synthetic 4 bytes per reference, and mirrors every increment
// into a shared total the test can compare against.
type byteCountingSource struct {
	src   trace.Source
	n     uint64
	total *atomic.Uint64
}

func (b *byteCountingSource) Next() (trace.Ref, error) {
	r, err := b.src.Next()
	if err == nil {
		b.n += 4
		b.total.Add(4)
	}
	return r, err
}

func (b *byteCountingSource) Bytes() uint64 { return b.n }

// TestTelemetryBytesRead: when a workload's source reports decoded
// bytes (the file readers do, via trace.ByteCounter), the sweep
// publishes them as bytes_read; the hook layer is how a test source
// gets into the pipeline.
func TestTelemetryBytesRead(t *testing.T) {
	var total atomic.Uint64
	rec := telemetry.NewRun(telemetry.Options{})
	req := telemetryRequest()
	req.Shards = 2
	req.Recorder = rec
	req.Hooks = &Hooks{WrapSource: func(workload string, src trace.Source) trace.Source {
		return &byteCountingSource{src: src, total: &total}
	}}
	if _, err := Run(req); err != nil {
		t.Fatal(err)
	}
	rec.Close()
	s := rec.Snapshot()
	if got, want := s.Counter(telemetry.BytesRead), total.Load(); want == 0 || got != want {
		t.Errorf("bytes_read = %d, want %d (>0)", got, want)
	}
	// The synthetic 4 bytes/ref makes the cross-check exact.
	if got, want := s.Counter(telemetry.BytesRead), 4*s.Counter(telemetry.RefsRead); got != want {
		t.Errorf("bytes_read = %d, want 4 x refs_read = %d", got, want)
	}
}
