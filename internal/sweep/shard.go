// Sharded intra-workload execution: one workload's configurations are
// partitioned across shard workers, all fed from a single trace
// generation by broadcasting fixed-size chunks of the word stream
// through a ring of reusable buffers.
//
// Sharding is across configurations, never across the trace: every
// family and fallback cache still consumes the complete ordered access
// stream, and each one is owned by exactly one worker, so per-point
// counters are bit-identical to the materialised single-pass and
// reference paths -- only the scheduling changes.  The trace is never
// materialised; memory stays at O(buffers), not O(refs).
//
// Fault tolerance: each shard's simulation units (see fault.go) fail
// independently.  A panicking unit is retired with its configurations
// attributed; the broadcast keeps flowing to the rest, so survivors
// stay bit-identical.  A trace-stream failure is workload-scope -- it
// invalidates every unit's counters, so no partial runs are reported.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"subcache/internal/cache"
	"subcache/internal/metrics"
	"subcache/internal/multipass"
	"subcache/internal/synth"
	"subcache/internal/telemetry"
	"subcache/internal/trace"
)

// chunkRefs is the broadcast granularity, shared with every other
// batched access path in the harness (see trace.ChunkRefs for the
// sizing rationale).
const chunkRefs = trace.ChunkRefs

// chunk is one slice of the word trace in flight to every shard.  left
// counts shards that have yet to finish it; the last one returns the
// backing buffer to the free ring.
type chunk struct {
	refs []trace.Ref
	left atomic.Int32
}

// shardRunner is one worker's owned simulation state: the units its
// plan assigned, plus its inbound chunk queue.  Only the owning
// goroutine touches units/live/chunk and the telemetry fields.
type shardRunner struct {
	shard int
	units []*simUnit
	live  int // units not yet dead
	chunk int // next chunk index (identical across shards)
	in    chan *chunk
	packs *packSet // per-runner shared packed-chunk cache

	// Telemetry, accumulated locally (single-writer) and published
	// once at end of pass: references fed to the shard, references
	// consumed by its live units, wall time inside processChunk, and
	// the partitioner's cost estimate for its plan.
	refsFed uint64
	simRefs uint64
	busy    time.Duration
	estCost int
}

// RunConfigs evaluates every configuration against one workload in a
// single chunk-streamed trace pass, sharded across shard workers
// (0 or less picks GOMAXPROCS).  Configurations that share tag-array
// dynamics are grouped into multipass families within each shard; the
// rest ride the same pass on reference simulators.  The returned runs
// align with cfgs and are bit-identical to per-configuration
// simulation.  All configurations must agree on WordSize, since they
// consume one shared word-split trace.  Failures are fail-fast: the
// first failing configuration (bad config or recovered panic) aborts
// the pass and is returned, named by its index.
func RunConfigs(ctx context.Context, prof synth.Profile, cfgs []cache.Config, refs, shards int) ([]metrics.Run, error) {
	if refs <= 0 {
		return nil, fmt.Errorf("sweep: non-positive trace length %d", refs)
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sweep: no configurations")
	}
	ws := cfgs[0].WordSize
	for i, c := range cfgs {
		if c.WordSize != ws {
			return nil, fmt.Errorf("sweep: cfgs[%d].WordSize = %d, want %d (configurations must share one word-split trace)", i, c.WordSize, ws)
		}
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	runs, ok, failed, err := runConfigsSharded(ctx, prof, cfgs, nil, refs, ws, shards, MultiPass, false, nil, telemetry.Nop)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, fmt.Errorf("sweep: %s trace: %w", prof.Name, err)
	}
	if len(failed) > 0 {
		f := failed[0]
		return nil, fmt.Errorf("sweep: cfgs[%d]: %w", f.idxs[0], f.cause)
	}
	for i := range ok {
		if !ok[i] {
			return nil, fmt.Errorf("sweep: cfgs[%d]: no result", i)
		}
	}
	return runs, nil
}

// referencePlans gives each configuration its own reference cache,
// spread round-robin across shards (grid points are near-equal cost).
func referencePlans(n, shards int) []multipass.ShardPlan {
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	plans := make([]multipass.ShardPlan, shards)
	for i := 0; i < n; i++ {
		s := i % shards
		plans[s].Rest = append(plans[s].Rest, i)
	}
	return plans
}

// runConfigsSharded is the chunk-broadcast executor.  eng selects how
// configurations are planned into units: stack-distance engines plus
// fallbacks (StackDist), multipass families plus fallbacks (MultiPass),
// or one reference cache per configuration (Reference); points
// (optional, aligned with cfgs) gives failures their grid-point
// attribution.
//
// The return contract implements the sweep's failure granularity:
//
//   - err non-nil is workload scope: the trace stream failed (raw cause,
//     unwrapped) or ctx was cancelled.  Every unit's counters cover a
//     truncated stream, so runs is nil -- nothing is half-counted.
//   - failed lists units that died (construction error, recovered panic
//     from the unit, its hooks, or its whole shard).  Under fail-fast
//     (continueOnError false) the first failure stops the pass and runs
//     is nil; under continueOnError survivors complete the full stream
//     and ok[i] marks which runs are valid.  A dead stack unit poisons
//     its whole group -- sibling set partitions cover disjoint set
//     spaces, so a group with a lost partition has no complete point --
//     and the group's points are attributed exactly once.
func runConfigsSharded(ctx context.Context, prof synth.Profile, cfgs []cache.Config, points []Point, refs, wordSize, shards int, eng Engine, continueOnError bool, hooks *Hooks, rec telemetry.Recorder) (runs []metrics.Run, ok []bool, failed []unitFailure, err error) {
	enabled := rec.Enabled()
	lists, costs, failed := shardUnitLists(eng, cfgs, points, shards, false)
	if len(failed) > 0 && !continueOnError {
		return nil, nil, failed[:1], nil
	}

	runners := make([]*shardRunner, len(lists))
	nbuf := 2*len(lists) + 2
	total := 0
	for si, units := range lists {
		runners[si] = &shardRunner{shard: si, units: units, live: len(units), in: make(chan *chunk, nbuf), estCost: costs[si], packs: newPackSet(units)}
		total += len(units)
	}
	if total == 0 {
		return make([]metrics.Run, len(cfgs)), make([]bool, len(cfgs)), dedupGroupFailures(failed), nil
	}

	src, err := synth.NewWordSource(prof, refs, wordSize)
	if err != nil {
		return nil, nil, nil, err
	}
	wrapped := hooks.wrapSource(prof.Name, src)

	// ictx governs the pass internally: it is cancelled by the caller's
	// ctx, by the first failure under fail-fast, or when every unit is
	// dead and streaming the rest of the trace would be wasted work.
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	var live atomic.Int64
	live.Store(int64(total))
	var mu sync.Mutex // guards failed after the workers start
	fail := func(f unitFailure, killed int) {
		mu.Lock()
		failed = append(failed, f)
		mu.Unlock()
		if !continueOnError || live.Add(-int64(killed)) == 0 {
			cancel()
		}
	}

	// The free ring: every chunk buffer in existence.  At most nbuf
	// chunks are ever in flight, so the per-shard queues (capacity
	// nbuf) never block the producer -- backpressure comes solely from
	// an empty ring, i.e. from the slowest shard.
	free := make(chan []trace.Ref, nbuf)
	for i := 0; i < nbuf; i++ {
		free <- make([]trace.Ref, chunkRefs)
	}

	var produceErr error
	var wg sync.WaitGroup
	wg.Add(1)
	parentSpan := telemetry.SpanFromContext(ctx)
	go func() {
		defer wg.Done()
		defer func() {
			for _, rn := range runners {
				close(rn.in)
			}
		}()
		psp := telemetry.StartSpan(rec, telemetry.Span{Name: "produce", Parent: parentSpan, Workload: prof.Name})
		defer psp.End()
		// Producer-side stage accounting, at chunk granularity: time
		// decoding the stream is trace-read; time waiting for a free
		// buffer (backpressure from the slowest shard) plus time
		// handing chunks to shard queues is broadcast.
		var readTime, castTime time.Duration
		if enabled {
			defer func() {
				rec.Observe(telemetry.StageTraceRead, readTime)
				rec.Observe(telemetry.StageBroadcast, castTime)
				if bc, ok := wrapped.(trace.ByteCounter); ok {
					rec.Add(telemetry.BytesRead, bc.Bytes())
				}
			}()
		}
		// A panicking trace source (or source wrapper) is recovered
		// into a workload-scope error, like any other stream failure.
		perr := safeCall(func() {
			var t0 time.Time
			for {
				var buf []trace.Ref
				if enabled {
					t0 = time.Now()
				}
				select {
				case buf = <-free:
				case <-ictx.Done():
					return
				}
				if enabled {
					now := time.Now()
					castTime += now.Sub(t0)
					t0 = now
				}
				n, rerr := trace.ReadChunk(wrapped, buf[:chunkRefs])
				if enabled {
					readTime += time.Since(t0)
				}
				if n > 0 {
					if enabled {
						rec.Add(telemetry.RefsRead, uint64(n))
						rec.SetGauge(telemetry.FreeRingOccupancy, int64(len(free)))
						t0 = time.Now()
					}
					ck := &chunk{refs: buf[:n]}
					ck.left.Store(int32(len(runners)))
					for _, rn := range runners {
						select {
						case rn.in <- ck:
						case <-ictx.Done():
							return
						}
					}
					if enabled {
						castTime += time.Since(t0)
						rec.Add(telemetry.ChunksBroadcast, 1)
					}
				}
				if rerr != nil {
					if rerr != io.EOF {
						produceErr = rerr
					}
					return
				}
			}
		})
		if perr != nil {
			produceErr = perr
		}
	}()

	for _, rn := range runners {
		wg.Add(1)
		go func(rn *shardRunner) {
			defer wg.Done()
			ssp := telemetry.StartSpan(rec, telemetry.Span{
				Name: "shard", Parent: parentSpan, Workload: prof.Name,
				Detail: fmt.Sprintf("%d", rn.shard),
			})
			defer ssp.End()
			for ck := range rn.in {
				// On cancellation keep draining (the producer may have
				// broadcast chunks already) but stop simulating.
				if ictx.Err() == nil && rn.live > 0 {
					if enabled {
						t0 := time.Now()
						rn.processChunk(ck.refs, prof.Name, hooks, fail)
						rn.busy += time.Since(t0)
						rn.refsFed += uint64(len(ck.refs))
					} else {
						rn.processChunk(ck.refs, prof.Name, hooks, fail)
					}
				}
				if ck.left.Add(-1) == 0 {
					free <- ck.refs[:chunkRefs]
				}
			}
		}(rn)
	}
	wg.Wait()

	// Publish per-shard telemetry: the aggregates, the simulate-stage
	// time, and one shard-stat event per worker.  Emitted even for
	// failed or cancelled passes -- a stalled shard is exactly what an
	// observer wants to see attributed.
	if enabled {
		for _, rn := range runners {
			rec.ShardObserve(rn.shard, rn.refsFed, rn.busy)
			rec.Observe(telemetry.StageSimulate, rn.busy)
			rec.Add(telemetry.RefsSimulated, rn.simRefs)
			lanes := 0
			for _, u := range rn.units {
				lanes += len(u.idxs)
			}
			rec.Emit(&telemetry.Event{Type: telemetry.EventShardStat, ShardStat: &telemetry.ShardStat{
				Workload: prof.Name,
				Shard:    rn.shard,
				Units:    len(rn.units),
				Lanes:    lanes,
				EstCost:  rn.estCost,
				Refs:     rn.refsFed,
				BusyMS:   float64(rn.busy) / 1e6,
			}})
		}
	}

	if produceErr != nil {
		return nil, nil, nil, produceErr
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, nil, nil, cerr
	}
	if len(failed) > 0 && !continueOnError {
		mu.Lock()
		first := failed[:1]
		mu.Unlock()
		return nil, nil, first, nil
	}

	var flushStart time.Time
	if enabled {
		flushStart = time.Now()
	}
	fsp := telemetry.StartSpan(rec, telemetry.Span{Name: "flush", Parent: parentSpan, Workload: prof.Name})
	defer fsp.End()
	var families, stackUnits uint64
	runs = make([]metrics.Run, len(cfgs))
	ok = make([]bool, len(cfgs))
	for _, rn := range runners {
		for _, u := range rn.units {
			if u.dead || u.stack != nil {
				continue
			}
			if uerr := u.collect(prof.Name, runs); uerr != nil {
				failed = append(failed, unitFailure{idxs: u.idxs, shard: rn.shard, cause: uerr})
				if !continueOnError {
					return nil, nil, failed[len(failed)-1:], nil
				}
				continue
			}
			if u.fam != nil {
				families++
			}
			for _, k := range u.idxs {
				ok[k] = true
			}
		}
	}

	// Stack units merge by group: sibling set partitions hold disjoint
	// slices of each configuration's counters (every flushed counter is
	// a per-partition linear sum), so adding them reconstructs the
	// whole-stream statistics exactly.  A group with any dead sibling is
	// poisoned -- a partial merge would silently undercount -- and its
	// points are attributed through the recorded failure instead.
	deadG := make(map[int]bool)
	for _, f := range failed {
		if f.gid > 0 {
			deadG[f.gid] = true
		}
	}
	type stackGroup struct {
		first *simUnit
		stats []cache.Stats
	}
	groups := make(map[int]*stackGroup)
	for _, rn := range runners {
		for _, u := range rn.units {
			if u.stack == nil || u.dead || deadG[u.gid] {
				continue
			}
			if uerr := safeCall(u.stack.FlushUsage); uerr != nil {
				failed = append(failed, unitFailure{idxs: u.idxs, shard: rn.shard, gid: u.gid, cause: uerr})
				deadG[u.gid] = true
				if !continueOnError {
					return nil, nil, failed[len(failed)-1:], nil
				}
				continue
			}
			stackUnits++
			g := groups[u.gid]
			if g == nil {
				g = &stackGroup{first: u, stats: make([]cache.Stats, len(u.idxs))}
				groups[u.gid] = g
			}
			for j := range u.idxs {
				g.stats[j].Add(u.stack.Stats(j))
			}
		}
	}
	for gid, g := range groups {
		if deadG[gid] {
			continue
		}
		for j, k := range g.first.idxs {
			runs[k] = metrics.NewRun(prof.Name, g.first.stack.Config(j), &g.stats[j])
			ok[k] = true
		}
	}

	if enabled {
		rec.Observe(telemetry.StageFlush, time.Since(flushStart))
		rec.Add(telemetry.FamiliesFlushed, families)
		rec.Add(telemetry.StackUnitsFlushed, stackUnits)
	}
	return runs, ok, dedupGroupFailures(failed), nil
}

// dedupGroupFailures collapses sibling stack-partition failures, which
// share one index list, to the first per group, so pointErrors reports
// each lost point exactly once.
func dedupGroupFailures(failed []unitFailure) []unitFailure {
	seen := make(map[int]bool)
	kept := failed[:0]
	for _, f := range failed {
		if f.gid > 0 {
			if seen[f.gid] {
				continue
			}
			seen[f.gid] = true
		}
		kept = append(kept, f)
	}
	return kept
}

// processChunk feeds one broadcast chunk to every live unit the shard
// owns.  The BeforeChunk hook runs in its own recovery boundary; a
// panic there is shard-scope and kills every unit the shard still has.
// A panic inside one unit (or its BeforeUnit hook) kills only that
// unit.
func (rn *shardRunner) processChunk(refs []trace.Ref, workload string, hooks *Hooks, fail func(unitFailure, int)) {
	if hooks != nil && hooks.BeforeChunk != nil {
		if herr := safeCall(func() { hooks.BeforeChunk(workload, rn.shard, rn.chunk) }); herr != nil {
			for _, u := range rn.units {
				if u.dead {
					continue
				}
				u.dead = true
				rn.live--
				fail(unitFailure{idxs: u.idxs, shard: rn.shard, gid: u.gid, cause: herr}, 1)
			}
			rn.chunk++
			return
		}
	}
	rn.packs.next()
	for _, u := range rn.units {
		if u.dead {
			continue
		}
		if uerr := u.accessBatch(refs, rn.packs.forUnit(u, refs), hooks, workload, rn.shard, rn.chunk); uerr != nil {
			u.dead = true
			rn.live--
			fail(unitFailure{idxs: u.idxs, shard: rn.shard, gid: u.gid, cause: uerr}, 1)
			continue
		}
		rn.simRefs += uint64(len(refs))
	}
	rn.chunk++
}

// simulateSharded evaluates every requested point over one workload via
// the chunk-broadcast executor, for either engine, translating unit
// failures into attributed PointErrors.  A workload aborted by the
// caller's cancellation returns (nil, nil): a casualty, not a cause.
func simulateSharded(ctx context.Context, prof synth.Profile, req Request, shards int, eng Engine) (map[Point]metrics.Run, []*PointError) {
	cfgs := make([]cache.Config, len(req.Points))
	for i, p := range req.Points {
		cfgs[i] = pointConfig(p, req)
	}
	runs, ok, failed, err := runConfigsSharded(ctx, prof, cfgs, req.Points, req.Refs,
		req.Arch.WordSize(), shards, eng, req.ContinueOnError, req.Hooks,
		telemetry.OrNop(req.Recorder))
	if err != nil {
		if ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return nil, nil
		}
		return nil, workloadError(prof.Name, -1, fmt.Errorf("trace: %w", err))
	}
	pes := pointErrors(prof.Name, req.Points, failed)
	sort.Slice(pes, func(i, j int) bool { return pointLess(pes[i].Point, pes[j].Point) })
	out := make(map[Point]metrics.Run, len(req.Points))
	for i, run := range runs {
		if ok[i] {
			out[req.Points[i]] = run
		}
	}
	return out, pes
}

// firstError picks the error to report from per-workload results: the
// lowest-index real failure, so the cancellations the first failure
// triggered in sibling workloads never mask it.
func firstError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return first
}
