// Sharded intra-workload execution: one workload's configurations are
// partitioned across shard workers, all fed from a single trace
// generation by broadcasting fixed-size chunks of the word stream
// through a ring of reusable buffers.
//
// Sharding is across configurations, never across the trace: every
// family and fallback cache still consumes the complete ordered access
// stream, and each one is owned by exactly one worker, so per-point
// counters are bit-identical to the materialised single-pass and
// reference paths -- only the scheduling changes.  The trace is never
// materialised; memory stays at O(buffers), not O(refs).
package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"subcache/internal/cache"
	"subcache/internal/metrics"
	"subcache/internal/multipass"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

// chunkRefs is the broadcast granularity, shared with every other
// batched access path in the harness (see trace.ChunkRefs for the
// sizing rationale).
const chunkRefs = trace.ChunkRefs

// chunk is one slice of the word trace in flight to every shard.  left
// counts shards that have yet to finish it; the last one returns the
// backing buffer to the free ring.
type chunk struct {
	refs []trace.Ref
	left atomic.Int32
}

// shardRunner is one worker's owned simulation state: the families and
// fallback caches its plan assigned, plus its inbound chunk queue.
type shardRunner struct {
	families []*multipass.Family
	famIdx   [][]int // cfg indexes per family, aligned with families
	caches   []*cache.Cache
	cacheIdx []int // cfg indexes, aligned with caches
	in       chan *chunk
}

// RunConfigs evaluates every configuration against one workload in a
// single chunk-streamed trace pass, sharded across shard workers
// (0 or less picks GOMAXPROCS).  Configurations that share tag-array
// dynamics are grouped into multipass families within each shard; the
// rest ride the same pass on reference simulators.  The returned runs
// align with cfgs and are bit-identical to per-configuration
// simulation.  All configurations must agree on WordSize, since they
// consume one shared word-split trace.
func RunConfigs(ctx context.Context, prof synth.Profile, cfgs []cache.Config, refs, shards int) ([]metrics.Run, error) {
	if refs <= 0 {
		return nil, fmt.Errorf("sweep: non-positive trace length %d", refs)
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sweep: no configurations")
	}
	ws := cfgs[0].WordSize
	for i, c := range cfgs {
		if c.WordSize != ws {
			return nil, fmt.Errorf("sweep: cfgs[%d].WordSize = %d, want %d (configurations must share one word-split trace)", i, c.WordSize, ws)
		}
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	return runConfigsSharded(ctx, prof, cfgs, refs, ws, shards, true,
		func(i int) string { return fmt.Sprintf("cfgs[%d]", i) })
}

// referencePlans gives each configuration its own reference cache,
// spread round-robin across shards (grid points are near-equal cost).
func referencePlans(n, shards int) []multipass.ShardPlan {
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	plans := make([]multipass.ShardPlan, shards)
	for i := 0; i < n; i++ {
		s := i % shards
		plans[s].Rest = append(plans[s].Rest, i)
	}
	return plans
}

// runConfigsSharded is the chunk-broadcast executor.  group selects
// family construction (the MultiPass engine) versus one reference cache
// per configuration (the Reference engine); label names cfgs[i] in
// errors.
func runConfigsSharded(ctx context.Context, prof synth.Profile, cfgs []cache.Config, refs, wordSize, shards int, group bool, label func(int) string) ([]metrics.Run, error) {
	var plans []multipass.ShardPlan
	if group {
		plans = multipass.PartitionShards(cfgs, shards)
	} else {
		plans = referencePlans(len(cfgs), shards)
	}

	runners := make([]*shardRunner, len(plans))
	nbuf := 2*len(plans) + 2
	for si, plan := range plans {
		rn := &shardRunner{in: make(chan *chunk, nbuf)}
		for _, idxs := range plan.Families {
			fcfgs := make([]cache.Config, len(idxs))
			for j, k := range idxs {
				fcfgs[j] = cfgs[k]
			}
			fam, err := multipass.New(fcfgs)
			if err != nil {
				return nil, fmt.Errorf("sweep: %s: %w", label(idxs[0]), err)
			}
			rn.families = append(rn.families, fam)
			rn.famIdx = append(rn.famIdx, idxs)
		}
		for _, k := range plan.Rest {
			c, err := cache.New(cfgs[k])
			if err != nil {
				return nil, fmt.Errorf("sweep: %s: %w", label(k), err)
			}
			rn.caches = append(rn.caches, c)
			rn.cacheIdx = append(rn.cacheIdx, k)
		}
		runners[si] = rn
	}

	src, err := synth.NewWordSource(prof, refs, wordSize)
	if err != nil {
		return nil, err
	}

	// The free ring: every chunk buffer in existence.  At most nbuf
	// chunks are ever in flight, so the per-shard queues (capacity
	// nbuf) never block the producer -- backpressure comes solely from
	// an empty ring, i.e. from the slowest shard.
	free := make(chan []trace.Ref, nbuf)
	for i := 0; i < nbuf; i++ {
		free <- make([]trace.Ref, chunkRefs)
	}

	var produceErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			for _, rn := range runners {
				close(rn.in)
			}
		}()
		for {
			var buf []trace.Ref
			select {
			case buf = <-free:
			case <-ctx.Done():
				return
			}
			n, err := trace.ReadChunk(src, buf[:chunkRefs])
			if n > 0 {
				ck := &chunk{refs: buf[:n]}
				ck.left.Store(int32(len(runners)))
				for _, rn := range runners {
					select {
					case rn.in <- ck:
					case <-ctx.Done():
						return
					}
				}
			}
			if err != nil {
				if err != io.EOF {
					produceErr = err
				}
				return
			}
		}
	}()

	for _, rn := range runners {
		wg.Add(1)
		go func(rn *shardRunner) {
			defer wg.Done()
			for ck := range rn.in {
				// On cancellation keep draining (the producer may have
				// broadcast chunks already) but stop simulating.
				if ctx.Err() == nil {
					for _, fam := range rn.families {
						fam.AccessBatch(ck.refs)
					}
					for _, c := range rn.caches {
						c.AccessBatch(ck.refs)
					}
				}
				if ck.left.Add(-1) == 0 {
					free <- ck.refs[:chunkRefs]
				}
			}
		}(rn)
	}
	wg.Wait()

	if produceErr != nil {
		return nil, fmt.Errorf("sweep: %s trace: %w", prof.Name, produceErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	runs := make([]metrics.Run, len(cfgs))
	for _, rn := range runners {
		for fi, fam := range rn.families {
			fam.FlushUsage()
			for j, k := range rn.famIdx[fi] {
				runs[k] = metrics.NewRun(prof.Name, fam.Config(j), fam.Stats(j))
			}
		}
		for ci, c := range rn.caches {
			c.FlushUsage()
			runs[rn.cacheIdx[ci]] = metrics.NewRun(prof.Name, c.Config(), c.Stats())
		}
	}
	return runs, nil
}

// simulateSharded evaluates every requested point over one workload via
// the chunk-broadcast executor, for either engine.
func simulateSharded(ctx context.Context, prof synth.Profile, req Request, shards int, group bool) (map[Point]metrics.Run, error) {
	cfgs := make([]cache.Config, len(req.Points))
	for i, p := range req.Points {
		cfgs[i] = pointConfig(p, req)
	}
	runs, err := runConfigsSharded(ctx, prof, cfgs, req.Refs, req.Arch.WordSize(), shards, group,
		func(i int) string { return req.Points[i].String() })
	if err != nil {
		return nil, err
	}
	out := make(map[Point]metrics.Run, len(req.Points))
	for i, run := range runs {
		out[req.Points[i]] = run
	}
	return out, nil
}

// simulateShardedAll runs every workload through the sharded executor,
// spending the parallelism budget on concurrent workloads first and
// intra-workload shards second.  The first failing workload cancels its
// siblings promptly.
func simulateShardedAll(ctx context.Context, profiles []synth.Profile, req Request, par int, group bool) ([]map[Point]metrics.Run, error) {
	shards := req.Shards
	if shards == 0 {
		// Auto: spread the cores over the suite's concurrent workloads,
		// rounding up so a many-core box stays busy even when the suite
		// is small.
		shards = (par + len(profiles) - 1) / len(profiles)
	}
	if shards < 1 {
		shards = 1
	}
	outer := par / shards
	if outer < 1 {
		outer = 1
	}
	if outer > len(profiles) {
		outer = len(profiles)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	perProf := make([]map[Point]metrics.Run, len(profiles))
	errs := make([]error, len(profiles))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < outer; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue
				}
				perProf[i], errs[i] = simulateSharded(ctx, profiles[i], req, shards, group)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	for i := range profiles {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return perProf, nil
}

// firstError picks the error to report from per-workload results: the
// lowest-index real failure, so the cancellations the first failure
// triggered in sibling workloads never mask it.
func firstError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return first
}
