// Fault tolerance for sweep execution: typed, attributed errors and
// panic isolation.
//
// A million-reference grid sweep is only trustworthy if partial
// failures are detected and attributed rather than silently absorbed --
// or worse, if one corrupt trace byte or one panicking worker discards
// the whole grid.  Every simulation unit (a multipass family or a
// fallback reference cache) therefore runs its per-chunk work inside a
// recovery boundary: a panic becomes a PanicError, which is wrapped in
// a PointError naming the exact workload, point and shard that died.
// Under the default fail-fast policy the first PointError aborts the
// sweep (as before, but without crashing the process); under
// Request.ContinueOnError the dead unit is retired, its points are
// reported in Result.Errors, and every other unit keeps consuming the
// complete ordered stream -- so surviving points stay bit-identical to
// an undisturbed run.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"subcache/internal/addr"
	"subcache/internal/cache"
	"subcache/internal/metrics"
	"subcache/internal/multipass"
	"subcache/internal/stackdist"
	"subcache/internal/telemetry"
	"subcache/internal/trace"
)

// PointError attributes one simulation failure to its exact origin: the
// workload whose trace was being replayed, the grid point (cache
// configuration) that was lost, and the shard worker that hosted it.
type PointError struct {
	// Workload names the trace suite member being simulated.
	Workload string
	// Point is the lost grid point.  The zero Point marks a
	// workload-scope failure (e.g. a trace read error), which loses
	// every point of the workload; see WorkloadScope.
	Point Point
	// Shard is the shard worker index that hosted the failure, or -1
	// when the failing path was not sharded.
	Shard int
	// Cause is the underlying failure: a trace error, a configuration
	// error, or a *PanicError for a recovered panic.
	Cause error
}

// WorkloadScope reports whether the failure lost the whole workload
// rather than one point: trace-stream errors invalidate every
// configuration's counters, so no partial runs are reported for it.
func (e *PointError) WorkloadScope() bool { return e.Point == Point{} }

// Error renders the attribution on one line.
func (e *PointError) Error() string {
	s := "sweep: workload " + e.Workload
	if !e.WorkloadScope() {
		s += " point " + e.Point.String()
	}
	if e.Shard >= 0 {
		s += fmt.Sprintf(" shard %d", e.Shard)
	}
	return s + ": " + e.Cause.Error()
}

// Unwrap exposes the cause to errors.Is/As.
func (e *PointError) Unwrap() error { return e.Cause }

// event renders the attributed failure as its telemetry event: every
// PointError a sweep reports is mirrored by exactly one
// error-attributed event on the stream.
func (e *PointError) event() *telemetry.Event {
	var pe *PanicError
	point := ""
	if !e.WorkloadScope() {
		point = e.Point.String()
	}
	return &telemetry.Event{Type: telemetry.EventErrorAttributed, Error: &telemetry.ErrorAttributed{
		Workload: e.Workload,
		Point:    point,
		Shard:    e.Shard,
		Cause:    e.Cause.Error(),
		Panic:    errors.As(e.Cause, &pe),
	}}
}

// Transient reports whether a sweep failure is plausibly transient and
// worth retrying: a workload-scope PointError -- a trace-source failure
// such as a short read or a corrupt record, which loses the workload
// without poisoning any state -- whose cause is neither a recovered
// panic (a programming error repeats identically) nor the caller's own
// cancellation or deadline.  Point-scope failures (configuration
// construction, unit panics) and non-attributed errors are never
// transient.  The sweep service retries transient failures with
// exponential backoff; because completed workloads sit in the
// checkpoint journal, a retry resumes instead of restarting.
func Transient(err error) bool {
	var pe *PointError
	if !errors.As(err, &pe) || !pe.WorkloadScope() {
		return false
	}
	var pan *PanicError
	if errors.As(pe.Cause, &pan) {
		return false
	}
	if errors.Is(pe.Cause, context.Canceled) || errors.Is(pe.Cause, context.DeadlineExceeded) {
		return false
	}
	return true
}

// PanicError is a panic recovered from a simulation unit, a hook, or a
// trace source, preserving the panic value and the stack at the point
// of recovery.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value; the stack is kept for callers that
// want to log it.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// safeCall runs fn, converting a panic into a *PanicError.
func safeCall(fn func()) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// Hooks instruments the execution layer.  It exists for the
// fault-injection harness (internal/faultinject) and tests: every hook
// is called from hot simulation paths, under the same panic-recovery
// boundaries as the simulation itself, so an injected panic is
// attributed exactly like a real one.  All hooks may be nil.
type Hooks struct {
	// WrapSource, if set, wraps each workload's word-split trace
	// source before simulation starts, for both the materialised and
	// the streamed executors.  Faults injected here surface as
	// workload-scope trace errors.
	WrapSource func(workload string, src trace.Source) trace.Source
	// BeforeChunk is called by each shard worker before it simulates a
	// chunk.  A panic here kills every unit the shard owns
	// (shard-scope).  Not called by the unsharded paths, which have no
	// shard worker to kill.
	BeforeChunk func(workload string, shard, chunk int)
	// BeforeUnit is called before one simulation unit (a multipass
	// family, a fallback cache, or a reference-engine point) processes
	// a chunk; points lists the grid points the unit carries.  A panic
	// here kills exactly that unit.  shard is -1 on unsharded paths.
	BeforeUnit func(workload string, shard int, points []Point, chunk int)
}

func (h *Hooks) wrapSource(workload string, src trace.Source) trace.Source {
	if h == nil || h.WrapSource == nil {
		return src
	}
	return h.WrapSource(workload, src)
}

// simUnit is one independently failable simulation unit: a multipass
// family, a stack-distance engine (one set partition of a stack
// group), or a single reference cache, plus the grid points it
// carries.  Exactly one goroutine drives a unit, so no locking is
// needed; dead units stop simulating but their stream keeps flowing to
// the rest.
type simUnit struct {
	fam   *multipass.Family
	stack *stackdist.Engine
	cache *cache.Cache
	idxs  []int   // config indexes into the request's cfgs/points
	pts   []Point // attributed points, aligned with idxs (nil for RunConfigs)
	// gid is the stack group id plus one (zero for non-stack units).
	// Sibling set partitions of one group share a gid and an idxs
	// slice: their statistics merge at collect time, and one dead
	// sibling poisons the whole group.
	gid  int
	dead bool
}

// accessBatch feeds one chunk to the unit inside a recovery boundary,
// calling the BeforeUnit hook (if any) inside the same boundary.
// packed, when non-nil, is the chunk in trace.PackRefs form at the
// unit's word granularity (see packSet); units that cannot consume it
// receive nil and fall back to the plain batch entry point.
func (u *simUnit) accessBatch(refs []trace.Ref, packed []uint64, hooks *Hooks, workload string, shard, chunk int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if hooks != nil && hooks.BeforeUnit != nil {
		hooks.BeforeUnit(workload, shard, u.pts, chunk)
	}
	switch {
	case u.fam != nil:
		if packed != nil {
			u.fam.AccessBatchPacked(refs, packed)
		} else {
			u.fam.AccessBatch(refs)
		}
	case u.stack != nil:
		if packed != nil {
			u.stack.AccessBatchPacked(refs, packed)
		} else {
			u.stack.AccessBatch(refs)
		}
	default:
		u.cache.AccessBatch(refs)
	}
	return nil
}

// packSet shares one trace.PackRefs pass per broadcast chunk across
// every multipass family and stack engine an executor drives: the
// engines spend a real share of their per-reference budget re-deriving
// the word index and access kind from the 16-byte Ref, and the packed
// form is geometry-free, so one buffer per word granularity (in
// practice one per workload) serves all of them.  Not safe for
// concurrent use; each shard runner owns its own.
type packSet struct {
	shifts []uint
	bufs   [][]uint64
	done   []bool
}

// unitWordShift returns the unit's packing granularity, or -1 if the
// unit does not consume packed chunks.
func unitWordShift(u *simUnit) int {
	switch {
	case u.fam != nil:
		return int(addr.Log2(uint64(u.fam.WordSize())))
	case u.stack != nil:
		return int(addr.Log2(uint64(u.stack.WordSize())))
	}
	return -1
}

// newPackSet returns a packSet covering the word granularities of the
// units' multipass families and stack engines, or nil if none can
// consume packed chunks.
func newPackSet(units []*simUnit) *packSet {
	var ps *packSet
	for _, u := range units {
		ws := unitWordShift(u)
		if ws < 0 {
			continue
		}
		shift := uint(ws)
		if ps == nil {
			ps = &packSet{}
		}
		if !ps.has(shift) {
			ps.shifts = append(ps.shifts, shift)
			ps.bufs = append(ps.bufs, make([]uint64, trace.ChunkRefs))
			ps.done = append(ps.done, false)
		}
	}
	return ps
}

func (ps *packSet) has(shift uint) bool {
	for _, s := range ps.shifts {
		if s == shift {
			return true
		}
	}
	return false
}

// next invalidates every cached buffer; the executors call it at each
// chunk boundary before re-feeding the units.
func (ps *packSet) next() {
	if ps == nil {
		return
	}
	for i := range ps.done {
		ps.done[i] = false
	}
}

// forUnit returns the shared packed form of refs for u, packing it on
// first use within the current chunk, or nil if u does not consume one.
func (ps *packSet) forUnit(u *simUnit, refs []trace.Ref) []uint64 {
	if ps == nil {
		return nil
	}
	ws := unitWordShift(u)
	if ws < 0 {
		return nil
	}
	shift := uint(ws)
	for i, s := range ps.shifts {
		if s != shift {
			continue
		}
		if len(refs) > len(ps.bufs[i]) {
			ps.bufs[i] = make([]uint64, len(refs))
			ps.done[i] = false
		}
		if !ps.done[i] {
			trace.PackRefs(ps.bufs[i], refs, shift)
			ps.done[i] = true
		}
		return ps.bufs[i][:len(refs)]
	}
	return nil
}

// collect finalises the unit and writes its runs into runs (indexed by
// config index), inside a recovery boundary of its own: a panic while
// flushing loses only this unit's points.
func (u *simUnit) collect(traceName string, runs []metrics.Run) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	switch {
	case u.fam != nil:
		u.fam.FlushUsage()
		for j, k := range u.idxs {
			runs[k] = metrics.NewRun(traceName, u.fam.Config(j), u.fam.Stats(j))
		}
	case u.stack != nil:
		// Only whole-stream stack units collect directly; the sharded
		// executor merges sibling set partitions itself.
		u.stack.FlushUsage()
		for j, k := range u.idxs {
			runs[k] = metrics.NewRun(traceName, u.stack.Config(j), u.stack.Stats(j))
		}
	default:
		u.cache.FlushUsage()
		runs[u.idxs[0]] = metrics.NewRun(traceName, u.cache.Config(), u.cache.Stats())
	}
	return nil
}

// unitFailure records one dead unit inside a single-workload executor,
// before translation into per-point PointErrors.  gid carries the
// stack group id plus one (zero otherwise) so failures of sibling set
// partitions, which share an index list, can be deduplicated to one
// attribution per lost point.
type unitFailure struct {
	idxs  []int
	shard int
	gid   int
	cause error
}

// pointErrors expands per-unit failures into one PointError per lost
// point, in config-index order.
func pointErrors(workload string, points []Point, failed []unitFailure) []*PointError {
	var out []*PointError
	for _, f := range failed {
		for _, k := range f.idxs {
			out = append(out, &PointError{Workload: workload, Point: points[k], Shard: f.shard, Cause: f.cause})
		}
	}
	return out
}

// workloadError wraps a workload-scope failure (no surviving points).
func workloadError(workload string, shard int, cause error) []*PointError {
	return []*PointError{{Workload: workload, Shard: shard, Cause: cause}}
}
