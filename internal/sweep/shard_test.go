package sweep

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"subcache/internal/cache"
	"subcache/internal/synth"
)

// TestShardedDifferential: the chunk-broadcast executor must reproduce
// the materialised baselines bit for bit -- every run and every summary
// -- for both engines at every shard count, because sharding partitions
// configurations, never the trace.
func TestShardedDifferential(t *testing.T) {
	pts := Grid([]int{64, 256}, 2)
	base := Request{Arch: synth.PDP11, Points: pts, Refs: 20000}
	workloads := len(synth.Workloads(synth.PDP11))

	baseline := base
	baseline.Engine = Reference // Shards 0: the legacy per-point path
	want, err := Run(baseline)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		engine Engine
		shards int
		passes int
	}{
		{"reference/shards=1", Reference, 1, len(pts) * workloads},
		{"reference/shards=2", Reference, 2, len(pts) * workloads},
		{"reference/shards=3", Reference, 3, len(pts) * workloads},
		{"reference/shards=ncpu", Reference, runtime.NumCPU(), len(pts) * workloads},
		{"multipass/materialised", MultiPass, -1, workloads},
		{"multipass/auto", MultiPass, 0, workloads},
		{"multipass/shards=1", MultiPass, 1, workloads},
		{"multipass/shards=2", MultiPass, 2, workloads},
		{"multipass/shards=3", MultiPass, 3, workloads},
		{"multipass/shards=ncpu", MultiPass, runtime.NumCPU(), workloads},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := base
			req.Engine = tc.engine
			req.Shards = tc.shards
			got, err := Run(req)
			if err != nil {
				t.Fatal(err)
			}
			if got.TracePasses != tc.passes {
				t.Errorf("TracePasses = %d, want %d", got.TracePasses, tc.passes)
			}
			for _, p := range pts {
				if !reflect.DeepEqual(got.Runs[p], want.Runs[p]) {
					t.Fatalf("%v: runs differ from materialised reference\n got:  %v\n want: %v",
						p, got.Runs[p], want.Runs[p])
				}
				if got.Summaries[p] != want.Summaries[p] {
					t.Errorf("%v: summaries differ", p)
				}
			}
		})
	}
}

// TestShardedMixedPolicies: an Override that rearranges policies
// (Random replacement, copy-back) must survive sharding unchanged --
// Random replacement in particular proves each family's victim stream
// is private to the shard that owns it.
func TestShardedMixedPolicies(t *testing.T) {
	pts := []Point{
		{Net: 64, Block: 8, Sub: 2},
		{Net: 64, Block: 8, Sub: 4},
		{Net: 64, Block: 8, Sub: 2, Fetch: cache.LoadForward},
		{Net: 256, Block: 16, Sub: 8},
	}
	override := func(c *cache.Config) {
		c.Replacement = cache.Random
		c.RandomSeed = 7
		c.CopyBack = true
	}
	want, err := Run(Request{Arch: synth.Z8000, Points: pts, Refs: 8000,
		Override: override, Engine: Reference})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Request{Arch: synth.Z8000, Points: pts, Refs: 8000,
		Override: override, Engine: MultiPass, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !reflect.DeepEqual(got.Runs[p], want.Runs[p]) {
			t.Errorf("%v: sharded runs differ\n got:  %v\n want: %v", p, got.Runs[p], want.Runs[p])
		}
	}
}

// TestShardedAllFallback: configurations the multipass kernel cannot
// host (OBL prefetch) must ride the sharded pass on reference
// simulators and still match.
func TestShardedAllFallback(t *testing.T) {
	pts := []Point{
		{Net: 256, Block: 16, Sub: 8},
		{Net: 256, Block: 16, Sub: 2},
		{Net: 64, Block: 8, Sub: 4},
	}
	override := func(c *cache.Config) { c.PrefetchOBL = true }
	want, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 10000,
		Workloads: []string{"ED"}, Override: override, Engine: Reference})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 10000,
		Workloads: []string{"ED"}, Override: override, Engine: MultiPass, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !reflect.DeepEqual(got.Runs[p], want.Runs[p]) {
			t.Errorf("%v: fallback runs differ", p)
		}
	}
	if got.TracePasses != 1 {
		t.Errorf("fallback points should share the single sharded pass: TracePasses = %d", got.TracePasses)
	}
}

// TestRunConfigsDifferential: the exported single-workload entry point
// must match per-configuration RunOne simulation exactly, at several
// shard counts.
func TestRunConfigsDifferential(t *testing.T) {
	prof, ok := synth.ProfileByName("ED")
	if !ok {
		t.Fatal("workload ED missing")
	}
	var cfgs []cache.Config
	for _, p := range []Point{
		{Net: 256, Block: 16, Sub: 8},
		{Net: 256, Block: 16, Sub: 4},
		{Net: 256, Block: 16, Sub: 4, Fetch: cache.LoadForward},
		{Net: 64, Block: 8, Sub: 2},
	} {
		cfgs = append(cfgs, p.Config(synth.PDP11))
	}
	// One config the kernel cannot host, to exercise the fallback path.
	obl := cfgs[3]
	obl.PrefetchOBL = true
	cfgs = append(cfgs, obl)

	const refs = 10000
	for _, shards := range []int{0, 1, 2, len(cfgs) + 3} {
		runs, err := RunConfigs(context.Background(), prof, cfgs, refs, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(runs) != len(cfgs) {
			t.Fatalf("shards=%d: got %d runs, want %d", shards, len(runs), len(cfgs))
		}
		for i, cfg := range cfgs {
			want, err := RunOne(prof, cfg, refs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(runs[i], want) {
				t.Errorf("shards=%d cfgs[%d]: sharded run differs\n got:  %v\n want: %v",
					shards, i, runs[i], want)
			}
		}
	}
}

// TestRunConfigsValidation: the entry point rejects empty inputs and
// mixed word sizes (the configurations share one word-split trace).
func TestRunConfigsValidation(t *testing.T) {
	prof, _ := synth.ProfileByName("ED")
	cfg := Point{Net: 64, Block: 8, Sub: 2}.Config(synth.PDP11)

	if _, err := RunConfigs(context.Background(), prof, nil, 1000, 1); err == nil {
		t.Error("accepted empty configuration list")
	}
	if _, err := RunConfigs(context.Background(), prof, []cache.Config{cfg}, 0, 1); err == nil {
		t.Error("accepted non-positive trace length")
	}
	wide := cfg
	wide.WordSize = 4
	wide.SubBlockSize = 4
	_, err := RunConfigs(context.Background(), prof, []cache.Config{cfg, wide}, 1000, 1)
	if err == nil || !strings.Contains(err.Error(), "WordSize") {
		t.Errorf("mixed word sizes: got %v, want a WordSize error", err)
	}
}

// TestRunContextCancelled: a pre-cancelled context aborts every engine
// and shard variant with context.Canceled, not a partial result.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts := []Point{{Net: 64, Block: 8, Sub: 4}}
	for _, tc := range []struct {
		name   string
		engine Engine
		shards int
	}{
		{"reference/legacy", Reference, 0},
		{"reference/sharded", Reference, 2},
		{"multipass/materialised", MultiPass, -1},
		{"multipass/sharded", MultiPass, 2},
	} {
		res, err := RunContext(ctx, Request{Arch: synth.PDP11, Points: pts,
			Refs: 5000, Engine: tc.engine, Shards: tc.shards})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", tc.name, err)
		}
		if res != nil {
			t.Errorf("%s: got a result from a cancelled sweep", tc.name)
		}
	}
}

// TestShardedErrorPropagation: a configuration error inside one shard
// surfaces from the sweep, named after its point, for both engines.
func TestShardedErrorPropagation(t *testing.T) {
	pts := []Point{{Net: 64, Block: 8, Sub: 2}, {Net: 64, Block: 8, Sub: 4}}
	for _, eng := range []Engine{Reference, MultiPass} {
		_, err := Run(Request{
			Arch: synth.PDP11, Points: pts, Refs: 1000, Engine: eng, Shards: 2,
			Override: func(c *cache.Config) { c.Assoc = 999 },
		})
		if err == nil {
			t.Errorf("%v: sharded sweep accepted an invalid config", eng)
			continue
		}
		if errors.Is(err, context.Canceled) {
			t.Errorf("%v: real failure masked by a cancellation: %v", eng, err)
		}
	}
}

// TestReferenceShortCircuit: after the first failing point the legacy
// reference path must stop deriving configurations for the remaining
// points instead of replaying the trace for each; the Override
// invocation count proves the workers were short-circuited.
func TestReferenceShortCircuit(t *testing.T) {
	var calls atomic.Int32
	pts := make([]Point, 40)
	for i := range pts {
		pts[i] = Point{Net: 64, Block: 8, Sub: 2}
	}
	_, err := Run(Request{
		Arch: synth.PDP11, Points: pts, Refs: 2000,
		Workloads: []string{"ED"}, Engine: Reference, Parallelism: 1,
		Override: func(c *cache.Config) {
			calls.Add(1)
			c.Assoc = 999
		},
	})
	if err == nil {
		t.Fatal("sweep accepted an invalid config")
	}
	if n := calls.Load(); n >= int32(len(pts)) {
		t.Errorf("first error did not short-circuit: override ran %d times for %d points", n, len(pts))
	}
}

// TestShardedParallelismInvariance: neither the parallelism budget nor
// the shard count may change any counter.
func TestShardedParallelismInvariance(t *testing.T) {
	pts := []Point{{Net: 64, Block: 8, Sub: 4}, {Net: 256, Block: 8, Sub: 4}}
	var results []*Result
	for _, tc := range []struct{ par, shards int }{{1, 1}, {8, 2}, {2, 8}} {
		res, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 5000,
			Parallelism: tc.par, Shards: tc.shards, Engine: MultiPass})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for _, p := range pts {
		for i := 1; i < len(results); i++ {
			if !reflect.DeepEqual(results[0].Runs[p], results[i].Runs[p]) {
				t.Errorf("parallelism/shard budget changed results at %v", p)
			}
		}
	}
}

// TestFirstErrorPrefersRealFailures: cancellations triggered by a
// sibling's failure must never mask the failure itself, regardless of
// which workload index recorded it first.
func TestFirstErrorPrefersRealFailures(t *testing.T) {
	boom := errors.New("boom")
	for _, tc := range []struct {
		name string
		errs []error
		want error
	}{
		{"nil", []error{nil, nil}, nil},
		{"real first", []error{boom, context.Canceled}, boom},
		{"canceled first", []error{context.Canceled, nil, boom}, boom},
		{"only canceled", []error{nil, context.Canceled}, context.Canceled},
	} {
		if got := firstError(tc.errs); !errors.Is(got, tc.want) && got != tc.want {
			t.Errorf("%s: firstError = %v, want %v", tc.name, got, tc.want)
		}
	}
}
