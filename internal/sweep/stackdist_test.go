// Sweep-level gate for the StackDist engine: byte-for-byte equivalence
// with the Reference and MultiPass engines over the Table 7 grid (warm
// and cold architectures), fallback for refused configurations, shard
// perturbation-freeness, telemetry exactness, and exactly-once failure
// attribution when a set partition of a stack group dies.
package sweep

import (
	"bytes"
	"reflect"
	"testing"

	"subcache/internal/cache"
	"subcache/internal/synth"
	"subcache/internal/telemetry"
	"subcache/internal/trace"
)

// TestStackDistProducesIdenticalRuns: the StackDist engine must
// reproduce both other engines' per-workload runs exactly -- every
// counter and every derived ratio -- over a full Table 7 grid, in one
// trace pass per workload.  Z8000 exercises the warm-start path (which
// pins stack groups to a single partition).
func TestStackDistProducesIdenticalRuns(t *testing.T) {
	for _, arch := range []synth.Arch{synth.PDP11, synth.Z8000} {
		pts := Grid([]int{64, 256}, arch.WordSize())
		base := Request{Arch: arch, Points: pts, Refs: 12000}

		byEngine := map[Engine]*Result{}
		for _, eng := range []Engine{Reference, MultiPass, StackDist} {
			req := base
			req.Engine = eng
			res, err := Run(req)
			if err != nil {
				t.Fatalf("%v/%v: %v", arch, eng, err)
			}
			byEngine[eng] = res
		}

		workloads := len(synth.Workloads(arch))
		if got := byEngine[StackDist].TracePasses; got != workloads {
			t.Errorf("%v: stackdist TracePasses = %d, want %d (one pass per workload)",
				arch, got, workloads)
		}
		for _, eng := range []Engine{Reference, MultiPass} {
			want := byEngine[eng]
			got := byEngine[StackDist]
			for _, p := range pts {
				if !reflect.DeepEqual(got.Runs[p], want.Runs[p]) {
					t.Errorf("%v %v: stackdist runs differ from %v\n got:  %v\n want: %v",
						arch, p, eng, got.Runs[p], want.Runs[p])
				}
				if got.Summaries[p] != want.Summaries[p] {
					t.Errorf("%v %v: stackdist summaries differ from %v", arch, p, eng)
				}
			}
		}
	}
}

// TestStackDistFallback: points stack analysis refuses (here FIFO
// replacement via Override) must fall back to multipass families or
// reference caches inside the same single pass and still match a
// Reference-engine sweep bit for bit.
func TestStackDistFallback(t *testing.T) {
	pts := []Point{
		{Net: 256, Block: 16, Sub: 8},
		{Net: 256, Block: 16, Sub: 2},
		{Net: 64, Block: 8, Sub: 4},
	}
	for name, override := range map[string]func(*cache.Config){
		"fifo":     func(c *cache.Config) { c.Replacement = cache.FIFO },
		"prefetch": func(c *cache.Config) { c.PrefetchOBL = true },
	} {
		want, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 8000,
			Workloads: []string{"ED"}, Override: override, Engine: Reference})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 8000,
			Workloads: []string{"ED"}, Override: override, Engine: StackDist})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if !reflect.DeepEqual(got.Runs[p], want.Runs[p]) {
				t.Errorf("%s %v: fallback runs differ\n got:  %v\n want: %v",
					name, p, got.Runs[p], want.Runs[p])
			}
		}
		if got.TracePasses != 1 {
			t.Errorf("%s: fallback points should ride the single pass: TracePasses = %d",
				name, got.TracePasses)
		}
	}
}

// TestStackDistShardInvariance: the shard count selects how stack
// groups fan out into set partitions, so it must never perturb a
// single counter -- the sweep-level half of the engine's partition
// invariance property.
func TestStackDistShardInvariance(t *testing.T) {
	pts := Grid([]int{64, 256}, 2)
	var base *Result
	for _, shards := range []int{-1, 1, 2, 3, 8} {
		res, err := Run(Request{Arch: synth.PDP11, Points: pts, Refs: 10000,
			Workloads: []string{"ED", "ROFF"}, Engine: StackDist, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if base == nil {
			base = res
			continue
		}
		for _, p := range pts {
			if !reflect.DeepEqual(res.Runs[p], base.Runs[p]) {
				t.Errorf("shards=%d perturbs runs at %v", shards, p)
			}
		}
	}
}

// TestStackDistTelemetryExact: identical instrumented StackDist sweeps
// count exactly the same work, the counters obey the run's structure
// (refs_simulated a whole multiple of refs_read, stack units flushed),
// and the emitted stream is schema-valid with no error events.
func TestStackDistTelemetryExact(t *testing.T) {
	request := func() Request {
		return Request{
			Arch:   synth.PDP11,
			Points: Grid([]int{64, 256}, 2),
			Refs:   2*trace.ChunkRefs + 100,
			Engine: StackDist,
			Shards: 4,
		}
	}
	run := func() (*telemetry.Snapshot, *bytes.Buffer) {
		var buf bytes.Buffer
		rec := telemetry.NewRun(telemetry.Options{Sink: telemetry.NewJSONLSink(&buf)})
		req := request()
		req.Recorder = rec
		if _, err := Run(req); err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		return rec.Snapshot(), &buf
	}

	s1, buf1 := run()
	s2, _ := run()
	if !reflect.DeepEqual(s1.Counters, s2.Counters) {
		t.Errorf("counters differ across identical runs\n run 1: %v\n run 2: %v", s1.Counters, s2.Counters)
	}

	req := request()
	workloads := len(synth.Workloads(req.Arch))
	planned := uint64(len(req.Points) * workloads)
	if got := s1.Counter(telemetry.PointsCompleted); got != planned {
		t.Errorf("points_completed = %d, want %d", got, planned)
	}
	if s1.Counter(telemetry.PointsFailed) != 0 {
		t.Errorf("clean run counted failures: %v", s1.Counters)
	}
	refsRead := s1.Counter(telemetry.RefsRead)
	refsSim := s1.Counter(telemetry.RefsSimulated)
	if refsRead == 0 || refsSim == 0 || refsSim%refsRead != 0 {
		t.Errorf("refs_simulated %d not a multiple of refs_read %d", refsSim, refsRead)
	}
	if s1.Counter(telemetry.StackUnitsFlushed) == 0 {
		t.Error("stackdist sweep flushed no stack units")
	}
	// The whole default grid is LRU demand/load-forward write-allocate,
	// all of it stack-supported: nothing should fall back to families.
	if got := s1.Counter(telemetry.FamiliesFlushed); got != 0 {
		t.Errorf("families_flushed = %d, want 0 (no fallback configs)", got)
	}

	st, err := telemetry.ValidateStream(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatalf("emitted stream invalid: %v", err)
	}
	if got := st.ByType[telemetry.EventPointDone]; got != int(planned) {
		t.Errorf("point-done events = %d, want %d", got, planned)
	}
	if st.ByType[telemetry.EventErrorAttributed] != 0 {
		t.Errorf("clean run emitted %d error events", st.ByType[telemetry.EventErrorAttributed])
	}
}

// TestStackDistGroupFailureAttribution: a panic inside one set
// partition of a stack group poisons the whole group -- a partial
// merge would silently undercount -- and every point of the group is
// attributed exactly once, mirrored by exactly one error-attributed
// event per PointError, while every other point completes bit-identical
// to an undisturbed sweep.
func TestStackDistGroupFailureAttribution(t *testing.T) {
	// Two stack groups: block 16 and block 8.  The injected fault kills
	// the block-16 group; the block-8 group must be untouched.
	pts := []Point{
		{Net: 256, Block: 16, Sub: 8},
		{Net: 256, Block: 16, Sub: 2},
		{Net: 1024, Block: 16, Sub: 8},
		{Net: 256, Block: 8, Sub: 4},
		{Net: 1024, Block: 8, Sub: 4},
	}
	target := pts[0]
	base := Request{Arch: synth.PDP11, Points: pts, Refs: 10000,
		Workloads: []string{"ED"}, Engine: StackDist, Shards: 4}

	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	sink := &captureSink{}
	rec := telemetry.NewRun(telemetry.Options{Sink: sink})
	req := base
	req.ContinueOnError = true
	req.Recorder = rec
	req.Hooks = &Hooks{BeforeUnit: func(workload string, shard int, points []Point, chunk int) {
		if chunk != 0 {
			return
		}
		for _, p := range points {
			if p == target {
				panic("injected stack-partition fault")
			}
		}
	}}
	res, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	rec.Close()

	lost := map[Point]bool{}
	for _, pe := range res.Errors {
		if pe.WorkloadScope() {
			t.Fatalf("unit fault escalated to workload scope: %v", pe)
		}
		if lost[pe.Point] {
			t.Errorf("point %v attributed more than once", pe.Point)
		}
		lost[pe.Point] = true
	}
	for _, p := range pts {
		wantLost := p.Block == 16 // the target's stack group
		if lost[p] != wantLost {
			t.Errorf("%v: lost=%v, want %v", p, lost[p], wantLost)
		}
		if _, ok := res.Runs[p]; ok == wantLost {
			t.Errorf("%v: run present=%v, want %v", p, ok, !wantLost)
		}
		if !wantLost && !reflect.DeepEqual(res.Runs[p], clean.Runs[p]) {
			t.Errorf("%v: surviving runs differ from undisturbed sweep", p)
		}
	}

	events := sink.byType(telemetry.EventErrorAttributed)
	if len(events) != len(res.Errors) {
		t.Errorf("error-attributed events = %d, want one per PointError = %d",
			len(events), len(res.Errors))
	}
	s := rec.Snapshot()
	if got := s.Counter(telemetry.PointsFailed); got != uint64(len(res.Errors)) {
		t.Errorf("points_failed = %d, want %d", got, len(res.Errors))
	}
}
