// The kill-restart campaign: the defensive half of the service-level
// harness in servicekill.go.  A real sweepd-shaped child process (this
// test binary re-exec'd; see TestMain) takes burst load and is
// SIGKILLed at seed-chosen points, over and over, then restarted one
// last time and allowed to finish.  The campaign proves the durability
// contract end to end:
//
//   - every admitted job reaches a terminal state exactly once;
//   - recovered results are byte-identical to an uninterrupted run;
//   - the job journal replays and validates after any crash point.
package faultinject_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"strconv"
	"syscall"
	"testing"
	"time"

	"subcache/internal/faultinject"
	"subcache/internal/service"
)

// childDirEnv switches the test binary into service-child mode: run a
// real sweep service over the given data directory until killed.
const childDirEnv = "FAULTINJECT_SWEEPD_DIR"

func TestMain(m *testing.M) {
	if os.Getenv(childDirEnv) != "" {
		runServiceChild()
		return
	}
	os.Exit(m.Run())
}

// runServiceChild is the harnessed daemon: a single-worker sweep
// service (one worker keeps a backlog alive, so every kill lands on a
// non-empty job table) announcing its address via the harness
// handshake.  SIGTERM drains gracefully -- the campaign's final round
// uses it so the journal ends in a cleanly validatable state; every
// other round ends in SIGKILL, which no handler can observe.
func runServiceChild() {
	srv, err := service.New(service.Options{
		Dir:          os.Getenv(childDirEnv),
		Workers:      1,
		Heartbeat:    10 * time.Millisecond,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGTERM)
		<-ch
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		srv.Shutdown(ctx)
		cancel()
		os.Exit(0)
	}()
	fmt.Printf("%s%s\n", faultinject.ReadyPrefix, ln.Addr())
	http.Serve(ln, srv)
}

// campaignRequests is the burst: distinct sweeps, each heavy enough
// (two net sizes, long traces) that the single worker still has a
// backlog when the kill lands.
func campaignRequests() []service.SweepRequest {
	reqs := make([]service.SweepRequest, 5)
	for i := range reqs {
		reqs[i] = service.SweepRequest{
			Arch: "PDP-11",
			Nets: []int{64, 256},
			Refs: 300_000 + 1_000*i,
		}
	}
	return reqs
}

// startChild re-execs this test binary in service-child mode over dir.
func startChild(t *testing.T, dir string) *faultinject.ServiceProc {
	t.Helper()
	p, err := faultinject.StartService(os.Args[0], nil,
		append(os.Environ(), childDirEnv+"="+dir), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// submitAsync fires one submit and ignores every failure: during a
// kill round the child can die mid-request (connection reset) or
// refuse (queue contention), and the campaign's contract is only about
// jobs that WERE admitted.
func submitAsync(addr string, req service.SweepRequest) {
	b, _ := json.Marshal(req)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/sweeps", "application/json", bytes.NewReader(b))
		if err == nil {
			resp.Body.Close()
		}
	}()
}

// submitWait submits one request with ?wait=1 and returns the terminal
// envelope.
func submitWait(t *testing.T, addr string, req service.SweepRequest) service.SubmitResponse {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	cl := &http.Client{Timeout: 5 * time.Minute}
	resp, err := cl.Post("http://"+addr+"/v1/sweeps?wait=1", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var out service.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("submit: decoding response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: code %d status %q error %q", resp.StatusCode, out.Status, out.Error)
	}
	return out
}

// points parses a result envelope down to its Points array, the
// byte-identity unit of comparison (TracePasses and Resumed legitimately
// differ between a resumed and an uninterrupted run).
func points(t *testing.T, raw json.RawMessage) []service.PointResult {
	t.Helper()
	var res service.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if len(res.Points) == 0 {
		t.Fatal("empty result")
	}
	return res.Points
}

// TestServiceKillRestartCampaign is the campaign itself.  The seed is
// fixed for CI and overridable via FAULTINJECT_SEED to explore (or
// reproduce) other kill timings.
func TestServiceKillRestartCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-restart campaign skipped in -short mode")
	}
	seed := uint64(1)
	if s := os.Getenv("FAULTINJECT_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("FAULTINJECT_SEED: %v", err)
		}
		seed = v
	}
	dir := t.TempDir()
	reqs := campaignRequests()
	plan := faultinject.KillPlan(seed, 4, 100*time.Millisecond, 600*time.Millisecond)
	t.Logf("seed %d, %d kill rounds: %v", seed, len(plan), plan)

	// Kill rounds: start, load, survive kp.Delay, die by SIGKILL.
	for round, kp := range plan {
		p := startChild(t, dir)
		for _, req := range reqs {
			submitAsync(p.Addr, req)
		}
		time.Sleep(kp.Delay)
		if err := p.Kill(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}

	// Final round: recover, resubmit everything, and require every job
	// to reach done -- recovered or cached, never lost, never failed.
	p := startChild(t, dir)
	finalPoints := make([][]service.PointResult, len(reqs))
	ids := make([]string, len(reqs))
	for i, req := range reqs {
		out := submitWait(t, p.Addr, req)
		if out.Status != string(service.StatusDone) {
			t.Fatalf("request %d: terminal status %q, want done", i, out.Status)
		}
		finalPoints[i] = points(t, out.Result)
		ids[i] = out.ID
	}

	// The survivor's own counters: at least one kill must have landed
	// on a live job table, or the campaign proved nothing.
	var stats struct {
		Telemetry struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"telemetry"`
	}
	sresp, err := http.Get("http://" + p.Addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if got := stats.Telemetry.Counters["jobs_recovered"]; got == 0 {
		t.Error("jobs_recovered = 0: no kill landed on a live job table; shrink the kill delays or grow the requests")
	}

	// Graceful goodbye, then the journal must validate strictly and
	// show every fingerprint terminal exactly once.
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(time.Minute); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	jf, err := os.Open(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if _, err := service.ValidateJournal(jf); err != nil {
		t.Fatalf("final journal invalid: %v", err)
	}
	if _, err := jf.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	stats2, err := service.ValidateJournal(jf)
	if err != nil {
		t.Fatal(err)
	}
	terminalByFP := journalTerminalCounts(t, filepath.Join(dir, "jobs.jsonl"))
	for fp, n := range terminalByFP {
		if n != 1 {
			t.Errorf("fingerprint %s reached a terminal state %d times, want exactly 1", fp, n)
		}
	}
	t.Logf("final journal: %d records %v; %d fingerprints terminal", stats2.Records, stats2.ByKind, len(terminalByFP))

	// Byte-identity: the same burst against a fresh, never-killed
	// service must produce the same points.
	cleanDir := t.TempDir()
	pc := startChild(t, cleanDir)
	for i, req := range reqs {
		out := submitWait(t, pc.Addr, req)
		if out.Status != string(service.StatusDone) {
			t.Fatalf("clean run request %d: status %q", i, out.Status)
		}
		if out.ID != ids[i] {
			t.Errorf("request %d: clean-run id %s != campaign id %s", i, out.ID, ids[i])
		}
		if !reflect.DeepEqual(points(t, out.Result), finalPoints[i]) {
			t.Errorf("request %d (%s): recovered points differ from the uninterrupted run", i, ids[i])
		}
	}
	pc.Signal(syscall.SIGTERM)
	pc.Wait(time.Minute)
}

// journalTerminalCounts counts terminal (completed/failed/canceled)
// records per fingerprint in a journal file.
func journalTerminalCounts(t *testing.T, path string) map[string]int {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int)
	for _, line := range bytes.Split(b, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec service.JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("journal line: %v", err)
		}
		switch rec.Kind {
		case service.KindCompleted, service.KindFailed, service.KindCanceled:
			out[rec.FP]++
		}
	}
	return out
}
