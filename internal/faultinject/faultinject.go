// Package faultinject deterministically injects faults into sweep
// execution, for testing the harness's fault tolerance end to end.
//
// A long simulation campaign is only trustworthy if every partial
// failure is detected and attributed rather than silently absorbed.
// This package provides the offensive half of that proof: seed-driven
// wrappers that make trace sources fail or panic mid-stream, make shard
// workers and simulation units panic at chosen chunks, cancel contexts
// mid-pass, and corrupt serialised trace bytes -- all reproducibly, so
// a failing injection can be replayed from its seed.  The test suites
// (here and in internal/sweep) then assert the defensive half: every
// injected fault either surfaces as an error attributed to its exact
// workload/point/shard, or is survived with the surviving points
// bit-identical to an undisturbed run.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"

	"subcache/internal/rng"
	"subcache/internal/sweep"
	"subcache/internal/trace"
)

// Fault enumerates the injectable fault kinds.
type Fault int

const (
	// ShortRead ends the trace source mid-stream with
	// io.ErrUnexpectedEOF, as a truncated trace file would.
	ShortRead Fault = iota
	// ParseError makes the trace source return a latched parse-style
	// error mid-stream, as a corrupt trace record would.
	ParseError
	// SourcePanic makes the trace source panic mid-stream.
	SourcePanic
	// UnitPanic panics inside one simulation unit (a multipass family
	// or fallback cache) at a chosen chunk, killing exactly that unit.
	UnitPanic
	// ShardPanic panics inside one shard worker at a chosen chunk,
	// killing every unit the shard owns.
	ShardPanic
	// Cancel cancels the sweep's context at a chosen chunk.
	Cancel
	numFaults
)

// String names the fault for test output.
func (f Fault) String() string {
	switch f {
	case ShortRead:
		return "short-read"
	case ParseError:
		return "parse-error"
	case SourcePanic:
		return "source-panic"
	case UnitPanic:
		return "unit-panic"
	case ShardPanic:
		return "shard-panic"
	case Cancel:
		return "cancel"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// ErrInjected is the base cause of every injected error, so tests can
// errors.Is their way to it through the sweep's attribution layers.
var ErrInjected = errors.New("faultinject: injected fault")

// Source wraps an inner trace source with a fault that fires after a
// given number of references.  Errors are latched: once the source has
// failed it keeps failing, like the production trace readers.
type Source struct {
	inner trace.Source
	fault Fault
	left  int
	err   error
}

// NewSource arms fault to fire after the inner source has yielded
// after references.  Only the source-level faults (ShortRead,
// ParseError, SourcePanic) are meaningful here.
func NewSource(inner trace.Source, fault Fault, after int) *Source {
	return &Source{inner: inner, fault: fault, left: after}
}

// Next implements trace.Source.
func (s *Source) Next() (trace.Ref, error) {
	if s.err != nil {
		return trace.Ref{}, s.err
	}
	if s.left <= 0 {
		switch s.fault {
		case ShortRead:
			s.err = fmt.Errorf("%w: %w", ErrInjected, io.ErrUnexpectedEOF)
		case ParseError:
			s.err = fmt.Errorf("%w: corrupt record", ErrInjected)
		case SourcePanic:
			s.err = fmt.Errorf("%w: source panicked", ErrInjected)
			panic("faultinject: injected source panic")
		default:
			s.err = fmt.Errorf("%w: %v misused as a source fault", ErrInjected, s.fault)
		}
		return trace.Ref{}, s.err
	}
	s.left--
	return s.inner.Next()
}

// SourceHooks returns sweep hooks that arm a source-level fault on the
// named workload, after the given number of references.
func SourceHooks(workload string, fault Fault, after int) *sweep.Hooks {
	return &sweep.Hooks{
		WrapSource: func(w string, src trace.Source) trace.Source {
			if w != workload {
				return src
			}
			return NewSource(src, fault, after)
		},
	}
}

// UnitPanicHooks returns hooks that panic inside the simulation unit
// carrying the given point, on the named workload, when the unit
// reaches the given chunk.  The panic fires inside the unit's recovery
// boundary, so exactly that unit's points must be attributed.
func UnitPanicHooks(workload string, target sweep.Point, chunk int) *sweep.Hooks {
	return &sweep.Hooks{
		BeforeUnit: func(w string, shard int, points []sweep.Point, c int) {
			if w != workload || c != chunk {
				return
			}
			for _, p := range points {
				if p == target {
					panic(fmt.Sprintf("faultinject: injected unit panic at %s chunk %d", target, c))
				}
			}
		},
	}
}

// ShardPanicHooks returns hooks that panic inside the given shard
// worker on the named workload at the given chunk, before the shard
// touches any of its units: the whole shard's points must be
// attributed, and every other shard must survive bit-identically.
func ShardPanicHooks(workload string, shard, chunk int) *sweep.Hooks {
	return &sweep.Hooks{
		BeforeChunk: func(w string, s, c int) {
			if w == workload && s == shard && c == chunk {
				panic(fmt.Sprintf("faultinject: injected shard panic at shard %d chunk %d", s, c))
			}
		},
	}
}

// CancelHooks returns hooks that cancel the given context when the
// named workload reaches the given chunk (on any shard or unit), plus
// the context to run the sweep under.  The sweep must abort with the
// context's error and return no partial result.
func CancelHooks(workload string, chunk int) (context.Context, *sweep.Hooks) {
	ctx, cancel := context.WithCancel(context.Background())
	fire := func(w string, c int) {
		if w == workload && c >= chunk {
			cancel()
		}
	}
	return ctx, &sweep.Hooks{
		BeforeChunk: func(w string, _, c int) { fire(w, c) },
		BeforeUnit:  func(w string, _ int, _ []sweep.Point, c int) { fire(w, c) },
	}
}

// TruncateTail returns data with its last n bytes removed: a partially
// written file, e.g. a gzip stream missing its footer.
func TruncateTail(data []byte, n int) []byte {
	if n >= len(data) {
		return nil
	}
	return append([]byte(nil), data[:len(data)-n]...)
}

// FlipByte returns data with every bit of byte i inverted: mid-stream
// corruption that checksums and record validation must catch.
func FlipByte(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i%len(out)] ^= 0xFF
	return out
}

// Injection is one planned fault: what to inject and where.
type Injection struct {
	Fault    Fault
	Workload string
	// After is the reference count before a source-level fault fires.
	After int
	// Chunk is the chunk index at which a hook-level fault fires.
	Chunk int
	// Shard is the shard worker a ShardPanic targets.
	Shard int
	// Point indexes the request's point list for a UnitPanic target.
	Point int
}

// String renders the injection for test names and logs.
func (in Injection) String() string {
	return fmt.Sprintf("%s/%s/after=%d/chunk=%d/shard=%d/point=%d",
		in.Fault, in.Workload, in.After, in.Chunk, in.Shard, in.Point)
}

// Plan derives a deterministic fault campaign from a seed: n
// injections across the given workloads, a trace of refs references,
// points grid points and shards shard workers.  The same seed always
// yields the same campaign, so a CI failure reproduces locally.
func Plan(seed uint64, n int, workloads []string, refs, points, shards int) []Injection {
	r := rng.New(seed)
	chunks := (refs + trace.ChunkRefs - 1) / trace.ChunkRefs
	out := make([]Injection, n)
	for i := range out {
		out[i] = Injection{
			Fault:    Fault(r.Intn(int(numFaults))),
			Workload: workloads[r.Intn(len(workloads))],
			After:    r.Intn(refs),
			Chunk:    r.Intn(chunks),
			Shard:    r.Intn(shards),
			Point:    r.Intn(points),
		}
	}
	return out
}

// Apply arms one injection against a sweep request, returning the
// context to run it under.  The request's Hooks field is overwritten.
func Apply(req *sweep.Request, in Injection) context.Context {
	switch in.Fault {
	case ShortRead, ParseError, SourcePanic:
		req.Hooks = SourceHooks(in.Workload, in.Fault, in.After)
		return context.Background()
	case UnitPanic:
		req.Hooks = UnitPanicHooks(in.Workload, req.Points[in.Point%len(req.Points)], in.Chunk)
		return context.Background()
	case ShardPanic:
		req.Hooks = ShardPanicHooks(in.Workload, in.Shard, in.Chunk)
		return context.Background()
	case Cancel:
		ctx, hooks := CancelHooks(in.Workload, in.Chunk)
		req.Hooks = hooks
		return ctx
	default:
		panic(fmt.Sprintf("faultinject: unknown fault %v", in.Fault))
	}
}
