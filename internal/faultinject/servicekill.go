// Service-level fault injection: a harness that runs a sweep service
// in a separate process and kills it -- SIGKILL, no warning, no drain
// -- at seed-chosen points under load, then restarts it.  This is the
// offensive half of the service durability proof: the package's other
// injectors corrupt a single sweep from the inside, while this one
// takes out the whole daemon from the outside, the way a machine
// crash, OOM kill or power cut would.  The defensive half lives in the
// kill-restart campaign tests, which assert that every admitted job
// still reaches a terminal state exactly once and that recovered
// results are byte-identical to an uninterrupted run.
package faultinject

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"subcache/internal/rng"
)

// KillPoint is one planned service kill: how long to let the freshly
// started service run (and absorb load) before SIGKILLing it.
type KillPoint struct {
	// Delay is the service's survival time for this round.
	Delay time.Duration
}

// KillPlan derives a deterministic kill campaign from a seed: n kills
// with survival times uniform in [minDelay, maxDelay].  The same seed
// always yields the same campaign, so a CI failure reproduces locally.
func KillPlan(seed uint64, n int, minDelay, maxDelay time.Duration) []KillPoint {
	r := rng.New(seed)
	span := int(maxDelay - minDelay)
	out := make([]KillPoint, n)
	for i := range out {
		d := minDelay
		if span > 0 {
			d += time.Duration(r.Intn(span + 1))
		}
		out[i] = KillPoint{Delay: d}
	}
	return out
}

// ServiceProc is one service process under harness control: started
// with StartService, killed with Kill or stopped with Signal+Wait.
type ServiceProc struct {
	// Addr is the address the child announced on stdout.
	Addr string

	cmd  *exec.Cmd
	done chan error // closed by the reaper with the Wait error
}

// ReadyPrefix is the stdout handshake line a harnessed service child
// must print once it is listening: ReadyPrefix immediately followed by
// its host:port address, on a line of its own.
const ReadyPrefix = "SERVICE_READY="

// StartService launches bin with the given arguments and environment
// (nil env inherits the parent's) and waits -- at most timeout -- for
// the child to announce readiness via the ReadyPrefix handshake on
// stdout.  The child's stderr (and any further stdout) is forwarded to
// this process's stderr, so a failing campaign keeps the child's logs.
func StartService(bin string, args, env []string, timeout time.Duration) (*ServiceProc, error) {
	cmd := exec.Command(bin, args...)
	if env != nil {
		cmd.Env = env
	}
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("faultinject: service stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("faultinject: starting %s: %w", bin, err)
	}
	p := &ServiceProc{cmd: cmd, done: make(chan error, 1)}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if addr, ok := strings.CutPrefix(line, ReadyPrefix); ok {
				select {
				case addrCh <- strings.TrimSpace(addr):
				default:
				}
				continue
			}
			fmt.Fprintln(os.Stderr, line)
		}
		io.Copy(io.Discard, stdout)
	}()
	go func() { p.done <- cmd.Wait() }()

	select {
	case addr := <-addrCh:
		p.Addr = addr
		return p, nil
	case err := <-p.done:
		return nil, fmt.Errorf("faultinject: service exited before ready: %v", err)
	case <-time.After(timeout):
		p.Kill()
		return nil, fmt.Errorf("faultinject: service not ready within %v", timeout)
	}
}

// Kill SIGKILLs the service -- the crash being injected: no drain, no
// flush, no goodbye -- and reaps it.
func (p *ServiceProc) Kill() error {
	if err := p.cmd.Process.Kill(); err != nil && !strings.Contains(err.Error(), "already finished") {
		return fmt.Errorf("faultinject: kill: %w", err)
	}
	<-p.done
	return nil
}

// Signal delivers a signal (e.g. SIGTERM for a graceful drain) without
// reaping; pair with Wait.
func (p *ServiceProc) Signal(sig syscall.Signal) error {
	return p.cmd.Process.Signal(sig)
}

// Wait blocks until the service exits on its own, at most timeout
// (after which it is killed and an error returned).
func (p *ServiceProc) Wait(timeout time.Duration) error {
	select {
	case err := <-p.done:
		return err
	case <-time.After(timeout):
		p.Kill()
		return fmt.Errorf("faultinject: service still running after %v", timeout)
	}
}
