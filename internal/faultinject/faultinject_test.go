package faultinject

import (
	"context"
	"errors"
	"io"
	"reflect"
	"testing"

	"subcache/internal/metrics"
	"subcache/internal/sweep"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

// campaignSeed fixes the CI smoke campaign; change it only with the
// fault model (the whole point is reproducibility).
const campaignSeed = 0x5bc7

// testRefs spans multiple trace chunks so chunk-indexed faults have
// somewhere to land (trace.ChunkRefs = 8192).
const testRefs = 3*trace.ChunkRefs + 100

func testPoints() []sweep.Point { return sweep.Grid([]int{64, 256}, 2) }

func baseline(t *testing.T, req sweep.Request) *sweep.Result {
	t.Helper()
	req.Hooks = nil
	res, err := sweep.Run(req)
	if err != nil {
		t.Fatalf("clean baseline: %v", err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("clean baseline reported errors: %v", res.Errors)
	}
	return res
}

// injectedCause reports whether an attributed error traces back to this
// package's injection: either the ErrInjected sentinel or a recovered
// panic (whose value is a string, not a wrapped error).
func injectedCause(err error) bool {
	if errors.Is(err, ErrInjected) {
		return true
	}
	var pe *sweep.PanicError
	return errors.As(err, &pe)
}

// checkAttributedOrSurvived is the harness's central guarantee: after
// any single injected fault, every (workload, point) pair is either
// bit-identical to the undisturbed baseline or covered by an error
// attributed to the injection's workload.
func checkAttributedOrSurvived(t *testing.T, in Injection, res *sweep.Result, err error, base *sweep.Result, workloads []string, points []sweep.Point) {
	t.Helper()
	if err != nil {
		// Only the cancellation fault aborts a ContinueOnError sweep.
		if in.Fault != Cancel || !errors.Is(err, context.Canceled) {
			t.Fatalf("sweep error is not the injected cancellation: %v", err)
		}
		if res != nil {
			t.Fatalf("cancelled sweep returned a partial result")
		}
		return
	}

	// Index the errors by (workload, point); verify attribution.
	lost := make(map[string]map[sweep.Point]bool)
	for _, pe := range res.Errors {
		if pe.Workload != in.Workload {
			t.Errorf("error attributed to workload %q, injected into %q: %v", pe.Workload, in.Workload, pe)
		}
		if !injectedCause(pe.Cause) {
			t.Errorf("error cause does not trace to the injection: %v", pe)
		}
		if lost[pe.Workload] == nil {
			lost[pe.Workload] = make(map[sweep.Point]bool)
		}
		if pe.WorkloadScope() {
			for _, p := range points {
				lost[pe.Workload][p] = true
			}
		} else {
			lost[pe.Workload][pe.Point] = true
		}
	}

	// Every pair: survived bit-identical, or attributed.
	for _, p := range points {
		baseRuns := runsByWorkload(base.Runs[p])
		gotRuns := runsByWorkload(res.Runs[p])
		for _, w := range workloads {
			got, ok := gotRuns[w]
			if !ok {
				if !lost[w][p] {
					t.Errorf("workload %s point %v: missing with no attributed error", w, p)
				}
				continue
			}
			if lost[w][p] {
				t.Errorf("workload %s point %v: both a run and an error", w, p)
			}
			if !reflect.DeepEqual(got, baseRuns[w]) {
				t.Errorf("workload %s point %v: surviving run differs from baseline\n got:  %v\n want: %v",
					w, p, got, baseRuns[w])
			}
		}
	}
}

func runsByWorkload(runs []metrics.Run) map[string]metrics.Run {
	out := make(map[string]metrics.Run, len(runs))
	for _, r := range runs {
		out[r.Trace] = r
	}
	return out
}

// TestCampaignAttributedOrSurvived drives a deterministic seed-derived
// fault campaign through every engine/shard strategy and asserts the
// attributed-or-survived invariant for each injection.
func TestCampaignAttributedOrSurvived(t *testing.T) {
	points := testPoints()
	var workloads []string
	for _, p := range synth.Workloads(synth.PDP11) {
		workloads = append(workloads, p.Name)
	}
	variants := []struct {
		name   string
		engine sweep.Engine
		shards int
	}{
		{"reference-legacy", sweep.Reference, 0},
		{"reference-sharded", sweep.Reference, 2},
		{"multipass-materialised", sweep.MultiPass, -1},
		{"multipass-sharded", sweep.MultiPass, 2},
		{"stackdist-materialised", sweep.StackDist, -1},
		{"stackdist-sharded", sweep.StackDist, 2},
	}
	injections := Plan(campaignSeed, 10, workloads, testRefs, len(points), 2)

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			req := sweep.Request{
				Arch: synth.PDP11, Points: points, Refs: testRefs,
				Engine: v.engine, Shards: v.shards, ContinueOnError: true,
			}
			base := baseline(t, req)
			for _, in := range injections {
				in := in
				t.Run(in.String(), func(t *testing.T) {
					r := req
					ctx := Apply(&r, in)
					res, err := sweep.RunContext(ctx, r)
					checkAttributedOrSurvived(t, in, res, err, base, workloads, points)
				})
			}
		})
	}
}

// TestFailFastAttribution: without ContinueOnError an injected unit
// panic surfaces as the sweep's error, typed and attributed, instead of
// crashing the process.
func TestFailFastAttribution(t *testing.T) {
	points := testPoints()
	target := points[len(points)/2]
	for _, shards := range []int{-1, 2} {
		req := sweep.Request{
			Arch: synth.PDP11, Points: points, Refs: testRefs,
			Engine: sweep.MultiPass, Shards: shards,
			Hooks: UnitPanicHooks("ED", target, 1),
		}
		res, err := sweep.Run(req)
		if err == nil {
			t.Fatalf("shards=%d: injected panic did not fail the sweep", shards)
		}
		if res != nil {
			t.Errorf("shards=%d: failed sweep returned a result", shards)
		}
		var pe *sweep.PointError
		if !errors.As(err, &pe) {
			t.Fatalf("shards=%d: error is not a *sweep.PointError: %v", shards, err)
		}
		if pe.Workload != "ED" {
			t.Errorf("shards=%d: attributed to workload %q, want ED", shards, pe.Workload)
		}
		var panicErr *sweep.PanicError
		if !errors.As(err, &panicErr) {
			t.Errorf("shards=%d: cause is not a recovered panic: %v", shards, pe.Cause)
		}
	}
}

// TestWorkloadScopeNoPartialCounters: a mid-stream trace failure must
// lose the whole workload -- its counters cover a truncated stream, so
// reporting any of its points would be silently wrong.
func TestWorkloadScopeNoPartialCounters(t *testing.T) {
	points := testPoints()
	for _, shards := range []int{0, 2} {
		req := sweep.Request{
			Arch: synth.PDP11, Points: points, Refs: testRefs,
			Engine: sweep.MultiPass, Shards: shards, ContinueOnError: true,
			Hooks: SourceHooks("ED", ShortRead, testRefs/2),
		}
		res, err := sweep.Run(req)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		sawScope := false
		for _, pe := range res.Errors {
			if pe.Workload != "ED" {
				t.Errorf("shards=%d: error on wrong workload: %v", shards, pe)
			}
			if pe.WorkloadScope() {
				sawScope = true
			}
		}
		if !sawScope {
			t.Fatalf("shards=%d: no workload-scope error for the truncated trace; got %v", shards, res.Errors)
		}
		for p, runs := range res.Runs {
			for _, r := range runs {
				if r.Trace == "ED" {
					t.Errorf("shards=%d: point %v reports a run for the truncated workload", shards, p)
				}
			}
		}
	}
}

// TestSourceFaultsLatch: an injected source keeps returning its error,
// matching the latched contract of the production trace readers.
func TestSourceFaultsLatch(t *testing.T) {
	refs := []trace.Ref{{Kind: trace.Read, Size: 2}, {Kind: trace.Read, Size: 2}}
	src := NewSource(trace.NewSliceSource(refs), ShortRead, 1)
	if _, err := src.Next(); err != nil {
		t.Fatalf("ref before the fault: %v", err)
	}
	_, err1 := src.Next()
	if !errors.Is(err1, io.ErrUnexpectedEOF) || !errors.Is(err1, ErrInjected) {
		t.Fatalf("fault error = %v, want injected unexpected EOF", err1)
	}
	if _, err2 := src.Next(); err2 != err1 {
		t.Errorf("error not latched: %v then %v", err1, err2)
	}
}

// TestPlanDeterministic: the campaign is a pure function of its seed.
func TestPlanDeterministic(t *testing.T) {
	w := []string{"a", "b"}
	p1 := Plan(42, 8, w, testRefs, 10, 4)
	p2 := Plan(42, 8, w, testRefs, 10, 4)
	if !reflect.DeepEqual(p1, p2) {
		t.Error("same seed produced different campaigns")
	}
	p3 := Plan(43, 8, w, testRefs, 10, 4)
	if reflect.DeepEqual(p1, p3) {
		t.Error("different seeds produced identical campaigns")
	}
}

// TestCorruptors: the byte-level corruptors behave as documented.
func TestCorruptors(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5}
	if got := TruncateTail(data, 2); !reflect.DeepEqual(got, []byte{1, 2, 3}) {
		t.Errorf("TruncateTail = %v", got)
	}
	if got := TruncateTail(data, 9); got != nil {
		t.Errorf("TruncateTail past start = %v, want nil", got)
	}
	if got := FlipByte(data, 1); got[1] != 2^0xFF || got[0] != 1 {
		t.Errorf("FlipByte = %v", got)
	}
	if !reflect.DeepEqual(data, []byte{1, 2, 3, 4, 5}) {
		t.Error("corruptors mutated their input")
	}
}
