package faultinject

import (
	"errors"
	"sync"
	"testing"

	"subcache/internal/sweep"
	"subcache/internal/synth"
	"subcache/internal/telemetry"
)

// captureSink collects emitted events in memory.
type captureSink struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (c *captureSink) Write(ev *telemetry.Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, *ev)
	return nil
}

func (c *captureSink) Close() error { return nil }

func (c *captureSink) all() []telemetry.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]telemetry.Event(nil), c.events...)
}

// TestCampaignErrorsMirroredInEvents re-runs the seed-derived fault
// campaign with a recorder attached and asserts the telemetry
// contract for failures: every PointError a sweep reports has exactly
// one matching error-attributed event on the stream, and the
// points_failed counter agrees.
func TestCampaignErrorsMirroredInEvents(t *testing.T) {
	points := testPoints()
	var workloads []string
	for _, p := range synth.Workloads(synth.PDP11) {
		workloads = append(workloads, p.Name)
	}
	injections := Plan(campaignSeed, 10, workloads, testRefs, len(points), 2)

	for _, eng := range []sweep.Engine{sweep.MultiPass, sweep.StackDist} {
		for _, in := range injections {
			in := in
			t.Run(eng.String()+"/"+in.String(), func(t *testing.T) {
				r := sweep.Request{
					Arch: synth.PDP11, Points: points, Refs: testRefs,
					Engine: eng, Shards: 2, ContinueOnError: true,
				}
				sink := &captureSink{}
				rec := telemetry.NewRun(telemetry.Options{Sink: sink})
				r.Recorder = rec
				ctx := Apply(&r, in)
				res, err := sweep.RunContext(ctx, r)
				if cerr := rec.Close(); cerr != nil {
					t.Fatalf("recorder close: %v", cerr)
				}
				if err != nil {
					// The cancellation fault aborts the sweep; there is no
					// result whose errors could be mirrored.
					return
				}

				var attributed []*telemetry.ErrorAttributed
				for _, ev := range sink.all() {
					if ev.Type == telemetry.EventErrorAttributed {
						attributed = append(attributed, ev.Error)
					}
				}
				if len(attributed) != len(res.Errors) {
					t.Fatalf("%d error-attributed events for %d PointErrors", len(attributed), len(res.Errors))
				}
				if got := rec.Snapshot().Counter(telemetry.PointsFailed); got != uint64(len(res.Errors)) {
					t.Errorf("points_failed = %d, want %d", got, len(res.Errors))
				}

				for _, pe := range res.Errors {
					point := ""
					if !pe.WorkloadScope() {
						point = pe.Point.String()
					}
					var panicErr *sweep.PanicError
					isPanic := errors.As(pe.Cause, &panicErr)
					matches := 0
					for _, ea := range attributed {
						if ea.Workload == pe.Workload && ea.Point == point &&
							ea.Shard == pe.Shard && ea.Cause == pe.Cause.Error() && ea.Panic == isPanic {
							matches++
						}
					}
					if matches != 1 {
						t.Errorf("PointError %v: %d matching events, want 1", pe, matches)
					}
				}
			})
		}
	}
}
