package subcache

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func paperConfig() Config {
	return Config{NetSize: 1024, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero config")
	}
}

func TestSimulatorAccessAndRatios(t *testing.T) {
	s, err := New(paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Access(Ref{Addr: 0x100, Kind: Read, Size: 2})
	s.Access(Ref{Addr: 0x100, Kind: Read, Size: 2})
	s.Finish()
	if got := s.MissRatio(); got != 0.5 {
		t.Errorf("miss = %g, want 0.5", got)
	}
	// One miss loads one 8-byte sub-block = 4 words over 2 accesses.
	if got := s.TrafficRatio(); got != 2 {
		t.Errorf("traffic = %g, want 2", got)
	}
	if got := s.ScaledTrafficRatio(NibbleModel()); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("nibble = %g, want 1.0", got) // 2 * cost(4)/4 = 2*0.5
	}
	if got := s.ScaledTrafficRatio(LinearModel()); got != 2 {
		t.Errorf("linear = %g, want 2", got)
	}
}

func TestAccessSplitsWideRefs(t *testing.T) {
	s, _ := New(paperConfig())
	// A 4-byte reference on a 2-byte path is two accesses.
	s.Access(Ref{Addr: 0x200, Kind: Read, Size: 4})
	if got := s.Stats().Accesses; got != 2 {
		t.Errorf("accesses = %d, want 2", got)
	}
}

func TestRunSource(t *testing.T) {
	s, _ := New(paperConfig())
	refs := []Ref{
		{Addr: 0x100, Kind: IFetch, Size: 2},
		{Addr: 0x102, Kind: IFetch, Size: 2},
		{Addr: 0x500, Kind: Write, Size: 2},
	}
	if err := s.Run(NewSliceSource(refs)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Accesses != 2 { // write not counted
		t.Errorf("accesses = %d, want 2", st.Accesses)
	}
	if st.WriteAccesses != 1 {
		t.Errorf("writes = %d, want 1", st.WriteAccesses)
	}
}

func TestSimulateWorkload(t *testing.T) {
	run, err := SimulateWorkload("ED", paperConfig(), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if run.Miss <= 0 || run.Miss >= 1 {
		t.Errorf("miss = %g", run.Miss)
	}
	if run.Trace != "ED" {
		t.Errorf("trace name = %q", run.Trace)
	}
	if _, err := SimulateWorkload("NOSUCH", paperConfig(), 100); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSimulateSuite(t *testing.T) {
	runs, summary, err := SimulateSuite(S370, Config{
		NetSize: 256, BlockSize: 8, SubBlockSize: 8, Assoc: 4, WordSize: 4,
	}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Errorf("got %d runs, want 4 S/370 workloads", len(runs))
	}
	if summary.N != 4 || summary.Miss <= 0 {
		t.Errorf("summary = %+v", summary)
	}
}

func TestWorkloadCatalogAccessors(t *testing.T) {
	if len(Architectures()) != 4 {
		t.Error("want 4 architectures")
	}
	if len(WorkloadNames()) != 25 {
		t.Errorf("want 25 workloads, got %d", len(WorkloadNames()))
	}
	if len(Workloads(PDP11)) != 6 {
		t.Error("want 6 PDP-11 workloads")
	}
	if _, ok := WorkloadByName("SPICE"); !ok {
		t.Error("SPICE missing")
	}
}

func TestGenerateWorkload(t *testing.T) {
	refs, err := GenerateWorkload("GREP", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1000 {
		t.Errorf("len = %d", len(refs))
	}
	if _, err := GenerateWorkload("NOSUCH", 10); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestEffectiveAccessTime(t *testing.T) {
	if got := EffectiveAccessTime(1, 5, 0.25); got != 2 {
		t.Errorf("t_eff = %g, want 2", got)
	}
}

func TestTransactionalModel(t *testing.T) {
	m := TransactionalModel(1, 0.5)
	if got := m.Cost(4); got != 3 {
		t.Errorf("cost = %g, want 3", got)
	}
}

func TestLimit(t *testing.T) {
	refs, _ := GenerateWorkload("ED", 100)
	src := Limit(NewSliceSource(refs), 10)
	n := 0
	for {
		_, err := src.Next()
		if err == EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 10 {
		t.Errorf("Limit let through %d refs", n)
	}
}

func TestTraceFileRoundTripText(t *testing.T) {
	testTraceRoundTrip(t, "trace.din", FormatAuto)
}

func TestTraceFileRoundTripBinary(t *testing.T) {
	testTraceRoundTrip(t, "trace.strc", FormatAuto)
}

func TestTraceFileExplicitFormats(t *testing.T) {
	testTraceRoundTrip(t, "trace.dat", FormatText)
	testTraceRoundTrip(t, "trace.bin", FormatBinary)
}

func testTraceRoundTrip(t *testing.T, name string, format TraceFormat) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, name)
	refs, err := GenerateWorkload("LS", 500)
	if err != nil {
		t.Fatal(err)
	}
	n, err := WriteTraceFile(path, NewSliceSource(refs), format)
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Errorf("wrote %d refs", n)
	}
	tf, err := OpenTraceFile(path, format)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	for i, want := range refs {
		got, err := tf.Next()
		if err != nil {
			t.Fatalf("ref %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("ref %d = %v, want %v", i, got, want)
		}
	}
	if _, err := tf.Next(); err != EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestOpenTraceFileMissing(t *testing.T) {
	if _, err := OpenTraceFile("/nonexistent/trace.din", FormatAuto); err == nil {
		t.Error("opened nonexistent file")
	}
}

func TestOpenTraceFileBadBinary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.strc")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTraceFile(path, FormatAuto); err == nil {
		t.Error("opened corrupt binary trace")
	}
}

// TestPaperHeadlineNumbers verifies the abstract's headline claim holds
// in shape: for a 1024-byte 4-way 8-byte-block cache, miss and traffic
// ratios are ordered Z8000 <= PDP-11 < VAX-11 < System/370, and the
// PDP-11/Z8000/VAX caches achieve miss < 0.15, traffic < 0.40 while the
// System/370 does much worse.
func TestPaperHeadlineNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-architecture sweep")
	}
	miss := map[Arch]float64{}
	traffic := map[Arch]float64{}
	for _, a := range Architectures() {
		cfg := Config{NetSize: 1024, BlockSize: 8, SubBlockSize: 8,
			Assoc: 4, WordSize: a.WordSize(), WarmStart: a.WarmStart()}
		_, s, err := SimulateSuite(a, cfg, 200000)
		if err != nil {
			t.Fatal(err)
		}
		miss[a], traffic[a] = s.Miss, s.Traffic
	}
	if !(miss[Z8000] <= miss[PDP11] && miss[PDP11] < miss[VAX11] && miss[VAX11] < miss[S370]) {
		t.Errorf("architecture miss ordering violated: %v", miss)
	}
	for _, a := range []Arch{PDP11, Z8000, VAX11} {
		if miss[a] >= 0.15 {
			t.Errorf("%v: miss %.4f not < 0.15", a, miss[a])
		}
		if traffic[a] >= 0.40 {
			t.Errorf("%v: traffic %.4f not < 0.40", a, traffic[a])
		}
	}
	if miss[S370] < 0.15 {
		t.Errorf("S/370 miss %.4f implausibly low", miss[S370])
	}
}

func TestTraceFileGzipRoundTrip(t *testing.T) {
	testTraceRoundTrip(t, "trace.din.gz", FormatAuto)
	testTraceRoundTrip(t, "trace.strc.gz", FormatAuto)
}

func TestGzipActuallyCompresses(t *testing.T) {
	dir := t.TempDir()
	refs, err := GenerateWorkload("NROFF", 20000)
	if err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "t.strc")
	zipped := filepath.Join(dir, "t.strc.gz")
	if _, err := WriteTraceFile(plain, NewSliceSource(refs), FormatAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteTraceFile(zipped, NewSliceSource(refs), FormatAuto); err != nil {
		t.Fatal(err)
	}
	ps, _ := os.Stat(plain)
	zs, _ := os.Stat(zipped)
	if zs.Size() >= ps.Size()/2 {
		t.Errorf("gzip trace %d bytes not much smaller than plain %d", zs.Size(), ps.Size())
	}
}

func TestOpenTraceFileCorruptGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.din.gz")
	if err := os.WriteFile(path, []byte("not gzip data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTraceFile(path, FormatAuto); err == nil {
		t.Error("opened corrupt gzip file")
	}
}
