package subcache

// This file provides one benchmark per table and figure of the paper
// (see DESIGN.md's experiment index) plus ablation benches for the
// design choices the paper fixes.  Each benchmark executes a reduced-
// length version of the corresponding experiment -- the full 1M-reference
// runs are produced by cmd/experiments -- and reports the headline
// metric(s) via b.ReportMetric so regressions in simulation *results*
// are as visible as regressions in speed.
//
// Run with: go test -bench=. -benchmem

import (
	"testing"

	"subcache/internal/cache"
	"subcache/internal/membus"
	"subcache/internal/metrics"
	"subcache/internal/stackdist"
	"subcache/internal/sweep"
	"subcache/internal/synth"
	"subcache/internal/trace"
)

// benchRefs is the per-workload trace length used in benchmarks: long
// enough to exercise warm behaviour, short enough to keep -bench=. fast.
const benchRefs = 50000

func benchGrid(b *testing.B, arch synth.Arch, nets []int) *sweep.Result {
	b.Helper()
	var res *sweep.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = sweep.Run(sweep.Request{
			Arch:   arch,
			Points: sweep.Grid(nets, arch.WordSize()),
			Refs:   benchRefs,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// reportAnchor publishes a summary metric for the sweep's anchor point.
func reportAnchor(b *testing.B, res *sweep.Result, p sweep.Point) {
	if s, ok := res.Summaries[p]; ok {
		b.ReportMetric(s.Miss, "miss")
		b.ReportMetric(s.Traffic, "traffic")
	}
}

// BenchmarkTable6 regenerates Table 6: the 360/85 sector cache versus
// set-associative organisations at 16 KB on the System/370 suite.
func BenchmarkTable6(b *testing.B) {
	sector := sweep.Point{Net: 16384, Block: 1024, Sub: 64}
	sa := sweep.Point{Net: 16384, Block: 64, Sub: 64}
	var sectorMiss, way4Miss float64
	for i := 0; i < b.N; i++ {
		for _, cfg := range []struct {
			p     sweep.Point
			assoc int
			out   *float64
		}{
			{sector, 16, &sectorMiss},
			{sa, 4, &way4Miss},
			{sa, 8, nil},
			{sa, 16, nil},
		} {
			assoc := cfg.assoc
			res, err := sweep.Run(sweep.Request{
				Arch: synth.S370, Points: []sweep.Point{cfg.p}, Refs: benchRefs,
				Override: func(c *cache.Config) { c.Assoc = assoc },
			})
			if err != nil {
				b.Fatal(err)
			}
			if cfg.out != nil {
				*cfg.out = res.Summaries[cfg.p].Miss
			}
		}
	}
	if way4Miss > 0 {
		b.ReportMetric(sectorMiss/way4Miss, "sector/4way")
	}
}

// BenchmarkTable7 regenerates the full Table 7 grid for all four
// architectures at net sizes 64/256/1024.
func BenchmarkTable7(b *testing.B) {
	anchor := sweep.Point{Net: 1024, Block: 16, Sub: 8}
	for i := 0; i < b.N; i++ {
		for _, a := range synth.AllArchs() {
			res, err := sweep.Run(sweep.Request{
				Arch:   a,
				Points: sweep.Grid([]int{64, 256, 1024}, a.WordSize()),
				Refs:   benchRefs,
			})
			if err != nil {
				b.Fatal(err)
			}
			if a == synth.PDP11 {
				if s, ok := res.Summaries[anchor]; ok {
					b.ReportMetric(s.Miss, "pdp-16,8-miss")
				}
			}
		}
	}
}

func table8Points() []sweep.Point {
	return []sweep.Point{
		{Net: 64, Block: 8, Sub: 8},
		{Net: 64, Block: 8, Sub: 2, Fetch: cache.LoadForward},
		{Net: 64, Block: 8, Sub: 2},
		{Net: 64, Block: 2, Sub: 2},
		{Net: 256, Block: 16, Sub: 16},
		{Net: 256, Block: 16, Sub: 2, Fetch: cache.LoadForward},
		{Net: 256, Block: 16, Sub: 2},
		{Net: 256, Block: 8, Sub: 8},
		{Net: 256, Block: 8, Sub: 2, Fetch: cache.LoadForward},
		{Net: 256, Block: 8, Sub: 2},
		{Net: 256, Block: 2, Sub: 2},
	}
}

// BenchmarkTable8 regenerates the load-forward study on the Z8000
// compiler traces.
func BenchmarkTable8(b *testing.B) {
	var res *sweep.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = sweep.Run(sweep.Request{
			Arch: synth.Z8000, Points: table8Points(), Refs: benchRefs,
			Workloads: []string{"CCP", "C1", "C2"},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	lf := res.Summaries[sweep.Point{Net: 256, Block: 16, Sub: 2, Fetch: cache.LoadForward}]
	b.ReportMetric(lf.Miss, "lf-miss")
	b.ReportMetric(lf.Traffic, "lf-traffic")
}

// BenchmarkFigure1 .. BenchmarkFigure6: the per-architecture
// miss-versus-traffic scatter figures.
func BenchmarkFigure1(b *testing.B) {
	res := benchGrid(b, synth.PDP11, []int{32, 128, 512})
	reportAnchor(b, res, sweep.Point{Net: 512, Block: 16, Sub: 8})
}

func BenchmarkFigure2(b *testing.B) {
	res := benchGrid(b, synth.PDP11, []int{64, 256, 1024})
	reportAnchor(b, res, sweep.Point{Net: 1024, Block: 16, Sub: 8})
}

func BenchmarkFigure3(b *testing.B) {
	res := benchGrid(b, synth.Z8000, []int{32, 128, 512})
	reportAnchor(b, res, sweep.Point{Net: 512, Block: 16, Sub: 8})
}

func BenchmarkFigure4(b *testing.B) {
	res := benchGrid(b, synth.Z8000, []int{64, 256, 1024})
	reportAnchor(b, res, sweep.Point{Net: 1024, Block: 16, Sub: 8})
}

func BenchmarkFigure5(b *testing.B) {
	res := benchGrid(b, synth.VAX11, []int{64, 256, 1024})
	reportAnchor(b, res, sweep.Point{Net: 1024, Block: 16, Sub: 8})
}

func BenchmarkFigure6(b *testing.B) {
	res := benchGrid(b, synth.S370, []int{64, 256, 1024})
	reportAnchor(b, res, sweep.Point{Net: 1024, Block: 16, Sub: 8})
}

// BenchmarkFigure7 and BenchmarkFigure8: the nibble-mode scalings of the
// PDP-11 figures.  The simulation work is the same grid; the reported
// metric is the scaled traffic ratio at the anchor.
func BenchmarkFigure7(b *testing.B) {
	res := benchGrid(b, synth.PDP11, []int{32, 128, 512})
	if s, ok := res.Summaries[sweep.Point{Net: 512, Block: 16, Sub: 8}]; ok {
		b.ReportMetric(s.Scaled, "nibble-traffic")
	}
}

func BenchmarkFigure8(b *testing.B) {
	res := benchGrid(b, synth.PDP11, []int{64, 256, 1024})
	if s, ok := res.Summaries[sweep.Point{Net: 1024, Block: 16, Sub: 8}]; ok {
		b.ReportMetric(s.Scaled, "nibble-traffic")
	}
}

// BenchmarkFigure9: the load-forward figure (same sweep as Table 8 with
// the Z80,000 design point reported).
func BenchmarkFigure9(b *testing.B) {
	var res *sweep.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = sweep.Run(sweep.Request{
			Arch: synth.Z8000, Points: table8Points(), Refs: benchRefs,
			Workloads: []string{"CCP", "C1", "C2"},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	z80k := res.Summaries[sweep.Point{Net: 256, Block: 16, Sub: 2, Fetch: cache.LoadForward}]
	b.ReportMetric(z80k.Miss, "z80k-miss")
}

// --- Ablation benches (DESIGN.md section 5) ---

// BenchmarkAblationReplacement compares replacement policies.
func BenchmarkAblationReplacement(b *testing.B) {
	p := sweep.Point{Net: 1024, Block: 16, Sub: 8}
	for _, pol := range []cache.Replacement{cache.LRU, cache.FIFO, cache.Random} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			var res *sweep.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = sweep.Run(sweep.Request{
					Arch: synth.PDP11, Points: []sweep.Point{p}, Refs: benchRefs,
					Override: func(c *cache.Config) {
						c.Replacement = pol
						c.RandomSeed = 1984
					},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Summaries[p].Miss, "miss")
		})
	}
}

// BenchmarkAblationAssociativity sweeps associativity at fixed geometry.
func BenchmarkAblationAssociativity(b *testing.B) {
	p := sweep.Point{Net: 1024, Block: 16, Sub: 8}
	for _, assoc := range []int{1, 2, 4, 8} {
		assoc := assoc
		b.Run(map[int]string{1: "direct", 2: "2way", 4: "4way", 8: "8way"}[assoc], func(b *testing.B) {
			var res *sweep.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = sweep.Run(sweep.Request{
					Arch: synth.PDP11, Points: []sweep.Point{p}, Refs: benchRefs,
					Override: func(c *cache.Config) { c.Assoc = assoc },
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Summaries[p].Miss, "miss")
		})
	}
}

// BenchmarkAblationLoadForward compares the redundant and optimized
// load-forward schemes.
func BenchmarkAblationLoadForward(b *testing.B) {
	for _, f := range []cache.Fetch{cache.LoadForward, cache.LoadForwardOptimized} {
		f := f
		b.Run(f.String(), func(b *testing.B) {
			p := sweep.Point{Net: 256, Block: 16, Sub: 2, Fetch: f}
			var res *sweep.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = sweep.Run(sweep.Request{
					Arch: synth.Z8000, Points: []sweep.Point{p}, Refs: benchRefs,
					Workloads: []string{"CCP", "C1", "C2"},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Summaries[p].Traffic, "traffic")
		})
	}
}

// BenchmarkAblationWarmStart contrasts warm- and cold-start accounting.
func BenchmarkAblationWarmStart(b *testing.B) {
	p := sweep.Point{Net: 1024, Block: 16, Sub: 8}
	for _, warm := range []bool{true, false} {
		warm := warm
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			var res *sweep.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = sweep.Run(sweep.Request{
					Arch: synth.Z8000, Points: []sweep.Point{p}, Refs: benchRefs,
					Override: func(c *cache.Config) { c.WarmStart = warm },
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Summaries[p].Miss, "miss")
		})
	}
}

// BenchmarkAblationStackdist compares the event-driven simulator against
// the Mattson one-pass oracle over a size sweep (the efficiency argument
// behind the paper's LRU choice).
func BenchmarkAblationStackdist(b *testing.B) {
	prof, _ := synth.ProfileByName("ED")
	refs, err := synth.Generate(prof, benchRefs)
	if err != nil {
		b.Fatal(err)
	}
	words, err := trace.SplitAll(trace.NewSliceSource(refs), 2)
	if err != nil {
		b.Fatal(err)
	}
	sizes := []int{64, 128, 256, 512, 1024, 2048}
	b.Run("simulator-per-size", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, net := range sizes {
				c, err := cache.New(cache.Config{
					NetSize: net, BlockSize: 8, SubBlockSize: 8,
					Assoc: net / 8, WordSize: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range words {
					c.Access(r)
				}
			}
		}
	})
	b.Run("mattson-one-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prof, err := stackdist.New(8, 1, false)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range words {
				prof.Touch(r)
			}
			for _, net := range sizes {
				_ = prof.MissRatio(net / 8)
			}
		}
	})
}

// --- Core micro-benchmarks ---

// BenchmarkCacheAccess measures raw simulator throughput.
func BenchmarkCacheAccess(b *testing.B) {
	prof, _ := synth.ProfileByName("ED")
	refs, _ := synth.Generate(prof, 100000)
	words, _ := trace.SplitAll(trace.NewSliceSource(refs), 2)
	c, err := cache.New(cache.Config{
		NetSize: 1024, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(words[i%len(words)])
	}
}

// BenchmarkGenerator measures synthetic trace production rate.
func BenchmarkGenerator(b *testing.B) {
	prof, _ := synth.ProfileByName("FGO1")
	g, err := synth.NewGenerator(prof, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaledTraffic measures nibble-model pricing of a transaction
// histogram.
func BenchmarkScaledTraffic(b *testing.B) {
	st := &cache.Stats{
		Accesses: 1000000,
		TxHist:   cache.TxHistFromMap(map[int]uint64{1: 10000, 2: 20000, 4: 30000, 8: 5000, 16: 100}),
	}
	for i := 0; i < b.N; i++ {
		_ = membus.ScaledTraffic(st, membus.PaperNibble)
	}
}

// BenchmarkEndToEnd measures one full (workload, config) simulation, the
// unit of all experiment sweeps.
func BenchmarkEndToEnd(b *testing.B) {
	prof, _ := synth.ProfileByName("GREP")
	cfg := cache.Config{NetSize: 1024, BlockSize: 16, SubBlockSize: 8, Assoc: 4, WordSize: 2}
	var run metrics.Run
	var err error
	for i := 0; i < b.N; i++ {
		run, err = sweep.RunOne(prof, cfg, benchRefs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(run.Miss, "miss")
}
